// Streaming: the chunked data plane end to end — generate a dataset chunk
// by chunk, compress it incrementally at the edge, decode it chunk by chunk
// in the cloud, and verify the whole path is byte-identical to batch
// processing. Nothing in this program ever holds the full series except the
// final batch comparison.
package main

import (
	"bytes"
	"fmt"
	"log"

	"lossyts"
)

func main() {
	const (
		dataset = "Wind"
		scale   = 0.05
		seed    = int64(1)
		chunk   = 512
		eps     = 0.05
	)

	// 1. Generate the target column chunk by chunk. StreamDataset holds one
	// chunk buffer and O(1) recurrence state instead of materialising every
	// frame column the way LoadDataset does.
	src, err := lossyts.StreamDataset(dataset, scale, seed, chunk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %s: %d points in chunks of %d\n", dataset, src.Len(), chunk)

	// 2. Feed the chunks straight into a streaming encoder. Only the start
	// timestamp and interval are needed up front — the usual situation on an
	// edge device that has not seen the data yet.
	enc, err := lossyts.NewStreamEncoderAt(lossyts.PMC, src.Start(), src.Interval(), eps)
	if err != nil {
		log.Fatal(err)
	}
	chunks := 0
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		chunks++
		if err := enc.PushChunk(c); err != nil {
			log.Fatal(err)
		}
	}
	if err := src.Err(); err != nil {
		log.Fatal(err)
	}
	streamed, err := enc.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encoded %d chunks -> %d segments, %d payload bytes\n",
		chunks, streamed.Segments, len(streamed.Payload))

	// 3. The streamed payload is byte-identical to batch compression: batch
	// Compress drives the same incremental kernel, so there is nothing the
	// two planes can disagree about.
	ds := lossyts.MustLoadDataset(dataset, scale, seed)
	batch, err := lossyts.Compress(lossyts.PMC, ds.Target(), eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("payload identical to batch compression: %v\n",
		bytes.Equal(streamed.Payload, batch.Payload))
	cr, err := lossyts.Ratio(ds.Target(), streamed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compression ratio %.1fx at eps=%.2f\n", cr, eps)

	// 4. Decode chunk by chunk on the consuming side. StreamDecoder is a
	// SeriesSource, so it plugs into anything that accepts chunks —
	// CollectSeries bridges back to the batch world when needed.
	dec, err := lossyts.NewStreamDecoder(streamed, chunk)
	if err != nil {
		log.Fatal(err)
	}
	var maxAbs float64
	i := 0
	for {
		c, ok := dec.Next()
		if !ok {
			break
		}
		for _, v := range c.Values {
			if d := abs(v - ds.Target().Values[i]); d > maxAbs {
				maxAbs = d
			}
			i++
		}
	}
	if err := dec.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded %d points chunk by chunk, max abs reconstruction error %.4f\n", i, maxAbs)

	// The evaluation harness exposes the same plane: set EvalOptions.Stream
	// (CLI: evalimpl -stream -chunk N) and the ingest, compress, and
	// reconstruct stages run chunked with bit-identical grid results.
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
