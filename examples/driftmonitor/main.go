// Driftmonitor: the online execution plane end to end — stream a dataset
// through a lossy channel, watch it with the incremental monitors, update a
// forecaster as data arrives, and see how the error bound moves the
// detection metrics.
//
// The program runs the same monitoring session at three error bounds. Each
// session injects the same ground truth (five 8σ spikes, one 6σ level
// shift at 70% of the stream) and reports how quickly the shift monitor
// saw the level shift through the reconstruction, and how precisely the
// anomaly detector recovered the spikes.
package main

import (
	"context"
	"fmt"
	"log"

	"lossyts"
)

func main() {
	fmt.Println("bound    CR      TE      drift-delay  anomaly-F1  events")
	for _, eps := range []float64{0.01, 0.05, 0.1} {
		rep := runSession(eps)
		fmt.Printf("%-7g %6.2f  %.4f  %11d  %10.2f  %6d\n",
			eps, rep.CompressionRatio, rep.TE, rep.DriftDelay, rep.F1, len(rep.Events))
	}

	// A session with a model in the loop: DLinear warm-starts from its
	// current weights at every update instead of retraining from scratch,
	// and its forecasts are scored prequentially — predicted from the
	// reconstruction, judged against the raw stream as it arrives.
	rep := runModelSession()
	fmt.Printf("\nDLinear online at eps=0.05: forecast NRMSE %.4f over %d points\n",
		rep.ForecastNRMSE, rep.ForecastPoints)
	for _, ev := range rep.Events {
		if ev.Kind == "model-fit" || ev.Kind == "model-update" {
			fmt.Printf("  %-12s at index %d (%s)\n", ev.Kind, ev.Index, ev.Detail)
		}
	}
}

func runSession(eps float64) *lossyts.SessionReport {
	s, err := lossyts.NewSession(lossyts.SessionOptions{
		Dataset:          "ElecDem",
		Scale:            0.01,
		Seed:             7,
		Method:           lossyts.PMC,
		Epsilon:          eps,
		Spikes:           5,
		DriftAt:          0.7,
		AnomalyThreshold: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func runModelSession() *lossyts.SessionReport {
	cfg := lossyts.DefaultForecastConfig()
	cfg.InputLen, cfg.Horizon = 48, 12
	cfg.Epochs, cfg.UpdateEpochs = 2, 1
	cfg.HiddenSize = 8
	s, err := lossyts.NewSession(lossyts.SessionOptions{
		Dataset:          "ElecDem",
		Scale:            0.01,
		Seed:             7,
		Method:           lossyts.PMC,
		Epsilon:          0.05,
		Model:            "DLinear",
		Forecast:         cfg,
		Spikes:           5,
		DriftAt:          0.7,
		AnomalyThreshold: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	return rep
}
