// Quickstart: compress a time series under a pointwise relative error
// bound, decompress it, and forecast from the decompressed data — the
// paper's evaluation scenario in ~60 lines.
package main

import (
	"fmt"
	"log"

	"lossyts"
)

func main() {
	// A synthetic version of the paper's ETTm1 dataset (5% of full length).
	ds := lossyts.MustLoadDataset("ETTm1", 0.05, 1)
	target := ds.Target()
	fmt.Printf("dataset %s: %d points every %ds\n", ds.Name, target.Len(), ds.Interval)

	// Compress with PMC at a 5% pointwise relative error bound.
	c, err := lossyts.Compress(lossyts.PMC, target, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	cr, err := lossyts.Ratio(target, c)
	if err != nil {
		log.Fatal(err)
	}
	dec, err := c.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	maxRel, _ := target.MaxRelError(dec)
	fmt.Printf("PMC eps=0.05: ratio %.1fx, %d segments, max relative error %.4f\n",
		cr, c.Segments, maxRel)

	// Train a DLinear forecaster on the raw training split, then predict
	// from the decompressed test data (Algorithm 1).
	train, val, test, err := target.Split(0.7, 0.1, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lossyts.DefaultForecastConfig()
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	var sc lossyts.StandardScaler
	if err := sc.Fit(train.Values); err != nil {
		log.Fatal(err)
	}
	model, err := lossyts.NewModel("DLinear", cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Fit(sc.Transform(train.Values), sc.Transform(val.Values)); err != nil {
		log.Fatal(err)
	}

	evaluate := func(label string, inputValues []float64) float64 {
		ws, err := lossyts.MakePairedWindows(sc.Transform(inputValues), sc.Transform(test.Values),
			cfg.InputLen, cfg.Horizon, cfg.Horizon)
		if err != nil {
			log.Fatal(err)
		}
		preds, err := model.Predict(ws.Inputs())
		if err != nil {
			log.Fatal(err)
		}
		var x, y []float64
		for i, p := range preds {
			y = append(y, p...)
			x = append(x, ws.Windows[i].Target...)
		}
		m, err := lossyts.Evaluate(x, y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s NRMSE %.4f\n", label, m.NRMSE)
		return m.NRMSE
	}
	baseline := evaluate("raw input", test.Values)
	decTest, err := lossyts.Compress(lossyts.PMC, test, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	decSeries, err := decTest.Decompress()
	if err != nil {
		log.Fatal(err)
	}
	transformed := evaluate("decompressed input", decSeries.Values)

	tfe, err := lossyts.TFE(transformed, baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TFE = %+.2f%% (negative means compression improved accuracy)\n", tfe*100)
}
