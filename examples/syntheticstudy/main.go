// Synthetic characteristic study — the paper's stated future work (§7):
// generate series with controllable characteristics (here: the number of
// abrupt level shifts, which drives max_kl_shift, the paper's top TFE
// predictor), and measure how model resilience to lossy compression changes
// as the characteristic changes. Also demonstrates the §5 ensemble of a
// strong model (GBoost here, for speed) with the resilient Arima.
package main

import (
	"fmt"
	"log"

	"lossyts"
)

func main() {
	cfg := lossyts.DefaultForecastConfig()
	cfg.InputLen = 96
	cfg.Horizon = 24
	cfg.SeasonalPeriod = 48
	cfg.Epochs = 6

	fmt.Println("level   max_kl_shift     Arima TFE   DLinear TFE   Ensemble TFE")
	for _, shifts := range []int{0, 2, 6} {
		spec := lossyts.DefaultSyntheticSpec()
		spec.Length = 6000
		spec.LevelShifts = shifts
		spec.ShiftMagnitude = 5
		ds, err := lossyts.SyntheticDataset(spec)
		if err != nil {
			log.Fatal(err)
		}
		feats, err := lossyts.ExtractFeatures(ds.Target().Values, ds.SeasonalPeriod)
		if err != nil {
			log.Fatal(err)
		}

		train, val, test, err := ds.Target().Split(0.7, 0.1, 0.2)
		if err != nil {
			log.Fatal(err)
		}
		var sc lossyts.StandardScaler
		if err := sc.Fit(train.Values); err != nil {
			log.Fatal(err)
		}
		scTrain, scVal := sc.Transform(train.Values), sc.Transform(val.Values)
		scTest := sc.Transform(test.Values)

		// PMC at a moderate bound; targets stay raw (Algorithm 1).
		c, err := lossyts.Compress(lossyts.PMC, test, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
		scDec := sc.Transform(dec.Values)

		tfeOf := func(m lossyts.Model) float64 {
			if err := m.Fit(scTrain, scVal); err != nil {
				log.Fatal(err)
			}
			base := nrmse(m, scTest, scTest, cfg)
			comp := nrmse(m, scDec, scTest, cfg)
			tfe, err := lossyts.TFE(comp, base)
			if err != nil {
				log.Fatal(err)
			}
			return tfe
		}
		arima, err := lossyts.NewModel("Arima", cfg)
		if err != nil {
			log.Fatal(err)
		}
		dlinear, err := lossyts.NewModel("DLinear", cfg)
		if err != nil {
			log.Fatal(err)
		}
		ens, err := lossyts.NewEnsemble(cfg, "Arima", "GBoost")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d   %12.4f   %+9.4f   %+11.4f   %+12.4f\n",
			shifts, feats["max_kl_shift"], tfeOf(arima), tfeOf(dlinear), tfeOf(ens))
	}
	fmt.Println("\nlevel shifts drive max_kl_shift, the paper's top TFE predictor;")
	fmt.Println("compare the per-model TFE columns to judge resilience per regime")
}

func nrmse(m lossyts.Model, inputs, targets []float64, cfg lossyts.ForecastConfig) float64 {
	ws, err := lossyts.MakePairedWindows(inputs, targets, cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := m.Predict(ws.Inputs())
	if err != nil {
		log.Fatal(err)
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	metrics, err := lossyts.Evaluate(x, y)
	if err != nil {
		log.Fatal(err)
	}
	return metrics.NRMSE
}
