// Compression sweep (paper RQ1, Figures 2 and 3): sweep the 13 error
// bounds over every dataset and method and print TE, CR, and segment
// counts, with Gorilla as the lossless baseline. This is the data behind
// the paper's finding that PMC overtakes SZ at large bounds while Swing
// trails both in CR.
package main

import (
	"fmt"
	"log"

	"lossyts"
)

func main() {
	methods := []lossyts.Method{lossyts.PMC, lossyts.Swing, lossyts.SZ}
	for _, name := range lossyts.DatasetNames {
		ds := lossyts.MustLoadDataset(name, 0.03, 1)
		target := ds.Target()
		gor, err := lossyts.Compress(lossyts.Gorilla, target, 0)
		if err != nil {
			log.Fatal(err)
		}
		gcr, err := lossyts.Ratio(target, gor)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (%d points, GORILLA %.2fx) ==\n", name, target.Len(), gcr)
		fmt.Println("method  eps    TE(NRMSE)  ratio     segments")
		for _, m := range methods {
			for _, eps := range lossyts.ErrorBounds {
				c, err := lossyts.Compress(m, target, eps)
				if err != nil {
					log.Fatal(err)
				}
				dec, err := c.Decompress()
				if err != nil {
					log.Fatal(err)
				}
				cr, err := lossyts.Ratio(target, c)
				if err != nil {
					log.Fatal(err)
				}
				te, err := lossyts.Evaluate(target.Values, dec.Values)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%-7s %.2f  %9.5f  %7.2fx  %8d\n", m, eps, te.NRMSE, cr, c.Segments)
			}
		}
		fmt.Println()
	}
}
