// Model resilience (paper RQ3, Figure 6 and Table 7): train every
// forecasting model on one dataset and compare how much accuracy each loses
// when the test input is lossy-compressed. Reproduces the paper's headline
// contrast: simple trend-oriented models (Arima) degrade gracefully while
// attention models that exploit short-term fluctuations suffer more.
package main

import (
	"fmt"
	"log"

	"lossyts"
)

func main() {
	ds := lossyts.MustLoadDataset("ETTm2", 0.03, 3)
	target := ds.Target()
	train, val, test, err := target.Split(0.7, 0.1, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lossyts.DefaultForecastConfig()
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	cfg.Epochs = 8

	var sc lossyts.StandardScaler
	if err := sc.Fit(train.Values); err != nil {
		log.Fatal(err)
	}
	scTrain := sc.Transform(train.Values)
	scVal := sc.Transform(val.Values)
	scTest := sc.Transform(test.Values)

	// One compressed variant of the test input per error bound.
	bounds := []float64{0.05, 0.1, 0.2}
	variants := map[float64][]float64{}
	for _, eps := range bounds {
		c, err := lossyts.Compress(lossyts.PMC, test, eps)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
		variants[eps] = sc.Transform(dec.Values)
	}

	fmt.Printf("%s: TFE per model when predicting from PMC-compressed input\n\n", ds.Name)
	fmt.Println("model        base NRMSE   TFE@0.05   TFE@0.10   TFE@0.20")
	for _, name := range lossyts.ModelNames {
		model, err := lossyts.NewModel(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := model.Fit(scTrain, scVal); err != nil {
			log.Fatal(err)
		}
		base := nrmseOn(model, scTest, scTest, cfg)
		fmt.Printf("%-12s %10.4f", name, base)
		for _, eps := range bounds {
			n := nrmseOn(model, variants[eps], scTest, cfg)
			tfe, err := lossyts.TFE(n, base)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   %+8.4f", tfe)
		}
		fmt.Println()
	}
	fmt.Println("\npositive TFE = accuracy lost; the paper finds Arima most resilient")
}

func nrmseOn(model lossyts.Model, inputs, targets []float64, cfg lossyts.ForecastConfig) float64 {
	ws, err := lossyts.MakePairedWindows(inputs, targets, cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := model.Predict(ws.Inputs())
	if err != nil {
		log.Fatal(err)
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	m, err := lossyts.Evaluate(x, y)
	if err != nil {
		log.Fatal(err)
	}
	return m.NRMSE
}
