// Wind turbine edge-to-cloud scenario (paper §1 and §3.6): a turbine
// compresses its 2-second active-power stream before transmitting it to the
// cloud, where a pre-trained forecasting model predicts future output for
// predictive maintenance. The example shows how bandwidth (compression
// ratio) trades off against forecasting accuracy (TFE), and how to monitor
// the characteristics the paper identifies as early-warning signals
// (max_kl_shift, unitroot_pp).
package main

import (
	"fmt"
	"log"

	"lossyts"
)

func main() {
	ds := lossyts.MustLoadDataset("Wind", 0.05, 7)
	target := ds.Target()
	fmt.Printf("wind turbine stream: %d points sampled every %ds\n", target.Len(), ds.Interval)

	train, val, test, err := target.Split(0.7, 0.1, 0.2)
	if err != nil {
		log.Fatal(err)
	}

	// The cloud side trained an Arima model on historical raw data (the
	// paper finds Arima the most resilient model on Wind, Table 7).
	cfg := lossyts.DefaultForecastConfig()
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	var sc lossyts.StandardScaler
	if err := sc.Fit(train.Values); err != nil {
		log.Fatal(err)
	}
	model, err := lossyts.NewModel("Arima", cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := model.Fit(sc.Transform(train.Values), sc.Transform(val.Values)); err != nil {
		log.Fatal(err)
	}
	baseline := forecastNRMSE(model, sc, test.Values, test.Values, cfg)
	fmt.Printf("baseline NRMSE on raw stream: %.4f\n\n", baseline)

	// Edge side: pick the loosest error bound whose TFE stays under 5%.
	rawFeat, err := lossyts.ExtractFeatures(test.Values, ds.SeasonalPeriod)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("eps     ratio   TFE      max_kl_shift   unitroot_pp(%)")
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		c, err := lossyts.Compress(lossyts.PMC, test, eps)
		if err != nil {
			log.Fatal(err)
		}
		cr, err := lossyts.Ratio(test, c)
		if err != nil {
			log.Fatal(err)
		}
		dec, err := c.Decompress()
		if err != nil {
			log.Fatal(err)
		}
		nrmse := forecastNRMSE(model, sc, dec.Values, test.Values, cfg)
		tfe, err := lossyts.TFE(nrmse, baseline)
		if err != nil {
			log.Fatal(err)
		}
		// Characteristic monitoring (paper §4.3.3): relative drift of the
		// KL-shift and Phillips-Perron statistics signals risk before the
		// accuracy actually collapses.
		decFeat, err := lossyts.ExtractFeatures(dec.Values, ds.SeasonalPeriod)
		if err != nil {
			log.Fatal(err)
		}
		ppDrift := relDiff(rawFeat["unitroot_pp"], decFeat["unitroot_pp"])
		fmt.Printf("%.2f  %6.1fx  %+.4f  %12.4f  %12.1f\n",
			eps, cr, tfe, decFeat["max_kl_shift"], ppDrift)
	}
	fmt.Println("\npick the largest eps whose TFE and characteristic drift stay acceptable")
}

func forecastNRMSE(model lossyts.Model, sc lossyts.StandardScaler, inputValues, rawValues []float64, cfg lossyts.ForecastConfig) float64 {
	ws, err := lossyts.MakePairedWindows(sc.Transform(inputValues), sc.Transform(rawValues),
		cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := model.Predict(ws.Inputs())
	if err != nil {
		log.Fatal(err)
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	m, err := lossyts.Evaluate(x, y)
	if err != nil {
		log.Fatal(err)
	}
	return m.NRMSE
}

func relDiff(base, other float64) float64 {
	d := other - base
	if d < 0 {
		d = -d
	}
	if base < 0 {
		base = -base
	}
	if base < 1e-9 {
		return d
	}
	return d / base * 100
}
