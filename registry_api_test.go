package lossyts_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"lossyts"
	"lossyts/internal/timeseries"
)

func init() {
	// Exercise the re-exported registration entry point: a toy dataset
	// registered through the root API, visible to RegisteredDatasets and
	// loadable like a built-in.
	lossyts.RegisterDataset(lossyts.DatasetRegistration{
		Name: "ApiTestRamp",
		Spec: lossyts.DatasetSpec{Length: 3000, Interval: 60, Period: 24, Mean: 0.5, Min: 0, Max: 1, Q1: 0.25, Q3: 0.75},
		Gen: func(rng *rand.Rand, n int, sp lossyts.DatasetSpec) []*lossyts.Series {
			v := make([]float64, n)
			for i := range v {
				v[i] = float64(i%sp.Period) / float64(sp.Period)
			}
			return []*lossyts.Series{timeseries.New("ramp", 0, sp.Interval, v)}
		},
	})
}

// TestRegisteredListsAreExactlyTheRegistrations pins the registry contents
// seen through the root API: the paper's built-ins plus exactly what this
// test binary registered — nothing hidden, nothing missing.
func TestRegisteredListsAreExactlyTheRegistrations(t *testing.T) {
	wantMethods := []lossyts.Method{"CAMEO", "GORILLA", "LFZIP", "PMC", "S-PMC", "SWING", "SZ"}
	if got := lossyts.RegisteredMethods(); !reflect.DeepEqual(got, wantMethods) {
		t.Errorf("RegisteredMethods() = %v, want %v", got, wantMethods)
	}

	wantModels := append([]string(nil), lossyts.ModelNames...)
	sort.Strings(wantModels)
	if got := lossyts.RegisteredModels(); !reflect.DeepEqual(got, wantModels) {
		t.Errorf("RegisteredModels() = %v, want %v", got, wantModels)
	}

	wantDatasets := append([]string{"ApiTestRamp"}, lossyts.DatasetNames...)
	sort.Strings(wantDatasets)
	if got := lossyts.RegisteredDatasets(); !reflect.DeepEqual(got, wantDatasets) {
		t.Errorf("RegisteredDatasets() = %v, want %v", got, wantDatasets)
	}
}

func TestRegisteredDatasetLoadsThroughRootAPI(t *testing.T) {
	ds, err := lossyts.LoadDataset("ApiTestRamp", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ds.SeasonalPeriod != 24 || ds.Target().Len() != 3000 {
		t.Fatalf("spec not honoured: period %d, len %d", ds.SeasonalPeriod, ds.Target().Len())
	}
}

func TestUnknownNameTypedErrorsThroughRootAPI(t *testing.T) {
	var um *lossyts.UnknownMethodError
	if _, err := lossyts.Compress("NoSuchMethod", lossyts.NewSeries("x", 0, 60, []float64{1, 2}), 0.1); !errors.As(err, &um) {
		t.Errorf("Compress: want *UnknownMethodError, got %v", err)
	}
	var umo *lossyts.UnknownModelError
	if _, err := lossyts.NewModel("NoSuchModel", lossyts.DefaultForecastConfig()); !errors.As(err, &umo) {
		t.Errorf("NewModel: want *UnknownModelError, got %v", err)
	}
	var ud *lossyts.UnknownDatasetError
	if _, err := lossyts.LoadDataset("NoSuchDataset", 1, 1); !errors.As(err, &ud) {
		t.Errorf("LoadDataset: want *UnknownDatasetError, got %v", err)
	}
}

func TestRunGridContextThroughRootAPI(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := lossyts.DefaultEvalOptions()
	opts.Datasets = []string{"ETTm1"}
	opts.Models = []string{"Arima"}
	if _, err := lossyts.RunGridContext(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExternalPayloadHelpers builds a payload with the re-exported header
// and gzip helpers, the way an external compressor implementation would.
func TestExternalPayloadHelpers(t *testing.T) {
	s := lossyts.NewSeries("x", 0, 60, []float64{1, 2, 3})
	// The helpers demand a registered method: unknown names must fail.
	var buf bytes.Buffer
	if err := lossyts.EncodePayloadHeader(&buf, "NoSuchMethod", s); err == nil {
		t.Fatal("EncodePayloadHeader accepted an unregistered method")
	}
	if err := lossyts.EncodePayloadHeader(&buf, lossyts.PMC, s); err != nil {
		t.Fatal(err)
	}
	c, err := lossyts.FinishPayload(lossyts.PMC, 0.1, s, buf.Bytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Method != lossyts.PMC || c.N != 3 || len(c.Payload) == 0 {
		t.Fatalf("payload not finished: %+v", c)
	}
	if math.IsNaN(c.Epsilon) || c.Epsilon != 0.1 {
		t.Fatalf("epsilon %v", c.Epsilon)
	}
}
