// Benchmarks that regenerate every table and figure of the paper's
// evaluation section (see DESIGN.md for the per-experiment index), plus the
// ablation benches for the design decisions DESIGN.md calls out and
// micro-benchmarks of the compressors.
//
// The experiment grid is memoised per option set, so the first benchmark to
// touch it pays the full evaluation cost and the rest reuse it. Run with:
//
//	go test -bench=. -benchmem
package lossyts_test

import (
	"fmt"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/datasets"
	"lossyts/internal/forecast"
	"lossyts/internal/timeseries"
)

// benchOptions is the shared grid configuration: all six datasets, all
// seven models, all three methods, all 13 bounds, at 3% dataset length.
func benchOptions() core.Options {
	return core.DefaultOptions()
}

func benchGrid(b *testing.B) *core.GridResult {
	b.Helper()
	g, err := core.RunGrid(benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- One benchmark per paper artefact -------------------------------------

func BenchmarkTable1DatasetStats(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table1(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2BaselineResults(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table2(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3RegressionCRvsTE(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table3(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4SpearmanCharacteristics(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table4(g, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5ElbowAnalysis(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table5(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6CharacteristicSensitivity(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table6(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7BestModels(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Table7(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1CompressionOutput(b *testing.B) {
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure1(opts, 96); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2TEandCR(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure2(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3SegmentCounts(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure3(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4TFEvsTE(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure4(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5SHAPCharacteristics(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure5(g, 9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6ModelTFE(b *testing.B) {
	g := benchGrid(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Figure6(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7RetrainDecompressed(b *testing.B) {
	opts := benchOptions()
	opts.Scale = 0.02
	for i := 0; i < b.N; i++ {
		if _, err := core.RetrainOnDecompressed(opts,
			[]string{"ETTm1"}, []string{"Arima", "DLinear"}, []float64{0.05, 0.1, 0.2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md design decisions) -------------------------

// BenchmarkAblationAbsoluteVsRelativeBound compares the compression ratio
// of the relative bound used in the paper against the classic absolute
// bound at a comparable tolerance.
func BenchmarkAblationAbsoluteVsRelativeBound(b *testing.B) {
	ds := datasets.MustLoad("ETTm1", 0.03, 1)
	s := ds.Target()
	for i := 0; i < b.N; i++ {
		rel, err := (compress.PMC{}).Compress(s, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		abs, err := (compress.PMC{Absolute: true}).Compress(s, 0.1*13.3) // ε·mean
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			rr, _ := compress.Ratio(s, rel)
			ra, _ := compress.Ratio(s, abs)
			b.ReportMetric(rr, "relCR")
			b.ReportMetric(ra, "absCR")
		}
	}
}

// BenchmarkAblationGzipStage quantifies the contribution of the shared
// final gzip stage (§3.2) to PMC's compressed size.
func BenchmarkAblationGzipStage(b *testing.B) {
	ds := datasets.MustLoad("ETTm1", 0.03, 1)
	s := ds.Target()
	for i := 0; i < b.N; i++ {
		c, err := (compress.PMC{}).Compress(s, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		body, err := compress.GunzipBytes(c.Payload)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(body)), "rawBytes")
			b.ReportMetric(float64(c.Size()), "gzBytes")
		}
	}
}

// BenchmarkAblationSZBlockSize sweeps the SZ block size (DESIGN.md item 4).
func BenchmarkAblationSZBlockSize(b *testing.B) {
	ds := datasets.MustLoad("ETTm1", 0.03, 1)
	s := ds.Target()
	for _, bs := range []int{32, 128, 512} {
		bs := bs
		b.Run(fmt.Sprintf("block%d", bs), func(b *testing.B) {
			z := compress.SZ{BlockSize: bs}
			for i := 0; i < b.N; i++ {
				c, err := z.Compress(s, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					cr, _ := compress.Ratio(s, c)
					b.ReportMetric(cr, "CR")
				}
			}
		})
	}
}

// BenchmarkAblationSeasonalPMC compares the §5-direction SeasonalPMC
// compressor against plain PMC: it reports the CR trade-off of storing the
// seasonal profile exactly. On noisy data the profile costs a little CR; on
// strongly seasonal data it wins outright (see
// TestSeasonalPMCBeatsePMCOnSeasonalData) — and in both cases the seasonal
// autocorrelation the paper identifies as forecasting-critical survives any
// bound.
func BenchmarkAblationSeasonalPMC(b *testing.B) {
	ds := datasets.MustLoad("ETTm1", 0.03, 1)
	s := ds.Target()
	for i := 0; i < b.N; i++ {
		sp, err := (compress.SeasonalPMC{Period: ds.SeasonalPeriod}).Compress(s, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pmc, err := (compress.PMC{}).Compress(s, 0.2)
			if err != nil {
				b.Fatal(err)
			}
			spCR, _ := compress.Ratio(s, sp)
			pmcCR, _ := compress.Ratio(s, pmc)
			b.ReportMetric(spCR, "seasonalCR")
			b.ReportMetric(pmcCR, "pmcCR")
		}
	}
}

// BenchmarkAblationStreamingVsBatch confirms streaming encoding adds no
// size overhead over batch compression (stream.go design).
func BenchmarkAblationStreamingVsBatch(b *testing.B) {
	ds := datasets.MustLoad("ETTm1", 0.03, 1)
	s := ds.Target()
	for i := 0; i < b.N; i++ {
		enc, err := compress.NewStreamEncoder(compress.MethodPMC, s, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range s.Values {
			if err := enc.Push(v); err != nil {
				b.Fatal(err)
			}
		}
		streamed, err := enc.Close()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			batch, err := (compress.PMC{}).Compress(s, 0.1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(streamed.Size()), "streamBytes")
			b.ReportMetric(float64(batch.Size()), "batchBytes")
		}
	}
}

// --- Micro-benchmarks -------------------------------------------------------

func benchSeries() *timeseries.Series {
	return datasets.MustLoad("ETTm1", 0.03, 1).Target()
}

func BenchmarkCompressPMC(b *testing.B) {
	s := benchSeries()
	b.SetBytes(int64(8 * s.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := (compress.PMC{}).Compress(s, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressSwing(b *testing.B) {
	s := benchSeries()
	b.SetBytes(int64(8 * s.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := (compress.Swing{}).Compress(s, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressSZ(b *testing.B) {
	s := benchSeries()
	b.SetBytes(int64(8 * s.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := compress.NewSZ().Compress(s, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressGorilla(b *testing.B) {
	s := benchSeries()
	b.SetBytes(int64(8 * s.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := (compress.Gorilla{}).Compress(s, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressPMC(b *testing.B) {
	s := benchSeries()
	c, err := (compress.PMC{}).Compress(s, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * s.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForecastDLinearPredict(b *testing.B) {
	ds := datasets.MustLoad("ETTm1", 0.03, 1)
	train, val, test, err := ds.Target().Split(0.7, 0.1, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := forecast.DefaultConfig()
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	cfg.Epochs = 3
	m, err := forecast.New("DLinear", cfg)
	if err != nil {
		b.Fatal(err)
	}
	var sc timeseries.StandardScaler
	if err := sc.Fit(train.Values); err != nil {
		b.Fatal(err)
	}
	if err := m.Fit(sc.Transform(train.Values), sc.Transform(val.Values)); err != nil {
		b.Fatal(err)
	}
	ws, err := timeseries.MakeWindows(sc.Transform(test.Values), cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		b.Fatal(err)
	}
	inputs := ws.Inputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Inner-grid parallelism benchmarks --------------------------------------

// innerGridOptions is one dataset's inner forecasting grid, sized so the
// (model, seed) fan-out dominates: a shallow and two heavier models, two
// seeds each, over 2 bounds x 3 methods = 6 cells.
func innerGridOptions() core.Options {
	o := core.DefaultOptions()
	o.Datasets = []string{"ETTm1"}
	o.Models = []string{"Arima", "GBoost", "DLinear"}
	o.ErrorBounds = []float64{0.05, 0.2}
	o.ShallowSeeds = 2
	o.DeepSeeds = 2
	o.Forecast.Epochs = 4
	o.Forecast.MaxTrainWindows = 64
	return o
}

// benchInnerGrid measures a full fresh evaluation of the inner grid at the
// given parallelism. The memoisation cache is reset every iteration so each
// run pays the real cost; results are bit-identical at every setting, so
// the two benchmarks below are directly comparable. Their ratio is the
// inner-grid speedup (recorded in EXPERIMENTS.md).
func benchInnerGrid(b *testing.B, parallelism int) {
	b.Helper()
	opts := innerGridOptions()
	opts.Parallelism = parallelism
	for i := 0; i < b.N; i++ {
		core.ResetGridCache()
		g, err := core.RunGrid(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(g.Timings.Forecast.Seconds(), "forecastSec")
			b.ReportMetric(float64(g.Timings.Units), "units")
			b.ReportMetric(float64(g.Timings.CellEvals), "cellEvals")
		}
	}
}

func BenchmarkEvaluateDatasetSequential(b *testing.B) { benchInnerGrid(b, 1) }

func BenchmarkEvaluateDatasetParallel(b *testing.B) { benchInnerGrid(b, 0) }
