module lossyts

go 1.22
