// Package lossyts is a from-scratch Go reproduction of "Evaluating the
// Impact of Error-Bounded Lossy Compression on Time Series Forecasting"
// (EDBT 2024): three pointwise error-bounded lossy compressors (PMC-Mean,
// Swing, SZ) and a lossless baseline (Gorilla), seven forecasting models
// (Arima, GBoost, DLinear, GRU, Informer, NBeats, Transformer) built on an
// internal autodiff engine, 40+ time series characteristics, exact
// TreeSHAP, Kneedle elbow detection, synthetic versions of the paper's six
// datasets, and an evaluation harness that regenerates every table and
// figure of the paper's evaluation section.
//
// The root package is a thin facade over the internal packages; see
// README.md for a tour and DESIGN.md for the system inventory.
//
// Quick start:
//
//	ds := lossyts.MustLoadDataset("ETTm1", 0.05, 1)
//	c, _ := lossyts.Compress(lossyts.PMC, ds.Target(), 0.05)
//	dec, _ := c.Decompress()
//	cr, _ := lossyts.Ratio(ds.Target(), c)
//	fmt.Printf("compression ratio %.1fx with <=5%% pointwise error\n", cr)
package lossyts
