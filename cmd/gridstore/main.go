// Command gridstore inspects a cell-addressed result store: which grid
// signatures it holds, how many cell records per dataset, and whether it
// records a completed run (loadable) or only checkpoints of an interrupted
// one (resumable).
//
//	gridstore results.cells
//	gridstore -verify results.cells   # additionally assemble the grid
package main

import (
	"flag"
	"fmt"
	"os"

	"lossyts/internal/core"
)

func main() {
	verify := flag.Bool("verify", false, "assemble the stored grid (errors if the store has no completed run)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gridstore [-verify] <store file>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	info, err := core.InspectStore(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridstore:", err)
		os.Exit(1)
	}
	fmt.Print(info.String())
	if *verify {
		g, err := core.LoadGrid(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridstore:", err)
			os.Exit(1)
		}
		fmt.Println(g.Provenance.String())
	}
}
