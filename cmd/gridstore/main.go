// Command gridstore inspects and manipulates cell-addressed result stores.
//
// Inspect (default): which grid signatures a store holds, how many cell
// records per dataset, and whether it records a completed run (loadable) or
// only checkpoints of an interrupted one (resumable).
//
//	gridstore results.cells
//	gridstore -verify results.cells       # additionally assemble the grid
//
// Merge: combine per-worker journals into one canonical store, stamped with
// the worker count for provenance. Journals from the same option set hold
// bit-identical records for shared keys; any disagreement is an error.
//
//	gridstore merge merged.cells w1.cells w2.cells w3.cells
//
// Diff: compare two stores record by record — keys present in only one,
// and keys present in both with different payloads. Exit code 1 when the
// stores conflict or differ.
//
//	gridstore diff a.cells b.cells
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lossyts/internal/core"
	"lossyts/internal/core/cellstore"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable argv and streams, so tests can drive every
// subcommand without a subprocess.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "merge":
			return runMerge(args[1:], stdout, stderr)
		case "diff":
			return runDiff(args[1:], stdout, stderr)
		}
	}
	return runInspect(args, stdout, stderr)
}

func runInspect(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridstore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verify := fs.Bool("verify", false, "assemble the stored grid (errors if the store has no completed run)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: gridstore [-verify] <store file>")
		fmt.Fprintln(stderr, "       gridstore merge <dst> <src>...")
		fmt.Fprintln(stderr, "       gridstore diff <a> <b>")
		return 2
	}
	path := fs.Arg(0)
	info, err := core.InspectStore(path)
	if err != nil {
		fmt.Fprintln(stderr, "gridstore:", err)
		return 1
	}
	fmt.Fprint(stdout, info.String())
	if *verify {
		g, err := core.LoadGrid(path)
		if err != nil {
			fmt.Fprintln(stderr, "gridstore:", err)
			return 1
		}
		fmt.Fprintln(stdout, g.Provenance.String())
	}
	return 0
}

func runMerge(args []string, stdout, stderr io.Writer) int {
	if len(args) < 2 {
		fmt.Fprintln(stderr, "usage: gridstore merge <dst> <src>...")
		return 2
	}
	dst, srcs := args[0], args[1:]
	stats, err := core.MergeWorkerStores(dst, srcs)
	if err != nil {
		fmt.Fprintln(stderr, "gridstore:", err)
		return 1
	}
	fmt.Fprintf(stdout, "merged %d journal(s) into %s: %d records\n", stats.Sources, dst, stats.Records)
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		fmt.Fprintln(stderr, "usage: gridstore diff <a> <b>")
		return 2
	}
	d, err := cellstore.Diff(args[0], args[1])
	if err != nil {
		fmt.Fprintln(stderr, "gridstore:", err)
		return 1
	}
	if d.Clean() {
		fmt.Fprintln(stdout, "stores agree: same keys, same payloads")
		return 0
	}
	printKeys(stdout, fmt.Sprintf("only in %s", args[0]), d.OnlyA)
	printKeys(stdout, fmt.Sprintf("only in %s", args[1]), d.OnlyB)
	printKeys(stdout, "conflicting payloads", d.Conflicts)
	return 1
}

func printKeys(w io.Writer, label string, keys []string) {
	if len(keys) == 0 {
		return
	}
	fmt.Fprintf(w, "%s (%d):\n", label, len(keys))
	for _, k := range keys {
		fmt.Fprintf(w, "  %s\n", k)
	}
}
