package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lossyts/internal/core/cellstore"
)

// makeStore writes a store holding the given records and returns its path.
func makeStore(t *testing.T, dir, name string, records map[string]string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	s, err := cellstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range sortedKeys(records) {
		if err := s.Put(k, []byte(records[k])); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestRunSubcommands(t *testing.T) {
	dir := t.TempDir()
	a := makeStore(t, dir, "a.cells", map[string]string{"k1": "v1", "shared": "s"})
	b := makeStore(t, dir, "b.cells", map[string]string{"k2": "v2", "shared": "s"})
	conflicting := makeStore(t, dir, "c.cells", map[string]string{"shared": "DIFFERENT"})

	cases := []struct {
		name       string
		args       []string
		wantCode   int
		wantStdout []string // substrings that must appear
		wantStderr []string
	}{
		{
			name:       "no args usage",
			args:       nil,
			wantCode:   2,
			wantStderr: []string{"usage: gridstore"},
		},
		{
			name:       "inspect missing file",
			args:       []string{filepath.Join(dir, "nope.cells")},
			wantCode:   1,
			wantStderr: []string{"gridstore:"},
		},
		{
			name:       "merge usage",
			args:       []string{"merge", "only-dst"},
			wantCode:   2,
			wantStderr: []string{"usage: gridstore merge"},
		},
		{
			name:       "merge clean",
			args:       []string{"merge", filepath.Join(dir, "merged.cells"), a, b},
			wantCode:   0,
			wantStdout: []string{"merged 2 journal(s)", "3 records"},
		},
		{
			name:       "merge conflict",
			args:       []string{"merge", filepath.Join(dir, "bad.cells"), a, conflicting},
			wantCode:   1,
			wantStderr: []string{"disagree", "shared"},
		},
		{
			name:       "diff usage",
			args:       []string{"diff", a},
			wantCode:   2,
			wantStderr: []string{"usage: gridstore diff"},
		},
		{
			name:       "diff identical",
			args:       []string{"diff", a, a},
			wantCode:   0,
			wantStdout: []string{"stores agree"},
		},
		{
			name:     "diff differing",
			args:     []string{"diff", a, b},
			wantCode: 1,
			wantStdout: []string{
				"only in " + a, "k1",
				"only in " + b, "k2",
			},
		},
		{
			name:       "diff conflict",
			args:       []string{"diff", a, conflicting},
			wantCode:   1,
			wantStdout: []string{"conflicting payloads", "shared"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.wantCode {
				t.Fatalf("exit = %d, want %d (stderr: %s)", got, tc.wantCode, stderr.String())
			}
			for _, want := range tc.wantStdout {
				if !strings.Contains(stdout.String(), want) {
					t.Errorf("stdout missing %q:\n%s", want, stdout.String())
				}
			}
			for _, want := range tc.wantStderr {
				if !strings.Contains(stderr.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr.String())
				}
			}
		})
	}
}

// TestMergeStampsWorkers: the merge subcommand produces a store whose
// workers stamp records how many journals were combined.
func TestMergeStampsWorkers(t *testing.T) {
	dir := t.TempDir()
	a := makeStore(t, dir, "a.cells", map[string]string{"k1": "v1"})
	b := makeStore(t, dir, "b.cells", map[string]string{"k2": "v2"})
	dst := filepath.Join(dir, "merged.cells")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"merge", dst, a, b}, &stdout, &stderr); code != 0 {
		t.Fatalf("merge failed: %s", stderr.String())
	}
	s, err := cellstore.OpenReadOnly(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if v, ok := s.Get("workers"); !ok || string(v) != "2" {
		t.Fatalf("workers stamp = %q, %v", v, ok)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatal(err)
	}
}
