// Command streambench compares the memory footprint of the batch and
// chunked-streaming data planes over the generate → compress → reconstruct
// path and writes the comparison to a JSON file (BENCH_stream.json by
// default). The batch side materialises the full synthetic frame before
// compressing; the streaming side generates, compresses, and reconstructs
// chunk by chunk, so its allocations are O(chunk) plus the payload instead
// of O(n) — while producing the byte-identical payload, which the tool
// verifies. CI runs it with -quick as a smoke check; EXPERIMENTS.md quotes
// the full run's numbers.
//
// Usage:
//
//	streambench [-quick] [-out BENCH_stream.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"lossyts/internal/cli"
	"lossyts/internal/compress"
	"lossyts/internal/datasets"
)

// measurement is one timed pass through the generate→compress→reconstruct
// path. AllocBytes and Mallocs are runtime.MemStats deltas: cumulative
// allocation, the honest signal of how much data the path materialises.
type measurement struct {
	Mode         string  `json:"mode"` // "batch" or "stream"
	Chunk        int     `json:"chunk,omitempty"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	Mallocs      uint64  `json:"mallocs"`
	MsTotal      float64 `json:"ms_total"`
	PayloadBytes int     `json:"payload_bytes"`
}

// datasetResult compares the two data planes on one dataset.
type datasetResult struct {
	Dataset string        `json:"dataset"`
	N       int           `json:"n"`
	Batch   measurement   `json:"batch"`
	Streams []measurement `json:"streams"`
	// Identical reports that every streamed payload matched the batch
	// payload byte for byte.
	Identical bool `json:"identical"`
	// AllocRatio is batch allocation over the smallest streaming
	// allocation: how many times more memory the batch plane touches.
	AllocRatio float64 `json:"alloc_ratio"`
}

// kernelMeasure is one direction (compress or decompress) of one kernel's
// codec cost: the full operation a cache-missed request pays (header + kernel
// + gzip framing, or gunzip + parse + replay), averaged over steady-state
// iterations against warm pools.
type kernelMeasure struct {
	PointsPerSec float64 `json:"points_per_sec"`
	NsPerPoint   float64 `json:"ns_per_point"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	// Speedup is PointsPerSec over the committed pre-rework baseline for the
	// same kernel, direction, and point count (0 when no baseline is known).
	Speedup float64 `json:"speedup,omitempty"`
}

// kernelResult is one stream kernel's row in the codec table.
type kernelResult struct {
	Method     string        `json:"method"`
	Points     int           `json:"points"`
	Compress   kernelMeasure `json:"compress"`
	Decompress kernelMeasure `json:"decompress"`
}

type report struct {
	Tool   string  `json:"tool"`
	Quick  bool    `json:"quick"`
	GoArch string  `json:"goarch"`
	Method string  `json:"method"`
	Eps    float64 `json:"eps"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	// Note documents what the streaming numbers exclude: the one-time O(n)
	// calibration pass is warmed (and cached) before measuring, because a
	// long-running process pays it once per dataset configuration.
	Note     string          `json:"note"`
	Results  []datasetResult `json:"results"`
	Kernels  []kernelResult  `json:"kernels"`
	Headline struct {
		MinAllocRatio      float64 `json:"min_alloc_ratio"`
		AllIdentical       bool    `json:"all_identical"`
		MaxCompressSpeedup float64 `json:"max_compress_speedup"`
		// MaxCodecSpeedup is the best speedup across both directions —
		// the codec-layer headline (SZ decompress in the committed run).
		MaxCodecSpeedup float64 `json:"max_codec_speedup"`
	} `json:"headline"`
}

// kernelBaselines holds the pre-rework full-operation throughput
// (points/sec at 20000 points, eps 0.05, same synthetic series) measured on
// the reference host before the pooled zero-allocation codec path landed.
// Speedups are only reported when the run uses the same point count.
const kernelBaselinePoints = 20000

var kernelBaselines = map[string][2]float64{
	// method: {compress points/sec, decompress points/sec}
	"PMC":     {20000 / 8.527e-3, 20000 / 0.710e-3},
	"SWING":   {20000 / 5.888e-3, 20000 / 1.595e-3},
	"SZ":      {20000 / 7.162e-3, 20000 / 8.142e-3},
	"GORILLA": {20000 / 13.181e-3, 20000 / 5.014e-3},
}

func main() {
	var (
		out    = flag.String("out", "BENCH_stream.json", "output JSON path")
		quick  = flag.Bool("quick", false, "smoke mode: small scale, one chunk size")
		method = flag.String("method", "PMC", "compression method to stream")
		eps    = flag.Float64("eps", 0.05, "pointwise relative error bound")
		scale  = flag.Float64("scale", 0.2, "dataset length scale in (0, 1]")
		seed   = flag.Int64("seed", 1, "generation seed")
		names  = flag.String("datasets", "", "comma-separated dataset subset (default: all six)")
		common = cli.BindProfiling(flag.CommandLine)
	)
	flag.Parse()
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "streambench:", err)
		os.Exit(1)
	}
	runErr := run(*out, *quick, *method, *eps, *scale, *seed, cli.SplitList(*names))
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "streambench:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "streambench:", runErr)
		os.Exit(1)
	}
}

func run(out string, quick bool, method string, eps, scale float64, seed int64, names []string) error {
	m := compress.Method(method)
	if _, err := compress.New(m); err != nil {
		return err
	}
	chunks := []int{128, 512, 2048}
	if quick {
		scale = 0.02
		chunks = []int{512}
	}
	if len(names) == 0 {
		names = datasets.Names
	}
	rep := report{
		Tool:   "streambench",
		Quick:  quick,
		GoArch: runtime.GOARCH,
		Method: method,
		Eps:    eps,
		Scale:  scale,
		Seed:   seed,
		Note: "alloc_bytes are cumulative runtime.MemStats deltas over generate+compress+reconstruct; " +
			"the streaming side's one-time calibration pass is warmed before measuring (cached per dataset config)",
	}
	rep.Headline.MinAllocRatio = 0
	rep.Headline.AllIdentical = true
	for _, name := range names {
		dr, err := benchDataset(name, m, eps, scale, seed, chunks)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Results = append(rep.Results, dr)
		if rep.Headline.MinAllocRatio == 0 || dr.AllocRatio < rep.Headline.MinAllocRatio {
			rep.Headline.MinAllocRatio = dr.AllocRatio
		}
		rep.Headline.AllIdentical = rep.Headline.AllIdentical && dr.Identical
		fmt.Printf("%-8s n=%-7d batch %8.1f KB   stream(best) %8.1f KB   ratio %6.1fx   identical=%v\n",
			name, dr.N, float64(dr.Batch.AllocBytes)/1024,
			float64(dr.Batch.AllocBytes)/1024/dr.AllocRatio, dr.AllocRatio, dr.Identical)
	}
	kernelPoints, kernelIters := kernelBaselinePoints, 30
	if quick {
		kernelPoints, kernelIters = 4096, 5
	}
	kernelMethods := append(append([]compress.Method{}, compress.Methods...), compress.MethodGorilla)
	for _, km := range kernelMethods {
		kr, err := benchKernel(km, eps, kernelPoints, kernelIters)
		if err != nil {
			continue // methods without a streaming kernel have no codec row
		}
		rep.Kernels = append(rep.Kernels, kr)
		if kr.Compress.Speedup > rep.Headline.MaxCompressSpeedup {
			rep.Headline.MaxCompressSpeedup = kr.Compress.Speedup
		}
		for _, sp := range []float64{kr.Compress.Speedup, kr.Decompress.Speedup} {
			if sp > rep.Headline.MaxCodecSpeedup {
				rep.Headline.MaxCodecSpeedup = sp
			}
		}
		fmt.Printf("%-8s codec: compress %10.0f pts/s  %6.1f ns/pt  %5.1f allocs/op   decompress %10.0f pts/s  %6.1f ns/pt  %5.1f allocs/op\n",
			kr.Method, kr.Compress.PointsPerSec, kr.Compress.NsPerPoint, kr.Compress.AllocsPerOp,
			kr.Decompress.PointsPerSec, kr.Decompress.NsPerPoint, kr.Decompress.AllocsPerOp)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// benchKernel measures one stream kernel's full compress and decompress
// operations in steady state: a warm-up op first, so the codec pools are
// populated and the measured iterations reflect a long-running process.
func benchKernel(m compress.Method, eps float64, points, iters int) (kernelResult, error) {
	kr := kernelResult{Method: string(m), Points: points}
	// The series replicates the compress package's benchmark generator
	// (synthSeries with seed 63): noisy daily sine with zero-inflation and
	// negative excursions, so the committed baselines — measured with the
	// package benchmarks on the same shape — compare like for like.
	rng := rand.New(rand.NewSource(63))
	values := make([]float64, points)
	for i := range values {
		base := 10 + 8*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()
		switch {
		case rng.Float64() < 0.05:
			base = 0
		case rng.Float64() < 0.05:
			base = -base / 2
		}
		values[i] = base
	}
	const start, interval = 1_600_000_000, 900

	compressOnce := func(keep bool) (*compress.Compressed, error) {
		enc, err := compress.NewStreamEncoderAt(m, start, interval, eps)
		if err != nil {
			return nil, err
		}
		for _, v := range values {
			if err := enc.Push(v); err != nil {
				return nil, err
			}
		}
		buf := compress.GetBytes(4096)
		c, err := enc.CloseAppend(buf)
		if err != nil {
			compress.PutBytes(buf)
			return nil, err
		}
		var kept *compress.Compressed
		if keep {
			kept = c.Clone()
		}
		compress.PutBytes(c.Payload)
		enc.Release()
		return kept, nil
	}

	// Warm-up doubles as the streaming-support probe.
	c, err := compressOnce(true)
	if err != nil {
		return kr, err
	}

	comp, err := timedOp(iters, func() error {
		_, err := compressOnce(false)
		return err
	})
	if err != nil {
		return kr, err
	}
	kr.Compress = comp.toKernelMeasure(points)

	decompressOnce := func() error {
		dec, err := compress.NewStreamDecoder(c, 512)
		if err != nil {
			return err
		}
		for {
			if _, ok := dec.Next(); !ok {
				break
			}
		}
		err = dec.Err()
		dec.Release()
		return err
	}
	if err := decompressOnce(); err != nil {
		return kr, err
	}
	dec, err := timedOp(iters, decompressOnce)
	if err != nil {
		return kr, err
	}
	kr.Decompress = dec.toKernelMeasure(points)

	if base, ok := kernelBaselines[string(m)]; ok && points == kernelBaselinePoints {
		kr.Compress.Speedup = round2(kr.Compress.PointsPerSec / base[0])
		kr.Decompress.Speedup = round2(kr.Decompress.PointsPerSec / base[1])
	}
	return kr, nil
}

// opStats is the raw outcome of timedOp: wall time and allocation count per
// iteration.
type opStats struct {
	nsPerOp     float64
	allocsPerOp float64
}

func (s opStats) toKernelMeasure(points int) kernelMeasure {
	return kernelMeasure{
		PointsPerSec: round2(float64(points) / (s.nsPerOp / 1e9)),
		NsPerPoint:   round2(s.nsPerOp / float64(points)),
		AllocsPerOp:  s.allocsPerOp,
	}
}

// timedOp runs fn iters times between forced GCs and returns per-op averages.
func timedOp(iters int, fn func() error) (opStats, error) {
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return opStats{}, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	return opStats{
		nsPerOp:     float64(elapsed.Nanoseconds()) / float64(iters),
		allocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(iters),
	}, nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

// benchDataset measures the batch plane once and the streaming plane at each
// chunk size, checking that every streamed payload equals the batch payload.
func benchDataset(name string, m compress.Method, eps, scale float64, seed int64, chunks []int) (datasetResult, error) {
	var dr datasetResult
	dr.Dataset = name

	// Batch: materialise the whole frame, compress the target, reconstruct.
	var batchPayload []byte
	batch, err := measure(func() (int, error) {
		ds, err := datasets.Load(name, scale, seed)
		if err != nil {
			return 0, err
		}
		target := ds.Target()
		dr.N = target.Len()
		comp, err := compress.New(m)
		if err != nil {
			return 0, err
		}
		c, err := comp.Compress(target, eps)
		if err != nil {
			return 0, err
		}
		if _, err := c.Decompress(); err != nil {
			return 0, err
		}
		batchPayload = c.Payload
		return len(c.Payload), nil
	})
	if err != nil {
		return dr, err
	}
	batch.Mode = "batch"
	dr.Batch = batch

	// Warm the streaming calibration cache so the measured passes reflect
	// the steady state of a long-running process.
	if warm, err := datasets.StreamTarget(name, scale, seed, chunks[0]); err != nil {
		return dr, err
	} else if warm.Len() != dr.N {
		return dr, fmt.Errorf("stream length %d != batch %d", warm.Len(), dr.N)
	}

	dr.Identical = true
	var best uint64
	for _, chunk := range chunks {
		var payload []byte
		sm, err := measure(func() (int, error) {
			src, err := datasets.StreamTarget(name, scale, seed, chunk)
			if err != nil {
				return 0, err
			}
			enc, err := compress.NewStreamEncoderAt(m, src.Start(), src.Interval(), eps)
			if err != nil {
				return 0, err
			}
			for {
				c, ok := src.Next()
				if !ok {
					break
				}
				if err := enc.PushChunk(c); err != nil {
					return 0, err
				}
			}
			if err := src.Err(); err != nil {
				return 0, err
			}
			c, err := enc.Close()
			if err != nil {
				return 0, err
			}
			dec, err := compress.NewStreamDecoder(c, chunk)
			if err != nil {
				return 0, err
			}
			for {
				if _, ok := dec.Next(); !ok {
					break
				}
			}
			if err := dec.Err(); err != nil {
				return 0, err
			}
			payload = c.Payload
			return len(c.Payload), nil
		})
		if err != nil {
			return dr, err
		}
		sm.Mode = "stream"
		sm.Chunk = chunk
		dr.Streams = append(dr.Streams, sm)
		dr.Identical = dr.Identical && bytes.Equal(payload, batchPayload)
		if best == 0 || sm.AllocBytes < best {
			best = sm.AllocBytes
		}
	}
	if best > 0 {
		dr.AllocRatio = float64(dr.Batch.AllocBytes) / float64(best)
	}
	return dr, nil
}

// measure runs fn once between forced GCs and returns its MemStats deltas.
func measure(fn func() (int, error)) (measurement, error) {
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	payloadLen, err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return measurement{}, err
	}
	return measurement{
		AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
		Mallocs:      ms1.Mallocs - ms0.Mallocs,
		MsTotal:      float64(elapsed.Nanoseconds()) / 1e6,
		PayloadBytes: payloadLen,
	}, nil
}
