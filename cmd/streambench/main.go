// Command streambench compares the memory footprint of the batch and
// chunked-streaming data planes over the generate → compress → reconstruct
// path and writes the comparison to a JSON file (BENCH_stream.json by
// default). The batch side materialises the full synthetic frame before
// compressing; the streaming side generates, compresses, and reconstructs
// chunk by chunk, so its allocations are O(chunk) plus the payload instead
// of O(n) — while producing the byte-identical payload, which the tool
// verifies. CI runs it with -quick as a smoke check; EXPERIMENTS.md quotes
// the full run's numbers.
//
// Usage:
//
//	streambench [-quick] [-out BENCH_stream.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"lossyts/internal/cli"
	"lossyts/internal/compress"
	"lossyts/internal/datasets"
)

// measurement is one timed pass through the generate→compress→reconstruct
// path. AllocBytes and Mallocs are runtime.MemStats deltas: cumulative
// allocation, the honest signal of how much data the path materialises.
type measurement struct {
	Mode         string  `json:"mode"` // "batch" or "stream"
	Chunk        int     `json:"chunk,omitempty"`
	AllocBytes   uint64  `json:"alloc_bytes"`
	Mallocs      uint64  `json:"mallocs"`
	MsTotal      float64 `json:"ms_total"`
	PayloadBytes int     `json:"payload_bytes"`
}

// datasetResult compares the two data planes on one dataset.
type datasetResult struct {
	Dataset string        `json:"dataset"`
	N       int           `json:"n"`
	Batch   measurement   `json:"batch"`
	Streams []measurement `json:"streams"`
	// Identical reports that every streamed payload matched the batch
	// payload byte for byte.
	Identical bool `json:"identical"`
	// AllocRatio is batch allocation over the smallest streaming
	// allocation: how many times more memory the batch plane touches.
	AllocRatio float64 `json:"alloc_ratio"`
}

type report struct {
	Tool   string  `json:"tool"`
	Quick  bool    `json:"quick"`
	GoArch string  `json:"goarch"`
	Method string  `json:"method"`
	Eps    float64 `json:"eps"`
	Scale  float64 `json:"scale"`
	Seed   int64   `json:"seed"`
	// Note documents what the streaming numbers exclude: the one-time O(n)
	// calibration pass is warmed (and cached) before measuring, because a
	// long-running process pays it once per dataset configuration.
	Note     string          `json:"note"`
	Results  []datasetResult `json:"results"`
	Headline struct {
		MinAllocRatio float64 `json:"min_alloc_ratio"`
		AllIdentical  bool    `json:"all_identical"`
	} `json:"headline"`
}

func main() {
	var (
		out    = flag.String("out", "BENCH_stream.json", "output JSON path")
		quick  = flag.Bool("quick", false, "smoke mode: small scale, one chunk size")
		method = flag.String("method", "PMC", "compression method to stream")
		eps    = flag.Float64("eps", 0.05, "pointwise relative error bound")
		scale  = flag.Float64("scale", 0.2, "dataset length scale in (0, 1]")
		seed   = flag.Int64("seed", 1, "generation seed")
		names  = flag.String("datasets", "", "comma-separated dataset subset (default: all six)")
		common = cli.BindProfiling(flag.CommandLine)
	)
	flag.Parse()
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "streambench:", err)
		os.Exit(1)
	}
	runErr := run(*out, *quick, *method, *eps, *scale, *seed, cli.SplitList(*names))
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "streambench:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "streambench:", runErr)
		os.Exit(1)
	}
}

func run(out string, quick bool, method string, eps, scale float64, seed int64, names []string) error {
	m := compress.Method(method)
	if _, err := compress.New(m); err != nil {
		return err
	}
	chunks := []int{128, 512, 2048}
	if quick {
		scale = 0.02
		chunks = []int{512}
	}
	if len(names) == 0 {
		names = datasets.Names
	}
	rep := report{
		Tool:   "streambench",
		Quick:  quick,
		GoArch: runtime.GOARCH,
		Method: method,
		Eps:    eps,
		Scale:  scale,
		Seed:   seed,
		Note: "alloc_bytes are cumulative runtime.MemStats deltas over generate+compress+reconstruct; " +
			"the streaming side's one-time calibration pass is warmed before measuring (cached per dataset config)",
	}
	rep.Headline.MinAllocRatio = 0
	rep.Headline.AllIdentical = true
	for _, name := range names {
		dr, err := benchDataset(name, m, eps, scale, seed, chunks)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Results = append(rep.Results, dr)
		if rep.Headline.MinAllocRatio == 0 || dr.AllocRatio < rep.Headline.MinAllocRatio {
			rep.Headline.MinAllocRatio = dr.AllocRatio
		}
		rep.Headline.AllIdentical = rep.Headline.AllIdentical && dr.Identical
		fmt.Printf("%-8s n=%-7d batch %8.1f KB   stream(best) %8.1f KB   ratio %6.1fx   identical=%v\n",
			name, dr.N, float64(dr.Batch.AllocBytes)/1024,
			float64(dr.Batch.AllocBytes)/1024/dr.AllocRatio, dr.AllocRatio, dr.Identical)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}

// benchDataset measures the batch plane once and the streaming plane at each
// chunk size, checking that every streamed payload equals the batch payload.
func benchDataset(name string, m compress.Method, eps, scale float64, seed int64, chunks []int) (datasetResult, error) {
	var dr datasetResult
	dr.Dataset = name

	// Batch: materialise the whole frame, compress the target, reconstruct.
	var batchPayload []byte
	batch, err := measure(func() (int, error) {
		ds, err := datasets.Load(name, scale, seed)
		if err != nil {
			return 0, err
		}
		target := ds.Target()
		dr.N = target.Len()
		comp, err := compress.New(m)
		if err != nil {
			return 0, err
		}
		c, err := comp.Compress(target, eps)
		if err != nil {
			return 0, err
		}
		if _, err := c.Decompress(); err != nil {
			return 0, err
		}
		batchPayload = c.Payload
		return len(c.Payload), nil
	})
	if err != nil {
		return dr, err
	}
	batch.Mode = "batch"
	dr.Batch = batch

	// Warm the streaming calibration cache so the measured passes reflect
	// the steady state of a long-running process.
	if warm, err := datasets.StreamTarget(name, scale, seed, chunks[0]); err != nil {
		return dr, err
	} else if warm.Len() != dr.N {
		return dr, fmt.Errorf("stream length %d != batch %d", warm.Len(), dr.N)
	}

	dr.Identical = true
	var best uint64
	for _, chunk := range chunks {
		var payload []byte
		sm, err := measure(func() (int, error) {
			src, err := datasets.StreamTarget(name, scale, seed, chunk)
			if err != nil {
				return 0, err
			}
			enc, err := compress.NewStreamEncoderAt(m, src.Start(), src.Interval(), eps)
			if err != nil {
				return 0, err
			}
			for {
				c, ok := src.Next()
				if !ok {
					break
				}
				if err := enc.PushChunk(c); err != nil {
					return 0, err
				}
			}
			if err := src.Err(); err != nil {
				return 0, err
			}
			c, err := enc.Close()
			if err != nil {
				return 0, err
			}
			dec, err := compress.NewStreamDecoder(c, chunk)
			if err != nil {
				return 0, err
			}
			for {
				if _, ok := dec.Next(); !ok {
					break
				}
			}
			if err := dec.Err(); err != nil {
				return 0, err
			}
			payload = c.Payload
			return len(c.Payload), nil
		})
		if err != nil {
			return dr, err
		}
		sm.Mode = "stream"
		sm.Chunk = chunk
		dr.Streams = append(dr.Streams, sm)
		dr.Identical = dr.Identical && bytes.Equal(payload, batchPayload)
		if best == 0 || sm.AllocBytes < best {
			best = sm.AllocBytes
		}
	}
	if best > 0 {
		dr.AllocRatio = float64(dr.Batch.AllocBytes) / float64(best)
	}
	return dr, nil
}

// measure runs fn once between forced GCs and returns its MemStats deltas.
func measure(fn func() (int, error)) (measurement, error) {
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	payloadLen, err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return measurement{}, err
	}
	return measurement{
		AllocBytes:   ms1.TotalAlloc - ms0.TotalAlloc,
		Mallocs:      ms1.Mallocs - ms0.Mallocs,
		MsTotal:      float64(elapsed.Nanoseconds()) / 1e6,
		PayloadBytes: payloadLen,
	}, nil
}
