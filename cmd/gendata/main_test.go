package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGendataWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "wind.csv")
	if err := run("Wind", 0.005, 1, out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatal("empty file")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "timestamp,POWER") {
		t.Fatalf("header = %q", header)
	}
	rows := 0
	for sc.Scan() {
		if cols := strings.Count(sc.Text(), ","); cols != strings.Count(header, ",") {
			t.Fatalf("ragged row %d: %q", rows, sc.Text())
		}
		rows++
	}
	if rows < 1000 {
		t.Fatalf("only %d rows", rows)
	}
}

func TestGendataErrors(t *testing.T) {
	if err := run("Nope", 0.01, 1, filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Error("unknown dataset should error")
	}
	if err := run("Wind", 0.01, 1, "/nonexistent/dir/x.csv"); err == nil {
		t.Error("unwritable path should error")
	}
}
