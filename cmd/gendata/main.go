// Command gendata materialises a synthetic dataset as a CSV file — the
// offline stand-in for the data release accompanying the paper (which
// published the Wind dataset). The CSV has a header row and one
// "timestamp,col1,col2,..." row per observation; the first value column is
// the forecasting target.
//
//	gendata -dataset Wind -scale 0.01 -out wind.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"lossyts/internal/cli"
	"lossyts/internal/datasets"
)

func main() {
	var (
		dataset = flag.String("dataset", "Wind", "dataset: ETTm1, ETTm2, Solar, Weather, ElecDem, Wind")
		scale   = flag.Float64("scale", 0.01, "length scale in (0, 1]")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output CSV path (default <dataset>.csv)")
		common  = cli.BindProfiling(flag.CommandLine)
	)
	flag.Parse()
	if *out == "" {
		*out = *dataset + ".csv"
	}
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
		os.Exit(1)
	}
	runErr := run(*dataset, *scale, *seed, *out)
	// Profiles are flushed before any exit path: os.Exit skips defers.
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "gendata:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "gendata:", runErr)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, seed int64, out string) error {
	ds, err := datasets.Load(dataset, scale, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprint(w, "timestamp")
	for _, c := range ds.Frame.Columns {
		fmt.Fprintf(w, ",%s", c.Name)
	}
	fmt.Fprintln(w)
	n := ds.Frame.Len()
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d", ds.Frame.Columns[0].TimeAt(i))
		for _, c := range ds.Frame.Columns {
			fmt.Fprintf(w, ",%g", c.Values[i])
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d rows x %d columns to %s (target column: %s)\n",
		n, len(ds.Frame.Columns), out, ds.Target().Name)
	return nil
}
