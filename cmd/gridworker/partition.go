package main

import (
	"lossyts"
	"lossyts/internal/core"
)

// runPartition executes the worker's slice through the facade.
func runPartition(opts core.Options, workers, index int, peers []string) (core.WorkerSummary, error) {
	return lossyts.RunGridPartition(opts, workers, index, peers)
}
