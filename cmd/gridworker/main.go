// Command gridworker runs one partition of the evaluation grid against its
// own result journal and exits with a machine-readable provenance summary
// (JSON on stdout). N workers, one per partition, turn a grid run into an
// elastically scalable job:
//
//	gridworker -partition 1/3 -store w1.cells &
//	gridworker -partition 2/3 -store w2.cells &
//	gridworker -partition 3/3 -store w3.cells &
//	wait
//	gridstore merge merged.cells w1.cells w2.cells w3.cells
//
// The merged store is byte-for-byte interchangeable with a one-process
// run's checkpoint store: load it with evalimpl -store merged.cells.
//
// With -peers, a worker that finishes its own slice scans the listed peer
// journals and computes whatever nobody has claimed or checkpointed, so
// one dead worker delays the grid by a steal pass instead of forever.
// Workers share nothing but the filesystem; they can run as local
// processes or on separate machines over a shared mount.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lossyts/internal/cli"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and argv, so tests can drive it.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("gridworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		partition = fs.String("partition", "1/1", "partition to run, 1-based: i/n (e.g. 2/3 = second of three workers)")
		peers     = fs.String("peers", "", "comma-separated peer journals to scan for unclaimed work after the owned slice drains")
		grid      = cli.BindGrid(fs)
		common    = cli.Bind(fs)
	)
	common.BindStream(fs)
	common.BindStore(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	index, workers, err := cli.ParsePartition(*partition)
	if err != nil {
		fmt.Fprintln(stderr, "gridworker:", err)
		return 2
	}
	if common.Store == "" {
		fmt.Fprintln(stderr, "gridworker: -store is required (the worker's own journal)")
		return 2
	}
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(stderr, "gridworker:", err)
		return 1
	}
	summary, err := runPartition(grid.Options(common), workers, index, cli.SplitList(*peers))
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(stderr, "gridworker:", err)
		return 1
	}
	enc := json.NewEncoder(stdout)
	if err := enc.Encode(summary); err != nil {
		fmt.Fprintln(stderr, "gridworker:", err)
		return 1
	}
	return 0
}
