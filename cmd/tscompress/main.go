// Command tscompress compresses a univariate time series CSV with one of
// the paper's methods and reports the compression ratio, transformation
// error, and segment count. With -roundtrip it writes the decompressed
// series back out so the loss can be inspected.
//
// Input format: one value per line, or "timestamp,value" lines (the
// timestamps must be regular). Example:
//
//	tscompress -method PMC -eps 0.05 -in data.csv
//	tscompress -method SZ -eps 0.1 -in data.csv -roundtrip out.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lossyts/internal/cli"
	"lossyts/internal/compress"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

func main() {
	var (
		method    = flag.String("method", "PMC", "compression method: "+cli.MethodList(compress.Registered()))
		eps       = flag.Float64("eps", 0.05, "pointwise relative error bound")
		in        = flag.String("in", "", "input CSV (one value per line, or timestamp,value)")
		roundtrip = flag.String("roundtrip", "", "write the decompressed series to this file")
		interval  = flag.Int64("interval", 60, "sampling interval in seconds (when input has no timestamps)")
		common    = cli.BindProfiling(flag.CommandLine)
	)
	common.BindStream(flag.CommandLine)
	flag.Parse()
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tscompress:", err)
		os.Exit(1)
	}
	runErr := run(*method, *eps, *in, *roundtrip, *interval, common)
	// Profiles are flushed before any exit path: os.Exit skips defers.
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "tscompress:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tscompress:", runErr)
		os.Exit(1)
	}
}

func run(method string, eps float64, in, roundtrip string, interval int64, common *cli.Common) error {
	if in == "" {
		return fmt.Errorf("missing -in file")
	}
	s, err := readSeries(in, interval)
	if err != nil {
		return err
	}
	comp, err := compress.New(compress.Method(method))
	if err != nil {
		return err
	}
	var c *compress.Compressed
	var dec *timeseries.Series
	if common.Stream {
		// The chunked data plane: encode from a chunk source, decode through
		// a chunked decoder. Payload and reconstruction are byte-identical
		// to the batch path.
		c, dec, err = streamRoundTrip(comp, s, eps, common.ChunkSize)
	} else {
		c, err = comp.Compress(s, eps)
		if err == nil {
			dec, err = c.Decompress()
		}
	}
	if err != nil {
		return err
	}
	cr, err := compress.Ratio(s, c)
	if err != nil {
		return err
	}
	te, err := stats.Evaluate(s.Values, dec.Values)
	if err != nil {
		return err
	}
	maxRel, err := s.MaxRelError(dec)
	if err != nil {
		return err
	}
	if common.Stream {
		chunk := common.ChunkSize
		if chunk <= 0 {
			chunk = timeseries.DefaultChunkSize
		}
		fmt.Printf("mode         streamed (chunks of %d)\n", chunk)
	}
	fmt.Printf("method       %s\n", c.Method)
	fmt.Printf("error bound  %g\n", eps)
	fmt.Printf("points       %d\n", c.N)
	fmt.Printf("segments     %d\n", c.Segments)
	fmt.Printf("size         %d bytes (.gz)\n", c.Size())
	fmt.Printf("ratio        %.2fx\n", cr)
	fmt.Printf("TE (NRMSE)   %.6f\n", te.NRMSE)
	fmt.Printf("TE (RMSE)    %.6f\n", te.RMSE)
	fmt.Printf("max rel err  %.6f\n", maxRel)
	if roundtrip != "" {
		if err := writeSeries(roundtrip, dec); err != nil {
			return err
		}
		fmt.Printf("decompressed series written to %s\n", roundtrip)
	}
	return nil
}

// streamRoundTrip compresses and reconstructs through the chunked streaming
// data plane. Methods without an incremental kernel fall back to a buffered
// streaming encoder (same payload, O(n) memory).
func streamRoundTrip(comp compress.Compressor, s *timeseries.Series, eps float64, chunk int) (*compress.Compressed, *timeseries.Series, error) {
	if chunk <= 0 {
		chunk = timeseries.DefaultChunkSize
	}
	enc, err := compress.NewStreamEncoder(comp.Method(), s, eps)
	if err != nil {
		enc, err = compress.NewBufferedStreamEncoder(comp, s.Start, s.Interval, eps)
		if err != nil {
			return nil, nil, err
		}
	}
	src := s.Chunks(chunk)
	for {
		ch, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.PushChunk(ch); err != nil {
			return nil, nil, err
		}
	}
	if err := src.Err(); err != nil {
		return nil, nil, err
	}
	c, err := enc.Close()
	if err != nil {
		return nil, nil, err
	}
	sd, err := compress.NewStreamDecoder(c, chunk)
	if err != nil {
		return nil, nil, err
	}
	dec, err := timeseries.Collect(s.Name, sd)
	if err != nil {
		return nil, nil, err
	}
	return c, dec, nil
}

func readSeries(path string, interval int64) (*timeseries.Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var values []float64
	var firstTS int64
	var prevTS int64
	hasTS := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		var vStr string
		switch len(parts) {
		case 1:
			vStr = parts[0]
		case 2:
			ts, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", line, parts[0])
			}
			if len(values) == 0 {
				firstTS = ts
			} else if len(values) == 1 {
				interval = ts - prevTS
			} else if ts-prevTS != interval {
				return nil, fmt.Errorf("line %d: irregular interval (%d != %d)", line, ts-prevTS, interval)
			}
			prevTS = ts
			hasTS = true
			vStr = parts[1]
		default:
			return nil, fmt.Errorf("line %d: want 'value' or 'timestamp,value'", line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(vStr), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", line, vStr)
		}
		values = append(values, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("%s: no values", path)
	}
	if !hasTS {
		firstTS = 0
	}
	return timeseries.New(path, firstTS, interval, values), nil
}

func writeSeries(path string, s *timeseries.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, v := range s.Values {
		fmt.Fprintf(w, "%d,%g\n", s.TimeAt(i), v)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return nil
}
