package main

import (
	"os"
	"path/filepath"
	"testing"

	"lossyts/internal/cli"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadSeriesValuesOnly(t *testing.T) {
	path := writeTemp(t, "1.5\n2.5\n\n# comment\n3.5\n")
	s, err := readSeries(path, 60)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Values[2] != 3.5 || s.Interval != 60 {
		t.Fatalf("series = %+v", s)
	}
}

func TestReadSeriesWithTimestamps(t *testing.T) {
	path := writeTemp(t, "100,1\n160,2\n220,3\n")
	s, err := readSeries(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Start != 100 || s.Interval != 60 || s.Len() != 3 {
		t.Fatalf("series = start %d interval %d len %d", s.Start, s.Interval, s.Len())
	}
}

func TestReadSeriesErrors(t *testing.T) {
	cases := map[string]string{
		"irregular":     "100,1\n160,2\n230,3\n",
		"bad value":     "abc\n",
		"bad timestamp": "xx,1\n",
		"too many cols": "1,2,3\n",
		"empty":         "\n",
	}
	for name, content := range cases {
		if _, err := readSeries(writeTemp(t, content), 60); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	if _, err := readSeries("/nonexistent/file.csv", 60); err == nil {
		t.Error("missing file should error")
	}
}

func TestWriteSeriesRoundTrip(t *testing.T) {
	in := writeTemp(t, "100,1.25\n160,2.5\n")
	s, err := readSeries(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "out.csv")
	if err := writeSeries(out, s); err != nil {
		t.Fatal(err)
	}
	back, err := readSeries(out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(back) {
		t.Fatal("write/read round trip mismatch")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var content string
	for i := 0; i < 300; i++ {
		content += "10.5\n10.6\n10.4\n"
	}
	in := writeTemp(t, content)
	out := filepath.Join(t.TempDir(), "rt.csv")
	if err := run("PMC", 0.05, in, out, 60, &cli.Common{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal("roundtrip file not written")
	}
	if err := run("NOPE", 0.05, in, "", 60, &cli.Common{}); err == nil {
		t.Error("unknown method should error")
	}
	if err := run("PMC", 0.05, "", "", 60, &cli.Common{}); err == nil {
		t.Error("missing input should error")
	}
}

// TestRunStreamed drives the -stream path and checks the chunked round trip
// writes the same reconstruction as the batch path.
func TestRunStreamed(t *testing.T) {
	var content string
	for i := 0; i < 300; i++ {
		content += "10.5\n10.6\n10.4\n"
	}
	in := writeTemp(t, content)
	outBatch := filepath.Join(t.TempDir(), "batch.csv")
	outStream := filepath.Join(t.TempDir(), "stream.csv")
	if err := run("SZ", 0.05, in, outBatch, 60, &cli.Common{}); err != nil {
		t.Fatal(err)
	}
	if err := run("SZ", 0.05, in, outStream, 60, &cli.Common{Stream: true, ChunkSize: 77}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(outBatch)
	if err != nil {
		t.Fatal(err)
	}
	s, err := os.ReadFile(outStream)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(s) {
		t.Fatal("streamed reconstruction differs from batch")
	}
}
