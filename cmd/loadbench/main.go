// Command loadbench is a closed-loop load generator for tsserve. It drives
// the expensive endpoint (/v1/forecast) in two phases — a cold phase of
// distinct requests that must be computed, then a warm phase that repeats
// them against the now-populated cache — and writes latency percentiles,
// throughput, and the cache hit-rate to a JSON report (BENCH_serve.json by
// default). Every response carries X-Lossyts-Cache (miss | dedup | hit), so
// the report separates computed latency from cached latency exactly.
//
// Usage:
//
//	tsserve -addr localhost:8750 -cache /tmp/serve.cells &
//	loadbench [-url http://localhost:8750] [-quick] [-out BENCH_serve.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"lossyts/internal/cli"
)

// sample is one completed request.
type sample struct {
	layer string // X-Lossyts-Cache: miss, dedup, hit ("" on error)
	ms    float64
	err   error
}

// latencySummary condenses a latency population.
type latencySummary struct {
	Count  int     `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// phaseResult is one load phase: request count, wall-clock throughput, and
// per-cache-layer latency splits.
type phaseResult struct {
	Phase    string                    `json:"phase"`
	Requests int                       `json:"requests"`
	Reqps    float64                   `json:"reqps"`
	All      latencySummary            `json:"all"`
	ByLayer  map[string]latencySummary `json:"by_layer"`
}

type report struct {
	Tool        string      `json:"tool"`
	Quick       bool        `json:"quick"`
	GoArch      string      `json:"goarch"`
	URL         string      `json:"url"`
	Endpoint    string      `json:"endpoint"`
	Concurrency int         `json:"concurrency"`
	Keys        int         `json:"keys"`
	Points      int         `json:"points"`
	Cold        phaseResult `json:"cold"`
	Warm        phaseResult `json:"warm"`
	// ServerStats is the target's /v1/stats snapshot after the run.
	ServerStats json.RawMessage `json:"server_stats,omitempty"`
	Headline    struct {
		// ColdMissP50Ms is the median latency of computed (cache-miss)
		// requests; HitP50Ms the median of store-served requests.
		ColdMissP50Ms float64 `json:"cold_miss_p50_ms"`
		HitP50Ms      float64 `json:"hit_p50_ms"`
		// Speedup is cold-miss p50 over hit p50 — how much the dedupe
		// plane buys on repeated questions.
		Speedup float64 `json:"speedup"`
		// WarmHitRate is the fraction of warm-phase requests answered
		// from the durable cache.
		WarmHitRate float64 `json:"warm_hit_rate"`
	} `json:"headline"`
}

func main() {
	var (
		lb       = cli.BindLoadBench(flag.CommandLine)
		model    = flag.String("model", "DLinear", "forecast model to request")
		method   = flag.String("method", "PMC", "compression method to request")
		eps      = flag.Float64("eps", 0.1, "pointwise relative error bound")
		points   = flag.Int("points", 2400, "series length per request body")
		epochs   = flag.Int("epochs", 6, "training epochs per forecast request")
		inputLen = flag.Int("input", 48, "forecast input window")
		horizon  = flag.Int("horizon", 12, "forecast horizon")
		period   = flag.Int("period", 48, "seasonal period of the synthetic series")
	)
	flag.Parse()
	if lb.Quick {
		lb.Concurrency, lb.Keys, lb.Warm = 4, 4, 32
		*points, *epochs = 1200, 2
	}
	if err := run(lb, *model, *method, *eps, *points, *epochs, *inputLen, *horizon, *period); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
}

// body renders the shared synthetic series: seasonal with a little
// structure, long enough that training dominates cold latency.
func body(points, period int) string {
	var b strings.Builder
	b.Grow(points * 10)
	for i := 0; i < points; i++ {
		v := 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.3*math.Sin(float64(i)*0.91)
		fmt.Fprintf(&b, "%.6f\n", v)
	}
	return b.String()
}

// runPhase drives reqs requests through workers closed-loop workers: each
// worker issues its next request only after the previous one completed.
func runPhase(client *http.Client, urls []string, payload string, reqs, workers int) ([]sample, float64) {
	jobs := make(chan int)
	samples := make([]sample, reqs)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				t0 := time.Now()
				resp, err := client.Post(urls[i%len(urls)], "text/plain", strings.NewReader(payload))
				if err != nil {
					samples[i] = sample{err: err}
					continue
				}
				_, cpErr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ms := float64(time.Since(t0).Microseconds()) / 1000
				if resp.StatusCode != http.StatusOK {
					samples[i] = sample{err: fmt.Errorf("status %d", resp.StatusCode), ms: ms}
					continue
				}
				samples[i] = sample{layer: resp.Header.Get("X-Lossyts-Cache"), ms: ms, err: cpErr}
			}
		}()
	}
	for i := 0; i < reqs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return samples, time.Since(start).Seconds()
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarise(ms []float64) latencySummary {
	if len(ms) == 0 {
		return latencySummary{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return latencySummary{
		Count:  len(sorted),
		P50Ms:  percentile(sorted, 0.50),
		P99Ms:  percentile(sorted, 0.99),
		MeanMs: sum / float64(len(sorted)),
	}
}

// phaseOf folds samples into a phaseResult, failing on any request error.
func phaseOf(name string, samples []sample, elapsed float64) (phaseResult, error) {
	var all []float64
	byLayer := map[string][]float64{}
	for i, s := range samples {
		if s.err != nil {
			return phaseResult{}, fmt.Errorf("%s request %d: %w", name, i, s.err)
		}
		all = append(all, s.ms)
		byLayer[s.layer] = append(byLayer[s.layer], s.ms)
	}
	pr := phaseResult{
		Phase:    name,
		Requests: len(samples),
		Reqps:    float64(len(samples)) / elapsed,
		All:      summarise(all),
		ByLayer:  map[string]latencySummary{},
	}
	for layer, ms := range byLayer {
		pr.ByLayer[layer] = summarise(ms)
	}
	return pr, nil
}

func run(lb *cli.LoadBench, model, method string, eps float64, points, epochs, inputLen, horizon, period int) error {
	base := strings.TrimRight(lb.URL, "/")
	client := &http.Client{Timeout: 5 * time.Minute}

	// One URL per key: the seed parameter separates the cache keys, so the
	// cold phase computes lb.Keys distinct grid cells.
	urls := make([]string, lb.Keys)
	for k := range urls {
		urls[k] = fmt.Sprintf("%s/v1/forecast?model=%s&method=%s&eps=%g&input=%d&horizon=%d&period=%d&epochs=%d&seed=%d",
			base, model, method, eps, inputLen, horizon, period, epochs, k+1)
	}
	payload := body(points, period)

	// Reachability first, so a missing server is one clear error.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("tsserve not reachable at %s: %w", base, err)
	}
	resp.Body.Close()

	rep := report{
		Tool: "loadbench", Quick: lb.Quick, GoArch: runtime.GOARCH,
		URL: base, Endpoint: "/v1/forecast",
		Concurrency: lb.Concurrency, Keys: lb.Keys, Points: points,
	}

	coldSamples, coldSecs := runPhase(client, urls, payload, lb.Keys, lb.Concurrency)
	if rep.Cold, err = phaseOf("cold", coldSamples, coldSecs); err != nil {
		return err
	}
	warmSamples, warmSecs := runPhase(client, urls, payload, lb.Warm, lb.Concurrency)
	if rep.Warm, err = phaseOf("warm", warmSamples, warmSecs); err != nil {
		return err
	}

	rep.Headline.ColdMissP50Ms = rep.Cold.ByLayer["miss"].P50Ms
	rep.Headline.HitP50Ms = rep.Warm.ByLayer["hit"].P50Ms
	if rep.Headline.HitP50Ms > 0 {
		rep.Headline.Speedup = rep.Headline.ColdMissP50Ms / rep.Headline.HitP50Ms
	}
	rep.Headline.WarmHitRate = float64(rep.Warm.ByLayer["hit"].Count) / float64(lb.Warm)

	if sresp, err := client.Get(base + "/v1/stats"); err == nil {
		raw, _ := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		rep.ServerStats = json.RawMessage(raw)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(lb.Out, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadbench: cold miss p50 %.1f ms, hit p50 %.2f ms (%.0fx), warm hit rate %.0f%%, warm %.0f req/s -> %s\n",
		rep.Headline.ColdMissP50Ms, rep.Headline.HitP50Ms, rep.Headline.Speedup,
		100*rep.Headline.WarmHitRate, rep.Warm.Reqps, lb.Out)
	return nil
}
