// Command nnbench measures the nn kernel layer's fast path (blocked
// matmuls, fused ops, arena pooling) against the reference kernels and
// writes the comparison to a JSON file (BENCH_nn.json by default). CI runs
// it as a smoke check; the headline section records the speedup and
// allocation ratios quoted in EXPERIMENTS.md.
//
// Usage:
//
//	nnbench [-quick] [-out BENCH_nn.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"lossyts/internal/cli"
	"lossyts/internal/forecast"
	"lossyts/internal/nn"
)

// measurement is one timed side (fast or reference) of a benchmark.
type measurement struct {
	Iters       int     `json:"iters"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
}

// comparison pairs the two kernel modes of one workload.
type comparison struct {
	Benchmark  string      `json:"benchmark"`
	Fast       measurement `json:"fast"`
	Reference  measurement `json:"reference"`
	Speedup    float64     `json:"speedup"`
	AllocRatio float64     `json:"alloc_ratio"`
}

type report struct {
	Tool     string       `json:"tool"`
	Quick    bool         `json:"quick"`
	GoArch   string       `json:"goarch"`
	NumCPU   int          `json:"num_cpu"`
	Headline headline     `json:"headline"`
	Results  []comparison `json:"results"`
}

type headline struct {
	MatMulSpeedup          float64 `json:"matmul_speedup"`
	GRUStepSpeedup         float64 `json:"gru_step_speedup"`
	GRUStepAllocRatio      float64 `json:"gru_step_alloc_ratio"`
	TransformerSpeedup     float64 `json:"transformer_step_speedup"`
	TransformerAllocRatio  float64 `json:"transformer_step_alloc_ratio"`
	AllStepSpeedupsAtLeast float64 `json:"all_step_speedups_at_least"`
	AllocRatiosAtLeast     float64 `json:"alloc_ratios_at_least"`
}

// accum collects the timed rounds of one kernel mode.
type accum struct {
	iters   int
	elapsed time.Duration
	mallocs uint64
	bytes   uint64
}

// round times step under the given kernel mode until both minIters and
// minDur are reached, adding wall time and runtime.MemStats deltas to acc. A
// forced GC first keeps the other mode's garbage from being charged here.
func round(acc *accum, step func(), reference bool, minIters int, minDur time.Duration) {
	nn.UseReferenceKernels(reference)
	defer nn.UseReferenceKernels(false)
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	iters := 0
	for iters < minIters || time.Since(start) < minDur {
		step()
		iters++
	}
	acc.elapsed += time.Since(start)
	runtime.ReadMemStats(&ms1)
	acc.iters += iters
	acc.mallocs += ms1.Mallocs - ms0.Mallocs
	acc.bytes += ms1.TotalAlloc - ms0.TotalAlloc
}

func (a accum) measurement() measurement {
	return measurement{
		Iters:       a.iters,
		NsPerOp:     a.elapsed.Nanoseconds() / int64(a.iters),
		AllocsPerOp: int64(a.mallocs) / int64(a.iters),
		BytesPerOp:  int64(a.bytes) / int64(a.iters),
		MsPerOp:     float64(a.elapsed.Nanoseconds()) / float64(a.iters) / 1e6,
	}
}

// matmulStep mirrors BenchmarkMatMul: a training-shaped matmul forward +
// backward with the graph and gradient buffers the arena absorbs.
func matmulStep() func() {
	rng := rand.New(rand.NewSource(1))
	const rows, d = 256, 64
	x := nn.Randn(rng, 1, rows, d)
	w := nn.Randn(rng, 1, d, d).Param()
	arena := nn.NewArena()
	return func() {
		w.ZeroGrad()
		nn.Mean(nn.MatMul(x.InArena(arena), w)).Backward()
		arena.Reset()
	}
}

func ratio(ref, fast float64) float64 {
	if fast == 0 {
		return 0
	}
	return ref / fast
}

func main() {
	quick := flag.Bool("quick", false, "run fewer iterations (CI smoke mode)")
	out := flag.String("out", "BENCH_nn.json", "output JSON path")
	common := cli.BindProfiling(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintf(os.Stderr, "nnbench: %v\n", err)
		os.Exit(1)
	}
	// Profiles flush on the success path only; error paths exit directly
	// (a truncated profile of a failed benchmark is not worth keeping).
	defer stopProfiles()

	// Fast and reference run in alternating rounds so ambient load drift
	// and GC pacing shifts hit both sides alike instead of skewing the
	// ratio the way a single long run per side would.
	rounds, minIters, roundDur := 5, 3, 1200*time.Millisecond
	if *quick {
		rounds, minIters, roundDur = 1, 1, 0
	}

	type workload struct {
		name string
		// build returns a fresh step closure; each kernel mode gets its own
		// model instance so optimizer state never crosses modes.
		build func() (func(), error)
	}
	workloads := []workload{
		{"MatMul", func() (func(), error) { return matmulStep(), nil }},
		{"GRUStep", func() (func(), error) { return forecast.OneTrainingStep("GRU", 32, 1) }},
		{"TransformerStep", func() (func(), error) { return forecast.OneTrainingStep("Transformer", 32, 1) }},
	}

	rep := report{Tool: "nnbench", Quick: *quick, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU()}
	for _, w := range workloads {
		var cmp comparison
		cmp.Benchmark = w.name
		// Each kernel mode gets its own step closure (and model instance),
		// so optimizer state never crosses modes; warm each up once.
		var steps [2]func() // [fast, reference]
		var accs [2]accum
		for i, reference := range []bool{false, true} {
			step, err := w.build()
			if err != nil {
				fmt.Fprintf(os.Stderr, "nnbench: %s: %v\n", w.name, err)
				os.Exit(1)
			}
			nn.UseReferenceKernels(reference)
			step()
			nn.UseReferenceKernels(false)
			steps[i] = step
		}
		for r := 0; r < rounds; r++ {
			for i, reference := range []bool{false, true} {
				round(&accs[i], steps[i], reference, minIters, roundDur)
			}
		}
		cmp.Fast = accs[0].measurement()
		cmp.Reference = accs[1].measurement()
		cmp.Speedup = ratio(float64(cmp.Reference.NsPerOp), float64(cmp.Fast.NsPerOp))
		cmp.AllocRatio = ratio(float64(cmp.Reference.AllocsPerOp), float64(cmp.Fast.AllocsPerOp))
		rep.Results = append(rep.Results, cmp)
		fmt.Printf("%-16s fast %8.2f ms/op %7d allocs/op | reference %8.2f ms/op %7d allocs/op | %.2fx speed, %.2fx allocs\n",
			w.name, cmp.Fast.MsPerOp, cmp.Fast.AllocsPerOp,
			cmp.Reference.MsPerOp, cmp.Reference.AllocsPerOp,
			cmp.Speedup, cmp.AllocRatio)
	}

	rep.Headline = headline{
		MatMulSpeedup:         rep.Results[0].Speedup,
		GRUStepSpeedup:        rep.Results[1].Speedup,
		GRUStepAllocRatio:     rep.Results[1].AllocRatio,
		TransformerSpeedup:    rep.Results[2].Speedup,
		TransformerAllocRatio: rep.Results[2].AllocRatio,
	}
	minSpeed := rep.Results[1].Speedup
	if rep.Results[2].Speedup < minSpeed {
		minSpeed = rep.Results[2].Speedup
	}
	minAlloc := rep.Results[1].AllocRatio
	if rep.Results[2].AllocRatio < minAlloc {
		minAlloc = rep.Results[2].AllocRatio
	}
	rep.Headline.AllStepSpeedupsAtLeast = minSpeed
	rep.Headline.AllocRatiosAtLeast = minAlloc

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "nnbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "nnbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
