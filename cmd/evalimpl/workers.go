package main

// Coordinator mode: -workers N turns one evalimpl invocation into a small
// fleet. The coordinator re-execs its own binary once per partition with
// the hidden -partition/-peers flags, waits for every worker, merges the
// per-worker journals into the -store path, and then falls through to the
// normal run — which finds every cell already present and assembles the
// grid with "merged" provenance. Worker journals live next to the store as
// <store>.workerN and are removed after a successful merge.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"lossyts/internal/cli"
	"lossyts/internal/core"
)

// workerMain is the hidden worker mode: run one partition against this
// worker's own journal and print the summary as JSON on stdout.
func workerMain(partition, peers string, grid *cli.Grid, common *cli.Common, stdout, stderr io.Writer) int {
	index, workers, err := cli.ParsePartition(partition)
	if err != nil {
		fmt.Fprintln(stderr, "evalimpl:", err)
		return 2
	}
	if common.Store == "" {
		fmt.Fprintln(stderr, "evalimpl: -partition requires -store (the worker's journal)")
		return 2
	}
	summary, err := core.RunGridPartition(grid.Options(common), workers, index, cli.SplitList(peers))
	if err != nil {
		fmt.Fprintln(stderr, "evalimpl:", err)
		return 1
	}
	if err := json.NewEncoder(stdout).Encode(summary); err != nil {
		fmt.Fprintln(stderr, "evalimpl:", err)
		return 1
	}
	return 0
}

// workerArgs renders the argv a spawned worker needs to compute the exact
// same grid as the coordinator: the grid flags, the compute flags, and its
// partition assignment.
func workerArgs(grid *cli.Grid, common *cli.Common, journal string, i, n int, peers []string) []string {
	args := grid.Args()
	if common.Parallelism != 0 {
		args = append(args, "-parallelism", strconv.Itoa(common.Parallelism))
	}
	if common.RefKernels {
		args = append(args, "-refkernels")
	}
	if common.Stream {
		args = append(args, "-stream")
	}
	if common.ChunkSize != 0 {
		args = append(args, "-chunk", strconv.Itoa(common.ChunkSize))
	}
	args = append(args,
		"-store", journal,
		"-partition", fmt.Sprintf("%d/%d", i+1, n),
		"-peers", strings.Join(peers, ","),
	)
	return args
}

// coordinate spawns n workers, waits for all of them, merges their journals
// into store, and returns the per-worker summaries. On success the worker
// journals are removed; on failure they are left for inspection.
func coordinate(n int, store string, grid *cli.Grid, common *cli.Common, stderr io.Writer) ([]core.WorkerSummary, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("evalimpl: locating own binary: %w", err)
	}
	journals := make([]string, n)
	for i := range journals {
		journals[i] = fmt.Sprintf("%s.worker%d", store, i+1)
	}

	var wg sync.WaitGroup
	summaries := make([]core.WorkerSummary, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		peers := make([]string, 0, n-1)
		for j, p := range journals {
			if j != i {
				peers = append(peers, p)
			}
		}
		wg.Add(1)
		go func(i int, peers []string) {
			defer wg.Done()
			cmd := exec.Command(exe, workerArgs(grid, common, journals[i], i, n, peers)...)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = stderr
			if err := cmd.Run(); err != nil {
				errs[i] = fmt.Errorf("worker %d/%d: %w", i+1, n, err)
				return
			}
			if err := json.Unmarshal(out.Bytes(), &summaries[i]); err != nil {
				errs[i] = fmt.Errorf("worker %d/%d: bad summary: %w", i+1, n, err)
			}
		}(i, peers)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("evalimpl: %w", err)
		}
	}
	for _, s := range summaries {
		fmt.Fprintf(stderr, "worker %d/%d: %d owned, %d stolen, %d computed, %d loaded (%d ms)\n",
			s.Partition, s.Workers, s.OwnedCells, s.StolenCells, s.ComputedCells, s.LoadedCells, s.WallMS)
	}
	stats, err := core.MergeWorkerStores(store, journals)
	if err != nil {
		return nil, fmt.Errorf("evalimpl: merging worker journals: %w", err)
	}
	fmt.Fprintf(stderr, "merged %d worker journals into %s (%d records)\n", stats.Sources, store, stats.Records)
	for _, j := range journals {
		os.Remove(j)
	}
	return summaries, nil
}

// gridBenchRun is one row of the scaling report.
type gridBenchRun struct {
	Workers     int     `json:"workers"`
	WallMS      int64   `json:"wall_ms"`
	Cells       int     `json:"cells"`
	CellsPerSec float64 `json:"cells_per_sec"`
}

// benchWorkers measures multi-worker scaling: the same grid computed from
// scratch at 1, 2, and 4 workers (each worker pinned to -parallelism 1 so
// the processes, not the in-process pool, provide the parallelism), written
// as a JSON report. Stores live in a temp dir and are discarded.
func benchWorkers(out string, grid *cli.Grid, common *cli.Common, stderr io.Writer) error {
	dir, err := os.MkdirTemp("", "lossyts-gridbench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bcommon := *common
	bcommon.Parallelism = 1
	var runs []gridBenchRun
	for _, n := range []int{1, 2, 4} {
		bcommon.Store = fmt.Sprintf("%s/bench%d.cells", dir, n)
		start := time.Now()
		summaries, err := coordinate(n, bcommon.Store, grid, &bcommon, stderr)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		cells := 0
		for _, s := range summaries {
			cells += s.ComputedCells
		}
		r := gridBenchRun{
			Workers: n,
			WallMS:  wall.Milliseconds(),
			Cells:   cells,
		}
		if secs := wall.Seconds(); secs > 0 {
			r.CellsPerSec = float64(cells) / secs
		}
		fmt.Fprintf(stderr, "bench: workers=%d wall=%dms cells=%d (%.1f cells/sec)\n",
			r.Workers, r.WallMS, r.Cells, r.CellsPerSec)
		runs = append(runs, r)
	}
	report := struct {
		Benchmark string         `json:"benchmark"`
		Runs      []gridBenchRun `json:"runs"`
	}{Benchmark: "grid_workers", Runs: runs}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}
