// Command evalimpl regenerates the paper's tables and figures.
//
// Usage:
//
//	evalimpl -experiment table2            # one artefact
//	evalimpl -experiment all -scale 0.05   # everything, 5% dataset length
//	evalimpl -experiment table5 -full      # paper-scale run (very slow)
//	evalimpl -store grid.cells -workers 4  # grid computed by 4 worker processes
//
// Artefacts: table1..table7, fig1..fig7, all.
//
// With -workers N (requires -store), the grid computation is split across N
// locally spawned worker processes, each journaling its partition to its own
// file; the coordinator merges the journals into -store and the run proceeds
// as if one process had computed everything — the results are byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lossyts/internal/cli"
	"lossyts/internal/core"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "artefact to regenerate: table1..table7, fig1..fig7, or all")
		maxTFE     = flag.Float64("tfe", 0.1, "TFE tolerance for -experiment recommend")
		saveGrid   = flag.String("savegrid", "", "after the run, save the evaluation grid to this file (cell store)")
		loadGrid   = flag.String("loadgrid", "", "load a previously saved evaluation grid instead of recomputing")
		workers    = flag.Int("workers", 0, "split the grid across N locally spawned worker processes (requires -store)")
		bench      = flag.String("bench", "", "measure multi-worker scaling (1, 2, 4 workers) and write a JSON report to this file")
		partition  = flag.String("partition", "", "internal: run as one grid worker (1-based i/n); used by the -workers coordinator")
		peers      = flag.String("peers", "", "internal: comma-separated peer journals for the worker steal pass")
		grid       = cli.BindGrid(flag.CommandLine)
		common     = cli.Bind(flag.CommandLine)
	)
	common.BindStream(flag.CommandLine)
	common.BindStore(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalimpl:", err)
		os.Exit(1)
	}
	// fail flushes profiles (os.Exit skips defers) before exiting non-zero.
	fail := func(args ...any) {
		fmt.Fprintln(os.Stderr, args...)
		stopProfiles()
		os.Exit(1)
	}

	// Hidden worker mode: the -workers coordinator re-execs this binary once
	// per partition with -partition i/n.
	if *partition != "" {
		code := workerMain(*partition, *peers, grid, common, os.Stdout, os.Stderr)
		stopProfiles()
		os.Exit(code)
	}

	if *bench != "" {
		if err := benchWorkers(*bench, grid, common, os.Stderr); err != nil {
			fail("evalimpl:", err)
		}
		fmt.Fprintf(os.Stderr, "scaling report written to %s\n", *bench)
		if err := stopProfiles(); err != nil {
			fail("evalimpl:", err)
		}
		return
	}

	opts := grid.Options(common)

	if *workers > 1 {
		if common.Store == "" {
			fail("evalimpl: -workers requires -store (the merged journal path)")
		}
		if _, err := coordinate(*workers, common.Store, grid, common, os.Stderr); err != nil {
			fail(err)
		}
		// The store now holds every cell plus the worker-count stamp; the
		// normal run below loads it and reports "merged" provenance.
	}

	if *loadGrid != "" {
		g, err := core.LoadGrid(*loadGrid)
		if err != nil {
			fail("evalimpl:", err)
		}
		opts = g.Opts // the loaded grid's options drive the experiments
	}
	if *experiment == "recommend" {
		if err := recommend(opts, *maxTFE); err != nil {
			fail("evalimpl:", err)
		}
	} else {
		if err := run(*experiment, opts); err != nil {
			fail("evalimpl:", err)
		}
		if *saveGrid != "" {
			g, err := core.RunGrid(opts) // memoised: no recomputation
			if err == nil {
				err = core.SaveGrid(g, *saveGrid)
			}
			if err != nil {
				fail("evalimpl: saving grid:", err)
			}
			fmt.Fprintf(os.Stderr, "grid saved to %s\n", *saveGrid)
		}
	}
	// Say where the grid's cells came from — computed, loaded, or a
	// resumed mix — so nobody misreads a loaded grid's zero timings as a
	// measurement. RunGrid is memoised, so this recomputes nothing; it
	// only reports when a grid actually exists for these options.
	if g, err := core.RunGridCached(opts); err == nil {
		fmt.Fprintln(os.Stderr, g.Provenance.String())
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "evalimpl:", err)
		os.Exit(1)
	}
}

// experimentOrder lists all artefacts for -experiment all.
var experimentOrder = []string{
	"table1", "table2", "table3", "table4", "table5", "table6", "table7",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
}

// recommend prints the max-CR operating point per dataset whose mean TFE
// stays within the tolerance.
func recommend(opts core.Options, maxTFE float64) error {
	g, err := core.RunGrid(opts)
	if err != nil {
		return err
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Recommended operating points (mean TFE <= %g)", maxTFE),
		Header: []string{"Dataset", "Method", "EB", "CR", "TE(NRMSE)", "TFE"},
	}
	for _, name := range g.Opts.Datasets {
		appendRecommendation(t, g, name, maxTFE)
	}
	if len(g.Opts.Datasets) == 0 {
		for _, name := range []string{"ETTm1", "ETTm2", "Solar", "Weather", "ElecDem", "Wind"} {
			appendRecommendation(t, g, name, maxTFE)
		}
	}
	fmt.Println(t.String())
	return nil
}

func appendRecommendation(t *core.Table, g *core.GridResult, name string, maxTFE float64) {
	rec, err := core.Recommend(g, name, maxTFE, nil)
	if err != nil {
		t.AddRow(name, "-", "-", "-", "-", "-")
		return
	}
	t.AddRow(name, string(rec.Method), rec.Epsilon, rec.CR, rec.TE, rec.TFE)
}

func run(experiment string, opts core.Options) error {
	list := []string{strings.ToLower(experiment)}
	if experiment == "all" {
		list = experimentOrder
	}
	for _, e := range list {
		t, err := generate(e, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Println(t.String())
	}
	return nil
}

func generate(e string, opts core.Options) (*core.Table, error) {
	// table1, fig1 and fig7 do not need the grid; everything else shares it.
	switch e {
	case "table1":
		return core.Table1(opts)
	case "fig1":
		return core.Figure1(opts, 96)
	case "fig7":
		return core.Figure7(opts)
	}
	g, err := core.RunGrid(opts)
	if err != nil {
		return nil, err
	}
	switch e {
	case "table2":
		return core.Table2(g)
	case "table3":
		return core.Table3(g)
	case "table4":
		return core.Table4(g, 10)
	case "table5":
		return core.Table5(g)
	case "table6":
		return core.Table6(g)
	case "table7":
		return core.Table7(g)
	case "fig2":
		return core.Figure2(g)
	case "fig3":
		return core.Figure3(g)
	case "fig4":
		return core.Figure4(g)
	case "fig5":
		return core.Figure5(g, 9)
	case "fig6":
		return core.Figure6(g)
	}
	return nil, fmt.Errorf("unknown experiment %q (try table1..table7, fig1..fig7, all)", e)
}
