// Command evalimpl regenerates the paper's tables and figures.
//
// Usage:
//
//	evalimpl -experiment table2            # one artefact
//	evalimpl -experiment all -scale 0.05   # everything, 5% dataset length
//	evalimpl -experiment table5 -full      # paper-scale run (very slow)
//
// Artefacts: table1..table7, fig1..fig7, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lossyts/internal/cli"
	"lossyts/internal/core"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "artefact to regenerate: table1..table7, fig1..fig7, or all")
		scale      = flag.Float64("scale", 0.03, "dataset length scale in (0, 1]")
		seed       = flag.Int64("seed", 1, "base random seed")
		full       = flag.Bool("full", false, "paper-scale run: full lengths, 10/5 seeds (very slow)")
		datasets   = flag.String("datasets", "", "comma-separated dataset subset (default: all six)")
		models     = flag.String("models", "", "comma-separated model subset (default: all seven)")
		maxTFE     = flag.Float64("tfe", 0.1, "TFE tolerance for -experiment recommend")
		saveGrid   = flag.String("savegrid", "", "after the run, save the evaluation grid to this file (cell store)")
		loadGrid   = flag.String("loadgrid", "", "load a previously saved evaluation grid instead of recomputing")
		common     = cli.Bind(flag.CommandLine)
	)
	common.BindStream(flag.CommandLine)
	common.BindStore(flag.CommandLine)
	flag.Parse()

	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalimpl:", err)
		os.Exit(1)
	}
	// fail flushes profiles (os.Exit skips defers) before exiting non-zero.
	fail := func(args ...any) {
		fmt.Fprintln(os.Stderr, args...)
		stopProfiles()
		os.Exit(1)
	}

	opts := core.DefaultOptions()
	if *full {
		opts = core.PaperOptions()
	}
	opts.Scale = *scale
	if *full {
		opts.Scale = 1
	}
	opts.Seed = *seed
	opts.Parallelism = common.Parallelism
	opts.ReferenceKernels = common.RefKernels
	opts.Stream = common.Stream
	opts.ChunkSize = common.ChunkSize
	opts.Store = common.Store
	if *datasets != "" {
		opts.Datasets = cli.SplitList(*datasets)
	}
	if *models != "" {
		opts.Models = cli.SplitList(*models)
	}

	if *loadGrid != "" {
		g, err := core.LoadGrid(*loadGrid)
		if err != nil {
			fail("evalimpl:", err)
		}
		opts = g.Opts // the loaded grid's options drive the experiments
	}
	if *experiment == "recommend" {
		if err := recommend(opts, *maxTFE); err != nil {
			fail("evalimpl:", err)
		}
	} else {
		if err := run(*experiment, opts); err != nil {
			fail("evalimpl:", err)
		}
		if *saveGrid != "" {
			g, err := core.RunGrid(opts) // memoised: no recomputation
			if err == nil {
				err = core.SaveGrid(g, *saveGrid)
			}
			if err != nil {
				fail("evalimpl: saving grid:", err)
			}
			fmt.Fprintf(os.Stderr, "grid saved to %s\n", *saveGrid)
		}
	}
	// Say where the grid's cells came from — computed, loaded, or a
	// resumed mix — so nobody misreads a loaded grid's zero timings as a
	// measurement. RunGrid is memoised, so this recomputes nothing; it
	// only reports when a grid actually exists for these options.
	if g, err := core.RunGridCached(opts); err == nil {
		fmt.Fprintln(os.Stderr, g.Provenance.String())
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "evalimpl:", err)
		os.Exit(1)
	}
}

// experimentOrder lists all artefacts for -experiment all.
var experimentOrder = []string{
	"table1", "table2", "table3", "table4", "table5", "table6", "table7",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
}

// recommend prints the max-CR operating point per dataset whose mean TFE
// stays within the tolerance.
func recommend(opts core.Options, maxTFE float64) error {
	g, err := core.RunGrid(opts)
	if err != nil {
		return err
	}
	t := &core.Table{
		Title:  fmt.Sprintf("Recommended operating points (mean TFE <= %g)", maxTFE),
		Header: []string{"Dataset", "Method", "EB", "CR", "TE(NRMSE)", "TFE"},
	}
	for _, name := range g.Opts.Datasets {
		appendRecommendation(t, g, name, maxTFE)
	}
	if len(g.Opts.Datasets) == 0 {
		for _, name := range []string{"ETTm1", "ETTm2", "Solar", "Weather", "ElecDem", "Wind"} {
			appendRecommendation(t, g, name, maxTFE)
		}
	}
	fmt.Println(t.String())
	return nil
}

func appendRecommendation(t *core.Table, g *core.GridResult, name string, maxTFE float64) {
	rec, err := core.Recommend(g, name, maxTFE, nil)
	if err != nil {
		t.AddRow(name, "-", "-", "-", "-", "-")
		return
	}
	t.AddRow(name, string(rec.Method), rec.Epsilon, rec.CR, rec.TE, rec.TFE)
}

func run(experiment string, opts core.Options) error {
	list := []string{strings.ToLower(experiment)}
	if experiment == "all" {
		list = experimentOrder
	}
	for _, e := range list {
		t, err := generate(e, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e, err)
		}
		fmt.Println(t.String())
	}
	return nil
}

func generate(e string, opts core.Options) (*core.Table, error) {
	// table1, fig1 and fig7 do not need the grid; everything else shares it.
	switch e {
	case "table1":
		return core.Table1(opts)
	case "fig1":
		return core.Figure1(opts, 96)
	case "fig7":
		return core.Figure7(opts)
	}
	g, err := core.RunGrid(opts)
	if err != nil {
		return nil, err
	}
	switch e {
	case "table2":
		return core.Table2(g)
	case "table3":
		return core.Table3(g)
	case "table4":
		return core.Table4(g, 10)
	case "table5":
		return core.Table5(g)
	case "table6":
		return core.Table6(g)
	case "table7":
		return core.Table7(g)
	case "fig2":
		return core.Figure2(g)
	case "fig3":
		return core.Figure3(g)
	case "fig4":
		return core.Figure4(g)
	case "fig5":
		return core.Figure5(g, 9)
	case "fig6":
		return core.Figure6(g)
	}
	return nil, fmt.Errorf("unknown experiment %q (try table1..table7, fig1..fig7, all)", e)
}
