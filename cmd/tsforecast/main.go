// Command tsforecast trains one of the paper's forecasting models on a
// synthetic dataset (optionally lossy-compressed first) and reports the
// evaluation metrics, demonstrating Algorithm 1 end to end:
//
//	tsforecast -dataset ETTm1 -model DLinear
//	tsforecast -dataset ETTm1 -model Arima -method PMC -eps 0.1
//
// With -store the run goes through the evaluation harness backed by a
// cell-addressed result store: the first invocation trains and checkpoints
// the cell, repeating it (or running a grid that contains it) reuses the
// stored result:
//
//	tsforecast -dataset ETTm1 -model Arima -method PMC -eps 0.1 -store results.cells
package main

import (
	"flag"
	"fmt"
	"os"

	"lossyts/internal/cli"
	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/datasets"
	"lossyts/internal/forecast"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

func main() {
	var (
		dataset = flag.String("dataset", "ETTm1", "dataset: ETTm1, ETTm2, Solar, Weather, ElecDem, Wind")
		model   = flag.String("model", "DLinear", "forecasting model")
		method  = flag.String("method", "", "optional lossy method for the test input: "+cli.MethodList(compress.LossyMethods()))
		eps     = flag.Float64("eps", 0.1, "error bound when -method is set")
		scale   = flag.Float64("scale", 0.05, "dataset length scale")
		seed    = flag.Int64("seed", 1, "random seed")
		common  = cli.Bind(flag.CommandLine)
	)
	common.BindStore(flag.CommandLine)
	flag.Parse()
	// For a single training run the worker bound acts on the runtime itself.
	common.ApplyGOMAXPROCS()
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsforecast:", err)
		os.Exit(1)
	}
	var runErr error
	if common.Store != "" {
		// With a result store the run goes through the evaluation harness
		// as a one-cell grid, so the cell is checkpointed and a repeat of
		// the same invocation costs one store read instead of a training.
		runErr = runStored(*dataset, *model, *method, *eps, *scale, *seed, common)
	} else {
		runErr = run(*dataset, *model, *method, *eps, *scale, *seed)
	}
	// Profiles are flushed before any exit path: os.Exit skips defers.
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "tsforecast:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tsforecast:", runErr)
		os.Exit(1)
	}
}

// runStored evaluates the (dataset, model, method, eps) combination as a
// one-cell grid through the harness, backed by the result store: the first
// invocation trains and checkpoints, a repeat reads the stored cell back.
func runStored(dataset, modelName, method string, eps, scale float64, seed int64, common *cli.Common) error {
	if method == "" {
		return fmt.Errorf("-store needs -method (the store addresses cells by compression method and error bound)")
	}
	opts := core.DefaultOptions()
	opts.Scale = scale
	opts.Seed = seed
	opts.Datasets = []string{dataset}
	opts.Models = []string{modelName}
	opts.Methods = []compress.Method{compress.Method(method)}
	opts.ErrorBounds = []float64{eps}
	opts.Parallelism = common.Parallelism
	opts.ReferenceKernels = common.RefKernels
	opts.Store = common.Store
	g, err := core.RunGrid(opts)
	if err != nil {
		return err
	}
	ds := g.Datasets[dataset]
	cell := ds.Cell(compress.Method(method), eps)
	if cell == nil {
		return fmt.Errorf("grid has no cell for %s eps=%g", method, eps)
	}
	fmt.Printf("test input compressed with %s eps=%g: CR %.2fx, %d segments\n",
		method, eps, cell.CR, cell.Segments)
	m := cell.ModelMetrics[modelName]
	fmt.Printf("R            %.4f\n", m.R)
	fmt.Printf("RSE          %.4f\n", m.RSE)
	fmt.Printf("RMSE         %.4f\n", m.RMSE)
	fmt.Printf("NRMSE        %.4f\n", m.NRMSE)
	if tfe, ok := cell.TFE[modelName]; ok {
		fmt.Printf("TFE          %.4f\n", tfe)
	}
	fmt.Fprintln(os.Stderr, g.Provenance.String())
	return nil
}

func run(dataset, modelName, method string, eps, scale float64, seed int64) error {
	ds, err := datasets.Load(dataset, scale, seed)
	if err != nil {
		return err
	}
	train, val, test, err := ds.Target().Split(0.7, 0.1, 0.2)
	if err != nil {
		return err
	}
	cfg := forecast.DefaultConfig()
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	cfg.Seed = seed

	var scaler timeseries.StandardScaler
	if err := scaler.Fit(train.Values); err != nil {
		return err
	}
	model, err := forecast.New(modelName, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("training %s on %s (%d train points)...\n", modelName, dataset, train.Len())
	if err := model.Fit(scaler.Transform(train.Values), scaler.Transform(val.Values)); err != nil {
		return err
	}

	inputValues := test.Values
	if method != "" {
		comp, err := compress.New(compress.Method(method))
		if err != nil {
			return err
		}
		c, err := comp.Compress(test, eps)
		if err != nil {
			return err
		}
		dec, err := c.Decompress()
		if err != nil {
			return err
		}
		cr, err := compress.Ratio(test, c)
		if err != nil {
			return err
		}
		fmt.Printf("test input compressed with %s eps=%g: CR %.2fx, %d segments\n",
			method, eps, cr, c.Segments)
		inputValues = dec.Values
	}
	scTest := scaler.Transform(test.Values)
	ws, err := timeseries.MakePairedWindows(scaler.Transform(inputValues), scTest,
		cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		return err
	}
	preds, err := model.Predict(ws.Inputs())
	if err != nil {
		return err
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	m, err := stats.Evaluate(x, y)
	if err != nil {
		return err
	}
	fmt.Printf("windows      %d (input %d, horizon %d)\n", ws.Len(), cfg.InputLen, cfg.Horizon)
	fmt.Printf("R            %.4f\n", m.R)
	fmt.Printf("RSE          %.4f\n", m.RSE)
	fmt.Printf("RMSE         %.4f\n", m.RMSE)
	fmt.Printf("NRMSE        %.4f\n", m.NRMSE)
	return nil
}
