// Command tsserve is the serving-plane daemon: a stdlib net/http server
// exposing the repo's compression and forecasting stack as five endpoints.
//
//	POST /v1/compress?method=&eps=      value body  → compressed payload
//	POST /v1/decompress?method=         payload     → value text, streamed
//	POST /v1/forecast?model=&method=&eps= value body → grid-cell JSON
//	POST /v1/recommend?maxte= | ?dataset=&maxtfe=    → operating point JSON
//	GET  /v1/monitor?dataset=&method=&eps=           → online-session report JSON
//	GET  /v1/stats, /healthz
//
// Request bodies are capped and streamed through the chunked data plane, a
// client disconnect cancels the computation it was waiting on, and results
// dedupe through the -cache cell store behind a singleflight layer: N
// concurrent identical requests compute once, repeats are answered from the
// store (X-Lossyts-Cache: hit | dedup | miss).
//
// Usage:
//
//	tsserve [-addr localhost:8750] [-cache serve.cells] [-gridstore grid.cells]
//
// SIGINT/SIGTERM drain in-flight requests, then close the cache store.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lossyts/internal/cli"
	"lossyts/internal/serve"
)

func main() {
	var (
		sv     = cli.BindServe(flag.CommandLine)
		chunk  = flag.Int("chunk", 0, "streaming chunk length in points (0 = default)")
		common = cli.BindProfiling(flag.CommandLine)
	)
	flag.Parse()
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsserve:", err)
		os.Exit(1)
	}
	runErr := run(sv, *chunk)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "tsserve:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tsserve:", runErr)
		os.Exit(1)
	}
}

func run(sv *cli.Serve, chunk int) error {
	s, err := serve.New(serve.Options{
		MaxBodyBytes: int64(sv.MaxBodyKB) << 10,
		ChunkSize:    chunk,
		CachePath:    sv.Cache,
		GridStore:    sv.GridStore,
	})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              sv.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("tsserve: listening on %s (cache=%q gridstore=%q)", sv.Addr, sv.Cache, sv.GridStore)

	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately

	log.Printf("tsserve: draining (stats %+v)", s.Stats())
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutErr := srv.Shutdown(shutCtx)
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		s.Close()
		return err
	}
	if err := s.Close(); err != nil {
		return err
	}
	log.Printf("tsserve: done (%d records cached)", s.CacheLen())
	return shutErr
}
