// Command tsmonitor is the online execution plane: it drives a continuous,
// drift-aware monitoring session over a chunked stream — ingest → inject →
// compress → reconstruct → monitor → update → score — instead of the batch
// one-shot the other commands run.
//
// Single-session mode streams one (dataset, method, bound) configuration,
// optionally updating a forecasting model incrementally as data arrives,
// and prints the session report: every shift/drift/anomaly alert with its
// detection index, plus compression ratio, transformation error,
// prequential forecast error, drift-detection delay, and anomaly F1
// against the injected ground truth.
//
//	tsmonitor -dataset ElecDem -scale 0.01 -method PMC -eps 0.05
//	tsmonitor -dataset ETTm1 -model DLinear -store session.cells
//
// With -store, the session checkpoints its complete state into a cell
// store every tick; a killed process restarted with the same flags resumes
// from the last complete tick and produces a report byte-identical to an
// uninterrupted run.
//
// Sweep mode (-sweep) runs one session per (method, bound) pair and merges
// the reports into BENCH_monitor.json — how drift-detection delay and
// anomaly F1 degrade as the error bound grows:
//
//	tsmonitor -sweep -methods PMC,SWING,SZ -bounds 0.01,0.05,0.1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"lossyts/internal/cli"
	"lossyts/internal/compress"
	"lossyts/internal/core"
)

func main() {
	var (
		mon    = cli.BindMonitor(flag.CommandLine)
		common = cli.Bind(flag.CommandLine)
	)
	flag.Parse()
	stopProfiles, err := common.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsmonitor:", err)
		os.Exit(1)
	}
	runErr := run(mon, common)
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "tsmonitor:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "tsmonitor:", runErr)
		os.Exit(1)
	}
}

func run(mon *cli.Monitor, common *cli.Common) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if mon.Sweep {
		return runSweep(ctx, mon, common)
	}
	sess, err := core.NewSession(mon.SessionOptions())
	if err != nil {
		return err
	}
	rep, err := sess.Run(ctx)
	if err != nil {
		return err
	}
	return writeReport(mon.Out, rep)
}

func runSweep(ctx context.Context, mon *cli.Monitor, common *cli.Common) error {
	var methods []compress.Method
	for _, m := range cli.ParseMethods(mon.Methods) {
		if _, err := compress.New(m); err != nil {
			return err
		}
		methods = append(methods, m)
	}
	var bounds []float64
	for _, tok := range cli.SplitList(mon.Bounds) {
		var v float64
		if _, err := fmt.Sscanf(tok, "%g", &v); err != nil || v < 0 {
			return fmt.Errorf("bad bound %q", tok)
		}
		bounds = append(bounds, v)
	}
	bench, err := core.MonitorSweep(ctx, mon.SessionOptions(), methods, bounds, common.Parallelism)
	if err != nil {
		return err
	}
	out := mon.Out
	if out == "" {
		out = "BENCH_monitor.json"
	}
	if err := writeReport(out, bench); err != nil {
		return err
	}
	for _, c := range bench.Cells {
		fmt.Printf("%-8s eps=%-6g CR=%6.2f TE=%.4f delay=%5d F1=%.2f\n",
			c.Method, c.Epsilon, c.Report.CompressionRatio, c.Report.TE,
			c.Report.DriftDelay, c.Report.F1)
	}
	return nil
}

// writeReport writes v as indented JSON to path, or stdout when path is
// empty.
func writeReport(path string, v any) error {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "" {
		_, err := os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
