package lossyts_test

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"lossyts"
)

func TestPublicAPICompressionRoundTrip(t *testing.T) {
	ds := lossyts.MustLoadDataset("ETTm1", 0.02, 1)
	target := ds.Target()
	for _, m := range []lossyts.Method{lossyts.PMC, lossyts.Swing, lossyts.SZ} {
		c, err := lossyts.Compress(m, target, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		dec, err := c.Decompress()
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		rel, err := target.MaxRelError(dec)
		if err != nil {
			t.Fatal(err)
		}
		if rel > 0.1+1e-9 {
			t.Errorf("%s: relative error %v", m, rel)
		}
		cr, err := lossyts.Ratio(target, c)
		if err != nil {
			t.Fatal(err)
		}
		if cr <= 1 {
			t.Errorf("%s: CR %v should exceed 1 at eps 0.1", m, cr)
		}
	}
}

func TestPublicAPIGorillaLossless(t *testing.T) {
	ds := lossyts.MustLoadDataset("Weather", 0.02, 2)
	c, err := lossyts.Compress(lossyts.Gorilla, ds.Target(), 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Target().Equal(dec) {
		t.Fatal("Gorilla round trip lost data")
	}
}

func TestPublicAPIForecastFlow(t *testing.T) {
	ds := lossyts.MustLoadDataset("ETTm2", 0.02, 3)
	train, val, test, err := ds.Target().Split(0.7, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := lossyts.DefaultForecastConfig()
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	cfg.Epochs = 3
	var sc lossyts.StandardScaler
	if err := sc.Fit(train.Values); err != nil {
		t.Fatal(err)
	}
	m, err := lossyts.NewModel("GBoost", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(sc.Transform(train.Values), sc.Transform(val.Values)); err != nil {
		t.Fatal(err)
	}
	ws, err := lossyts.MakeWindows(sc.Transform(test.Values), cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(ws.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != ws.Len() {
		t.Fatalf("%d predictions for %d windows", len(preds), ws.Len())
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	metrics, err := lossyts.Evaluate(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.NRMSE <= 0 || math.IsNaN(metrics.NRMSE) {
		t.Fatalf("NRMSE = %v", metrics.NRMSE)
	}
	tfe, err := lossyts.TFE(metrics.NRMSE*1.1, metrics.NRMSE)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tfe-0.1) > 1e-9 {
		t.Fatalf("TFE = %v", tfe)
	}
}

func TestPublicAPIFeatures(t *testing.T) {
	ds := lossyts.MustLoadDataset("Weather", 0.02, 4)
	f, err := lossyts.ExtractFeatures(ds.Target().Values, ds.SeasonalPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) < 42 {
		t.Fatalf("extracted %d features", len(f))
	}
	if _, ok := f["max_kl_shift"]; !ok {
		t.Fatal("missing max_kl_shift")
	}
}

func TestPublicAPIConstants(t *testing.T) {
	if len(lossyts.ErrorBounds) != 13 {
		t.Fatalf("error bounds = %d", len(lossyts.ErrorBounds))
	}
	if len(lossyts.DatasetNames) != 6 || len(lossyts.ModelNames) != 7 {
		t.Fatal("dataset or model list wrong")
	}
	if _, err := lossyts.LoadDataset("nope", 0.1, 1); err == nil {
		t.Fatal("unknown dataset should error")
	}
	if _, err := lossyts.Compress("nope", lossyts.NewSeries("x", 0, 1, []float64{1}), 0.1); err == nil {
		t.Fatal("unknown method should error")
	}
	if _, err := lossyts.NewModel("nope", lossyts.DefaultForecastConfig()); err == nil {
		t.Fatal("unknown model should error")
	}
}

// TestPublicAPIStreaming drives the full streaming surface: chunked
// dataset generation, chunked encoding (byte-identical to batch), chunked
// decoding, and the bridge back to an in-memory series.
func TestPublicAPIStreaming(t *testing.T) {
	src, err := lossyts.StreamDataset("ETTm1", 0.02, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := lossyts.NewStreamEncoderAt(lossyts.PMC, src.Start(), src.Interval(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.PushChunk(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	streamed, err := enc.Close()
	if err != nil {
		t.Fatal(err)
	}

	ds := lossyts.MustLoadDataset("ETTm1", 0.02, 1)
	batch, err := lossyts.Compress(lossyts.PMC, ds.Target(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if string(streamed.Payload) != string(batch.Payload) {
		t.Fatal("streamed payload differs from batch payload")
	}

	dec, err := lossyts.NewStreamDecoder(streamed, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lossyts.CollectSeries("rt", dec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := batch.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("decoded %d points, want %d", got.Len(), want.Len())
	}
	for i := range got.Values {
		if got.Values[i] != want.Values[i] {
			t.Fatalf("decoded value %d differs", i)
		}
	}
}

func TestPublicAPISyntheticAndAnomaly(t *testing.T) {
	spec := lossyts.DefaultSyntheticSpec()
	spec.Length = 2000
	ds, err := lossyts.SyntheticDataset(spec)
	if err != nil {
		t.Fatal(err)
	}
	values, truth := lossyts.InjectSpikes(ds.Target().Values, 5, 15, 1)
	det := &lossyts.AnomalyDetector{Period: ds.SeasonalPeriod}
	found, err := det.Detect(values)
	if err != nil {
		t.Fatal(err)
	}
	_, recall, _ := lossyts.ScoreDetections(found, truth, 1)
	if recall < 0.8 {
		t.Errorf("recall = %.2f", recall)
	}
}

func TestPublicAPIEnsemble(t *testing.T) {
	cfg := lossyts.DefaultForecastConfig()
	cfg.InputLen = 48
	cfg.Horizon = 8
	cfg.SeasonalPeriod = 24
	cfg.Epochs = 3
	e, err := lossyts.NewEnsemble(cfg, "Arima", "GBoost")
	if err != nil {
		t.Fatal(err)
	}
	ds := lossyts.MustLoadDataset("ETTm1", 0.01, 5)
	train, val, test, err := ds.Target().Split(0.7, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var sc lossyts.StandardScaler
	if err := sc.Fit(train.Values); err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(sc.Transform(train.Values), sc.Transform(val.Values)); err != nil {
		t.Fatal(err)
	}
	ws, err := lossyts.MakeWindows(sc.Transform(test.Values), cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := e.Predict(ws.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != ws.Len() {
		t.Fatalf("%d predictions", len(preds))
	}
}

func TestPublicAPIMonitorSession(t *testing.T) {
	opts := lossyts.SessionOptions{
		Dataset:          "ElecDem",
		Scale:            0.005,
		Seed:             7,
		Method:           lossyts.PMC,
		Epsilon:          0.05,
		Spikes:           5,
		DriftAt:          0.7,
		AnomalyThreshold: 9,
	}
	s, err := lossyts.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Points == 0 || len(rep.Events) == 0 {
		t.Fatalf("empty session report: %+v", rep)
	}
	if rep.DriftDelay < 0 {
		t.Fatalf("injected drift never detected: %+v", rep)
	}
	// The offline replay of the same session is byte-identical.
	r, err := lossyts.NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := r.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(replayed)
	if string(a) != string(b) {
		t.Fatal("replay diverged from the streamed session")
	}
	// All built-ins support online updates.
	for _, name := range lossyts.ModelNames {
		if !lossyts.IsIncrementalModel(name) {
			t.Errorf("%s not incremental", name)
		}
	}
}
