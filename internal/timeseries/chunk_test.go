package timeseries

import (
	"testing"
	"testing/quick"
)

func chunkTestSeries(n int) *Series {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i) * 1.5
	}
	return New("c", 1000, 60, v)
}

func TestChunksRoundTrip(t *testing.T) {
	for _, size := range []int{1, 7, 64, 1000, 0, -3} {
		s := chunkTestSeries(257)
		got, err := Collect("c", s.Chunks(size))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if !got.Equal(s) || got.Start != s.Start || got.Interval != s.Interval {
			t.Fatalf("size %d: collected series differs", size)
		}
	}
}

func TestChunksMetadata(t *testing.T) {
	s := chunkTestSeries(10)
	src := s.Chunks(4)
	var starts []int64
	var lens []int
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		if c.Interval != 60 {
			t.Fatalf("chunk interval %d", c.Interval)
		}
		if c.End() != c.Start+int64(c.Len())*60 {
			t.Fatal("End inconsistent with Len")
		}
		starts = append(starts, c.Start)
		lens = append(lens, c.Len())
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
	wantStarts := []int64{1000, 1240, 1480}
	wantLens := []int{4, 4, 2}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] || lens[i] != wantLens[i] {
			t.Fatalf("chunk %d: start %d len %d, want %d/%d", i, starts[i], lens[i], wantStarts[i], wantLens[i])
		}
	}
}

func TestChunksAlias(t *testing.T) {
	// Chunks of an in-memory series are views, not copies.
	s := chunkTestSeries(8)
	c, _ := s.Chunks(4).Next()
	c.Values[0] = -99
	if s.Values[0] != -99 {
		t.Fatal("chunk should alias the series values")
	}
}

func TestAppendCopiesAndValidates(t *testing.T) {
	s := &Series{Name: "a"}
	buf := []float64{1, 2}
	if err := s.Append(Chunk{Start: 0, Interval: 10, Values: buf}); err != nil {
		t.Fatal(err)
	}
	// The producer reuses its buffer; the series must be unaffected.
	buf[0], buf[1] = 3, 4
	if err := s.Append(Chunk{Start: 20, Interval: 10, Values: buf}); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3, 4}
	for i, v := range want {
		if s.Values[i] != v {
			t.Fatalf("values = %v, want %v", s.Values, want)
		}
	}
	if s.Start != 0 || s.Interval != 10 {
		t.Fatalf("metadata not adopted: %+v", s)
	}
	// A gap and an interval mismatch are both rejected at the seam.
	if err := s.Append(Chunk{Start: 50, Interval: 10, Values: []float64{5}}); err == nil {
		t.Error("gapped chunk should be rejected")
	}
	if err := s.Append(Chunk{Start: 40, Interval: 20, Values: []float64{5}}); err == nil {
		t.Error("interval mismatch should be rejected")
	}
	// Empty chunks are no-ops.
	if err := s.Append(Chunk{Start: 999, Interval: 1}); err != nil {
		t.Error(err)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestChunksPropertyPartition(t *testing.T) {
	f := func(n uint8, size uint8) bool {
		s := chunkTestSeries(int(n))
		src := s.Chunks(int(size))
		total := 0
		prevEnd := s.Start
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			if c.Len() == 0 || c.Start != prevEnd {
				return false
			}
			prevEnd = c.End()
			total += c.Len()
		}
		return total == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
