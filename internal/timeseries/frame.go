package timeseries

import "fmt"

// Frame is a multivariate regular time series: several aligned columns
// sharing one time axis. Datasets such as Weather (21 indicators) or Wind
// (10 variables) are Frames; forecasting targets a single column.
type Frame struct {
	Name     string
	Start    int64
	Interval int64
	Columns  []*Series // each column shares Start/Interval
	Target   int       // index of the forecasting target column
}

// NewFrame assembles a frame from equally long columns. Column metadata is
// overwritten with the frame's time axis.
func NewFrame(name string, start, interval int64, target int, cols ...*Series) (*Frame, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("timeseries: frame %q needs at least one column", name)
	}
	if target < 0 || target >= len(cols) {
		return nil, fmt.Errorf("timeseries: frame %q target %d out of range", name, target)
	}
	n := cols[0].Len()
	for i, c := range cols {
		if c.Len() != n {
			return nil, fmt.Errorf("timeseries: frame %q column %d has %d points, want %d", name, i, c.Len(), n)
		}
		c.Start, c.Interval = start, interval
	}
	return &Frame{Name: name, Start: start, Interval: interval, Columns: cols, Target: target}, nil
}

// Len returns the number of rows (observations per column).
func (f *Frame) Len() int { return f.Columns[0].Len() }

// TargetSeries returns the forecasting target column.
func (f *Frame) TargetSeries() *Series { return f.Columns[f.Target] }

// Column returns the column with the given name, or nil.
func (f *Frame) Column(name string) *Series {
	for _, c := range f.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}
