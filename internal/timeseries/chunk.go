package timeseries

import "fmt"

// Chunk is a bounded run of consecutive observations of a regular time
// series: the unit of transfer of the streaming data plane. A chunk carries
// its own start timestamp and sampling interval, so a consumer can process
// chunks without ever seeing the whole series — the paper's wind-turbine
// edge scenario (§1), where sensors produce points continuously and
// segments ship as they close.
//
// Values may be a view into a producer-owned buffer that is reused for the
// next chunk; consumers that need the data beyond the next Source.Next call
// must copy it (Series.Append does).
type Chunk struct {
	// Start is the Unix timestamp of the chunk's first observation.
	Start int64
	// Interval is the sampling interval in seconds.
	Interval int64
	// Values holds the chunk's observations, oldest first.
	Values []float64
}

// Len returns the number of observations in the chunk.
func (c Chunk) Len() int { return len(c.Values) }

// End returns the timestamp one interval past the chunk's last observation,
// i.e. the Start of the chunk that abuts this one.
func (c Chunk) End() int64 { return c.Start + int64(len(c.Values))*c.Interval }

// Source yields the chunks of a regular time series in order. It is the
// streaming counterpart of Series: the evaluation pipeline's
// ingest→compress→reconstruct prefix consumes Sources, so stages hold
// O(chunk) rather than O(series) state. Implementations may reuse the
// returned chunk's Values buffer between Next calls.
//
// Third-party producers (a sensor driver, a network tailer) implement this
// interface to feed the compression layer directly; see examples/streaming.
type Source interface {
	// Next returns the next chunk. ok is false once the stream is
	// exhausted or has failed; check Err to distinguish.
	Next() (c Chunk, ok bool)
	// Err returns the first error the source encountered, or nil after a
	// clean end of stream.
	Err() error
}

// DefaultChunkSize is the chunk length used when a caller passes a
// non-positive size: small enough to bound memory, large enough to amortise
// per-chunk overhead.
const DefaultChunkSize = 512

// sliceSource adapts an in-memory Series to the Source interface, yielding
// size-bounded views of the underlying values (no copying).
type sliceSource struct {
	s    *Series
	size int
	pos  int
}

// Chunks returns a Source over the series' values in chunks of the given
// size (non-positive sizes fall back to DefaultChunkSize). The yielded
// chunks alias s.Values — the trivial adaptation of the batch
// representation to the streaming one.
func (s *Series) Chunks(size int) Source {
	if size <= 0 {
		size = DefaultChunkSize
	}
	return &sliceSource{s: s, size: size}
}

func (ss *sliceSource) Next() (Chunk, bool) {
	if ss.pos >= ss.s.Len() {
		return Chunk{}, false
	}
	hi := ss.pos + ss.size
	if hi > ss.s.Len() {
		hi = ss.s.Len()
	}
	c := Chunk{
		Start:    ss.s.TimeAt(ss.pos),
		Interval: ss.s.Interval,
		Values:   ss.s.Values[ss.pos:hi],
	}
	ss.pos = hi
	return c, true
}

func (ss *sliceSource) Err() error { return nil }

// Append appends the chunk's values to the series, copying them so the
// producer may reuse the chunk buffer. On an empty series the chunk's
// metadata is adopted; afterwards each chunk must abut the series end and
// share its interval, so a dropped or duplicated chunk is caught at the
// seam instead of silently corrupting the reconstruction. Growth is
// amortised by the built-in append, so collecting a stream of k chunks
// costs O(n), not O(n·k).
func (s *Series) Append(c Chunk) error {
	if len(c.Values) == 0 {
		return nil
	}
	if s.Len() == 0 {
		s.Start = c.Start
		s.Interval = c.Interval
	} else {
		if c.Interval != s.Interval {
			return fmt.Errorf("timeseries: chunk interval %d does not match series interval %d", c.Interval, s.Interval)
		}
		if want := s.TimeAt(s.Len()); c.Start != want {
			return fmt.Errorf("timeseries: chunk starts at %d, series expects %d", c.Start, want)
		}
	}
	s.Values = append(s.Values, c.Values...)
	return nil
}

// Collect drains a Source into a new Series with the given name. It is the
// point where a streaming pipeline collapses to the batch representation —
// in the evaluation engine that happens at the window stage, where models
// need random access.
func Collect(name string, src Source) (*Series, error) {
	s := &Series{Name: name}
	for {
		c, ok := src.Next()
		if !ok {
			break
		}
		if err := s.Append(c); err != nil {
			return nil, err
		}
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
