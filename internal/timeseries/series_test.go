package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func seq(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = float64(i)
	}
	return v
}

func TestSeriesBasics(t *testing.T) {
	s := New("x", 1000, 60, seq(5))
	if got := s.Len(); got != 5 {
		t.Fatalf("Len() = %d, want 5", got)
	}
	if got := s.TimeAt(3); got != 1180 {
		t.Fatalf("TimeAt(3) = %d, want 1180", got)
	}
	p := s.At(2)
	if p.T != 1120 || p.V != 2 {
		t.Fatalf("At(2) = %+v", p)
	}
}

func TestSeriesClone(t *testing.T) {
	s := New("x", 0, 1, seq(4))
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] == 99 {
		t.Fatal("Clone shares storage with original")
	}
	if !s.Equal(New("x", 0, 1, seq(4))) {
		t.Fatal("original mutated")
	}
}

func TestSegment(t *testing.T) {
	s := New("x", 100, 10, seq(10))
	g, err := s.Segment(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != 120 || g.Len() != 4 || g.Values[0] != 2 {
		t.Fatalf("Segment = start %d len %d first %v", g.Start, g.Len(), g.Values[0])
	}
	if _, err := s.Segment(-1, 3); err == nil {
		t.Error("Segment(-1,3) should fail")
	}
	if _, err := s.Segment(5, 3); err == nil {
		t.Error("Segment(5,3) should fail")
	}
	if _, err := s.Segment(0, 11); err == nil {
		t.Error("Segment(0,11) should fail")
	}
}

func TestEqualNaN(t *testing.T) {
	a := New("x", 0, 1, []float64{1, math.NaN()})
	b := New("x", 0, 1, []float64{1, math.NaN()})
	if !a.Equal(b) {
		t.Error("NaN should compare equal to NaN in Equal")
	}
	c := New("x", 0, 1, []float64{1, 2})
	if a.Equal(c) {
		t.Error("NaN should not equal 2")
	}
}

func TestMaxAbsError(t *testing.T) {
	a := New("x", 0, 1, []float64{1, 2, 3})
	b := New("x", 0, 1, []float64{1.5, 2, 2})
	got, err := a.MaxAbsError(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("MaxAbsError = %v, want 1", got)
	}
	if _, err := a.MaxAbsError(New("x", 0, 1, seq(2))); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestMaxRelError(t *testing.T) {
	a := New("x", 0, 1, []float64{10, 0, -4})
	b := New("x", 0, 1, []float64{11, 0.5, -4.2})
	got, err := a.MaxRelError(b)
	if err != nil {
		t.Fatal(err)
	}
	// relative errors: 0.1, 0.5 (absolute at zero), 0.05
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MaxRelError = %v, want 0.5", got)
	}
}

func TestSplit(t *testing.T) {
	s := New("x", 0, 60, seq(100))
	train, val, test, err := s.Split(0.7, 0.1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 70 || val.Len() != 10 || test.Len() != 20 {
		t.Fatalf("split lengths = %d/%d/%d", train.Len(), val.Len(), test.Len())
	}
	if val.Start != s.TimeAt(70) || test.Start != s.TimeAt(80) {
		t.Fatal("split starts misaligned")
	}
	// Partitions must tile the original values in order.
	if train.Values[69] != 69 || val.Values[0] != 70 || test.Values[19] != 99 {
		t.Fatal("split values misaligned")
	}
}

func TestSplitErrors(t *testing.T) {
	s := New("x", 0, 1, seq(100))
	if _, _, _, err := s.Split(0, 0.5, 0.5); err == nil {
		t.Error("zero fraction should fail")
	}
	if _, _, _, err := s.Split(0.8, 0.2, 0.2); err == nil {
		t.Error("fractions > 1 should fail")
	}
	short := New("x", 0, 1, seq(2))
	if _, _, _, err := short.Split(0.7, 0.1, 0.2); err == nil {
		t.Error("too-short series should fail")
	}
}

func TestSplitPropertyPartition(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 20 {
			return true
		}
		s := New("x", 0, 1, raw)
		train, val, test, err := s.Split(0.7, 0.1, 0.2)
		if err != nil {
			return false
		}
		total := train.Len() + val.Len() + test.Len()
		return total <= len(raw) && total >= len(raw)-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalerRoundTrip(t *testing.T) {
	var sc StandardScaler
	vals := []float64{3, 7, 11, 2, 8, 40, -5}
	if err := sc.Fit(vals); err != nil {
		t.Fatal(err)
	}
	if !sc.Fitted() {
		t.Fatal("scaler should report fitted")
	}
	tr := sc.Transform(vals)
	var mean float64
	for _, v := range tr {
		mean += v
	}
	mean /= float64(len(tr))
	if math.Abs(mean) > 1e-12 {
		t.Fatalf("transformed mean = %v, want 0", mean)
	}
	back := sc.Inverse(tr)
	for i := range vals {
		if math.Abs(back[i]-vals[i]) > 1e-9 {
			t.Fatalf("round trip[%d] = %v, want %v", i, back[i], vals[i])
		}
	}
}

func TestScalerDegenerate(t *testing.T) {
	var sc StandardScaler
	if err := sc.Fit(nil); err == nil {
		t.Error("empty fit should fail")
	}
	if err := sc.Fit([]float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if sc.Std != 1 {
		t.Fatalf("constant input should fall back to Std=1, got %v", sc.Std)
	}
	got := sc.Transform([]float64{5})
	if got[0] != 0 {
		t.Fatalf("Transform(5) = %v, want 0", got[0])
	}
}

func TestScalerPropertyInverse(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		var sc StandardScaler
		if err := sc.Fit(vals); err != nil {
			return false
		}
		back := sc.Inverse(sc.Transform(vals))
		for i := range vals {
			tol := 1e-9 * (1 + math.Abs(vals[i]))
			if math.Abs(back[i]-vals[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeWindows(t *testing.T) {
	ws, err := MakeWindows(seq(10), 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 6 {
		t.Fatalf("window count = %d, want 6", ws.Len())
	}
	w := ws.Windows[0]
	if w.Input[0] != 0 || w.Input[2] != 2 || w.Target[0] != 3 || w.Target[1] != 4 {
		t.Fatalf("first window = %+v", w)
	}
	last := ws.Windows[5]
	if last.Target[1] != 9 {
		t.Fatalf("last window target = %v", last.Target)
	}
}

func TestMakeWindowsStride(t *testing.T) {
	ws, err := MakeWindows(seq(20), 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Len() != 3 {
		t.Fatalf("window count = %d, want 3", ws.Len())
	}
	if ws.Windows[1].Input[0] != 5 {
		t.Fatalf("stride misapplied: %v", ws.Windows[1].Input[0])
	}
}

func TestMakeWindowsErrors(t *testing.T) {
	if _, err := MakeWindows(seq(10), 0, 2, 1); err == nil {
		t.Error("zero input length should fail")
	}
	if _, err := MakeWindows(seq(4), 3, 2, 1); err == nil {
		t.Error("too-short values should fail")
	}
	if _, err := MakeWindows(seq(10), 3, 2, 0); err == nil {
		t.Error("zero stride should fail")
	}
}

func TestMakePairedWindows(t *testing.T) {
	inputs := seq(10)
	targets := make([]float64, 10)
	for i := range targets {
		targets[i] = float64(i) + 100
	}
	ws, err := MakePairedWindows(inputs, targets, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := ws.Windows[0]
	if w.Input[0] != 0 {
		t.Fatalf("paired input = %v", w.Input)
	}
	if w.Target[0] != 103 || w.Target[1] != 104 {
		t.Fatalf("paired target = %v, want raw values", w.Target)
	}
	if _, err := MakePairedWindows(seq(5), seq(6), 2, 1, 1); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestWindowSetAccessors(t *testing.T) {
	ws, _ := MakeWindows(seq(8), 2, 1, 2)
	in, tg := ws.Inputs(), ws.Targets()
	if len(in) != ws.Len() || len(tg) != ws.Len() {
		t.Fatal("accessor lengths differ from window count")
	}
	if in[1][0] != 2 || tg[1][0] != 4 {
		t.Fatalf("accessor contents wrong: %v %v", in[1], tg[1])
	}
}

func TestWindowSetScaled(t *testing.T) {
	var sc StandardScaler
	if err := sc.Fit([]float64{0, 2}); err != nil { // mean 1, std 1
		t.Fatal(err)
	}
	ws, _ := MakeWindows(seq(5), 2, 1, 1)
	sw := ws.Scaled(&sc)
	if sw.Windows[0].Input[0] != -1 {
		t.Fatalf("scaled input = %v, want -1", sw.Windows[0].Input[0])
	}
	// Scaling must not mutate the original windows.
	if ws.Windows[0].Input[0] != 0 {
		t.Fatal("Scaled mutated source windows")
	}
}

func TestFrame(t *testing.T) {
	a := New("a", 0, 0, seq(5))
	b := New("b", 0, 0, seq(5))
	f, err := NewFrame("f", 100, 60, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 5 {
		t.Fatalf("frame len = %d", f.Len())
	}
	if f.TargetSeries() != b {
		t.Fatal("target series wrong")
	}
	if f.Column("a") != a || f.Column("zzz") != nil {
		t.Fatal("column lookup wrong")
	}
	if a.Start != 100 || a.Interval != 60 {
		t.Fatal("frame should align column time axes")
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := NewFrame("f", 0, 1, 0); err == nil {
		t.Error("empty frame should fail")
	}
	a := New("a", 0, 1, seq(5))
	c := New("c", 0, 1, seq(4))
	if _, err := NewFrame("f", 0, 1, 0, a, c); err == nil {
		t.Error("ragged columns should fail")
	}
	if _, err := NewFrame("f", 0, 1, 2, a); err == nil {
		t.Error("target out of range should fail")
	}
}

func TestWindowAliasing(t *testing.T) {
	// Inputs alias the source array by contract; document the behaviour.
	vals := seq(10)
	ws, err := MakeWindows(vals, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	if ws.Windows[0].Input[0] != 99 {
		t.Fatal("windows should alias the source values")
	}
}

func TestSegmentSharesStorage(t *testing.T) {
	s := New("x", 0, 1, seq(10))
	g, err := s.Segment(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	g.Values[0] = 42
	if s.Values[2] != 42 {
		t.Fatal("Segment should share the underlying array")
	}
}
