package timeseries

import "fmt"

// Window is one forecasting instance: Input holds the k most recent
// observed values and Target the h future values to predict
// (paper Definition 7: ŷ_{t+1..t+h} = F(x_{t-k..t})).
type Window struct {
	Input  []float64
	Target []float64
}

// WindowSet is a batch of forecasting instances sharing the same input
// length and horizon.
type WindowSet struct {
	InputLen int
	Horizon  int
	Windows  []Window
}

// MakeWindows slices values into overlapping (input, target) pairs with the
// given stride. Input and Target slices alias the values array; callers that
// mutate them must copy first.
func MakeWindows(values []float64, inputLen, horizon, stride int) (*WindowSet, error) {
	if inputLen <= 0 || horizon <= 0 || stride <= 0 {
		return nil, fmt.Errorf("timeseries: invalid window parameters input=%d horizon=%d stride=%d", inputLen, horizon, stride)
	}
	n := len(values)
	if n < inputLen+horizon {
		return nil, fmt.Errorf("timeseries: %d points too few for input=%d horizon=%d", n, inputLen, horizon)
	}
	ws := &WindowSet{InputLen: inputLen, Horizon: horizon}
	for start := 0; start+inputLen+horizon <= n; start += stride {
		ws.Windows = append(ws.Windows, Window{
			Input:  values[start : start+inputLen],
			Target: values[start+inputLen : start+inputLen+horizon],
		})
	}
	return ws, nil
}

// MakePairedWindows builds windows whose inputs come from one value slice
// (e.g. the decompressed test data) and whose targets come from another
// (the raw test data). This is exactly the paper's evaluation scenario
// (Algorithm 1): predictions are made from transformed inputs but judged
// against raw targets. The two slices must have equal length and alignment.
func MakePairedWindows(inputs, targets []float64, inputLen, horizon, stride int) (*WindowSet, error) {
	if len(inputs) != len(targets) {
		return nil, fmt.Errorf("timeseries: paired windows need equal lengths, got %d and %d", len(inputs), len(targets))
	}
	ws, err := MakeWindows(inputs, inputLen, horizon, stride)
	if err != nil {
		return nil, err
	}
	for i := range ws.Windows {
		start := i * stride
		ws.Windows[i].Target = targets[start+inputLen : start+inputLen+horizon]
	}
	return ws, nil
}

// Inputs returns the input windows as a matrix (one row per window).
func (ws *WindowSet) Inputs() [][]float64 {
	out := make([][]float64, len(ws.Windows))
	for i, w := range ws.Windows {
		out[i] = w.Input
	}
	return out
}

// Targets returns the target windows as a matrix (one row per window).
func (ws *WindowSet) Targets() [][]float64 {
	out := make([][]float64, len(ws.Windows))
	for i, w := range ws.Windows {
		out[i] = w.Target
	}
	return out
}

// Len returns the number of windows.
func (ws *WindowSet) Len() int { return len(ws.Windows) }

// Scaled returns a deep-copied WindowSet with the scaler applied to both
// inputs and targets.
func (ws *WindowSet) Scaled(sc *StandardScaler) *WindowSet {
	out := &WindowSet{InputLen: ws.InputLen, Horizon: ws.Horizon, Windows: make([]Window, len(ws.Windows))}
	for i, w := range ws.Windows {
		out.Windows[i] = Window{Input: sc.Transform(w.Input), Target: sc.Transform(w.Target)}
	}
	return out
}
