package timeseries

import "fmt"

// Ring is a fixed-capacity sliding window over a chunked stream: the online
// plane's bounded view of the most recent points. Producers push chunks as
// they arrive (the PR 4 Chunk contract, seam-checked like Series.Append);
// consumers — drift monitors, anomaly detectors, incremental model updates —
// read the window through no-copy views or an explicit copy, so a
// continuous session holds O(window) state no matter how long it runs.
//
// A Ring also remembers the stream geometry (start timestamp, interval) and
// the total number of points ever pushed, so a window-relative observation
// can always be mapped back to its global index and data timestamp — the
// coordinates monitor events are reported in.
type Ring struct {
	buf      []float64
	head     int   // index in buf of the oldest live value
	n        int   // live values (≤ cap)
	total    int64 // values ever pushed
	start    int64 // stream start timestamp (first pushed point)
	interval int64 // sampling interval in seconds
}

// NewRing returns an empty ring holding at most capacity values.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]float64, capacity)}
}

// Push appends one value, evicting the oldest when the ring is full.
func (r *Ring) Push(v float64) {
	if r.n == len(r.buf) {
		r.buf[r.head] = v
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	} else {
		r.buf[(r.head+r.n)%len(r.buf)] = v
		r.n++
	}
	r.total++
}

// PushChunk appends a chunk's values, seam-checking it against the stream
// geometry exactly as Series.Append does: the first chunk's metadata is
// adopted, every later chunk must abut the stream end and share its
// interval, so a dropped or duplicated chunk fails loudly at the seam.
func (r *Ring) PushChunk(c Chunk) error {
	if len(c.Values) == 0 {
		return nil
	}
	if r.total == 0 {
		r.start = c.Start
		r.interval = c.Interval
	} else {
		if c.Interval != r.interval {
			return fmt.Errorf("timeseries: chunk interval %d does not match ring interval %d", c.Interval, r.interval)
		}
		if want := r.start + r.total*r.interval; c.Start != want {
			return fmt.Errorf("timeseries: chunk starts at %d, ring expects %d", c.Start, want)
		}
	}
	for _, v := range c.Values {
		r.Push(v)
	}
	return nil
}

// Len returns the number of live values in the window.
func (r *Ring) Len() int { return r.n }

// Cap returns the window capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Total returns the number of values ever pushed.
func (r *Ring) Total() int64 { return r.total }

// FirstIndex returns the global (0-based) stream index of the oldest live
// value.
func (r *Ring) FirstIndex() int64 { return r.total - int64(r.n) }

// At returns the i-th live value, 0 being the oldest.
func (r *Ring) At(i int) float64 {
	return r.buf[(r.head+i)%len(r.buf)]
}

// Views returns the window as at most two contiguous slices, oldest first —
// the no-copy read path. The slices alias the ring's buffer and are only
// valid until the next Push.
func (r *Ring) Views() (a, b []float64) {
	if r.n == 0 {
		return nil, nil
	}
	end := r.head + r.n
	if end <= len(r.buf) {
		return r.buf[r.head:end], nil
	}
	return r.buf[r.head:], r.buf[:end-len(r.buf)]
}

// CopyTo appends the window's values, oldest first, to dst and returns the
// extended slice — for consumers that need one contiguous view (dst may be
// a reused scratch buffer).
func (r *Ring) CopyTo(dst []float64) []float64 {
	a, b := r.Views()
	dst = append(dst, a...)
	return append(dst, b...)
}

// TimeAt returns the data timestamp of the point with the given global
// stream index.
func (r *Ring) TimeAt(global int64) int64 {
	return r.start + global*r.interval
}

// RingState is a ring's serialisable snapshot — the session checkpoint
// contract. Values round-trip exactly through JSON (Go encodes float64 in
// shortest-round-trip form), so a restored ring continues bit-identically.
type RingState struct {
	Capacity int       `json:"capacity"`
	Total    int64     `json:"total"`
	Start    int64     `json:"start"`
	Interval int64     `json:"interval"`
	Values   []float64 `json:"values"`
}

// State snapshots the ring.
func (r *Ring) State() RingState {
	return RingState{
		Capacity: len(r.buf),
		Total:    r.total,
		Start:    r.start,
		Interval: r.interval,
		Values:   r.CopyTo(make([]float64, 0, r.n)),
	}
}

// RingFromState reconstructs a ring from a snapshot.
func RingFromState(st RingState) (*Ring, error) {
	if st.Capacity < 1 || len(st.Values) > st.Capacity {
		return nil, fmt.Errorf("timeseries: ring state holds %d values in capacity %d", len(st.Values), st.Capacity)
	}
	r := NewRing(st.Capacity)
	copy(r.buf, st.Values)
	r.n = len(st.Values)
	r.total = st.Total
	r.start = st.Start
	r.interval = st.Interval
	return r, nil
}
