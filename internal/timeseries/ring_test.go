package timeseries

import (
	"encoding/json"
	"math"
	"testing"
)

func TestRingSlidesAndIndexes(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 4 || r.Total() != 10 || r.FirstIndex() != 6 {
		t.Fatalf("len=%d total=%d first=%d", r.Len(), r.Total(), r.FirstIndex())
	}
	for i := 0; i < 4; i++ {
		if got := r.At(i); got != float64(6+i) {
			t.Fatalf("At(%d) = %v, want %v", i, got, 6+i)
		}
	}
	got := r.CopyTo(nil)
	want := []float64{6, 7, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CopyTo = %v, want %v", got, want)
		}
	}
	// Views concatenate to the same window without copying.
	a, b := r.Views()
	joined := append(append([]float64(nil), a...), b...)
	if len(joined) != 4 {
		t.Fatalf("views cover %d values", len(joined))
	}
	for i := range want {
		if joined[i] != want[i] {
			t.Fatalf("Views = %v, want %v", joined, want)
		}
	}
}

func TestRingPushChunkSeams(t *testing.T) {
	r := NewRing(8)
	if err := r.PushChunk(Chunk{Start: 100, Interval: 60, Values: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	// Abutting chunk is accepted.
	if err := r.PushChunk(Chunk{Start: 280, Interval: 60, Values: []float64{4}}); err != nil {
		t.Fatal(err)
	}
	// A gap or an interval change fails loudly.
	if err := r.PushChunk(Chunk{Start: 400, Interval: 60, Values: []float64{5}}); err == nil {
		t.Fatal("gap chunk accepted")
	}
	if err := r.PushChunk(Chunk{Start: 340, Interval: 30, Values: []float64{5}}); err == nil {
		t.Fatal("interval change accepted")
	}
	if got := r.TimeAt(3); got != 280 {
		t.Fatalf("TimeAt(3) = %d, want 280", got)
	}
}

func TestRingStateRoundTrip(t *testing.T) {
	r := NewRing(5)
	if err := r.PushChunk(Chunk{Start: 7, Interval: 3, Values: []float64{0.1, math.Pi, -2.5, 4, 5, 6, 7}}); err != nil {
		t.Fatal(err)
	}
	// The checkpoint path serialises through JSON; the restored ring must be
	// indistinguishable, bit for bit.
	raw, err := json.Marshal(r.State())
	if err != nil {
		t.Fatal(err)
	}
	var st RingState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	got, err := RingFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total() != r.Total() || got.Len() != r.Len() || got.FirstIndex() != r.FirstIndex() {
		t.Fatalf("restored geometry differs: %+v vs %+v", got, r)
	}
	for i := 0; i < r.Len(); i++ {
		if got.At(i) != r.At(i) {
			t.Fatalf("restored value %d differs: %v vs %v", i, got.At(i), r.At(i))
		}
	}
	// Continued pushes stay seam-compatible.
	if err := got.PushChunk(Chunk{Start: 7 + 7*3, Interval: 3, Values: []float64{8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := RingFromState(RingState{Capacity: 2, Values: []float64{1, 2, 3}}); err == nil {
		t.Fatal("oversized state accepted")
	}
}
