// Package timeseries defines the core data model used throughout lossyts:
// regular time series, segments, dataset splits, scalers, and the sliding
// windows consumed by forecasting models.
//
// A regular time series (paper Definition 2) is fully described by its first
// timestamp, a constant sampling interval, and the ordered values; storing it
// that way keeps the model compact and makes timestamp compression trivial.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Point is a single observation: a timestamp (Unix seconds) and a value
// (paper Definition 1).
type Point struct {
	T int64
	V float64
}

// Series is a regular time series: values sampled every Interval seconds
// starting at Start (paper Definition 2).
type Series struct {
	Name     string
	Start    int64 // Unix seconds of the first observation
	Interval int64 // seconds between consecutive observations
	Values   []float64
}

// New returns a Series with the given metadata and values.
//
// The values slice is used directly, NOT copied: the series aliases the
// caller's array, and mutations on either side are visible to both. This
// no-copy contract is what lets dataset generators, payload decoders, and
// Segment views share storage without doubling memory, but it means a
// caller that keeps writing into values after New must not assume the
// series is a snapshot — use Clone (or Append, which always copies) for an
// independent series.
func New(name string, start, interval int64, values []float64) *Series {
	return &Series{Name: name, Start: start, Interval: interval, Values: values}
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of observation i.
func (s *Series) TimeAt(i int) int64 { return s.Start + int64(i)*s.Interval }

// At returns observation i as a Point.
func (s *Series) At(i int) Point { return Point{T: s.TimeAt(i), V: s.Values[i]} }

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	v := make([]float64, len(s.Values))
	copy(v, s.Values)
	return &Series{Name: s.Name, Start: s.Start, Interval: s.Interval, Values: v}
}

// Segment returns the sub-series covering observations [i, j)
// (paper Definition 3 uses inclusive timestamps; here the half-open index
// convention is used, matching Go slices). The returned series shares the
// underlying array.
func (s *Series) Segment(i, j int) (*Series, error) {
	if i < 0 || j > len(s.Values) || i > j {
		return nil, fmt.Errorf("timeseries: segment [%d,%d) out of range [0,%d)", i, j, len(s.Values))
	}
	return &Series{
		Name:     s.Name,
		Start:    s.TimeAt(i),
		Interval: s.Interval,
		Values:   s.Values[i:j],
	}, nil
}

// Equal reports whether two series have identical metadata and values.
// NaN values compare equal to NaN so round-trip tests behave sensibly.
func (s *Series) Equal(o *Series) bool {
	if s.Start != o.Start || s.Interval != o.Interval || len(s.Values) != len(o.Values) {
		return false
	}
	for i, v := range s.Values {
		w := o.Values[i]
		if v != w && !(math.IsNaN(v) && math.IsNaN(w)) {
			return false
		}
	}
	return true
}

// MaxAbsError returns the largest absolute difference between two
// equal-length series, used to verify error bounds.
func (s *Series) MaxAbsError(o *Series) (float64, error) {
	if len(s.Values) != len(o.Values) {
		return 0, errors.New("timeseries: length mismatch")
	}
	var m float64
	for i, v := range s.Values {
		if d := math.Abs(v - o.Values[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// MaxRelError returns the largest pointwise relative error |v-w|/|v|
// between two equal-length series. Points where |v| == 0 contribute their
// absolute error instead (a relative bound requires them to be exact).
func (s *Series) MaxRelError(o *Series) (float64, error) {
	if len(s.Values) != len(o.Values) {
		return 0, errors.New("timeseries: length mismatch")
	}
	var m float64
	for i, v := range s.Values {
		d := math.Abs(v - o.Values[i])
		if av := math.Abs(v); av > 0 {
			d /= av
		}
		if d > m {
			m = d
		}
	}
	return m, nil
}

// Split divides the series into train/validation/test partitions by the
// given fractions (which must be positive and sum to at most 1; any
// remainder is discarded). The paper uses 70%/10%/20%.
func (s *Series) Split(trainFrac, valFrac, testFrac float64) (train, val, test *Series, err error) {
	if trainFrac <= 0 || valFrac <= 0 || testFrac <= 0 || trainFrac+valFrac+testFrac > 1+1e-9 {
		return nil, nil, nil, fmt.Errorf("timeseries: invalid split fractions %v/%v/%v", trainFrac, valFrac, testFrac)
	}
	n := len(s.Values)
	i := int(float64(n) * trainFrac)
	j := i + int(float64(n)*valFrac)
	k := j + int(float64(n)*testFrac)
	if k > n {
		k = n
	}
	if i == 0 || j <= i || k <= j {
		return nil, nil, nil, fmt.Errorf("timeseries: series too short (%d points) for split", n)
	}
	train, _ = s.Segment(0, i)
	val, _ = s.Segment(i, j)
	test, _ = s.Segment(j, k)
	return train, val, test, nil
}
