package timeseries

import (
	"errors"
	"math"
)

// StandardScaler standardises values to zero mean and unit variance, the
// transformation the paper applies to all forecasting model inputs (§3.4).
// The zero value is unfitted; call Fit before Transform.
type StandardScaler struct {
	Mean   float64
	Std    float64
	fitted bool
}

// Fit estimates mean and standard deviation from the given values.
// A degenerate (constant) input yields Std == 1 so Transform stays defined.
func (sc *StandardScaler) Fit(values []float64) error {
	if len(values) == 0 {
		return errors.New("timeseries: cannot fit scaler on empty input")
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(values)))
	if std == 0 || math.IsNaN(std) {
		std = 1
	}
	sc.Mean, sc.Std, sc.fitted = mean, std, true
	return nil
}

// Fitted reports whether Fit has been called successfully.
func (sc *StandardScaler) Fitted() bool { return sc.fitted }

// Transform returns (v - mean) / std for each value, as a new slice.
func (sc *StandardScaler) Transform(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = (v - sc.Mean) / sc.Std
	}
	return out
}

// Inverse returns v*std + mean for each value, as a new slice.
func (sc *StandardScaler) Inverse(values []float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v*sc.Std + sc.Mean
	}
	return out
}
