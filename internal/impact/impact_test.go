package impact

import (
	"math"
	"math/rand"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/features"
)

// syntheticObservations builds observations where TFE is a known function
// of the inputs: TFE = 2·|max_kl_shift delta| + 0.5·te + method effect.
func syntheticObservations(n int, seed int64) []Observation {
	rng := rand.New(rand.NewSource(seed))
	methods := compress.Methods
	obs := make([]Observation, n)
	for i := range obs {
		m := methods[rng.Intn(len(methods))]
		kl := rng.Float64()
		te := rng.Float64() * 0.1
		tfe := 2*kl + 0.5*te
		if m == compress.MethodSZ {
			tfe += 0.2
		}
		obs[i] = Observation{
			Method:  m,
			Epsilon: rng.Float64(),
			CR:      1 + rng.Float64()*20,
			TE:      te,
			Deltas: features.Vector{
				"max_kl_shift":  kl,
				"seas_strength": rng.Float64() * 0.01, // irrelevant noise
			},
			TFE: tfe + 0.01*rng.NormFloat64(),
		}
	}
	return obs
}

func TestTrainAndPredict(t *testing.T) {
	obs := syntheticObservations(400, 1)
	p, err := Train(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.TrainR2 < 0.9 {
		t.Errorf("train R2 = %.3f", p.TrainR2)
	}
	if p.HoldoutR2 < 0.8 {
		t.Errorf("holdout R2 = %.3f", p.HoldoutR2)
	}
	// Prediction tracks the generating function.
	test := syntheticObservations(50, 2)
	var sumErr float64
	for _, o := range test {
		pred, err := p.Predict(o)
		if err != nil {
			t.Fatal(err)
		}
		sumErr += math.Abs(pred - o.TFE)
	}
	if mean := sumErr / float64(len(test)); mean > 0.12 {
		t.Errorf("mean absolute prediction error = %.3f", mean)
	}
}

func TestExplainRanksDrivingFeature(t *testing.T) {
	obs := syntheticObservations(400, 3)
	p, err := Train(obs)
	if err != nil {
		t.Fatal(err)
	}
	// An observation with a huge KL shift should be explained by it.
	o := Observation{
		Method:  compress.MethodPMC,
		Epsilon: 0.3,
		CR:      10,
		TE:      0.05,
		Deltas:  features.Vector{"max_kl_shift": 0.95, "seas_strength": 0.001},
	}
	contrib, expected, err := p.Explain(o)
	if err != nil {
		t.Fatal(err)
	}
	if contrib[0].Feature != "max_kl_shift" {
		t.Errorf("top contribution = %s, want max_kl_shift", contrib[0].Feature)
	}
	// Local accuracy: expected + sum(phi) == prediction.
	pred, _ := p.Predict(o)
	sum := expected
	for _, c := range contrib {
		sum += c.Phi
	}
	if math.Abs(sum-pred) > 1e-8 {
		t.Errorf("SHAP does not sum to prediction: %v vs %v", sum, pred)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty training set should error")
	}
	if _, err := Train(syntheticObservations(5, 4)); err == nil {
		t.Error("tiny training set should error")
	}
	var p Predictor
	if _, err := p.Predict(Observation{Deltas: features.Vector{}}); err == nil {
		t.Error("untrained predict should error")
	}
	if _, _, err := p.Explain(Observation{Deltas: features.Vector{}}); err == nil {
		t.Error("untrained explain should error")
	}
}

func TestObservationsFromGrid(t *testing.T) {
	g, err := core.RunGrid(core.QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	obs, err := ObservationsFromGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.QuickOptions()
	want := 2 * 3 * 4 // datasets × methods × bounds in QuickOptions
	_ = opts
	if len(obs) != want {
		t.Fatalf("observations = %d, want %d", len(obs), want)
	}
	for _, o := range obs {
		if o.CR <= 0 || len(o.Deltas) < 42 {
			t.Fatalf("bad observation %+v", o)
		}
	}
	// End-to-end: the real grid is small but must still train.
	p, err := Train(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.TrainR2 <= 0 {
		t.Errorf("train R2 = %v", p.TrainR2)
	}
}
