// Package impact implements the research direction the paper proposes in
// §5: a machine-learning model that predicts the impact of lossy
// compression on a downstream analytics task (here: the forecasting TFE)
// from compression characteristics alone — method, error bound, compression
// ratio, transformation error, and the characteristic deltas of the
// decompressed series — without training or running any forecasting model.
//
// The predictor is a gradient-boosted tree ensemble; exact TreeSHAP
// explains every prediction, so users can see which characteristic drift is
// driving an expected accuracy loss.
package impact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lossyts/internal/compress"
	"lossyts/internal/core"
	"lossyts/internal/features"
	"lossyts/internal/gbt"
)

// Observation is one training or prediction instance.
type Observation struct {
	Method  compress.Method
	Epsilon float64
	CR      float64
	TE      float64 // transformation error (NRMSE raw vs decompressed)
	// Deltas holds the characteristic differences decompressed − raw.
	Deltas features.Vector
	// TFE is the label (ignored at prediction time).
	TFE float64
}

// Predictor maps compression characteristics to an expected TFE.
type Predictor struct {
	featureNames []string // characteristic delta order
	ensemble     *gbt.Ensemble
	TrainR2      float64
	HoldoutR2    float64 // R² on the held-out fifth of the observations
}

// methodFeatures one-hot encodes the compression method.
func methodFeatures(m compress.Method) []float64 {
	out := make([]float64, len(compress.Methods))
	for i, name := range compress.Methods {
		if m == name {
			out[i] = 1
		}
	}
	return out
}

func (p *Predictor) row(o Observation) []float64 {
	row := methodFeatures(o.Method)
	row = append(row, o.Epsilon, o.CR, o.TE)
	for _, n := range p.featureNames {
		row = append(row, o.Deltas[n])
	}
	return row
}

// rowNames returns the full feature naming, aligned with row.
func (p *Predictor) rowNames() []string {
	names := make([]string, 0, len(compress.Methods)+3+len(p.featureNames))
	for _, m := range compress.Methods {
		names = append(names, "method_"+string(m))
	}
	names = append(names, "epsilon", "cr", "te")
	names = append(names, p.featureNames...)
	return names
}

// Train fits the predictor on the observations, holding out every fifth
// one to estimate generalisation.
func Train(obs []Observation) (*Predictor, error) {
	if len(obs) < 20 {
		return nil, fmt.Errorf("impact: %d observations too few (need >= 20)", len(obs))
	}
	p := &Predictor{featureNames: obs[0].Deltas.Names()}
	var trainX, testX [][]float64
	var trainY, testY []float64
	for i, o := range obs {
		row := p.row(o)
		if i%5 == 4 {
			testX = append(testX, row)
			testY = append(testY, o.TFE)
		} else {
			trainX = append(trainX, row)
			trainY = append(trainY, o.TFE)
		}
	}
	ens, err := gbt.Fit(trainX, trainY, testX, testY, gbt.Options{
		Trees:        300,
		LearningRate: 0.05,
		Tree:         gbt.TreeOptions{MaxDepth: 4, MinLeaf: 3},
		Patience:     30,
	})
	if err != nil {
		return nil, err
	}
	p.ensemble = ens
	p.TrainR2 = ens.R2(trainX, trainY)
	p.HoldoutR2 = ens.R2(testX, testY)
	return p, nil
}

// Predict returns the expected TFE for an observation (the TFE field is
// ignored).
func (p *Predictor) Predict(o Observation) (float64, error) {
	if p.ensemble == nil {
		return 0, errors.New("impact: predictor not trained")
	}
	return p.ensemble.Predict(p.row(o)), nil
}

// Contribution is one feature's Shapley contribution to a prediction.
type Contribution struct {
	Feature string
	Value   float64 // the feature's value in the observation
	Phi     float64 // its Shapley contribution to the predicted TFE
}

// Explain returns the per-feature Shapley contributions of a prediction,
// sorted by absolute contribution.
func (p *Predictor) Explain(o Observation) ([]Contribution, float64, error) {
	if p.ensemble == nil {
		return nil, 0, errors.New("impact: predictor not trained")
	}
	row := p.row(o)
	phi, expected := p.ensemble.ShapValues(row)
	names := p.rowNames()
	out := make([]Contribution, len(names))
	for i, n := range names {
		out[i] = Contribution{Feature: n, Value: row[i], Phi: phi[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Phi) > math.Abs(out[j].Phi)
	})
	return out, expected, nil
}

// ObservationsFromGrid converts a completed evaluation grid into training
// observations: one per grid cell, labelled with the cell's mean TFE across
// the forecasting models.
func ObservationsFromGrid(g *core.GridResult) ([]Observation, error) {
	rows, err := g.FeatureRows()
	if err != nil {
		return nil, err
	}
	out := make([]Observation, 0, len(rows))
	for _, r := range rows {
		cell := g.Datasets[r.Dataset].Cell(r.Method, r.Epsilon)
		if cell == nil {
			continue
		}
		out = append(out, Observation{
			Method:  r.Method,
			Epsilon: r.Epsilon,
			CR:      cell.CR,
			TE:      cell.TE.NRMSE,
			Deltas:  r.Delta,
			TFE:     r.TFE,
		})
	}
	if len(out) == 0 {
		return nil, errors.New("impact: grid produced no observations")
	}
	return out, nil
}
