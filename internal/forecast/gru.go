package forecast

import (
	"context"
	"errors"
	"math/rand"

	"lossyts/internal/nn"
)

// gru is an encoder-decoder gated recurrent network (§3.4): the encoder
// consumes the input window step by step; the decoder starts from the final
// encoder state and rolls the forecast out autoregressively, feeding each
// prediction back as the next input.
type gru struct {
	cfg     Config
	rng     *rand.Rand
	encoder *nn.GRUCell
	decoder *nn.GRUCell
	head    *nn.Linear
	trained bool
	updates int
}

func init() {
	Register(Registration{
		Name:        "GRU",
		New:         func(cfg Config) Model { return newGRU(cfg) },
		Deep:        true,
		Incremental: true,
	})
}

func newGRU(cfg Config) *gru {
	rng := rand.New(rand.NewSource(cfg.Seed))
	h := cfg.HiddenSize
	if h < 4 {
		h = 32
	}
	return &gru{
		cfg:     cfg,
		rng:     rng,
		encoder: nn.NewGRUCell(rng, 1, h),
		decoder: nn.NewGRUCell(rng, 1, h),
		head:    nn.NewLinear(rng, h, 1),
	}
}

func (m *gru) Name() string { return "GRU" }

func (m *gru) params() []*nn.Tensor {
	ps := append(m.encoder.Params(), m.decoder.Params()...)
	return append(ps, m.head.Params()...)
}

func (m *gru) forward(x *nn.Tensor, train bool) *nn.Tensor {
	b, l := x.Shape[0], x.Shape[1]
	h := nn.ZerosLike(x, b, m.encoder.Hidden)
	for t := 0; t < l; t++ {
		step := nn.Narrow(x, 1, t, 1) // [B, 1]
		h = m.encoder.Step(step, h)
		if train && m.cfg.Dropout > 0 {
			h = nn.Dropout(h, m.cfg.Dropout, m.rng, true)
		}
	}
	// Decoder: start from the last observed value.
	prev := nn.Narrow(x, 1, l-1, 1)
	outs := make([]*nn.Tensor, m.cfg.Horizon)
	for k := 0; k < m.cfg.Horizon; k++ {
		h = m.decoder.Step(prev, h)
		prev = m.head.Forward(h) // [B, 1]
		outs[k] = prev
	}
	return nn.Concat(1, outs...)
}

func (m *gru) Fit(train, val []float64) error {
	return m.FitContext(context.Background(), train, val)
}

// FitContext is Fit with cancellation honoured at epoch boundaries.
func (m *gru) FitContext(ctx context.Context, train, val []float64) error {
	if err := trainNeural(ctx, m, m.cfg, m.rng, train, val); err != nil {
		return err
	}
	m.trained = true
	return nil
}

// Update warm-starts a short training continuation on the newest windows,
// reseeding the model RNG from (Seed, update counter) so a checkpointed
// session resumes with the exact randomness of the uninterrupted run.
func (m *gru) Update(ctx context.Context, train, val []float64) error {
	if !m.trained {
		return m.FitContext(ctx, train, val)
	}
	m.updates++
	m.rng = updateRNG(m.cfg.Seed, m.updates)
	return trainNeural(ctx, m, updateConfig(m.cfg), m.rng, train, val)
}

// StateSnapshot captures the weights for session checkpointing.
func (m *gru) StateSnapshot() ModelState {
	return neuralSnapshot("GRU", m.updates, m.trained, m.params())
}

// RestoreState loads a checkpointed snapshot back into the model.
func (m *gru) RestoreState(st ModelState) error {
	if err := neuralRestore("GRU", st, m.params()); err != nil {
		return err
	}
	m.updates, m.trained = st.Updates, st.Trained
	return nil
}

func (m *gru) Predict(inputs [][]float64) ([][]float64, error) {
	if !m.trained {
		return nil, errors.New("forecast: GRU predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	return predictNeural(m, m.cfg, inputs), nil
}
