package forecast

import (
	"errors"
	"fmt"
	"math"

	"lossyts/internal/timeseries"
)

// SearchSpace defines the hyperparameter grid explored per model. The paper
// (§3.4) searches around each model's published configuration and always
// explores dropout over {0, 0.05, 0.1}.
type SearchSpace struct {
	HiddenSizes []int
	Dropouts    []float64
}

// DefaultSearchSpace mirrors the paper's strategy at laptop scale.
func DefaultSearchSpace() SearchSpace {
	return SearchSpace{
		HiddenSizes: []int{16, 32, 64},
		Dropouts:    []float64{0, 0.05, 0.1},
	}
}

// SearchResult reports one evaluated configuration.
type SearchResult struct {
	Config Config
	NRMSE  float64
}

// SearchHyperparameters runs the paper's validation-subset grid search
// (§3.4): every configuration in the space is trained on train and scored
// by NRMSE on val; the best configuration and the full trace are returned.
// Models without the searched knobs (Arima, GBoost) are scored once with
// the base configuration.
func SearchHyperparameters(name string, base Config, space SearchSpace, train, val []float64) (Config, []SearchResult, error) {
	if err := base.validate(); err != nil {
		return base, nil, err
	}
	if len(val) < base.InputLen+base.Horizon {
		return base, nil, errors.New("forecast: validation subset too short for hyperparameter search")
	}
	configs := []Config{base}
	if IsDeep(name) {
		configs = configs[:0]
		hs := space.HiddenSizes
		if len(hs) == 0 {
			hs = []int{base.HiddenSize}
		}
		ds := space.Dropouts
		if len(ds) == 0 {
			ds = []float64{base.Dropout}
		}
		for _, h := range hs {
			for _, d := range ds {
				c := base
				c.HiddenSize = h
				c.Dropout = d
				configs = append(configs, c)
			}
		}
	}
	ws, err := timeseries.MakeWindows(val, base.InputLen, base.Horizon, base.Horizon)
	if err != nil {
		return base, nil, err
	}
	lo, hi := minMax(val)
	if hi == lo {
		return base, nil, errors.New("forecast: constant validation subset")
	}

	var results []SearchResult
	best := base
	bestScore := math.Inf(1)
	for _, cfg := range configs {
		m, err := New(name, cfg)
		if err != nil {
			return base, nil, err
		}
		if err := m.Fit(train, val); err != nil {
			return base, nil, fmt.Errorf("forecast: search fit %s: %w", name, err)
		}
		preds, err := m.Predict(ws.Inputs())
		if err != nil {
			return base, nil, err
		}
		var ss float64
		var n int
		for i, p := range preds {
			for j := range p {
				d := p[j] - ws.Windows[i].Target[j]
				ss += d * d
				n++
			}
		}
		nrmse := math.Sqrt(ss/float64(n)) / (hi - lo)
		results = append(results, SearchResult{Config: cfg, NRMSE: nrmse})
		if nrmse < bestScore {
			bestScore, best = nrmse, cfg
		}
	}
	return best, results, nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
