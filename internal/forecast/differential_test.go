package forecast

import (
	"math"
	"testing"

	"lossyts/internal/nn"
)

// trainAndPredict fits a fresh model of the named kind on a synthetic
// series and returns its forecasts. The config keeps the validation set
// empty (the val slice is too short for a window and MaxTrainWindows is
// below the holdout threshold), so no early-stopping comparison can branch
// differently between kernel modes — the two runs execute the exact same
// sequence of optimizer steps and the only differential axis is the kernel
// implementation.
func trainAndPredict(t *testing.T, modelName string, reference bool) [][]float64 {
	t.Helper()
	nn.UseReferenceKernels(reference)
	defer nn.UseReferenceKernels(false)

	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.InputLen = 16
	cfg.Horizon = 4
	cfg.HiddenSize = 8
	cfg.Epochs = 2
	cfg.BatchSize = 8
	cfg.MaxTrainWindows = 8
	cfg.Patience = 0

	series := make([]float64, 200)
	for i := range series {
		series[i] = math.Sin(float64(i)/6) + 0.3*math.Cos(float64(i)/17)
	}
	model, err := New(modelName, cfg)
	if err != nil {
		t.Fatalf("%s: %v", modelName, err)
	}
	if err := model.Fit(series, series[:4]); err != nil {
		t.Fatalf("%s fit: %v", modelName, err)
	}
	inputs := [][]float64{series[0:16], series[50:66], series[100:116]}
	preds, err := model.Predict(inputs)
	if err != nil {
		t.Fatalf("%s predict: %v", modelName, err)
	}
	return preds
}

// TestFusedKernelsMatchReference trains one GRU and one Transformer with
// the fast kernels and with the reference kernels and requires the final
// forecasts to agree within 1e-9 — the acceptance bound for the backward
// kernels' regrouped floating-point additions, compounded over every
// optimizer step of training.
func TestFusedKernelsMatchReference(t *testing.T) {
	for _, modelName := range []string{"GRU", "Transformer", "DLinear"} {
		fast := trainAndPredict(t, modelName, false)
		ref := trainAndPredict(t, modelName, true)
		for i := range ref {
			for j := range ref[i] {
				if d := math.Abs(fast[i][j] - ref[i][j]); d > 1e-9 {
					t.Errorf("%s: forecast[%d][%d] fast %v, reference %v (|diff| %v > 1e-9)",
						modelName, i, j, fast[i][j], ref[i][j], d)
				}
			}
		}
	}
}
