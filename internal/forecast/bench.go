package forecast

import (
	"fmt"
	"math"
	"math/rand"

	"lossyts/internal/nn"
)

// OneTrainingStep builds the named deep model and returns a closure running
// one full optimizer step (forward, backward, clip, Adam update, arena
// reset) on a fixed synthetic batch. It is the shared workload of the
// kernel benchmarks (go test -bench and cmd/nnbench), exercising every hot
// path of the nn package — blocked matmuls, fused ops, and the arena —
// under whichever kernel mode (nn.UseReferenceKernels) is active when the
// closure runs.
func OneTrainingStep(modelName string, batchSize int, seed int64) (func(), error) {
	cfg := DefaultConfig()
	cfg.Seed = seed
	model, err := New(modelName, cfg)
	if err != nil {
		return nil, err
	}
	net, ok := model.(network)
	if !ok {
		return nil, fmt.Errorf("forecast: %s is not a deep model", modelName)
	}
	rng := rand.New(rand.NewSource(seed + 1))
	x := nn.Zeros(batchSize, cfg.InputLen)
	y := nn.Zeros(batchSize, cfg.Horizon)
	for i := range x.Data {
		x.Data[i] = math.Sin(float64(i)/7) + 0.1*rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = math.Sin(float64(i)/7) + 0.1*rng.NormFloat64()
	}
	params := net.params()
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	arena := nn.NewArena()
	return func() {
		nn.ZeroGrad(params)
		loss := nn.MSE(net.forward(x.InArena(arena), true), y)
		loss.Backward()
		nn.ClipGradNorm(params, 5)
		opt.Step(params)
		arena.Reset()
	}, nil
}
