package forecast

import (
	"context"
	"errors"
	"fmt"

	"lossyts/internal/gbt"
	"lossyts/internal/timeseries"
)

// gboost is the paper's Gradient Boosting model (§3.4, [7, 13]): an
// ensemble of shallow regression trees fitted to one-step-ahead residuals
// over lag features, rolled out recursively over the forecast horizon.
type gboost struct {
	cfg      Config
	lags     []int
	ensemble *gbt.Ensemble
}

func init() {
	Register(Registration{
		Name:        "GBoost",
		New:         func(cfg Config) Model { return newGBoost(cfg) },
		Incremental: true,
	})
}

func newGBoost(cfg Config) *gboost {
	// Lag features: dense short lags plus the daily/seasonal markers that
	// fit inside the input window.
	var lags []int
	for l := 1; l <= 16 && l <= cfg.InputLen; l++ {
		lags = append(lags, l)
	}
	for _, l := range []int{24, 48, 96, cfg.SeasonalPeriod} {
		if l > 16 && l <= cfg.InputLen {
			lags = append(lags, l)
		}
	}
	return &gboost{cfg: cfg, lags: dedupInts(lags)}
}

func dedupInts(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func (m *gboost) Name() string { return "GBoost" }

// featureRow builds the lag + rolling-statistic features from a window
// (most recent value last).
func (m *gboost) featureRow(w []float64) []float64 {
	L := len(w)
	row := make([]float64, 0, len(m.lags)+2)
	for _, lag := range m.lags {
		row = append(row, w[L-lag])
	}
	// Rolling means over the last day-ish span and the whole window.
	short := 24
	if short > L {
		short = L
	}
	row = append(row, mean(w[L-short:]), mean(w))
	return row
}

func (m *gboost) Fit(train, val []float64) error {
	tw, err := timeseries.MakeWindows(train, m.cfg.InputLen, 1, 1)
	if err != nil {
		return fmt.Errorf("forecast: GBoost windows: %w", err)
	}
	idx := subsampleIndices(tw.Len(), 4*m.cfg.MaxTrainWindows)
	x := make([][]float64, len(idx))
	y := make([]float64, len(idx))
	for i, wi := range idx {
		x[i] = m.featureRow(tw.Windows[wi].Input)
		y[i] = tw.Windows[wi].Target[0]
	}
	var vx [][]float64
	var vy []float64
	if vw, err := timeseries.MakeWindows(val, m.cfg.InputLen, 1, 1); err == nil {
		vi := subsampleIndices(vw.Len(), 256)
		for _, wi := range vi {
			vx = append(vx, m.featureRow(vw.Windows[wi].Input))
			vy = append(vy, vw.Windows[wi].Target[0])
		}
	}
	opts := gbt.Options{
		Trees:        120,
		LearningRate: 0.1,
		Tree:         gbt.TreeOptions{MaxDepth: 4, MinLeaf: 8},
		Patience:     12,
	}
	ens, err := gbt.Fit(x, y, vx, vy, opts)
	if err != nil {
		return err
	}
	m.ensemble = ens
	return nil
}

// Update refits the ensemble on the newest window — gradient-boosted trees
// have no warm-startable parameters, so the deterministic refit is the
// incremental path.
func (m *gboost) Update(ctx context.Context, train, val []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.Fit(train, val)
}

// Predict rolls the one-step model forward Horizon times, feeding each
// prediction back into the window (recursive multi-step strategy).
func (m *gboost) Predict(inputs [][]float64) ([][]float64, error) {
	if m.ensemble == nil {
		return nil, errors.New("forecast: GBoost predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	out := make([][]float64, len(inputs))
	for i, w := range inputs {
		window := append([]float64(nil), w...)
		preds := make([]float64, m.cfg.Horizon)
		for k := 0; k < m.cfg.Horizon; k++ {
			p := m.ensemble.Predict(m.featureRow(window))
			preds[k] = p
			window = append(window[1:], p)
		}
		out[i] = preds
	}
	return out, nil
}
