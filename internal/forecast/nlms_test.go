package forecast

import (
	"math"
	"math/rand"
	"testing"
)

// The codec contract depends on two NLMS properties: determinism (two
// predictors fed the same values stay bit-identical, even when one side
// skips Predict calls) and convergence on a learnable signal (otherwise it
// compresses nothing).
func TestNLMSDeterministicReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	enc, dec := NewNLMS(), NewNLMS()
	for i := 0; i < 2000; i++ {
		v := math.Sin(float64(i)/7) + 0.1*rng.NormFloat64()
		if i%3 == 0 {
			_ = enc.Predict() // encoder predicts every point; decoder sometimes skips
		}
		pe := enc.Predict()
		pd := dec.Predict()
		if pe != pd {
			t.Fatalf("step %d: predictions diverge (%v vs %v)", i, pe, pd)
		}
		enc.Update(v)
		dec.Update(v)
	}
}

func TestNLMSLearnsLinearSignal(t *testing.T) {
	p := NewNLMS()
	// A pure AR(1)-style ramp the linear filter can capture.
	var early, late float64
	n := 4000
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i) / 20)
		pred := p.Predict()
		err := math.Abs(v - pred)
		if i >= 10 && i < 200 {
			early += err
		}
		if i >= n-200 {
			late += err
		}
		p.Update(v)
	}
	if late >= early {
		t.Fatalf("NLMS did not converge: early error %v, late error %v", early, late)
	}
}

func TestNLMSReset(t *testing.T) {
	a, b := NewNLMS(), NewNLMS()
	for i := 0; i < 100; i++ {
		a.Update(float64(i % 7))
	}
	a.Reset()
	for i := 0; i < 50; i++ {
		va := a.Predict()
		vb := b.Predict()
		if va != vb {
			t.Fatalf("step %d after Reset: %v vs fresh %v", i, va, vb)
		}
		a.Update(float64(i))
		b.Update(float64(i))
	}
}
