package forecast

import (
	"context"
	"errors"
	"testing"
)

func TestRegisteredIncludesPaperModels(t *testing.T) {
	got := map[string]bool{}
	for _, name := range Registered() {
		got[name] = true
	}
	for _, name := range ModelNames {
		if !got[name] {
			t.Errorf("paper model %s missing from Registered(): %v", name, Registered())
		}
	}
}

func TestNewUnknownModelTypedError(t *testing.T) {
	_, err := New("NoSuchModel", DefaultConfig())
	if err == nil {
		t.Fatal("expected an error")
	}
	var unknown *UnknownModelError
	if !errors.As(err, &unknown) {
		t.Fatalf("want *UnknownModelError, got %T: %v", err, err)
	}
	if unknown.Name != "NoSuchModel" {
		t.Fatalf("error names %q", unknown.Name)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	cases := map[string]Registration{
		"duplicate name":  {Name: "Arima", New: func(cfg Config) Model { return newArima(cfg) }},
		"nil constructor": {Name: "FreshModel"},
		"empty name":      {New: func(cfg Config) Model { return newArima(cfg) }},
	}
	for name, reg := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%+v) did not panic", reg)
				}
			}()
			Register(reg)
		})
	}
}

func TestIsDeepFromRegistry(t *testing.T) {
	deep := map[string]bool{
		"Arima": false, "GBoost": false,
		"DLinear": true, "GRU": true, "Informer": true, "NBeats": true, "Transformer": true,
	}
	for name, want := range deep {
		if got := IsDeep(name); got != want {
			t.Errorf("IsDeep(%s) = %v, want %v", name, got, want)
		}
	}
	if IsDeep("NoSuchModel") {
		t.Error("unknown models must count as shallow")
	}
}

// TestFitContextCancelledBeforeTraining covers the generic FitContext
// helper: an already-cancelled context stops any model — including the
// shallow ones without a ContextFitter implementation — before work starts.
func TestFitContextCancelledBeforeTraining(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range ModelNames {
		cfg := DefaultConfig()
		cfg.Epochs = 1
		m, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := FitContext(ctx, m, nil, nil); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: FitContext on cancelled context = %v, want context.Canceled", name, err)
		}
	}
}
