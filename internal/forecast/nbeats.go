package forecast

import (
	"context"
	"errors"
	"math/rand"

	"lossyts/internal/nn"
)

// nbeatsBlock is one N-BEATS block: a stack of fully connected layers
// producing a backcast (subtracted from the running residual) and a
// forecast (added to the running total).
type nbeatsBlock struct {
	fc       []*nn.Linear
	backcast *nn.Linear
	forecast *nn.Linear
}

// nbeats is the generic N-BEATS architecture (Oreshkin et al., ICLR 2020):
// doubly residual stacks of fully connected blocks. This is the generic
// (identity-basis) variant, the configuration that won on M4.
type nbeats struct {
	cfg     Config
	rng     *rand.Rand
	blocks  []*nbeatsBlock
	trained bool
	updates int
}

func init() {
	Register(Registration{
		Name:        "NBeats",
		New:         func(cfg Config) Model { return newNBeats(cfg) },
		Deep:        true,
		Incremental: true,
	})
}

func newNBeats(cfg Config) *nbeats {
	rng := rand.New(rand.NewSource(cfg.Seed))
	hidden := cfg.HiddenSize * 2 // N-BEATS favours wider layers
	if hidden < 8 {
		hidden = 64
	}
	const numBlocks = 4
	const fcPerBlock = 3
	m := &nbeats{cfg: cfg, rng: rng}
	for b := 0; b < numBlocks; b++ {
		blk := &nbeatsBlock{
			backcast: nn.NewLinear(rng, hidden, cfg.InputLen),
			forecast: nn.NewLinear(rng, hidden, cfg.Horizon),
		}
		in := cfg.InputLen
		for f := 0; f < fcPerBlock; f++ {
			blk.fc = append(blk.fc, nn.NewLinear(rng, in, hidden))
			in = hidden
		}
		m.blocks = append(m.blocks, blk)
	}
	return m
}

func (m *nbeats) Name() string { return "NBeats" }

func (m *nbeats) params() []*nn.Tensor {
	var ps []*nn.Tensor
	for _, b := range m.blocks {
		for _, l := range b.fc {
			ps = append(ps, l.Params()...)
		}
		ps = append(ps, b.backcast.Params()...)
		ps = append(ps, b.forecast.Params()...)
	}
	return ps
}

func (m *nbeats) forward(x *nn.Tensor, train bool) *nn.Tensor {
	residual := x
	var total *nn.Tensor
	for _, blk := range m.blocks {
		h := residual
		for _, l := range blk.fc {
			h = l.ForwardAct(h, nn.ActReLU)
		}
		back := blk.backcast.Forward(h)
		fore := blk.forecast.Forward(h)
		residual = nn.Sub(residual, back)
		if total == nil {
			total = fore
		} else {
			total = nn.Add(total, fore)
		}
	}
	return total
}

func (m *nbeats) Fit(train, val []float64) error {
	return m.FitContext(context.Background(), train, val)
}

// FitContext is Fit with cancellation honoured at epoch boundaries.
func (m *nbeats) FitContext(ctx context.Context, train, val []float64) error {
	if err := trainNeural(ctx, m, m.cfg, m.rng, train, val); err != nil {
		return err
	}
	m.trained = true
	return nil
}

// Update warm-starts a short training continuation on the newest windows;
// see IncrementalFitter.
func (m *nbeats) Update(ctx context.Context, train, val []float64) error {
	if !m.trained {
		return m.FitContext(ctx, train, val)
	}
	m.updates++
	m.rng = updateRNG(m.cfg.Seed, m.updates)
	return trainNeural(ctx, m, updateConfig(m.cfg), m.rng, train, val)
}

// StateSnapshot captures the weights for session checkpointing.
func (m *nbeats) StateSnapshot() ModelState {
	return neuralSnapshot("NBeats", m.updates, m.trained, m.params())
}

// RestoreState loads a checkpointed snapshot back into the model.
func (m *nbeats) RestoreState(st ModelState) error {
	if err := neuralRestore("NBeats", st, m.params()); err != nil {
		return err
	}
	m.updates, m.trained = st.Updates, st.Trained
	return nil
}

func (m *nbeats) Predict(inputs [][]float64) ([][]float64, error) {
	if !m.trained {
		return nil, errors.New("forecast: NBeats predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	return predictNeural(m, m.cfg, inputs), nil
}
