package forecast

// NLMS is a normalised least-mean-squares adaptive linear predictor
// (Chandak et al., "LFZip", DCC 2020 — the predictor behind LFZip's
// prediction+quantisation pipeline). It predicts the next value as a
// learned linear combination of the last Order values and adapts its
// weights online with the normalised LMS rule
//
//	w ← w + μ·e/(δ + ‖h‖²)·h
//
// where h is the history window and e the prediction error. It lives next
// to the forecasting models because it IS one — a one-step-ahead linear
// forecaster — but its update is deliberately allocation-free and
// deterministic so the compress plane can drive it inside a codec kernel:
// when fed the *reconstructed* (decoder-visible) values, encoder and
// decoder replay bit-identical weight trajectories.
type NLMS struct {
	mu    float64
	delta float64

	w    []float64 // weights, oldest-history first
	h    []float64 // ring of the last Order fed values
	pos  int       // next write position in h
	seen int       // values fed so far (caps history participation)
}

// NLMS hyperparameters: LFZip's defaults (order 32 is LFZip's; 8 keeps the
// per-point cost proportionate to the other kernels at equal fidelity).
const (
	nlmsOrder = 8
	nlmsMu    = 0.5
	nlmsDelta = 1e-6
)

// NewNLMS returns a predictor with the package defaults.
func NewNLMS() *NLMS { return NewNLMSWith(nlmsOrder, nlmsMu, nlmsDelta) }

// NewNLMSWith returns a predictor with explicit order, step size, and
// normalisation floor.
func NewNLMSWith(order int, mu, delta float64) *NLMS {
	if order <= 0 {
		order = nlmsOrder
	}
	return &NLMS{
		mu:    mu,
		delta: delta,
		w:     make([]float64, order),
		h:     make([]float64, order),
	}
}

// Order returns the history window length.
func (p *NLMS) Order() int { return len(p.w) }

// predictFrom computes w·h in a fixed order (oldest tap first) so encode
// and decode accumulate identically.
func (p *NLMS) predictFrom() float64 {
	var y float64
	n := len(p.w)
	for i := 0; i < n; i++ {
		y += p.w[i] * p.h[(p.pos+i)%n]
	}
	return y
}

// Predict returns the prediction for the next value.
func (p *NLMS) Predict() float64 {
	if p.seen == 0 {
		return 0
	}
	return p.predictFrom()
}

// Update feeds the next observed (reconstructed) value: the weights adapt
// against the prediction recomputed from the current history — not a cached
// one, so Update is well-defined even when Predict was skipped — and the
// value enters the history ring. Allocation-free.
func (p *NLMS) Update(recon float64) {
	n := len(p.w)
	if p.seen > 0 {
		pred := p.predictFrom()
		var norm float64
		for _, v := range p.h {
			norm += v * v
		}
		g := p.mu * (recon - pred) / (p.delta + norm)
		for i := 0; i < n; i++ {
			p.w[i] += g * p.h[(p.pos+i)%n]
		}
	}
	p.h[p.pos] = recon
	p.pos = (p.pos + 1) % n
	p.seen++
}

// Reset rewinds the predictor to its initial state, keeping its buffers.
func (p *NLMS) Reset() {
	for i := range p.w {
		p.w[i] = 0
		p.h[i] = 0
	}
	p.pos, p.seen = 0, 0
}
