package forecast

import (
	"testing"

	"lossyts/internal/nn"
)

// benchmarkStep times one full optimizer step (forward, backward, clip,
// Adam, arena reset) of the named deep model at the default configuration,
// under the requested kernel mode.
func benchmarkStep(b *testing.B, modelName string, reference bool) {
	nn.UseReferenceKernels(reference)
	defer nn.UseReferenceKernels(false)
	step, err := OneTrainingStep(modelName, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	step() // warm the arena so steady-state allocation is measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

func BenchmarkGRUStep(b *testing.B)          { benchmarkStep(b, "GRU", false) }
func BenchmarkGRUStepReference(b *testing.B) { benchmarkStep(b, "GRU", true) }

func BenchmarkTransformerStep(b *testing.B)          { benchmarkStep(b, "Transformer", false) }
func BenchmarkTransformerStepReference(b *testing.B) { benchmarkStep(b, "Transformer", true) }
