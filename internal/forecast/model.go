// Package forecast implements the paper's seven time series forecasting
// models (§3.4): Arima (with Fourier seasonal terms and AIC order
// selection), Gradient Boosting, DLinear, GRU, Informer, NBeats, and
// Transformer. Deep models are built on the internal/nn autodiff engine and
// trained with Adam (lr 1e-3, weight decay 1e-4) and early stopping with
// patience 3, as the paper specifies.
//
// Models consume and produce values in the scaled domain; the evaluation
// harness owns the standard scaler (paper §3.4) and the raw-vs-scaled
// conversions.
package forecast

import (
	"fmt"
	"sort"
)

// Config holds the hyperparameters shared by all models.
type Config struct {
	// InputLen is the number of past observations per window (paper: 96;
	// 720 for DLinear on Solar).
	InputLen int
	// Horizon is the number of future steps to predict (paper: 24).
	Horizon int
	// SeasonalPeriod is the dominant seasonality in steps, used by Arima's
	// Fourier terms.
	SeasonalPeriod int
	// Seed controls all model randomness (initialisation, dropout,
	// batching); the harness varies it across runs to average out
	// initialisation effects (paper §3.6).
	Seed int64

	// Deep model training settings.
	Epochs          int
	BatchSize       int
	LR              float64
	WeightDecay     float64
	Patience        int
	Dropout         float64
	HiddenSize      int // RNN/MLP width and transformer d_model
	MaxTrainWindows int // cap on training windows (evenly subsampled)

	// UpdateEpochs caps the epochs of an incremental Update pass (the
	// warm-start continuation the online session runs per refresh). Zero
	// selects max(1, Epochs/5) — a short continuation, since the weights
	// already carry the previous fits.
	UpdateEpochs int
}

// DefaultConfig mirrors the paper's settings at a laptop-scale capacity.
func DefaultConfig() Config {
	return Config{
		InputLen:        96,
		Horizon:         24,
		SeasonalPeriod:  96,
		Epochs:          15,
		BatchSize:       32,
		LR:              1e-3,
		WeightDecay:     1e-4,
		Patience:        3,
		Dropout:         0.05,
		HiddenSize:      32,
		MaxTrainWindows: 384,
	}
}

func (c Config) validate() error {
	if c.InputLen <= 0 || c.Horizon <= 0 {
		return fmt.Errorf("forecast: invalid window config input=%d horizon=%d", c.InputLen, c.Horizon)
	}
	return nil
}

// Model is a trained forecaster: Fit consumes the (scaled) training and
// validation portions of the series; Predict maps input windows of length
// InputLen to Horizon-step forecasts (paper Definition 7).
type Model interface {
	Name() string
	Fit(train, val []float64) error
	Predict(inputs [][]float64) ([][]float64, error)
}

// ModelNames lists the seven models in the paper's order.
var ModelNames = []string{"Arima", "GBoost", "DLinear", "GRU", "Informer", "NBeats", "Transformer"}

// PhaseAware is implemented by models whose forecasts depend on the
// absolute seasonal phase of each prediction window (Arima's Fourier
// terms). Harnesses that know window positions call SetWindowPhase with the
// phase of the first window's first input value and the window stride;
// models fall back to estimating the phase from the values otherwise.
type PhaseAware interface {
	SetWindowPhase(startPhase, stride int)
}

// checkInputs validates a Predict batch.
func checkInputs(inputs [][]float64, inputLen int) error {
	if len(inputs) == 0 {
		return fmt.Errorf("forecast: empty prediction batch")
	}
	for i, w := range inputs {
		if len(w) != inputLen {
			return fmt.Errorf("forecast: window %d has %d values, want %d", i, len(w), inputLen)
		}
	}
	return nil
}

// subsampleIndices returns up to max evenly spaced indices in [0, n).
func subsampleIndices(n, max int) []int {
	if max <= 0 || n <= max {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, max)
	for i := range idx {
		idx[i] = i * n / max
	}
	// Deduplicate while preserving order (possible at small n).
	sort.Ints(idx)
	out := idx[:0]
	prev := -1
	for _, v := range idx {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}
