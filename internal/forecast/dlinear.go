package forecast

import (
	"context"
	"errors"
	"math/rand"

	"lossyts/internal/nn"
)

// dlinear is the DLinear model (Zeng et al., AAAI 2023): the input window
// is decomposed into a moving-average trend and a seasonal remainder, and
// an independent linear layer maps each component to the forecast horizon.
// Despite its simplicity it is competitive with transformers on long-term
// forecasting, one of the paper's motivating observations.
type dlinear struct {
	cfg     Config
	rng     *rand.Rand
	kernel  int
	trend   *nn.Linear
	season  *nn.Linear
	trained bool
}

func init() {
	Register(Registration{
		Name: "DLinear",
		New:  func(cfg Config) Model { return newDLinear(cfg) },
		Deep: true,
	})
}

func newDLinear(cfg Config) *dlinear {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// DLinear has two linear layers and trains in microseconds per step, so
	// it gets proportionally more epochs than the expensive deep models to
	// converge at the paper's shared learning rate.
	if cfg.Epochs > 0 {
		cfg.Epochs *= 10
	}
	if cfg.Patience > 0 {
		cfg.Patience *= 3
	}
	return &dlinear{
		cfg:    cfg,
		rng:    rng,
		kernel: 25, // the decomposition kernel from the DLinear paper
		trend:  nn.NewLinear(rng, cfg.InputLen, cfg.Horizon),
		season: nn.NewLinear(rng, cfg.InputLen, cfg.Horizon),
	}
}

func (m *dlinear) Name() string { return "DLinear" }

func (m *dlinear) params() []*nn.Tensor {
	return append(m.trend.Params(), m.season.Params()...)
}

func (m *dlinear) forward(x *nn.Tensor, train bool) *nn.Tensor {
	trend := nn.MovingAvg1D(x, m.kernel)
	season := nn.Sub(x, trend)
	return nn.LinearPairSum(trend, m.trend.W, m.trend.B, season, m.season.W, m.season.B)
}

func (m *dlinear) Fit(train, val []float64) error {
	return m.FitContext(context.Background(), train, val)
}

// FitContext is Fit with cancellation honoured at epoch boundaries.
func (m *dlinear) FitContext(ctx context.Context, train, val []float64) error {
	if err := trainNeural(ctx, m, m.cfg, m.rng, train, val); err != nil {
		return err
	}
	m.trained = true
	return nil
}

func (m *dlinear) Predict(inputs [][]float64) ([][]float64, error) {
	if !m.trained {
		return nil, errors.New("forecast: DLinear predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	return predictNeural(m, m.cfg, inputs), nil
}
