package forecast

import (
	"context"
	"errors"
	"math/rand"

	"lossyts/internal/nn"
)

// dlinear is the DLinear model (Zeng et al., AAAI 2023): the input window
// is decomposed into a moving-average trend and a seasonal remainder, and
// an independent linear layer maps each component to the forecast horizon.
// Despite its simplicity it is competitive with transformers on long-term
// forecasting, one of the paper's motivating observations.
type dlinear struct {
	cfg     Config
	rng     *rand.Rand
	kernel  int
	trend   *nn.Linear
	season  *nn.Linear
	trained bool
	updates int
}

func init() {
	Register(Registration{
		Name:        "DLinear",
		New:         func(cfg Config) Model { return newDLinear(cfg) },
		Deep:        true,
		Incremental: true,
	})
}

func newDLinear(cfg Config) *dlinear {
	rng := rand.New(rand.NewSource(cfg.Seed))
	// DLinear has two linear layers and trains in microseconds per step, so
	// it gets proportionally more epochs than the expensive deep models to
	// converge at the paper's shared learning rate.
	if cfg.Epochs > 0 {
		cfg.Epochs *= 10
	}
	if cfg.Patience > 0 {
		cfg.Patience *= 3
	}
	return &dlinear{
		cfg:    cfg,
		rng:    rng,
		kernel: 25, // the decomposition kernel from the DLinear paper
		trend:  nn.NewLinear(rng, cfg.InputLen, cfg.Horizon),
		season: nn.NewLinear(rng, cfg.InputLen, cfg.Horizon),
	}
}

func (m *dlinear) Name() string { return "DLinear" }

func (m *dlinear) params() []*nn.Tensor {
	return append(m.trend.Params(), m.season.Params()...)
}

func (m *dlinear) forward(x *nn.Tensor, train bool) *nn.Tensor {
	trend := nn.MovingAvg1D(x, m.kernel)
	season := nn.Sub(x, trend)
	return nn.LinearPairSum(trend, m.trend.W, m.trend.B, season, m.season.W, m.season.B)
}

func (m *dlinear) Fit(train, val []float64) error {
	return m.FitContext(context.Background(), train, val)
}

// FitContext is Fit with cancellation honoured at epoch boundaries.
func (m *dlinear) FitContext(ctx context.Context, train, val []float64) error {
	if err := trainNeural(ctx, m, m.cfg, m.rng, train, val); err != nil {
		return err
	}
	m.trained = true
	return nil
}

// Update warm-starts a short training continuation on the newest windows;
// see IncrementalFitter.
func (m *dlinear) Update(ctx context.Context, train, val []float64) error {
	if !m.trained {
		return m.FitContext(ctx, train, val)
	}
	m.updates++
	m.rng = updateRNG(m.cfg.Seed, m.updates)
	return trainNeural(ctx, m, updateConfig(m.cfg), m.rng, train, val)
}

// StateSnapshot captures the weights for session checkpointing.
func (m *dlinear) StateSnapshot() ModelState {
	return neuralSnapshot("DLinear", m.updates, m.trained, m.params())
}

// RestoreState loads a checkpointed snapshot back into the model.
func (m *dlinear) RestoreState(st ModelState) error {
	if err := neuralRestore("DLinear", st, m.params()); err != nil {
		return err
	}
	m.updates, m.trained = st.Updates, st.Trained
	return nil
}

func (m *dlinear) Predict(inputs [][]float64) ([][]float64, error) {
	if !m.trained {
		return nil, errors.New("forecast: DLinear predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	return predictNeural(m, m.cfg, inputs), nil
}
