package forecast

import (
	"context"
	"errors"
	"fmt"
	"math"

	"lossyts/internal/features"
)

// arima is the paper's Arima model (§3.4): seasonality is captured by
// Fourier terms (a smooth periodic profile fitted by least squares on K
// harmonics), the deseasonalised series is differenced when a KPSS test
// indicates non-stationarity, and an ARMA(p, q) is fitted by the
// Hannan-Rissanen two-stage regression with the order chosen by AIC — the
// selection criterion the paper uses [19].
type arima struct {
	cfg Config

	profile []float64 // Fourier seasonal profile, length = period
	d       int       // differencing order (0 or 1)
	p, q    int
	c       float64   // ARMA intercept
	phi     []float64 // AR coefficients
	theta   []float64 // MA coefficients
	trained bool

	// Known window phases (from timestamps, as the paper's Fourier
	// exogenous terms are) — see SetWindowPhase. When unset, each window's
	// phase is estimated by aligning it against the profile.
	phaseKnown  bool
	startPhase  int
	phaseStride int
}

// SetWindowPhase tells the model the seasonal phase of the first prediction
// window's first input value and the stride (in steps) between consecutive
// windows, so the Fourier terms are indexed by real time rather than
// estimated from possibly-distorted values — matching the paper's use of
// time-indexed Fourier exogenous variables.
func (m *arima) SetWindowPhase(startPhase, stride int) {
	m.phaseKnown = true
	m.startPhase = startPhase
	m.phaseStride = stride
}

func init() {
	Register(Registration{
		Name:        "Arima",
		New:         func(cfg Config) Model { return newArima(cfg) },
		Incremental: true,
	})
}

func newArima(cfg Config) *arima { return &arima{cfg: cfg} }

func (m *arima) Name() string { return "Arima" }

// Fit estimates the seasonal profile and ARMA parameters on the training
// series (validation data is unused: order selection is by AIC).
func (m *arima) Fit(train, _ []float64) error {
	period := m.cfg.SeasonalPeriod
	if period < 2 {
		period = 2
	}
	if len(train) < 4*period || len(train) < 3*m.cfg.InputLen {
		return fmt.Errorf("forecast: Arima needs at least %d training points, got %d", 4*period, len(train))
	}
	m.d = 0 // a refit must re-decide differencing from scratch
	m.profile = fourierProfile(train, period, 4)
	z := make([]float64, len(train))
	for i, v := range train {
		z[i] = v - m.profile[i%period]
	}
	// KPSS decides differencing, as in auto.arima.
	if features.KPSS(z) > 0.463 {
		m.d = 1
		z = features.Diff(z, 1)
	}
	bestAIC := math.Inf(1)
	found := false
	for p := 0; p <= 3; p++ {
		for q := 0; q <= 3; q++ {
			if p == 0 && q == 0 {
				continue
			}
			c, phi, theta, sigma2, ok := hannanRissanen(z, p, q)
			if !ok || sigma2 <= 0 {
				continue
			}
			aic := float64(len(z))*math.Log(sigma2) + 2*float64(p+q+1)
			if aic < bestAIC {
				bestAIC = aic
				m.p, m.q, m.c, m.phi, m.theta = p, q, c, phi, theta
				found = true
			}
		}
	}
	if !found {
		// Fall back to a pure mean model.
		m.p, m.q, m.phi, m.theta = 0, 0, nil, nil
		m.c = mean(z)
	}
	m.trained = true
	return nil
}

// Update refits from scratch on the newest window — Arima's order search is
// deterministic and cheap, so full retraining IS its incremental path (the
// "existing retrain path" the IncrementalFitter contract allows).
func (m *arima) Update(ctx context.Context, train, val []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return m.Fit(train, val)
}

// Predict forecasts each window: the window's seasonal phase is aligned
// against the fitted profile, the ARMA recursion reconstructs the residual
// state, and the forecast re-adds the seasonal profile.
func (m *arima) Predict(inputs [][]float64) ([][]float64, error) {
	if !m.trained {
		return nil, errors.New("forecast: Arima predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	out := make([][]float64, len(inputs))
	for i, w := range inputs {
		phase := -1
		if m.phaseKnown {
			phase = (m.startPhase + i*m.phaseStride) % len(m.profile)
		}
		out[i] = m.forecastWindow(w, phase)
	}
	return out, nil
}

func (m *arima) forecastWindow(w []float64, phase int) []float64 {
	period := len(m.profile)
	if phase < 0 {
		phase = bestPhase(w, m.profile)
	}
	z := make([]float64, len(w))
	for i, v := range w {
		z[i] = v - m.profile[(phase+i)%period]
	}
	var lastLevel float64
	if m.d == 1 {
		lastLevel = z[len(z)-1]
		z = features.Diff(z, 1)
	}
	fz := m.forecastARMA(z, m.cfg.Horizon)
	out := make([]float64, m.cfg.Horizon)
	level := lastLevel
	for k := 0; k < m.cfg.Horizon; k++ {
		v := fz[k]
		if m.d == 1 {
			level += v
			v = level
		}
		out[k] = v + m.profile[(phase+len(w)+k)%period]
	}
	return out
}

// forecastARMA reconstructs the innovation sequence over x (innovations
// before the window are taken as zero) and rolls the recursion h steps
// ahead with future innovations at their zero expectation.
func (m *arima) forecastARMA(x []float64, h int) []float64 {
	n := len(x)
	e := make([]float64, n+h)
	ext := append(append([]float64(nil), x...), make([]float64, h)...)
	pred := func(t int) float64 {
		v := m.c
		for i, f := range m.phi {
			if t-1-i >= 0 {
				v += f * ext[t-1-i]
			}
		}
		for j, th := range m.theta {
			if t-1-j >= 0 {
				v += th * e[t-1-j]
			}
		}
		return v
	}
	for t := 0; t < n; t++ {
		e[t] = ext[t] - pred(t)
	}
	out := make([]float64, h)
	for k := 0; k < h; k++ {
		t := n + k
		ext[t] = pred(t) // e[t] stays 0: future innovations have mean zero
		out[k] = ext[t]
	}
	return out
}

// fourierProfile fits the seasonal profile with k sine/cosine harmonics by
// closed-form least squares (harmonics of a full period are orthogonal).
func fourierProfile(x []float64, period, k int) []float64 {
	if k > period/2 {
		k = period / 2
	}
	n := len(x)
	m0 := mean(x)
	prof := make([]float64, period)
	for h := 1; h <= k; h++ {
		var sa, sb, na, nb float64
		for t := 0; t < n; t++ {
			angle := 2 * math.Pi * float64(h) * float64(t) / float64(period)
			s, c := math.Sin(angle), math.Cos(angle)
			sa += (x[t] - m0) * s
			sb += (x[t] - m0) * c
			na += s * s
			nb += c * c
		}
		var a, b float64
		if na > 0 {
			a = sa / na
		}
		if nb > 0 {
			b = sb / nb
		}
		for ph := 0; ph < period; ph++ {
			angle := 2 * math.Pi * float64(h) * float64(ph) / float64(period)
			prof[ph] += a*math.Sin(angle) + b*math.Cos(angle)
		}
	}
	for ph := range prof {
		prof[ph] += m0
	}
	return prof
}

// bestPhase returns the profile phase that minimises the squared distance
// between the (level-adjusted) window and the seasonal profile.
func bestPhase(w, profile []float64) int {
	period := len(profile)
	wBar := mean(w)
	best, bestSSE := 0, math.Inf(1)
	for phase := 0; phase < period; phase++ {
		var sse, pBar float64
		for i := range w {
			pBar += profile[(phase+i)%period]
		}
		pBar /= float64(len(w))
		for i := range w {
			d := (w[i] - wBar) - (profile[(phase+i)%period] - pBar)
			sse += d * d
		}
		if sse < bestSSE {
			best, bestSSE = phase, sse
		}
	}
	return best
}

// hannanRissanen estimates ARMA(p, q) coefficients by the two-stage
// regression: a long autoregression supplies innovation estimates, then the
// series is regressed on its own lags and the lagged innovations.
func hannanRissanen(x []float64, p, q int) (c float64, phi, theta []float64, sigma2 float64, ok bool) {
	long := p + q + 5
	if long < 10 {
		long = 10
	}
	if len(x) < long+p+q+10 {
		return 0, nil, nil, 0, false
	}
	// Stage 1: long AR by OLS.
	arCoef, arC, fine := olsAR(x, long)
	if !fine {
		return 0, nil, nil, 0, false
	}
	eHat := make([]float64, len(x))
	for t := long; t < len(x); t++ {
		pred := arC
		for i, f := range arCoef {
			pred += f * x[t-1-i]
		}
		eHat[t] = x[t] - pred
	}
	// Stage 2: regress x_t on p lags of x and q lags of ê.
	start := long + q
	if start <= p {
		start = p + q
	}
	rows := len(x) - start
	if rows < p+q+5 {
		return 0, nil, nil, 0, false
	}
	design := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := start + r
		row := make([]float64, p+q)
		for i := 0; i < p; i++ {
			row[i] = x[t-1-i]
		}
		for j := 0; j < q; j++ {
			row[p+j] = eHat[t-1-j]
		}
		design[r] = row
		y[r] = x[t]
	}
	coef, fine := olsSolve(design, y)
	if !fine {
		return 0, nil, nil, 0, false
	}
	phi = coef[:p]
	theta = coef[p : p+q]
	c = coef[p+q]
	// Innovation variance from stage-2 residuals.
	var ss float64
	for r := 0; r < rows; r++ {
		pred := c
		for i := 0; i < p+q; i++ {
			pred += coef[i] * design[r][i]
		}
		d := y[r] - pred
		ss += d * d
	}
	sigma2 = ss / float64(rows)
	// Reject explosive AR fits.
	var arSum float64
	for _, f := range phi {
		arSum += math.Abs(f)
	}
	if arSum > 1.5 {
		return 0, nil, nil, 0, false
	}
	return c, phi, theta, sigma2, true
}

// olsAR fits x_t = c + Σ a_i x_{t-i} by least squares.
func olsAR(x []float64, order int) (coef []float64, c float64, ok bool) {
	rows := len(x) - order
	if rows < order+2 {
		return nil, 0, false
	}
	design := make([][]float64, rows)
	y := make([]float64, rows)
	for r := 0; r < rows; r++ {
		t := order + r
		row := make([]float64, order)
		for i := 0; i < order; i++ {
			row[i] = x[t-1-i]
		}
		design[r] = row
		y[r] = x[t]
	}
	all, ok := olsSolve(design, y)
	if !ok {
		return nil, 0, false
	}
	return all[:order], all[order], true
}

// olsSolve solves least squares with an implicit intercept (appended last)
// via normal equations; ok is false for singular designs.
func olsSolve(design [][]float64, y []float64) ([]float64, bool) {
	n := len(design)
	p := len(design[0]) + 1
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	row := make([]float64, p)
	for r := 0; r < n; r++ {
		copy(row, design[r])
		row[p-1] = 1
		for a := 0; a < p; a++ {
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * y[r]
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	// Ridge-stabilise very slightly to tolerate near-collinear lags.
	for a := 0; a < p; a++ {
		xtx[a][a] += 1e-8
	}
	return gaussSolve(xtx, xty)
}

func gaussSolve(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, true
}

func mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
