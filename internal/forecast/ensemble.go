package forecast

import (
	"errors"
	"fmt"
	"math"

	"lossyts/internal/timeseries"
)

// ensemble implements the research direction the paper proposes in §5:
// combining a model with strong raw-data accuracy (Transformer) with one
// that is resilient to lossy compression (Arima). Member forecasts are
// blended with weights proportional to the inverse of each member's
// validation MSE, so whichever model handles the data better dominates.
type ensemble struct {
	cfg     Config
	members []Model
	weights []float64
	trained bool
}

// NewEnsemble builds an ensemble of the named member models. The paper's
// suggested pairing is {"Transformer", "Arima"}.
func NewEnsemble(cfg Config, memberNames ...string) (Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(memberNames) < 2 {
		return nil, errors.New("forecast: ensemble needs at least two members")
	}
	e := &ensemble{cfg: cfg}
	for _, n := range memberNames {
		m, err := New(n, cfg)
		if err != nil {
			return nil, fmt.Errorf("forecast: ensemble member: %w", err)
		}
		e.members = append(e.members, m)
	}
	return e, nil
}

func (e *ensemble) Name() string { return "Ensemble" }

// SetWindowPhase forwards the phase information to phase-aware members.
func (e *ensemble) SetWindowPhase(startPhase, stride int) {
	for _, m := range e.members {
		if pa, ok := m.(PhaseAware); ok {
			pa.SetWindowPhase(startPhase, stride)
		}
	}
}

func (e *ensemble) Fit(train, val []float64) error {
	for _, m := range e.members {
		if err := m.Fit(train, val); err != nil {
			return fmt.Errorf("forecast: ensemble member %s: %w", m.Name(), err)
		}
	}
	e.weights = make([]float64, len(e.members))
	equal := func() {
		for i := range e.weights {
			e.weights[i] = 1 / float64(len(e.members))
		}
	}
	ws, err := timeseries.MakeWindows(val, e.cfg.InputLen, e.cfg.Horizon, e.cfg.Horizon)
	if err != nil {
		// Validation slice too short: fall back to equal weights.
		equal()
		e.trained = true
		return nil
	}
	var total float64
	for i, m := range e.members {
		preds, err := m.Predict(ws.Inputs())
		if err != nil {
			return err
		}
		var sse float64
		var n int
		for wi, p := range preds {
			for j := range p {
				d := p[j] - ws.Windows[wi].Target[j]
				sse += d * d
				n++
			}
		}
		mse := sse / float64(n)
		if mse <= 0 || math.IsNaN(mse) {
			equal()
			total = 0
			break
		}
		e.weights[i] = 1 / mse
		total += e.weights[i]
	}
	if total > 0 {
		for i := range e.weights {
			e.weights[i] /= total
		}
	}
	e.trained = true
	return nil
}

func (e *ensemble) Predict(inputs [][]float64) ([][]float64, error) {
	if !e.trained {
		return nil, errors.New("forecast: Ensemble predict before fit")
	}
	if err := checkInputs(inputs, e.cfg.InputLen); err != nil {
		return nil, err
	}
	out := make([][]float64, len(inputs))
	for i := range out {
		out[i] = make([]float64, e.cfg.Horizon)
	}
	for mi, m := range e.members {
		preds, err := m.Predict(inputs)
		if err != nil {
			return nil, err
		}
		w := e.weights[mi]
		for i, p := range preds {
			for j, v := range p {
				out[i][j] += w * v
			}
		}
	}
	return out, nil
}

// Weights exposes the fitted blend weights (per member, summing to 1).
func (e *ensemble) Weights() []float64 { return e.weights }
