package forecast

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func incrSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*float64(i)/24) + rng.NormFloat64()*0.1
	}
	return out
}

func incrConfig() Config {
	cfg := DefaultConfig()
	cfg.InputLen = 24
	cfg.Horizon = 6
	cfg.SeasonalPeriod = 24
	cfg.Epochs = 3
	cfg.UpdateEpochs = 1
	cfg.MaxTrainWindows = 48
	cfg.HiddenSize = 8
	cfg.Seed = 1
	return cfg
}

// TestAllModelsImplementIncremental pins the contract: every registered
// built-in constructs an IncrementalFitter and the registry flags it.
func TestAllModelsImplementIncremental(t *testing.T) {
	for _, name := range ModelNames {
		m, err := New(name, incrConfig())
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := m.(IncrementalFitter); !ok {
			t.Errorf("%s does not implement IncrementalFitter", name)
		}
		if !IsIncremental(name) {
			t.Errorf("%s not flagged Incremental in the registry", name)
		}
	}
	if IsIncremental("NoSuchModel") {
		t.Error("unknown model flagged incremental")
	}
	deep := 0
	for _, name := range ModelNames {
		if IsDeep(name) {
			m, _ := New(name, incrConfig())
			if _, ok := m.(Snapshotter); !ok {
				t.Errorf("deep model %s does not implement Snapshotter", name)
			}
			deep++
		}
	}
	if deep != 5 {
		t.Fatalf("expected 5 deep models, saw %d", deep)
	}
}

// TestIncrementalUpdateDeterministicResume is the forecast-layer half of the
// determinism gate: fit → checkpoint → update must equal fit → restore →
// update, weight for weight, because Update reseeds its RNG from the update
// counter rather than trusting ambient generator state.
func TestIncrementalUpdateDeterministicResume(t *testing.T) {
	data := incrSeries(600, 3)
	train, val, next := data[:300], data[300:400], data[200:500]
	for _, name := range []string{"DLinear", "GRU"} {
		cfg := incrConfig()
		a, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		af, bf := a.(IncrementalFitter), b.(IncrementalFitter)
		if err := af.Fit(train, val); err != nil {
			t.Fatal(err)
		}
		// Checkpoint a's fitted state through JSON into the twin.
		raw, err := json.Marshal(a.(Snapshotter).StateSnapshot())
		if err != nil {
			t.Fatal(err)
		}
		var st ModelState
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if err := b.(Snapshotter).RestoreState(st); err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if err := af.Update(ctx, next, val); err != nil {
			t.Fatal(err)
		}
		if err := bf.Update(ctx, next, val); err != nil {
			t.Fatal(err)
		}
		sa := a.(Snapshotter).StateSnapshot()
		sb := b.(Snapshotter).StateSnapshot()
		if sa.Updates != sb.Updates || sa.Trained != sb.Trained {
			t.Fatalf("%s: meta diverged: %+v vs %+v", name, sa.Updates, sb.Updates)
		}
		for i := range sa.Params {
			for j := range sa.Params[i] {
				if sa.Params[i][j] != sb.Params[i][j] {
					t.Fatalf("%s: tensor %d[%d] diverged after resumed update", name, i, j)
				}
			}
		}
		// Predictions must agree too.
		in := [][]float64{data[100 : 100+cfg.InputLen]}
		pa, err := af.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := bf.Predict(in)
		if err != nil {
			t.Fatal(err)
		}
		for j := range pa[0] {
			if pa[0][j] != pb[0][j] {
				t.Fatalf("%s: prediction diverged at %d", name, j)
			}
		}
	}
}

// TestUpdateOnUnfittedFallsBackToFit: the warm-start contract degrades to a
// plain Fit when there is nothing to continue from.
func TestUpdateOnUnfittedFallsBackToFit(t *testing.T) {
	data := incrSeries(500, 9)
	m, err := New("DLinear", incrConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := m.(IncrementalFitter)
	if err := f.Update(context.Background(), data[:300], data[300:400]); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Predict([][]float64{data[:24]}); err != nil {
		t.Fatalf("predict after Update-as-fit: %v", err)
	}
}

// TestArimaUpdateRefits: the retrain-path models stay deterministic across
// Update and reset differencing state on refit.
func TestArimaUpdateRefits(t *testing.T) {
	data := incrSeries(600, 5)
	cfg := incrConfig()
	a, err := New("Arima", cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := a.(IncrementalFitter)
	if err := f.Fit(data[:400], nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(context.Background(), data[100:500], nil); err != nil {
		t.Fatal(err)
	}
	// A fresh model fitted on the same final window must predict identically
	// — the property the session's refit-on-resume path relies on.
	b, err := New("Arima", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(data[100:500], nil); err != nil {
		t.Fatal(err)
	}
	in := [][]float64{data[476:500]}
	pa, err := f.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Predict(in)
	if err != nil {
		t.Fatal(err)
	}
	for j := range pa[0] {
		if pa[0][j] != pb[0][j] {
			t.Fatalf("updated vs fresh-fit Arima diverged at %d: %v vs %v", j, pa[0][j], pb[0][j])
		}
	}
	// Cancellation short-circuits before touching the model.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Update(ctx, data[:400], nil); err == nil {
		t.Fatal("cancelled Update succeeded")
	}
}

// TestNeuralRestoreRejectsMismatch covers the checkpoint validation paths.
func TestNeuralRestoreRejectsMismatch(t *testing.T) {
	m, err := New("DLinear", incrConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := m.(Snapshotter)
	st := s.StateSnapshot()
	wrongName := st
	wrongName.Name = "GRU"
	if err := s.RestoreState(wrongName); err == nil {
		t.Error("wrong model name accepted")
	}
	wrongCount := st
	wrongCount.Params = st.Params[:1]
	if err := s.RestoreState(wrongCount); err == nil {
		t.Error("wrong tensor count accepted")
	}
	wrongShape := st
	wrongShape.Params = append([][]float64(nil), st.Params...)
	wrongShape.Params[0] = wrongShape.Params[0][:1]
	if err := s.RestoreState(wrongShape); err == nil {
		t.Error("wrong tensor shape accepted")
	}
}
