package forecast

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Registration declares a forecasting model to the package registry. The
// paper's seven models self-register from their own files; external
// packages register the same way and their models immediately work
// everywhere a model name is accepted — New, the evaluation grid, and the
// lossyts API — without touching any dispatch site.
type Registration struct {
	// Name is the registry key, e.g. "DLinear".
	Name string
	// New constructs a fresh, unfitted model from a validated Config.
	New func(cfg Config) Model
	// Deep marks deep neural models, which the paper averages over more
	// random seeds than the shallow ones (10 vs 5, §3.6).
	Deep bool
	// Incremental marks models whose constructor returns an
	// IncrementalFitter — a model the online session can warm-start
	// Update instead of refitting from scratch.
	Incremental bool
}

// UnknownModelError is returned when a model name has no registration.
type UnknownModelError struct {
	Name string
}

func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("forecast: unknown model %q (registered: %v)", e.Name, Registered())
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Registration{}
)

// Register adds a model to the registry. It panics on a duplicate name or
// a nil constructor — registration happens in init functions, where a loud
// failure at process start beats a silent misroute later.
func Register(r Registration) {
	if r.Name == "" {
		panic("forecast: Register with empty model name")
	}
	if r.New == nil {
		panic(fmt.Sprintf("forecast: Register(%s) needs a constructor", r.Name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[r.Name]; dup {
		panic(fmt.Sprintf("forecast: model %q registered twice", r.Name))
	}
	registry[r.Name] = r
}

// Registered lists every registered model name in sorted order. The
// paper's evaluation order is the fixed ModelNames slice.
func Registered() []string {
	registryMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	registryMu.RUnlock()
	sort.Strings(out)
	return out
}

// New returns a fresh, unfitted model by name, consulting the registry so
// externally registered models resolve exactly like the built-ins.
// Unknown names yield an *UnknownModelError.
func New(name string, cfg Config) (Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	registryMu.RLock()
	r, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, &UnknownModelError{Name: name}
	}
	return r.New(cfg), nil
}

// IsDeep reports whether the named model is a deep neural network; the
// paper averages those over more random seeds (10 vs 5, §3.6). Unknown
// names count as shallow.
func IsDeep(name string) bool {
	registryMu.RLock()
	r := registry[name]
	registryMu.RUnlock()
	return r.Deep
}

// IsIncremental reports whether the named model declares the
// IncrementalFitter contract. Unknown names count as non-incremental; the
// session falls back to periodic refits for those.
func IsIncremental(name string) bool {
	registryMu.RLock()
	r := registry[name]
	registryMu.RUnlock()
	return r.Incremental
}

// ContextFitter is implemented by models whose training loop honours
// cancellation; the deep models check the context at epoch boundaries.
type ContextFitter interface {
	FitContext(ctx context.Context, train, val []float64) error
}

// FitContext trains m under ctx: models implementing ContextFitter stop
// promptly (returning ctx.Err()) when the context is cancelled; other
// models fall back to a plain Fit after an upfront cancellation check.
func FitContext(ctx context.Context, m Model, train, val []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cf, ok := m.(ContextFitter); ok {
		return cf.FitContext(ctx, train, val)
	}
	return m.Fit(train, val)
}
