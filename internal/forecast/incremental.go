package forecast

import (
	"context"
	"fmt"
	"math/rand"

	"lossyts/internal/nn"
)

// IncrementalFitter is the online-session model contract (ISSUE 9): a model
// that, after an initial Fit, can absorb the newest data with a warm-start
// Update instead of retraining from scratch — the LFZip-style shape a
// streaming lossy pipeline needs. The deep models implement it by continuing
// trainNeural for a few epochs from the current weights; Arima and GBoost
// implement it through their (cheap, deterministic) retrain path.
type IncrementalFitter interface {
	Model
	// Update continues training on the newest (scaled) train/val windows.
	// On an unfitted model it behaves like Fit.
	Update(ctx context.Context, train, val []float64) error
}

// ModelState is a model's serialisable weight snapshot — what the session
// checkpoints so a killed monitor resumes with the exact parameters (JSON
// round-trips float64 bit-exactly).
type ModelState struct {
	Name    string      `json:"name"`
	Updates int         `json:"updates"`
	Trained bool        `json:"trained"`
	Params  [][]float64 `json:"params"`
}

// Snapshotter is implemented by models whose full fitted state lives in
// their parameter tensors (the five deep models). Models without it (Arima,
// GBoost) are checkpointed by their training window instead and refit on
// resume — deterministic either way.
type Snapshotter interface {
	StateSnapshot() ModelState
	RestoreState(ModelState) error
}

// updateRNG derives the generator for the k-th incremental update from the
// model seed alone. Every Update reseeds before training, so a model
// restored from a checkpoint replays the exact shuffle/dropout stream of the
// uninterrupted run without ever serialising generator state.
func updateRNG(seed int64, update int) *rand.Rand {
	return rand.New(rand.NewSource(seed + int64(update)*6364136223846793005))
}

// updateConfig derives the short-continuation training config an Update
// pass uses: UpdateEpochs epochs (default Epochs/5, at least 1) with early
// stopping disabled — the pass is already a bounded refresh.
func updateConfig(cfg Config) Config {
	e := cfg.UpdateEpochs
	if e <= 0 {
		e = cfg.Epochs / 5
		if e < 1 {
			e = 1
		}
	}
	cfg.Epochs = e
	return cfg
}

// neuralSnapshot builds the ModelState for a deep model.
func neuralSnapshot(name string, updates int, trained bool, params []*nn.Tensor) ModelState {
	return ModelState{Name: name, Updates: updates, Trained: trained, Params: snapshot(params)}
}

// neuralRestore validates st against the model's parameter shapes and copies
// the weights in.
func neuralRestore(name string, st ModelState, params []*nn.Tensor) error {
	if st.Name != name {
		return fmt.Errorf("forecast: restoring %q state into %s", st.Name, name)
	}
	if len(st.Params) != len(params) {
		return fmt.Errorf("forecast: %s state has %d tensors, model has %d", name, len(st.Params), len(params))
	}
	for i, p := range params {
		if len(st.Params[i]) != len(p.Data) {
			return fmt.Errorf("forecast: %s state tensor %d has %d values, model has %d", name, i, len(st.Params[i]), len(p.Data))
		}
	}
	restore(params, st.Params)
	return nil
}
