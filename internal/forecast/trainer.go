package forecast

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"lossyts/internal/nn"
	"lossyts/internal/timeseries"
)

// network is the contract deep models implement for the shared trainer:
// a forward pass from an input batch [B, InputLen] to forecasts [B, Horizon].
type network interface {
	params() []*nn.Tensor
	forward(x *nn.Tensor, train bool) *nn.Tensor
}

// trainNeural runs the paper's training recipe: Adam (lr 1e-3, weight decay
// 1e-4), MSE loss, early stopping on the validation subset with patience 3.
// Cancellation is checked once per epoch — the granularity at which a
// cancelled grid run stops paying for training without adding a branch to
// the per-batch hot loop — and the context's error is returned verbatim.
func trainNeural(ctx context.Context, net network, cfg Config, rng *rand.Rand, train, val []float64) error {
	tw, err := timeseries.MakeWindows(train, cfg.InputLen, cfg.Horizon, 1)
	if err != nil {
		return fmt.Errorf("forecast: training windows: %w", err)
	}
	trainIdx := subsampleIndices(tw.Len(), cfg.MaxTrainWindows)

	// Validation windows; when the validation slice is too short, hold out
	// the tail of the training windows instead.
	var valIn, valTgt [][]float64
	if vw, err := timeseries.MakeWindows(val, cfg.InputLen, cfg.Horizon, 1); err == nil {
		vi := subsampleIndices(vw.Len(), 128)
		for _, i := range vi {
			valIn = append(valIn, vw.Windows[i].Input)
			valTgt = append(valTgt, vw.Windows[i].Target)
		}
	} else if len(trainIdx) > 8 {
		cut := len(trainIdx) - len(trainIdx)/5
		for _, i := range trainIdx[cut:] {
			valIn = append(valIn, tw.Windows[i].Input)
			valTgt = append(valTgt, tw.Windows[i].Target)
		}
		trainIdx = trainIdx[:cut]
	}

	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	params := net.params()
	// All intermediate tensors of a training step come from one arena:
	// tagging the input batch pools the whole forward/backward graph, the
	// arena recycles its buffers locally after each optimizer step, and
	// Release hands the memory to the global pools when the fit ends (so
	// concurrent (model, seed) units share a steady-state working set).
	arena := nn.NewArena()
	defer arena.Release()
	bestVal := math.Inf(1)
	var best [][]float64
	stall := 0
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 10
	}
	bs := cfg.BatchSize
	if bs <= 0 {
		bs = 32
	}
	order := append([]int(nil), trainIdx...)
	for epoch := 0; epoch < epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < len(order); start += bs {
			end := start + bs
			if end > len(order) {
				end = len(order)
			}
			batch := order[start:end]
			x := nn.Zeros(len(batch), cfg.InputLen).InArena(arena)
			y := nn.Zeros(len(batch), cfg.Horizon)
			for bi, wi := range batch {
				copy(x.Data[bi*cfg.InputLen:(bi+1)*cfg.InputLen], tw.Windows[wi].Input)
				copy(y.Data[bi*cfg.Horizon:(bi+1)*cfg.Horizon], tw.Windows[wi].Target)
			}
			nn.ZeroGrad(params)
			loss := nn.MSE(net.forward(x, true), y)
			loss.Backward()
			nn.ClipGradNorm(params, 5)
			opt.Step(params)
			arena.Reset()
		}
		if len(valIn) == 0 {
			continue
		}
		v := evalMSE(net, cfg, valIn, valTgt)
		if v < bestVal-1e-9 {
			bestVal = v
			best = snapshot(params)
			stall = 0
		} else {
			stall++
			if cfg.Patience > 0 && stall >= cfg.Patience {
				break
			}
		}
	}
	if best != nil {
		restore(params, best)
	}
	return nil
}

func evalMSE(net network, cfg Config, inputs, targets [][]float64) float64 {
	preds := predictNeural(net, cfg, inputs)
	var s float64
	var n int
	for i := range preds {
		for j := range preds[i] {
			d := preds[i][j] - targets[i][j]
			s += d * d
			n++
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return s / float64(n)
}

// predictNeural evaluates the network in inference mode.
func predictNeural(net network, cfg Config, inputs [][]float64) [][]float64 {
	out := make([][]float64, 0, len(inputs))
	arena := nn.NewArena()
	defer arena.Release()
	const bs = 64
	for start := 0; start < len(inputs); start += bs {
		end := start + bs
		if end > len(inputs) {
			end = len(inputs)
		}
		batch := inputs[start:end]
		x := nn.Zeros(len(batch), cfg.InputLen).InArena(arena)
		for bi, w := range batch {
			copy(x.Data[bi*cfg.InputLen:(bi+1)*cfg.InputLen], w)
		}
		pred := net.forward(x, false)
		for bi := range batch {
			row := make([]float64, cfg.Horizon)
			copy(row, pred.Data[bi*cfg.Horizon:(bi+1)*cfg.Horizon])
			out = append(out, row)
		}
		// Prediction rows were copied out above, so the graph's arena
		// buffers can be recycled before the next batch.
		arena.Reset()
	}
	return out
}

func snapshot(params []*nn.Tensor) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.Data...)
	}
	return out
}

func restore(params []*nn.Tensor, snap [][]float64) {
	for i, p := range params {
		copy(p.Data, snap[i])
	}
}
