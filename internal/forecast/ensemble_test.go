package forecast

import (
	"math"
	"testing"

	"lossyts/internal/timeseries"
)

func TestEnsembleBasics(t *testing.T) {
	cfg := testConfig(21)
	if _, err := NewEnsemble(cfg, "Arima"); err == nil {
		t.Error("single-member ensemble should error")
	}
	if _, err := NewEnsemble(cfg, "Arima", "NoSuchModel"); err == nil {
		t.Error("unknown member should error")
	}
	bad := cfg
	bad.InputLen = 0
	if _, err := NewEnsemble(bad, "Arima", "GBoost"); err == nil {
		t.Error("invalid config should error")
	}

	e, err := NewEnsemble(cfg, "Arima", "GBoost")
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "Ensemble" {
		t.Fatalf("name = %q", e.Name())
	}
	if _, err := e.Predict([][]float64{make([]float64, cfg.InputLen)}); err == nil {
		t.Error("predict before fit should error")
	}
}

func TestEnsembleForecasts(t *testing.T) {
	cfg := testConfig(22)
	train := sineData(1200, 31, 0.05)
	val := sineData(240, 32, 0.05)
	test := sineData(360, 33, 0.05)

	e, err := NewEnsemble(cfg, "Arima", "GBoost")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	// Weights sum to 1.
	w := e.(*ensemble).Weights()
	var sum float64
	for _, v := range w {
		if v < 0 {
			t.Fatalf("negative weight %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}

	ws, err := timeseries.MakeWindows(test, cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := e.Predict(ws.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	naive := naiveRMSE(t, cfg, test)
	var ss float64
	var n int
	for i, p := range preds {
		for j := range p {
			d := p[j] - ws.Windows[i].Target[j]
			ss += d * d
			n++
		}
	}
	if rmse := math.Sqrt(ss / float64(n)); rmse > naive {
		t.Errorf("ensemble RMSE %.4f worse than naive %.4f", rmse, naive)
	}
}

func TestEnsembleBetweenMembers(t *testing.T) {
	// A weighted average with weights from validation error must be at
	// least as accurate as the worse member on the validation data's
	// distribution, and never degenerate.
	cfg := testConfig(23)
	train := sineData(1200, 41, 0.1)
	val := sineData(240, 42, 0.1)
	test := sineData(360, 43, 0.1)

	score := func(m Model) float64 {
		ws, _ := timeseries.MakeWindows(test, cfg.InputLen, cfg.Horizon, cfg.Horizon)
		preds, err := m.Predict(ws.Inputs())
		if err != nil {
			t.Fatal(err)
		}
		var ss float64
		var n int
		for i, p := range preds {
			for j := range p {
				d := p[j] - ws.Windows[i].Target[j]
				ss += d * d
				n++
			}
		}
		return math.Sqrt(ss / float64(n))
	}

	arima, _ := New("Arima", cfg)
	gb, _ := New("GBoost", cfg)
	if err := arima.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	if err := gb.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEnsemble(cfg, "Arima", "GBoost")
	if err := e.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	worst := math.Max(score(arima), score(gb))
	if got := score(e); got > worst*1.05 {
		t.Errorf("ensemble RMSE %.4f worse than worst member %.4f", got, worst)
	}
}

func TestEnsembleShortValidationFallsBack(t *testing.T) {
	cfg := testConfig(24)
	train := sineData(800, 51, 0.05)
	val := sineData(10, 52, 0.05) // too short for windows -> equal weights
	e, err := NewEnsemble(cfg, "Arima", "GBoost")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	w := e.(*ensemble).Weights()
	if math.Abs(w[0]-0.5) > 1e-9 || math.Abs(w[1]-0.5) > 1e-9 {
		t.Fatalf("expected equal weights, got %v", w)
	}
}
