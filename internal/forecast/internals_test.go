package forecast

import (
	"math"
	"math/rand"
	"testing"

	"lossyts/internal/nn"
	"lossyts/internal/timeseries"
)

func TestProbSparseLazyQueriesGetUniformAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := newProbSparseAttention(rng, 8, 2, 0.5) // tiny factor: few active queries
	x := nn.Randn(rng, 1, 1, 12, 8)
	out := p.forward(x)
	if out.Shape[0] != 1 || out.Shape[1] != 12 || out.Shape[2] != 8 {
		t.Fatalf("shape = %v", out.Shape)
	}
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite attention output")
		}
	}
}

func TestProbSparseSelectsHighMeasureQueries(t *testing.T) {
	// With factor high enough to select all queries, the output must equal
	// full softmax attention (the uniform fallback never fires).
	rng := rand.New(rand.NewSource(72))
	p := newProbSparseAttention(rng, 4, 1, 100)
	x := nn.Randn(rng, 1, 1, 6, 4)
	sparse := p.forward(x)

	full := &nn.MultiHeadAttention{Heads: 1, DModel: 4, Wq: p.wq, Wk: p.wk, Wv: p.wv, Wo: p.wo}
	dense := full.Forward(x, x, x, nil)
	for i := range sparse.Data {
		if math.Abs(sparse.Data[i]-dense.Data[i]) > 1e-9 {
			t.Fatalf("all-active ProbSparse differs from dense attention at %d", i)
		}
	}
}

func TestProbSparseGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := newProbSparseAttention(rng, 4, 1, 5)
	x := nn.Randn(rng, 1, 1, 8, 4).Param()
	loss := nn.Mean(p.forward(x))
	loss.Backward()
	var norm float64
	for _, g := range x.Grad {
		norm += g * g
	}
	if norm == 0 {
		t.Fatal("no gradient reached the input through ProbSparse attention")
	}
	for _, g := range p.wv.W.Grad {
		norm += g * g
	}
	if norm == 0 {
		t.Fatal("no gradient reached the value projection")
	}
}

func TestTransformerOutputShape(t *testing.T) {
	cfg := testConfig(74)
	m := newTransformer(cfg)
	x := nn.Zeros(3, cfg.InputLen)
	out := m.forward(x, false)
	if out.Shape[0] != 3 || out.Shape[1] != cfg.Horizon {
		t.Fatalf("transformer output shape = %v", out.Shape)
	}
}

func TestInformerOutputShape(t *testing.T) {
	cfg := testConfig(75)
	m := newInformer(cfg)
	x := nn.Zeros(2, cfg.InputLen)
	out := m.forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != cfg.Horizon {
		t.Fatalf("informer output shape = %v", out.Shape)
	}
}

func TestInformerDistillingHalvesMemory(t *testing.T) {
	// The distilling stage must halve the encoder sequence length; verify
	// indirectly by checking forward works with odd input lengths.
	cfg := testConfig(76)
	cfg.InputLen = 49
	m := newInformer(cfg)
	out := m.forward(nn.Zeros(1, 49), false)
	if out.Shape[1] != cfg.Horizon {
		t.Fatalf("output shape = %v", out.Shape)
	}
}

func TestGRUForwardShape(t *testing.T) {
	cfg := testConfig(77)
	m := newGRU(cfg)
	out := m.forward(nn.Zeros(4, cfg.InputLen), false)
	if out.Shape[0] != 4 || out.Shape[1] != cfg.Horizon {
		t.Fatalf("gru output shape = %v", out.Shape)
	}
}

func TestNBeatsResidualStacking(t *testing.T) {
	cfg := testConfig(78)
	m := newNBeats(cfg)
	out := m.forward(nn.Zeros(2, cfg.InputLen), false)
	if out.Shape[0] != 2 || out.Shape[1] != cfg.Horizon {
		t.Fatalf("nbeats output shape = %v", out.Shape)
	}
	if len(m.blocks) != 4 {
		t.Fatalf("blocks = %d", len(m.blocks))
	}
}

func TestDLinearDecompositionPath(t *testing.T) {
	cfg := testConfig(79)
	m := newDLinear(cfg)
	// A constant input's seasonal component is zero; the forecast must be
	// driven purely by the trend path.
	x := nn.Full(3, 1, cfg.InputLen)
	out := m.forward(x, false)
	if out.Shape[1] != cfg.Horizon {
		t.Fatalf("dlinear output shape = %v", out.Shape)
	}
}

func TestModelParamCounts(t *testing.T) {
	cfg := testConfig(80)
	for _, name := range []string{"DLinear", "GRU", "NBeats", "Transformer", "Informer"} {
		m, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		net, ok := m.(network)
		if !ok {
			t.Fatalf("%s does not implement network", name)
		}
		params := net.params()
		if len(params) == 0 {
			t.Fatalf("%s has no parameters", name)
		}
		total := 0
		for _, p := range params {
			if !p.RequiresGrad() {
				t.Fatalf("%s has a parameter without gradient", name)
			}
			total += len(p.Data)
		}
		if total < 100 {
			t.Fatalf("%s has only %d weights", name, total)
		}
	}
}

func TestArimaAICPicksParsimoniousModel(t *testing.T) {
	// On an AR(1) process the selected AR order should stay small.
	rng := rand.New(rand.NewSource(81))
	n := 3000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.6*x[i-1] + rng.NormFloat64()
	}
	cfg := testConfig(82)
	m := newArima(cfg)
	if err := m.Fit(x, nil); err != nil {
		t.Fatal(err)
	}
	if m.p > 3 || m.q > 3 {
		t.Fatalf("selected ARMA(%d,%d)", m.p, m.q)
	}
	if m.p == 0 && m.q == 0 {
		t.Fatal("AIC selected the degenerate model on AR(1) data")
	}
}

func TestArimaDifferencingOnRandomWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	n := 3000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = x[i-1] + rng.NormFloat64()
	}
	cfg := testConfig(84)
	m := newArima(cfg)
	if err := m.Fit(x, nil); err != nil {
		t.Fatal(err)
	}
	if m.d != 1 {
		t.Fatalf("random walk should trigger differencing, got d=%d", m.d)
	}
}

func TestArimaPhaseAwareness(t *testing.T) {
	cfg := testConfig(85)
	train := sineData(1200, 91, 0.05)
	val := sineData(240, 92, 0.05)
	m := newArima(cfg)
	if err := m.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	// Build windows whose true phase is known: test data continues the
	// training phase (sineData always starts at phase 0).
	test := sineData(480, 93, 0.05)
	ws, err := timeseries.MakeWindows(test, cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	// Coarsely smoothed inputs distort phase estimation.
	smoothed := make([][]float64, ws.Len())
	for i, w := range ws.Windows {
		sm := append([]float64(nil), w.Input...)
		for s := 0; s < len(sm); s += 12 {
			end := s + 12
			if end > len(sm) {
				end = len(sm)
			}
			v := mean(sm[s:end])
			for j := s; j < end; j++ {
				sm[j] = v
			}
		}
		smoothed[i] = sm
	}
	rmse := func(preds [][]float64) float64 {
		var ss float64
		var n int
		for i, p := range preds {
			for j := range p {
				d := p[j] - ws.Windows[i].Target[j]
				ss += d * d
				n++
			}
		}
		return math.Sqrt(ss / float64(n))
	}
	estimated, err := m.Predict(smoothed)
	if err != nil {
		t.Fatal(err)
	}
	m.SetWindowPhase(0, cfg.Horizon)
	known, err := m.Predict(smoothed)
	if err != nil {
		t.Fatal(err)
	}
	if rmse(known) > rmse(estimated)*1.1 {
		t.Errorf("known phase RMSE %.4f should not be clearly worse than estimated %.4f",
			rmse(known), rmse(estimated))
	}
	// And on clean inputs, known phase must be essentially optimal.
	clean, err := m.Predict(ws.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	if rmse(clean) > 0.5 {
		t.Errorf("phase-aware clean RMSE = %.4f", rmse(clean))
	}
}

func TestEnsembleForwardsPhase(t *testing.T) {
	cfg := testConfig(86)
	e, err := NewEnsemble(cfg, "Arima", "GBoost")
	if err != nil {
		t.Fatal(err)
	}
	pa, ok := e.(PhaseAware)
	if !ok {
		t.Fatal("ensemble should be phase-aware")
	}
	pa.SetWindowPhase(3, 8)
	inner := e.(*ensemble).members[0].(*arima)
	if !inner.phaseKnown || inner.startPhase != 3 || inner.phaseStride != 8 {
		t.Fatal("phase not forwarded to Arima member")
	}
}
