package forecast

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"lossyts/internal/nn"
)

// probSparseAttention is Informer's ProbSparse self-attention (Zhou et al.,
// AAAI 2021): only the top-u queries by the sparsity measurement
// M(q) = max_j(qkᵀ/√d) − mean_j(qkᵀ/√d) attend normally; the remaining
// "lazy" queries output the mean of the values, which for self-attention is
// the uniform-attention result.
type probSparseAttention struct {
	heads          int
	dModel         int
	factor         float64
	wq, wk, wv, wo *nn.Linear
}

func newProbSparseAttention(rng *rand.Rand, dModel, heads int, factor float64) *probSparseAttention {
	return &probSparseAttention{
		heads:  heads,
		dModel: dModel,
		factor: factor,
		wq:     nn.NewLinear(rng, dModel, dModel),
		wk:     nn.NewLinear(rng, dModel, dModel),
		wv:     nn.NewLinear(rng, dModel, dModel),
		wo:     nn.NewLinear(rng, dModel, dModel),
	}
}

func (p *probSparseAttention) params() []*nn.Tensor {
	var ps []*nn.Tensor
	for _, l := range []*nn.Linear{p.wq, p.wk, p.wv, p.wo} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

func (p *probSparseAttention) forward(x *nn.Tensor) *nn.Tensor {
	qh := nn.SplitHeads(p.wq.Forward(x), p.heads) // [BH, T, Dh]
	kh := nn.SplitHeads(p.wk.Forward(x), p.heads)
	vh := nn.SplitHeads(p.wv.Forward(x), p.heads)
	dh := p.dModel / p.heads
	scores := nn.Scale(nn.MatMul(qh, nn.Transpose(kh)), 1/math.Sqrt(float64(dh))) // [BH, T, T]

	bh, t := scores.Shape[0], scores.Shape[1]
	u := int(math.Ceil(p.factor * math.Log(float64(t)+1)))
	if u > t {
		u = t
	}
	// Select the top-u queries per batch-head by the sparsity measurement.
	// The selection itself is treated as a constant (as in Informer, where
	// lazy queries are simply never computed).
	selMask := nn.ZerosLike(scores, bh, t, t) // 1 on rows of active queries
	uniform := nn.ZerosLike(scores, bh, t, t) // 1/T on rows of lazy queries
	measure := make([]float64, t)             // M(q) per query
	order := make([]int, t)                   // query indices sorted by M(q)
	for b := 0; b < bh; b++ {
		base := b * t * t
		for qi := 0; qi < t; qi++ {
			row := scores.Data[base+qi*t : base+(qi+1)*t]
			maxV, sum := row[0], 0.0
			for _, v := range row {
				if v > maxV {
					maxV = v
				}
				sum += v
			}
			measure[qi] = maxV - sum/float64(t)
			order[qi] = qi
		}
		// Partial selection of the u largest measurements.
		for i := 0; i < u; i++ {
			best := i
			for j := i + 1; j < t; j++ {
				if measure[order[j]] > measure[order[best]] {
					best = j
				}
			}
			order[i], order[best] = order[best], order[i]
		}
		active := make(map[int]bool, u)
		for i := 0; i < u; i++ {
			active[order[i]] = true
		}
		for qi := 0; qi < t; qi++ {
			row := base + qi*t
			if active[qi] {
				for j := 0; j < t; j++ {
					selMask.Data[row+j] = 1
				}
			} else {
				for j := 0; j < t; j++ {
					uniform.Data[row+j] = 1 / float64(t)
				}
			}
		}
	}
	attn := nn.Add(nn.Mul(nn.Softmax(scores), selMask), uniform)
	out := nn.MatMul(attn, vh)
	return p.wo.Forward(nn.MergeHeads(out, p.heads))
}

// informerEncLayer is an Informer encoder block: ProbSparse attention plus
// the standard feed-forward sublayer.
type informerEncLayer struct {
	attn *probSparseAttention
	ffn  *feedForward
	ln1  *nn.LayerNormModule
	ln2  *nn.LayerNormModule
}

func newInformerEncLayer(rng *rand.Rand, d, heads, ff int) *informerEncLayer {
	return &informerEncLayer{
		attn: newProbSparseAttention(rng, d, heads, 5),
		ffn:  newFeedForward(rng, d, ff),
		ln1:  nn.NewLayerNorm(d),
		ln2:  nn.NewLayerNorm(d),
	}
}

func (e *informerEncLayer) forward(x *nn.Tensor, dropout float64, rng *rand.Rand, train bool) *nn.Tensor {
	a := nn.Dropout(e.attn.forward(x), dropout, rng, train)
	x = e.ln1.Forward(nn.Add(x, a))
	f := nn.Dropout(e.ffn.forward(x), dropout, rng, train)
	return e.ln2.Forward(nn.Add(x, f))
}

func (e *informerEncLayer) params() []*nn.Tensor {
	ps := e.attn.params()
	ps = append(ps, e.ffn.params()...)
	ps = append(ps, e.ln1.Params()...)
	return append(ps, e.ln2.Params()...)
}

// informer is the Informer forecaster (§3.4, [65]): ProbSparse encoder
// self-attention, convolutional self-attention distilling between encoder
// layers (conv + ELU + max-pool halving the sequence), and a generative
// decoder that emits the whole horizon in a single forward pass.
type informer struct {
	cfg      Config
	rng      *rand.Rand
	d        int
	labelLen int
	embed    *nn.Linear
	pe       *nn.PositionalEncoding
	enc1     *informerEncLayer
	enc2     *informerEncLayer
	distill  *nn.Conv1D
	dec      *decoderLayer
	head     *nn.Linear
	mask     *nn.Tensor
	trained  bool
	updates  int
}

func init() {
	Register(Registration{
		Name:        "Informer",
		New:         func(cfg Config) Model { return newInformer(cfg) },
		Deep:        true,
		Incremental: true,
	})
}

func newInformer(cfg Config) *informer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.HiddenSize
	if d < 8 {
		d = 32
	}
	const heads = 4
	return &informer{
		cfg:      cfg,
		rng:      rng,
		d:        d,
		labelLen: cfg.Horizon,
		embed:    nn.NewLinear(rng, 1, d),
		pe:       nn.NewPositionalEncoding(cfg.InputLen+2*cfg.Horizon+8, d),
		enc1:     newInformerEncLayer(rng, d, heads, 2*d),
		enc2:     newInformerEncLayer(rng, d, heads, 2*d),
		distill:  nn.NewConv1D(rng, 3, d, d),
		dec:      newDecoderLayer(rng, d, heads, 2*d),
		head:     nn.NewLinear(rng, d, 1),
		mask:     nn.CausalMask(2 * cfg.Horizon),
	}
}

func (m *informer) Name() string { return "Informer" }

func (m *informer) params() []*nn.Tensor {
	ps := m.embed.Params()
	ps = append(ps, m.enc1.params()...)
	ps = append(ps, m.enc2.params()...)
	ps = append(ps, m.distill.Params()...)
	ps = append(ps, m.dec.params()...)
	return append(ps, m.head.Params()...)
}

func (m *informer) embedSeq(x *nn.Tensor) *nn.Tensor {
	b, t := x.Shape[0], x.Shape[1]
	tokens := nn.Reshape(x, b, t, 1)
	return m.pe.Add(m.embed.Forward(tokens))
}

func (m *informer) forward(x *nn.Tensor, train bool) *nn.Tensor {
	dropout := m.cfg.Dropout
	memory := m.embedSeq(x)
	memory = m.enc1.forward(memory, dropout, m.rng, train)
	// Self-attention distilling: conv + ELU + max-pool halves the sequence.
	memory = nn.MaxPool1D(nn.ELU(m.distill.Forward(memory)), 3, 2)
	memory = m.enc2.forward(memory, dropout, m.rng, train)

	decSeq := m.embedSeq(decoderInput(x, m.labelLen, m.cfg.Horizon))
	out := m.dec.forward(decSeq, memory, m.mask, dropout, m.rng, train)
	b := x.Shape[0]
	vals := nn.Reshape(m.head.Forward(out), b, m.labelLen+m.cfg.Horizon)
	return nn.Narrow(vals, 1, m.labelLen, m.cfg.Horizon)
}

func (m *informer) Fit(train, val []float64) error {
	return m.FitContext(context.Background(), train, val)
}

// FitContext is Fit with cancellation honoured at epoch boundaries.
func (m *informer) FitContext(ctx context.Context, train, val []float64) error {
	if err := trainNeural(ctx, m, m.cfg, m.rng, train, val); err != nil {
		return err
	}
	m.trained = true
	return nil
}

// Update warm-starts a short training continuation on the newest windows;
// see IncrementalFitter.
func (m *informer) Update(ctx context.Context, train, val []float64) error {
	if !m.trained {
		return m.FitContext(ctx, train, val)
	}
	m.updates++
	m.rng = updateRNG(m.cfg.Seed, m.updates)
	return trainNeural(ctx, m, updateConfig(m.cfg), m.rng, train, val)
}

// StateSnapshot captures the weights for session checkpointing.
func (m *informer) StateSnapshot() ModelState {
	return neuralSnapshot("Informer", m.updates, m.trained, m.params())
}

// RestoreState loads a checkpointed snapshot back into the model.
func (m *informer) RestoreState(st ModelState) error {
	if err := neuralRestore("Informer", st, m.params()); err != nil {
		return err
	}
	m.updates, m.trained = st.Updates, st.Trained
	return nil
}

func (m *informer) Predict(inputs [][]float64) ([][]float64, error) {
	if !m.trained {
		return nil, errors.New("forecast: Informer predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	return predictNeural(m, m.cfg, inputs), nil
}
