package forecast

import (
	"context"
	"errors"
	"math/rand"

	"lossyts/internal/nn"
)

// feedForward is the position-wise two-layer MLP of a transformer block.
type feedForward struct {
	l1, l2 *nn.Linear
}

func newFeedForward(rng *rand.Rand, d, ff int) *feedForward {
	return &feedForward{l1: nn.NewLinear(rng, d, ff), l2: nn.NewLinear(rng, ff, d)}
}

func (f *feedForward) forward(x *nn.Tensor) *nn.Tensor {
	return f.l2.Forward(f.l1.ForwardAct(x, nn.ActReLU))
}

func (f *feedForward) params() []*nn.Tensor {
	return append(f.l1.Params(), f.l2.Params()...)
}

// encoderLayer is a standard post-norm transformer encoder block.
type encoderLayer struct {
	attn *nn.MultiHeadAttention
	ffn  *feedForward
	ln1  *nn.LayerNormModule
	ln2  *nn.LayerNormModule
}

func newEncoderLayer(rng *rand.Rand, d, heads, ff int) *encoderLayer {
	return &encoderLayer{
		attn: nn.NewMultiHeadAttention(rng, d, heads),
		ffn:  newFeedForward(rng, d, ff),
		ln1:  nn.NewLayerNorm(d),
		ln2:  nn.NewLayerNorm(d),
	}
}

func (e *encoderLayer) forward(x *nn.Tensor, dropout float64, rng *rand.Rand, train bool) *nn.Tensor {
	a := nn.Dropout(e.attn.Forward(x, x, x, nil), dropout, rng, train)
	x = e.ln1.Forward(nn.Add(x, a))
	f := nn.Dropout(e.ffn.forward(x), dropout, rng, train)
	return e.ln2.Forward(nn.Add(x, f))
}

func (e *encoderLayer) params() []*nn.Tensor {
	ps := e.attn.Params()
	ps = append(ps, e.ffn.params()...)
	ps = append(ps, e.ln1.Params()...)
	return append(ps, e.ln2.Params()...)
}

// decoderLayer is a transformer decoder block with masked self-attention
// and cross-attention over the encoder memory.
type decoderLayer struct {
	self  *nn.MultiHeadAttention
	cross *nn.MultiHeadAttention
	ffn   *feedForward
	ln1   *nn.LayerNormModule
	ln2   *nn.LayerNormModule
	ln3   *nn.LayerNormModule
}

func newDecoderLayer(rng *rand.Rand, d, heads, ff int) *decoderLayer {
	return &decoderLayer{
		self:  nn.NewMultiHeadAttention(rng, d, heads),
		cross: nn.NewMultiHeadAttention(rng, d, heads),
		ffn:   newFeedForward(rng, d, ff),
		ln1:   nn.NewLayerNorm(d),
		ln2:   nn.NewLayerNorm(d),
		ln3:   nn.NewLayerNorm(d),
	}
}

func (dl *decoderLayer) forward(x, memory *nn.Tensor, mask *nn.Tensor, dropout float64, rng *rand.Rand, train bool) *nn.Tensor {
	a := nn.Dropout(dl.self.Forward(x, x, x, mask), dropout, rng, train)
	x = dl.ln1.Forward(nn.Add(x, a))
	c := nn.Dropout(dl.cross.Forward(x, memory, memory, nil), dropout, rng, train)
	x = dl.ln2.Forward(nn.Add(x, c))
	f := nn.Dropout(dl.ffn.forward(x), dropout, rng, train)
	return dl.ln3.Forward(nn.Add(x, f))
}

func (dl *decoderLayer) params() []*nn.Tensor {
	ps := dl.self.Params()
	ps = append(ps, dl.cross.Params()...)
	ps = append(ps, dl.ffn.params()...)
	ps = append(ps, dl.ln1.Params()...)
	ps = append(ps, dl.ln2.Params()...)
	return append(ps, dl.ln3.Params()...)
}

// transformer is an encoder-decoder transformer forecaster (§3.4, [18]):
// value embedding + sinusoidal positional encoding, multi-head
// self-attention encoder, and a decoder fed the last LabelLen observations
// plus zero placeholders for the horizon, producing the whole forecast in
// one forward pass.
type transformer struct {
	cfg      Config
	rng      *rand.Rand
	d        int
	labelLen int
	embed    *nn.Linear
	pe       *nn.PositionalEncoding
	enc      []*encoderLayer
	dec      *decoderLayer
	head     *nn.Linear
	mask     *nn.Tensor
	trained  bool
	updates  int
}

func init() {
	Register(Registration{
		Name:        "Transformer",
		New:         func(cfg Config) Model { return newTransformer(cfg) },
		Deep:        true,
		Incremental: true,
	})
}

func newTransformer(cfg Config) *transformer {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.HiddenSize
	if d < 8 {
		d = 32
	}
	const heads = 4
	m := &transformer{
		cfg:      cfg,
		rng:      rng,
		d:        d,
		labelLen: cfg.Horizon,
		embed:    nn.NewLinear(rng, 1, d),
		pe:       nn.NewPositionalEncoding(cfg.InputLen+2*cfg.Horizon+8, d),
		dec:      newDecoderLayer(rng, d, heads, 2*d),
		head:     nn.NewLinear(rng, d, 1),
		mask:     nn.CausalMask(2 * cfg.Horizon),
	}
	for i := 0; i < 2; i++ {
		m.enc = append(m.enc, newEncoderLayer(rng, d, heads, 2*d))
	}
	return m
}

func (m *transformer) Name() string { return "Transformer" }

func (m *transformer) params() []*nn.Tensor {
	ps := m.embed.Params()
	for _, e := range m.enc {
		ps = append(ps, e.params()...)
	}
	ps = append(ps, m.dec.params()...)
	return append(ps, m.head.Params()...)
}

// embedSeq maps a [B, T] value tensor to [B, T, d] with positions added.
func (m *transformer) embedSeq(x *nn.Tensor) *nn.Tensor {
	b, t := x.Shape[0], x.Shape[1]
	tokens := nn.Reshape(x, b, t, 1)
	return m.pe.Add(m.embed.Forward(tokens))
}

// decoderInput builds the [B, labelLen + Horizon] decoder value sequence:
// the last labelLen observations followed by zero placeholders.
func decoderInput(x *nn.Tensor, labelLen, horizon int) *nn.Tensor {
	b, l := x.Shape[0], x.Shape[1]
	label := nn.Narrow(x, 1, l-labelLen, labelLen)
	placeholders := nn.ZerosLike(x, b, horizon)
	return nn.Concat(1, label, placeholders)
}

func (m *transformer) forward(x *nn.Tensor, train bool) *nn.Tensor {
	dropout := m.cfg.Dropout
	memory := m.embedSeq(x)
	for _, e := range m.enc {
		memory = e.forward(memory, dropout, m.rng, train)
	}
	decSeq := m.embedSeq(decoderInput(x, m.labelLen, m.cfg.Horizon))
	out := m.dec.forward(decSeq, memory, m.mask, dropout, m.rng, train)
	// Project every position to a value and keep the horizon tail.
	b := x.Shape[0]
	vals := nn.Reshape(m.head.Forward(out), b, m.labelLen+m.cfg.Horizon)
	return nn.Narrow(vals, 1, m.labelLen, m.cfg.Horizon)
}

func (m *transformer) Fit(train, val []float64) error {
	return m.FitContext(context.Background(), train, val)
}

// FitContext is Fit with cancellation honoured at epoch boundaries.
func (m *transformer) FitContext(ctx context.Context, train, val []float64) error {
	if err := trainNeural(ctx, m, m.cfg, m.rng, train, val); err != nil {
		return err
	}
	m.trained = true
	return nil
}

// Update warm-starts a short training continuation on the newest windows;
// see IncrementalFitter.
func (m *transformer) Update(ctx context.Context, train, val []float64) error {
	if !m.trained {
		return m.FitContext(ctx, train, val)
	}
	m.updates++
	m.rng = updateRNG(m.cfg.Seed, m.updates)
	return trainNeural(ctx, m, updateConfig(m.cfg), m.rng, train, val)
}

// StateSnapshot captures the weights for session checkpointing.
func (m *transformer) StateSnapshot() ModelState {
	return neuralSnapshot("Transformer", m.updates, m.trained, m.params())
}

// RestoreState loads a checkpointed snapshot back into the model.
func (m *transformer) RestoreState(st ModelState) error {
	if err := neuralRestore("Transformer", st, m.params()); err != nil {
		return err
	}
	m.updates, m.trained = st.Updates, st.Trained
	return nil
}

func (m *transformer) Predict(inputs [][]float64) ([][]float64, error) {
	if !m.trained {
		return nil, errors.New("forecast: Transformer predict before fit")
	}
	if err := checkInputs(inputs, m.cfg.InputLen); err != nil {
		return nil, err
	}
	return predictNeural(m, m.cfg, inputs), nil
}
