package forecast

import (
	"testing"
)

func TestSearchHyperparametersDeep(t *testing.T) {
	cfg := testConfig(61)
	cfg.Epochs = 3
	train := sineData(800, 61, 0.1)
	val := sineData(200, 62, 0.1)
	space := SearchSpace{HiddenSizes: []int{8, 16}, Dropouts: []float64{0, 0.1}}
	best, results, err := SearchHyperparameters("DLinear", cfg, space, train, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("evaluated %d configurations, want 4", len(results))
	}
	// The best config must carry the lowest observed score.
	lowest := results[0].NRMSE
	for _, r := range results {
		if r.NRMSE < lowest {
			lowest = r.NRMSE
		}
	}
	for _, r := range results {
		if r.Config == best && r.NRMSE != lowest {
			t.Errorf("best config scored %v, lowest was %v", r.NRMSE, lowest)
		}
	}
	found := false
	for _, h := range space.HiddenSizes {
		if best.HiddenSize == h {
			found = true
		}
	}
	if !found {
		t.Errorf("best hidden size %d not from the space", best.HiddenSize)
	}
}

func TestSearchHyperparametersShallow(t *testing.T) {
	cfg := testConfig(63)
	train := sineData(800, 63, 0.1)
	val := sineData(200, 64, 0.1)
	best, results, err := SearchHyperparameters("Arima", cfg, DefaultSearchSpace(), train, val)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("shallow model should be scored once, got %d", len(results))
	}
	if best.HiddenSize != cfg.HiddenSize {
		t.Error("shallow model config should be unchanged")
	}
}

func TestSearchErrors(t *testing.T) {
	cfg := testConfig(65)
	if _, _, err := SearchHyperparameters("DLinear", cfg, DefaultSearchSpace(),
		sineData(800, 65, 0.1), sineData(10, 66, 0.1)); err == nil {
		t.Error("short validation should error")
	}
	bad := cfg
	bad.InputLen = 0
	if _, _, err := SearchHyperparameters("DLinear", bad, DefaultSearchSpace(),
		sineData(800, 65, 0.1), sineData(200, 66, 0.1)); err == nil {
		t.Error("invalid config should error")
	}
	constVal := make([]float64, 200)
	if _, _, err := SearchHyperparameters("DLinear", cfg, DefaultSearchSpace(),
		sineData(800, 65, 0.1), constVal); err == nil {
		t.Error("constant validation should error")
	}
}
