package forecast

import (
	"math"
	"math/rand"
	"testing"

	"lossyts/internal/nn"
	"lossyts/internal/timeseries"
)

// testConfig is a small, fast configuration for the unit tests.
func testConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.InputLen = 48
	cfg.Horizon = 8
	cfg.SeasonalPeriod = 24
	cfg.Seed = seed
	cfg.Epochs = 8
	cfg.HiddenSize = 16
	cfg.MaxTrainWindows = 128
	return cfg
}

// sineData generates a clean seasonal series (scaled domain, zero mean).
func sineData(n int, seed int64, noise float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/24) + noise*rng.NormFloat64()
	}
	return x
}

// evalModel trains the model and returns the RMSE of its forecasts on
// held-out windows of the same process.
func evalModel(t *testing.T, name string, cfg Config, train, val, test []float64) float64 {
	t.Helper()
	m, err := New(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != name {
		t.Fatalf("Name() = %q, want %q", m.Name(), name)
	}
	if err := m.Fit(train, val); err != nil {
		t.Fatalf("%s fit: %v", name, err)
	}
	ws, err := timeseries.MakeWindows(test, cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := m.Predict(ws.Inputs())
	if err != nil {
		t.Fatalf("%s predict: %v", name, err)
	}
	if len(preds) != ws.Len() {
		t.Fatalf("%s: %d predictions for %d windows", name, len(preds), ws.Len())
	}
	var ss float64
	var n int
	for i, p := range preds {
		if len(p) != cfg.Horizon {
			t.Fatalf("%s: prediction %d has length %d", name, i, len(p))
		}
		for j := range p {
			if math.IsNaN(p[j]) || math.IsInf(p[j], 0) {
				t.Fatalf("%s: non-finite prediction", name)
			}
			d := p[j] - ws.Windows[i].Target[j]
			ss += d * d
			n++
		}
	}
	return math.Sqrt(ss / float64(n))
}

// naiveRMSE is the RMSE of repeating the last observed value.
func naiveRMSE(t *testing.T, cfg Config, test []float64) float64 {
	t.Helper()
	ws, err := timeseries.MakeWindows(test, cfg.InputLen, cfg.Horizon, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	var ss float64
	var n int
	for _, w := range ws.Windows {
		last := w.Input[len(w.Input)-1]
		for _, y := range w.Target {
			ss += (y - last) * (y - last)
			n++
		}
	}
	return math.Sqrt(ss / float64(n))
}

func TestAllModelsBeatNaiveOnSeasonalData(t *testing.T) {
	cfg := testConfig(1)
	train := sineData(1200, 1, 0.05)
	val := sineData(240, 2, 0.05)
	test := sineData(360, 3, 0.05)
	naive := naiveRMSE(t, cfg, test)
	for _, name := range ModelNames {
		name := name
		t.Run(name, func(t *testing.T) {
			rmse := evalModel(t, name, cfg, train, val, test)
			if rmse > naive {
				t.Errorf("%s RMSE %.4f worse than naive %.4f on pure seasonality", name, rmse, naive)
			}
		})
	}
}

func TestModelsDeterministicGivenSeed(t *testing.T) {
	cfg := testConfig(7)
	train := sineData(800, 4, 0.1)
	val := sineData(200, 5, 0.1)
	ws, _ := timeseries.MakeWindows(sineData(120, 6, 0.1), cfg.InputLen, cfg.Horizon, cfg.Horizon)
	for _, name := range []string{"Arima", "GBoost", "DLinear"} {
		a, _ := New(name, cfg)
		b, _ := New(name, cfg)
		if err := a.Fit(train, val); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(train, val); err != nil {
			t.Fatal(err)
		}
		pa, _ := a.Predict(ws.Inputs())
		pb, _ := b.Predict(ws.Inputs())
		for i := range pa {
			for j := range pa[i] {
				if pa[i][j] != pb[i][j] {
					t.Fatalf("%s: same seed, different predictions", name)
				}
			}
		}
	}
}

func TestNewUnknownModel(t *testing.T) {
	if _, err := New("LSTM9000", DefaultConfig()); err == nil {
		t.Error("unknown model should error")
	}
	bad := DefaultConfig()
	bad.InputLen = 0
	if _, err := New("Arima", bad); err == nil {
		t.Error("invalid config should error")
	}
}

func TestPredictBeforeFit(t *testing.T) {
	cfg := testConfig(2)
	in := [][]float64{make([]float64, cfg.InputLen)}
	for _, name := range ModelNames {
		m, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Predict(in); err == nil {
			t.Errorf("%s: predict before fit should error", name)
		}
	}
}

func TestPredictBadWindowLength(t *testing.T) {
	cfg := testConfig(3)
	m, _ := New("DLinear", cfg)
	if err := m.Fit(sineData(600, 7, 0.1), sineData(150, 8, 0.1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict([][]float64{make([]float64, cfg.InputLen+1)}); err == nil {
		t.Error("wrong window length should error")
	}
	if _, err := m.Predict(nil); err == nil {
		t.Error("empty batch should error")
	}
}

func TestFitTooShortSeries(t *testing.T) {
	cfg := testConfig(4)
	for _, name := range ModelNames {
		m, _ := New(name, cfg)
		if err := m.Fit(sineData(20, 9, 0.1), nil); err == nil {
			t.Errorf("%s: fitting 20 points should error", name)
		}
	}
}

func TestIsDeep(t *testing.T) {
	if IsDeep("Arima") || IsDeep("GBoost") {
		t.Error("Arima/GBoost are not deep")
	}
	for _, n := range []string{"DLinear", "GRU", "Informer", "NBeats", "Transformer"} {
		if !IsDeep(n) {
			t.Errorf("%s should be deep", n)
		}
	}
}

func TestSubsampleIndices(t *testing.T) {
	idx := subsampleIndices(10, 0)
	if len(idx) != 10 {
		t.Fatalf("no cap should keep all: %v", idx)
	}
	idx = subsampleIndices(100, 10)
	if len(idx) != 10 || idx[0] != 0 {
		t.Fatalf("capped = %v", idx)
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("indices not strictly increasing: %v", idx)
		}
	}
	idx = subsampleIndices(3, 10)
	if len(idx) != 3 {
		t.Fatalf("small n = %v", idx)
	}
}

func TestFourierProfile(t *testing.T) {
	period := 24
	x := make([]float64, 480)
	for i := range x {
		x[i] = 3 + 2*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	prof := fourierProfile(x, period, 4)
	for ph := 0; ph < period; ph++ {
		want := 3 + 2*math.Sin(2*math.Pi*float64(ph)/float64(period))
		if math.Abs(prof[ph]-want) > 0.01 {
			t.Fatalf("profile[%d] = %v, want %v", ph, prof[ph], want)
		}
	}
}

func TestBestPhase(t *testing.T) {
	period := 24
	prof := make([]float64, period)
	for i := range prof {
		prof[i] = math.Sin(2 * math.Pi * float64(i) / float64(period))
	}
	// A window starting at phase 7 must be recognised.
	w := make([]float64, 48)
	for i := range w {
		w[i] = prof[(7+i)%period] + 5 // level shift must not matter
	}
	if got := bestPhase(w, prof); got != 7 {
		t.Fatalf("bestPhase = %d, want 7", got)
	}
}

func TestHannanRissanenRecoversAR1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4000
	x := make([]float64, n)
	for i := 1; i < n; i++ {
		x[i] = 0.7*x[i-1] + rng.NormFloat64()
	}
	_, phi, _, sigma2, ok := hannanRissanen(x, 1, 0)
	if !ok {
		t.Fatal("estimation failed")
	}
	if math.Abs(phi[0]-0.7) > 0.05 {
		t.Fatalf("phi = %v, want 0.7", phi[0])
	}
	if math.Abs(sigma2-1) > 0.15 {
		t.Fatalf("sigma2 = %v, want ~1", sigma2)
	}
}

func TestHannanRissanenRecoversMA1(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 6000
	e := make([]float64, n)
	x := make([]float64, n)
	for i := range x {
		e[i] = rng.NormFloat64()
		x[i] = e[i]
		if i > 0 {
			x[i] += 0.6 * e[i-1]
		}
	}
	_, _, theta, _, ok := hannanRissanen(x, 0, 1)
	if !ok {
		t.Fatal("estimation failed")
	}
	if math.Abs(theta[0]-0.6) > 0.08 {
		t.Fatalf("theta = %v, want 0.6", theta[0])
	}
}

func TestArimaResilienceToSmoothing(t *testing.T) {
	// The paper's RQ3 finding: Arima forecasts from coarsely smoothed
	// (PMC-like) inputs degrade gracefully because it tracks broad trends.
	cfg := testConfig(5)
	train := sineData(1200, 13, 0.1)
	val := sineData(240, 14, 0.1)
	m, _ := New("Arima", cfg)
	if err := m.Fit(train, val); err != nil {
		t.Fatal(err)
	}
	test := sineData(240, 15, 0.1)
	ws, _ := timeseries.MakeWindows(test, cfg.InputLen, cfg.Horizon, cfg.Horizon)
	clean, err := m.Predict(ws.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	// Piecewise-constant (segment mean) approximation of the inputs.
	smoothedInputs := make([][]float64, ws.Len())
	for i, w := range ws.Windows {
		sm := append([]float64(nil), w.Input...)
		for s := 0; s < len(sm); s += 4 {
			end := s + 4
			if end > len(sm) {
				end = len(sm)
			}
			v := mean(sm[s:end])
			for j := s; j < end; j++ {
				sm[j] = v
			}
		}
		smoothedInputs[i] = sm
	}
	smoothed, err := m.Predict(smoothedInputs)
	if err != nil {
		t.Fatal(err)
	}
	rmse := func(preds [][]float64) float64 {
		var ss float64
		var n int
		for i, p := range preds {
			for j := range p {
				d := p[j] - ws.Windows[i].Target[j]
				ss += d * d
				n++
			}
		}
		return math.Sqrt(ss / float64(n))
	}
	rClean, rSmooth := rmse(clean), rmse(smoothed)
	if rSmooth > rClean*2 {
		t.Errorf("Arima on smoothed input RMSE %.4f vs clean %.4f: not resilient", rSmooth, rClean)
	}
}

func TestGBoostFeatureRow(t *testing.T) {
	cfg := testConfig(6)
	g := newGBoost(cfg)
	w := make([]float64, cfg.InputLen)
	for i := range w {
		w[i] = float64(i)
	}
	row := g.featureRow(w)
	if len(row) != len(g.lags)+2 {
		t.Fatalf("feature row length %d, want %d", len(row), len(g.lags)+2)
	}
	// Lag 1 is the most recent value.
	if row[0] != w[len(w)-1] {
		t.Fatalf("lag-1 feature = %v, want %v", row[0], w[len(w)-1])
	}
}

func TestDecoderInput(t *testing.T) {
	x := nn.New([]int{1, 6}, []float64{10, 11, 12, 13, 14, 15})
	dec := decoderInput(x, 3, 2)
	want := []float64{13, 14, 15, 0, 0}
	if len(dec.Data) != len(want) {
		t.Fatalf("decoder input = %v", dec.Data)
	}
	for i := range want {
		if dec.Data[i] != want[i] {
			t.Fatalf("decoder input = %v, want %v", dec.Data, want)
		}
	}
}
