package features

import (
	"math"
	"math/cmplx"
	"sort"
)

// SpectralEntropy returns the Shannon entropy of the normalised spectral
// density (tsfeatures' entropy). Values near 1 indicate white-noise-like
// series; values near 0 indicate strong regularity.
func SpectralEntropy(x []float64) float64 {
	n := len(x)
	if n < 4 {
		return 1
	}
	d := demean(x)
	// Pad to a power of two for the radix-2 FFT.
	m := 1
	for m < n {
		m <<= 1
	}
	c := make([]complex128, m)
	for i, v := range d {
		c[i] = complex(v, 0)
	}
	fft(c)
	half := m / 2
	power := make([]float64, half)
	var total float64
	for i := 1; i <= half; i++ {
		p := cmplx.Abs(c[i])
		p *= p
		power[i-1] = p
		total += p
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, p := range power {
		if p == 0 {
			continue
		}
		q := p / total
		h -= q * math.Log(q)
	}
	return h / math.Log(float64(half))
}

// fft performs an in-place radix-2 Cooley-Tukey FFT; len(c) must be a power
// of two.
func fft(c []complex128) {
	n := len(c)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			c[i], c[j] = c[j], c[i]
		}
		mask := n >> 1
		for j&mask != 0 {
			j &^= mask
			mask >>= 1
		}
		j |= mask
	}
	for size := 2; size <= n; size <<= 1 {
		step := -2 * math.Pi / float64(size)
		wBase := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < size/2; k++ {
				a := c[start+k]
				b := c[start+k+size/2] * w
				c[start+k] = a + b
				c[start+k+size/2] = a - b
				w *= wBase
			}
		}
	}
}

// Hurst returns the rescaled-range (R/S) estimate of the Hurst exponent.
func Hurst(x []float64) float64 {
	n := len(x)
	if n < 20 {
		return 0.5
	}
	var sizes []int
	for s := 10; s <= n/2; s *= 2 {
		sizes = append(sizes, s)
	}
	if len(sizes) < 2 {
		return 0.5
	}
	var logS, logRS []float64
	for _, s := range sizes {
		var rsSum float64
		count := 0
		for start := 0; start+s <= n; start += s {
			w := x[start : start+s]
			m := mean(w)
			var cum, lo, hi, ss float64
			for _, v := range w {
				cum += v - m
				if cum < lo {
					lo = cum
				}
				if cum > hi {
					hi = cum
				}
				ss += (v - m) * (v - m)
			}
			sd := math.Sqrt(ss / float64(s))
			if sd > 0 && hi > lo {
				rsSum += (hi - lo) / sd
				count++
			}
		}
		if count > 0 {
			logS = append(logS, math.Log(float64(s)))
			logRS = append(logRS, math.Log(rsSum/float64(count)))
		}
	}
	if len(logS) < 2 {
		return 0.5
	}
	slope, _ := fitLine2(logS, logRS)
	if slope < 0 {
		slope = 0
	}
	if slope > 1 {
		slope = 1
	}
	return slope
}

func fitLine2(x, y []float64) (slope, intercept float64) {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LumpinessStability returns the variance of tiled-window variances
// (lumpiness) and the variance of tiled-window means (stability), computed
// over non-overlapping windows of the given width.
func LumpinessStability(x []float64, w int) (lumpiness, stability float64) {
	if w < 2 || len(x) < 2*w {
		return 0, 0
	}
	var means, vars []float64
	for s := 0; s+w <= len(x); s += w {
		means = append(means, mean(x[s:s+w]))
		vars = append(vars, variance(x[s:s+w]))
	}
	return variance(vars), variance(means)
}

// CrossingPoints returns the number of times the series crosses its median.
func CrossingPoints(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	med := medianOf(x)
	var count int
	above := x[0] > med
	for _, v := range x[1:] {
		a := v > med
		if a != above {
			count++
			above = a
		}
	}
	return float64(count)
}

// FlatSpots returns the maximum run length within a single decile bin, the
// tsfeatures flat_spots characteristic. Constant stretches (PMC segments)
// inflate this value.
func FlatSpots(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return float64(len(x))
	}
	bin := func(v float64) int {
		b := int(10 * (v - lo) / (hi - lo))
		if b > 9 {
			b = 9
		}
		return b
	}
	best, run := 1, 1
	prev := bin(x[0])
	for _, v := range x[1:] {
		b := bin(v)
		if b == prev {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 1
			prev = b
		}
	}
	return float64(best)
}

func medianOf(x []float64) float64 {
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
