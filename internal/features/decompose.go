package features

import (
	"errors"
	"math"
)

// Decomposition is a classical additive decomposition of a series into
// trend, seasonal, and remainder components. It substitutes for the STL
// decomposition used by tsfeatures: a centred moving average estimates the
// trend and per-phase means of the detrended series estimate the seasonal
// component (documented substitution, DESIGN.md item 5).
type Decomposition struct {
	Period    int
	Trend     []float64 // same length as input; ends extrapolated
	Seasonal  []float64
	Remainder []float64
}

// Decompose performs the classical additive decomposition with the given
// seasonal period. The series must be at least two periods long.
func Decompose(x []float64, period int) (*Decomposition, error) {
	n := len(x)
	if period < 2 {
		return nil, errors.New("features: period must be at least 2")
	}
	if n < 2*period {
		return nil, errors.New("features: series shorter than two periods")
	}
	trend := centredMA(x, period)
	// Detrend, then average by phase.
	phaseSum := make([]float64, period)
	phaseCnt := make([]float64, period)
	for i := range x {
		if math.IsNaN(trend[i]) {
			continue
		}
		p := i % period
		phaseSum[p] += x[i] - trend[i]
		phaseCnt[p]++
	}
	phase := make([]float64, period)
	var grand float64
	for p := range phase {
		if phaseCnt[p] > 0 {
			phase[p] = phaseSum[p] / phaseCnt[p]
		}
		grand += phase[p]
	}
	grand /= float64(period)
	for p := range phase {
		phase[p] -= grand // seasonal component sums to ~zero over a period
	}
	d := &Decomposition{
		Period:    period,
		Trend:     make([]float64, n),
		Seasonal:  make([]float64, n),
		Remainder: make([]float64, n),
	}
	// Fill trend ends by holding the first/last defined value.
	firstDef, lastDef := -1, -1
	for i, v := range trend {
		if !math.IsNaN(v) {
			if firstDef < 0 {
				firstDef = i
			}
			lastDef = i
		}
	}
	if firstDef < 0 {
		return nil, errors.New("features: trend estimation failed")
	}
	for i := range trend {
		switch {
		case i < firstDef:
			d.Trend[i] = trend[firstDef]
		case i > lastDef:
			d.Trend[i] = trend[lastDef]
		default:
			d.Trend[i] = trend[i]
		}
	}
	for i := range x {
		d.Seasonal[i] = phase[i%period]
		d.Remainder[i] = x[i] - d.Trend[i] - d.Seasonal[i]
	}
	return d, nil
}

// centredMA returns the centred moving average of width period; positions
// without a full window are NaN. Even periods use the standard 2×m MA.
func centredMA(x []float64, period int) []float64 {
	n := len(x)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	half := period / 2
	if period%2 == 1 {
		for i := half; i < n-half; i++ {
			var s float64
			for j := i - half; j <= i+half; j++ {
				s += x[j]
			}
			out[i] = s / float64(period)
		}
		return out
	}
	// Even period: average of two adjacent windows (2×m moving average).
	for i := half; i < n-half; i++ {
		var s float64
		for j := i - half; j < i+half; j++ {
			s += x[j]
		}
		s2 := s - x[i-half] + x[i+half]
		out[i] = (s + s2) / float64(2*period)
	}
	return out
}

// TrendStrength returns the STL-style trend strength:
// max(0, 1 - var(remainder)/var(trend+remainder)).
func (d *Decomposition) TrendStrength() float64 {
	deseason := make([]float64, len(d.Trend))
	for i := range deseason {
		deseason[i] = d.Trend[i] + d.Remainder[i]
	}
	vd := variance(deseason)
	if vd == 0 {
		return 0
	}
	return math.Max(0, 1-variance(d.Remainder)/vd)
}

// SeasonalStrength returns the STL-style seasonal strength
// (tsfeatures' seas_strength): max(0, 1 - var(remainder)/var(seasonal+remainder)).
func (d *Decomposition) SeasonalStrength() float64 {
	detrend := make([]float64, len(d.Seasonal))
	for i := range detrend {
		detrend[i] = d.Seasonal[i] + d.Remainder[i]
	}
	vd := variance(detrend)
	if vd == 0 {
		return 0
	}
	return math.Max(0, 1-variance(d.Remainder)/vd)
}

// PeakTrough returns the 1-based phase positions of the seasonal maximum
// and minimum.
func (d *Decomposition) PeakTrough() (peak, trough int) {
	pMax, pMin := 0, 0
	for p := 1; p < d.Period; p++ {
		if d.Seasonal[p] > d.Seasonal[pMax] {
			pMax = p
		}
		if d.Seasonal[p] < d.Seasonal[pMin] {
			pMin = p
		}
	}
	return pMax + 1, pMin + 1
}

// Spike returns the spikiness of the remainder: the variance of the
// leave-one-out variances.
func (d *Decomposition) Spike() float64 {
	e := d.Remainder
	n := len(e)
	if n < 3 {
		return 0
	}
	m := mean(e)
	total := SumSq(demean(e))
	loo := make([]float64, n)
	for i, v := range e {
		dm := v - m
		// Leave-one-out variance, adjusting mean and sum of squares.
		newMean := (m*float64(n) - v) / float64(n-1)
		newSS := total - dm*dm - float64(n-1)*(newMean-m)*(newMean-m)
		if newSS < 0 {
			newSS = 0
		}
		loo[i] = newSS / float64(n-2)
	}
	return variance(loo)
}

// LinearityCurvature regresses the trend component on an orthogonal
// quadratic polynomial of time and returns the linear and quadratic
// coefficients (tsfeatures' linearity and curvature).
func (d *Decomposition) LinearityCurvature() (linearity, curvature float64) {
	t := d.Trend
	n := len(t)
	if n < 3 {
		return 0, 0
	}
	// Orthogonalise [1, x, x^2] with Gram-Schmidt over centred time.
	x1 := make([]float64, n)
	for i := range x1 {
		x1[i] = float64(i) - float64(n-1)/2
	}
	x2 := make([]float64, n)
	m2 := 0.0
	for i := range x2 {
		x2[i] = x1[i] * x1[i]
		m2 += x2[i]
	}
	m2 /= float64(n)
	// Remove the projection of x^2 on the constant (its mean); by symmetry
	// x^2 is already orthogonal to x.
	for i := range x2 {
		x2[i] -= m2
	}
	n1 := math.Sqrt(SumSq(x1))
	n2 := math.Sqrt(SumSq(x2))
	if n1 == 0 || n2 == 0 {
		return 0, 0
	}
	var c1, c2 float64
	for i := range t {
		c1 += t[i] * x1[i] / n1
		c2 += t[i] * x2[i] / n2
	}
	return c1, c2
}
