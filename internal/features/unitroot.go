package features

import "math"

// bartlettLongRunVariance estimates the long-run variance of e with a
// Bartlett kernel of the given truncation lag.
func bartlettLongRunVariance(e []float64, lags int) float64 {
	n := float64(len(e))
	if n == 0 {
		return 0
	}
	lrv := SumSq(e) / n
	for j := 1; j <= lags; j++ {
		if j >= len(e) {
			break
		}
		var g float64
		for i := j; i < len(e); i++ {
			g += e[i] * e[i-j]
		}
		g /= n
		lrv += 2 * (1 - float64(j)/float64(lags+1)) * g
	}
	return lrv
}

// defaultLag is the Schwert/KPSS default truncation lag trunc(4·(n/100)^¼).
func defaultLag(n int) int {
	return int(4 * math.Pow(float64(n)/100, 0.25))
}

// KPSS returns the Kwiatkowski-Phillips-Schmidt-Shin level-stationarity
// statistic (tsfeatures' unitroot_kpss). Large values reject stationarity.
func KPSS(x []float64) float64 {
	n := len(x)
	if n < 3 {
		return 0
	}
	e := demean(x)
	// Partial sums of residuals.
	var s, num float64
	for _, v := range e {
		s += v
		num += s * s
	}
	lrv := bartlettLongRunVariance(e, defaultLag(n))
	if lrv <= 0 {
		return 0
	}
	return num / (float64(n) * float64(n) * lrv)
}

// PhillipsPerron returns the Phillips-Perron Z-alpha unit-root statistic
// (tsfeatures' unitroot_pp). Strongly negative values reject a unit root;
// values near zero indicate random-walk behaviour.
func PhillipsPerron(x []float64) float64 {
	n := len(x)
	if n < 4 {
		return 0
	}
	// OLS: x_t = mu + rho·x_{t-1} + e_t.
	y := x[1:]
	z := x[:n-1]
	mz, my := mean(z), mean(y)
	var sxy, sxx float64
	for i := range y {
		sxy += (z[i] - mz) * (y[i] - my)
		sxx += (z[i] - mz) * (z[i] - mz)
	}
	if sxx == 0 {
		return 0
	}
	rho := sxy / sxx
	e := make([]float64, len(y))
	muHat := my - rho*mz
	for i := range y {
		e[i] = y[i] - muHat - rho*z[i]
	}
	m := float64(len(y))
	gamma0 := SumSq(e) / m
	lrv := bartlettLongRunVariance(e, defaultLag(n))
	if lrv <= 0 || gamma0 <= 0 {
		return 0
	}
	// Z_alpha = n(rho-1) − ½(λ² − γ0) / (Σ(z−z̄)²/n²).
	return m*(rho-1) - 0.5*(lrv-gamma0)/(sxx/(m*m))
}

// ARCHStat returns the ARCH LM statistic: n·R² of the regression of the
// squared demeaned series on its own first 12 lags (tsfeatures' arch_stat,
// embedding an arch.lm test with 12 lags).
func ARCHStat(x []float64) float64 {
	const lags = 12
	d := demean(x)
	sq := make([]float64, len(d))
	for i, v := range d {
		sq[i] = v * v
	}
	n := len(sq) - lags
	if n < lags+2 {
		return 0
	}
	// OLS of sq[t] on [sq[t-1..t-12], 1] via normal equations.
	p := lags + 1
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	row := make([]float64, p)
	var sy, syy float64
	for t := lags; t < len(sq); t++ {
		for j := 0; j < lags; j++ {
			row[j] = sq[t-1-j]
		}
		row[lags] = 1
		yt := sq[t]
		sy += yt
		syy += yt * yt
		for a := 0; a < p; a++ {
			for b := a; b < p; b++ {
				xtx[a][b] += row[a] * row[b]
			}
			xty[a] += row[a] * yt
		}
	}
	for a := 0; a < p; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
	}
	beta, ok := solveSPD(xtx, xty)
	if !ok {
		return 0
	}
	// R² from fitted values.
	var ssRes float64
	ybar := sy / float64(n)
	ssTot := syy - float64(n)*ybar*ybar
	for t := lags; t < len(sq); t++ {
		var fit float64
		for j := 0; j < lags; j++ {
			fit += beta[j] * sq[t-1-j]
		}
		fit += beta[lags]
		r := sq[t] - fit
		ssRes += r * r
	}
	if ssTot <= 0 {
		return 0
	}
	r2 := 1 - ssRes/ssTot
	if r2 < 0 {
		r2 = 0
	}
	return float64(n) * r2
}

// solveSPD solves Ax=b by Gaussian elimination with partial pivoting.
func solveSPD(a [][]float64, b []float64) ([]float64, bool) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for j := col; j <= n; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, true
}
