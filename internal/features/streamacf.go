package features

// StreamACF tracks the exact autocorrelation function of a growing stream
// at lags 1..MaxLag in O(MaxLag) state: running sum and sum of squares,
// the lagged cross-products, the prefix sums of the first MaxLag values,
// and a ring of the last MaxLag values. At() agrees with the batch ACF over
// the full history to floating-point accumulation order — the tracker is an
// algebraic rearrangement, not an approximation — so codecs (CAMEO) and
// monitors can bound ACF deviation incrementally without re-scanning.
//
// The rearrangement: with m the running mean over n values,
//
//	c_k = Σ_{i=k..n-1} (x_i−m)(x_{i−k}−m)
//	    = cross_k − m·(H_k + T_k) + (n−k)·m²
//
// where cross_k is the running lagged cross-product, H_k the sum of all but
// the first k values (from the prefix sums), and T_k the sum of all but the
// last k values (from the ring).
type StreamACF struct {
	maxLag int
	n      int
	sum    float64
	sumsq  float64

	cross  []float64 // cross[k] = Σ x_i·x_{i−k}, k in 1..maxLag
	prefix []float64 // prefix[k] = x_0+…+x_{k−1}, k in 0..maxLag
	ring   []float64 // last maxLag values, ring[i%maxLag]
}

// NewStreamACF returns a tracker for lags 1..maxLag (maxLag ≥ 1).
func NewStreamACF(maxLag int) *StreamACF {
	if maxLag < 1 {
		maxLag = 1
	}
	return &StreamACF{
		maxLag: maxLag,
		cross:  make([]float64, maxLag+1),
		prefix: make([]float64, maxLag+1),
		ring:   make([]float64, maxLag),
	}
}

// MaxLag returns the largest tracked lag.
func (a *StreamACF) MaxLag() int { return a.maxLag }

// Len returns the number of values pushed.
func (a *StreamACF) Len() int { return a.n }

// Push feeds the next value. O(MaxLag).
func (a *StreamACF) Push(v float64) {
	for k := 1; k <= a.maxLag && k <= a.n; k++ {
		a.cross[k] += v * a.ring[(a.n-k)%a.maxLag]
	}
	if a.n < a.maxLag {
		a.prefix[a.n+1] = a.prefix[a.n] + v
	}
	a.ring[a.n%a.maxLag] = v
	a.n++
	a.sum += v
	a.sumsq += v * v
}

// Into fills dst[k−1] with the autocorrelation at lag k for k=1..MaxLag,
// matching the batch ACF's conventions (zero beyond the data length or for
// constant series). dst must have length ≥ MaxLag; the filled prefix is
// returned. Allocation-free. O(MaxLag).
func (a *StreamACF) Into(dst []float64) []float64 {
	dst = dst[:a.maxLag]
	for i := range dst {
		dst[i] = 0
	}
	if a.n < 2 {
		return dst
	}
	m := a.sum / float64(a.n)
	c0 := a.sumsq - float64(a.n)*m*m
	if c0 <= 0 {
		return dst
	}
	tail := 0.0 // T-side correction: sum of the last k values, built incrementally
	for k := 1; k <= a.maxLag && k < a.n; k++ {
		tail += a.ring[(a.n-k)%a.maxLag]
		head := a.prefix[k] // sum of the first k values
		hk := a.sum - head
		tk := a.sum - tail
		ck := a.cross[k] - m*(hk+tk) + float64(a.n-k)*m*m
		dst[k-1] = ck / c0
	}
	return dst
}

// At returns the autocorrelation at a single lag (1..MaxLag). O(MaxLag).
func (a *StreamACF) At(lag int) float64 {
	if lag <= 0 {
		return 1
	}
	if lag > a.maxLag || lag >= a.n {
		return 0
	}
	var buf [64]float64
	dst := buf[:0]
	if a.maxLag > len(buf) {
		dst = make([]float64, a.maxLag)
	} else {
		dst = buf[:a.maxLag]
	}
	return a.Into(dst)[lag-1]
}

// Reset rewinds the tracker, keeping its buffers.
func (a *StreamACF) Reset() {
	a.n, a.sum, a.sumsq = 0, 0, 0
	for i := range a.cross {
		a.cross[i] = 0
		a.prefix[i] = 0
	}
	for i := range a.ring {
		a.ring[i] = 0
	}
}
