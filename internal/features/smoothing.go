package features

import "math"

// HoltParameters fits Holt's linear exponential smoothing by grid search
// over (alpha, beta), minimising one-step-ahead squared error, and returns
// the optimal parameters (tsfeatures' holt_parameters: alpha and beta, the
// "beta" characteristic in the paper's Table 4).
func HoltParameters(x []float64) (alpha, beta float64) {
	if len(x) < 4 {
		return 0, 0
	}
	best := math.Inf(1)
	for a := 0.05; a < 1; a += 0.05 {
		for b := 0.05; b < 1; b += 0.05 {
			sse := holtSSE(x, a, b)
			if sse < best {
				best, alpha, beta = sse, a, b
			}
		}
	}
	return alpha, beta
}

func holtSSE(x []float64, alpha, beta float64) float64 {
	level := x[0]
	trend := x[1] - x[0]
	var sse float64
	for t := 1; t < len(x); t++ {
		f := level + trend
		e := x[t] - f
		sse += e * e
		newLevel := alpha*x[t] + (1-alpha)*(level+trend)
		trend = beta*(newLevel-level) + (1-beta)*trend
		level = newLevel
	}
	return sse
}

// HWParameters fits additive Holt-Winters smoothing by coarse grid search
// over (alpha, beta, gamma) and returns the optimal parameters
// (tsfeatures' hw_parameters).
func HWParameters(x []float64, period int) (alpha, beta, gamma float64) {
	if period < 2 || len(x) < 3*period {
		return 0, 0, 0
	}
	best := math.Inf(1)
	for a := 0.1; a < 1; a += 0.2 {
		for b := 0.1; b < 1; b += 0.2 {
			for g := 0.1; g < 1; g += 0.2 {
				sse := hwSSE(x, period, a, b, g)
				if sse < best {
					best, alpha, beta, gamma = sse, a, b, g
				}
			}
		}
	}
	return alpha, beta, gamma
}

func hwSSE(x []float64, m int, alpha, beta, gamma float64) float64 {
	// Initialise from the first two periods.
	level := mean(x[:m])
	trend := (mean(x[m:2*m]) - level) / float64(m)
	season := make([]float64, m)
	for i := 0; i < m; i++ {
		season[i] = x[i] - level
	}
	var sse float64
	for t := m; t < len(x); t++ {
		f := level + trend + season[t%m]
		e := x[t] - f
		sse += e * e
		newLevel := alpha*(x[t]-season[t%m]) + (1-alpha)*(level+trend)
		trend = beta*(newLevel-level) + (1-beta)*trend
		season[t%m] = gamma*(x[t]-newLevel) + (1-gamma)*season[t%m]
		level = newLevel
	}
	return sse
}
