package features

import (
	"math"
	"math/rand"
	"testing"
)

// TestKeyIndicatorVectorMatchesExtract pins the refactor: the cheap
// five-indicator path must produce the exact values the full Extract does.
func TestKeyIndicatorVectorMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{200, 500, 1200} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*0.4
		}
		kv, err := KeyIndicatorVector(x, 48)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Extract(x, Options{Period: 48})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range KeyIndicators {
			if kv[k] != full[k] {
				t.Errorf("n=%d %s: %v vs Extract %v", n, k, kv[k], full[k])
			}
		}
		if len(kv) != len(KeyIndicators) {
			t.Errorf("n=%d: extra indicators computed: %v", n, kv.Names())
		}
	}
	if _, err := KeyIndicatorVector(make([]float64, 100), 1); err == nil {
		t.Error("period 1 accepted")
	}
}

// TestCheckDriftShortSeries covers the length validation boundaries: the
// extractor needs max(4·period, 40) points on both inputs.
func TestCheckDriftShortSeries(t *testing.T) {
	mk := func(n int) []float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(float64(i)/3) + float64(i%5)*0.1
		}
		return x
	}
	// 4·12 = 48 ≥ 40: exactly at the boundary succeeds, one short fails.
	if _, err := CheckDrift(mk(48), mk(48), 12); err != nil {
		t.Errorf("boundary length rejected: %v", err)
	}
	if _, err := CheckDrift(mk(47), mk(47), 12); err == nil {
		t.Error("below 4·period accepted")
	}
	// 4·5 = 20 < 40: the 40-point floor governs.
	if _, err := CheckDrift(mk(39), mk(39), 5); err == nil {
		t.Error("below 40-point floor accepted")
	}
	if _, err := CheckDrift(mk(40), mk(40), 5); err != nil {
		t.Errorf("40-point floor rejected: %v", err)
	}
	// An empty series must error, not panic.
	if _, err := CheckDrift(nil, nil, 12); err == nil {
		t.Error("empty input accepted")
	}
}

// TestCheckDriftNaNIndicators: NaN/Inf inputs produce zeroed indicators (the
// extractor's contract), so the report stays finite and usable.
func TestCheckDriftNaNIndicators(t *testing.T) {
	n := 200
	raw := make([]float64, n)
	dec := make([]float64, n)
	for i := range raw {
		raw[i] = math.Sin(2 * math.Pi * float64(i) / 24)
		dec[i] = raw[i]
	}
	dec[50] = math.NaN()
	dec[120] = math.Inf(1)
	rep, err := CheckDrift(raw, dec, 24)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range rep.RelDiff {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("indicator %s leaked non-finite drift %v", k, v)
		}
	}
	// A fully-NaN decompression zeroes every indicator; against non-trivial
	// raw indicators that is a 100% relative drift → alert.
	allNaN := make([]float64, n)
	for i := range allNaN {
		allNaN[i] = math.NaN()
	}
	rep, err = CheckDrift(raw, allNaN, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alert {
		t.Errorf("all-NaN decompression should alert: %+v", rep)
	}
}

// TestCheckDriftAlertThresholds drives the report to both extremes: bit-
// identical data alerts on nothing, structurally destroyed data alerts on
// every thresholded indicator.
func TestCheckDriftAlertThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 1200
	raw := make([]float64, n)
	for i := range raw {
		raw[i] = 3*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()*0.2
	}
	rep, err := CheckDrift(raw, raw, 48)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alert || len(rep.Reasons) != 0 {
		t.Errorf("no-drift case raised %v", rep.Reasons)
	}
	for _, k := range KeyIndicators {
		if rep.RelDiff[k] != 0 {
			t.Errorf("identical data drifted on %s: %v", k, rep.RelDiff[k])
		}
	}
	// Replace the signal with scaled white noise: level/var/seasonal
	// structure all change far beyond every threshold.
	wrecked := make([]float64, n)
	for i := range wrecked {
		wrecked[i] = rng.NormFloat64() * 40
	}
	rep, err = CheckDrift(raw, wrecked, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alert {
		t.Fatal("wrecked data did not alert")
	}
	got := map[string]bool{}
	for _, r := range rep.Reasons {
		got[r] = true
	}
	for k := range alertThresholds {
		if rep.RelDiff[k] > alertThresholds[k] && !got[k] {
			t.Errorf("indicator %s above threshold but missing from Reasons %v", k, rep.Reasons)
		}
	}
	if len(got) < 3 {
		t.Errorf("expected most thresholded indicators to fire, got %v", rep.Reasons)
	}
}
