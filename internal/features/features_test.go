package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func seasonalSeries(n, period int, seed int64, noise float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = 10 + 5*math.Sin(2*math.Pi*float64(i)/float64(period)) + noise*rng.NormFloat64()
	}
	return x
}

func whiteNoise(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestACFWhiteNoiseVsAR(t *testing.T) {
	wn := whiteNoise(5000, 1)
	a := ACF(wn, 5)
	for lag, v := range a {
		if math.Abs(v) > 0.08 {
			t.Errorf("white noise acf[%d] = %v", lag+1, v)
		}
	}
	// AR(1) with phi = 0.8.
	rng := rand.New(rand.NewSource(2))
	ar := make([]float64, 5000)
	for i := 1; i < len(ar); i++ {
		ar[i] = 0.8*ar[i-1] + rng.NormFloat64()
	}
	a = ACF(ar, 3)
	almost(t, a[0], 0.8, 0.05, "AR(1) acf1")
	almost(t, a[1], 0.64, 0.07, "AR(1) acf2")
}

func TestACFDegenerate(t *testing.T) {
	a := ACF([]float64{5, 5, 5, 5}, 3)
	for _, v := range a {
		if v != 0 {
			t.Errorf("constant series acf = %v", a)
		}
	}
	if got := ACF([]float64{1}, 2); got[0] != 0 {
		t.Error("single point acf should be zero")
	}
	if got := ACFAt([]float64{1, 2, 3}, 0); got != 1 {
		t.Error("lag 0 acf should be 1")
	}
}

func TestPACFAR2(t *testing.T) {
	// For an AR(2) process, PACF cuts off after lag 2.
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 8000)
	for i := 2; i < len(x); i++ {
		x[i] = 0.5*x[i-1] + 0.3*x[i-2] + rng.NormFloat64()
	}
	p := PACF(x, 5)
	almost(t, p[1], 0.3, 0.05, "AR(2) pacf2")
	for lag := 2; lag < 5; lag++ {
		if math.Abs(p[lag]) > 0.07 {
			t.Errorf("AR(2) pacf[%d] = %v, want ~0", lag+1, p[lag])
		}
	}
}

func TestDiff(t *testing.T) {
	x := []float64{1, 4, 9, 16}
	d1 := Diff(x, 1)
	want := []float64{3, 5, 7}
	for i := range want {
		if d1[i] != want[i] {
			t.Fatalf("diff1 = %v", d1)
		}
	}
	d2 := Diff(x, 2)
	if len(d2) != 2 || d2[0] != 2 || d2[1] != 2 {
		t.Fatalf("diff2 = %v", d2)
	}
	if Diff([]float64{1}, 1) != nil {
		t.Error("diff of singleton should be nil")
	}
	sd := SeasonalDiff([]float64{1, 2, 3, 4, 5}, 2)
	if len(sd) != 3 || sd[0] != 2 {
		t.Fatalf("seasonal diff = %v", sd)
	}
}

func TestDecompose(t *testing.T) {
	period := 24
	n := 24 * 20
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 0.05*float64(i) + 8*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	d, err := Decompose(x, period)
	if err != nil {
		t.Fatal(err)
	}
	// Noise-free seasonal series: strengths near 1, remainder near 0.
	if s := d.SeasonalStrength(); s < 0.95 {
		t.Errorf("seasonal strength = %v, want ~1", s)
	}
	if s := d.TrendStrength(); s < 0.95 {
		t.Errorf("trend strength = %v, want ~1", s)
	}
	for i := 2 * period; i < n-2*period; i++ {
		if math.Abs(d.Remainder[i]) > 0.5 {
			t.Fatalf("remainder[%d] = %v, want ~0", i, d.Remainder[i])
		}
	}
	peak, trough := d.PeakTrough()
	// sin peaks at phase period/4 (1-based: 7), troughs at 3·period/4 (19).
	if peak < 6 || peak > 8 {
		t.Errorf("peak phase = %d, want ~7", peak)
	}
	if trough < 18 || trough > 20 {
		t.Errorf("trough phase = %d, want ~19", trough)
	}
}

func TestDecomposeWhiteNoiseWeakSeasonality(t *testing.T) {
	x := whiteNoise(2000, 5)
	d, err := Decompose(x, 24)
	if err != nil {
		t.Fatal(err)
	}
	if s := d.SeasonalStrength(); s > 0.3 {
		t.Errorf("white noise seasonal strength = %v, want small", s)
	}
}

func TestDecomposeErrors(t *testing.T) {
	if _, err := Decompose(whiteNoise(10, 1), 1); err == nil {
		t.Error("period 1 should error")
	}
	if _, err := Decompose(whiteNoise(10, 1), 24); err == nil {
		t.Error("short series should error")
	}
}

func TestLinearityCurvature(t *testing.T) {
	n := 400
	lin := make([]float64, n)
	quad := make([]float64, n)
	for i := range lin {
		lin[i] = 3 * float64(i)
		c := float64(i) - float64(n-1)/2
		quad[i] = c * c
	}
	d := &Decomposition{Trend: lin, Seasonal: make([]float64, n), Remainder: make([]float64, n), Period: 10}
	l1, c1 := d.LinearityCurvature()
	if l1 <= 0 {
		t.Errorf("rising line linearity = %v, want > 0", l1)
	}
	if math.Abs(c1) > math.Abs(l1)/1000 {
		t.Errorf("line curvature = %v, want ~0", c1)
	}
	d.Trend = quad
	l2, c2 := d.LinearityCurvature()
	if c2 <= 0 {
		t.Errorf("parabola curvature = %v, want > 0", c2)
	}
	if math.Abs(l2) > math.Abs(c2)/1000 {
		t.Errorf("parabola linearity = %v, want ~0", l2)
	}
}

func TestLevelShiftDetectsStep(t *testing.T) {
	n := 600
	x := make([]float64, n)
	for i := range x {
		if i >= 300 {
			x[i] = 10
		}
	}
	r := LevelShift(x, 50)
	almost(t, r.Max, 10, 1e-9, "level shift magnitude")
	if r.Time < 250 || r.Time > 350 {
		t.Errorf("level shift time = %d, want near 300", r.Time)
	}
	// Variance shift on a variance change point.
	rng := rand.New(rand.NewSource(4))
	for i := range x {
		if i < 300 {
			x[i] = rng.NormFloat64() * 0.1
		} else {
			x[i] = rng.NormFloat64() * 5
		}
	}
	v := VarShift(x, 50)
	if v.Max < 10 {
		t.Errorf("var shift = %v, want large", v.Max)
	}
	if v.Time < 250 || v.Time > 350 {
		t.Errorf("var shift time = %d, want near 300", v.Time)
	}
}

func TestKLShiftDetectsDistributionChange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 800
	shifted := make([]float64, n)
	stable := make([]float64, n)
	for i := range shifted {
		stable[i] = rng.NormFloat64()
		if i < n/2 {
			shifted[i] = rng.NormFloat64()
		} else {
			shifted[i] = 8 + rng.NormFloat64()
		}
	}
	rs := KLShift(shifted, 80)
	rn := KLShift(stable, 80)
	if rs.Max <= rn.Max {
		t.Errorf("distribution change KL %v should exceed stable KL %v", rs.Max, rn.Max)
	}
	if rs.Time < n/2-120 || rs.Time > n/2+120 {
		t.Errorf("KL shift time = %d, want near %d", rs.Time, n/2)
	}
}

func TestShiftDegenerate(t *testing.T) {
	if r := LevelShift([]float64{1, 2, 3}, 10); r.Max != 0 {
		t.Error("short series level shift should be 0")
	}
	if r := KLShift(make([]float64, 100), 10); r.Max != 0 {
		t.Error("constant series KL shift should be 0")
	}
}

func TestKPSS(t *testing.T) {
	// Stationary noise: small statistic. Random walk: large statistic.
	noise := whiteNoise(2000, 7)
	rw := make([]float64, 2000)
	rng := rand.New(rand.NewSource(8))
	for i := 1; i < len(rw); i++ {
		rw[i] = rw[i-1] + rng.NormFloat64()
	}
	kNoise := KPSS(noise)
	kRW := KPSS(rw)
	if kNoise > 0.5 {
		t.Errorf("KPSS(noise) = %v, want < 0.5", kNoise)
	}
	if kRW < 1 {
		t.Errorf("KPSS(random walk) = %v, want > 1", kRW)
	}
}

func TestPhillipsPerron(t *testing.T) {
	noise := whiteNoise(2000, 9)
	rw := make([]float64, 2000)
	rng := rand.New(rand.NewSource(10))
	for i := 1; i < len(rw); i++ {
		rw[i] = rw[i-1] + rng.NormFloat64()
	}
	ppNoise := PhillipsPerron(noise)
	ppRW := PhillipsPerron(rw)
	if ppNoise > -100 {
		t.Errorf("PP(noise) = %v, want strongly negative", ppNoise)
	}
	if ppRW < -30 {
		t.Errorf("PP(random walk) = %v, want near 0", ppRW)
	}
}

func TestARCHStat(t *testing.T) {
	// GARCH-like series has ARCH effects; white noise does not.
	rng := rand.New(rand.NewSource(11))
	n := 3000
	arch := make([]float64, n)
	sigma2 := 1.0
	for i := 1; i < n; i++ {
		sigma2 = 0.1 + 0.8*arch[i-1]*arch[i-1]
		arch[i] = math.Sqrt(sigma2) * rng.NormFloat64()
	}
	aArch := ARCHStat(arch)
	aNoise := ARCHStat(whiteNoise(n, 12))
	if aArch <= aNoise {
		t.Errorf("ARCH stat %v should exceed white noise %v", aArch, aNoise)
	}
}

func TestSpectralEntropy(t *testing.T) {
	sine := seasonalSeries(2048, 64, 1, 0)
	noise := whiteNoise(2048, 13)
	es := SpectralEntropy(sine)
	en := SpectralEntropy(noise)
	if es > 0.4 {
		t.Errorf("entropy(sine) = %v, want small", es)
	}
	if en < 0.8 {
		t.Errorf("entropy(noise) = %v, want near 1", en)
	}
}

func TestHurst(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Persistent (trending) series vs white noise.
	rw := make([]float64, 4000)
	for i := 1; i < len(rw); i++ {
		rw[i] = rw[i-1] + rng.NormFloat64()
	}
	hRW := Hurst(rw)
	hNoise := Hurst(whiteNoise(4000, 15))
	if hRW < hNoise {
		t.Errorf("Hurst(random walk) %v should exceed Hurst(noise) %v", hRW, hNoise)
	}
	if hNoise < 0.3 || hNoise > 0.75 {
		t.Errorf("Hurst(noise) = %v, want near 0.5", hNoise)
	}
}

func TestCrossingPointsAndFlatSpots(t *testing.T) {
	alternating := make([]float64, 100)
	for i := range alternating {
		if i%2 == 0 {
			alternating[i] = 1
		} else {
			alternating[i] = -1
		}
	}
	if got := CrossingPoints(alternating); got != 99 {
		t.Errorf("alternating crossings = %v, want 99", got)
	}
	flat := make([]float64, 100)
	for i := range flat {
		if i < 60 {
			flat[i] = 0.01 * float64(i%3)
		} else {
			flat[i] = 100
		}
	}
	if got := FlatSpots(flat); got < 40 {
		t.Errorf("flat spots = %v, want >= 40", got)
	}
	if got := FlatSpots([]float64{5, 5, 5}); got != 3 {
		t.Errorf("constant flat spots = %v, want 3", got)
	}
}

func TestHoltParameters(t *testing.T) {
	// A strongly trending series should prefer high beta responsiveness.
	x := make([]float64, 300)
	for i := range x {
		x[i] = float64(i) * 2
	}
	alpha, beta := HoltParameters(x)
	if alpha <= 0 || alpha >= 1 || beta <= 0 || beta >= 1 {
		t.Errorf("holt parameters out of range: %v, %v", alpha, beta)
	}
	if got := holtSSE(x, alpha, beta); got > 1e-6 {
		t.Errorf("holt SSE on pure trend = %v, want ~0", got)
	}
}

func TestHWParameters(t *testing.T) {
	x := seasonalSeries(600, 24, 16, 0.1)
	a, b, g := HWParameters(x, 24)
	if a <= 0 || b <= 0 || g <= 0 {
		t.Errorf("HW parameters = %v %v %v, want positive", a, b, g)
	}
	if a2, _, _ := HWParameters(x[:30], 24); a2 != 0 {
		t.Error("short series should return zero parameters")
	}
}

func TestExtractFullVector(t *testing.T) {
	x := seasonalSeries(2000, 48, 17, 0.5)
	f, err := Extract(x, Options{Period: 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(f) < 42 {
		t.Fatalf("extracted %d features, want >= 42", len(f))
	}
	for _, name := range []string{
		"max_kl_shift", "max_level_shift", "max_var_shift", "mean", "var",
		"seas_acf1", "x_pacf5", "unitroot_pp", "unitroot_kpss", "seas_strength",
		"flat_spots", "diff1_acf1", "diff2x_pacf5", "e_acf1", "beta", "crossing_points",
	} {
		if _, ok := f[name]; !ok {
			t.Errorf("missing paper characteristic %q", name)
		}
	}
	for k, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("feature %q is %v", k, v)
		}
	}
	if f["seas_strength"] < 0.5 {
		t.Errorf("seasonal series seas_strength = %v, want high", f["seas_strength"])
	}
	if f["seas_acf1"] < 0.5 {
		t.Errorf("seasonal series seas_acf1 = %v, want high", f["seas_acf1"])
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := Extract(whiteNoise(30, 1), Options{Period: 12}); err == nil {
		t.Error("short series should error")
	}
	if _, err := Extract(whiteNoise(1000, 1), Options{Period: 1}); err == nil {
		t.Error("period 1 should error")
	}
}

func TestDeltaAndRelativeDelta(t *testing.T) {
	base := Vector{"a": 2, "b": 0, "c": -4}
	other := Vector{"a": 3, "b": 0.5, "c": -4}
	d := Delta(base, other)
	if d["a"] != 1 || d["b"] != 0.5 || d["c"] != 0 {
		t.Fatalf("delta = %v", d)
	}
	r := RelativeDelta(base, other)
	almost(t, r["a"], 50, 1e-9, "rel delta a")
	almost(t, r["b"], 0.5, 1e-9, "rel delta zero base")
	almost(t, r["c"], 0, 1e-9, "rel delta c")
}

func TestExtractDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		x := seasonalSeries(600, 24, seed, 1)
		a, err := Extract(x, Options{Period: 24})
		if err != nil {
			return false
		}
		b, err := Extract(x, Options{Period: 24})
		if err != nil {
			return false
		}
		for k, v := range a {
			if b[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestCompressionSmoothingReducesKL(t *testing.T) {
	// A PMC-like constant approximation of noisy data reduces within-window
	// diversity, which the paper observes as level/variance shifts staying
	// small while flat_spots grows.
	x := seasonalSeries(1200, 48, 18, 1.0)
	smoothed := make([]float64, len(x))
	for i := 0; i < len(x); i += 24 {
		end := i + 24
		if end > len(x) {
			end = len(x)
		}
		m := mean(x[i:end])
		for j := i; j < end; j++ {
			smoothed[j] = m
		}
	}
	fo, err := Extract(x, Options{Period: 48})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Extract(smoothed, Options{Period: 48})
	if err != nil {
		t.Fatal(err)
	}
	if fs["flat_spots"] <= fo["flat_spots"] {
		t.Errorf("smoothing should increase flat_spots: %v -> %v", fo["flat_spots"], fs["flat_spots"])
	}
	// Seasonal strength should survive constant-segment smoothing.
	if fs["seas_strength"] < fo["seas_strength"]*0.7 {
		t.Errorf("seasonality collapsed: %v -> %v", fo["seas_strength"], fs["seas_strength"])
	}
}

func TestVectorNames(t *testing.T) {
	v := Vector{"b": 1, "a": 2, "c": 3}
	names := v.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestCentredMAOddPeriod(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
	d, err := Decompose(append(x, x...), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Linear data: trend follows the data closely in the interior.
	if math.Abs(d.Trend[5]-6) > 1.5 {
		t.Fatalf("trend[5] = %v", d.Trend[5])
	}
}

func TestCheckDrift(t *testing.T) {
	raw := seasonalSeries(1200, 48, 19, 0.5)
	// Identity transform: negligible drift, no alert.
	rep, err := CheckDrift(raw, raw, 48)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alert {
		t.Errorf("identical data should not alert: %+v", rep)
	}
	// Destroying the seasonality must trip the alert.
	flat := make([]float64, len(raw))
	m := mean(raw)
	for i := range flat {
		flat[i] = m
	}
	for i := 0; i < len(flat); i += 200 {
		flat[i] = raw[i] // keep a little variation so features stay defined
	}
	rep, err = CheckDrift(raw, flat, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alert || len(rep.Reasons) == 0 {
		t.Errorf("flattened data should alert: %+v", rep)
	}
	for _, k := range KeyIndicators {
		if _, ok := rep.RelDiff[k]; !ok {
			t.Errorf("missing indicator %s", k)
		}
	}
	if _, err := CheckDrift(raw[:10], raw[:10], 48); err == nil {
		t.Error("too-short input should error")
	}
}
