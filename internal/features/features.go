package features

import (
	"errors"
	"math"
	"sort"
)

// Options configures feature extraction.
type Options struct {
	// Period is the dominant seasonal period of the series (e.g. 96 for
	// 15-minute data with daily seasonality).
	Period int
	// ShiftWindow is the rolling-window width for the level/variance/KL
	// shift features. Zero selects min(Period, len/4).
	ShiftWindow int
}

// Vector is a named feature vector.
type Vector map[string]float64

// Names returns the feature names in sorted order.
func (v Vector) Names() []string {
	out := make([]string, 0, len(v))
	for k := range v {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Extract computes the full tsfeatures-style characteristic vector of x
// (≥42 features; the paper's analyses use 42 of them). The series must be
// at least four seasonal periods long.
func Extract(x []float64, opts Options) (Vector, error) {
	n := len(x)
	m := opts.Period
	if m < 2 {
		return nil, errors.New("features: seasonal period must be at least 2")
	}
	if n < 4*m || n < 40 {
		return nil, errors.New("features: series too short for feature extraction")
	}
	w := opts.ShiftWindow
	if w <= 0 {
		w = m
		if w > n/4 {
			w = n / 4
		}
		if w < 10 {
			w = 10
		}
	}

	f := Vector{}
	f["mean"] = mean(x)
	f["var"] = variance(x)

	// Autocorrelation features.
	acf10 := ACF(x, 10)
	f["x_acf1"] = acf10[0]
	f["x_acf10"] = SumSq(acf10)
	d1 := Diff(x, 1)
	a := ACF(d1, 10)
	f["diff1_acf1"] = a[0]
	f["diff1_acf10"] = SumSq(a)
	d2 := Diff(x, 2)
	a = ACF(d2, 10)
	f["diff2_acf1"] = a[0]
	f["diff2_acf10"] = SumSq(a)
	f["seas_acf1"] = ACFAt(x, m)

	// Partial autocorrelation features.
	f["x_pacf5"] = SumSq(PACF(x, 5))
	f["diff1x_pacf5"] = SumSq(PACF(d1, 5))
	f["diff2x_pacf5"] = SumSq(PACF(d2, 5))
	sp := PACF(x, m)
	f["seas_pacf"] = sp[m-1]

	// Spectral entropy, long memory, tiled-window features.
	f["entropy"] = SpectralEntropy(x)
	f["hurst"] = Hurst(x)
	lump, stab := LumpinessStability(x, w)
	f["lumpiness"] = lump
	f["stability"] = stab

	// Rolling shift features.
	ls := LevelShift(x, w)
	f["max_level_shift"] = ls.Max
	f["time_level_shift"] = float64(ls.Time)
	vs := VarShift(x, w)
	f["max_var_shift"] = vs.Max
	f["time_var_shift"] = float64(vs.Time)
	ks := KLShift(x, w)
	f["max_kl_shift"] = ks.Max
	f["time_kl_shift"] = float64(ks.Time)

	// Misc descriptors.
	f["crossing_points"] = CrossingPoints(x)
	f["flat_spots"] = FlatSpots(x)

	// Unit roots and heteroskedasticity.
	f["unitroot_kpss"] = KPSS(x)
	f["unitroot_pp"] = PhillipsPerron(x)
	f["arch_stat"] = ARCHStat(x)

	// Exponential smoothing parameters.
	alpha, beta := HoltParameters(x)
	f["alpha"] = alpha
	f["beta"] = beta
	ha, hb, hg := HWParameters(x, m)
	f["hw_alpha"] = ha
	f["hw_beta"] = hb
	f["hw_gamma"] = hg

	// Decomposition features.
	dec, err := Decompose(x, m)
	if err != nil {
		return nil, err
	}
	f["nperiods"] = 1
	f["seasonal_period"] = float64(m)
	f["trend"] = dec.TrendStrength()
	f["seas_strength"] = dec.SeasonalStrength()
	f["spike"] = dec.Spike()
	lin, curv := dec.LinearityCurvature()
	f["linearity"] = lin
	f["curvature"] = curv
	ea := ACF(dec.Remainder, 10)
	f["e_acf1"] = ea[0]
	f["e_acf10"] = SumSq(ea)
	peak, trough := dec.PeakTrough()
	f["peak"] = float64(peak)
	f["trough"] = float64(trough)

	for k, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			f[k] = 0
		}
	}
	return f, nil
}

// Delta returns per-feature differences other − base, the quantity the
// paper's GBoost/SHAP surrogate is trained on.
func Delta(base, other Vector) Vector {
	out := Vector{}
	for k, b := range base {
		out[k] = other[k] - b
	}
	return out
}

// RelativeDelta returns per-feature absolute relative differences in
// percent: |other−base| / |base| · 100 (paper Table 6). Features whose base
// value is (near) zero report the absolute difference instead.
func RelativeDelta(base, other Vector) Vector {
	out := Vector{}
	for k, b := range base {
		d := math.Abs(other[k] - b)
		if math.Abs(b) > 1e-9 {
			out[k] = d / math.Abs(b) * 100
		} else {
			out[k] = d
		}
	}
	return out
}
