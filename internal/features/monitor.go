package features

import "math"

// KeyIndicators are the five characteristics the paper's sensitivity
// analysis (Table 6) singles out as the ones to monitor when running
// forecasting on lossy-compressed data.
var KeyIndicators = []string{
	"max_kl_shift",
	"max_level_shift",
	"seas_acf1",
	"max_var_shift",
	"unitroot_pp",
}

// DriftReport summarises how far the decompressed data's key
// characteristics have drifted from the raw data's.
type DriftReport struct {
	// RelDiff holds the relative difference in percent per key indicator.
	RelDiff map[string]float64
	// Alert is set when any of the stable indicators (max_level_shift,
	// seas_acf1, max_var_shift) drifts beyond the paper's guideline: "when
	// these characteristics show small deviations of even 1%, it is a sign
	// that the forecasting models will not perform optimally" (§4.3.3) —
	// with a 5% alert threshold on unitroot_pp, in line with PMC's average
	// impact.
	Alert bool
	// Reasons lists the indicators that triggered the alert.
	Reasons []string
}

// alertThresholds implement the §4.3.3 monitoring guideline.
var alertThresholds = map[string]float64{
	"max_level_shift": 1,
	"seas_acf1":       1,
	"max_var_shift":   1,
	"unitroot_pp":     5,
}

// CheckDrift extracts the key indicators on the raw and decompressed values
// and reports their relative drift with the paper's alert thresholds.
func CheckDrift(raw, decompressed []float64, period int) (*DriftReport, error) {
	fr, err := Extract(raw, Options{Period: period})
	if err != nil {
		return nil, err
	}
	fd, err := Extract(decompressed, Options{Period: period})
	if err != nil {
		return nil, err
	}
	rel := RelativeDelta(fr, fd)
	rep := &DriftReport{RelDiff: map[string]float64{}}
	for _, k := range KeyIndicators {
		rep.RelDiff[k] = rel[k]
		if thr, ok := alertThresholds[k]; ok && !math.IsNaN(rel[k]) && rel[k] > thr {
			rep.Alert = true
			rep.Reasons = append(rep.Reasons, k)
		}
	}
	return rep, nil
}
