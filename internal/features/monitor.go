package features

import (
	"errors"
	"math"
)

// KeyIndicators are the five characteristics the paper's sensitivity
// analysis (Table 6) singles out as the ones to monitor when running
// forecasting on lossy-compressed data.
var KeyIndicators = []string{
	"max_kl_shift",
	"max_level_shift",
	"seas_acf1",
	"max_var_shift",
	"unitroot_pp",
}

// DriftReport summarises how far the decompressed data's key
// characteristics have drifted from the raw data's.
type DriftReport struct {
	// RelDiff holds the relative difference in percent per key indicator.
	RelDiff map[string]float64
	// Alert is set when any of the stable indicators (max_level_shift,
	// seas_acf1, max_var_shift) drifts beyond the paper's guideline: "when
	// these characteristics show small deviations of even 1%, it is a sign
	// that the forecasting models will not perform optimally" (§4.3.3) —
	// with a 5% alert threshold on unitroot_pp, in line with PMC's average
	// impact.
	Alert bool
	// Reasons lists the indicators that triggered the alert.
	Reasons []string
}

// alertThresholds implement the §4.3.3 monitoring guideline.
var alertThresholds = map[string]float64{
	"max_level_shift": 1,
	"seas_acf1":       1,
	"max_var_shift":   1,
	"unitroot_pp":     5,
}

// KeyIndicatorVector computes only the five monitored indicators, with the
// same window selection, validation, and NaN/Inf zeroing as the full
// Extract — the values are identical, but the monitor loop skips the ~37
// features it never reads, which is what makes per-stride online
// re-evaluation affordable.
func KeyIndicatorVector(x []float64, period int) (Vector, error) {
	n := len(x)
	if period < 2 {
		return nil, errors.New("features: seasonal period must be at least 2")
	}
	if n < 4*period || n < 40 {
		return nil, errors.New("features: series too short for feature extraction")
	}
	w := period
	if w > n/4 {
		w = n / 4
	}
	if w < 10 {
		w = 10
	}
	f := Vector{
		"max_kl_shift":    KLShift(x, w).Max,
		"max_level_shift": LevelShift(x, w).Max,
		"seas_acf1":       ACFAt(x, period),
		"max_var_shift":   VarShift(x, w).Max,
		"unitroot_pp":     PhillipsPerron(x),
	}
	for k, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			f[k] = 0
		}
	}
	return f, nil
}

// CheckDrift extracts the key indicators on the raw and decompressed values
// and reports their relative drift with the paper's alert thresholds.
func CheckDrift(raw, decompressed []float64, period int) (*DriftReport, error) {
	fr, err := KeyIndicatorVector(raw, period)
	if err != nil {
		return nil, err
	}
	fd, err := KeyIndicatorVector(decompressed, period)
	if err != nil {
		return nil, err
	}
	rel := RelativeDelta(fr, fd)
	rep := &DriftReport{RelDiff: map[string]float64{}}
	for _, k := range KeyIndicators {
		rep.RelDiff[k] = rel[k]
		if thr, ok := alertThresholds[k]; ok && !math.IsNaN(rel[k]) && rel[k] > thr {
			rep.Alert = true
			rep.Reasons = append(rep.Reasons, k)
		}
	}
	return rep, nil
}
