package features

import (
	"math"
)

// ShiftResult holds the maximum shift between consecutive rolling windows
// and the (0-based) index at which it occurs.
type ShiftResult struct {
	Max  float64
	Time int
}

// LevelShift returns the maximum absolute difference between the means of
// consecutive (non-overlapping, width-w) sliding windows — tsfeatures'
// max_level_shift / time_level_shift.
func LevelShift(x []float64, w int) ShiftResult {
	return rollShift(x, w, false)
}

// VarShift returns the maximum absolute difference between the variances of
// consecutive sliding windows — tsfeatures' max_var_shift / time_var_shift.
func VarShift(x []float64, w int) ShiftResult {
	return rollShift(x, w, true)
}

// rollShift scans every pair of adjacent width-w windows in O(n) by sliding
// compensated running sums through a ShiftTracker instead of recomputing
// each window's statistic from scratch (the previous O(n·w) form). The data
// is centred on its global mean first — both the mean deltas and the
// variances are invariant under the shift — so the running sum-of-squares
// never suffers the catastrophic cancellation a large offset would cause.
// Non-finite inputs fall back to the windowed reference scan, which confines
// a NaN to the windows that contain it rather than poisoning the running
// sums for the rest of the series.
func rollShift(x []float64, w int, varMode bool) ShiftResult {
	n := len(x)
	if w < 2 || n < 2*w {
		return ShiftResult{}
	}
	var mu float64
	for _, v := range x {
		mu += v
	}
	mu /= float64(n)
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return rollShiftRef(x, w, varMode)
	}
	t := NewShiftTracker(w)
	res := ShiftResult{Max: -1}
	for _, v := range x {
		p, ok := t.Push(v - mu)
		if !ok {
			continue
		}
		d := p.LevelDelta
		if varMode {
			d = p.VarDelta
		}
		if d > res.Max {
			res.Max, res.Time = d, int(p.Index)
		}
	}
	if res.Max < 0 {
		res.Max = 0
	}
	return res
}

// rollShiftRef is the reference O(n·w) scan: every window statistic is
// recomputed from scratch. It remains the NaN/Inf fallback and the oracle
// the differential tests hold the sliding implementation against.
func rollShiftRef(x []float64, w int, varMode bool) ShiftResult {
	stat := mean
	if varMode {
		stat = variance
	}
	n := len(x)
	if w < 2 || n < 2*w {
		return ShiftResult{}
	}
	// Rolling statistic over every window start.
	nw := n - w + 1
	vals := make([]float64, nw)
	for i := 0; i < nw; i++ {
		vals[i] = stat(x[i : i+w])
	}
	res := ShiftResult{Max: -1}
	for i := 0; i+w < nw; i++ {
		d := math.Abs(vals[i+w] - vals[i])
		if d > res.Max {
			res.Max, res.Time = d, i+w
		}
	}
	if res.Max < 0 {
		res.Max = 0
	}
	return res
}

// KLShift returns the maximum Kullback-Leibler divergence between Gaussian
// kernel density estimates of consecutive width-w windows — tsfeatures'
// max_kl_shift, the characteristic the paper identifies as the strongest
// predictor of compression impact on forecasting accuracy.
//
// Densities are evaluated on a common grid spanning the full data range.
// For efficiency the window slides in steps of max(1, w/8) rather than 1;
// the maximum over this subsampled set converges to the full-scan maximum
// for the smooth density sequences time series produce.
func KLShift(x []float64, w int) ShiftResult {
	n := len(x)
	if w < 2 || n < 2*w {
		return ShiftResult{}
	}
	lo, hi := x[0], x[0]
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		return ShiftResult{}
	}
	const gridN = 100
	grid := make([]float64, gridN)
	for i := range grid {
		grid[i] = lo + (hi-lo)*float64(i)/float64(gridN-1)
	}
	// Silverman bandwidth on the full series.
	sd := math.Sqrt(variance(x))
	if sd == 0 {
		return ShiftResult{}
	}
	bw := 1.06 * sd * math.Pow(float64(n), -0.2)

	step := w / 8
	if step < 1 {
		step = 1
	}
	starts := make([]int, 0, n/step)
	for s := 0; s+2*w <= n; s += step {
		starts = append(starts, s)
	}
	if len(starts) == 0 {
		return ShiftResult{}
	}
	dens := func(window []float64) []float64 {
		d := make([]float64, gridN)
		inv := 1 / (bw * math.Sqrt(2*math.Pi) * float64(len(window)))
		for gi, g := range grid {
			var s float64
			for _, v := range window {
				z := (g - v) / bw
				s += math.Exp(-0.5 * z * z)
			}
			d[gi] = s*inv + 1e-12
		}
		// Normalise to a discrete distribution over the grid.
		var tot float64
		for _, v := range d {
			tot += v
		}
		for i := range d {
			d[i] /= tot
		}
		return d
	}
	res := ShiftResult{Max: -1}
	cache := map[int][]float64{}
	densityAt := func(s int) []float64 {
		if d, ok := cache[s]; ok {
			return d
		}
		d := dens(x[s : s+w])
		cache[s] = d
		return d
	}
	for _, s := range starts {
		p := densityAt(s)
		q := densityAt(s + w)
		var kl float64
		for i := range p {
			kl += p[i] * math.Log(p[i]/q[i])
		}
		if kl > res.Max {
			res.Max, res.Time = kl, s+w
		}
	}
	if res.Max < 0 {
		res.Max = 0
	}
	return res
}
