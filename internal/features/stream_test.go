package features

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestRollShiftDifferential holds the O(n) sliding implementation against
// the O(n·w) reference scan on a variety of signals.
func TestRollShiftDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	signals := map[string][]float64{}

	noise := make([]float64, 400)
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	signals["noise"] = noise

	step := make([]float64, 300)
	for i := range step {
		step[i] = rng.NormFloat64() * 0.1
		if i >= 150 {
			step[i] += 5
		}
	}
	signals["step"] = step

	varshift := make([]float64, 300)
	for i := range varshift {
		s := 0.2
		if i >= 180 {
			s = 3
		}
		varshift[i] = rng.NormFloat64() * s
	}
	signals["varshift"] = varshift

	offset := make([]float64, 256)
	for i := range offset {
		offset[i] = 1e6 + math.Sin(float64(i)/7) + rng.NormFloat64()*0.01
	}
	signals["large-offset"] = offset

	signals["constant"] = make([]float64, 100)

	ramp := make([]float64, 90)
	for i := range ramp {
		ramp[i] = float64(i) * 0.5
	}
	signals["ramp"] = ramp

	for name, x := range signals {
		for _, w := range []int{2, 5, 10, 24, len(x)/2 - 1} {
			if w < 2 {
				continue
			}
			for _, varMode := range []bool{false, true} {
				got := rollShift(x, w, varMode)
				want := rollShiftRef(x, w, varMode)
				scale := math.Abs(want.Max)
				if scale < 1 {
					scale = 1
				}
				if math.Abs(got.Max-want.Max) > 1e-9*scale {
					t.Errorf("%s w=%d var=%v: Max=%v want %v", name, w, varMode, got.Max, want.Max)
				}
				if got.Time != want.Time {
					t.Errorf("%s w=%d var=%v: Time=%d want %d", name, w, varMode, got.Time, want.Time)
				}
			}
		}
	}
}

func TestRollShiftNaNFallsBack(t *testing.T) {
	x := make([]float64, 60)
	for i := range x {
		x[i] = float64(i % 7)
	}
	x[30] = math.NaN()
	for _, varMode := range []bool{false, true} {
		got := rollShift(x, 5, varMode)
		want := rollShiftRef(x, 5, varMode)
		// The reference confines the NaN to windows containing it; the two
		// paths must agree because the NaN input routes to the reference.
		if got != want {
			t.Fatalf("var=%v: got %+v want %+v", varMode, got, want)
		}
	}
}

func TestShiftTrackerStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	full := NewShiftTracker(8)
	half := NewShiftTracker(8)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 3
	}
	for _, v := range xs[:50] {
		full.Push(v)
		half.Push(v)
	}
	raw, err := json.Marshal(half.State())
	if err != nil {
		t.Fatal(err)
	}
	var st ShiftTrackerState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := ShiftTrackerFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range xs[50:] {
		pf, okf := full.Push(v)
		pr, okr := restored.Push(v)
		if okf != okr || pf != pr {
			t.Fatalf("restored tracker diverged: %+v/%v vs %+v/%v", pf, okf, pr, okr)
		}
	}
	if _, err := ShiftTrackerFromState(ShiftTrackerState{W: 4, Buf: []float64{1}}); err == nil {
		t.Fatal("malformed tracker state accepted")
	}
}

func TestShiftMonitorDetectsLevelShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewShiftMonitor(24, 4)
	const shiftAt = 300
	var first int64 = -1
	var before int
	for i := 0; i < 600; i++ {
		v := rng.NormFloat64() * 0.2
		if i >= shiftAt {
			v += 4
		}
		for _, a := range m.Push(v) {
			if a.Kind != "level" {
				continue
			}
			if a.Index < shiftAt {
				before++
			} else if first < 0 {
				first = a.Index
			}
		}
	}
	if before != 0 {
		t.Fatalf("%d false level alerts before the shift", before)
	}
	if first < 0 {
		t.Fatal("level shift never detected")
	}
	if delay := first - shiftAt; delay > 24 {
		t.Fatalf("detection delay %d exceeds one window", delay)
	}
}

func TestShiftMonitorStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	full := NewShiftMonitor(10, 3)
	half := NewShiftMonitor(10, 3)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		if i > 120 {
			xs[i] += 6
		}
	}
	for _, v := range xs[:100] {
		full.Push(v)
		half.Push(v)
	}
	raw, err := json.Marshal(half.State())
	if err != nil {
		t.Fatal(err)
	}
	var st ShiftMonitorState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := ShiftMonitorFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range xs[100:] {
		af := full.Push(v)
		ar := restored.Push(v)
		if len(af) != len(ar) {
			t.Fatalf("restored monitor diverged: %v vs %v", af, ar)
		}
		for i := range af {
			if af[i] != ar[i] {
				t.Fatalf("alert %d differs: %+v vs %+v", i, af[i], ar[i])
			}
		}
	}
}

func TestDriftMonitorMatchesBatchCheckDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const period = 12
	m, err := NewDriftMonitor(period, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * m.Window()
	raw := make([]float64, n)
	recon := make([]float64, n)
	for i := range raw {
		raw[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.3
		recon[i] = math.Round(raw[i]*4) / 4 // a coarse quantiser stands in for lossy codecs
	}
	var checks []DriftCheck
	// Push in uneven chunks to exercise the internal point loop.
	for lo := 0; lo < n; {
		hi := lo + 17
		if hi > n {
			hi = n
		}
		got, err := m.Push(raw[lo:hi], recon[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		checks = append(checks, got...)
		lo = hi
	}
	if len(checks) == 0 {
		t.Fatal("no drift checks emitted")
	}
	// Every emitted check must equal the batch CheckDrift over that window.
	w := m.Window()
	for _, c := range checks {
		end := int(c.Index) + 1
		want, err := CheckDrift(raw[end-w:end], recon[end-w:end], period)
		if err != nil {
			t.Fatal(err)
		}
		if c.Report.Alert != want.Alert {
			t.Fatalf("check at %d: alert %v, batch says %v", c.Index, c.Report.Alert, want.Alert)
		}
		for _, k := range KeyIndicators {
			if c.Report.RelDiff[k] != want.RelDiff[k] {
				t.Fatalf("check at %d %s: %v vs batch %v", c.Index, k, c.Report.RelDiff[k], want.RelDiff[k])
			}
		}
	}
	if _, err := m.Push([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDriftMonitorStateRoundTrip(t *testing.T) {
	const period = 12
	full, err := NewDriftMonitor(period, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	half, err := NewDriftMonitor(period, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	n := 2 * full.Window()
	raw := make([]float64, n)
	recon := make([]float64, n)
	for i := range raw {
		raw[i] = math.Sin(2*math.Pi*float64(i)/period) + rng.NormFloat64()*0.2
		recon[i] = raw[i] + 0.05
	}
	if _, err := full.Push(raw[:n/2], recon[:n/2]); err != nil {
		t.Fatal(err)
	}
	if _, err := half.Push(raw[:n/2], recon[:n/2]); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(half.State())
	if err != nil {
		t.Fatal(err)
	}
	var st DriftMonitorState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := DriftMonitorFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := full.Push(raw[n/2:], recon[n/2:])
	if err != nil {
		t.Fatal(err)
	}
	cr, err := restored.Push(raw[n/2:], recon[n/2:])
	if err != nil {
		t.Fatal(err)
	}
	if len(cf) != len(cr) {
		t.Fatalf("restored drift monitor diverged: %d vs %d checks", len(cf), len(cr))
	}
	for i := range cf {
		if cf[i].Index != cr[i].Index || cf[i].Report.Alert != cr[i].Report.Alert {
			t.Fatalf("check %d differs: %+v vs %+v", i, cf[i], cr[i])
		}
		for _, k := range KeyIndicators {
			if cf[i].Report.RelDiff[k] != cr[i].Report.RelDiff[k] {
				t.Fatalf("check %d %s differs", i, k)
			}
		}
	}
	if _, err := NewDriftMonitor(1, 0, 0); err == nil {
		t.Fatal("period 1 accepted")
	}
}
