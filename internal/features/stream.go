package features

import (
	"fmt"
	"math"

	"lossyts/internal/timeseries"
)

// kahan is a compensated running sum. The compensation term is part of the
// serialised state so a restored tracker continues bit-identically.
type kahan struct {
	Sum  float64 `json:"sum"`
	Comp float64 `json:"comp"`
}

func (k *kahan) add(v float64) {
	y := v - k.Comp
	t := k.Sum + y
	k.Comp = (t - k.Sum) - y
	k.Sum = t
}

// ShiftPoint is one emission of a ShiftTracker: the level and variance
// deltas between the two adjacent width-w windows ending at the just-pushed
// value, reported at the global index of the newer window's first point —
// the same coordinate convention as the batch LevelShift/VarShift results.
type ShiftPoint struct {
	Index      int64
	LevelDelta float64
	VarDelta   float64
}

// ShiftTracker computes rolling level- and variance-shift deltas
// incrementally: it holds the last 2w values and compensated running
// sums/sums-of-squares for the two adjacent windows, so each Push is O(1)
// where the batch scan recomputed each window from scratch. It is the engine
// under both the batch LevelShift/VarShift (satellite perf fix) and the
// online ShiftMonitor.
type ShiftTracker struct {
	w     int
	buf   []float64
	count int64
	sumA  kahan // older window: sum
	sqA   kahan // older window: sum of squares
	sumB  kahan // newer window: sum
	sqB   kahan // newer window: sum of squares
}

// NewShiftTracker returns a tracker for adjacent windows of width w (≥ 2).
func NewShiftTracker(w int) *ShiftTracker {
	if w < 2 {
		w = 2
	}
	return &ShiftTracker{w: w, buf: make([]float64, 2*w)}
}

// Window returns the tracker's window width.
func (t *ShiftTracker) Window() int { return t.w }

// Count returns the number of values pushed so far.
func (t *ShiftTracker) Count() int64 { return t.count }

// Push feeds one value. Once 2w values have been seen it reports the deltas
// between the windows x[c−2w+1:c−w+1] and x[c−w+1:c+1] (c the 0-based index
// of the pushed value), at Index c−w+1.
func (t *ShiftTracker) Push(v float64) (ShiftPoint, bool) {
	c := t.count
	size := int64(len(t.buf))
	w64 := int64(t.w)
	if c >= 2*w64 {
		leave := t.buf[c%size] // x[c−2w] lives where v is about to
		t.sumA.add(-leave)
		t.sqA.add(-leave * leave)
	}
	if c >= w64 {
		mv := t.buf[(c-w64)%size] // x[c−w] crosses from B to A
		t.sumB.add(-mv)
		t.sqB.add(-mv * mv)
		t.sumA.add(mv)
		t.sqA.add(mv * mv)
	}
	t.buf[c%size] = v
	t.sumB.add(v)
	t.sqB.add(v * v)
	t.count = c + 1
	if t.count < 2*w64 {
		return ShiftPoint{}, false
	}
	w := float64(t.w)
	varA := (t.sqA.Sum - t.sumA.Sum*t.sumA.Sum/w) / (w - 1)
	varB := (t.sqB.Sum - t.sumB.Sum*t.sumB.Sum/w) / (w - 1)
	if varA < 0 {
		varA = 0
	}
	if varB < 0 {
		varB = 0
	}
	return ShiftPoint{
		Index:      c - w64 + 1,
		LevelDelta: math.Abs(t.sumB.Sum/w - t.sumA.Sum/w),
		VarDelta:   math.Abs(varB - varA),
	}, true
}

// ShiftTrackerState is a tracker's serialisable snapshot.
type ShiftTrackerState struct {
	W     int       `json:"w"`
	Count int64     `json:"count"`
	Buf   []float64 `json:"buf"`
	SumA  kahan     `json:"sum_a"`
	SqA   kahan     `json:"sq_a"`
	SumB  kahan     `json:"sum_b"`
	SqB   kahan     `json:"sq_b"`
}

// State snapshots the tracker.
func (t *ShiftTracker) State() ShiftTrackerState {
	return ShiftTrackerState{
		W:     t.w,
		Count: t.count,
		Buf:   append([]float64(nil), t.buf...),
		SumA:  t.sumA,
		SqA:   t.sqA,
		SumB:  t.sumB,
		SqB:   t.sqB,
	}
}

// ShiftTrackerFromState reconstructs a tracker from a snapshot.
func ShiftTrackerFromState(st ShiftTrackerState) (*ShiftTracker, error) {
	if st.W < 2 || len(st.Buf) != 2*st.W {
		return nil, fmt.Errorf("features: tracker state has %d buffered values for width %d", len(st.Buf), st.W)
	}
	return &ShiftTracker{
		w:     st.W,
		buf:   append([]float64(nil), st.Buf...),
		count: st.Count,
		sumA:  st.SumA,
		sqA:   st.SqA,
		sumB:  st.SumB,
		sqB:   st.SqB,
	}, nil
}

// ShiftAlert is a single-stream drift event: a level or variance shift
// exceeding the monitor's baseline-scaled threshold. Index is the global
// stream index of the point whose arrival triggered the detection — the
// coordinate detection delay is measured in.
type ShiftAlert struct {
	Index     int64   `json:"index"`
	Kind      string  `json:"kind"` // "level" or "variance"
	Delta     float64 `json:"delta"`
	Threshold float64 `json:"threshold"`
}

// ShiftMonitor watches one stream for level and variance shifts. The first
// complete window pair establishes a noise baseline (the older window's
// standard deviation); afterwards a level delta above k·σ₀ or a variance
// delta above k·σ₀² raises an alert. Each alert kind then disarms until its
// delta falls back below half the threshold, so a sustained shift is
// reported once at onset — the detection-delay measurement the bench sweeps.
type ShiftMonitor struct {
	tracker    *ShiftTracker
	k          float64
	baseLevel  float64 // σ₀
	baseVar    float64 // σ₀²
	haveBase   bool
	levelArmed bool
	varArmed   bool
}

// NewShiftMonitor returns a monitor with window width w and threshold
// multiplier k (≤ 0 selects 4).
func NewShiftMonitor(w int, k float64) *ShiftMonitor {
	if k <= 0 {
		k = 4
	}
	return &ShiftMonitor{tracker: NewShiftTracker(w), k: k, levelArmed: true, varArmed: true}
}

// Push feeds one value and returns any alerts it raises.
func (m *ShiftMonitor) Push(v float64) []ShiftAlert {
	p, ok := m.tracker.Push(v)
	if !ok {
		return nil
	}
	if !m.haveBase {
		w := float64(m.tracker.w)
		varA := (m.tracker.sqA.Sum - m.tracker.sumA.Sum*m.tracker.sumA.Sum/w) / (w - 1)
		if varA < 0 {
			varA = 0
		}
		m.baseVar = varA
		m.baseLevel = math.Sqrt(varA)
		m.haveBase = true
	}
	var alerts []ShiftAlert
	at := p.Index + int64(m.tracker.w) - 1 // the just-pushed point
	lt := m.k * m.baseLevel
	vt := m.k * m.baseVar
	if m.levelArmed && lt > 0 && p.LevelDelta > lt {
		alerts = append(alerts, ShiftAlert{Index: at, Kind: "level", Delta: p.LevelDelta, Threshold: lt})
		m.levelArmed = false
	} else if !m.levelArmed && p.LevelDelta < lt/2 {
		m.levelArmed = true
	}
	if m.varArmed && vt > 0 && p.VarDelta > vt {
		alerts = append(alerts, ShiftAlert{Index: at, Kind: "variance", Delta: p.VarDelta, Threshold: vt})
		m.varArmed = false
	} else if !m.varArmed && p.VarDelta < vt/2 {
		m.varArmed = true
	}
	return alerts
}

// ShiftMonitorState is a monitor's serialisable snapshot.
type ShiftMonitorState struct {
	K          float64           `json:"k"`
	BaseLevel  float64           `json:"base_level"`
	BaseVar    float64           `json:"base_var"`
	HaveBase   bool              `json:"have_base"`
	LevelArmed bool              `json:"level_armed"`
	VarArmed   bool              `json:"var_armed"`
	Tracker    ShiftTrackerState `json:"tracker"`
}

// State snapshots the monitor.
func (m *ShiftMonitor) State() ShiftMonitorState {
	return ShiftMonitorState{
		K:          m.k,
		BaseLevel:  m.baseLevel,
		BaseVar:    m.baseVar,
		HaveBase:   m.haveBase,
		LevelArmed: m.levelArmed,
		VarArmed:   m.varArmed,
		Tracker:    m.tracker.State(),
	}
}

// ShiftMonitorFromState reconstructs a monitor from a snapshot.
func ShiftMonitorFromState(st ShiftMonitorState) (*ShiftMonitor, error) {
	tr, err := ShiftTrackerFromState(st.Tracker)
	if err != nil {
		return nil, err
	}
	return &ShiftMonitor{
		tracker:    tr,
		k:          st.K,
		baseLevel:  st.BaseLevel,
		baseVar:    st.BaseVar,
		haveBase:   st.HaveBase,
		levelArmed: st.LevelArmed,
		varArmed:   st.VarArmed,
	}, nil
}

// DriftCheck is one paired raw-vs-reconstruction drift evaluation: the §4.3.3
// key-indicator report over the trailing window, stamped with the global
// index of the newest point it covers.
type DriftCheck struct {
	Index  int64
	Report *DriftReport
}

// DriftMonitor is the online form of CheckDrift: it holds paired sliding
// windows of the raw and reconstructed stream and re-evaluates the five key
// indicators every `every` points once the windows are full, so compression-
// induced characteristic drift is detected as data arrives instead of in a
// one-shot batch pass.
type DriftMonitor struct {
	period    int
	every     int
	raw       *timeseries.Ring
	recon     *timeseries.Ring
	lastCheck int64 // total-points mark of the previous evaluation
	scratchR  []float64
	scratchD  []float64
}

// NewDriftMonitor returns a monitor for the given seasonal period. window
// (≤ 0 selects 4·period) is the trailing evaluation window — it is bumped to
// the feature extractor's minimums (4·period and 40 points) if smaller.
// every (≤ 0 selects period) is the evaluation stride.
func NewDriftMonitor(period, window, every int) (*DriftMonitor, error) {
	if period < 2 {
		return nil, fmt.Errorf("features: drift monitor period must be at least 2, got %d", period)
	}
	if window <= 0 {
		window = 4 * period
	}
	if window < 4*period {
		window = 4 * period
	}
	if window < 40 {
		window = 40
	}
	if every <= 0 {
		every = period
	}
	return &DriftMonitor{
		period: period,
		every:  every,
		raw:    timeseries.NewRing(window),
		recon:  timeseries.NewRing(window),
	}, nil
}

// Window returns the evaluation window size.
func (m *DriftMonitor) Window() int { return m.raw.Cap() }

// Push feeds aligned raw and reconstructed values (same length) and returns
// the drift checks that became due. An extraction error aborts the batch.
func (m *DriftMonitor) Push(raw, recon []float64) ([]DriftCheck, error) {
	if len(raw) != len(recon) {
		return nil, fmt.Errorf("features: drift monitor pushed %d raw vs %d reconstructed values", len(raw), len(recon))
	}
	var checks []DriftCheck
	for i := range raw {
		m.raw.Push(raw[i])
		m.recon.Push(recon[i])
		if m.raw.Len() < m.raw.Cap() {
			continue
		}
		if m.lastCheck != 0 && m.raw.Total()-m.lastCheck < int64(m.every) {
			continue
		}
		m.scratchR = m.raw.CopyTo(m.scratchR[:0])
		m.scratchD = m.recon.CopyTo(m.scratchD[:0])
		rep, err := CheckDrift(m.scratchR, m.scratchD, m.period)
		if err != nil {
			return checks, err
		}
		m.lastCheck = m.raw.Total()
		checks = append(checks, DriftCheck{Index: m.raw.Total() - 1, Report: rep})
	}
	return checks, nil
}

// DriftMonitorState is a drift monitor's serialisable snapshot.
type DriftMonitorState struct {
	Period    int                  `json:"period"`
	Every     int                  `json:"every"`
	LastCheck int64                `json:"last_check"`
	Raw       timeseries.RingState `json:"raw"`
	Recon     timeseries.RingState `json:"recon"`
}

// State snapshots the monitor.
func (m *DriftMonitor) State() DriftMonitorState {
	return DriftMonitorState{
		Period:    m.period,
		Every:     m.every,
		LastCheck: m.lastCheck,
		Raw:       m.raw.State(),
		Recon:     m.recon.State(),
	}
}

// DriftMonitorFromState reconstructs a monitor from a snapshot.
func DriftMonitorFromState(st DriftMonitorState) (*DriftMonitor, error) {
	raw, err := timeseries.RingFromState(st.Raw)
	if err != nil {
		return nil, err
	}
	recon, err := timeseries.RingFromState(st.Recon)
	if err != nil {
		return nil, err
	}
	if st.Period < 2 {
		return nil, fmt.Errorf("features: drift monitor state has period %d", st.Period)
	}
	return &DriftMonitor{
		period:    st.Period,
		every:     st.Every,
		raw:       raw,
		recon:     recon,
		lastCheck: st.LastCheck,
	}, nil
}
