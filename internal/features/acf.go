// Package features extracts the time series characteristics the paper
// analyses (§4.3.1): the feature set of the R tsfeatures package, including
// the distribution-shift features (max_kl_shift, max_level_shift,
// max_var_shift), autocorrelation and partial autocorrelation features,
// unit-root statistics, decomposition-based strength measures, and
// miscellaneous descriptors. Feature deltas between raw and decompressed
// series are the inputs to the paper's SHAP and Spearman analyses.
package features

import "math"

// ACF returns the autocorrelation function at lags 1..maxLag.
// Lags beyond the data length yield zero.
func ACF(x []float64, maxLag int) []float64 {
	n := len(x)
	out := make([]float64, maxLag)
	if n < 2 {
		return out
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	var c0 float64
	for _, v := range x {
		d := v - mean
		c0 += d * d
	}
	if c0 == 0 {
		return out
	}
	for lag := 1; lag <= maxLag; lag++ {
		if lag >= n {
			break
		}
		var c float64
		for i := lag; i < n; i++ {
			c += (x[i] - mean) * (x[i-lag] - mean)
		}
		out[lag-1] = c / c0
	}
	return out
}

// ACFAt returns the autocorrelation at a single lag.
func ACFAt(x []float64, lag int) float64 {
	if lag <= 0 {
		return 1
	}
	a := ACF(x, lag)
	return a[lag-1]
}

// PACF returns the partial autocorrelation function at lags 1..maxLag using
// the Durbin-Levinson recursion.
func PACF(x []float64, maxLag int) []float64 {
	acf := ACF(x, maxLag)
	out := make([]float64, maxLag)
	if maxLag == 0 {
		return out
	}
	phi := make([][]float64, maxLag+1)
	for i := range phi {
		phi[i] = make([]float64, maxLag+1)
	}
	phi[1][1] = acf[0]
	out[0] = acf[0]
	for k := 2; k <= maxLag; k++ {
		var num, den float64
		num = acf[k-1]
		for j := 1; j < k; j++ {
			num -= phi[k-1][j] * acf[k-1-j]
			den += phi[k-1][j] * acf[j-1]
		}
		den = 1 - den
		if den == 0 {
			break
		}
		phi[k][k] = num / den
		for j := 1; j < k; j++ {
			phi[k][j] = phi[k-1][j] - phi[k][k]*phi[k-1][k-j]
		}
		out[k-1] = phi[k][k]
	}
	return out
}

// SumSq returns the sum of squares of the slice.
func SumSq(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// Diff returns the d-th difference of x.
func Diff(x []float64, d int) []float64 {
	out := append([]float64(nil), x...)
	for k := 0; k < d; k++ {
		if len(out) < 2 {
			return nil
		}
		next := make([]float64, len(out)-1)
		for i := 1; i < len(out); i++ {
			next[i-1] = out[i] - out[i-1]
		}
		out = next
	}
	return out
}

// SeasonalDiff returns x_t - x_{t-m}.
func SeasonalDiff(x []float64, m int) []float64 {
	if len(x) <= m || m <= 0 {
		return nil
	}
	out := make([]float64, len(x)-m)
	for i := m; i < len(x); i++ {
		out[i-m] = x[i] - x[i-m]
	}
	return out
}

// demean returns x minus its mean.
func demean(x []float64) []float64 {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = v - mean
	}
	return out
}

func variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	d := demean(x)
	return SumSq(d) / float64(len(d)-1)
}

func mean(x []float64) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
