package features

import (
	"math"
	"math/rand"
	"testing"
)

// The streaming tracker is an algebraic rearrangement of the batch ACF, so
// at every prefix length it must agree with ACF over that prefix to
// floating-point accumulation accuracy.
func TestStreamACFMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, maxLag = 500, 12
	x := make([]float64, 0, n)
	acc := NewStreamACF(maxLag)
	buf := make([]float64, maxLag)
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i)/9) + 0.3*rng.NormFloat64()
		x = append(x, v)
		acc.Push(v)
		if i%37 != 0 && i != n-1 {
			continue
		}
		want := ACF(x, maxLag)
		got := acc.Into(buf)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-8 {
				t.Fatalf("prefix %d lag %d: stream %.12f batch %.12f", i+1, k+1, got[k], want[k])
			}
		}
	}
}

func TestStreamACFEdgeCases(t *testing.T) {
	a := NewStreamACF(4)
	buf := make([]float64, 4)
	for _, v := range a.Into(buf) { // empty
		if v != 0 {
			t.Fatal("empty tracker must report zero ACF")
		}
	}
	a.Push(2)
	for _, v := range a.Into(buf) { // single value
		if v != 0 {
			t.Fatal("single-value tracker must report zero ACF")
		}
	}
	for i := 0; i < 10; i++ { // constant series: c0 = 0
		a.Push(2)
	}
	for _, v := range a.Into(buf) {
		if v != 0 {
			t.Fatal("constant series must report zero ACF (matches batch convention)")
		}
	}
	if got := a.At(0); got != 1 {
		t.Fatalf("At(0) = %v, want 1", got)
	}
	a.Reset()
	if a.Len() != 0 {
		t.Fatal("Reset must rewind the count")
	}
	a.Push(1)
	a.Push(3)
	want := ACF([]float64{1, 3}, 4)
	got := a.Into(buf)
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-12 {
			t.Fatalf("after Reset: lag %d stream %v batch %v", k+1, got[k], want[k])
		}
	}
}
