// Package core implements the paper's evaluation harness: Algorithm 1
// (EvaluateScenario), the full dataset × model × compressor × error-bound
// grid, the characteristic and SHAP analyses, and one report generator per
// table and figure of the paper's evaluation section. Results are memoised
// per option set so every experiment can share one grid computation.
package core

import (
	"fmt"
	"runtime"

	"lossyts/internal/compress"
	"lossyts/internal/forecast"
	"lossyts/internal/timeseries"
)

// Options configures a full evaluation run.
type Options struct {
	// Scale shrinks dataset lengths ((0, 1]; 1 = paper scale).
	Scale float64
	// Seed is the base random seed; run r uses Seed + r.
	Seed int64
	// Datasets and Models select subsets of the paper's grid (nil = all).
	Datasets []string
	Models   []string
	// Methods and ErrorBounds select the compression grid (nil = paper's).
	Methods     []compress.Method
	ErrorBounds []float64
	// DeepSeeds and ShallowSeeds are the number of repeated runs for deep
	// and shallow models (paper: 10 and 5; scaled runs use fewer).
	DeepSeeds    int
	ShallowSeeds int
	// MaxEvalWindows caps the number of test windows per evaluation
	// (evenly subsampled; 0 = all windows, as the paper evaluates).
	MaxEvalWindows int
	// Parallelism bounds the worker pools of the evaluation harness: both
	// the dataset-level fan-out in RunGrid and the per-dataset (model,
	// seed) pool. 0 means runtime.NumCPU(). 1 forces a fully sequential
	// run. Results are bit-identical at every setting — parallelism only
	// changes scheduling, never values — so it is excluded from the
	// memoisation key.
	Parallelism int
	// Forecast carries window sizes and training hyperparameters; zero
	// values fall back to forecast.DefaultConfig.
	Forecast forecast.Config
	// ReferenceKernels disables the nn package's blocked/fused kernels and
	// buffer arena for the run, training with the original scalar op
	// graphs. Kernel numerics differ below ~1e-9, so it is part of the
	// memoisation key.
	ReferenceKernels bool
	// Stream routes the ingest → compress → reconstruct prefix of the stage
	// pipeline through the chunked streaming data plane: the dataset target
	// is generated chunk by chunk (datasets.StreamTarget), every grid cell
	// is compressed by a streaming encoder fed from one shared chunk pass
	// over the test subset, and reconstructions are decoded chunk by chunk.
	// Results are bit-identical to the batch pipeline — payloads match byte
	// for byte — so like Parallelism it is excluded from the memoisation
	// key.
	Stream bool
	// ChunkSize is the chunk length (points) the streaming data plane uses;
	// 0 means timeseries.DefaultChunkSize. Chunking never changes results,
	// so it too is excluded from the memoisation key.
	ChunkSize int
	// Store is the path of a cell-addressed result store ("" = off). With a
	// store, RunGridContext checkpoints every completed cell as its dataset
	// finishes, skips cells already present on re-run — so a killed run
	// resumes where it left off — and computes only the delta when the grid
	// grows (new error bounds, methods, datasets, or models). Stored and
	// recomputed cells are bit-identical by construction (see CellKey), so
	// like Parallelism the field is excluded from the memoisation key.
	Store string
}

// DefaultOptions is the paper's grid at laptop scale: all datasets, models,
// methods, and the 13 error bounds, at 3% dataset length with one seed per
// model class.
func DefaultOptions() Options {
	cfg := forecast.DefaultConfig()
	// The default grid favours wall-clock over the last drop of accuracy;
	// PaperOptions restores the full training budget.
	cfg.Epochs = 8
	cfg.MaxTrainWindows = 256
	return Options{
		Scale:          0.03,
		Seed:           1,
		Datasets:       nil,
		Models:         nil,
		Methods:        nil,
		ErrorBounds:    nil,
		DeepSeeds:      1,
		ShallowSeeds:   1,
		MaxEvalWindows: 48,
		Forecast:       cfg,
	}
}

// PaperOptions is the full-scale configuration matching §3 (long runtime).
func PaperOptions() Options {
	o := DefaultOptions()
	o.Scale = 1
	o.DeepSeeds = 10
	o.ShallowSeeds = 5
	o.MaxEvalWindows = 0 // evaluate every window, as the paper does
	o.Forecast = forecast.DefaultConfig()
	o.Forecast.Epochs = 30
	o.Forecast.MaxTrainWindows = 0 // no cap
	return o
}

// QuickOptions is a minimal configuration for unit tests: two datasets,
// the three shallow-ish models, and four error bounds.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.015
	o.Datasets = []string{"ETTm1", "Weather"}
	o.Models = []string{"Arima", "GBoost", "DLinear"}
	o.ErrorBounds = []float64{0.01, 0.05, 0.1, 0.4}
	o.Forecast.Epochs = 6
	o.Forecast.MaxTrainWindows = 96
	return o
}

func (o Options) datasets() []string {
	if len(o.Datasets) > 0 {
		return o.Datasets
	}
	return []string{"ETTm1", "ETTm2", "Solar", "Weather", "ElecDem", "Wind"}
}

func (o Options) models() []string {
	if len(o.Models) > 0 {
		return o.Models
	}
	return forecast.ModelNames
}

func (o Options) methods() []compress.Method {
	if len(o.Methods) > 0 {
		return o.Methods
	}
	return compress.Methods
}

func (o Options) errorBounds() []float64 {
	if len(o.ErrorBounds) > 0 {
		return o.ErrorBounds
	}
	return compress.ErrorBounds
}

func (o Options) seeds(model string) int {
	if forecast.IsDeep(model) {
		if o.DeepSeeds > 0 {
			return o.DeepSeeds
		}
		return 1
	}
	if o.ShallowSeeds > 0 {
		return o.ShallowSeeds
	}
	return 1
}

// parallelism resolves the worker-pool bound (0 = NumCPU).
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// chunkSize resolves the streaming chunk length.
func (o Options) chunkSize() int {
	if o.ChunkSize > 0 {
		return o.ChunkSize
	}
	return timeseries.DefaultChunkSize
}

// key is the memoisation key: the grid signature shared with the result
// store (every cell-identity field, see Options.CellKey) plus the grid
// selectors. Parallelism, Stream, ChunkSize, and Store are deliberately
// excluded — they change scheduling, memory, or persistence, and the
// harness guarantees bit-identical results at every setting.
func (o Options) key() string {
	return fmt.Sprintf("%s|%v|%v|%v|%v",
		o.gridSignature(), o.datasets(), o.models(), o.methods(), o.errorBounds())
}

// normalized clears the fields that never change results (scheduling,
// streaming, persistence) so persisted option sets compare and serialise
// identically however the grid was computed.
func (o Options) normalized() Options {
	o.Parallelism = 0
	o.Stream = false
	o.ChunkSize = 0
	o.Store = ""
	return o
}
