package core

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"lossyts/internal/compress"
	"lossyts/internal/forecast"
)

// monitorTestOpts is a small but complete session: injected spikes and a
// level shift on a short ElecDem stream (period 48 keeps all the monitor
// windows tight).
func monitorTestOpts() SessionOptions {
	return SessionOptions{
		Dataset:   "ElecDem",
		Scale:     0.005, // ~1150 points
		Seed:      7,
		Method:    compress.MethodPMC,
		Epsilon:   0.05,
		ChunkSize: 128,
		Spikes:    5,
		DriftAt:   0.7,
		// The batch detector default (5) is tuned for recall on raw data;
		// scoring point-exact detections on a lossy reconstruction wants a
		// stricter cut so reconstruction artefacts near genuine spikes
		// don't flood precision.
		AnomalyThreshold: 9,
	}
}

func reportBytes(t *testing.T, rep *SessionReport) []byte {
	t.Helper()
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSessionStreamReplayIdentical is the determinism gate: the streamed
// session and its offline batch replay must produce byte-identical
// reports.
func TestSessionStreamReplayIdentical(t *testing.T) {
	opts := monitorTestOpts()
	a, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := a.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := b.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, streamed), reportBytes(t, replayed)) {
		t.Fatalf("stream and replay reports differ:\n%s\nvs\n%s",
			reportBytes(t, streamed), reportBytes(t, replayed))
	}
	if streamed.Points == 0 || streamed.Ticks == 0 {
		t.Fatalf("empty session: %+v", streamed)
	}
}

// TestSessionDetectsInjectedSignals sanity-checks the monitors end to end:
// the injected level shift is detected after (not before) injection, and
// the injected spikes score a usable F1 at a modest error bound.
func TestSessionDetectsInjectedSignals(t *testing.T) {
	opts := monitorTestOpts()
	s, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DriftInjectedAt < 0 {
		t.Fatal("no drift injected")
	}
	if rep.DriftDetectedAt < rep.DriftInjectedAt {
		t.Fatalf("drift detected at %d before injection at %d", rep.DriftDetectedAt, rep.DriftInjectedAt)
	}
	if rep.DriftDelay < 0 {
		t.Fatalf("injected 3σ level shift never detected: %+v", rep)
	}
	if rep.F1 < 0.5 {
		t.Fatalf("anomaly F1 %.2f too low (precision %.2f recall %.2f, detected %v, truth %v)",
			rep.F1, rep.Precision, rep.Recall, rep.Detected, rep.TruthSpikes)
	}
	if rep.CompressionRatio <= 1 {
		t.Fatalf("compression ratio %.2f not > 1", rep.CompressionRatio)
	}
	if rep.TE <= 0 {
		t.Fatalf("TE %v not positive under lossy compression", rep.TE)
	}
}

// tickCtx is a deterministic kill switch: Err starts failing after the
// context has been consulted n times — the session checks once per tick, so
// this kills the loop at an exact tick boundary, like a kill -9 between
// chunks.
type tickCtx struct {
	context.Context
	left int
}

func (c *tickCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func (c *tickCtx) Deadline() (time.Time, bool) { return time.Time{}, false }

// TestSessionResumeMatchesUninterrupted: kill a checkpointing session
// mid-run, corrupt the journal tail (the torn final write of a real kill),
// resume from the store, and require the final report to be byte-identical
// to an uninterrupted run.
func TestSessionResumeMatchesUninterrupted(t *testing.T) {
	opts := monitorTestOpts()
	base, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	opts.Store = filepath.Join(t.TempDir(), "session.cells")
	killed, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := killed.Run(&tickCtx{Context: context.Background(), left: 3}); err == nil {
		t.Fatal("killed session finished anyway")
	}
	// Torn tail: a kill mid-Put leaves a partial record; Open must shear it
	// off and fall back to the last complete checkpoint.
	f, err := os.OpenFile(opts.Store, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-record-garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resumed, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, want), reportBytes(t, got)) {
		t.Fatalf("resumed report differs from uninterrupted run:\n%s\nvs\n%s",
			reportBytes(t, want), reportBytes(t, got))
	}

	// Resuming a finished session replays nothing and regenerates the same
	// report.
	again, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := again.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, want), reportBytes(t, rep)) {
		t.Fatal("finished-session resume changed the report")
	}
}

// TestSessionModelResume runs the full online loop with an incremental
// model in it and checks the kill → resume path restores the model
// (Snapshotter) bit-exactly: the resumed run's report, including
// prequential forecast error, matches the uninterrupted one.
func TestSessionModelResume(t *testing.T) {
	if testing.Short() {
		t.Skip("model session in -short mode")
	}
	opts := monitorTestOpts()
	opts.Model = "DLinear"
	opts.Forecast = forecast.Config{
		InputLen:     48,
		Horizon:      12,
		Epochs:       1,
		UpdateEpochs: 1,
		HiddenSize:   8,
	}
	base, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want.ForecastPoints == 0 {
		t.Fatal("model session scored no forecasts")
	}

	opts.Store = filepath.Join(t.TempDir(), "session.cells")
	killed, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Kill after enough ticks that the model has fitted (warmup 192 points
	// = 2 chunks of 128) and at least one forecast is pending.
	if _, err := killed.Run(&tickCtx{Context: context.Background(), left: 4}); err == nil {
		t.Fatal("killed session finished anyway")
	}
	resumed, err := NewSession(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reportBytes(t, want), reportBytes(t, got)) {
		t.Fatalf("model session resume diverged:\n%s\nvs\n%s",
			reportBytes(t, want), reportBytes(t, got))
	}
}

// TestMonitorSweepParallelismInvariant: the sweep's merged output is
// byte-identical at parallelism 1 and NumCPU.
func TestMonitorSweepParallelismInvariant(t *testing.T) {
	opts := monitorTestOpts()
	methods := []compress.Method{compress.MethodPMC, compress.MethodSwing}
	bounds := []float64{0.01, 0.1}
	seq, err := MonitorSweep(context.Background(), opts, methods, bounds, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := MonitorSweep(context.Background(), opts, methods, bounds, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	sb, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := json.Marshal(par)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb, pb) {
		t.Fatal("sweep output depends on parallelism")
	}
	if len(seq.Cells) != 4 {
		t.Fatalf("expected 4 cells, got %d", len(seq.Cells))
	}
	for _, c := range seq.Cells {
		if c.Report == nil {
			t.Fatalf("cell %s/%g has no report", c.Method, c.Epsilon)
		}
	}
}

// TestSessionOptionValidation pins the constructor's error paths.
func TestSessionOptionValidation(t *testing.T) {
	bad := monitorTestOpts()
	bad.Dataset = "NoSuchDataset"
	if _, err := NewSession(bad); err == nil {
		t.Error("unknown dataset accepted")
	}
	bad = monitorTestOpts()
	bad.DriftAt = 0.01 // inside warmup
	if _, err := NewSession(bad); err == nil {
		t.Error("drift inside warmup accepted")
	}
	bad = monitorTestOpts()
	bad.Warmup = 10_000_000
	if _, err := NewSession(bad); err == nil {
		t.Error("warmup longer than stream accepted")
	}
	bad = monitorTestOpts()
	bad.Model = "NoSuchModel"
	if _, err := NewSession(bad); err == nil {
		t.Error("unknown model accepted")
	}
}
