package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"lossyts/internal/core/cellstore"
)

// worksetTestOptions is a grid small enough to enumerate by hand: two
// datasets x three methods x two bounds = 12 cells.
func worksetTestOptions() Options {
	o := storeTestOptions()
	o.Datasets = []string{"ETTm1", "Weather"}
	return o
}

func TestWorkSetCanonicalOrder(t *testing.T) {
	o := worksetTestOptions()
	ws := o.NewWorkSet()
	if ws.Len() != 12 {
		t.Fatalf("Len = %d, want 12 (2 datasets x 3 methods x 2 bounds)", ws.Len())
	}
	// Dataset-major, then methods, then bounds — the evaluation order.
	items := ws.Items()
	if items[0].Dataset != "ETTm1" || items[5].Dataset != "ETTm1" || items[6].Dataset != "Weather" {
		t.Fatalf("dataset order wrong: %v", items)
	}
	first := CellAddr{Method: o.methods()[0], Epsilon: o.errorBounds()[0]}
	if items[0].Addr != first {
		t.Fatalf("items[0] = %+v, want %+v", items[0].Addr, first)
	}
	if got := ws.Datasets(); !reflect.DeepEqual(got, []string{"ETTm1", "Weather"}) {
		t.Fatalf("Datasets = %v", got)
	}
	if !ws.Contains("Weather", first) || ws.Contains("Solar", first) {
		t.Fatal("Contains wrong")
	}
}

// TestWorkSetPartitionProperties: for every worker count, the partitions
// are disjoint, cover the set, preserve canonical order, and differ in size
// by at most one cell.
func TestWorkSetPartitionProperties(t *testing.T) {
	ws := worksetTestOptions().NewWorkSet()
	for n := 1; n <= ws.Len()+2; n++ {
		var joined []WorkItem
		minSize, maxSize := ws.Len(), 0
		for i := 0; i < n; i++ {
			p := ws.Partition(n, i)
			joined = append(joined, p.Items()...)
			if p.Len() < minSize {
				minSize = p.Len()
			}
			if p.Len() > maxSize {
				maxSize = p.Len()
			}
		}
		if !reflect.DeepEqual(joined, ws.Items()) {
			t.Fatalf("n=%d: partitions do not rebuild the set in order", n)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("n=%d: partition sizes differ by %d", n, maxSize-minSize)
		}
	}
	for _, bad := range [][2]int{{0, 0}, {3, -1}, {3, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Partition(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			ws.Partition(bad[0], bad[1])
		}()
	}
}

func TestWorkSetMinus(t *testing.T) {
	ws := worksetTestOptions().NewWorkSet()
	p0 := ws.Partition(3, 0)
	rest := ws.Minus(p0)
	if rest.Len() != ws.Len()-p0.Len() {
		t.Fatalf("Minus len = %d", rest.Len())
	}
	for _, it := range p0.Items() {
		if rest.Contains(it.Dataset, it.Addr) {
			t.Fatalf("Minus kept %+v", it)
		}
	}
	if !reflect.DeepEqual(ws.Minus(ws).Items(), []WorkItem(nil)) {
		t.Fatal("ws - ws should be empty")
	}
}

// TestWorkSetUnclaimed exercises the steal protocol's read side: claim
// records and checkpointed cells both count as taken; missing and
// zero-length peer journals count as holding nothing.
func TestWorkSetUnclaimed(t *testing.T) {
	o := worksetTestOptions()
	ws := o.NewWorkSet()
	dir := t.TempDir()

	peer := filepath.Join(dir, "peer.cells")
	s, err := cellstore.Open(peer)
	if err != nil {
		t.Fatal(err)
	}
	claimed := ws.Items()[0]
	stored := ws.Items()[1]
	if err := s.Put(o.claimRecordKey(claimed.Dataset, claimed.Addr.Method, claimed.Addr.Epsilon), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(o.cellRecordKey(stored.Dataset, stored.Addr.Method, stored.Addr.Epsilon), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	rest, err := ws.Unclaimed(peer)
	if err != nil {
		t.Fatal(err)
	}
	if rest.Len() != ws.Len()-2 {
		t.Fatalf("Unclaimed len = %d, want %d", rest.Len(), ws.Len()-2)
	}
	if rest.Contains(claimed.Dataset, claimed.Addr) || rest.Contains(stored.Dataset, stored.Addr) {
		t.Fatal("claimed/stored cells still reported unclaimed")
	}

	// A peer that never started (no journal) or died before its first write
	// (zero-length journal) forfeits everything.
	empty := filepath.Join(dir, "empty.cells")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	all, err := ws.Unclaimed(filepath.Join(dir, "nope.cells"), empty)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != ws.Len() {
		t.Fatalf("missing/empty peers should hold nothing; len = %d", all.Len())
	}
}
