package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestPartitionMergeBitIdentical is the work plane's core contract: the
// grid split across 3 workers (each journaling to its own store), merged
// with MergeWorkerStores, loads into a grid whose persisted bytes equal a
// single-process run's — at Parallelism 1 and at NumCPU — and reports
// "merged" provenance with the worker count.
func TestPartitionMergeBitIdentical(t *testing.T) {
	swapGridCache(t)
	dir := t.TempDir()

	// Single-process reference.
	ref := worksetTestOptions()
	ref.Parallelism = 1
	gWant, err := RunGrid(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, gWant)

	// Three workers, each running its partition against its own journal.
	journals := make([]string, 3)
	ownedTotal, computedTotal := 0, 0
	for i := range journals {
		journals[i] = filepath.Join(dir, fmt.Sprintf("worker%d.cells", i+1))
		wopts := worksetTestOptions()
		wopts.Parallelism = 1
		wopts.Store = journals[i]
		sum, err := RunGridPartition(wopts, len(journals), i, nil)
		if err != nil {
			t.Fatalf("worker %d: %v", i+1, err)
		}
		if sum.Partition != i+1 || sum.Workers != 3 {
			t.Fatalf("worker %d summary = %+v", i+1, sum)
		}
		ownedTotal += sum.OwnedCells
		computedTotal += sum.ComputedCells
	}
	if ownedTotal != 12 || computedTotal != 12 {
		t.Fatalf("workers owned %d / computed %d cells, want 12 / 12", ownedTotal, computedTotal)
	}

	merged := filepath.Join(dir, "merged.cells")
	stats, err := MergeWorkerStores(merged, journals)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sources != 3 || len(stats.Conflicts) != 0 {
		t.Fatalf("merge stats = %+v", stats)
	}

	for name, parallelism := range map[string]int{"sequential": 1, "numcpu": runtime.NumCPU()} {
		t.Run(name, func(t *testing.T) {
			ResetGridCache()
			opts := worksetTestOptions()
			opts.Parallelism = parallelism
			opts.Store = merged
			g, err := RunGrid(opts)
			if err != nil {
				t.Fatal(err)
			}
			if p := g.Provenance; p.Source != SourceMerged || p.Workers != 3 ||
				p.CellsLoaded != 12 || p.CellsComputed != 0 {
				t.Fatalf("merged provenance = %+v", p)
			}
			if got := saveBytes(t, g); !bytes.Equal(got, want) {
				t.Fatal("merged grid's persisted bytes differ from the single-process run's")
			}
		})
	}
}

// TestPartitionStealCoversDeadWorkers: a worker whose peers never wrote a
// byte (journals missing) steals their entire share, so one worker with a
// steal pass completes the whole grid.
func TestPartitionStealCoversDeadWorkers(t *testing.T) {
	swapGridCache(t)
	dir := t.TempDir()

	opts := worksetTestOptions()
	opts.Parallelism = 1
	opts.Store = filepath.Join(dir, "survivor.cells")
	deadPeers := []string{filepath.Join(dir, "dead1.cells"), filepath.Join(dir, "dead2.cells")}
	sum, err := RunGridPartition(opts, 3, 0, deadPeers)
	if err != nil {
		t.Fatal(err)
	}
	if sum.OwnedCells != 4 || sum.StolenCells != 8 || sum.ComputedCells != 12 {
		t.Fatalf("summary = %+v", sum)
	}

	// The survivor's journal alone merges into a complete store.
	merged := filepath.Join(dir, "merged.cells")
	if _, err := MergeWorkerStores(merged, []string{opts.Store}); err != nil {
		t.Fatal(err)
	}
	ResetGridCache()
	check := worksetTestOptions()
	check.Store = merged
	g, err := RunGrid(check)
	if err != nil {
		t.Fatal(err)
	}
	if p := g.Provenance; p.CellsLoaded != 12 || p.CellsComputed != 0 {
		t.Fatalf("provenance = %+v", p)
	}
}

// TestPartitionWorkerKilledAndResumed: a worker SIGKILLed mid-write (its
// journal truncated at an arbitrary byte) reruns its partition, resumes
// from the surviving records, and the merged grid is still bit-identical.
func TestPartitionWorkerKilledAndResumed(t *testing.T) {
	swapGridCache(t)
	dir := t.TempDir()

	ref := worksetTestOptions()
	gWant, err := RunGrid(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, gWant)

	journals := make([]string, 3)
	for i := range journals {
		journals[i] = filepath.Join(dir, fmt.Sprintf("worker%d.cells", i+1))
		wopts := worksetTestOptions()
		wopts.Store = journals[i]
		if _, err := RunGridPartition(wopts, len(journals), i, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Kill simulation on worker 2: keep an arbitrary prefix of its journal,
	// then rerun the same partition. The rerun loads what survived and
	// computes only the rest.
	blob, err := os.ReadFile(journals[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journals[1], blob[:len(blob)*55/100], 0o644); err != nil {
		t.Fatal(err)
	}
	wopts := worksetTestOptions()
	wopts.Store = journals[1]
	sum, err := RunGridPartition(wopts, len(journals), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.ComputedCells+sum.LoadedCells != sum.OwnedCells {
		t.Fatalf("resumed worker summary = %+v", sum)
	}

	merged := filepath.Join(dir, "merged.cells")
	if _, err := MergeWorkerStores(merged, journals); err != nil {
		t.Fatal(err)
	}
	ResetGridCache()
	opts := worksetTestOptions()
	opts.Store = merged
	g, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, g); !bytes.Equal(got, want) {
		t.Fatal("grid merged from a killed-and-resumed worker differs")
	}
}

// TestPartitionRequiresStore: partition runs journal by definition.
func TestPartitionRequiresStore(t *testing.T) {
	if _, err := RunGridPartition(worksetTestOptions(), 3, 0, nil); err == nil {
		t.Fatal("partition run without a store accepted")
	}
	bad := worksetTestOptions()
	bad.Store = filepath.Join(t.TempDir(), "w.cells")
	if _, err := RunGridPartition(bad, 3, 3, nil); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
}
