package core

import (
	"math"
	"path/filepath"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/stats"
)

// recommendGrid hand-assembles a minimal grid for edge-case probing: two
// cells, one comfortably inside any sane tolerance, one far outside.
func recommendGrid() *GridResult {
	opts := DefaultOptions()
	opts.Datasets = []string{"D"}
	opts.Models = []string{"Arima"}
	ds := &DatasetResult{
		Name: "D",
		Cells: []*Cell{
			{Method: compress.MethodPMC, Epsilon: 0.05, CR: 2,
				TE:  stats.Metrics{NRMSE: 0.01},
				TFE: map[string]float64{"Arima": 0.02}},
			{Method: compress.MethodPMC, Epsilon: 0.4, CR: 10,
				TE:  stats.Metrics{NRMSE: 0.3},
				TFE: map[string]float64{"Arima": 5}},
		},
	}
	ds.buildIndex()
	return &GridResult{Opts: opts, Datasets: map[string]*DatasetResult{"D": ds}}
}

func TestRecommendEdgeCases(t *testing.T) {
	t.Run("no cell within tolerance", func(t *testing.T) {
		g := recommendGrid()
		if _, err := Recommend(g, "D", 0.001, nil); err == nil {
			t.Fatal("tolerance below every cell's TFE should error")
		}
	})

	t.Run("NaN TFE is not a candidate", func(t *testing.T) {
		g := recommendGrid()
		// Give the high-CR cell a NaN TFE: it must be skipped, not win.
		g.Datasets["D"].Cells[1].TFE["Arima"] = math.NaN()
		rec, err := Recommend(g, "D", 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Epsilon != 0.05 {
			t.Fatalf("NaN-TFE cell recommended: %+v", rec)
		}
		// All-NaN means no candidate at all.
		g.Datasets["D"].Cells[0].TFE["Arima"] = math.NaN()
		if _, err := Recommend(g, "D", 10, nil); err == nil {
			t.Fatal("grid with only NaN TFE should error")
		}
	})

	t.Run("absent TFE is not a candidate", func(t *testing.T) {
		g := recommendGrid()
		g.Datasets["D"].Cells[1].TFE = map[string]float64{}
		rec, err := Recommend(g, "D", 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Epsilon != 0.05 {
			t.Fatalf("TFE-less cell recommended: %+v", rec)
		}
	})

	t.Run("empty models slice falls back to options", func(t *testing.T) {
		g := recommendGrid()
		want, err := Recommend(g, "D", 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Recommend(g, "D", 10, []string{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("empty slice gave %+v, nil gave %+v", got, want)
		}
	})

	t.Run("unknown model only", func(t *testing.T) {
		g := recommendGrid()
		if _, err := Recommend(g, "D", 10, []string{"Nope"}); err == nil {
			t.Fatal("model absent from every cell should error, not recommend blindly")
		}
	})

	t.Run("store-backed grid", func(t *testing.T) {
		// A grid loaded from a store must recommend identically to the
		// in-memory grid it was saved from.
		g := quickGrid(t)
		want, err := Recommend(g, "ETTm1", 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "rec.cells")
		if err := SaveGrid(g, path); err != nil {
			t.Fatal(err)
		}
		swapGridCache(t)
		loaded, err := LoadGrid(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Recommend(loaded, "ETTm1", 0.5, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("store-backed recommendation %+v, want %+v", got, want)
		}
	})
}
