package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/timeseries"
)

// The extensibility point the registries exist for: a compressor defined
// entirely outside the compress package, registered from a test file, run
// through the full evaluation pipeline like a built-in.

const pipeMethod compress.Method = "PIPETEST"

// pipeCompressor stores each value quantised to a multiple of epsilon·|v|
// (crudely error-bounded), encoded as raw float64 bits.
type pipeCompressor struct{}

func (pipeCompressor) Method() compress.Method { return pipeMethod }

func (pipeCompressor) Compress(s *timeseries.Series, epsilon float64) (*compress.Compressed, error) {
	var buf bytes.Buffer
	if err := compress.EncodeHeader(&buf, pipeMethod, s); err != nil {
		return nil, err
	}
	var scratch [8]byte
	for _, v := range s.Values {
		q := v
		if step := epsilon * math.Abs(v); step > 0 {
			q = math.Round(v/step) * step
		}
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(q))
		buf.Write(scratch[:])
	}
	return compress.Finish(pipeMethod, epsilon, s, buf.Bytes(), 1)
}

func pipeDecode(body []byte, count int) ([]float64, error) {
	if len(body) != 8*count {
		return nil, errors.New("pipetest: truncated body")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return out, nil
}

func init() {
	compress.Register(compress.Registration{
		Method: pipeMethod,
		Code:   105,
		New:    func() (compress.Compressor, error) { return pipeCompressor{}, nil },
		Decode: pipeDecode,
	})
}

// TestExternalCompressorThroughPipeline runs a grid whose only compression
// method is the externally registered one: every stage — compress,
// reconstruct, window, train, forecast, analyze — must treat it exactly
// like a built-in and produce complete, finite metrics.
func TestExternalCompressorThroughPipeline(t *testing.T) {
	swapGridCache(t)

	opts := equivalenceOptions()
	opts.Models = []string{"Arima"}
	opts.Methods = []compress.Method{pipeMethod}
	opts.ErrorBounds = []float64{0.05, 0.2}
	g, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Datasets["ETTm1"]
	if ds == nil || len(ds.Cells) != 2 {
		t.Fatalf("grid incomplete: %+v", ds)
	}
	base, ok := ds.Baselines["Arima"]
	if !ok || math.IsNaN(base.NRMSE) {
		t.Fatalf("baseline missing: %+v", ds.Baselines)
	}
	for _, cell := range ds.Cells {
		if cell.Method != pipeMethod {
			t.Fatalf("cell method %s, want %s", cell.Method, pipeMethod)
		}
		if cell.CR <= 0 || len(cell.Decompressed) == 0 {
			t.Fatalf("cell not reconstructed: %+v", cell)
		}
		mm, ok := cell.ModelMetrics["Arima"]
		if !ok || math.IsNaN(mm.NRMSE) || mm.NRMSE <= 0 {
			t.Fatalf("eps=%v: no model metrics on the external method: %+v", cell.Epsilon, cell.ModelMetrics)
		}
		if _, ok := cell.TFE["Arima"]; !ok {
			t.Fatalf("eps=%v: TFE not attributed", cell.Epsilon)
		}
		// The quantiser respects its pointwise bound, so the reconstruction
		// error must grow with epsilon but stay finite.
		if math.IsNaN(cell.TE.NRMSE) {
			t.Fatalf("eps=%v: TE is NaN", cell.Epsilon)
		}
	}
	if ds.Cells[0].TE.RMSE > ds.Cells[1].TE.RMSE {
		t.Fatalf("TE did not grow with the error bound: %v vs %v",
			ds.Cells[0].TE.RMSE, ds.Cells[1].TE.RMSE)
	}
}
