package core

import (
	"fmt"
	"math"
	"sort"

	"lossyts/internal/compress"
	"lossyts/internal/features"
	"lossyts/internal/gbt"
	"lossyts/internal/stats"
)

// rawKey marks the uncompressed feature vector in the feature cache.
const rawKey = "RAW"

// featureVector extracts (and caches) the characteristic vector of the
// dataset's test values, either raw or for a specific grid cell.
func (g *GridResult) featureVector(ds *DatasetResult, method compress.Method, eps float64) (features.Vector, error) {
	key := fmt.Sprintf("%s|%s|%v", ds.Name, method, eps)
	values := ds.RawTest
	if method != rawKey {
		cell := ds.Cell(method, eps)
		if cell == nil {
			return nil, fmt.Errorf("core: no cell %s eps=%v for %s", method, eps, ds.Name)
		}
		values = cell.Decompressed
	} else {
		key = fmt.Sprintf("%s|%s", ds.Name, rawKey)
	}
	if v, ok := g.featureCache(key); ok {
		return v, nil
	}
	period := ds.SeasonalPeriod
	if period > len(values)/4 {
		period = len(values) / 4
	}
	v, err := features.Extract(values, features.Options{Period: period})
	if err != nil {
		return nil, err
	}
	g.storeFeature(key, v)
	return v, nil
}

// FeatureRow is one observation of the characteristic analysis: the feature
// deltas of a grid cell and the cell's mean TFE across models (§4.3.1).
type FeatureRow struct {
	Dataset string
	Method  compress.Method
	Epsilon float64
	Delta   features.Vector
	RelDiff features.Vector
	TFE     float64
}

// FeatureRows extracts one row per grid cell across all datasets.
func (g *GridResult) FeatureRows() ([]FeatureRow, error) {
	var rows []FeatureRow
	for _, name := range g.Opts.datasets() {
		ds := g.Datasets[name]
		raw, err := g.featureVector(ds, rawKey, 0)
		if err != nil {
			return nil, err
		}
		for _, cell := range ds.Cells {
			dec, err := g.featureVector(ds, cell.Method, cell.Epsilon)
			if err != nil {
				return nil, err
			}
			var tfe float64
			var n int
			for _, v := range cell.TFE {
				if !math.IsNaN(v) && !math.IsInf(v, 0) {
					tfe += v
					n++
				}
			}
			if n == 0 {
				continue
			}
			rows = append(rows, FeatureRow{
				Dataset: ds.Name,
				Method:  cell.Method,
				Epsilon: cell.Epsilon,
				Delta:   features.Delta(raw, dec),
				RelDiff: features.RelativeDelta(raw, dec),
				TFE:     tfe / float64(n),
			})
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no feature rows (empty grid)")
	}
	return rows, nil
}

// FeatureCorrelation holds one characteristic's Spearman correlation to TFE
// (paper Table 4).
type FeatureCorrelation struct {
	Name        string
	Correlation float64
}

// SpearmanToTFE ranks all characteristics by the absolute Spearman
// correlation between their delta and TFE across the grid.
func SpearmanToTFE(rows []FeatureRow) []FeatureCorrelation {
	if len(rows) == 0 {
		return nil
	}
	names := rows[0].Delta.Names()
	tfe := make([]float64, len(rows))
	for i, r := range rows {
		tfe[i] = r.TFE
	}
	var out []FeatureCorrelation
	for _, name := range names {
		col := make([]float64, len(rows))
		for i, r := range rows {
			col[i] = math.Abs(r.Delta[name])
		}
		rho, err := stats.Spearman(col, tfe)
		if err != nil {
			rho = 0 // constant characteristics (e.g. nperiods) carry no signal
		}
		out = append(out, FeatureCorrelation{Name: name, Correlation: rho})
	}
	sort.Slice(out, func(i, j int) bool {
		return math.Abs(out[i].Correlation) > math.Abs(out[j].Correlation)
	})
	return out
}

// SHAPResult is the output of the surrogate-model analysis (paper §4.3.1,
// Figure 5): a GBoost model predicting TFE from characteristic deltas,
// explained with exact TreeSHAP.
type SHAPResult struct {
	R2         float64
	Importance []FeatureCorrelation // mean |SHAP| per characteristic, sorted
}

// SHAPAnalysis trains the GBoost surrogate and ranks the characteristics by
// mean absolute Shapley value.
func SHAPAnalysis(rows []FeatureRow) (*SHAPResult, error) {
	if len(rows) < 10 {
		return nil, fmt.Errorf("core: %d rows too few for SHAP analysis", len(rows))
	}
	names := rows[0].Delta.Names()
	x := make([][]float64, len(rows))
	y := make([]float64, len(rows))
	for i, r := range rows {
		row := make([]float64, len(names))
		for j, n := range names {
			row[j] = r.Delta[n]
		}
		x[i] = row
		y[i] = r.TFE
	}
	// Hold out every fifth observation so early stopping curbs overfitting
	// and the reported R² reflects fit quality, as the paper's 0.9 does.
	// Tiny grids (debug configurations) skip the holdout: with a handful of
	// observations early stopping would fire before anything is learned.
	trainX, trainY := x, y
	var valX [][]float64
	var valY []float64
	if len(x) >= 60 {
		trainX, trainY = nil, nil
		for i := range x {
			if i%5 == 4 {
				valX = append(valX, x[i])
				valY = append(valY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
	}
	ens, err := gbt.Fit(trainX, trainY, valX, valY, gbt.Options{
		Trees:        150,
		LearningRate: 0.1,
		Tree:         gbt.TreeOptions{MaxDepth: 4, MinLeaf: 3},
		Patience:     15,
	})
	if err != nil {
		return nil, err
	}
	imp := ens.MeanAbsShap(x)
	out := &SHAPResult{R2: ens.R2(x, y)}
	for j, n := range names {
		out.Importance = append(out.Importance, FeatureCorrelation{Name: n, Correlation: imp[j]})
	}
	sort.Slice(out.Importance, func(i, j int) bool {
		return out.Importance[i].Correlation > out.Importance[j].Correlation
	})
	return out, nil
}
