package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestDefaultPipelineOrder(t *testing.T) {
	want := []string{
		StageIngest, StageCompress, StageReconstruct, StageWindow,
		StageTrain, StageForecast, StageAnalyze,
	}
	if got := DefaultPipeline().StageNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("stage order %v, want %v", got, want)
	}
}

func TestPipelineInsert(t *testing.T) {
	p := DefaultPipeline()
	noop := func(rc *RunContext, st *pipelineState) error { return nil }
	if err := p.InsertAfter(StageReconstruct, Stage{Name: "audit", Run: noop}); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertBefore(StageIngest, Stage{Name: "warmup", Run: noop}); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"warmup", StageIngest, StageCompress, StageReconstruct, "audit",
		StageWindow, StageTrain, StageForecast, StageAnalyze,
	}
	if got := p.StageNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("stage order after inserts %v, want %v", got, want)
	}

	if err := p.InsertAfter("no-such-stage", Stage{Name: "x", Run: noop}); err == nil {
		t.Fatal("insert after a missing stage did not fail")
	}
	if err := p.InsertBefore(StageTrain, Stage{Name: "audit", Run: noop}); err == nil {
		t.Fatal("duplicate stage name did not fail")
	}
	if err := p.InsertBefore(StageTrain, Stage{Name: "nil-run"}); err == nil {
		t.Fatal("stage without a Run function did not fail")
	}
}

// TestPipelineRunsInsertedStage drives a custom pipeline directly: stages
// run in order, the inserted stage sees the state earlier stages built, and
// its wall clock lands in the timing accumulator.
func TestPipelineRunsInsertedStage(t *testing.T) {
	p := NewPipeline(
		Stage{Name: "a", Run: func(rc *RunContext, st *pipelineState) error {
			st.name = st.name + "+a"
			return nil
		}},
		Stage{Name: "b", Run: func(rc *RunContext, st *pipelineState) error {
			st.name = st.name + "+b"
			return nil
		}},
	)
	seen := ""
	if err := p.InsertAfter("a", Stage{Name: "probe", Run: func(rc *RunContext, st *pipelineState) error {
		seen = st.name
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	rc := newRunContext(context.Background(), QuickOptions(), p)
	st := &pipelineState{name: "x"}
	if err := p.run(rc, st); err != nil {
		t.Fatal(err)
	}
	if seen != "x+a" || st.name != "x+a+b" {
		t.Fatalf("stage order wrong: probe saw %q, final %q", seen, st.name)
	}
	pt := rc.acc.snapshot(0, p.StageNames())
	if len(pt.Stages) != 3 {
		t.Fatalf("stage timings %v, want 3 entries", pt.Stages)
	}
	for i, name := range []string{"a", "probe", "b"} {
		if pt.Stages[i].Name != name {
			t.Fatalf("timing order %v, want a, probe, b", pt.Stages)
		}
	}
}

func TestPipelineStageErrorNamesStage(t *testing.T) {
	boom := errors.New("boom")
	p := NewPipeline(Stage{Name: "exploding", Run: func(rc *RunContext, st *pipelineState) error {
		return boom
	}})
	rc := newRunContext(context.Background(), QuickOptions(), p)
	err := p.run(rc, &pipelineState{})
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "stage exploding") {
		t.Fatalf("err = %v, want wrapped with the stage name", err)
	}
}

func TestPipelineRunHonoursCancellation(t *testing.T) {
	ran := false
	p := NewPipeline(Stage{Name: "never", Run: func(rc *RunContext, st *pipelineState) error {
		ran = true
		return nil
	}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rc := newRunContext(ctx, QuickOptions(), p)
	if err := p.run(rc, &pipelineState{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("stage ran under a cancelled context")
	}
}

// TestRunGridStageTimings checks a real grid run reports per-stage wall
// clock for the whole default pipeline, in execution order, consistent with
// the legacy phase buckets. It computes its own grid: memoised or loaded
// grids legitimately carry the timings of wherever they came from.
func TestRunGridStageTimings(t *testing.T) {
	swapGridCache(t)
	opts := equivalenceOptions()
	opts.Models = []string{"Arima"}
	g, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(g.Timings.Stages))
	for i, s := range g.Timings.Stages {
		names[i] = s.Name
		if s.Total <= 0 {
			t.Errorf("stage %s has no recorded time", s.Name)
		}
	}
	if want := DefaultPipeline().StageNames(); !reflect.DeepEqual(names, want) {
		t.Fatalf("stage timing order %v, want %v", names, want)
	}
	if g.Timings.Setup <= 0 || g.Timings.Compression <= 0 || g.Timings.Planning <= 0 {
		t.Fatalf("legacy phase buckets not fed by the stage graph: %+v", g.Timings)
	}
}
