// Package cellstore implements the append-only record journal behind the
// evaluation grid's cell-addressed result store. A store file is a short
// header followed by self-delimiting, CRC-guarded (key, payload) records;
// the last record for a key wins, so updates are plain appends and a
// half-written tail (killed process, full disk) never corrupts the records
// before it — Open truncates the file back to the last valid record.
//
// The format is deliberately dumb: no compaction, no B-tree, no background
// goroutines. Grid cells are written once per (option set, cell) and read
// back as a batch, so an append-only journal with an in-memory index is
// both the simplest and the fastest structure that survives a kill -9.
package cellstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

// Magic identifies a cell-store file: seven format bytes plus one version
// byte. Version bumps are format-incompatible; record-level schema
// evolution happens in the keys and payloads, not here.
const (
	magic   = "LTSCELL"
	Version = 1
)

// maxRecordLen bounds a single record (length field included). The largest
// legitimate record is a paper-scale dataset record (raw values of the
// longest series, Gorilla-encoded); 1 GiB leaves orders of magnitude of
// headroom while keeping a corrupt length field from demanding the moon.
const maxRecordLen = 1 << 30

// Store is an open cell store. All methods are safe for concurrent use;
// appends are serialised internally.
type Store struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	size     int64 // current end-of-file offset
	readOnly bool
	index    map[string][]byte
	order    []string // keys in first-write order, for deterministic listing
}

// ErrReadOnly is returned by Put on a store opened with OpenReadOnly.
var ErrReadOnly = fmt.Errorf("cellstore: store is open read-only")

// Open opens (creating if absent) the store at path and replays its
// journal into the in-memory index. A corrupt or truncated tail — a
// half-appended record from a killed writer — is cut off at the last valid
// record; everything before it is recovered intact.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, index: map[string][]byte{}}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenReadOnly opens an existing store without write access: the file is
// opened O_RDONLY and a corrupt or half-appended tail is simply ignored
// rather than truncated. That makes it safe for any number of concurrent
// readers to open a store that a single live writer is still appending to —
// a reader that lands mid-append sees the valid prefix and never touches
// the writer's in-flight record. Put and Sync return ErrReadOnly.
func OpenReadOnly(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, readOnly: true, index: map[string][]byte{}}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Create opens the store at path, discarding any previous contents — the
// canonical-write mode SaveGrid uses so saved grids are byte-deterministic.
func Create(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{f: f, path: path, index: map[string][]byte{}}
	if err := s.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// IsStore reports whether the file at path begins with the cell-store
// magic, without opening it as a store.
func IsStore(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return false
	}
	return string(hdr[:7]) == magic
}

func (s *Store) writeHeader() error {
	var hdr [8]byte
	copy(hdr[:], magic)
	hdr[7] = Version
	if _, err := s.f.Write(hdr[:]); err != nil {
		return err
	}
	s.size = int64(len(hdr))
	return nil
}

// load replays the journal. An empty file gets a fresh header; a non-store
// file is rejected; a valid prefix followed by garbage is truncated back to
// the end of the valid prefix.
func (s *Store) load() error {
	fi, err := s.f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() == 0 {
		if s.readOnly {
			// An empty file has no header to validate and a reader cannot
			// write one; it is simply not a store (yet).
			return fmt.Errorf("cellstore: %s is empty, not a cell store", s.path)
		}
		return s.writeHeader()
	}
	var hdr [8]byte
	if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
		return fmt.Errorf("cellstore: %s: reading header: %w", s.path, err)
	}
	if string(hdr[:7]) != magic {
		return fmt.Errorf("cellstore: %s is not a cell store", s.path)
	}
	if hdr[7] != Version {
		return fmt.Errorf("cellstore: %s has store version %d, want %d", s.path, hdr[7], Version)
	}
	data, err := io.ReadAll(s.f)
	if err != nil {
		return err
	}
	valid := int64(len(hdr)) // end offset of the last valid record
	off := 0
	for off < len(data) {
		key, payload, n := parseRecord(data[off:])
		if n <= 0 {
			break // corrupt or truncated tail: stop at the last valid record
		}
		s.put(key, payload)
		off += n
		valid += int64(n)
	}
	s.size = valid
	if valid < fi.Size() && !s.readOnly {
		// Cut the bad tail off so future appends extend a valid journal. A
		// read-only open must not: the "corrupt" tail may be a live writer's
		// record in flight, and truncating it would corrupt the writer.
		if err := s.f.Truncate(valid); err != nil {
			return fmt.Errorf("cellstore: %s: truncating corrupt tail: %w", s.path, err)
		}
	}
	return nil
}

// parseRecord decodes one record from b, returning its key, payload, and
// total encoded length, or n <= 0 if b does not begin with a valid record.
func parseRecord(b []byte) (key string, payload []byte, n int) {
	if len(b) < 8 {
		return "", nil, 0
	}
	length := binary.LittleEndian.Uint32(b[:4])
	if length < 2 || length > maxRecordLen || int(length) > len(b)-8 {
		return "", nil, 0
	}
	sum := binary.LittleEndian.Uint32(b[4:8])
	body := b[8 : 8+int(length)]
	if crc32.ChecksumIEEE(body) != sum {
		return "", nil, 0
	}
	keyLen := int(binary.LittleEndian.Uint16(body[:2]))
	if keyLen > len(body)-2 {
		return "", nil, 0
	}
	return string(body[2 : 2+keyLen]), body[2+keyLen:], 8 + int(length)
}

// put records key -> payload in the index, tracking first-write order.
func (s *Store) put(key string, payload []byte) {
	if _, seen := s.index[key]; !seen {
		s.order = append(s.order, key)
	}
	s.index[key] = payload
}

// Put appends a record for key. The write is a single write(2) call, so a
// killed process loses at most the record in flight — never an earlier one
// — and Open's tail recovery handles the partial write.
func (s *Store) Put(key string, payload []byte) error {
	if s.readOnly {
		return ErrReadOnly
	}
	if len(key) > math.MaxUint16 {
		return fmt.Errorf("cellstore: key of %d bytes exceeds the 64 KiB key limit", len(key))
	}
	body := make([]byte, 2+len(key)+len(payload))
	binary.LittleEndian.PutUint16(body[:2], uint16(len(key)))
	copy(body[2:], key)
	copy(body[2+len(key):], payload)
	rec := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(rec[:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.ChecksumIEEE(body))
	copy(rec[8:], body)

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		return err
	}
	s.size += int64(len(rec))
	s.put(key, payload)
	return nil
}

// Get returns the latest payload stored for key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.index[key]
	return p, ok
}

// Has reports whether key has a record.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Keys returns every live key, sorted, so listings are deterministic
// regardless of append order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Size returns the store file's size in bytes.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// ReadOnly reports whether the store was opened with OpenReadOnly.
func (s *Store) ReadOnly() bool { return s.readOnly }

// Sync flushes the journal to stable storage (power-loss durability; a
// plain process kill never loses completed Put calls, which go straight to
// the kernel).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.readOnly {
		return ErrReadOnly
	}
	return s.f.Sync()
}

// Close syncs and closes the store.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	var err error
	if !s.readOnly {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}
