package cellstore

import (
	"bytes"
	"fmt"
	"os"
	"sort"
)

// Merge and Diff treat store files as mergeable sets of (key, payload)
// records — the property that makes per-worker journals combinable into one
// canonical store. Both open their inputs through the same CRC-verified
// replay as every other reader, so a corrupt or half-appended tail (a
// kill -9'd worker mid-write) contributes its valid prefix and nothing
// else.

// MergeStats summarises one Merge call.
type MergeStats struct {
	// Sources is the number of source stores that contributed records
	// (zero-length source files are skipped, not counted).
	Sources int
	// Records is the number of live keys written to the destination.
	Records int
	// Conflicts lists, sorted, every key for which two sources held
	// different payload bytes. Later sources win in the output; callers
	// that require agreement (MergeWorkerStores) treat a non-empty list as
	// an error.
	Conflicts []string
}

// Merge combines the source stores into a new store at dstPath, written
// from scratch in sorted key order so the output is deterministic for a
// given set of inputs. Within a source the usual journal semantics apply
// (last record for a key wins); across sources, later srcPaths win.
// Identical payloads for the same key are not a conflict — that is the
// normal outcome of two workers racing a steal — but differing payloads
// are recorded in MergeStats.Conflicts.
//
// A zero-length source file (a worker that died before its first write) is
// skipped; a missing file is an error, because a silently dropped journal
// would masquerade as a clean merge of less work.
func Merge(dstPath string, srcPaths ...string) (MergeStats, error) {
	var st MergeStats
	merged := map[string][]byte{}
	conflicted := map[string]bool{}
	for _, src := range srcPaths {
		fi, err := os.Stat(src)
		if err != nil {
			return st, fmt.Errorf("cellstore: merge source %s: %w", src, err)
		}
		if fi.Size() == 0 {
			continue
		}
		s, err := OpenReadOnly(src)
		if err != nil {
			return st, fmt.Errorf("cellstore: merge source %s: %w", src, err)
		}
		for _, key := range s.Keys() {
			payload, _ := s.Get(key)
			if prev, seen := merged[key]; seen && !bytes.Equal(prev, payload) {
				conflicted[key] = true
			}
			merged[key] = payload
		}
		s.Close()
		st.Sources++
	}
	for key := range conflicted {
		st.Conflicts = append(st.Conflicts, key)
	}
	sort.Strings(st.Conflicts)

	dst, err := Create(dstPath)
	if err != nil {
		return st, err
	}
	keys := make([]string, 0, len(merged))
	for key := range merged {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if err := dst.Put(key, merged[key]); err != nil {
			dst.Close()
			return st, err
		}
	}
	st.Records = len(keys)
	return st, dst.Close()
}

// DiffResult reports how two stores' record sets relate.
type DiffResult struct {
	// OnlyA and OnlyB list keys present in exactly one store, sorted.
	OnlyA []string
	OnlyB []string
	// Conflicts lists keys present in both with differing payloads, sorted.
	Conflicts []string
}

// Clean reports whether the two stores agree on every shared key and
// neither holds keys the other lacks.
func (d DiffResult) Clean() bool {
	return len(d.OnlyA) == 0 && len(d.OnlyB) == 0 && len(d.Conflicts) == 0
}

// Diff compares two stores record by record. Like Merge it reads through
// the CRC-verified replay, so a corrupt tail is ignored, and a zero-length
// file compares as an empty store.
func Diff(aPath, bPath string) (DiffResult, error) {
	var d DiffResult
	a, err := openForDiff(aPath)
	if err != nil {
		return d, err
	}
	if a != nil {
		defer a.Close()
	}
	b, err := openForDiff(bPath)
	if err != nil {
		return d, err
	}
	if b != nil {
		defer b.Close()
	}
	for _, key := range storeKeys(a) {
		pa, _ := a.Get(key)
		if b == nil {
			d.OnlyA = append(d.OnlyA, key)
			continue
		}
		pb, ok := b.Get(key)
		switch {
		case !ok:
			d.OnlyA = append(d.OnlyA, key)
		case !bytes.Equal(pa, pb):
			d.Conflicts = append(d.Conflicts, key)
		}
	}
	for _, key := range storeKeys(b) {
		if a == nil || !a.Has(key) {
			d.OnlyB = append(d.OnlyB, key)
		}
	}
	return d, nil
}

// openForDiff opens a store read-only, mapping a zero-length file to a nil
// (empty) store.
func openForDiff(path string) (*Store, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("cellstore: diff input %s: %w", path, err)
	}
	if fi.Size() == 0 {
		return nil, nil
	}
	s, err := OpenReadOnly(path)
	if err != nil {
		return nil, fmt.Errorf("cellstore: diff input %s: %w", path, err)
	}
	return s, nil
}

// storeKeys returns a store's sorted keys, nil-safe.
func storeKeys(s *Store) []string {
	if s == nil {
		return nil
	}
	return s.Keys()
}
