package cellstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeStore creates a store at a fresh path in dir holding the given
// records, written in map-iteration-free deterministic order.
func writeStore(t *testing.T, dir, name string, records [][2]string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range records {
		if err := s.Put(kv[0], []byte(kv[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergeDisjointAndOverlapping(t *testing.T) {
	dir := t.TempDir()
	a := writeStore(t, dir, "a.cells", [][2]string{{"cell/1", "one"}, {"shared", "same"}})
	b := writeStore(t, dir, "b.cells", [][2]string{{"cell/2", "two"}, {"shared", "same"}})
	dst := filepath.Join(dir, "merged.cells")

	st, err := Merge(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources != 2 || st.Records != 3 || len(st.Conflicts) != 0 {
		t.Fatalf("stats = %+v", st)
	}
	m, err := OpenReadOnly(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.Keys(); !reflect.DeepEqual(got, []string{"cell/1", "cell/2", "shared"}) {
		t.Fatalf("merged keys = %v", got)
	}
	// Overlapping identical payloads — the normal outcome of a steal race —
	// are not a conflict.
	if v, _ := m.Get("shared"); string(v) != "same" {
		t.Fatalf("shared = %q", v)
	}
}

func TestMergeConflictReportedLaterWins(t *testing.T) {
	dir := t.TempDir()
	a := writeStore(t, dir, "a.cells", [][2]string{{"k", "from-a"}, {"j", "x"}})
	b := writeStore(t, dir, "b.cells", [][2]string{{"k", "from-b"}, {"j", "y"}})
	dst := filepath.Join(dir, "merged.cells")

	st, err := Merge(dst, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Conflicts, []string{"j", "k"}) {
		t.Fatalf("conflicts = %v", st.Conflicts)
	}
	m, err := OpenReadOnly(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if v, _ := m.Get("k"); string(v) != "from-b" {
		t.Fatalf("later source should win: k = %q", v)
	}
}

// TestMergeCorruptTailSource: a journal truncated mid-append (what kill -9
// leaves behind) contributes its valid prefix — the torn record is simply
// absent, never garbage.
func TestMergeCorruptTailSource(t *testing.T) {
	dir := t.TempDir()
	whole := writeStore(t, dir, "whole.cells", [][2]string{
		{"cell/1", "one"}, {"cell/2", "two"}, {"cell/3", "three"},
	})
	blob, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.cells")
	if err := os.WriteFile(torn, blob[:len(blob)*55/100], 0o644); err != nil {
		t.Fatal(err)
	}
	other := writeStore(t, dir, "other.cells", [][2]string{{"cell/9", "nine"}})
	dst := filepath.Join(dir, "merged.cells")

	st, err := Merge(dst, torn, other)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Conflicts) != 0 {
		t.Fatalf("conflicts = %v", st.Conflicts)
	}
	m, err := OpenReadOnly(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// The torn store's surviving records merged; cell/9 from the healthy one
	// is there; and every surviving payload is intact.
	if !m.Has("cell/1") || !m.Has("cell/9") {
		t.Fatalf("merged keys = %v", m.Keys())
	}
	if m.Has("cell/3") {
		t.Fatal("record past the tear survived the truncation")
	}
	if v, _ := m.Get("cell/1"); string(v) != "one" {
		t.Fatalf("cell/1 = %q", v)
	}
}

func TestMergeEmptyAndMissingSources(t *testing.T) {
	dir := t.TempDir()
	a := writeStore(t, dir, "a.cells", [][2]string{{"k", "v"}})
	empty := filepath.Join(dir, "empty.cells")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	// A zero-length journal (worker died before its first write) is skipped.
	st, err := Merge(filepath.Join(dir, "m1.cells"), a, empty)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sources != 1 || st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// A missing journal is an error: silently dropping one would masquerade
	// as a clean merge of less work.
	if _, err := Merge(filepath.Join(dir, "m2.cells"), a, filepath.Join(dir, "nope.cells")); err == nil {
		t.Fatal("missing source accepted")
	}
}

// TestMergeDeterministicBytes: merging the same sources produces
// byte-identical output regardless of how the sources ordered their
// appends, because the destination is rewritten in sorted key order.
func TestMergeDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	a1 := writeStore(t, dir, "a1.cells", [][2]string{{"x", "1"}, {"y", "2"}})
	a2 := writeStore(t, dir, "a2.cells", [][2]string{{"y", "2"}, {"x", "1"}})
	d1 := filepath.Join(dir, "d1.cells")
	d2 := filepath.Join(dir, "d2.cells")
	if _, err := Merge(d1, a1); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(d2, a2); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(d1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("merge output depends on source append order")
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	a := writeStore(t, dir, "a.cells", [][2]string{{"both", "same"}, {"clash", "va"}, {"onlya", "1"}})
	b := writeStore(t, dir, "b.cells", [][2]string{{"both", "same"}, {"clash", "vb"}, {"onlyb", "2"}})

	d, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() {
		t.Fatal("differing stores reported clean")
	}
	if !reflect.DeepEqual(d.OnlyA, []string{"onlya"}) ||
		!reflect.DeepEqual(d.OnlyB, []string{"onlyb"}) ||
		!reflect.DeepEqual(d.Conflicts, []string{"clash"}) {
		t.Fatalf("diff = %+v", d)
	}

	same, err := Diff(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !same.Clean() {
		t.Fatalf("self-diff not clean: %+v", same)
	}

	// A zero-length file diffs as an empty store; a missing one is an error.
	empty := filepath.Join(dir, "empty.cells")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	de, err := Diff(a, empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(de.OnlyA) != 3 || len(de.OnlyB) != 0 || len(de.Conflicts) != 0 {
		t.Fatalf("diff vs empty = %+v", de)
	}
	if _, err := Diff(a, filepath.Join(dir, "nope.cells")); err == nil {
		t.Fatal("missing diff input accepted")
	}
}
