package cellstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cells.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := tempStore(t)
	if err := s.Put("a", []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", []byte{}); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("a")
	if !ok || string(got) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", got, ok)
	}
	if got, ok = s.Get("b"); !ok || len(got) != 0 {
		t.Fatalf("Get(b) = %q, %v", got, ok)
	}
	if _, ok = s.Get("missing"); ok {
		t.Fatal("missing key found")
	}
	if s.Len() != 2 || !s.Has("a") || s.Has("zzz") {
		t.Fatalf("Len/Has wrong: %d", s.Len())
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Keys = %v", got)
	}
}

func TestLastRecordWins(t *testing.T) {
	s, path := tempStore(t)
	for i := 0; i < 3; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := s.Get("k"); string(got) != "v2" {
		t.Fatalf("in-memory Get = %q, want v2", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, _ := re.Get("k"); string(got) != "v2" {
		t.Fatalf("replayed Get = %q, want v2", got)
	}
	if re.Len() != 1 {
		t.Fatalf("Len after replay = %d", re.Len())
	}
}

func TestReopenAppends(t *testing.T) {
	s, path := tempStore(t)
	if err := s.Put("first", []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Put("second", []byte("2")); err != nil {
		t.Fatal(err)
	}
	re.Close()
	again, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	for k, want := range map[string]string{"first": "1", "second": "2"} {
		if got, ok := again.Get(k); !ok || string(got) != want {
			t.Fatalf("Get(%s) = %q, %v", k, got, ok)
		}
	}
}

// TestCorruptTailRecovery covers the crash contract: records before the
// corruption survive; the bad tail is truncated; the store keeps working.
func TestCorruptTailRecovery(t *testing.T) {
	cases := map[string]struct {
		corrupt        func([]byte) []byte
		victimSurvives bool
	}{
		// A record cut off mid-payload, as a killed writer leaves it.
		"truncated": {func(b []byte) []byte { return b[:len(b)-3] }, false},
		// Garbage appended after the last record: every real record is
		// intact; only the junk is cut off.
		"garbage": {func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3) }, true},
		// A bit flipped inside the final record's payload (CRC mismatch).
		"bitflip": {func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }, false},
	}
	for name, tc := range cases {
		corrupt, victimSurvives := tc.corrupt, tc.victimSurvives
		t.Run(name, func(t *testing.T) {
			s, path := tempStore(t)
			if err := s.Put("keep1", []byte("p1")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("keep2", []byte("p2")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put("victim", []byte("will be damaged")); err != nil {
				t.Fatal(err)
			}
			s.Close()
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(append([]byte(nil), blob...)), 0o644); err != nil {
				t.Fatal(err)
			}
			re, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			for k, want := range map[string]string{"keep1": "p1", "keep2": "p2"} {
				if got, ok := re.Get(k); !ok || string(got) != want {
					t.Fatalf("%s lost after recovery: %q, %v", k, got, ok)
				}
			}
			if _, ok := re.Get("victim"); ok != victimSurvives {
				t.Fatalf("victim survived = %v, want %v", ok, victimSurvives)
			}
			// The store stays usable: new appends land after the truncation
			// point and replay cleanly.
			if err := re.Put("after", []byte("ok")); err != nil {
				t.Fatal(err)
			}
			re.Close()
			fin, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer fin.Close()
			if got, ok := fin.Get("after"); !ok || string(got) != "ok" {
				t.Fatalf("post-recovery append lost: %q, %v", got, ok)
			}
		})
	}
}

func TestOpenRejectsForeignFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("{\"json\": true}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("foreign file opened as a store")
	}
	if IsStore(path) {
		t.Fatal("IsStore accepted a foreign file")
	}
}

func TestCreateTruncates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.store")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("old", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 0 {
		t.Fatalf("Create kept %d old records", s2.Len())
	}
	if !IsStore(path) {
		t.Fatal("IsStore rejected a real store")
	}
}

// TestDeterministicBytes: the same record sequence produces the same file
// bytes — the property grid-save byte-identity tests build on.
func TestDeterministicBytes(t *testing.T) {
	dir := t.TempDir()
	write := func(path string) []byte {
		s, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := s.Put(fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte(i)}, i*7)); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a := write(filepath.Join(dir, "a"))
	b := write(filepath.Join(dir, "b"))
	if !bytes.Equal(a, b) {
		t.Fatal("identical record sequences serialised differently")
	}
}

// TestConcurrentPuts hammers Put from many goroutines (run under -race in
// CI); every record must survive a reopen.
func TestConcurrentPuts(t *testing.T) {
	s, path := tempStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 8*25 {
		t.Fatalf("replayed %d records, want %d", re.Len(), 8*25)
	}
	for w := 0; w < 8; w++ {
		for i := 0; i < 25; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			if got, ok := re.Get(key); !ok || string(got) != key {
				t.Fatalf("lost %s", key)
			}
		}
	}
}

// TestOpenReadOnlyDoesNotTruncateWriterTail is the regression test for the
// single-writer/many-readers contract: a reader that opens the store while a
// writer's record append is still in flight (a partial record at the tail)
// must see the valid prefix and leave the file byte-for-byte untouched.
// Before OpenReadOnly existed, read paths used Open, which truncates the
// "corrupt" tail — destroying the live writer's in-flight record.
func TestOpenReadOnlyDoesNotTruncateWriterTail(t *testing.T) {
	s, path := tempStore(t)
	if err := s.Put("done", []byte("complete record")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a writer mid-append: half a record at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if !ro.ReadOnly() {
		t.Fatal("ReadOnly() = false on a read-only store")
	}
	if got, ok := ro.Get("done"); !ok || string(got) != "complete record" {
		t.Fatalf("valid prefix not readable: %q, %v", got, ok)
	}
	if err := ro.Put("x", nil); err != ErrReadOnly {
		t.Fatalf("Put on read-only store: err = %v, want ErrReadOnly", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("read-only open changed the file: %d bytes -> %d bytes", len(before), len(after))
	}

	// The writer finishes its append (full record over its partial one, as
	// Open's recovery + WriteAt would); both records must then be visible to
	// a fresh reader.
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Put("late", []byte("writer continues")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	ro2, err := OpenReadOnly(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro2.Close()
	if got, _ := ro2.Get("late"); string(got) != "writer continues" {
		t.Fatalf("writer's completed append invisible to reader: %q", got)
	}
}

func TestOpenReadOnlyRejectsMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenReadOnly(filepath.Join(dir, "absent")); err == nil {
		t.Fatal("OpenReadOnly created or accepted a missing file")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReadOnly(empty); err == nil {
		t.Fatal("OpenReadOnly accepted an empty file")
	}
	if fi, err := os.Stat(empty); err != nil || fi.Size() != 0 {
		t.Fatalf("read-only open of an empty file wrote to it: %v, %v", fi, err)
	}
}

// TestConcurrentReadersWithSingleWriter hammers OpenReadOnly against a live
// writer (run under -race in CI): every reader must open cleanly and see a
// valid record prefix, whatever append it lands in the middle of.
func TestConcurrentReadersWithSingleWriter(t *testing.T) {
	s, path := tempStore(t)
	if err := s.Put("seed", []byte("present from the start")); err != nil {
		t.Fatal(err)
	}
	const puts = 200
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < puts; i++ {
			if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ro, err := OpenReadOnly(path)
				if err != nil {
					t.Error(err)
					return
				}
				if got, ok := ro.Get("seed"); !ok || string(got) != "present from the start" {
					t.Errorf("reader lost the seed record: %q, %v", got, ok)
				}
				ro.Close()
			}
		}()
	}
	wg.Wait()
	<-done
	// Nothing the readers did may have damaged the journal.
	s.Close()
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != puts+1 {
		t.Fatalf("replayed %d records, want %d", re.Len(), puts+1)
	}
}

func TestOversizedKeyRejected(t *testing.T) {
	s, _ := tempStore(t)
	if err := s.Put(string(bytes.Repeat([]byte{'k'}, 1<<17)), nil); err == nil {
		t.Fatal("64 KiB+ key accepted")
	}
}
