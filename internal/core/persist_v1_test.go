package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/stats"
)

const v1FixturePath = "testdata/grid_v1.json.gz"

// v1FixtureGrid is the tiny grid frozen into the checked-in legacy
// fixture: one dataset, one model, one cell, with distinctive values so
// the migration test can verify every field survived.
func v1FixtureGrid() gridFileV1 {
	opts := DefaultOptions()
	opts.Scale = 0.25
	opts.Seed = 7
	opts.Datasets = []string{"ETTm1"}
	opts.Models = []string{"Arima"}
	opts.Methods = []compress.Method{compress.MethodPMC}
	opts.ErrorBounds = []float64{0.1}
	return gridFileV1{
		Version: gridFileVersionV1,
		Opts:    opts,
		Datasets: map[string]*datasetFileV1{
			"ETTm1": {
				Name:           "ETTm1",
				SeasonalPeriod: 96,
				Interval:       900,
				RawValues:      []float64{1, 2.5, -3, 4.125, 2, 1.75},
				RawTest:        []float64{4.125, 2, 1.75},
				GorillaCR:      1.5,
				Baselines: map[string]stats.Metrics{
					"Arima": {R: 0.9, RSE: 0.2, RMSE: 0.3, NRMSE: 0.25},
				},
				Cells: []*cellFileV1{{
					Method:       compress.MethodPMC,
					Epsilon:      0.1,
					CR:           3.25,
					Segments:     2,
					TE:           stats.Metrics{R: 0.99, RSE: 0.01, RMSE: 0.05, NRMSE: 0.04},
					Decompressed: []float64{4.1, 2.05, 1.75},
					ModelMetrics: map[string]stats.Metrics{
						"Arima": {R: 0.88, RSE: 0.22, RMSE: 0.31, NRMSE: 0.27},
					},
					TFE: map[string]float64{"Arima": 0.08},
				}},
			},
		},
	}
}

// TestRegenerateV1Fixture rewrites the checked-in legacy fixture when run
// with REGEN_V1_FIXTURE=1. It exists so the fixture's provenance is in the
// repo: the bytes are exactly what the pre-store SaveGrid produced for
// v1FixtureGrid (monolithic gzip-compressed JSON).
func TestRegenerateV1Fixture(t *testing.T) {
	if os.Getenv("REGEN_V1_FIXTURE") == "" {
		t.Skip("set REGEN_V1_FIXTURE=1 to rewrite the fixture")
	}
	j, err := json.Marshal(v1FixtureGrid())
	if err != nil {
		t.Fatal(err)
	}
	gz, err := compress.GzipBytes(j)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(v1FixturePath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1FixturePath, gz, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGridV1Migration loads the checked-in legacy (v1, monolithic JSON)
// grid file and migrates it to a cell store via SaveGrid, verifying the
// values survive both hops.
func TestGridV1Migration(t *testing.T) {
	swapGridCache(t)
	want := v1FixtureGrid()

	check := func(t *testing.T, g *GridResult) {
		t.Helper()
		ds := g.Datasets["ETTm1"]
		if ds == nil {
			t.Fatal("missing dataset")
		}
		wds := want.Datasets["ETTm1"]
		if ds.GorillaCR != wds.GorillaCR || ds.SeasonalPeriod != wds.SeasonalPeriod || ds.Interval != wds.Interval {
			t.Fatalf("dataset metadata mismatch: %+v", ds)
		}
		if ds.Baselines["Arima"] != wds.Baselines["Arima"] {
			t.Fatalf("baseline mismatch: %+v", ds.Baselines)
		}
		c := ds.Cell(compress.MethodPMC, 0.1)
		if c == nil {
			t.Fatal("cell lookup failed on migrated grid")
		}
		wc := wds.Cells[0]
		if c.CR != wc.CR || c.Segments != wc.Segments || c.TE != wc.TE {
			t.Fatalf("cell mismatch: %+v", c)
		}
		if c.ModelMetrics["Arima"] != wc.ModelMetrics["Arima"] || c.TFE["Arima"] != wc.TFE["Arima"] {
			t.Fatalf("cell metrics mismatch: %+v", c)
		}
		for i, v := range wc.Decompressed {
			if c.Decompressed[i] != v {
				t.Fatalf("decompressed[%d] = %v, want %v", i, c.Decompressed[i], v)
			}
		}
	}

	g, err := LoadGrid(v1FixturePath)
	if err != nil {
		t.Fatal(err)
	}
	if g.Provenance.Source != SourceLoaded || g.Provenance.CellsLoaded != 1 {
		t.Fatalf("v1 provenance = %+v", g.Provenance)
	}
	check(t, g)

	// Migrate: SaveGrid writes the store format; LoadGrid reads it back.
	migrated := filepath.Join(t.TempDir(), "migrated.cells")
	if err := SaveGrid(g, migrated); err != nil {
		t.Fatal(err)
	}
	ResetGridCache()
	g2, err := LoadGrid(migrated)
	if err != nil {
		t.Fatal(err)
	}
	check(t, g2)
}
