package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"lossyts/internal/core/cellstore"
)

// WorkUnit is the shared unit-of-work type of the work plane: a durable
// record key plus the computation that produces the record's bytes. The
// batch grid runner (checkpoints, SaveGrid) and the serving plane's cache
// misses both flow through it, so "compute exactly this record once and
// persist it" has a single implementation instead of two parallel ones.
type WorkUnit struct {
	Key     string
	Compute func(ctx context.Context) ([]byte, error)
}

// WorkSource reports which layer of the executor answered a WorkUnit.
type WorkSource int

const (
	// WorkComputed: this call ran the computation itself.
	WorkComputed WorkSource = iota
	// WorkHit: the durable store already held the record.
	WorkHit
	// WorkShared: the call joined another caller's in-flight computation.
	WorkShared
)

// String renders the source for logs and cache headers.
func (s WorkSource) String() string {
	switch s {
	case WorkHit:
		return "hit"
	case WorkShared:
		return "dedup"
	default:
		return "miss"
	}
}

// WorkExec executes WorkUnits against an optional durable store behind a
// singleflight layer: N concurrent identical units trigger exactly one
// computation, and completed units are answered from the store without
// computing at all. A nil store degrades gracefully to in-flight dedupe
// only.
type WorkExec struct {
	store *cellstore.Store // nil = no durable layer
	group flightGroup

	// OnCompute, when non-nil, is called right before every computation
	// actually runs (singleflight leaders that missed the store) with the
	// unit's key. The serving plane counts computations through it; tests
	// use it to hold a leader open until every follower has arrived.
	OnCompute func(key string)
}

// NewWorkExec builds an executor over store (nil for dedupe-only).
func NewWorkExec(store *cellstore.Store) *WorkExec {
	return &WorkExec{store: store}
}

// Waiting reports how many callers are parked on in-flight units —
// concurrency tests use it to release a held leader only once every
// follower has genuinely joined the flight.
func (e *WorkExec) Waiting() int { return e.group.waiting() }

// Do answers one unit: store lookup first, then the singleflight layer,
// then compute-and-store. The returned WorkSource says which layer
// answered. A follower whose leader was cancelled retries the computation
// once itself — the leader's caller gave up, but this caller is still
// waiting, and a context error from someone else's request must never leak
// into this one.
//
// The returned bytes may be shared across callers and must be treated as
// read-only.
func (e *WorkExec) Do(ctx context.Context, u WorkUnit) ([]byte, WorkSource, error) {
	if e.store != nil {
		if payload, ok := e.store.Get(u.Key); ok {
			return payload, WorkHit, nil
		}
	}
	var fromStore bool
	run := func() ([]byte, error) {
		if e.store != nil {
			// Re-check under the flight: a caller that missed the lookup
			// above but won flight leadership only after the previous leader
			// stored its result must not recompute (the classic stampede
			// residual). This check makes "N identical units, exactly one
			// computation" structural rather than probabilistic.
			if payload, ok := e.store.Get(u.Key); ok {
				fromStore = true
				return payload, nil
			}
		}
		return e.computeAndStore(ctx, u)
	}
	for attempt := 0; ; attempt++ {
		out, err, shared := e.group.Do(u.Key, run)
		if shared && err != nil && attempt == 0 && isCancellation(err) && ctx.Err() == nil {
			continue // the leader's caller hung up; ours is still waiting
		}
		switch {
		case err != nil:
			return nil, WorkComputed, err
		case shared:
			return out, WorkShared, nil
		case fromStore:
			return out, WorkHit, nil
		default:
			return out, WorkComputed, nil
		}
	}
}

// Refresh is the batch path's write mode: compute the unit and overwrite
// its stored record unconditionally, still deduplicating concurrent
// identical refreshes through the flight layer. The grid's delta planner —
// not record presence — decides what runs, because a present cell record
// can still lack models a grown run needs; a skip-if-present executor
// would silently starve those runs.
func (e *WorkExec) Refresh(ctx context.Context, u WorkUnit) ([]byte, error) {
	run := func() ([]byte, error) { return e.computeAndStore(ctx, u) }
	for attempt := 0; ; attempt++ {
		out, err, shared := e.group.Do(u.Key, run)
		if shared && err != nil && attempt == 0 && isCancellation(err) && ctx.Err() == nil {
			continue
		}
		return out, err
	}
}

// computeAndStore runs the unit's computation and persists the result.
func (e *WorkExec) computeAndStore(ctx context.Context, u WorkUnit) ([]byte, error) {
	if e.OnCompute != nil {
		e.OnCompute(u.Key)
	}
	out, err := u.Compute(ctx)
	if err != nil {
		return nil, err
	}
	if e.store != nil {
		if err := e.store.Put(u.Key, out); err != nil {
			return nil, fmt.Errorf("core: storing %s: %w", u.Key, err)
		}
	}
	return out, nil
}

// isCancellation reports whether err stems from a cancelled context.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// flightGroup deduplicates concurrent computations by key: while one call
// for a key is in flight, later calls for the same key block and share its
// result instead of computing again. It is the standard singleflight shape
// (stdlib-only — the module vendors nothing), reduced to what the work
// plane needs.
//
// Unlike a cache, a flight entry lives only as long as the computation: once
// the leader returns, the key is forgotten and the durable result store
// takes over as the dedupe layer for later arrivals.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight computation and its eventual result.
type flightCall struct {
	done    chan struct{}
	waiters int // callers parked on done, guarded by flightGroup.mu
	val     []byte
	err     error
}

// waiting reports how many callers are currently parked on in-flight calls.
func (g *flightGroup) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.m {
		n += c.waiters
	}
	return n
}

// Do runs fn for key, unless a call for key is already in flight, in which
// case it waits for that call and returns its result. shared reports whether
// the returned value came from another caller's computation.
//
// The returned byte slice is shared across callers and must be treated as
// read-only.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
