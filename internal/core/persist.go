package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"lossyts/internal/compress"
	"lossyts/internal/core/cellstore"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// The results plane persists grids as cell-addressed record stores
// (cellstore journal files): one record per grid cell, one per dataset,
// plus the option set of the last completed run. SaveGrid writes a
// canonical store from scratch; RunGridContext appends to one
// incrementally as checkpoints (Options.Store). Both speak the same
// format, so a checkpoint store from a finished run and a SaveGrid file
// are interchangeable inputs to LoadGrid.
//
// Legacy (v1) saved grids — one monolithic gzip-compressed JSON document —
// are still read by LoadGrid, which sniffs the format from the file
// header, so pre-store grid files keep loading without a migration step.

// encodeFloats encodes a float slice with the repo's own lossless Gorilla
// codec — persisted reconstructions cost bits proportional to their
// information, not 20 JSON characters per point. nil round-trips to nil.
func encodeFloats(values []float64) ([]byte, error) {
	if len(values) == 0 {
		return nil, nil
	}
	c, err := (compress.Gorilla{}).Compress(timeseries.New("", 0, 1, values), 0)
	if err != nil {
		return nil, err
	}
	return c.Payload, nil
}

// decodeFloats inverts encodeFloats bit-exactly (Gorilla is lossless).
func decodeFloats(payload []byte) ([]float64, error) {
	if len(payload) == 0 {
		return nil, nil
	}
	c := &compress.Compressed{Method: compress.MethodGorilla, Payload: payload}
	s, err := c.Decompress()
	if err != nil {
		return nil, err
	}
	return s.Values, nil
}

// cellRecord is the persisted form of one grid cell (store schema
// RecordSchema, enforced through the record key). Decompressed is
// Gorilla-encoded; everything else is small and stays JSON.
type cellRecord struct {
	Method       compress.Method
	Epsilon      float64
	CR           float64
	Segments     int
	TE           stats.Metrics
	Decompressed []byte
	ModelMetrics map[string]stats.Metrics
	TFE          map[string]float64
}

// datasetRecord is the persisted per-dataset state shared by all of its
// cells: raw series (Gorilla-encoded), lossless baseline, and the
// raw-data model baselines.
type datasetRecord struct {
	Name           string
	SeasonalPeriod int
	Interval       int64
	RawValues      []byte
	RawTest        []byte
	GorillaCR      float64
	Baselines      map[string]stats.Metrics
}

// marshalRecord renders a record payload: gzip-compressed JSON. Gzip keeps
// the metric maps cheap; the float-heavy fields are already Gorilla bytes
// (JSON base64) before gzip sees them.
func marshalRecord(v any) ([]byte, error) {
	j, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return compress.GzipBytes(j)
}

func unmarshalRecord(payload []byte, v any) error {
	j, err := compress.GunzipBytes(payload)
	if err != nil {
		return err
	}
	return json.Unmarshal(j, v)
}

// marshalCellRecord renders one cell's persisted record bytes. A pure
// function of the cell, so two runs producing bit-identical cells produce
// bit-identical records — the property the merge and resume tests compare.
func marshalCellRecord(c *Cell) ([]byte, error) {
	dec, err := encodeFloats(c.Decompressed)
	if err != nil {
		return nil, err
	}
	return marshalRecord(&cellRecord{
		Method:       c.Method,
		Epsilon:      c.Epsilon,
		CR:           c.CR,
		Segments:     c.Segments,
		TE:           c.TE,
		Decompressed: dec,
		ModelMetrics: c.ModelMetrics,
		TFE:          c.TFE,
	})
}

// marshalDatasetRecord renders a dataset's shared-state record bytes.
func marshalDatasetRecord(ds *DatasetResult) ([]byte, error) {
	raw, err := encodeFloats(ds.RawValues)
	if err != nil {
		return nil, err
	}
	rawTest, err := encodeFloats(ds.RawTest)
	if err != nil {
		return nil, err
	}
	return marshalRecord(&datasetRecord{
		Name:           ds.Name,
		SeasonalPeriod: ds.SeasonalPeriod,
		Interval:       ds.Interval,
		RawValues:      raw,
		RawTest:        rawTest,
		GorillaCR:      ds.GorillaCR,
		Baselines:      ds.Baselines,
	})
}

// cellWorkUnit is one cell checkpoint as a work-plane unit: the canonical
// CellKey plus the record marshalling. The batch path executes it with
// WorkExec.Refresh (the delta planner already decided it must be written).
func cellWorkUnit(o Options, dataset string, c *Cell) WorkUnit {
	return WorkUnit{
		Key:     o.cellRecordKey(dataset, c.Method, c.Epsilon),
		Compute: func(context.Context) ([]byte, error) { return marshalCellRecord(c) },
	}
}

// datasetWorkUnit is a dataset checkpoint as a work-plane unit. It is
// executed before the dataset's cell units so that on resume a present cell
// record always implies an at-least-as-new dataset record.
func datasetWorkUnit(o Options, ds *DatasetResult) WorkUnit {
	return WorkUnit{
		Key:     o.datasetRecordKey(ds.Name),
		Compute: func(context.Context) ([]byte, error) { return marshalDatasetRecord(ds) },
	}
}

// putOptsRecord records the completed option set; LoadGrid assembles the
// grid this run produced. Scheduling-only fields are normalised away so
// the record is independent of how the grid was computed.
func putOptsRecord(s *cellstore.Store, o Options) error {
	payload, err := marshalRecord(o.normalized())
	if err != nil {
		return err
	}
	return s.Put(optsRecordKey, payload)
}

// storedDataset is what the execution layer recovers from a store for one
// dataset: the dataset record (if present) and every requested cell that
// has a record, indexed by address. A nil *storedDataset (dataset never
// checkpointed, or no store at all) behaves as fully absent.
type storedDataset struct {
	name           string
	seasonalPeriod int
	interval       int64
	rawValues      []float64
	rawTest        []float64
	gorillaCR      float64
	baselines      map[string]stats.Metrics
	cells          map[CellAddr]*Cell
}

// loadStoredDataset reads everything the store holds for (opts, name).
// It returns (nil, nil) when the dataset record is absent. Records that
// fail to decode are treated as absent — the run recomputes and
// overwrites them — so a damaged store heals instead of bricking.
func loadStoredDataset(s *cellstore.Store, o Options, name string) (*storedDataset, error) {
	payload, ok := s.Get(o.datasetRecordKey(name))
	if !ok {
		return nil, nil
	}
	var dr datasetRecord
	if err := unmarshalRecord(payload, &dr); err != nil {
		return nil, nil
	}
	raw, err := decodeFloats(dr.RawValues)
	if err != nil {
		return nil, nil
	}
	rawTest, err := decodeFloats(dr.RawTest)
	if err != nil {
		return nil, nil
	}
	sd := &storedDataset{
		name:           name,
		seasonalPeriod: dr.SeasonalPeriod,
		interval:       dr.Interval,
		rawValues:      raw,
		rawTest:        rawTest,
		gorillaCR:      dr.GorillaCR,
		baselines:      dr.Baselines,
		cells:          map[CellAddr]*Cell{},
	}
	if sd.baselines == nil {
		sd.baselines = map[string]stats.Metrics{}
	}
	for _, m := range o.methods() {
		for _, eps := range o.errorBounds() {
			payload, ok := s.Get(o.cellRecordKey(name, m, eps))
			if !ok {
				continue
			}
			var cr cellRecord
			if err := unmarshalRecord(payload, &cr); err != nil {
				continue
			}
			dec, err := decodeFloats(cr.Decompressed)
			if err != nil {
				continue
			}
			c := &Cell{
				Method:       cr.Method,
				Epsilon:      cr.Epsilon,
				CR:           cr.CR,
				Segments:     cr.Segments,
				TE:           cr.TE,
				Decompressed: dec,
				ModelMetrics: cr.ModelMetrics,
				TFE:          cr.TFE,
			}
			if c.ModelMetrics == nil {
				c.ModelMetrics = map[string]stats.Metrics{}
			}
			if c.TFE == nil {
				c.TFE = map[string]float64{}
			}
			sd.cells[CellAddr{m, eps}] = c
		}
	}
	return sd, nil
}

// cell returns the stored cell at (m, eps), nil-receiver safe.
func (sd *storedDataset) cell(m compress.Method, eps float64) *Cell {
	if sd == nil {
		return nil
	}
	return sd.cells[CellAddr{m, eps}]
}

// fillBaselines seeds dst with the stored raw-data baselines, so models
// the delta run does not retrain keep theirs; recomputed models overwrite
// with bit-identical values.
func (sd *storedDataset) fillBaselines(dst map[string]stats.Metrics) {
	if sd == nil {
		return
	}
	for model, m := range sd.baselines {
		dst[model] = m
	}
}

// completeFor reports whether sd already covers the given cells (and every
// requested model), in which case the pipeline can be skipped for them. A
// partition run asks about its owned slice of the dataset; a full run asks
// about the whole grid via complete.
func (sd *storedDataset) completeFor(o Options, addrs []CellAddr) bool {
	if sd == nil {
		return false
	}
	models := o.models()
	for _, model := range models {
		if _, ok := sd.baselines[model]; !ok {
			return false
		}
	}
	for _, a := range addrs {
		c := sd.cells[a]
		if c == nil {
			return false
		}
		for _, model := range models {
			if _, ok := c.ModelMetrics[model]; !ok {
				return false
			}
		}
	}
	return true
}

// complete reports whether sd already covers every requested cell and
// model, in which case the whole dataset pipeline can be skipped.
func (sd *storedDataset) complete(o Options) bool {
	if sd == nil {
		return false
	}
	var addrs []CellAddr
	for _, m := range o.methods() {
		for _, eps := range o.errorBounds() {
			addrs = append(addrs, CellAddr{m, eps})
		}
	}
	return sd.completeFor(o, addrs)
}

// assemble builds the DatasetResult view from stored records, cells in
// the canonical methods × bounds order. Only valid when complete(o).
func (sd *storedDataset) assemble(o Options) *DatasetResult {
	dr := &DatasetResult{
		Name:           sd.name,
		SeasonalPeriod: sd.seasonalPeriod,
		Interval:       sd.interval,
		RawValues:      sd.rawValues,
		RawTest:        sd.rawTest,
		GorillaCR:      sd.gorillaCR,
		Baselines:      sd.baselines,
	}
	for _, m := range o.methods() {
		for _, eps := range o.errorBounds() {
			dr.Cells = append(dr.Cells, sd.cells[CellAddr{m, eps}])
		}
	}
	dr.buildIndex()
	return dr
}

// SaveGrid writes the grid as a canonical cell store: datasets in option
// order, cells in grid order, option set last. The write sequence is a
// pure function of the grid, so two saves of bit-identical grids produce
// bit-identical files — the property the resume tests and the multi-worker
// merge tests compare. Records are executed as the same WorkUnits the
// checkpoint stage uses, so the canonical save and the incremental
// checkpoint path cannot drift apart.
func SaveGrid(g *GridResult, path string) error {
	s, err := cellstore.Create(path)
	if err != nil {
		return err
	}
	defer s.Close()
	exec := NewWorkExec(s)
	ctx := context.Background()
	opts := g.Opts.normalized()
	for _, name := range opts.datasets() {
		ds := g.Datasets[name]
		if ds == nil {
			return fmt.Errorf("core: grid has no dataset %s", name)
		}
		if _, err := exec.Refresh(ctx, datasetWorkUnit(opts, ds)); err != nil {
			return err
		}
		for _, c := range ds.Cells {
			if _, err := exec.Refresh(ctx, cellWorkUnit(opts, name, c)); err != nil {
				return err
			}
		}
	}
	if err := putOptsRecord(s, opts); err != nil {
		return err
	}
	return s.Close()
}

// LoadGrid reads a saved grid — a cell store written by SaveGrid or a
// finished checkpoint store, or a legacy v1 monolithic gzip-JSON file —
// and registers it in the in-process memoisation cache, so subsequent
// RunGrid calls with the same options return it directly.
func LoadGrid(path string) (*GridResult, error) {
	if cellstore.IsStore(path) {
		return loadGridStore(path)
	}
	return loadGridV1(path)
}

// loadGridStore assembles a grid from a cell store. The store must hold a
// completed option set (SaveGrid always writes one; RunGridContext writes
// it when the run finishes) and every cell that option set requests. The
// store is opened read-only, so any number of loaders can read a store
// that a single live writer is still appending to.
func loadGridStore(path string) (*GridResult, error) {
	s, err := cellstore.OpenReadOnly(path)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	payload, ok := s.Get(optsRecordKey)
	if !ok {
		return nil, fmt.Errorf("core: %s holds no completed run (it is a checkpoint store of an interrupted grid; re-run with the store to finish it)", path)
	}
	var opts Options
	if err := unmarshalRecord(payload, &opts); err != nil {
		return nil, fmt.Errorf("core: decoding option set of %s: %w", path, err)
	}
	g := &GridResult{Opts: opts, Datasets: map[string]*DatasetResult{}}
	cells := 0
	for _, name := range opts.datasets() {
		sd, err := loadStoredDataset(s, opts, name)
		if err != nil {
			return nil, err
		}
		if !sd.complete(opts) {
			return nil, fmt.Errorf("core: %s is missing cells of dataset %s (interrupted run; re-run with the store to finish it)", path, name)
		}
		g.Datasets[name] = sd.assemble(opts)
		cells += len(g.Datasets[name].Cells)
	}
	g.Provenance = Provenance{Source: SourceLoaded, StorePath: path, CellsLoaded: cells}
	registerGrid(g)
	return g, nil
}

// registerGrid memoises a loaded grid under its option key.
func registerGrid(g *GridResult) {
	gridMu.Lock()
	gridCache[g.Opts.key()] = g
	gridMu.Unlock()
}

// StoreGridInfo summarises one option set's holdings inside a store.
type StoreGridInfo struct {
	Signature string
	// Datasets maps dataset name to the number of cell records present.
	Datasets map[string]int
}

// StoreInfo is InspectStore's summary of a store file.
type StoreInfo struct {
	Path    string
	Records int
	Size    int64
	// Complete reports whether the store holds a completed run's option
	// set, i.e. whether LoadGrid would even attempt assembly.
	Complete bool
	Grids    []StoreGridInfo
}

// String renders a human-readable multi-line summary.
func (si StoreInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d records, %d bytes", si.Path, si.Records, si.Size)
	if si.Complete {
		b.WriteString(", completed run recorded")
	} else {
		b.WriteString(", no completed run (checkpoints only)")
	}
	b.WriteByte('\n')
	for _, gi := range si.Grids {
		fmt.Fprintf(&b, "  grid %s\n", gi.Signature)
		names := make([]string, 0, len(gi.Datasets))
		for name := range gi.Datasets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "    %s: %d cells\n", name, gi.Datasets[name])
		}
	}
	return b.String()
}

// InspectStore summarises a store file without decoding record payloads:
// which grid signatures it holds, and how many cell records per dataset.
// Like LoadGrid it opens the store read-only — inspecting a store another
// process is writing never races the writer.
func InspectStore(path string) (StoreInfo, error) {
	s, err := cellstore.OpenReadOnly(path)
	if err != nil {
		return StoreInfo{}, err
	}
	defer s.Close()
	si := StoreInfo{Path: path, Records: s.Len(), Size: s.Size(), Complete: s.Has(optsRecordKey)}
	grids := map[string]StoreGridInfo{}
	var sigs []string
	for _, key := range s.Keys() {
		kind, fields := keyKind(key)
		if kind != "cell" || len(fields) != 5 {
			continue
		}
		sig, dataset := fields[1], fields[2]
		gi, ok := grids[sig]
		if !ok {
			gi = StoreGridInfo{Signature: sig, Datasets: map[string]int{}}
			sigs = append(sigs, sig)
		}
		gi.Datasets[dataset]++
		grids[sig] = gi
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		si.Grids = append(si.Grids, grids[sig])
	}
	return si, nil
}

// ---- legacy v1 format -------------------------------------------------

// gridFileV1 is the legacy on-disk representation: the whole grid as one
// gzip-compressed JSON document. Kept read-only for migration; SaveGrid
// has written cell stores since the results-plane refactor.
type gridFileV1 struct {
	Version  int
	Opts     Options
	Datasets map[string]*datasetFileV1
}

type datasetFileV1 struct {
	Name           string
	SeasonalPeriod int
	Interval       int64
	RawValues      []float64
	RawTest        []float64
	GorillaCR      float64
	Baselines      map[string]stats.Metrics
	Cells          []*cellFileV1
}

type cellFileV1 struct {
	Method       compress.Method
	Epsilon      float64
	CR           float64
	Segments     int
	TE           stats.Metrics
	Decompressed []float64
	ModelMetrics map[string]stats.Metrics
	TFE          map[string]float64
}

const gridFileVersionV1 = 1

// loadGridV1 reads a legacy monolithic grid file.
func loadGridV1(path string) (*GridResult, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	j, err := compress.GunzipBytes(blob)
	if err != nil {
		return nil, fmt.Errorf("core: %s is not a saved grid: %w", path, err)
	}
	var in gridFileV1
	if err := json.Unmarshal(j, &in); err != nil {
		return nil, fmt.Errorf("core: decoding %s: %w", path, err)
	}
	if in.Version != gridFileVersionV1 {
		return nil, fmt.Errorf("core: grid file version %d, want %d", in.Version, gridFileVersionV1)
	}
	g := &GridResult{Opts: in.Opts, Datasets: map[string]*DatasetResult{}}
	cells := 0
	for name, df := range in.Datasets {
		ds := &DatasetResult{
			Name:           df.Name,
			SeasonalPeriod: df.SeasonalPeriod,
			Interval:       df.Interval,
			RawValues:      df.RawValues,
			RawTest:        df.RawTest,
			GorillaCR:      df.GorillaCR,
			Baselines:      df.Baselines,
		}
		for _, c := range df.Cells {
			ds.Cells = append(ds.Cells, &Cell{
				Method:       c.Method,
				Epsilon:      c.Epsilon,
				CR:           c.CR,
				Segments:     c.Segments,
				TE:           c.TE,
				Decompressed: c.Decompressed,
				ModelMetrics: c.ModelMetrics,
				TFE:          c.TFE,
			})
			cells++
		}
		ds.buildIndex()
		g.Datasets[name] = ds
	}
	g.Provenance = Provenance{Source: SourceLoaded, StorePath: path, CellsLoaded: cells}
	registerGrid(g)
	return g, nil
}
