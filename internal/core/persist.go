package core

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"

	"lossyts/internal/compress"
	"lossyts/internal/stats"
)

// gridFile is the on-disk JSON representation of a GridResult. Only the
// result payload is stored; the memoisation internals and lazy feature
// cache are rebuilt on load.
type gridFile struct {
	Version  int
	Opts     Options
	Datasets map[string]*datasetFile
}

type datasetFile struct {
	Name           string
	SeasonalPeriod int
	Interval       int64
	RawValues      []float64
	RawTest        []float64
	GorillaCR      float64
	Baselines      map[string]stats.Metrics
	Cells          []*cellFile
}

type cellFile struct {
	Method       compress.Method
	Epsilon      float64
	CR           float64
	Segments     int
	TE           stats.Metrics
	Decompressed []float64
	ModelMetrics map[string]stats.Metrics
	TFE          map[string]float64
}

const gridFileVersion = 1

// SaveGrid writes the grid to a gzip-compressed JSON file, so an expensive
// evaluation can be reused across processes (RunGrid memoises only within
// one process).
func SaveGrid(g *GridResult, path string) error {
	out := gridFile{Version: gridFileVersion, Opts: g.Opts, Datasets: map[string]*datasetFile{}}
	for name, ds := range g.Datasets {
		df := &datasetFile{
			Name:           ds.Name,
			SeasonalPeriod: ds.SeasonalPeriod,
			Interval:       ds.Interval,
			RawValues:      ds.RawValues,
			RawTest:        ds.RawTest,
			GorillaCR:      ds.GorillaCR,
			Baselines:      ds.Baselines,
		}
		for _, c := range ds.Cells {
			df.Cells = append(df.Cells, &cellFile{
				Method:       c.Method,
				Epsilon:      c.Epsilon,
				CR:           c.CR,
				Segments:     c.Segments,
				TE:           c.TE,
				Decompressed: c.Decompressed,
				ModelMetrics: c.ModelMetrics,
				TFE:          c.TFE,
			})
		}
		out.Datasets[name] = df
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return f.Sync()
}

// LoadGrid reads a grid previously written by SaveGrid and registers it in
// the in-process memoisation cache, so subsequent RunGrid calls with the
// same options return it directly.
func LoadGrid(path string) (*GridResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("core: %s is not a saved grid: %w", path, err)
	}
	defer zr.Close()
	var in gridFile
	if err := json.NewDecoder(zr).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding %s: %w", path, err)
	}
	if in.Version != gridFileVersion {
		return nil, fmt.Errorf("core: grid file version %d, want %d", in.Version, gridFileVersion)
	}
	g := &GridResult{Opts: in.Opts, Datasets: map[string]*DatasetResult{}}
	for name, df := range in.Datasets {
		ds := &DatasetResult{
			Name:           df.Name,
			SeasonalPeriod: df.SeasonalPeriod,
			Interval:       df.Interval,
			RawValues:      df.RawValues,
			RawTest:        df.RawTest,
			GorillaCR:      df.GorillaCR,
			Baselines:      df.Baselines,
		}
		for _, c := range df.Cells {
			ds.Cells = append(ds.Cells, &Cell{
				Method:       c.Method,
				Epsilon:      c.Epsilon,
				CR:           c.CR,
				Segments:     c.Segments,
				TE:           c.TE,
				Decompressed: c.Decompressed,
				ModelMetrics: c.ModelMetrics,
				TFE:          c.TFE,
			})
		}
		ds.buildIndex()
		g.Datasets[name] = ds
	}
	gridMu.Lock()
	gridCache[g.Opts.key()] = g
	gridMu.Unlock()
	return g, nil
}
