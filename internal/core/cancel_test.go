package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// slowOptions is a grid whose training budget is far beyond what a test
// would ever wait for, so a cancelled run can only return promptly if the
// cancellation checks at stage, cell, and epoch boundaries actually fire.
func slowOptions() Options {
	o := equivalenceOptions()
	o.Datasets = []string{"ETTm1", "Weather"}
	o.Models = []string{"DLinear", "GRU"}
	o.DeepSeeds = 4
	o.Forecast.Epochs = 100000
	o.Forecast.MaxTrainWindows = 0
	return o
}

// waitGoroutinesBack polls until the goroutine count drains back to (near)
// the baseline, failing the test if workers leak past the deadline.
func waitGoroutinesBack(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // finalize dead goroutines' stacks promptly
		n := runtime.NumGoroutine()
		if n <= baseline+2 { // tolerate unrelated runtime goroutines
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d, baseline %d", n, baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunGridContextCancelledBeforeStart(t *testing.T) {
	swapGridCache(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunGridContext(ctx, slowOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err.Error() != context.Canceled.Error() {
		t.Fatalf("want the bare ctx.Err(), got: %v", err)
	}
}

// TestRunGridContextCancelMidTraining cancels a run whose uncancelled
// runtime would be hours (100k epochs across two datasets): the prompt
// return proves the epoch-boundary check in the trainer, the grid-cell
// checks in the stages, and the error path all work; afterwards no worker
// goroutine may linger and the aborted run must not be memoised.
func TestRunGridContextCancelMidTraining(t *testing.T) {
	swapGridCache(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond) // into the train stage
		cancel()
	}()
	opts := slowOptions()
	opts.Parallelism = 4
	start := time.Now()
	g, err := RunGridContext(ctx, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if g != nil {
		t.Fatal("cancelled run returned a partial grid")
	}
	// A joined one-error-per-cell aggregate would be huge; the contract is
	// the bare ctx.Err().
	if err.Error() != context.Canceled.Error() {
		t.Fatalf("want the bare ctx.Err(), got: %v", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v; boundary checks are not firing", elapsed)
	}
	waitGoroutinesBack(t, baseline)

	// The partial run must not poison the memoisation cache: the same
	// options under a live context must compute a real (small) grid.
	quick := opts
	quick.Forecast.Epochs = 2
	quick.Forecast.MaxTrainWindows = 32
	quick.DeepSeeds = 1
	quick.Models = []string{"Arima"}
	if _, err := RunGridContext(context.Background(), quick); err != nil {
		t.Fatalf("fresh run after cancellation: %v", err)
	}
	gridMu.Lock()
	_, cachedCancelled := gridCache[opts.key()]
	gridMu.Unlock()
	if cachedCancelled {
		t.Fatal("cancelled run was memoised")
	}
}

// TestRunGridContextCompletedThenCancelled proves cancellation after the
// run has finished changes nothing: the returned grid is the deterministic
// result, identical to an uncancelled computation.
func TestRunGridContextCompletedThenCancelled(t *testing.T) {
	swapGridCache(t)
	opts := equivalenceOptions()
	opts.Models = []string{"Arima"}

	ctx, cancel := context.WithCancel(context.Background())
	g1, err := RunGridContext(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	cancel() // after completion: must not invalidate anything

	ResetGridCache()
	g2, err := RunGridContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ds1, ds2 := g1.Datasets["ETTm1"], g2.Datasets["ETTm1"]
	if ds1 == nil || ds2 == nil {
		t.Fatal("missing dataset result")
	}
	if ds1.Baselines["Arima"] != ds2.Baselines["Arima"] {
		t.Fatalf("completed-then-cancelled run diverged: %+v vs %+v",
			ds1.Baselines["Arima"], ds2.Baselines["Arima"])
	}
	for i, c1 := range ds1.Cells {
		c2 := ds2.Cells[i]
		if c1.ModelMetrics["Arima"] != c2.ModelMetrics["Arima"] || c1.TFE["Arima"] != c2.TFE["Arima"] {
			t.Fatalf("cell %d diverged after post-completion cancel", i)
		}
	}
}
