package core

import (
	"fmt"
	"math"

	"lossyts/internal/compress"
)

// Recommendation is a concrete operating point: the compression method and
// error bound that maximise the compression ratio while keeping the mean
// forecasting impact within the user's tolerance — the guidance the paper
// offers qualitatively throughout §4, as an API.
type Recommendation struct {
	Method  compress.Method
	Epsilon float64
	CR      float64
	TE      float64
	// TFE is the mean transformation forecasting error across models at
	// this operating point.
	TFE float64
}

// Recommend scans the evaluated grid of one dataset and returns the
// operating point with the highest CR whose mean TFE stays at or below
// maxTFE. Models can be restricted to the ones the deployment actually
// uses (nil = all evaluated models).
func Recommend(g *GridResult, dataset string, maxTFE float64, models []string) (Recommendation, error) {
	ds, ok := g.Datasets[dataset]
	if !ok {
		return Recommendation{}, fmt.Errorf("core: dataset %q not in the grid", dataset)
	}
	if len(models) == 0 {
		models = g.Opts.models()
	}
	best := Recommendation{CR: -1}
	for _, cell := range ds.Cells {
		var sum float64
		var n int
		for _, m := range models {
			if v, ok := cell.TFE[m]; ok && !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n == 0 {
			continue
		}
		tfe := sum / float64(n)
		if tfe > maxTFE {
			continue
		}
		if cell.CR > best.CR {
			best = Recommendation{
				Method:  cell.Method,
				Epsilon: cell.Epsilon,
				CR:      cell.CR,
				TE:      cell.TE.NRMSE,
				TFE:     tfe,
			}
		}
	}
	if best.CR < 0 {
		return Recommendation{}, fmt.Errorf("core: no operating point for %s keeps mean TFE within %v", dataset, maxTFE)
	}
	return best, nil
}
