package core

import (
	"math"
	"strings"
	"testing"

	"lossyts/internal/compress"
)

// quickGrid runs (and caches) the small test grid shared by the tests.
func quickGrid(t *testing.T) *GridResult {
	t.Helper()
	g, err := RunGrid(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunGridStructure(t *testing.T) {
	g := quickGrid(t)
	opts := QuickOptions()
	if len(g.Datasets) != len(opts.datasets()) {
		t.Fatalf("datasets = %d", len(g.Datasets))
	}
	for _, name := range opts.datasets() {
		ds := g.Datasets[name]
		if ds == nil {
			t.Fatalf("missing dataset %s", name)
		}
		wantCells := len(opts.methods()) * len(opts.errorBounds())
		if len(ds.Cells) != wantCells {
			t.Fatalf("%s: %d cells, want %d", name, len(ds.Cells), wantCells)
		}
		if ds.GorillaCR <= 0 {
			t.Errorf("%s: Gorilla CR = %v", name, ds.GorillaCR)
		}
		for _, m := range opts.models() {
			b, ok := ds.Baselines[m]
			if !ok {
				t.Fatalf("%s: missing baseline for %s", name, m)
			}
			if b.NRMSE <= 0 || math.IsNaN(b.NRMSE) {
				t.Errorf("%s/%s: baseline NRMSE = %v", name, m, b.NRMSE)
			}
		}
		for _, c := range ds.Cells {
			if c.CR <= 0 {
				t.Errorf("%s %s eps=%v: CR = %v", name, c.Method, c.Epsilon, c.CR)
			}
			if len(c.Decompressed) != len(ds.RawTest) {
				t.Errorf("%s %s: decompressed length mismatch", name, c.Method)
			}
			for _, m := range opts.models() {
				if _, ok := c.TFE[m]; !ok {
					t.Errorf("%s %s eps=%v: missing TFE for %s", name, c.Method, c.Epsilon, m)
				}
			}
		}
	}
}

func TestGridMemoized(t *testing.T) {
	a := quickGrid(t)
	b := quickGrid(t)
	if a != b {
		t.Fatal("RunGrid should memoise per option set")
	}
}

func TestRelativeBoundAcrossGrid(t *testing.T) {
	// Every grid cell must honour the pointwise relative bound.
	g := quickGrid(t)
	for name, ds := range g.Datasets {
		for _, c := range ds.Cells {
			for i, raw := range ds.RawTest {
				d := math.Abs(raw - c.Decompressed[i])
				tol := c.Epsilon * math.Abs(raw) * (1 + 1e-9)
				if d > tol+1e-12 {
					t.Fatalf("%s %s eps=%v: |%v - %v| breaks bound at %d",
						name, c.Method, c.Epsilon, raw, c.Decompressed[i], i)
				}
			}
		}
	}
}

func TestTFEIncreasesWithBound(t *testing.T) {
	// TFE at the loosest bound should (generally) exceed TFE at the
	// tightest bound; require it at least on average across methods/models.
	g := quickGrid(t)
	opts := QuickOptions()
	bounds := opts.errorBounds()
	lo, hi := bounds[0], bounds[len(bounds)-1]
	var loSum, hiSum float64
	var n int
	for _, ds := range g.Datasets {
		for _, m := range opts.methods() {
			cl, ch := ds.Cell(m, lo), ds.Cell(m, hi)
			for _, model := range opts.models() {
				loSum += cl.TFE[model]
				hiSum += ch.TFE[model]
				n++
			}
		}
	}
	if n == 0 || hiSum/float64(n) <= loSum/float64(n) {
		t.Errorf("mean TFE did not grow with the bound: %.4f -> %.4f", loSum/float64(n), hiSum/float64(n))
	}
}

func TestCRIncreasesWithBound(t *testing.T) {
	g := quickGrid(t)
	opts := QuickOptions()
	bounds := opts.errorBounds()
	for name, ds := range g.Datasets {
		for _, m := range opts.methods() {
			lo := ds.Cell(m, bounds[0])
			hi := ds.Cell(m, bounds[len(bounds)-1])
			if hi.CR < lo.CR {
				t.Errorf("%s %s: CR fell from %.1f to %.1f as bound loosened", name, m, lo.CR, hi.CR)
			}
		}
	}
}

func TestAllTables(t *testing.T) {
	g := quickGrid(t)
	opts := QuickOptions()

	t1, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != len(opts.datasets()) {
		t.Errorf("table1 rows = %d", len(t1.Rows))
	}
	if !strings.Contains(t1.String(), "rIQD") {
		t.Error("table1 missing rIQD column")
	}

	t2, err := Table2(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 4*len(opts.models()) {
		t.Errorf("table2 rows = %d", len(t2.Rows))
	}
	if !strings.Contains(t2.String(), "*") {
		t.Error("table2 should mark best models")
	}

	t3, err := Table3(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(opts.datasets())*len(opts.methods()) {
		t.Errorf("table3 rows = %d", len(t3.Rows))
	}

	t4, err := Table4(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) == 0 || len(t4.Rows) > 10 {
		t.Errorf("table4 rows = %d", len(t4.Rows))
	}

	t5, err := Table5(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 4*len(opts.methods()) {
		t.Errorf("table5 rows = %d", len(t5.Rows))
	}

	t6, err := Table6(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != (len(opts.datasets())+1)*len(opts.methods()) {
		t.Errorf("table6 rows = %d", len(t6.Rows))
	}

	t7, err := Table7(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(t7.Rows) != 2 {
		t.Errorf("table7 rows = %d", len(t7.Rows))
	}
}

func TestAllFigures(t *testing.T) {
	g := quickGrid(t)
	opts := QuickOptions()

	f1, err := Figure1(opts, 64)
	if err != nil {
		t.Fatal(err)
	}
	// OR + 2 bounds per method, for ETTm1 and ETTm2.
	want := 2 * (1 + 2*len(opts.methods()))
	if len(f1.Rows) != want {
		t.Errorf("figure1 rows = %d, want %d", len(f1.Rows), want)
	}

	f2, err := Figure2(g)
	if err != nil {
		t.Fatal(err)
	}
	cells := len(opts.datasets()) * len(opts.methods()) * len(opts.errorBounds())
	if len(f2.Rows) != cells {
		t.Errorf("figure2 rows = %d, want %d", len(f2.Rows), cells)
	}

	f3, err := Figure3(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3.Rows) != cells {
		t.Errorf("figure3 rows = %d", len(f3.Rows))
	}

	f4, err := Figure4(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Rows) != cells {
		t.Errorf("figure4 rows = %d", len(f4.Rows))
	}

	f5, err := Figure5(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) == 0 || len(f5.Rows) > 9 {
		t.Errorf("figure5 rows = %d", len(f5.Rows))
	}
	if !strings.Contains(f5.Title, "R^2") {
		t.Error("figure5 should report the surrogate fit")
	}

	f6, err := Figure6(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Rows) != len(opts.models()) {
		t.Errorf("figure6 rows = %d", len(f6.Rows))
	}
}

func TestFigure7Retrain(t *testing.T) {
	opts := QuickOptions()
	res, err := RetrainOnDecompressed(opts, []string{"ETTm1"}, []string{"Arima"}, []float64{0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	want := len(opts.methods()) * 2
	if len(res) != want {
		t.Fatalf("retrain results = %d, want %d", len(res), want)
	}
	for _, r := range res {
		if r.NRMSE <= 0 || math.IsNaN(r.TFE) {
			t.Errorf("bad retrain result %+v", r)
		}
	}
}

func TestFeatureRowsAndAnalyses(t *testing.T) {
	g := quickGrid(t)
	rows, err := g.FeatureRows()
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	want := len(opts.datasets()) * len(opts.methods()) * len(opts.errorBounds())
	if len(rows) != want {
		t.Fatalf("feature rows = %d, want %d", len(rows), want)
	}
	corr := SpearmanToTFE(rows)
	if len(corr) < 42 {
		t.Errorf("only %d characteristics correlated", len(corr))
	}
	for i := 1; i < len(corr); i++ {
		if math.Abs(corr[i].Correlation) > math.Abs(corr[i-1].Correlation)+1e-12 {
			t.Fatal("correlations not sorted by magnitude")
		}
	}
	shap, err := SHAPAnalysis(rows)
	if err != nil {
		t.Fatal(err)
	}
	if shap.R2 < 0.5 {
		t.Errorf("surrogate R2 = %.2f, want a reasonable fit", shap.R2)
	}
	if len(shap.Importance) < 42 {
		t.Errorf("SHAP importance covers %d characteristics", len(shap.Importance))
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("longer", 12345.678)
	s := tb.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "longer") {
		t.Fatalf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:            "0",
		12345:        "12345",
		42.42:        "42.42",
		0.123456:     "0.1235",
		-3333:        "-3333",
		math.NaN():   "NaN",
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestOptionsAccessors(t *testing.T) {
	o := DefaultOptions()
	if len(o.datasets()) != 6 || len(o.models()) != 7 || len(o.methods()) != 3 {
		t.Fatal("default grids wrong")
	}
	if len(o.errorBounds()) != 13 {
		t.Fatal("default error bounds wrong")
	}
	if o.seeds("Transformer") != o.DeepSeeds || o.seeds("Arima") != o.ShallowSeeds {
		t.Fatal("seed counts wrong")
	}
	if o.key() == (Options{}).key() {
		t.Fatal("keys should differ")
	}
	p := PaperOptions()
	if p.Scale != 1 || p.DeepSeeds != 10 || p.ShallowSeeds != 5 {
		t.Fatal("paper options wrong")
	}
}

func TestDatasetResultCellLookup(t *testing.T) {
	g := quickGrid(t)
	ds := g.Datasets["ETTm1"]
	c := ds.Cell(compress.MethodPMC, 0.05)
	if c == nil || c.Method != compress.MethodPMC || c.Epsilon != 0.05 {
		t.Fatal("cell lookup failed")
	}
	if ds.Cell(compress.MethodPMC, 0.123) != nil {
		t.Fatal("missing cell should be nil")
	}
}

func TestFreqLabel(t *testing.T) {
	cases := map[int64]string{
		2:    "2sec",
		60:   "1min",
		900:  "15min",
		3600: "1h",
		7200: "2h",
	}
	for in, want := range cases {
		if got := freqLabel(in); got != want {
			t.Errorf("freqLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFigure7Table(t *testing.T) {
	opts := QuickOptions()
	opts.Methods = []compress.Method{compress.MethodPMC}
	tbl, err := Figure7(opts)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets x 2 models x 1 method x 5 default bounds.
	if len(tbl.Rows) != 2*2*1*5 {
		t.Fatalf("figure7 rows = %d", len(tbl.Rows))
	}
}

func TestOptionsSubsets(t *testing.T) {
	o := DefaultOptions()
	o.Methods = []compress.Method{compress.MethodSZ}
	o.Datasets = []string{"Wind"}
	o.Models = []string{"Arima"}
	o.ErrorBounds = []float64{0.1}
	if len(o.methods()) != 1 || o.methods()[0] != compress.MethodSZ {
		t.Fatal("method subset ignored")
	}
	if len(o.datasets()) != 1 || len(o.models()) != 1 || len(o.errorBounds()) != 1 {
		t.Fatal("subsets ignored")
	}
}

func TestRecommend(t *testing.T) {
	g := quickGrid(t)
	rec, err := Recommend(g, "ETTm1", 0.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.CR <= 0 || rec.TFE > 0.5 {
		t.Fatalf("recommendation %+v", rec)
	}
	// The recommendation must be the max-CR cell within tolerance.
	ds := g.Datasets["ETTm1"]
	for _, c := range ds.Cells {
		var sum float64
		var n int
		for _, m := range QuickOptions().models() {
			sum += c.TFE[m]
			n++
		}
		if sum/float64(n) <= 0.5 && c.CR > rec.CR {
			t.Fatalf("cell %s eps=%v has CR %.2f > recommended %.2f", c.Method, c.Epsilon, c.CR, rec.CR)
		}
	}
	// Restricting models changes the candidate set but still succeeds.
	if _, err := Recommend(g, "ETTm1", 0.5, []string{"Arima"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Recommend(g, "Nope", 0.5, nil); err == nil {
		t.Error("unknown dataset should error")
	}
	if _, err := Recommend(g, "ETTm1", -10, nil); err == nil {
		t.Error("impossible tolerance should error")
	}
}
