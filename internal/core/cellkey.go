package core

import (
	"fmt"
	"strconv"
	"strings"

	"lossyts/internal/compress"
)

// RecordSchema is the version of the cell/dataset record encoding inside a
// grid store. It participates in every record key, so a schema change
// simply misses old records (forcing a clean recompute) instead of
// misreading them.
const RecordSchema = 2

// CellAddr addresses a cell within one grid: the (method, error bound)
// pair. It is the key of the per-dataset cell index; CellKey extends it
// with everything else that determines the cell's bytes.
type CellAddr struct {
	Method  compress.Method
	Epsilon float64
}

// CellKey canonically identifies one grid cell across processes: the
// dataset, the cell address, and every option that can change the cell's
// bytes (scale, base seed, per-class seed counts, evaluation window cap,
// forecasting config, kernel mode), plus the record schema version. Two
// runs computing the same CellKey are guaranteed — and tested — to produce
// bit-identical cells, which is what makes the result store safe to reuse.
//
// Options deliberately absent: Parallelism, Stream, ChunkSize, and Store
// change scheduling, memory, or persistence, never values; Datasets,
// Models, Methods, and ErrorBounds select which cells exist, not what any
// one cell contains (per-model metrics live inside the record, keyed by
// model name, so a grown Models list only appends to a record).
type CellKey struct {
	Schema         int
	Scale          float64
	Seed           int64
	DeepSeeds      int
	ShallowSeeds   int
	MaxEvalWindows int
	// Forecast is the canonical rendering of the forecasting config; a
	// string so CellKey stays comparable and hashable.
	Forecast   string
	RefKernels bool
	Dataset    string
	Addr       CellAddr
}

// CellKey derives the canonical key of one cell from the option set — the
// single place cell identity is defined. The in-process grid memo, the
// per-dataset cell index, and the persistent store all key off renderings
// of this value.
func (o Options) CellKey(dataset string, m compress.Method, eps float64) CellKey {
	return CellKey{
		Schema:         RecordSchema,
		Scale:          o.Scale,
		Seed:           o.Seed,
		DeepSeeds:      o.DeepSeeds,
		ShallowSeeds:   o.ShallowSeeds,
		MaxEvalWindows: o.MaxEvalWindows,
		Forecast:       fmt.Sprintf("%+v", o.Forecast),
		RefKernels:     o.ReferenceKernels,
		Dataset:        dataset,
		Addr:           CellAddr{Method: m, Epsilon: eps},
	}
}

// gridSignature renders the cell-identity fields every cell of a run
// shares — CellKey minus dataset and address — in a stable form. It
// namespaces record keys, so one store file can hold cells from several
// option sets without collisions.
func (o Options) gridSignature() string {
	return fmt.Sprintf("s%d;sc=%s;seed=%d;ds=%d;ss=%d;mw=%d;ref=%t;fc=%+v",
		RecordSchema, formatEps(o.Scale), o.Seed, o.DeepSeeds, o.ShallowSeeds,
		o.MaxEvalWindows, o.ReferenceKernels, o.Forecast)
}

// formatEps renders a float in its shortest round-trippable form, so keys
// built from the same value always match and keys from different values
// never do.
func formatEps(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the key's stable store form. The layout is
// "cell|<signature>|<dataset>|<method>|<epsilon>"; the signature uses ';'
// separators internally so the '|' fields parse unambiguously.
func (k CellKey) String() string {
	return strings.Join([]string{
		"cell",
		fmt.Sprintf("s%d;sc=%s;seed=%d;ds=%d;ss=%d;mw=%d;ref=%t;fc=%s",
			k.Schema, formatEps(k.Scale), k.Seed, k.DeepSeeds, k.ShallowSeeds,
			k.MaxEvalWindows, k.RefKernels, k.Forecast),
		k.Dataset,
		string(k.Addr.Method),
		formatEps(k.Addr.Epsilon),
	}, "|")
}

// cellRecordKey is the store key of one cell's record.
func (o Options) cellRecordKey(dataset string, m compress.Method, eps float64) string {
	return o.CellKey(dataset, m, eps).String()
}

// datasetRecordKey is the store key of a dataset's grid-wide record (raw
// series, lossless baseline, per-model raw-data baselines). It shares the
// cell signature: dataset-level bytes depend on exactly the same options.
func (o Options) datasetRecordKey(dataset string) string {
	return "dataset|" + o.gridSignature() + "|" + dataset
}

// optsRecordKey is the store key of the saved option set; the last run to
// complete against a store owns it, and LoadGrid assembles that run's grid.
const optsRecordKey = "opts"

// claimRecordKey is the advisory claim marker for one cell: a worker writes
// it (with an empty payload) before computing the cell, so peers scanning
// its journal can skip work already underway. Prefixing the full cell key
// keeps claims from different option sets apart, exactly like cell records.
func (o Options) claimRecordKey(dataset string, m compress.Method, eps float64) string {
	return "claim|" + o.cellRecordKey(dataset, m, eps)
}

// workersRecordKey stamps a merged store with how many worker journals fed
// it, so a later load can report merged provenance. Like claims, it is
// bookkeeping, not grid data: loaders skip it and SaveGrid never emits it.
const workersRecordKey = "workers"

// keyKindClaim and keyKindWorkers classify the bookkeeping keys above.
const (
	keyKindClaim   = "claim"
	keyKindWorkers = workersRecordKey
)

// keyKind classifies a store key by its leading field ("cell", "dataset",
// "opts", "claim", "workers", or "" for foreign keys) and returns the
// '|'-separated fields.
func keyKind(key string) (kind string, fields []string) {
	fields = strings.Split(key, "|")
	switch fields[0] {
	case "cell", "dataset", optsRecordKey, keyKindClaim, keyKindWorkers:
		return fields[0], fields
	}
	return "", fields
}
