package core

import (
	"fmt"
	"os"

	"lossyts/internal/core/cellstore"
)

// The work plane makes "which cells does this process own" a first-class
// concept. A WorkSet enumerates grid cells as WorkItems in the canonical
// evaluation order, partitions deterministically into contiguous ranges, and
// — through claim records journaled in the result store — lets cooperating
// worker processes see and steal each other's unstarted work with no
// coordinator state beyond the filesystem. Correctness never rests on the
// claims: cells are bit-identical wherever they are computed (CellKey), so
// two workers racing to the same cell produce the same bytes and the
// last-record-wins merge keeps one of them.

// WorkItem is one cell coordinate of the evaluation grid: the dataset and
// the (method, error bound) address within it. Everything else that
// determines the cell's bytes lives in the shared option set (see CellKey).
type WorkItem struct {
	Dataset string
	Addr    CellAddr
}

// WorkSet is an ordered set of grid cells bound to the option set that
// enumerates them. The order is the canonical evaluation order — datasets
// outer, then methods, then bounds — so contiguous partitions keep dataset
// locality (a worker owning a slice touches as few datasets as possible,
// which matters because the per-dataset transform cache is per-process).
type WorkSet struct {
	opts  Options
	items []WorkItem
	index map[WorkItem]bool
}

// NewWorkSet enumerates the full grid the option set requests, in canonical
// order.
func (o Options) NewWorkSet() *WorkSet {
	ws := &WorkSet{opts: o}
	for _, name := range o.datasets() {
		for _, m := range o.methods() {
			for _, eps := range o.errorBounds() {
				ws.items = append(ws.items, WorkItem{Dataset: name, Addr: CellAddr{Method: m, Epsilon: eps}})
			}
		}
	}
	ws.buildIndex()
	return ws
}

func (ws *WorkSet) buildIndex() {
	ws.index = make(map[WorkItem]bool, len(ws.items))
	for _, it := range ws.items {
		ws.index[it] = true
	}
}

// derive builds a sub-set sharing ws's options and order.
func (ws *WorkSet) derive(items []WorkItem) *WorkSet {
	sub := &WorkSet{opts: ws.opts, items: items}
	sub.buildIndex()
	return sub
}

// Len returns the number of cells in the set.
func (ws *WorkSet) Len() int { return len(ws.items) }

// Items returns the cells in canonical order. The slice is shared;
// callers must not mutate it.
func (ws *WorkSet) Items() []WorkItem { return ws.items }

// Contains reports whether the set owns the given cell.
func (ws *WorkSet) Contains(dataset string, addr CellAddr) bool {
	return ws.index[WorkItem{Dataset: dataset, Addr: addr}]
}

// Datasets lists the distinct datasets the set touches, in canonical order.
func (ws *WorkSet) Datasets() []string {
	var names []string
	seen := map[string]bool{}
	for _, it := range ws.items {
		if !seen[it.Dataset] {
			seen[it.Dataset] = true
			names = append(names, it.Dataset)
		}
	}
	return names
}

// addrsOf returns the cell addresses the set owns within one dataset, in
// canonical order.
func (ws *WorkSet) addrsOf(dataset string) []CellAddr {
	var addrs []CellAddr
	for _, it := range ws.items {
		if it.Dataset == dataset {
			addrs = append(addrs, it.Addr)
		}
	}
	return addrs
}

// Partition returns the i-th of n contiguous range partitions (0 <= i < n).
// Partitioning is deterministic and total: over all i the partitions are
// disjoint, cover the set, preserve order, and differ in size by at most
// one cell — every process that enumerates the same option set computes the
// same split, so N workers need agree on nothing but (n, i). Invalid
// arguments panic: the split is programmer-controlled, not data-driven.
func (ws *WorkSet) Partition(n, i int) *WorkSet {
	if n < 1 || i < 0 || i >= n {
		panic(fmt.Sprintf("core: WorkSet.Partition(%d, %d): need 0 <= i < n", n, i))
	}
	lo := len(ws.items) * i / n
	hi := len(ws.items) * (i + 1) / n
	return ws.derive(ws.items[lo:hi])
}

// Minus returns the cells of ws not present in other, preserving order.
func (ws *WorkSet) Minus(other *WorkSet) *WorkSet {
	var items []WorkItem
	for _, it := range ws.items {
		if !other.index[it] {
			items = append(items, it)
		}
	}
	return ws.derive(items)
}

// Unclaimed filters the set down to cells that no peer journal has claimed
// or checkpointed — the steal protocol's read side. Peers are opened
// read-only (safe against live writers); a missing or still-empty journal
// counts as holding nothing, so a worker that died before its first write
// forfeits its whole slice. Claims are advisory: a cell claimed between the
// scan and the steal is computed twice, bit-identically, and merge keeps one.
func (ws *WorkSet) Unclaimed(peers ...string) (*WorkSet, error) {
	remaining := append([]WorkItem(nil), ws.items...)
	for _, path := range peers {
		if len(remaining) == 0 {
			break
		}
		fi, err := os.Stat(path)
		if os.IsNotExist(err) || (err == nil && fi.Size() == 0) {
			continue
		}
		if err != nil {
			return nil, err
		}
		s, err := cellstore.OpenReadOnly(path)
		if err != nil {
			return nil, fmt.Errorf("core: reading peer journal %s: %w", path, err)
		}
		var keep []WorkItem
		for _, it := range remaining {
			if s.Has(ws.opts.claimRecordKey(it.Dataset, it.Addr.Method, it.Addr.Epsilon)) ||
				s.Has(ws.opts.cellRecordKey(it.Dataset, it.Addr.Method, it.Addr.Epsilon)) {
				continue
			}
			keep = append(keep, it)
		}
		remaining = keep
		s.Close()
	}
	return ws.derive(remaining), nil
}

// claim journals this worker's intent to compute the given cells of one
// dataset. Claim payloads are deliberately empty and identical across
// workers, so overlapping claims (a steal race) never register as merge
// conflicts; who claimed is uninteresting, only that somebody did.
func (rc *RunContext) claim(dataset string, addrs []CellAddr) error {
	for _, a := range addrs {
		if err := rc.store.Put(rc.opts.claimRecordKey(dataset, a.Method, a.Epsilon), nil); err != nil {
			return err
		}
	}
	return nil
}

// ownedAddrs returns the cell addresses this run must consider for a
// dataset: the owned slice under a partition run, the full grid otherwise.
func (rc *RunContext) ownedAddrs(dataset string) []CellAddr {
	if rc.owned != nil {
		return rc.owned.addrsOf(dataset)
	}
	addrs := make([]CellAddr, 0, len(rc.opts.methods())*len(rc.opts.errorBounds()))
	for _, m := range rc.opts.methods() {
		for _, eps := range rc.opts.errorBounds() {
			addrs = append(addrs, CellAddr{Method: m, Epsilon: eps})
		}
	}
	return addrs
}

// owns reports whether this run is responsible for a cell. Full runs own
// everything; partition runs own exactly their WorkSet.
func (rc *RunContext) owns(dataset string, addr CellAddr) bool {
	return rc.owned == nil || rc.owned.Contains(dataset, addr)
}
