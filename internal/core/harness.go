package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lossyts/internal/compress"
	"lossyts/internal/core/cellstore"
	"lossyts/internal/features"
	"lossyts/internal/forecast"
	"lossyts/internal/nn"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// Cell is one grid point: a (dataset, method, error bound) combination with
// its compression outcome and the forecasting metrics of every model when
// fed the decompressed test data (Algorithm 1, lines 5-10).
type Cell struct {
	Method   compress.Method
	Epsilon  float64
	CR       float64 // compression ratio on the test subset (.gz sizes)
	Segments int
	TE       stats.Metrics // raw vs decompressed test values
	// Decompressed holds the decompressed (raw-domain) test values.
	Decompressed []float64
	// ModelMetrics maps model name to its forecasting metrics (mean over
	// seeds) when predicting from the transformed input.
	ModelMetrics map[string]stats.Metrics
	// TFE maps model name to the transformation forecasting error computed
	// from NRMSE (Eq. 2).
	TFE map[string]float64
}

// DatasetResult is the full grid for one dataset.
type DatasetResult struct {
	Name           string
	SeasonalPeriod int
	Interval       int64
	// RawValues is the full (raw-domain) target series.
	RawValues []float64
	// RawTest is the raw-domain test subset.
	RawTest []float64
	// GorillaCR is the lossless baseline compression ratio (§3.3).
	GorillaCR float64
	// Baselines maps model name to its raw-data metrics (paper Table 2).
	Baselines map[string]stats.Metrics
	Cells     []*Cell

	// index maps each cell's address to its cell for O(1) lookup. It is
	// built once before the result escapes its constructor and is read-only
	// after. Epsilon comparison is exact (==), matching the grid
	// construction: bounds are taken verbatim from Options, never
	// recomputed — the same exactness the persistent store's CellKey relies
	// on.
	index map[CellAddr]*Cell
}

// buildIndex (re)derives the keyed cell lookup from Cells. Constructors
// (evaluateDataset, LoadGrid) call it before the result is shared.
func (d *DatasetResult) buildIndex() {
	d.index = make(map[CellAddr]*Cell, len(d.Cells))
	for _, c := range d.Cells {
		d.index[CellAddr{c.Method, c.Epsilon}] = c
	}
}

// Cell returns the grid cell for (method, eps), or nil.
func (d *DatasetResult) Cell(m compress.Method, eps float64) *Cell {
	if d.index != nil {
		return d.index[CellAddr{m, eps}]
	}
	// Hand-assembled results (tests) may lack the index; fall back to a scan.
	for _, c := range d.Cells {
		if c.Method == m && c.Epsilon == eps {
			return c
		}
	}
	return nil
}

// PhaseTimings reports where an evaluation run spent its time, plus work
// counters, so benchmarks can attribute speedups to specific phases. Phase
// durations are summed across concurrently evaluated datasets and worker
// goroutines, so they measure aggregate compute and may exceed Wall.
type PhaseTimings struct {
	// Setup covers dataset generation, splitting, scaling, and the
	// lossless Gorilla baseline.
	Setup time.Duration
	// Compression covers the method × error-bound compression grid.
	Compression time.Duration
	// Planning covers the per-cell transform + window caching (cellPlan).
	Planning time.Duration
	// Forecast covers model fitting and window evaluation across all
	// (model, seed) units.
	Forecast time.Duration
	// Wall is the end-to-end wall clock of the RunGrid call that computed
	// the grid (memoised callers see the original run's value).
	Wall time.Duration
	// Units is the number of (model, seed) units executed.
	Units int64
	// CellEvals is the number of model-on-decompressed-cell evaluations.
	CellEvals int64
	// Stages reports the wall clock of each pipeline stage, in execution
	// order, summed across concurrently evaluated datasets. The legacy
	// phase buckets above are aggregations of these (plus the per-unit
	// fit/eval time feeding Forecast), kept for benchmark continuity.
	Stages []StageTiming
}

// StageTiming is the aggregate wall clock of one named pipeline stage.
type StageTiming struct {
	Name  string
	Total time.Duration
}

// timingAcc accumulates PhaseTimings atomically across worker goroutines.
// The legacy phase buckets stay lock-free atomics on the hot path; the
// per-stage map is touched once per (dataset, stage) and takes a mutex.
type timingAcc struct {
	setup, compression, planning, forecast atomic.Int64 // nanoseconds
	units, cellEvals                       atomic.Int64
	cellsLoaded, cellsComputed             atomic.Int64

	mu      sync.Mutex
	stageNs map[string]int64
}

// addStage attributes one stage execution's wall clock.
func (a *timingAcc) addStage(name string, d time.Duration) {
	a.mu.Lock()
	if a.stageNs == nil {
		a.stageNs = map[string]int64{}
	}
	a.stageNs[name] += int64(d)
	a.mu.Unlock()
}

// legacyBucket maps a stage to the pre-stage-graph phase bucket its wall
// clock feeds, so PhaseTimings keeps its historical meaning. The train,
// forecast, and analyze stages return nil: their compute is attributed
// per-unit into the forecast bucket by the workers themselves.
func (a *timingAcc) legacyBucket(stage string) *atomic.Int64 {
	switch stage {
	case StageIngest:
		return &a.setup
	case StageCompress, StageReconstruct:
		return &a.compression
	case StageWindow:
		return &a.planning
	}
	return nil
}

// snapshot renders the accumulated counters, listing stages in the given
// pipeline order (stages that never ran are omitted).
func (a *timingAcc) snapshot(wall time.Duration, order []string) PhaseTimings {
	pt := PhaseTimings{
		Setup:       time.Duration(a.setup.Load()),
		Compression: time.Duration(a.compression.Load()),
		Planning:    time.Duration(a.planning.Load()),
		Forecast:    time.Duration(a.forecast.Load()),
		Wall:        wall,
		Units:       a.units.Load(),
		CellEvals:   a.cellEvals.Load(),
	}
	a.mu.Lock()
	for _, name := range order {
		if ns, ok := a.stageNs[name]; ok {
			pt.Stages = append(pt.Stages, StageTiming{Name: name, Total: time.Duration(ns)})
		}
	}
	a.mu.Unlock()
	return pt
}

// Provenance records how a GridResult came to be, so consumers of
// persisted or resumed grids see an honest account instead of misleading
// zero timings: "loaded" grids legitimately have no phase timings, and a
// "resumed" grid's timings cover only the cells it actually computed.
type Provenance struct {
	// Source is "computed" (every cell evaluated this run), "loaded"
	// (every cell read from a store or saved grid), "resumed" (a mix:
	// stored cells reused, missing cells computed), or "merged" (the store
	// was assembled from N worker journals by MergeWorkerStores).
	Source string
	// StorePath is the result store or saved-grid file involved ("" for a
	// purely in-memory computation).
	StorePath string
	// CellsComputed and CellsLoaded count grid cells evaluated by this run
	// versus reused from the store.
	CellsComputed int
	CellsLoaded   int
	// Workers is the number of worker journals merged into the store (0
	// unless the store carries a MergeWorkerStores stamp). It is what
	// distinguishes a merged grid from an ordinary resumed one: both reuse
	// stored cells, but merged cells were computed by other processes.
	Workers int
}

// Provenance sources.
const (
	SourceComputed = "computed"
	SourceLoaded   = "loaded"
	SourceResumed  = "resumed"
	SourceMerged   = "merged"
)

// String renders a one-line provenance summary for reports.
func (p Provenance) String() string {
	switch p.Source {
	case SourceLoaded:
		return fmt.Sprintf("grid loaded from %s (%d cells; timings are not meaningful for loaded grids)",
			p.StorePath, p.CellsLoaded)
	case SourceResumed:
		return fmt.Sprintf("grid resumed from %s (%d cells loaded, %d computed; timings cover the computed delta only)",
			p.StorePath, p.CellsLoaded, p.CellsComputed)
	case SourceMerged:
		return fmt.Sprintf("grid merged from %d worker journals via %s (%d cells loaded, %d computed this run)",
			p.Workers, p.StorePath, p.CellsLoaded, p.CellsComputed)
	default:
		if p.StorePath != "" {
			return fmt.Sprintf("grid computed (%d cells, checkpointed to %s)", p.CellsComputed, p.StorePath)
		}
		return fmt.Sprintf("grid computed (%d cells)", p.CellsComputed)
	}
}

// GridResult is the complete evaluation output shared by all experiments.
type GridResult struct {
	Opts     Options
	Datasets map[string]*DatasetResult
	// Timings reports per-phase wall clock and work counters of the run
	// that computed this grid. Grids loaded from disk have zero timings and
	// resumed grids only the computed delta's; Provenance says which.
	Timings PhaseTimings
	// Provenance records whether the cells were computed, loaded from a
	// store, or a resumed mix of both.
	Provenance Provenance

	mu       sync.Mutex
	features map[string]features.Vector // lazy characteristic vectors
}

// featureCache returns the cached characteristic vector for key, lazily
// allocating the cache map. All access goes through these two helpers so
// the lazy initialisation is race-free even on zero-value GridResults.
func (g *GridResult) featureCache(key string) (features.Vector, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.features[key]
	return v, ok
}

func (g *GridResult) storeFeature(key string, v features.Vector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.features == nil {
		g.features = map[string]features.Vector{}
	}
	g.features[key] = v
}

var (
	gridMu    sync.Mutex
	gridCache = map[string]*GridResult{}
)

// ResetGridCache clears the in-process grid memoisation cache, forcing the
// next RunGrid call to recompute. It exists as a test and benchmark hook:
// determinism tests use it to compare two fresh computations, and the
// sequential-vs-parallel benchmarks use it to defeat memoisation.
func ResetGridCache() {
	gridMu.Lock()
	gridCache = map[string]*GridResult{}
	gridMu.Unlock()
}

// RunGridCached returns the memoised grid for opts if a prior call in this
// process computed or loaded one, without triggering any evaluation.
// Report-only callers (e.g. provenance lines) use it so experiments that
// never needed the grid do not suddenly compute it.
func RunGridCached(opts Options) (*GridResult, error) {
	gridMu.Lock()
	defer gridMu.Unlock()
	if g, ok := gridCache[opts.key()]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("core: no grid has been computed for these options")
}

// RunGrid executes the paper's evaluation scenario over the configured grid
// and memoises the result per option set, so the table and figure
// generators share one computation. It is RunGridContext with a background
// context.
func RunGrid(opts Options) (*GridResult, error) {
	return RunGridContext(context.Background(), opts)
}

// RunGridContext is RunGrid under a cancellation context. The stage
// pipeline and the worker pools check ctx at stage, grid-cell, and training
// epoch boundaries; once ctx is cancelled the run drains promptly and
// returns ctx.Err() — not a join of one error per abandoned cell — and the
// partial result is never memoised.
//
// Datasets are evaluated concurrently, and within each dataset the
// (model, seed) units fan out across a bounded worker pool (see
// Options.Parallelism). Results are merged in a fixed order, so the output
// is bit-identical to a sequential run regardless of GOMAXPROCS or the
// Parallelism setting.
func RunGridContext(ctx context.Context, opts Options) (*GridResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	key := opts.key()
	gridMu.Lock()
	if g, ok := gridCache[key]; ok {
		gridMu.Unlock()
		return g, nil
	}
	gridMu.Unlock()

	// The kernel mode is process-global (the nn ops consult it at every
	// dispatch), so it is set once per grid computation. Each (model, seed)
	// unit owns a per-goroutine arena released when its fit/predict ends,
	// so cell boundaries never leak pooled buffers across units.
	nn.UseReferenceKernels(opts.ReferenceKernels)

	start := time.Now()
	pipeline := DefaultPipeline()
	if opts.Stream {
		pipeline = StreamingPipeline()
	}
	rc := newRunContext(ctx, opts, pipeline)
	if opts.Store != "" {
		if err := rc.openStore(); err != nil {
			return nil, err
		}
		defer rc.store.Close()
	}
	g := &GridResult{Opts: opts, Datasets: map[string]*DatasetResult{}}
	results, err := runDatasets(rc, opts.datasets())
	if err != nil {
		return nil, err
	}
	for name, dr := range results {
		g.Datasets[name] = dr
	}
	g.Timings = rc.acc.snapshot(time.Since(start), rc.pipeline.StageNames())
	g.Provenance = rc.provenance()
	if rc.store != nil {
		// Record the completed option set last: its presence marks the
		// store as a finished run LoadGrid can assemble, so a kill at any
		// earlier point leaves an unambiguous checkpoint store.
		if err := putOptsRecord(rc.store, opts); err != nil {
			return nil, fmt.Errorf("core: recording completed run: %w", err)
		}
	}
	gridMu.Lock()
	gridCache[key] = g
	gridMu.Unlock()
	return g, nil
}

// openStore opens the run's result store, wires the checkpoint WorkExec,
// inserts the checkpoint stage (store-less pipelines keep their canonical
// stage list), and reads the merged-provenance stamp if one is present.
func (rc *RunContext) openStore() error {
	store, err := cellstore.Open(rc.opts.Store)
	if err != nil {
		return fmt.Errorf("core: opening result store: %w", err)
	}
	rc.store = store
	rc.exec = NewWorkExec(store)
	rc.workers = readWorkersStamp(store)
	if err := rc.pipeline.InsertAfter(StageAnalyze, Stage{Name: StageCheckpoint, Run: runCheckpoint}); err != nil {
		store.Close()
		return err
	}
	return nil
}

// runDatasets evaluates the named datasets concurrently up to the
// parallelism bound and returns the results by name. Each evaluation owns
// its models and RNGs, and each goroutine writes only its own slot, so no
// lock is needed and the results are identical to a sequential run. Both
// the full grid runner and the partition runner drive their datasets
// through it.
func runDatasets(rc *RunContext, names []string) (map[string]*DatasetResult, error) {
	type dsOut struct {
		dr  *DatasetResult
		err error
	}
	outs := make([]dsOut, len(names))
	sem := make(chan struct{}, rc.opts.parallelism())
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := rc.Err(); err != nil {
				outs[i].err = err
				return
			}
			outs[i].dr, outs[i].err = evaluateDataset(rc, name)
		}()
	}
	wg.Wait()
	// A cancelled run reports the cancellation itself, promptly and alone:
	// every per-dataset error at this point is just ctx.Err() echoed back.
	if err := rc.Err(); err != nil {
		return nil, err
	}
	// Surface every dataset failure, in dataset order, rather than only the
	// first one observed.
	var errs []error
	for i, name := range names {
		if outs[i].err != nil {
			errs = append(errs, fmt.Errorf("core: dataset %s: %w", name, outs[i].err))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	results := make(map[string]*DatasetResult, len(names))
	for i, name := range names {
		results[name] = outs[i].dr
	}
	return results, nil
}

// provenance summarises where the run's cells came from, from the
// loaded/computed counters the stages accumulated.
func (rc *RunContext) provenance() Provenance {
	p := Provenance{
		Source:        SourceComputed,
		CellsComputed: int(rc.acc.cellsComputed.Load()),
		CellsLoaded:   int(rc.acc.cellsLoaded.Load()),
	}
	if rc.store != nil {
		p.StorePath = rc.store.Path()
	}
	switch {
	case rc.workers > 0 && p.CellsLoaded > 0:
		// The store was assembled from worker journals; cells "loaded" from
		// it were computed by those workers, not resumed from our own
		// earlier run. Any computed count on top is a post-merge delta.
		p.Source = SourceMerged
		p.Workers = rc.workers
	case p.CellsLoaded > 0 && p.CellsComputed > 0:
		p.Source = SourceResumed
	case p.CellsLoaded > 0:
		p.Source = SourceLoaded
	}
	return p
}

// datasetPlan caches everything the (model, seed) units share within one
// dataset: the scaled train/val series, the raw evaluation windows, and one
// cellPlan per grid cell. Building it once per dataset removes the
// per-model, per-seed recomputation of scaler transforms and window
// slicing. All fields are read-only once the plan is built, so workers can
// share them without locks (Predict implementations never mutate inputs).
type datasetPlan struct {
	cfg            forecast.Config
	scTrain, scVal []float64
	rawWindows     *timeseries.WindowSet
	cells          []cellPlan
	evalStride     int
	phaseStart     int
}

// cellPlan is the cached per-cell evaluation input: the paired windows of
// the scaled decompressed values against the scaled raw targets. It depends
// only on the cell, never on the model or seed.
type cellPlan struct {
	method  compress.Method
	epsilon float64
	windows *timeseries.WindowSet
}

// unit is one fit-and-evaluate work item of the inner grid.
type unit struct {
	model string
	mi    int // index into opts.models()
	si    int // seed index within the model
}

// unitResult carries one unit's metrics back to the deterministic merge.
type unitResult struct {
	base  stats.Metrics
	cells []stats.Metrics // indexed like DatasetResult.Cells
	err   error
}

// errUnitSkipped marks units abandoned after another unit failed; the merge
// reports the first real error in unit order instead.
var errUnitSkipped = errors.New("core: unit skipped after earlier failure")

// evaluateDataset runs Algorithm 1 for one dataset across all models,
// methods, and error bounds by driving the run's stage pipeline
// (Ingest → Compress → Reconstruct → Window → Train → Forecast → Analyze).
// The per-cell transforms are computed once (datasetPlan) and the
// (model, seed) units fan out over a worker pool of opts.parallelism()
// goroutines; per-seed metrics are merged in seed order so the result is
// bit-identical to a sequential run.
func evaluateDataset(rc *RunContext, name string) (*DatasetResult, error) {
	st := &pipelineState{name: name}
	addrs := rc.ownedAddrs(name)
	if rc.store != nil {
		sd, err := loadStoredDataset(rc.store, rc.opts, name)
		if err != nil {
			return nil, err
		}
		// A dataset whose owned cells the store fully covers skips the
		// pipeline outright — no ingest, no compression, no training.
		// Partial coverage hands the stored cells to the pipeline, which
		// computes only the delta. Partition runs ask only about their own
		// slice and never need an assembled result: their output is the
		// journal, not a grid.
		if sd.completeFor(rc.opts, addrs) {
			rc.acc.cellsLoaded.Add(int64(len(addrs)))
			if rc.owned != nil {
				return nil, nil
			}
			return sd.assemble(rc.opts), nil
		}
		st.loaded = sd
	}
	// Journal the claim before computing: peers scanning this worker's
	// journal skip these cells when stealing. Advisory only — a racing
	// double-compute is bit-identical and merges cleanly.
	if rc.owned != nil {
		if err := rc.claim(name, addrs); err != nil {
			return nil, err
		}
	}
	if err := rc.pipeline.run(rc, st); err != nil {
		return nil, err
	}
	return st.dr, nil
}

// evaluateWindows predicts every window and scores the flattened forecasts
// against the flattened raw targets (calculateMetrics in Algorithm 1).
func evaluateWindows(model forecast.Model, ws *timeseries.WindowSet) (stats.Metrics, error) {
	preds, err := model.Predict(ws.Inputs())
	if err != nil {
		return stats.Metrics{}, err
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	return stats.Evaluate(x, y)
}

func meanMetrics(ms []stats.Metrics) stats.Metrics {
	var out stats.Metrics
	if len(ms) == 0 {
		return out
	}
	for _, m := range ms {
		out.R += m.R
		out.RSE += m.RSE
		out.RMSE += m.RMSE
		out.NRMSE += m.NRMSE
	}
	n := float64(len(ms))
	out.R /= n
	out.RSE /= n
	out.RMSE /= n
	out.NRMSE /= n
	return out
}
