package core

import (
	"fmt"
	"runtime"
	"sync"

	"lossyts/internal/compress"
	"lossyts/internal/datasets"
	"lossyts/internal/forecast"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// Cell is one grid point: a (dataset, method, error bound) combination with
// its compression outcome and the forecasting metrics of every model when
// fed the decompressed test data (Algorithm 1, lines 5-10).
type Cell struct {
	Method   compress.Method
	Epsilon  float64
	CR       float64 // compression ratio on the test subset (.gz sizes)
	Segments int
	TE       stats.Metrics // raw vs decompressed test values
	// Decompressed holds the decompressed (raw-domain) test values.
	Decompressed []float64
	// ModelMetrics maps model name to its forecasting metrics (mean over
	// seeds) when predicting from the transformed input.
	ModelMetrics map[string]stats.Metrics
	// TFE maps model name to the transformation forecasting error computed
	// from NRMSE (Eq. 2).
	TFE map[string]float64
}

// DatasetResult is the full grid for one dataset.
type DatasetResult struct {
	Name           string
	SeasonalPeriod int
	Interval       int64
	// RawValues is the full (raw-domain) target series.
	RawValues []float64
	// RawTest is the raw-domain test subset.
	RawTest []float64
	// GorillaCR is the lossless baseline compression ratio (§3.3).
	GorillaCR float64
	// Baselines maps model name to its raw-data metrics (paper Table 2).
	Baselines map[string]stats.Metrics
	Cells     []*Cell
}

// Cell returns the grid cell for (method, eps), or nil.
func (d *DatasetResult) Cell(m compress.Method, eps float64) *Cell {
	for _, c := range d.Cells {
		if c.Method == m && c.Epsilon == eps {
			return c
		}
	}
	return nil
}

// GridResult is the complete evaluation output shared by all experiments.
type GridResult struct {
	Opts     Options
	Datasets map[string]*DatasetResult

	mu       sync.Mutex
	features map[string]map[string]float64 // lazy characteristic vectors
}

var (
	gridMu    sync.Mutex
	gridCache = map[string]*GridResult{}
)

// RunGrid executes the paper's evaluation scenario over the configured grid
// and memoises the result per option set, so the table and figure
// generators share one computation.
func RunGrid(opts Options) (*GridResult, error) {
	key := opts.key()
	gridMu.Lock()
	if g, ok := gridCache[key]; ok {
		gridMu.Unlock()
		return g, nil
	}
	gridMu.Unlock()

	g := &GridResult{Opts: opts, Datasets: map[string]*DatasetResult{}, features: map[string]map[string]float64{}}
	// Datasets are independent; evaluate them concurrently up to the number
	// of available CPUs. Each evaluation owns its models and RNGs, so the
	// result is identical to a sequential run.
	names := opts.datasets()
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, name := range names {
		name := name
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			dr, err := evaluateDataset(name, opts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("core: dataset %s: %w", name, err)
				return
			}
			if err == nil {
				g.Datasets[name] = dr
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	gridMu.Lock()
	gridCache[key] = g
	gridMu.Unlock()
	return g, nil
}

// evaluateDataset runs Algorithm 1 for one dataset across all models,
// methods, and error bounds.
func evaluateDataset(name string, opts Options) (*DatasetResult, error) {
	ds, err := datasets.Load(name, opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	target := ds.Target()
	train, val, test, err := target.Split(0.7, 0.1, 0.2)
	if err != nil {
		return nil, err
	}
	cfg := opts.Forecast
	if cfg.InputLen == 0 {
		cfg = forecast.DefaultConfig()
	}
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	if cfg.InputLen >= test.Len()-cfg.Horizon {
		return nil, fmt.Errorf("test subset too short (%d) for input %d + horizon %d; increase Scale",
			test.Len(), cfg.InputLen, cfg.Horizon)
	}

	var scaler timeseries.StandardScaler
	if err := scaler.Fit(train.Values); err != nil {
		return nil, err
	}
	scTrain := scaler.Transform(train.Values)
	scVal := scaler.Transform(val.Values)
	scTest := scaler.Transform(test.Values)

	dr := &DatasetResult{
		Name:           name,
		SeasonalPeriod: ds.SeasonalPeriod,
		Interval:       ds.Interval,
		RawValues:      target.Values,
		RawTest:        test.Values,
		Baselines:      map[string]stats.Metrics{},
	}

	// Lossless baseline CR (§3.3) on the test subset.
	gor, err := (compress.Gorilla{}).Compress(test, 0)
	if err != nil {
		return nil, err
	}
	if dr.GorillaCR, err = compress.Ratio(test, gor); err != nil {
		return nil, err
	}

	// Compression grid first: it is model-independent.
	for _, m := range opts.methods() {
		comp, err := compress.New(m)
		if err != nil {
			return nil, err
		}
		for _, eps := range opts.errorBounds() {
			c, err := comp.Compress(test, eps)
			if err != nil {
				return nil, err
			}
			dec, err := c.Decompress()
			if err != nil {
				return nil, err
			}
			cr, err := compress.Ratio(test, c)
			if err != nil {
				return nil, err
			}
			te, err := stats.Evaluate(test.Values, dec.Values)
			if err != nil {
				return nil, err
			}
			dr.Cells = append(dr.Cells, &Cell{
				Method:       m,
				Epsilon:      eps,
				CR:           cr,
				Segments:     c.Segments,
				TE:           te,
				Decompressed: dec.Values,
				ModelMetrics: map[string]stats.Metrics{},
				TFE:          map[string]float64{},
			})
		}
	}

	// Forecasting: train each model per seed, evaluate on the raw test and
	// on every decompressed variant (Algorithm 1).
	// Evaluation windows slide by one horizon; large datasets are evenly
	// subsampled to MaxEvalWindows to bound deep-model prediction cost.
	evalStride := cfg.Horizon
	if m := opts.MaxEvalWindows; m > 0 {
		if full := (test.Len() - cfg.InputLen - cfg.Horizon) / cfg.Horizon; full > m {
			evalStride = (test.Len() - cfg.InputLen - cfg.Horizon) / m
		}
	}
	rawWindows, err := timeseries.MakeWindows(scTest, cfg.InputLen, cfg.Horizon, evalStride)
	if err != nil {
		return nil, err
	}
	for _, modelName := range opts.models() {
		nSeeds := opts.seeds(modelName)
		var base []stats.Metrics
		cellAcc := make([][]stats.Metrics, len(dr.Cells))
		for run := 0; run < nSeeds; run++ {
			mcfg := cfg
			mcfg.Seed = opts.Seed + int64(run)*7919
			model, err := forecast.New(modelName, mcfg)
			if err != nil {
				return nil, err
			}
			if err := model.Fit(scTrain, scVal); err != nil {
				return nil, fmt.Errorf("fit %s: %w", modelName, err)
			}
			// The harness knows each window's absolute position, so
			// phase-aware models (Arima) receive real time indices for
			// their Fourier terms, exactly as the paper's timestamps do.
			if pa, ok := model.(forecast.PhaseAware); ok {
				pa.SetWindowPhase((train.Len()+val.Len())%ds.SeasonalPeriod, evalStride)
			}
			m, err := evaluateWindows(model, rawWindows)
			if err != nil {
				return nil, fmt.Errorf("baseline %s: %w", modelName, err)
			}
			base = append(base, m)
			for ci, cell := range dr.Cells {
				scDec := scaler.Transform(cell.Decompressed)
				ws, err := timeseries.MakePairedWindows(scDec, scTest, cfg.InputLen, cfg.Horizon, evalStride)
				if err != nil {
					return nil, err
				}
				m, err := evaluateWindows(model, ws)
				if err != nil {
					return nil, fmt.Errorf("%s on %s eps=%v: %w", modelName, cell.Method, cell.Epsilon, err)
				}
				cellAcc[ci] = append(cellAcc[ci], m)
			}
		}
		baseMean := meanMetrics(base)
		dr.Baselines[modelName] = baseMean
		for ci, cell := range dr.Cells {
			mm := meanMetrics(cellAcc[ci])
			cell.ModelMetrics[modelName] = mm
			if tfe, err := stats.TFE(mm.NRMSE, baseMean.NRMSE); err == nil {
				cell.TFE[modelName] = tfe
			}
		}
	}
	return dr, nil
}

// evaluateWindows predicts every window and scores the flattened forecasts
// against the flattened raw targets (calculateMetrics in Algorithm 1).
func evaluateWindows(model forecast.Model, ws *timeseries.WindowSet) (stats.Metrics, error) {
	preds, err := model.Predict(ws.Inputs())
	if err != nil {
		return stats.Metrics{}, err
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	return stats.Evaluate(x, y)
}

func meanMetrics(ms []stats.Metrics) stats.Metrics {
	var out stats.Metrics
	if len(ms) == 0 {
		return out
	}
	for _, m := range ms {
		out.R += m.R
		out.RSE += m.RSE
		out.RMSE += m.RMSE
		out.NRMSE += m.NRMSE
	}
	n := float64(len(ms))
	out.R /= n
	out.RSE /= n
	out.RMSE /= n
	out.NRMSE /= n
	return out
}
