package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lossyts/internal/compress"
	"lossyts/internal/datasets"
	"lossyts/internal/features"
	"lossyts/internal/forecast"
	"lossyts/internal/nn"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// Cell is one grid point: a (dataset, method, error bound) combination with
// its compression outcome and the forecasting metrics of every model when
// fed the decompressed test data (Algorithm 1, lines 5-10).
type Cell struct {
	Method   compress.Method
	Epsilon  float64
	CR       float64 // compression ratio on the test subset (.gz sizes)
	Segments int
	TE       stats.Metrics // raw vs decompressed test values
	// Decompressed holds the decompressed (raw-domain) test values.
	Decompressed []float64
	// ModelMetrics maps model name to its forecasting metrics (mean over
	// seeds) when predicting from the transformed input.
	ModelMetrics map[string]stats.Metrics
	// TFE maps model name to the transformation forecasting error computed
	// from NRMSE (Eq. 2).
	TFE map[string]float64
}

// cellKey identifies a grid cell within one dataset. Epsilon comparison is
// exact (==), matching the grid construction: bounds are taken verbatim
// from Options, never recomputed.
type cellKey struct {
	method compress.Method
	eps    float64
}

// DatasetResult is the full grid for one dataset.
type DatasetResult struct {
	Name           string
	SeasonalPeriod int
	Interval       int64
	// RawValues is the full (raw-domain) target series.
	RawValues []float64
	// RawTest is the raw-domain test subset.
	RawTest []float64
	// GorillaCR is the lossless baseline compression ratio (§3.3).
	GorillaCR float64
	// Baselines maps model name to its raw-data metrics (paper Table 2).
	Baselines map[string]stats.Metrics
	Cells     []*Cell

	// index maps (method, epsilon) to its cell for O(1) lookup. It is built
	// once before the result escapes its constructor and is read-only after.
	index map[cellKey]*Cell
}

// buildIndex (re)derives the keyed cell lookup from Cells. Constructors
// (evaluateDataset, LoadGrid) call it before the result is shared.
func (d *DatasetResult) buildIndex() {
	d.index = make(map[cellKey]*Cell, len(d.Cells))
	for _, c := range d.Cells {
		d.index[cellKey{c.Method, c.Epsilon}] = c
	}
}

// Cell returns the grid cell for (method, eps), or nil.
func (d *DatasetResult) Cell(m compress.Method, eps float64) *Cell {
	if d.index != nil {
		return d.index[cellKey{m, eps}]
	}
	// Hand-assembled results (tests) may lack the index; fall back to a scan.
	for _, c := range d.Cells {
		if c.Method == m && c.Epsilon == eps {
			return c
		}
	}
	return nil
}

// PhaseTimings reports where an evaluation run spent its time, plus work
// counters, so benchmarks can attribute speedups to specific phases. Phase
// durations are summed across concurrently evaluated datasets and worker
// goroutines, so they measure aggregate compute and may exceed Wall.
type PhaseTimings struct {
	// Setup covers dataset generation, splitting, scaling, and the
	// lossless Gorilla baseline.
	Setup time.Duration
	// Compression covers the method × error-bound compression grid.
	Compression time.Duration
	// Planning covers the per-cell transform + window caching (cellPlan).
	Planning time.Duration
	// Forecast covers model fitting and window evaluation across all
	// (model, seed) units.
	Forecast time.Duration
	// Wall is the end-to-end wall clock of the RunGrid call that computed
	// the grid (memoised callers see the original run's value).
	Wall time.Duration
	// Units is the number of (model, seed) units executed.
	Units int64
	// CellEvals is the number of model-on-decompressed-cell evaluations.
	CellEvals int64
}

// timingAcc accumulates PhaseTimings atomically across worker goroutines.
type timingAcc struct {
	setup, compression, planning, forecast atomic.Int64 // nanoseconds
	units, cellEvals                       atomic.Int64
}

func (a *timingAcc) snapshot(wall time.Duration) PhaseTimings {
	return PhaseTimings{
		Setup:       time.Duration(a.setup.Load()),
		Compression: time.Duration(a.compression.Load()),
		Planning:    time.Duration(a.planning.Load()),
		Forecast:    time.Duration(a.forecast.Load()),
		Wall:        wall,
		Units:       a.units.Load(),
		CellEvals:   a.cellEvals.Load(),
	}
}

// GridResult is the complete evaluation output shared by all experiments.
type GridResult struct {
	Opts     Options
	Datasets map[string]*DatasetResult
	// Timings reports per-phase wall clock and work counters of the run
	// that computed this grid (zero for grids loaded from disk).
	Timings PhaseTimings

	mu       sync.Mutex
	features map[string]features.Vector // lazy characteristic vectors
}

// featureCache returns the cached characteristic vector for key, lazily
// allocating the cache map. All access goes through these two helpers so
// the lazy initialisation is race-free even on zero-value GridResults.
func (g *GridResult) featureCache(key string) (features.Vector, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	v, ok := g.features[key]
	return v, ok
}

func (g *GridResult) storeFeature(key string, v features.Vector) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.features == nil {
		g.features = map[string]features.Vector{}
	}
	g.features[key] = v
}

var (
	gridMu    sync.Mutex
	gridCache = map[string]*GridResult{}
)

// ResetGridCache clears the in-process grid memoisation cache, forcing the
// next RunGrid call to recompute. It exists as a test and benchmark hook:
// determinism tests use it to compare two fresh computations, and the
// sequential-vs-parallel benchmarks use it to defeat memoisation.
func ResetGridCache() {
	gridMu.Lock()
	gridCache = map[string]*GridResult{}
	gridMu.Unlock()
}

// RunGrid executes the paper's evaluation scenario over the configured grid
// and memoises the result per option set, so the table and figure
// generators share one computation.
//
// Datasets are evaluated concurrently, and within each dataset the
// (model, seed) units fan out across a bounded worker pool (see
// Options.Parallelism). Results are merged in a fixed order, so the output
// is bit-identical to a sequential run regardless of GOMAXPROCS or the
// Parallelism setting.
func RunGrid(opts Options) (*GridResult, error) {
	key := opts.key()
	gridMu.Lock()
	if g, ok := gridCache[key]; ok {
		gridMu.Unlock()
		return g, nil
	}
	gridMu.Unlock()

	// The kernel mode is process-global (the nn ops consult it at every
	// dispatch), so it is set once per grid computation. Each (model, seed)
	// unit owns a per-goroutine arena released when its fit/predict ends,
	// so cell boundaries never leak pooled buffers across units.
	nn.UseReferenceKernels(opts.ReferenceKernels)

	start := time.Now()
	g := &GridResult{Opts: opts, Datasets: map[string]*DatasetResult{}}
	var acc timingAcc
	// Datasets are independent; evaluate them concurrently up to the
	// parallelism bound. Each evaluation owns its models and RNGs, and each
	// goroutine writes only its own slot, so no lock is needed and the
	// result is identical to a sequential run.
	names := opts.datasets()
	type dsOut struct {
		dr  *DatasetResult
		err error
	}
	outs := make([]dsOut, len(names))
	sem := make(chan struct{}, opts.parallelism())
	var wg sync.WaitGroup
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			outs[i].dr, outs[i].err = evaluateDataset(name, opts, &acc)
		}()
	}
	wg.Wait()
	// Surface every dataset failure, in dataset order, rather than only the
	// first one observed.
	var errs []error
	for i, name := range names {
		if outs[i].err != nil {
			errs = append(errs, fmt.Errorf("core: dataset %s: %w", name, outs[i].err))
		}
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	for i, name := range names {
		g.Datasets[name] = outs[i].dr
	}
	g.Timings = acc.snapshot(time.Since(start))
	gridMu.Lock()
	gridCache[key] = g
	gridMu.Unlock()
	return g, nil
}

// datasetPlan caches everything the (model, seed) units share within one
// dataset: the scaled train/val series, the raw evaluation windows, and one
// cellPlan per grid cell. Building it once per dataset removes the
// per-model, per-seed recomputation of scaler transforms and window
// slicing. All fields are read-only once the plan is built, so workers can
// share them without locks (Predict implementations never mutate inputs).
type datasetPlan struct {
	cfg            forecast.Config
	scTrain, scVal []float64
	rawWindows     *timeseries.WindowSet
	cells          []cellPlan
	evalStride     int
	phaseStart     int
}

// cellPlan is the cached per-cell evaluation input: the paired windows of
// the scaled decompressed values against the scaled raw targets. It depends
// only on the cell, never on the model or seed.
type cellPlan struct {
	method  compress.Method
	epsilon float64
	windows *timeseries.WindowSet
}

// unit is one fit-and-evaluate work item of the inner grid.
type unit struct {
	model string
	mi    int // index into opts.models()
	si    int // seed index within the model
}

// unitResult carries one unit's metrics back to the deterministic merge.
type unitResult struct {
	base  stats.Metrics
	cells []stats.Metrics // indexed like DatasetResult.Cells
	err   error
}

// errUnitSkipped marks units abandoned after another unit failed; the merge
// reports the first real error in unit order instead.
var errUnitSkipped = errors.New("core: unit skipped after earlier failure")

// evaluateDataset runs Algorithm 1 for one dataset across all models,
// methods, and error bounds. The per-cell transforms are computed once
// (datasetPlan) and the (model, seed) units fan out over a worker pool of
// opts.parallelism() goroutines; per-seed metrics are merged in seed order
// so the result is bit-identical to a sequential run.
func evaluateDataset(name string, opts Options, acc *timingAcc) (*DatasetResult, error) {
	tSetup := time.Now()
	ds, err := datasets.Load(name, opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	target := ds.Target()
	train, val, test, err := target.Split(0.7, 0.1, 0.2)
	if err != nil {
		return nil, err
	}
	cfg := opts.Forecast
	if cfg.InputLen == 0 {
		cfg = forecast.DefaultConfig()
	}
	cfg.SeasonalPeriod = ds.SeasonalPeriod
	if cfg.InputLen >= test.Len()-cfg.Horizon {
		return nil, fmt.Errorf("test subset too short (%d) for input %d + horizon %d; increase Scale",
			test.Len(), cfg.InputLen, cfg.Horizon)
	}

	var scaler timeseries.StandardScaler
	if err := scaler.Fit(train.Values); err != nil {
		return nil, err
	}
	scTrain := scaler.Transform(train.Values)
	scVal := scaler.Transform(val.Values)
	scTest := scaler.Transform(test.Values)

	dr := &DatasetResult{
		Name:           name,
		SeasonalPeriod: ds.SeasonalPeriod,
		Interval:       ds.Interval,
		RawValues:      target.Values,
		RawTest:        test.Values,
		Baselines:      map[string]stats.Metrics{},
	}

	// Lossless baseline CR (§3.3) on the test subset.
	gor, err := (compress.Gorilla{}).Compress(test, 0)
	if err != nil {
		return nil, err
	}
	if dr.GorillaCR, err = compress.Ratio(test, gor); err != nil {
		return nil, err
	}
	acc.setup.Add(int64(time.Since(tSetup)))

	// Compression grid first: it is model-independent.
	tComp := time.Now()
	for _, m := range opts.methods() {
		comp, err := compress.New(m)
		if err != nil {
			return nil, err
		}
		for _, eps := range opts.errorBounds() {
			c, err := comp.Compress(test, eps)
			if err != nil {
				return nil, err
			}
			dec, err := c.Decompress()
			if err != nil {
				return nil, err
			}
			cr, err := compress.Ratio(test, c)
			if err != nil {
				return nil, err
			}
			te, err := stats.Evaluate(test.Values, dec.Values)
			if err != nil {
				return nil, err
			}
			dr.Cells = append(dr.Cells, &Cell{
				Method:       m,
				Epsilon:      eps,
				CR:           cr,
				Segments:     c.Segments,
				TE:           te,
				Decompressed: dec.Values,
				ModelMetrics: map[string]stats.Metrics{},
				TFE:          map[string]float64{},
			})
		}
	}
	dr.buildIndex()
	acc.compression.Add(int64(time.Since(tComp)))

	// Evaluation windows slide by one horizon; large datasets are evenly
	// subsampled to MaxEvalWindows to bound deep-model prediction cost.
	tPlan := time.Now()
	evalStride := cfg.Horizon
	if m := opts.MaxEvalWindows; m > 0 {
		if full := (test.Len() - cfg.InputLen - cfg.Horizon) / cfg.Horizon; full > m {
			evalStride = (test.Len() - cfg.InputLen - cfg.Horizon) / m
		}
	}
	rawWindows, err := timeseries.MakeWindows(scTest, cfg.InputLen, cfg.Horizon, evalStride)
	if err != nil {
		return nil, err
	}
	// The scaled decompression and its paired windows depend only on the
	// cell, so they are computed exactly once and shared (read-only) by
	// every (model, seed) unit — previously they were recomputed per model
	// and per seed.
	plan := &datasetPlan{
		cfg:        cfg,
		scTrain:    scTrain,
		scVal:      scVal,
		rawWindows: rawWindows,
		cells:      make([]cellPlan, len(dr.Cells)),
		evalStride: evalStride,
		phaseStart: (train.Len() + val.Len()) % ds.SeasonalPeriod,
	}
	for ci, cell := range dr.Cells {
		scDec := scaler.Transform(cell.Decompressed)
		ws, err := timeseries.MakePairedWindows(scDec, scTest, cfg.InputLen, cfg.Horizon, evalStride)
		if err != nil {
			return nil, err
		}
		plan.cells[ci] = cellPlan{method: cell.Method, epsilon: cell.Epsilon, windows: ws}
	}
	acc.planning.Add(int64(time.Since(tPlan)))

	// Forecasting: train each model per seed, evaluate on the raw test and
	// on every decompressed variant (Algorithm 1). The (model, seed) units
	// are independent — each owns its model and RNG — so they fan out over
	// a bounded worker pool and land in a [model][seed] result grid.
	models := opts.models()
	var units []unit
	results := make([][]unitResult, len(models))
	for mi, modelName := range models {
		nSeeds := opts.seeds(modelName)
		results[mi] = make([]unitResult, nSeeds)
		for si := 0; si < nSeeds; si++ {
			units = append(units, unit{model: modelName, mi: mi, si: si})
		}
	}
	workers := opts.parallelism()
	if workers > len(units) {
		workers = len(units)
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				if failed.Load() {
					results[u.mi][u.si] = unitResult{err: errUnitSkipped}
					continue
				}
				res := runUnit(u, opts, plan, acc)
				if res.err != nil {
					failed.Store(true)
				}
				results[u.mi][u.si] = res
			}
		}()
	}
	wg.Wait()
	// Merge in (model, seed) order — the exact accumulation order of the
	// sequential implementation — so means are bit-identical.
	for _, u := range units {
		if err := results[u.mi][u.si].err; err != nil && !errors.Is(err, errUnitSkipped) {
			return nil, err
		}
	}
	for mi, modelName := range models {
		base := make([]stats.Metrics, len(results[mi]))
		cellAcc := make([][]stats.Metrics, len(dr.Cells))
		for si, res := range results[mi] {
			base[si] = res.base
			for ci := range dr.Cells {
				cellAcc[ci] = append(cellAcc[ci], res.cells[ci])
			}
		}
		baseMean := meanMetrics(base)
		dr.Baselines[modelName] = baseMean
		for ci, cell := range dr.Cells {
			mm := meanMetrics(cellAcc[ci])
			cell.ModelMetrics[modelName] = mm
			if tfe, err := stats.TFE(mm.NRMSE, baseMean.NRMSE); err == nil {
				cell.TFE[modelName] = tfe
			}
		}
	}
	return dr, nil
}

// runUnit fits one (model, seed) instance and evaluates it on the raw
// baseline windows and every cached cell window set.
func runUnit(u unit, opts Options, plan *datasetPlan, acc *timingAcc) unitResult {
	tFit := time.Now()
	defer func() {
		acc.forecast.Add(int64(time.Since(tFit)))
		acc.units.Add(1)
	}()
	mcfg := plan.cfg
	mcfg.Seed = opts.Seed + int64(u.si)*7919
	model, err := forecast.New(u.model, mcfg)
	if err != nil {
		return unitResult{err: err}
	}
	if err := model.Fit(plan.scTrain, plan.scVal); err != nil {
		return unitResult{err: fmt.Errorf("fit %s: %w", u.model, err)}
	}
	// The harness knows each window's absolute position, so phase-aware
	// models (Arima) receive real time indices for their Fourier terms,
	// exactly as the paper's timestamps do.
	if pa, ok := model.(forecast.PhaseAware); ok {
		pa.SetWindowPhase(plan.phaseStart, plan.evalStride)
	}
	base, err := evaluateWindows(model, plan.rawWindows)
	if err != nil {
		return unitResult{err: fmt.Errorf("baseline %s: %w", u.model, err)}
	}
	cells := make([]stats.Metrics, len(plan.cells))
	for ci, cp := range plan.cells {
		m, err := evaluateWindows(model, cp.windows)
		if err != nil {
			return unitResult{err: fmt.Errorf("%s on %s eps=%v: %w", u.model, cp.method, cp.epsilon, err)}
		}
		cells[ci] = m
	}
	acc.cellEvals.Add(int64(len(plan.cells)))
	return unitResult{base: base, cells: cells}
}

// evaluateWindows predicts every window and scores the flattened forecasts
// against the flattened raw targets (calculateMetrics in Algorithm 1).
func evaluateWindows(model forecast.Model, ws *timeseries.WindowSet) (stats.Metrics, error) {
	preds, err := model.Predict(ws.Inputs())
	if err != nil {
		return stats.Metrics{}, err
	}
	var x, y []float64
	for i, p := range preds {
		y = append(y, p...)
		x = append(x, ws.Windows[i].Target...)
	}
	return stats.Evaluate(x, y)
}

func meanMetrics(ms []stats.Metrics) stats.Metrics {
	var out stats.Metrics
	if len(ms) == 0 {
		return out
	}
	for _, m := range ms {
		out.R += m.R
		out.RSE += m.RSE
		out.RMSE += m.RMSE
		out.NRMSE += m.NRMSE
	}
	n := float64(len(ms))
	out.R /= n
	out.RSE /= n
	out.RMSE /= n
	out.NRMSE /= n
	return out
}
