package core

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"lossyts/internal/anomaly"
	"lossyts/internal/compress"
	"lossyts/internal/core/cellstore"
	"lossyts/internal/datasets"
	"lossyts/internal/features"
	"lossyts/internal/forecast"
	"lossyts/internal/timeseries"
)

// SessionOptions configures one continuous monitoring session: a single
// (dataset, method, error bound, model) stream driven through the
// ingest → inject → compress → reconstruct → monitor → update → score loop.
// Every field that can change the session's bytes is part of the session
// signature; Store and CheckpointEvery only control persistence and are
// excluded, exactly like Options.Store is for the batch grid.
type SessionOptions struct {
	// Dataset, Scale, Seed select the stream (datasets.StreamTarget).
	Dataset string
	Scale   float64
	Seed    int64
	// Method and Epsilon select the lossy channel the monitors watch
	// through.
	Method  compress.Method
	Epsilon float64
	// Model names the forecaster updated online ("" = monitors only).
	Model string
	// Forecast carries the model's window sizes and training budget; zero
	// values fall back to forecast.DefaultConfig.
	Forecast forecast.Config
	// ChunkSize is the tick granularity in points (0 = DefaultChunkSize).
	ChunkSize int
	// Period overrides the dataset's seasonal period (0 = dataset's).
	Period int

	// Warmup is the number of points before the scaler is fitted, the
	// injection σ is frozen, and the model's initial fit runs (0 selects
	// max(4·period, 40), raised to 3·(InputLen+Horizon) when a model is
	// set).
	Warmup int
	// UpdateEvery is the stride, in points, between incremental model
	// updates after the initial fit (0 = 4·period).
	UpdateEvery int

	// DriftEvery is the paired raw-vs-recon indicator check stride
	// (0 = period); ShiftK the shift monitor's threshold multiplier
	// (0 = 4); AnomalyThreshold the detector's robust z cut-off (0 = 5).
	DriftEvery       int
	ShiftK           float64
	AnomalyThreshold float64
	// Tolerance is the anomaly scoring position tolerance (0 = 2).
	Tolerance int

	// Spikes injects ground-truth anomalies after warmup: Spikes additive
	// spikes of SpikeMag warmup-σ (0 = 8σ). DriftAt > 0 injects a level
	// shift of DriftMag warmup-σ (0 = 6σ — comfortably above the shift
	// monitor's default 4σ₀ threshold, so a lossless channel always
	// detects it) starting at that fraction of the stream; it must land
	// after warmup.
	Spikes   int
	SpikeMag float64
	DriftAt  float64
	DriftMag float64

	// Store is a cellstore path for per-tick checkpoints ("" = off); a
	// killed session restarted with the same options and store resumes from
	// its last complete checkpoint. CheckpointEvery is the tick stride
	// between checkpoints (0 = every tick).
	Store           string
	CheckpointEvery int
}

// signature renders every result-determining field of the options — the
// session analogue of Options.gridSignature. Store and CheckpointEvery are
// cleared first: persistence never changes bytes.
func (o SessionOptions) signature() string {
	o.Store = ""
	o.CheckpointEvery = 0
	return fmt.Sprintf("sess%d;%+v", RecordSchema, o)
}

// stateRecordKey is the store key of the session's checkpoint record.
func (o SessionOptions) stateRecordKey() string {
	return "session|" + o.signature() + "|state"
}

// MonitorEvent is one alert or lifecycle event of a monitoring session,
// stamped with the global stream index and data timestamp at which it was
// detected.
type MonitorEvent struct {
	// Kind is one of "shift-level", "shift-variance", "indicator-drift",
	// "anomaly", "model-fit", "model-update".
	Kind string `json:"kind"`
	// Index is the global (0-based) stream index of the detection.
	Index int64 `json:"index"`
	// Time is the data timestamp of that index.
	Time int64 `json:"time"`
	// Detail carries kind-specific context (alert reasons, deltas).
	Detail string `json:"detail,omitempty"`
}

// SessionReport is the deterministic outcome of a session: the event log
// plus compression, forecasting, drift-detection, and anomaly-detection
// metrics. A streamed run, its offline replay, and a killed-and-resumed run
// all produce byte-identical reports.
type SessionReport struct {
	Dataset string          `json:"dataset"`
	Method  compress.Method `json:"method"`
	Epsilon float64         `json:"epsilon"`
	Model   string          `json:"model,omitempty"`
	Points  int64           `json:"points"`
	Ticks   int             `json:"ticks"`
	Period  int             `json:"period"`
	Warmup  int             `json:"warmup"`

	Events []MonitorEvent `json:"events"`

	// CompressionRatio is Σ per-chunk raw .gz bytes / Σ payload bytes; TE
	// is the transformation error NRMSE(raw, reconstructed) over the whole
	// stream.
	CompressionRatio float64 `json:"compression_ratio"`
	TE               float64 `json:"te"`

	// Prequential forecasting error: predictions issued online from the
	// reconstructed stream, scored against the raw stream as it arrives.
	ForecastRMSE   float64 `json:"forecast_rmse,omitempty"`
	ForecastNRMSE  float64 `json:"forecast_nrmse,omitempty"`
	ForecastPoints int64   `json:"forecast_points,omitempty"`

	// Anomaly detection vs the injected ground truth.
	TruthSpikes []int64 `json:"truth_spikes,omitempty"`
	Detected    []int64 `json:"detected,omitempty"`
	Precision   float64 `json:"precision"`
	Recall      float64 `json:"recall"`
	F1          float64 `json:"f1"`

	// Drift detection vs the injected level shift. Indexes are −1 when not
	// injected / never detected.
	DriftInjectedAt int64 `json:"drift_injected_at"`
	DriftDetectedAt int64 `json:"drift_detected_at"`
	DriftDelay      int64 `json:"drift_delay"`
	FalseAlerts     int   `json:"false_alerts"`
	IndicatorAlerts int   `json:"indicator_alerts"`
}

// pendingForecast is a forecast issued online, waiting for its actuals.
type pendingForecast struct {
	Start int64     `json:"start"`
	Preds []float64 `json:"preds"` // raw domain
	Done  int       `json:"done"`
}

// sessionState is the complete serialisable state of a session between two
// ticks — what a checkpoint stores. Every float64 round-trips JSON
// bit-exactly, so a restored session continues identically.
type sessionState struct {
	Tick  int   `json:"tick"`
	Total int64 `json:"total"`

	Events []MonitorEvent `json:"events"`

	Drift features.DriftMonitorState  `json:"drift"`
	Shift features.ShiftMonitorState  `json:"shift"`
	Anom  anomaly.StreamDetectorState `json:"anom"`
	Recon timeseries.RingState        `json:"recon"`

	ScalerMean   float64 `json:"scaler_mean"`
	ScalerStd    float64 `json:"scaler_std"`
	ScalerFitted bool    `json:"scaler_fitted"`

	Sigma    float64   `json:"sigma"`
	SigmaSet bool      `json:"sigma_set"`
	Warmup   []float64 `json:"warmup_buf,omitempty"`

	ModelTrained bool                 `json:"model_trained"`
	LastUpdate   int64                `json:"last_update"`
	LastForecast int64                `json:"last_forecast"`
	Model        *forecast.ModelState `json:"model,omitempty"`
	FitTrain     []float64            `json:"fit_train,omitempty"`
	FitVal       []float64            `json:"fit_val,omitempty"`
	Pending      []pendingForecast    `json:"pending,omitempty"`

	RawBytes  int64   `json:"raw_bytes"`
	CompBytes int64   `json:"comp_bytes"`
	SqErr     float64 `json:"sq_err"`
	ErrN      int64   `json:"err_n"`
	RawMin    float64 `json:"raw_min"`
	RawMax    float64 `json:"raw_max"`
	FSqErr    float64 `json:"f_sq_err"`
	FN        int64   `json:"f_n"`

	Detected        []int64 `json:"detected,omitempty"`
	DriftDetectedAt int64   `json:"drift_detected_at"`
	FalseAlerts     int     `json:"false_alerts"`
	IndicatorAlerts int     `json:"indicator_alerts"`
}

// Session drives the continuous monitoring loop. Construct with NewSession,
// then call Run (live stream) or Replay (offline, batch-loaded source) —
// the two are byte-identical because datasets.StreamTarget generates the
// exact bytes of the batch loader.
type Session struct {
	opts   SessionOptions
	period int
	warmup int
	n      int // total stream length in points
	start  int64
	interv int64

	comp compress.Compressor

	drift *features.DriftMonitor
	shift *features.ShiftMonitor
	anom  *anomaly.StreamDetector
	recon *timeseries.Ring

	scaler timeseries.StandardScaler

	sigma     float64
	sigmaSet  bool
	warmupBuf []float64

	spikePos   []int
	spikeDelta []float64
	driftPos   int64 // −1 when no drift injected

	model        forecast.Model
	modelTrained bool
	lastUpdate   int64
	lastForecast int64
	fitTrain     []float64 // last (scaled) fit window, for refit-on-resume
	fitVal       []float64
	pending      []pendingForecast

	tick   int
	total  int64
	events []MonitorEvent

	rawBytes, compBytes int64
	sqErr               float64
	errN                int64
	rawMin, rawMax      float64
	fSqErr              float64
	fN                  int64

	detected        []int64
	driftDetectedAt int64
	falseAlerts     int
	indicatorAlerts int
}

// NewSession validates the options and builds the monitors. The stream
// itself is opened by Run or Replay.
func NewSession(opts SessionOptions) (*Session, error) {
	if opts.Scale <= 0 {
		opts.Scale = 0.03
	}
	spec, ok := datasets.SpecOf(opts.Dataset)
	if !ok {
		return nil, fmt.Errorf("core: unknown dataset %q", opts.Dataset)
	}
	period := opts.Period
	if period == 0 {
		period = spec.Period
	}
	if period < 2 {
		return nil, fmt.Errorf("core: session period %d must be at least 2", period)
	}
	opts.Period = period
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = timeseries.DefaultChunkSize
	}
	n := int(float64(spec.Length) * opts.Scale)
	if n < 1 {
		n = 1
	}
	warmup := opts.Warmup
	if warmup <= 0 {
		warmup = 4 * period
		if warmup < 40 {
			warmup = 40
		}
		if opts.Model != "" {
			cfg := sessionForecastConfig(opts)
			if min := 3 * (cfg.InputLen + cfg.Horizon); warmup < min {
				warmup = min
			}
		}
	}
	if warmup >= n {
		return nil, fmt.Errorf("core: warmup %d must be shorter than the stream (%d points)", warmup, n)
	}
	opts.Warmup = warmup

	s := &Session{
		opts:            opts,
		period:          period,
		warmup:          warmup,
		n:               n,
		driftPos:        -1,
		driftDetectedAt: -1,
		rawMin:          math.Inf(1),
		rawMax:          math.Inf(-1),
		lastUpdate:      -1,
		lastForecast:    -1,
	}

	comp, err := compress.New(opts.Method)
	if err != nil {
		return nil, err
	}
	s.comp = comp

	if s.drift, err = features.NewDriftMonitor(period, 0, opts.DriftEvery); err != nil {
		return nil, err
	}
	s.shift = features.NewShiftMonitor(period, opts.ShiftK)
	if s.anom, err = anomaly.NewStreamDetector(anomaly.Detector{Period: period, Threshold: opts.AnomalyThreshold}, 0); err != nil {
		return nil, err
	}
	s.recon = timeseries.NewRing(warmup)

	if opts.Spikes > 0 {
		s.spikePos, s.spikeDelta = anomaly.SpikePlan(n, opts.Spikes, 1, opts.Seed+1)
	}
	if opts.DriftAt > 0 {
		pos := int64(opts.DriftAt * float64(n))
		if pos <= int64(warmup) {
			return nil, fmt.Errorf("core: drift at point %d must land after warmup %d", pos, warmup)
		}
		if pos >= int64(n) {
			return nil, fmt.Errorf("core: drift fraction %v lands past the stream end", opts.DriftAt)
		}
		s.driftPos = pos
	}

	if opts.Model != "" {
		m, err := forecast.New(opts.Model, sessionForecastConfig(opts))
		if err != nil {
			return nil, err
		}
		if _, ok := m.(forecast.IncrementalFitter); !ok {
			return nil, fmt.Errorf("core: model %q does not implement forecast.IncrementalFitter", opts.Model)
		}
		s.model = m
	}
	return s, nil
}

// sessionForecastConfig resolves the session's forecast config with the
// same defaulting the batch harness applies.
func sessionForecastConfig(o SessionOptions) forecast.Config {
	cfg := o.Forecast
	def := forecast.DefaultConfig()
	if cfg.InputLen == 0 {
		cfg.InputLen = def.InputLen
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = def.Horizon
	}
	if cfg.SeasonalPeriod == 0 {
		cfg.SeasonalPeriod = o.Period
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = def.Epochs
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = def.BatchSize
	}
	if cfg.LR == 0 {
		cfg.LR = def.LR
	}
	if cfg.WeightDecay == 0 {
		cfg.WeightDecay = def.WeightDecay
	}
	if cfg.Patience == 0 {
		cfg.Patience = def.Patience
	}
	if cfg.Dropout == 0 {
		cfg.Dropout = def.Dropout
	}
	if cfg.HiddenSize == 0 {
		cfg.HiddenSize = def.HiddenSize
	}
	if cfg.MaxTrainWindows == 0 {
		cfg.MaxTrainWindows = def.MaxTrainWindows
	}
	if cfg.Seed == 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

// Run executes the session against the live chunked stream
// (datasets.StreamTarget). With a Store, it first resumes from the latest
// checkpoint if one exists.
func (s *Session) Run(ctx context.Context) (*SessionReport, error) {
	ts, err := datasets.StreamTarget(s.opts.Dataset, s.opts.Scale, s.opts.Seed, s.opts.ChunkSize)
	if err != nil {
		return nil, err
	}
	s.start, s.interv = ts.Start(), ts.Interval()
	next := func() (timeseries.Chunk, bool) { return ts.Next() }
	rep, err := s.loop(ctx, next)
	if err != nil {
		return nil, err
	}
	if serr := ts.Err(); serr != nil {
		return nil, serr
	}
	return rep, nil
}

// Replay executes the session offline: the dataset is batch-loaded and
// re-chunked at the session's chunk size. Byte-identical to Run.
func (s *Session) Replay(ctx context.Context) (*SessionReport, error) {
	ds, err := datasets.Load(s.opts.Dataset, s.opts.Scale, s.opts.Seed)
	if err != nil {
		return nil, err
	}
	target := ds.Target()
	s.start, s.interv = target.Start, target.Interval
	src := target.Chunks(s.opts.ChunkSize)
	next := func() (timeseries.Chunk, bool) { return src.Next() }
	return s.loop(ctx, next)
}

// loop is the session core: tick over chunks, checkpoint, report.
func (s *Session) loop(ctx context.Context, next func() (timeseries.Chunk, bool)) (*SessionReport, error) {
	var store *cellstore.Store
	if s.opts.Store != "" {
		var err error
		store, err = cellstore.Open(s.opts.Store)
		if err != nil {
			return nil, err
		}
		defer store.Close()
		if err := s.restore(store); err != nil {
			return nil, err
		}
	}
	ckEvery := s.opts.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 1
	}
	tick := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		c, ok := next()
		if !ok {
			break
		}
		tick++
		if tick <= s.tick {
			continue // already absorbed before the checkpoint; regenerate and skip
		}
		if err := s.processChunk(ctx, c); err != nil {
			return nil, err
		}
		s.tick = tick
		if store != nil && tick%ckEvery == 0 {
			if err := s.checkpoint(store); err != nil {
				return nil, err
			}
		}
	}
	// Flush the anomaly tail.
	idx, err := s.anom.Finish()
	if err != nil {
		return nil, err
	}
	s.noteAnomalies(idx)
	if store != nil {
		if err := s.checkpoint(store); err != nil {
			return nil, err
		}
	}
	return s.report(), nil
}

// processChunk runs one tick: inject → compress → reconstruct → monitor →
// update → score.
func (s *Session) processChunk(ctx context.Context, c timeseries.Chunk) error {
	// Inject ground truth into the raw chunk (copy: chunks may alias the
	// generator's buffers).
	raw := append([]float64(nil), c.Values...)
	base := s.total
	for i := range raw {
		g := base + int64(i)
		if !s.sigmaSet && g < int64(s.warmup) {
			s.warmupBuf = append(s.warmupBuf, raw[i])
		}
		if !s.sigmaSet && g == int64(s.warmup) {
			s.freezeSigma()
		}
		if s.sigmaSet {
			if s.driftPos >= 0 && g >= s.driftPos {
				raw[i] += s.driftMagnitude() * s.sigma
			}
			for k, p := range s.spikePos {
				if int64(p) == g && int64(p) >= int64(s.warmup) {
					raw[i] += s.spikeDelta[k] * s.spikeMagnitude() * s.sigma
				}
			}
		}
	}
	// A stream whose warmup boundary falls exactly on a chunk seam freezes
	// σ at the start of the next chunk; handle end-of-warmup inside chunks
	// shorter than the boundary too.
	if !s.sigmaSet && s.total+int64(len(raw)) >= int64(s.warmup) && len(s.warmupBuf) >= s.warmup {
		s.freezeSigma()
	}

	// Compress and reconstruct the injected chunk.
	series := timeseries.New(s.opts.Dataset, c.Start, c.Interval, raw)
	comp, err := s.comp.Compress(series, s.opts.Epsilon)
	if err != nil {
		return err
	}
	dec, err := comp.Decompress()
	if err != nil {
		return err
	}
	recon := dec.Values
	if len(recon) != len(raw) {
		return fmt.Errorf("core: chunk reconstructed %d of %d points", len(recon), len(raw))
	}
	rawGz, err := compress.RawGzipSize(series)
	if err != nil {
		return err
	}
	s.rawBytes += int64(rawGz)
	s.compBytes += int64(comp.Size())

	// Transformation error and range accumulators.
	for i := range raw {
		d := raw[i] - recon[i]
		s.sqErr += d * d
		s.errN++
		if raw[i] < s.rawMin {
			s.rawMin = raw[i]
		}
		if raw[i] > s.rawMax {
			s.rawMax = raw[i]
		}
	}

	// Score pending forecasts against arriving raw values.
	s.scorePending(raw, base)

	// Monitors consume the reconstructed stream (the lossy channel the
	// paper's guideline watches), pointwise for the shift monitor so alert
	// indices are exact.
	for _, v := range recon {
		for _, a := range s.shift.Push(v) {
			s.noteShift(a)
		}
	}
	checks, err := s.drift.Push(raw, recon)
	if err != nil {
		return err
	}
	for _, ck := range checks {
		if ck.Report.Alert {
			s.indicatorAlerts++
			s.addEvent("indicator-drift", ck.Index, joinReasons(ck.Report.Reasons))
		}
	}
	idx, err := s.anom.Push(recon)
	if err != nil {
		return err
	}
	s.noteAnomalies(idx)

	for _, v := range recon {
		s.recon.Push(v)
	}
	s.total += int64(len(raw))

	// Model lifecycle at tick boundaries.
	if s.model != nil {
		if err := s.modelStep(ctx); err != nil {
			return err
		}
	}
	return nil
}

// freezeSigma fits the scaler and injection σ on the warmup prefix.
func (s *Session) freezeSigma() {
	if len(s.warmupBuf) == 0 {
		return
	}
	_ = s.scaler.Fit(s.warmupBuf)
	s.sigma = s.scaler.Std
	s.sigmaSet = true
	s.warmupBuf = nil
}

func (s *Session) spikeMagnitude() float64 {
	if s.opts.SpikeMag > 0 {
		return s.opts.SpikeMag
	}
	return 8
}

func (s *Session) driftMagnitude() float64 {
	if s.opts.DriftMag > 0 {
		return s.opts.DriftMag
	}
	return 6
}

// noteShift records a shift alert and updates drift-detection bookkeeping.
func (s *Session) noteShift(a features.ShiftAlert) {
	s.addEvent("shift-"+a.Kind, a.Index, fmt.Sprintf("delta=%g threshold=%g", a.Delta, a.Threshold))
	if a.Kind != "level" {
		return
	}
	if s.driftPos >= 0 && a.Index >= s.driftPos {
		if s.driftDetectedAt < 0 {
			s.driftDetectedAt = a.Index
		}
	} else {
		s.falseAlerts++
	}
}

func (s *Session) noteAnomalies(idx []int64) {
	for _, g := range idx {
		s.detected = append(s.detected, g)
		s.addEvent("anomaly", g, "")
	}
}

func (s *Session) addEvent(kind string, index int64, detail string) {
	s.events = append(s.events, MonitorEvent{
		Kind:   kind,
		Index:  index,
		Time:   s.start + index*s.interv,
		Detail: detail,
	})
}

func joinReasons(reasons []string) string {
	out := ""
	for i, r := range reasons {
		if i > 0 {
			out += ","
		}
		out += r
	}
	return out
}

// modelStep fits, updates, and issues forecasts at tick boundaries.
func (s *Session) modelStep(ctx context.Context) error {
	cfg := sessionForecastConfig(s.opts)
	fitter := s.model.(forecast.IncrementalFitter)
	if !s.modelTrained {
		if s.total < int64(s.warmup) || !s.sigmaSet {
			return nil
		}
		train, val := s.trainWindow()
		if err := fitter.Fit(train, val); err != nil {
			return err
		}
		s.modelTrained = true
		s.lastUpdate = s.total
		s.fitTrain, s.fitVal = train, val
		s.addEvent("model-fit", s.total-1, fmt.Sprintf("points=%d", len(train)+len(val)))
	} else if s.total-s.lastUpdate >= int64(s.updateEvery()) {
		train, val := s.trainWindow()
		if err := fitter.Update(ctx, train, val); err != nil {
			return err
		}
		s.lastUpdate = s.total
		s.fitTrain, s.fitVal = train, val
		s.addEvent("model-update", s.total-1, fmt.Sprintf("points=%d", len(train)+len(val)))
	}
	// Issue a forecast for the next Horizon points when the previous one
	// has run its course.
	if s.modelTrained && s.recon.Len() >= cfg.InputLen &&
		(s.lastForecast < 0 || s.total-s.lastForecast >= int64(cfg.Horizon)) {
		window := s.recon.CopyTo(nil)
		in := s.scaler.Transform(window[len(window)-cfg.InputLen:])
		preds, err := s.model.Predict([][]float64{in})
		if err != nil {
			return err
		}
		s.pending = append(s.pending, pendingForecast{
			Start: s.total,
			Preds: s.scaler.Inverse(preds[0]),
		})
		s.lastForecast = s.total
	}
	return nil
}

func (s *Session) updateEvery() int {
	if s.opts.UpdateEvery > 0 {
		return s.opts.UpdateEvery
	}
	return 4 * s.period
}

// trainWindow returns the scaled train/val split (80/20) of the recon
// window.
func (s *Session) trainWindow() (train, val []float64) {
	window := s.scaler.Transform(s.recon.CopyTo(nil))
	cut := len(window) - len(window)/5
	return window[:cut], window[cut:]
}

// scorePending folds newly arrived raw values into outstanding forecasts.
func (s *Session) scorePending(raw []float64, base int64) {
	kept := s.pending[:0]
	for _, p := range s.pending {
		for p.Done < len(p.Preds) {
			g := p.Start + int64(p.Done)
			i := g - base
			if i < 0 || i >= int64(len(raw)) {
				break
			}
			d := p.Preds[p.Done] - raw[i]
			s.fSqErr += d * d
			s.fN++
			p.Done++
		}
		if p.Done < len(p.Preds) {
			kept = append(kept, p)
		}
	}
	s.pending = kept
}

// report assembles the final SessionReport from the session state.
func (s *Session) report() *SessionReport {
	rep := &SessionReport{
		Dataset:         s.opts.Dataset,
		Method:          s.opts.Method,
		Epsilon:         s.opts.Epsilon,
		Model:           s.opts.Model,
		Points:          s.total,
		Ticks:           s.tick,
		Period:          s.period,
		Warmup:          s.warmup,
		Events:          s.events,
		DriftInjectedAt: s.driftPos,
		DriftDetectedAt: s.driftDetectedAt,
		DriftDelay:      -1,
		FalseAlerts:     s.falseAlerts,
		IndicatorAlerts: s.indicatorAlerts,
		Detected:        s.detected,
	}
	if rep.Events == nil {
		rep.Events = []MonitorEvent{}
	}
	if s.compBytes > 0 {
		rep.CompressionRatio = float64(s.rawBytes) / float64(s.compBytes)
	}
	if s.errN > 0 && s.rawMax > s.rawMin {
		rep.TE = math.Sqrt(s.sqErr/float64(s.errN)) / (s.rawMax - s.rawMin)
	}
	if s.fN > 0 {
		rep.ForecastRMSE = math.Sqrt(s.fSqErr / float64(s.fN))
		if s.rawMax > s.rawMin {
			rep.ForecastNRMSE = rep.ForecastRMSE / (s.rawMax - s.rawMin)
		}
		rep.ForecastPoints = s.fN
	}
	if s.driftPos >= 0 && s.driftDetectedAt >= 0 {
		rep.DriftDelay = s.driftDetectedAt - s.driftPos
	}
	// Anomaly scoring vs injected truth.
	var truth []int
	for _, p := range s.spikePos {
		if p >= s.warmup {
			truth = append(truth, p)
			rep.TruthSpikes = append(rep.TruthSpikes, int64(p))
		}
	}
	det := make([]int, len(s.detected))
	for i, g := range s.detected {
		det[i] = int(g)
	}
	tol := s.opts.Tolerance
	if tol <= 0 {
		tol = 2
	}
	rep.Precision, rep.Recall, rep.F1 = anomaly.Score(det, truth, tol)
	return rep
}

// checkpoint writes the full session state to the store.
func (s *Session) checkpoint(store *cellstore.Store) error {
	st := sessionState{
		Tick:            s.tick,
		Total:           s.total,
		Events:          s.events,
		Drift:           s.drift.State(),
		Shift:           s.shift.State(),
		Anom:            s.anom.State(),
		Recon:           s.recon.State(),
		ScalerMean:      s.scaler.Mean,
		ScalerStd:       s.scaler.Std,
		ScalerFitted:    s.scaler.Fitted(),
		Sigma:           s.sigma,
		SigmaSet:        s.sigmaSet,
		Warmup:          s.warmupBuf,
		ModelTrained:    s.modelTrained,
		LastUpdate:      s.lastUpdate,
		LastForecast:    s.lastForecast,
		FitTrain:        s.fitTrain,
		FitVal:          s.fitVal,
		Pending:         s.pending,
		RawBytes:        s.rawBytes,
		CompBytes:       s.compBytes,
		SqErr:           s.sqErr,
		ErrN:            s.errN,
		RawMin:          s.rawMin,
		RawMax:          s.rawMax,
		FSqErr:          s.fSqErr,
		FN:              s.fN,
		Detected:        s.detected,
		DriftDetectedAt: s.driftDetectedAt,
		FalseAlerts:     s.falseAlerts,
		IndicatorAlerts: s.indicatorAlerts,
	}
	// ±Inf cannot cross JSON; the range accumulator is empty only before
	// the first chunk.
	if math.IsInf(st.RawMin, 0) {
		st.RawMin, st.RawMax = 0, 0
		if st.ErrN != 0 {
			return fmt.Errorf("core: non-finite range with %d scored points", st.ErrN)
		}
	}
	if sn, ok := s.model.(forecast.Snapshotter); ok && s.modelTrained {
		ms := sn.StateSnapshot()
		st.Model = &ms
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return store.Put(s.opts.stateRecordKey(), buf.Bytes())
}

// restore loads the latest checkpoint, if any, and rebuilds all live state.
func (s *Session) restore(store *cellstore.Store) error {
	payload, ok := store.Get(s.opts.stateRecordKey())
	if !ok {
		return nil
	}
	zr, err := gzip.NewReader(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("core: session checkpoint: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return fmt.Errorf("core: session checkpoint: %w", err)
	}
	if err := zr.Close(); err != nil {
		return err
	}
	var st sessionState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("core: session checkpoint: %w", err)
	}
	if s.drift, err = features.DriftMonitorFromState(st.Drift); err != nil {
		return err
	}
	if s.shift, err = features.ShiftMonitorFromState(st.Shift); err != nil {
		return err
	}
	if s.anom, err = anomaly.StreamDetectorFromState(st.Anom); err != nil {
		return err
	}
	if s.recon, err = timeseries.RingFromState(st.Recon); err != nil {
		return err
	}
	s.tick = st.Tick
	s.total = st.Total
	s.events = st.Events
	s.scaler = timeseries.StandardScaler{Mean: st.ScalerMean, Std: st.ScalerStd}
	if st.ScalerFitted {
		// Re-fit on a singleton to set the unexported fitted flag, then
		// restore the exact moments.
		_ = s.scaler.Fit([]float64{0})
		s.scaler.Mean, s.scaler.Std = st.ScalerMean, st.ScalerStd
	}
	s.sigma = st.Sigma
	s.sigmaSet = st.SigmaSet
	s.warmupBuf = st.Warmup
	s.modelTrained = st.ModelTrained
	s.lastUpdate = st.LastUpdate
	s.lastForecast = st.LastForecast
	s.fitTrain = st.FitTrain
	s.fitVal = st.FitVal
	s.pending = st.Pending
	s.rawBytes, s.compBytes = st.RawBytes, st.CompBytes
	s.sqErr, s.errN = st.SqErr, st.ErrN
	s.rawMin, s.rawMax = st.RawMin, st.RawMax
	if s.errN == 0 {
		s.rawMin, s.rawMax = math.Inf(1), math.Inf(-1)
	}
	s.fSqErr, s.fN = st.FSqErr, st.FN
	s.detected = st.Detected
	s.driftDetectedAt = st.DriftDetectedAt
	s.falseAlerts = st.FalseAlerts
	s.indicatorAlerts = st.IndicatorAlerts
	if s.model != nil && st.ModelTrained {
		if sn, ok := s.model.(forecast.Snapshotter); ok {
			if st.Model == nil {
				return fmt.Errorf("core: checkpoint for %s lacks model state", s.opts.Model)
			}
			if err := sn.RestoreState(*st.Model); err != nil {
				return err
			}
		} else {
			// Refit-path models: rebuild by fitting the checkpointed window
			// — deterministic, so the restored model matches the original.
			if err := s.model.Fit(st.FitTrain, st.FitVal); err != nil {
				return err
			}
		}
	}
	return nil
}
