package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"lossyts/internal/compress"
)

// SweepCell is one (method, error bound) session outcome of a monitor
// sweep.
type SweepCell struct {
	Method  compress.Method `json:"method"`
	Epsilon float64         `json:"epsilon"`
	Report  *SessionReport  `json:"report"`
}

// MonitorBench is the deterministic result of MonitorSweep — the shape
// committed as BENCH_monitor.json: how drift-detection delay, anomaly F1,
// forecast error, and compression ratio move as the error bound grows.
type MonitorBench struct {
	Dataset string      `json:"dataset"`
	Model   string      `json:"model,omitempty"`
	Scale   float64     `json:"scale"`
	Seed    int64       `json:"seed"`
	Cells   []SweepCell `json:"cells"`
}

// MonitorSweep runs one monitoring session per (method, bound) pair and
// assembles the reports in method-major order. Cells are independent
// sessions, so they parallelise freely; results are written into a
// pre-sized slice by index, which makes the merged output identical at any
// parallelism. Checkpointing is disabled inside sweeps — cells are short
// and the sweep itself is the retry unit.
func MonitorSweep(ctx context.Context, base SessionOptions, methods []compress.Method, bounds []float64, parallelism int) (*MonitorBench, error) {
	if len(methods) == 0 || len(bounds) == 0 {
		return nil, fmt.Errorf("core: monitor sweep needs at least one method and one bound")
	}
	if parallelism <= 0 {
		parallelism = runtime.NumCPU()
	}
	cells := make([]SweepCell, 0, len(methods)*len(bounds))
	for _, m := range methods {
		for _, eps := range bounds {
			cells = append(cells, SweepCell{Method: m, Epsilon: eps})
		}
	}
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	errs := make([]error, len(cells))
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			opts := base
			opts.Method = cells[i].Method
			opts.Epsilon = cells[i].Epsilon
			opts.Store = ""
			opts.CheckpointEvery = 0
			sess, err := NewSession(opts)
			if err != nil {
				errs[i] = err
				return
			}
			rep, err := sess.Run(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			cells[i].Report = rep
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &MonitorBench{
		Dataset: base.Dataset,
		Model:   base.Model,
		Scale:   base.Scale,
		Seed:    base.Seed,
		Cells:   cells,
	}, nil
}
