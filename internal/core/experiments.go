package core

import (
	"fmt"
	"math"
	"sort"

	"lossyts/internal/compress"
	"lossyts/internal/datasets"
	"lossyts/internal/stats"
)

// freqLabel renders a sampling interval like the paper's FREQ column.
func freqLabel(seconds int64) string {
	switch {
	case seconds%3600 == 0:
		return fmt.Sprintf("%dh", seconds/3600)
	case seconds%60 == 0:
		return fmt.Sprintf("%dmin", seconds/60)
	default:
		return fmt.Sprintf("%dsec", seconds)
	}
}

// Table1 reproduces Table 1: descriptive statistics of the datasets.
func Table1(opts Options) (*Table, error) {
	t := &Table{
		Title:  "Table 1: Details and statistics of datasets",
		Header: []string{"Dataset", "LEN", "FREQ", "MEAN", "MIN", "MAX", "Q1", "Q3", "rIQD"},
	}
	for _, name := range opts.datasets() {
		ds, err := datasets.Load(name, opts.Scale, opts.Seed)
		if err != nil {
			return nil, err
		}
		d, err := stats.Describe(ds.Target().Values)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, d.Len, freqLabel(ds.Interval), d.Mean, d.Min, d.Max, d.Q1, d.Q3,
			fmt.Sprintf("%.0f%%", d.RIQD))
	}
	return t, nil
}

// Table2 reproduces Table 2: baseline forecasting results per model and
// dataset (R, RSE, RMSE, NRMSE on raw data; best NRMSE marked with *).
func Table2(g *GridResult) (*Table, error) {
	names := g.Opts.datasets()
	t := &Table{
		Title:  "Table 2: Evaluation scenario baseline results (* = best NRMSE)",
		Header: append([]string{"Model", "Metric"}, names...),
	}
	best := map[string]string{}
	for _, ds := range names {
		bestV := math.Inf(1)
		for _, m := range g.Opts.models() {
			if v := g.Datasets[ds].Baselines[m].NRMSE; v < bestV {
				bestV = v
				best[ds] = m
			}
		}
	}
	for _, m := range g.Opts.models() {
		for _, metric := range []string{"R", "RSE", "RMSE", "NRMSE"} {
			row := []any{m, metric}
			for _, ds := range names {
				b := g.Datasets[ds].Baselines[m]
				var v float64
				switch metric {
				case "R":
					v = b.R
				case "RSE":
					v = b.RSE
				case "RMSE":
					v = b.RMSE
				case "NRMSE":
					v = b.NRMSE
				}
				cell := formatFloat(v)
				if metric == "NRMSE" && best[ds] == m {
					cell += "*"
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Table3 reproduces Table 3: linear regression CR = θ1·TE + θ0 with
// coefficient standard errors, per dataset and method.
func Table3(g *GridResult) (*Table, error) {
	t := &Table{
		Title:  "Table 3: Linear regression coefficients [θ1, θ0] and standard errors; CR as a function of TE (NRMSE)",
		Header: []string{"Dataset", "Method", "θ1", "SE(θ1)", "θ0", "SE(θ0)"},
	}
	for _, name := range g.Opts.datasets() {
		ds := g.Datasets[name]
		for _, m := range g.Opts.methods() {
			var te, cr []float64
			for _, c := range ds.Cells {
				if c.Method == m {
					te = append(te, c.TE.NRMSE)
					cr = append(cr, c.CR)
				}
			}
			slope, intercept, slopeSE, interceptSE, err := stats.SimpleOLS(te, cr)
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%s: %w", name, m, err)
			}
			t.AddRow(name, string(m), slope, slopeSE, intercept, interceptSE)
		}
	}
	return t, nil
}

// Table4 reproduces Table 4: top characteristics by Spearman correlation of
// their delta to TFE.
func Table4(g *GridResult, topN int) (*Table, error) {
	rows, err := g.FeatureRows()
	if err != nil {
		return nil, err
	}
	corr := SpearmanToTFE(rows)
	if topN > 0 && len(corr) > topN {
		corr = corr[:topN]
	}
	t := &Table{
		Title:  "Table 4: Top characteristics based on the correlation to TFE",
		Header: []string{"Characteristic", "Spearman"},
	}
	for _, c := range corr {
		t.AddRow(c.Name, c.Correlation)
	}
	return t, nil
}

// ElbowPoint holds a per-model elbow of the TE→TFE curve.
type ElbowPoint struct {
	EB, TE, CR, TFE float64
}

// elbowForModel runs Kneedle on one model's (TE, TFE) curve for one method.
func elbowForModel(ds *DatasetResult, method compress.Method, model string) (ElbowPoint, bool) {
	type pt struct{ eb, te, cr, tfe float64 }
	var pts []pt
	for _, c := range ds.Cells {
		if c.Method != method {
			continue
		}
		tfe, ok := c.TFE[model]
		if !ok {
			continue
		}
		pts = append(pts, pt{c.Epsilon, c.TE.NRMSE, c.CR, tfe})
	}
	if len(pts) < 3 {
		return ElbowPoint{}, false
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].te < pts[j].te })
	x := make([]float64, len(pts))
	y := make([]float64, len(pts))
	for i, p := range pts {
		x[i], y[i] = p.te, p.tfe
	}
	k, err := stats.Kneedle(x, y, stats.Convex, stats.Increasing, 1)
	if err != nil {
		return ElbowPoint{}, false
	}
	p := pts[k]
	return ElbowPoint{EB: p.eb, TE: p.te, CR: p.cr, TFE: p.tfe}, true
}

// Table5 reproduces Table 5: per method and dataset, the median elbow
// (error bound, TE, CR, TFE) across forecasting models, plus the average
// across datasets.
func Table5(g *GridResult) (*Table, error) {
	t := &Table{
		Title:  "Table 5: Elbows' median error bound (EB), TE, CR, and TFE (Kneedle)",
		Header: append([]string{"Method", "Metric"}, append(g.Opts.datasets(), "AVG")...),
	}
	for _, m := range g.Opts.methods() {
		cols := map[string][4]float64{}
		for _, name := range g.Opts.datasets() {
			ds := g.Datasets[name]
			var ebs, tes, crs, tfes []float64
			for _, model := range g.Opts.models() {
				if e, ok := elbowForModel(ds, m, model); ok {
					ebs = append(ebs, e.EB)
					tes = append(tes, e.TE)
					crs = append(crs, e.CR)
					tfes = append(tfes, e.TFE)
				}
			}
			if len(ebs) == 0 {
				return nil, fmt.Errorf("table5: no elbows for %s on %s", m, name)
			}
			cols[name] = [4]float64{stats.Median(ebs), stats.Median(tes), stats.Median(crs), stats.Median(tfes)}
		}
		labels := []string{"EB", "TE", "CR", "TFE"}
		for mi, label := range labels {
			row := []any{string(m), label}
			var sum float64
			for _, name := range g.Opts.datasets() {
				v := cols[name][mi]
				sum += v
				row = append(row, v)
			}
			row = append(row, sum/float64(len(g.Opts.datasets())))
			t.AddRow(row...)
		}
	}
	return t, nil
}

// sensitivityFeatures are the five characteristics of paper Table 6.
var sensitivityFeatures = []struct{ short, name string }{
	{"MKLS", "max_kl_shift"},
	{"MLS", "max_level_shift"},
	{"SACF1", "seas_acf1"},
	{"MVS", "max_var_shift"},
	{"URPP", "unitroot_pp"},
}

// Table6 reproduces Table 6: mean (std) of the relative difference (%) of
// the five most important characteristics over cells with TFE ≤ 0.1.
func Table6(g *GridResult) (*Table, error) {
	rows, err := g.FeatureRows()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table 6: Mean (std) of the relative difference (%) for the five most important characteristics when TFE <= 0.1",
		Header: []string{"Dataset", "Method", "MKLS", "MLS", "SACF1", "MVS", "URPP"},
	}
	appendRows := func(label string, filter func(FeatureRow) bool) {
		for _, m := range g.Opts.methods() {
			acc := map[string][]float64{}
			for _, r := range rows {
				if r.Method != m || r.TFE > 0.1 || !filter(r) {
					continue
				}
				for _, f := range sensitivityFeatures {
					acc[f.short] = append(acc[f.short], r.RelDiff[f.name])
				}
			}
			row := []any{label, string(m)}
			for _, f := range sensitivityFeatures {
				vals := acc[f.short]
				if len(vals) == 0 {
					row = append(row, "-")
					continue
				}
				mean, std := stats.MeanStd(vals)
				row = append(row, fmt.Sprintf("%.1f (%.1f)", mean, std))
			}
			t.AddRow(row...)
		}
	}
	for _, name := range g.Opts.datasets() {
		name := name
		appendRows(name, func(r FeatureRow) bool { return r.Dataset == name })
	}
	appendRows("AVG", func(FeatureRow) bool { return true })
	return t, nil
}

// bestByTFE returns the model with the smallest mean TFE over cells with
// error bounds at or below maxEB.
func bestByTFE(g *GridResult, ds *DatasetResult, maxEB float64) string {
	best, bestV := "", math.Inf(1)
	for _, m := range g.Opts.models() {
		var sum float64
		var n int
		for _, c := range ds.Cells {
			if c.Epsilon > maxEB {
				continue
			}
			if v, ok := c.TFE[m]; ok {
				sum += v
				n++
			}
		}
		if n == 0 {
			continue
		}
		if v := sum / float64(n); v < bestV {
			best, bestV = m, v
		}
	}
	return best
}

// Table7 reproduces Table 7: the best model per dataset by baseline NRMSE
// and by resilience (mean TFE over bounds up to the dataset's median elbow).
func Table7(g *GridResult) (*Table, error) {
	t := &Table{
		Title:  "Table 7: Best models based on NRMSE and TFE",
		Header: append([]string{"Criterion"}, g.Opts.datasets()...),
	}
	nrmseRow := []any{"NRMSE"}
	tfeRow := []any{"TFE"}
	for _, name := range g.Opts.datasets() {
		ds := g.Datasets[name]
		best, bestV := "", math.Inf(1)
		for _, m := range g.Opts.models() {
			if v := ds.Baselines[m].NRMSE; v < bestV {
				best, bestV = m, v
			}
		}
		nrmseRow = append(nrmseRow, best)
		tfeRow = append(tfeRow, bestByTFE(g, ds, datasetElbowEB(g, ds)))
	}
	t.AddRow(nrmseRow...)
	t.AddRow(tfeRow...)
	return t, nil
}

// Figure1 reproduces Figure 1: a sample segment of ETTm1 and ETTm2 and the
// per-method decompressed output at error bounds 0.05 and 0.1, as aligned
// series ready for plotting.
func Figure1(opts Options, segmentLen int) (*Table, error) {
	if segmentLen <= 0 {
		segmentLen = 96
	}
	t := &Table{
		Title:  "Figure 1: compression output at error bounds 0.05 and 0.1 vs the original (OR)",
		Header: []string{"Dataset", "Series", "eps", "Values(first 8)"},
	}
	for _, name := range []string{"ETTm1", "ETTm2"} {
		ds, err := datasets.Load(name, opts.Scale, opts.Seed)
		if err != nil {
			return nil, err
		}
		seg, err := ds.Target().Segment(0, segmentLen)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, "OR", "-", previewValues(seg.Values))
		for _, m := range opts.methods() {
			comp, err := compress.New(m)
			if err != nil {
				return nil, err
			}
			for _, eps := range []float64{0.05, 0.1} {
				c, err := comp.Compress(seg, eps)
				if err != nil {
					return nil, err
				}
				dec, err := c.Decompress()
				if err != nil {
					return nil, err
				}
				t.AddRow(name, string(m), eps, previewValues(dec.Values))
			}
		}
	}
	return t, nil
}

func previewValues(v []float64) string {
	n := len(v)
	if n > 8 {
		n = 8
	}
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", v[i])
	}
	return s
}

// Figure2 reproduces Figure 2: TE (NRMSE) and CR per error bound per
// dataset and method, with the Gorilla CR baseline.
func Figure2(g *GridResult) (*Table, error) {
	t := &Table{
		Title:  "Figure 2: TE (NRMSE) and CR per error bound (GORILLA CR shown per dataset)",
		Header: []string{"Dataset", "Method", "EB", "TE(NRMSE)", "CR", "GorillaCR"},
	}
	for _, name := range g.Opts.datasets() {
		ds := g.Datasets[name]
		for _, c := range ds.Cells {
			t.AddRow(name, string(c.Method), c.Epsilon, c.TE.NRMSE, c.CR, ds.GorillaCR)
		}
	}
	return t, nil
}

// Figure3 reproduces Figure 3: the number of segments per method and bound.
func Figure3(g *GridResult) (*Table, error) {
	t := &Table{
		Title:  "Figure 3: Number of segments per error bound",
		Header: []string{"Dataset", "Method", "EB", "Segments"},
	}
	for _, name := range g.Opts.datasets() {
		ds := g.Datasets[name]
		for _, c := range ds.Cells {
			t.AddRow(name, string(c.Method), c.Epsilon, c.Segments)
		}
	}
	return t, nil
}

// excludedFromFigure4 mirrors the paper's exclusion of GRU on Solar and
// ElecDem, where its poor baseline skews the TFE aggregation.
func excludedFromFigure4(dataset, model string) bool {
	return model == "GRU" && (dataset == "Solar" || dataset == "ElecDem")
}

// Figure4 reproduces Figure 4: mean TFE vs TE with 95% confidence
// intervals across forecasting models.
func Figure4(g *GridResult) (*Table, error) {
	t := &Table{
		Title:  "Figure 4: TFE vs TE (mean and 95% CI across models; GRU excluded on Solar and ElecDem)",
		Header: []string{"Dataset", "Method", "EB", "TE(NRMSE)", "TFE(mean)", "CI95"},
	}
	for _, name := range g.Opts.datasets() {
		ds := g.Datasets[name]
		for _, c := range ds.Cells {
			var vals []float64
			for _, m := range g.Opts.models() {
				if excludedFromFigure4(name, m) {
					continue
				}
				if v, ok := c.TFE[m]; ok {
					vals = append(vals, v)
				}
			}
			if len(vals) == 0 {
				continue
			}
			mean, std := stats.MeanStd(vals)
			ci := 1.96 * std / math.Sqrt(float64(len(vals)))
			t.AddRow(name, string(c.Method), c.Epsilon, c.TE.NRMSE, mean, ci)
		}
	}
	return t, nil
}

// Figure5 reproduces Figure 5: the SHAP importance ranking of the
// characteristics from the GBoost surrogate.
func Figure5(g *GridResult, topN int) (*Table, error) {
	rows, err := g.FeatureRows()
	if err != nil {
		return nil, err
	}
	res, err := SHAPAnalysis(rows)
	if err != nil {
		return nil, err
	}
	imp := res.Importance
	if topN > 0 && len(imp) > topN {
		imp = imp[:topN]
	}
	t := &Table{
		Title:  fmt.Sprintf("Figure 5: Top characteristics based on SHAP values (surrogate R^2 = %.2f)", res.R2),
		Header: []string{"Characteristic", "mean|SHAP|"},
	}
	for _, c := range imp {
		t.AddRow(c.Name, c.Correlation)
	}
	return t, nil
}

// datasetElbowEB returns the median elbow error bound across methods and
// models for one dataset — the per-dataset bound cap the paper uses when
// aggregating model TFE in Figure 6.
func datasetElbowEB(g *GridResult, ds *DatasetResult) float64 {
	var ebs []float64
	for _, m := range g.Opts.methods() {
		for _, model := range g.Opts.models() {
			if e, ok := elbowForModel(ds, m, model); ok {
				ebs = append(ebs, e.EB)
			}
		}
	}
	if len(ebs) == 0 {
		return 0.2
	}
	return stats.Median(ebs)
}

// Figure6 reproduces Figure 6: the average TFE per forecasting model per
// dataset over the error bounds up to each dataset's median elbow (the
// paper selects the maximum bound per dataset from Table 5's elbows).
func Figure6(g *GridResult) (*Table, error) {
	caps := map[string]float64{}
	header := []string{"Model"}
	for _, name := range g.Opts.datasets() {
		caps[name] = datasetElbowEB(g, g.Datasets[name])
		header = append(header, fmt.Sprintf("%s(<=%.2g)", name, caps[name]))
	}
	t := &Table{
		Title:  "Figure 6: Average TFE per forecasting model (bounds up to each dataset's median elbow EB)",
		Header: header,
	}
	for _, m := range g.Opts.models() {
		row := []any{m}
		for _, name := range g.Opts.datasets() {
			ds := g.Datasets[name]
			var sum float64
			var n int
			for _, c := range ds.Cells {
				if c.Epsilon > caps[name] {
					continue
				}
				if v, ok := c.TFE[m]; ok {
					sum += v
					n++
				}
			}
			if n == 0 {
				row = append(row, "-")
			} else {
				row = append(row, sum/float64(n))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure7 reproduces Figure 7: TFE of Arima and DLinear retrained on
// decompressed ETTm1/ETTm2 data, per error bound.
func Figure7(opts Options) (*Table, error) {
	res, err := RetrainOnDecompressed(opts, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 7: TFE of Arima and DLinear trained on decompressed data",
		Header: []string{"Dataset", "Model", "Method", "EB", "NRMSE", "TFE"},
	}
	for _, r := range res {
		t.AddRow(r.Dataset, r.Model, string(r.Method), r.Epsilon, r.NRMSE, r.TFE)
	}
	return t, nil
}
