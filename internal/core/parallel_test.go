package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"lossyts/internal/compress"
)

// swapGridCache replaces the memoisation cache with an empty one for the
// duration of the test, so tests that must force fresh computations (via
// ResetGridCache) do not evict the QuickOptions grid shared by the rest of
// the package.
func swapGridCache(t *testing.T) {
	t.Helper()
	gridMu.Lock()
	saved := gridCache
	gridCache = map[string]*GridResult{}
	gridMu.Unlock()
	t.Cleanup(func() {
		gridMu.Lock()
		gridCache = saved
		gridMu.Unlock()
	})
}

// equivalenceOptions is a small grid that still exercises every moving part
// of the inner pool: a shallow and a deep model, multiple seeds per model
// (so seed plumbing must survive reordering), and several cells.
func equivalenceOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.015
	o.Datasets = []string{"ETTm1"}
	o.Models = []string{"Arima", "DLinear"}
	o.ErrorBounds = []float64{0.05, 0.2}
	o.ShallowSeeds = 2
	o.DeepSeeds = 2
	o.Forecast.Epochs = 4
	o.Forecast.MaxTrainWindows = 64
	return o
}

// TestParallelSequentialEquivalence proves the worker pool is a pure
// scheduling change: every metric of a Parallelism: 8 run equals the
// Parallelism: 1 run bit for bit (==, no tolerance).
func TestParallelSequentialEquivalence(t *testing.T) {
	swapGridCache(t)

	seq := equivalenceOptions()
	seq.Parallelism = 1
	gSeq, err := RunGrid(seq)
	if err != nil {
		t.Fatal(err)
	}

	// Parallelism is not part of the memoisation key (results are
	// identical by design), so force a fresh computation.
	ResetGridCache()
	par := equivalenceOptions()
	par.Parallelism = 8
	gPar, err := RunGrid(par)
	if err != nil {
		t.Fatal(err)
	}
	if gSeq == gPar {
		t.Fatal("second RunGrid returned the memoised grid; the comparison is vacuous")
	}

	for _, name := range seq.datasets() {
		dsSeq, dsPar := gSeq.Datasets[name], gPar.Datasets[name]
		if dsSeq == nil || dsPar == nil {
			t.Fatalf("%s: missing dataset result", name)
		}
		for _, model := range seq.models() {
			if dsSeq.Baselines[model] != dsPar.Baselines[model] {
				t.Errorf("%s/%s: baselines differ: %+v vs %+v",
					name, model, dsSeq.Baselines[model], dsPar.Baselines[model])
			}
		}
		if len(dsSeq.Cells) != len(dsPar.Cells) {
			t.Fatalf("%s: cell counts differ: %d vs %d", name, len(dsSeq.Cells), len(dsPar.Cells))
		}
		for i, cs := range dsSeq.Cells {
			cp := dsPar.Cells[i]
			if cs.Method != cp.Method || cs.Epsilon != cp.Epsilon {
				t.Fatalf("%s: cell %d ordering differs: %s/%v vs %s/%v",
					name, i, cs.Method, cs.Epsilon, cp.Method, cp.Epsilon)
			}
			if cs.TE != cp.TE {
				t.Errorf("%s %s eps=%v: TE differs: %+v vs %+v", name, cs.Method, cs.Epsilon, cs.TE, cp.TE)
			}
			if cs.CR != cp.CR {
				t.Errorf("%s %s eps=%v: CR differs: %v vs %v", name, cs.Method, cs.Epsilon, cs.CR, cp.CR)
			}
			for _, model := range seq.models() {
				if cs.ModelMetrics[model] != cp.ModelMetrics[model] {
					t.Errorf("%s %s eps=%v %s: metrics differ: %+v vs %+v",
						name, cs.Method, cs.Epsilon, model, cs.ModelMetrics[model], cp.ModelMetrics[model])
				}
				if cs.TFE[model] != cp.TFE[model] {
					t.Errorf("%s %s eps=%v %s: TFE differs: %v vs %v",
						name, cs.Method, cs.Epsilon, model, cs.TFE[model], cp.TFE[model])
				}
			}
		}
	}
}

// TestRunGridGoldenDeterminism runs the same options twice with fresh
// caches and asserts the two persisted grids are byte-identical: the whole
// pipeline (synthetic data, compression, training, parallel merge, JSON
// encoding) is deterministic under one seed.
func TestRunGridGoldenDeterminism(t *testing.T) {
	swapGridCache(t)

	opts := equivalenceOptions()
	opts.Models = []string{"Arima"}
	opts.ShallowSeeds = 2

	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.json.gz"), filepath.Join(dir, "b.json.gz")}
	var blobs [2][]byte
	for i, path := range paths {
		ResetGridCache()
		g, err := RunGrid(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := SaveGrid(g, path); err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		blobs[i] = blob
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("two fresh RunGrid runs serialised differently (%d vs %d bytes)", len(blobs[0]), len(blobs[1]))
	}
	// The persisted grid must round-trip into the cache with a working
	// keyed cell lookup.
	ResetGridCache()
	g, err := LoadGrid(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	ds := g.Datasets["ETTm1"]
	if ds == nil || ds.Cell(compress.MethodPMC, 0.05) == nil {
		t.Fatal("loaded grid lost the keyed cell lookup")
	}
}

// TestRunGridAggregatesAllErrors covers the RunGrid fix: when several
// datasets fail, every failure is reported (in dataset order), not just the
// first one observed.
func TestRunGridAggregatesAllErrors(t *testing.T) {
	swapGridCache(t)

	opts := equivalenceOptions()
	opts.Datasets = []string{"ETTm1", "Weather"}
	// An input length far beyond the shrunken test subset fails every
	// dataset before any training starts.
	opts.Forecast.InputLen = 1 << 20
	_, err := RunGrid(opts)
	if err == nil {
		t.Fatal("expected an error")
	}
	for _, name := range opts.Datasets {
		if !strings.Contains(err.Error(), "dataset "+name) {
			t.Errorf("error drops dataset %s: %v", name, err)
		}
	}
}

// TestUnitErrorSurfaces checks that a unit-level failure (here: an unknown
// model, rejected by forecast.New inside the worker) aborts the run with a
// real error rather than the skip sentinel.
func TestUnitErrorSurfaces(t *testing.T) {
	swapGridCache(t)

	opts := equivalenceOptions()
	opts.Models = []string{"Arima", "NoSuchModel"}
	_, err := RunGrid(opts)
	if err == nil {
		t.Fatal("expected an error")
	}
	if errors.Is(err, errUnitSkipped) || !strings.Contains(err.Error(), "NoSuchModel") {
		t.Fatalf("want the failing unit's error, got: %v", err)
	}
}

// TestParallelStress is the race-hardening subject: many small datasets
// with an oversubscribed pool, followed by concurrent lazy feature
// extraction on the shared GridResult. Run with -race (CI does).
func TestParallelStress(t *testing.T) {
	swapGridCache(t)

	opts := DefaultOptions()
	opts.Scale = 0.015
	opts.Models = []string{"Arima"}
	opts.ShallowSeeds = 2
	opts.ErrorBounds = []float64{0.05, 0.2}
	opts.Methods = []compress.Method{compress.MethodPMC}
	opts.Parallelism = 16
	opts.Forecast.MaxTrainWindows = 64
	g, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Datasets) != 6 {
		t.Fatalf("datasets = %d", len(g.Datasets))
	}
	if g.Timings.Units != int64(6*2) || g.Timings.CellEvals != int64(6*2*2) {
		t.Errorf("timing counters: units=%d cellEvals=%d", g.Timings.Units, g.Timings.CellEvals)
	}
	if g.Timings.Wall <= 0 || g.Timings.Forecast <= 0 {
		t.Errorf("timings not recorded: %+v", g.Timings)
	}

	// Hammer the lazy feature cache from many goroutines; the race
	// detector verifies the lazy map initialisation and double-checked
	// caching are sound.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := g.FeatureRows(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestCellLookupKeyed verifies the map-backed lookup agrees with a linear
// scan on a freshly computed grid and that the fallback path still works on
// hand-assembled results without an index.
func TestCellLookupKeyed(t *testing.T) {
	g := quickGrid(t)
	for _, ds := range g.Datasets {
		if ds.index == nil {
			t.Fatalf("%s: no cell index built", ds.Name)
		}
		for _, c := range ds.Cells {
			if got := ds.Cell(c.Method, c.Epsilon); got != c {
				t.Fatalf("%s: keyed lookup returned wrong cell for %s eps=%v", ds.Name, c.Method, c.Epsilon)
			}
		}
		if ds.Cell(compress.MethodPMC, -1) != nil {
			t.Fatalf("%s: lookup invented a cell", ds.Name)
		}
	}
	bare := &DatasetResult{Cells: []*Cell{{Method: compress.MethodSZ, Epsilon: 0.3}}}
	if bare.Cell(compress.MethodSZ, 0.3) == nil {
		t.Fatal("linear fallback broken for unindexed results")
	}
}
