package core

import (
	"math"
	"testing"
)

// TestStreamGridMatchesBatch proves Options.Stream is a pure data-plane
// change: a grid computed through the chunked streaming pipeline — streamed
// dataset generation, one shared chunk pass through per-cell streaming
// encoders, chunked reconstruction — equals the batch grid bit for bit,
// down to the decompressed values. An odd chunk size is used on purpose so
// chunk boundaries land mid-segment everywhere.
func TestStreamGridMatchesBatch(t *testing.T) {
	swapGridCache(t)

	batch := equivalenceOptions()
	gBatch, err := RunGrid(batch)
	if err != nil {
		t.Fatal(err)
	}

	// Stream and ChunkSize are not part of the memoisation key (results are
	// identical by design), so force a fresh computation.
	ResetGridCache()
	stream := equivalenceOptions()
	stream.Stream = true
	stream.ChunkSize = 73
	gStream, err := RunGrid(stream)
	if err != nil {
		t.Fatal(err)
	}
	if gBatch == gStream {
		t.Fatal("second RunGrid returned the memoised grid; the comparison is vacuous")
	}

	for _, name := range batch.datasets() {
		db, ds := gBatch.Datasets[name], gStream.Datasets[name]
		if db == nil || ds == nil {
			t.Fatalf("%s: missing dataset result", name)
		}
		if db.SeasonalPeriod != ds.SeasonalPeriod || db.Interval != ds.Interval {
			t.Errorf("%s: metadata differs: %d/%d vs %d/%d",
				name, db.SeasonalPeriod, db.Interval, ds.SeasonalPeriod, ds.Interval)
		}
		if len(db.RawValues) != len(ds.RawValues) {
			t.Fatalf("%s: raw lengths differ: %d vs %d", name, len(db.RawValues), len(ds.RawValues))
		}
		for i := range db.RawValues {
			if math.Float64bits(db.RawValues[i]) != math.Float64bits(ds.RawValues[i]) {
				t.Fatalf("%s: streamed ingest diverges at value %d", name, i)
			}
		}
		if db.GorillaCR != ds.GorillaCR {
			t.Errorf("%s: GorillaCR differs: %v vs %v", name, db.GorillaCR, ds.GorillaCR)
		}
		for _, model := range batch.models() {
			if db.Baselines[model] != ds.Baselines[model] {
				t.Errorf("%s/%s: baselines differ", name, model)
			}
		}
		if len(db.Cells) != len(ds.Cells) {
			t.Fatalf("%s: cell counts differ: %d vs %d", name, len(db.Cells), len(ds.Cells))
		}
		for i, cb := range db.Cells {
			cs := ds.Cells[i]
			if cb.Method != cs.Method || cb.Epsilon != cs.Epsilon {
				t.Fatalf("%s: cell %d ordering differs: %s/%v vs %s/%v",
					name, i, cb.Method, cb.Epsilon, cs.Method, cs.Epsilon)
			}
			if cb.CR != cs.CR || cb.Segments != cs.Segments {
				t.Errorf("%s %s eps=%v: CR/segments differ: %v/%d vs %v/%d",
					name, cb.Method, cb.Epsilon, cb.CR, cb.Segments, cs.CR, cs.Segments)
			}
			if cb.TE != cs.TE {
				t.Errorf("%s %s eps=%v: TE differs", name, cb.Method, cb.Epsilon)
			}
			if len(cb.Decompressed) != len(cs.Decompressed) {
				t.Fatalf("%s %s eps=%v: reconstruction lengths differ", name, cb.Method, cb.Epsilon)
			}
			for j := range cb.Decompressed {
				if math.Float64bits(cb.Decompressed[j]) != math.Float64bits(cs.Decompressed[j]) {
					t.Fatalf("%s %s eps=%v: reconstruction diverges at %d", name, cb.Method, cb.Epsilon, j)
				}
			}
			for _, model := range batch.models() {
				if cb.ModelMetrics[model] != cs.ModelMetrics[model] {
					t.Errorf("%s %s eps=%v %s: metrics differ", name, cb.Method, cb.Epsilon, model)
				}
				if cb.TFE[model] != cs.TFE[model] {
					t.Errorf("%s %s eps=%v %s: TFE differs", name, cb.Method, cb.Epsilon, model)
				}
			}
		}
	}
}

// TestStreamingPipelineShape checks the streaming pipeline advertises the
// same stage graph as the batch one, so stage timings and insertion points
// stay mode-independent.
func TestStreamingPipelineShape(t *testing.T) {
	b, s := DefaultPipeline().StageNames(), StreamingPipeline().StageNames()
	if len(b) != len(s) {
		t.Fatalf("stage counts differ: %v vs %v", b, s)
	}
	for i := range b {
		if b[i] != s[i] {
			t.Fatalf("stage %d differs: %s vs %s", i, b[i], s[i])
		}
	}
}
