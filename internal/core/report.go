package core

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned text table used by all report generators.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells (fmt.Sprint applied to each value).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
