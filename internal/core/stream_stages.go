package core

import (
	"lossyts/internal/compress"
	"lossyts/internal/datasets"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// StreamingPipeline is DefaultPipeline with the ingest → compress →
// reconstruct prefix routed through the chunked streaming data plane
// (Options.Stream). The stage names are unchanged, so timings, reports, and
// InsertBefore/InsertAfter extensions work identically in either mode, and
// the results are bit-identical to the batch pipeline — the compression
// payloads byte for byte (see TestStreamGridMatchesBatch). The remaining
// stages collapse to batch at the window stage: model training needs random
// access over the whole test subset, so that is where chunks end.
func StreamingPipeline() *Pipeline {
	return NewPipeline(
		Stage{Name: StageIngest, Run: runIngestStream},
		Stage{Name: StageCompress, Run: runCompressStream},
		Stage{Name: StageReconstruct, Run: runReconstructStream},
		Stage{Name: StageWindow, Run: runWindow},
		Stage{Name: StageTrain, Run: runTrain},
		Stage{Name: StageForecast, Run: runForecast},
		Stage{Name: StageAnalyze, Run: runAnalyze},
	)
}

// runIngestStream ingests the dataset target chunk by chunk from the
// streaming generator — no full synthetic frame is ever allocated; secondary
// columns are never materialised — and assembles just the target series the
// rest of the evaluation needs before handing off to the shared ingest tail.
func runIngestStream(rc *RunContext, st *pipelineState) error {
	src, err := datasets.StreamTarget(st.name, rc.opts.Scale, rc.opts.Seed, rc.opts.chunkSize())
	if err != nil {
		return err
	}
	st.period, st.interval = src.Period(), src.Interval()
	target := timeseries.New(src.TargetName(), src.Start(), src.Interval(), make([]float64, 0, src.Len()))
	for {
		if err := rc.Err(); err != nil {
			return err
		}
		c, ok := src.Next()
		if !ok {
			break
		}
		if err := target.Append(c); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	return finishIngest(rc, st, target)
}

// runCompressStream builds the same (method, error bound) grid as
// runCompress from a single chunked pass over the test subset: one streaming
// encoder per cell, every chunk fanned out to all of them. The cell order —
// methods outer, bounds inner — matches the batch stage exactly, and so do
// the payloads, byte for byte.
func runCompressStream(rc *RunContext, st *pipelineState) error {
	type cellEnc struct {
		m      compress.Method
		eps    float64
		enc    *compress.StreamEncoder // nil when loaded from the store
		loaded *Cell
	}
	var encs []cellEnc
	var streams []*compress.StreamEncoder
	for _, m := range rc.opts.methods() {
		// Construct the batch compressor first so an unusable method fails
		// with the same error the batch stage reports.
		comp, err := compress.New(m)
		if err != nil {
			return err
		}
		for _, eps := range rc.opts.errorBounds() {
			// A partition run materialises only its owned cells, exactly
			// like the batch compress stage.
			if !rc.owns(st.name, CellAddr{m, eps}) {
				continue
			}
			// Cells already in the result store need no encoder at all —
			// they keep their grid slot and skip the chunk fan-out.
			if lc := st.loaded.cell(m, eps); lc != nil {
				encs = append(encs, cellEnc{m: m, eps: eps, loaded: lc})
				continue
			}
			enc, err := compress.NewStreamEncoderAt(m, st.test.Start, st.test.Interval, eps)
			if err != nil {
				// A registered method without an incremental kernel buffers
				// and batch-compresses at Close — identical payload, O(n)
				// memory for that cell only.
				enc, err = compress.NewBufferedStreamEncoder(comp, st.test.Start, st.test.Interval, eps)
				if err != nil {
					return err
				}
			}
			encs = append(encs, cellEnc{m: m, eps: eps, enc: enc})
			streams = append(streams, enc)
		}
	}
	if len(streams) > 0 {
		if err := pushAll(rc, st.test.Chunks(rc.opts.chunkSize()), streams...); err != nil {
			return err
		}
	}
	for _, ce := range encs {
		if ce.loaded != nil {
			st.dr.Cells = append(st.dr.Cells, ce.loaded)
			st.comps = append(st.comps, nil)
			continue
		}
		c, err := ce.enc.Close()
		ce.enc.Release() // the kernel scratch goes back to the codec pools
		if err != nil {
			return err
		}
		st.dr.Cells = append(st.dr.Cells, &Cell{
			Method:       ce.m,
			Epsilon:      ce.eps,
			Segments:     c.Segments,
			ModelMetrics: map[string]stats.Metrics{},
			TFE:          map[string]float64{},
		})
		st.comps = append(st.comps, c)
	}
	return nil
}

// runReconstructStream mirrors runReconstruct but decodes every cell chunk
// by chunk through a StreamDecoder; the O(chunk) reconstructions are only
// concatenated because the window stage needs the full test subset.
func runReconstructStream(rc *RunContext, st *pipelineState) error {
	for ci, cell := range st.dr.Cells {
		if err := rc.Err(); err != nil {
			return err
		}
		if st.comps[ci] == nil {
			continue // loaded from the store, reconstruction already present
		}
		dec, err := compress.NewStreamDecoder(st.comps[ci], rc.opts.chunkSize())
		if err != nil {
			return err
		}
		values := make([]float64, 0, dec.Len())
		for {
			c, ok := dec.Next()
			if !ok {
				break
			}
			values = append(values, c.Values...)
		}
		if err := dec.Err(); err != nil {
			return err
		}
		dec.Release() // values were copied chunk by chunk; the buffers go back
		if cell.CR, err = compress.Ratio(st.test, st.comps[ci]); err != nil {
			return err
		}
		if cell.TE, err = stats.Evaluate(st.test.Values, values); err != nil {
			return err
		}
		cell.Decompressed = values
	}
	st.dr.buildIndex()
	st.comps = nil // payloads are dead weight once reconstructed
	return nil
}
