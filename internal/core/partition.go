package core

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"lossyts/internal/core/cellstore"
	"lossyts/internal/nn"
)

// The process layer of the work plane: a partition run is one worker's
// share of a grid, executed against its own journal. N workers each run
// their Partition(N, i) slice (plus, optionally, a steal pass over what
// peers never claimed), then MergeWorkerStores combines the journals into
// one canonical store that a normal run loads exactly as if it had
// computed everything itself. Nothing coordinates the workers beyond the
// filesystem, so "local goroutine", "local process", and "another machine
// on a shared mount" are the same protocol.

// WorkerSummary is a partition run's machine-readable provenance: what the
// worker owned, what it stole, what it actually computed versus found
// already journaled, and how long it took. cmd/gridworker prints it as
// JSON on exit.
type WorkerSummary struct {
	// Partition is the 1-based partition number (matching the CLI's "i/n"
	// syntax); Workers is n.
	Partition int `json:"partition"`
	Workers   int `json:"workers"`
	// OwnedCells is the size of the worker's assigned slice; StolenCells
	// counts cells it additionally took from peers' unclaimed work.
	OwnedCells  int `json:"owned_cells"`
	StolenCells int `json:"stolen_cells"`
	// ComputedCells and LoadedCells count cells evaluated this run versus
	// found already present in the worker's journal (a resumed worker).
	ComputedCells int `json:"computed_cells"`
	LoadedCells   int `json:"loaded_cells"`
	// Datasets lists the datasets the owned slice touches.
	Datasets []string `json:"datasets"`
	// Store is the worker's journal path.
	Store string `json:"store"`
	// WallMS is the end-to-end wall clock in milliseconds.
	WallMS int64 `json:"wall_ms"`
}

// RunGridPartition runs one partition of the grid under a background
// context. See RunPartitionContext.
func RunGridPartition(opts Options, workers, index int, peers []string) (WorkerSummary, error) {
	return RunPartitionContext(context.Background(), opts, workers, index, peers)
}

// RunPartitionContext evaluates partition index of workers (0-based) of the
// grid opts describes, checkpointing every finished cell into the worker's
// journal (Options.Store, required). After its own slice drains, it makes
// one steal pass: any cell of the remaining grid that no peer journal has
// claimed or checkpointed is computed here too, so one dead worker delays
// the grid by a steal pass instead of forever.
//
// A partition run never writes the completed-run opts record (its journal
// is a partial grid by construction) and is never memoised; its output is
// the journal plus the returned summary. Cells are bit-identical to a
// single-process run's (CellKey), which is what makes the later merge safe.
func RunPartitionContext(ctx context.Context, opts Options, workers, index int, peers []string) (WorkerSummary, error) {
	if opts.Store == "" {
		return WorkerSummary{}, fmt.Errorf("core: a partition run needs Options.Store (the worker's journal)")
	}
	if workers < 1 || index < 0 || index >= workers {
		return WorkerSummary{}, fmt.Errorf("core: partition %d of %d out of range", index+1, workers)
	}
	if err := ctx.Err(); err != nil {
		return WorkerSummary{}, err
	}
	// The kernel mode is process-global, exactly as in RunGridContext.
	nn.UseReferenceKernels(opts.ReferenceKernels)

	start := time.Now()
	pipeline := DefaultPipeline()
	if opts.Stream {
		pipeline = StreamingPipeline()
	}
	rc := newRunContext(ctx, opts, pipeline)
	if err := rc.openStore(); err != nil {
		return WorkerSummary{}, err
	}
	defer rc.store.Close()

	full := opts.NewWorkSet()
	owned := full.Partition(workers, index)
	rc.owned = owned
	if _, err := runDatasets(rc, owned.Datasets()); err != nil {
		return WorkerSummary{}, err
	}

	// Steal pass: one scan of the peers' journals, then compute whatever
	// nobody claimed. Between the scan and our claim a peer may wake up and
	// claim the same cell — that costs a duplicate bit-identical
	// computation, never a wrong merge.
	stolen := 0
	if len(peers) > 0 {
		rest, err := full.Minus(owned).Unclaimed(peers...)
		if err != nil {
			return WorkerSummary{}, err
		}
		if rest.Len() > 0 {
			rc.owned = rest
			if _, err := runDatasets(rc, rest.Datasets()); err != nil {
				return WorkerSummary{}, err
			}
			stolen = rest.Len()
		}
	}

	if err := rc.store.Sync(); err != nil {
		return WorkerSummary{}, err
	}
	return WorkerSummary{
		Partition:     index + 1,
		Workers:       workers,
		OwnedCells:    owned.Len(),
		StolenCells:   stolen,
		ComputedCells: int(rc.acc.cellsComputed.Load()),
		LoadedCells:   int(rc.acc.cellsLoaded.Load()),
		Datasets:      owned.Datasets(),
		Store:         opts.Store,
		WallMS:        time.Since(start).Milliseconds(),
	}, nil
}

// MergeWorkerStores combines per-worker journals into one canonical store
// at dst and stamps it with the worker count for provenance. Any payload
// conflict — two journals holding different bytes for the same key — is an
// error: workers computing the same option set produce bit-identical
// records, so a conflict means the journals came from incompatible runs
// (different option sets sharing a signature is impossible; a differing
// "opts" record from merging two completed stores also lands here).
func MergeWorkerStores(dst string, workers []string) (cellstore.MergeStats, error) {
	st, err := cellstore.Merge(dst, workers...)
	if err != nil {
		return st, err
	}
	if len(st.Conflicts) > 0 {
		return st, fmt.Errorf("core: worker journals disagree on %d record(s) (first: %s); were they run with the same options?",
			len(st.Conflicts), st.Conflicts[0])
	}
	s, err := cellstore.Open(dst)
	if err != nil {
		return st, err
	}
	if err := s.Put(workersRecordKey, []byte(strconv.Itoa(len(workers)))); err != nil {
		s.Close()
		return st, err
	}
	return st, s.Close()
}

// readWorkersStamp reads the MergeWorkerStores provenance stamp (0 when
// the store was never merged or the stamp is malformed).
func readWorkersStamp(s *cellstore.Store) int {
	payload, ok := s.Get(workersRecordKey)
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(string(payload))
	if err != nil || n < 1 {
		return 0
	}
	return n
}
