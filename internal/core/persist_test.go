package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadGridRoundTrip(t *testing.T) {
	g := quickGrid(t)
	path := filepath.Join(t.TempDir(), "grid.json.gz")
	if err := SaveGrid(g, path); err != nil {
		t.Fatal(err)
	}
	// Clear the memo cache so LoadGrid does real work.
	gridMu.Lock()
	delete(gridCache, g.Opts.key())
	gridMu.Unlock()

	loaded, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Datasets) != len(g.Datasets) {
		t.Fatalf("datasets = %d, want %d", len(loaded.Datasets), len(g.Datasets))
	}
	for name, ds := range g.Datasets {
		lds := loaded.Datasets[name]
		if lds == nil {
			t.Fatalf("missing dataset %s", name)
		}
		if lds.GorillaCR != ds.GorillaCR || lds.SeasonalPeriod != ds.SeasonalPeriod {
			t.Fatalf("%s: metadata mismatch", name)
		}
		if len(lds.Cells) != len(ds.Cells) {
			t.Fatalf("%s: cells %d vs %d", name, len(lds.Cells), len(ds.Cells))
		}
		for i, c := range ds.Cells {
			lc := lds.Cells[i]
			if lc.Method != c.Method || lc.Epsilon != c.Epsilon || lc.CR != c.CR {
				t.Fatalf("%s cell %d mismatch", name, i)
			}
			for m, v := range c.TFE {
				if lc.TFE[m] != v {
					t.Fatalf("%s cell %d TFE[%s] mismatch", name, i, m)
				}
			}
		}
	}
	// The loaded grid is registered in the memo cache: RunGrid returns it.
	again, err := RunGrid(loaded.Opts)
	if err != nil {
		t.Fatal(err)
	}
	if again != loaded {
		t.Fatal("loaded grid should be memoised")
	}
	// And the experiment generators work on a loaded grid.
	if _, err := Table3(loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := Table5(loaded); err != nil {
		t.Fatal(err)
	}
	if _, err := Figure5(loaded, 5); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGridErrors(t *testing.T) {
	if _, err := LoadGrid("/nonexistent/grid.json.gz"); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(bad); err == nil {
		t.Error("invalid file should error")
	}
}

func TestSaveGridErrors(t *testing.T) {
	g := quickGrid(t)
	if err := SaveGrid(g, "/nonexistent/dir/grid.json.gz"); err == nil {
		t.Error("unwritable path should error")
	}
}
