package core

import (
	"fmt"

	"lossyts/internal/compress"
	"lossyts/internal/datasets"
	"lossyts/internal/forecast"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// RetrainResult is one point of the paper's §4.4.1 experiment (Figure 7):
// a model trained and evaluated on decompressed data, compared against its
// raw-data baseline.
type RetrainResult struct {
	Dataset string
	Model   string
	Method  compress.Method
	Epsilon float64
	NRMSE   float64
	TFE     float64
}

// RetrainOnDecompressed reproduces Figure 7: Arima and DLinear are
// retrained on the decompressed training data of the given datasets and
// their TFE per error bound is reported. The paper limits this experiment
// to ETTm1 and ETTm2 with error bounds up to ~0.2.
func RetrainOnDecompressed(opts Options, names []string, models []string, bounds []float64) ([]RetrainResult, error) {
	if len(names) == 0 {
		names = []string{"ETTm1", "ETTm2"}
	}
	if len(models) == 0 {
		models = []string{"Arima", "DLinear"}
	}
	if len(bounds) == 0 {
		bounds = []float64{0.01, 0.05, 0.1, 0.15, 0.2}
	}
	var out []RetrainResult
	for _, name := range names {
		ds, err := datasets.Load(name, opts.Scale, opts.Seed)
		if err != nil {
			return nil, err
		}
		target := ds.Target()
		train, val, test, err := target.Split(0.7, 0.1, 0.2)
		if err != nil {
			return nil, err
		}
		cfg := opts.Forecast
		if cfg.InputLen == 0 {
			cfg = forecast.DefaultConfig()
		}
		cfg.SeasonalPeriod = ds.SeasonalPeriod
		cfg.Seed = opts.Seed

		var scaler timeseries.StandardScaler
		if err := scaler.Fit(train.Values); err != nil {
			return nil, err
		}
		scTest := scaler.Transform(test.Values)
		rawWindows, err := timeseries.MakeWindows(scTest, cfg.InputLen, cfg.Horizon, cfg.Horizon)
		if err != nil {
			return nil, err
		}
		for _, modelName := range models {
			// Baseline: trained and evaluated on raw data.
			baseModel, err := forecast.New(modelName, cfg)
			if err != nil {
				return nil, err
			}
			if err := baseModel.Fit(scaler.Transform(train.Values), scaler.Transform(val.Values)); err != nil {
				return nil, fmt.Errorf("baseline fit %s: %w", modelName, err)
			}
			startPhase := (train.Len() + val.Len()) % ds.SeasonalPeriod
			if pa, ok := baseModel.(forecast.PhaseAware); ok {
				pa.SetWindowPhase(startPhase, cfg.Horizon)
			}
			baseMetrics, err := evaluateWindows(baseModel, rawWindows)
			if err != nil {
				return nil, err
			}
			for _, m := range opts.methods() {
				comp, err := compress.New(m)
				if err != nil {
					return nil, err
				}
				for _, eps := range bounds {
					decompressPart := func(s *timeseries.Series) ([]float64, error) {
						c, err := comp.Compress(s, eps)
						if err != nil {
							return nil, err
						}
						d, err := c.Decompress()
						if err != nil {
							return nil, err
						}
						return d.Values, nil
					}
					decTrain, err := decompressPart(train)
					if err != nil {
						return nil, err
					}
					decVal, err := decompressPart(val)
					if err != nil {
						return nil, err
					}
					decTest, err := decompressPart(test)
					if err != nil {
						return nil, err
					}
					model, err := forecast.New(modelName, cfg)
					if err != nil {
						return nil, err
					}
					if err := model.Fit(scaler.Transform(decTrain), scaler.Transform(decVal)); err != nil {
						return nil, fmt.Errorf("retrain fit %s: %w", modelName, err)
					}
					if pa, ok := model.(forecast.PhaseAware); ok {
						pa.SetWindowPhase(startPhase, cfg.Horizon)
					}
					// Inputs from decompressed test, accuracy against raw.
					ws, err := timeseries.MakePairedWindows(scaler.Transform(decTest), scTest, cfg.InputLen, cfg.Horizon, cfg.Horizon)
					if err != nil {
						return nil, err
					}
					mMetrics, err := evaluateWindows(model, ws)
					if err != nil {
						return nil, err
					}
					tfe, err := stats.TFE(mMetrics.NRMSE, baseMetrics.NRMSE)
					if err != nil {
						return nil, err
					}
					out = append(out, RetrainResult{
						Dataset: name,
						Model:   modelName,
						Method:  m,
						Epsilon: eps,
						NRMSE:   mMetrics.NRMSE,
						TFE:     tfe,
					})
				}
			}
		}
	}
	return out, nil
}
