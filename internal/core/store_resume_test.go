package core

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"lossyts/internal/compress"
	"lossyts/internal/core/cellstore"
)

// storeTestOptions is the small grid the result-store tests share: one
// dataset, a shallow model with two seeds and a deep model with one (so
// merge order must survive delta runs), three methods, two bounds.
func storeTestOptions() Options {
	o := DefaultOptions()
	o.Scale = 0.015
	o.Datasets = []string{"ETTm1"}
	o.Models = []string{"Arima", "DLinear"}
	o.ErrorBounds = []float64{0.05, 0.2}
	o.ShallowSeeds = 2
	o.DeepSeeds = 1
	o.Forecast.Epochs = 4
	o.Forecast.MaxTrainWindows = 64
	return o
}

// saveBytes saves g to a temp file and returns the file's bytes.
func saveBytes(t *testing.T, g *GridResult) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "grid.cells")
	if err := SaveGrid(g, path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestStoreResumeBitIdentical is the resume contract end to end: a run
// killed partway through (simulated by truncating its checkpoint store at
// an arbitrary byte, exactly what SIGKILL mid-append leaves) and then
// resumed produces a grid whose persisted bytes equal a one-shot run's —
// at Parallelism 1 and at NumCPU.
func TestStoreResumeBitIdentical(t *testing.T) {
	swapGridCache(t)
	dir := t.TempDir()

	// One-shot reference run, fully checkpointed.
	full := storeTestOptions()
	full.Parallelism = 1
	full.Store = filepath.Join(dir, "full.cells")
	gFull, err := RunGrid(full)
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, gFull)
	if p := gFull.Provenance; p.Source != SourceComputed || p.CellsComputed != 6 || p.CellsLoaded != 0 {
		t.Fatalf("one-shot provenance = %+v", p)
	}
	if p := gFull.Provenance; p.StorePath != full.Store {
		t.Fatalf("StorePath = %q, want %q", p.StorePath, full.Store)
	}
	journal, err := os.ReadFile(full.Store)
	if err != nil {
		t.Fatal(err)
	}

	for name, parallelism := range map[string]int{"sequential": 1, "numcpu": runtime.NumCPU()} {
		t.Run(name, func(t *testing.T) {
			// Kill simulation: keep an arbitrary prefix of the journal.
			// cellstore.Open recovers the valid records before the cut.
			killed := filepath.Join(t.TempDir(), "killed.cells")
			if err := os.WriteFile(killed, journal[:len(journal)*55/100], 0o644); err != nil {
				t.Fatal(err)
			}
			// The interrupted store records no completed run, so LoadGrid
			// refuses it (resuming is the only way to finish it).
			if _, err := LoadGrid(killed); err == nil {
				t.Fatal("LoadGrid accepted an interrupted checkpoint store")
			}

			ResetGridCache()
			resume := storeTestOptions()
			resume.Parallelism = parallelism
			resume.Store = killed
			gRes, err := RunGrid(resume)
			if err != nil {
				t.Fatal(err)
			}
			if got := saveBytes(t, gRes); !bytes.Equal(got, want) {
				t.Fatal("resumed grid's persisted bytes differ from the one-shot run's")
			}
			if p := gRes.Provenance; p.CellsComputed+p.CellsLoaded != 6 {
				t.Fatalf("resume provenance cells = %+v", p)
			}
			// The finished store now holds a completed run: LoadGrid
			// assembles it, bit-identical to the computed grid.
			ResetGridCache()
			gLoad, err := LoadGrid(killed)
			if err != nil {
				t.Fatal(err)
			}
			if p := gLoad.Provenance; p.Source != SourceLoaded || p.CellsLoaded != 6 {
				t.Fatalf("loaded provenance = %+v", p)
			}
			if got := saveBytes(t, gLoad); !bytes.Equal(got, want) {
				t.Fatal("loaded grid's persisted bytes differ from the one-shot run's")
			}
		})
	}
}

// TestStoreExpansionComputesOnlyDelta grows a stored grid along each axis
// and asserts — via the work counters — that only the missing cells and
// models are computed, and — via persisted bytes — that the result still
// equals a from-scratch run of the grown grid.
func TestStoreExpansionComputesOnlyDelta(t *testing.T) {
	swapGridCache(t)

	// Reference: the grown grid computed from scratch, no store.
	grown := storeTestOptions()
	gWant, err := RunGrid(grown)
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, gWant)
	allUnits := gWant.Timings.Units // 2 Arima seeds + 1 DLinear seed

	t.Run("bounds", func(t *testing.T) {
		store := filepath.Join(t.TempDir(), "bounds.cells")
		base := storeTestOptions()
		base.ErrorBounds = []float64{0.05}
		base.Store = store
		ResetGridCache()
		if _, err := RunGrid(base); err != nil {
			t.Fatal(err)
		}
		ResetGridCache()
		opts := storeTestOptions()
		opts.Store = store
		g, err := RunGrid(opts)
		if err != nil {
			t.Fatal(err)
		}
		// The 3 eps=0.05 cells are reused; the 3 eps=0.2 cells are fresh,
		// so every model retrains but evaluates only the 3 new cells.
		if p := g.Provenance; p.Source != SourceResumed || p.CellsLoaded != 3 || p.CellsComputed != 3 {
			t.Fatalf("provenance = %+v", p)
		}
		if g.Timings.CellEvals != allUnits*3 {
			t.Fatalf("CellEvals = %d, want %d (3 new cells x %d units)",
				g.Timings.CellEvals, allUnits*3, allUnits)
		}
		if got := saveBytes(t, g); !bytes.Equal(got, want) {
			t.Fatal("bounds-grown grid differs from a from-scratch run")
		}
	})

	t.Run("models", func(t *testing.T) {
		store := filepath.Join(t.TempDir(), "models.cells")
		base := storeTestOptions()
		base.Models = []string{"Arima"}
		base.Store = store
		ResetGridCache()
		if _, err := RunGrid(base); err != nil {
			t.Fatal(err)
		}
		ResetGridCache()
		opts := storeTestOptions()
		opts.Store = store
		g, err := RunGrid(opts)
		if err != nil {
			t.Fatal(err)
		}
		// Arima's metrics live inside the stored records: only DLinear's
		// single (model, seed) unit runs, over all six cells.
		if g.Timings.Units != 1 {
			t.Fatalf("Units = %d, want 1 (only the added model trains)", g.Timings.Units)
		}
		if g.Timings.CellEvals != 6 {
			t.Fatalf("CellEvals = %d, want 6", g.Timings.CellEvals)
		}
		if got := saveBytes(t, g); !bytes.Equal(got, want) {
			t.Fatal("model-grown grid differs from a from-scratch run")
		}
	})

	t.Run("datasets", func(t *testing.T) {
		store := filepath.Join(t.TempDir(), "datasets.cells")
		base := storeTestOptions()
		base.Store = store
		ResetGridCache()
		if _, err := RunGrid(base); err != nil {
			t.Fatal(err)
		}
		ResetGridCache()
		opts := storeTestOptions()
		opts.Datasets = []string{"ETTm1", "Weather"}
		opts.Store = store
		g, err := RunGrid(opts)
		if err != nil {
			t.Fatal(err)
		}
		// ETTm1 is complete in the store: its whole pipeline is skipped
		// (no ingest, no training), so only Weather's units run.
		if g.Timings.Units != allUnits {
			t.Fatalf("Units = %d, want %d (only the new dataset trains)", g.Timings.Units, allUnits)
		}
		if p := g.Provenance; p.Source != SourceResumed || p.CellsLoaded != 6 || p.CellsComputed != 6 {
			t.Fatalf("provenance = %+v", p)
		}
		// The reused dataset's cells are the stored ones, bit for bit.
		ResetGridCache()
		gw, err := RunGrid(storeTestOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range gw.Datasets["ETTm1"].Cells {
			rc := g.Datasets["ETTm1"].Cells[i]
			for m, v := range c.TFE {
				if rc.TFE[m] != v {
					t.Fatalf("cell %d TFE[%s] = %v, want %v", i, m, rc.TFE[m], v)
				}
			}
		}
	})
}

// TestStoreCodecSetExpansion is the codec-growth migration contract: a
// store written under the four historical codecs keeps working when the
// registry grows — re-running with six methods loads every existing cell
// verbatim and computes only the new codecs' cells. This holds without a
// RecordSchema bump because the Methods list is deliberately absent from
// CellKey (methods select which cells exist, never what one contains).
func TestStoreCodecSetExpansion(t *testing.T) {
	swapGridCache(t)
	four := []compress.Method{compress.MethodPMC, compress.MethodSwing,
		compress.MethodSZ, compress.MethodGorilla}
	six := append(append([]compress.Method(nil), four...),
		compress.MethodCAMEO, compress.MethodLFZip)

	// A cell's store key must not depend on the run's method list at all:
	// that is what makes old stores forward-compatible with new codecs.
	oldOpts, newOpts := storeTestOptions(), storeTestOptions()
	oldOpts.Methods, newOpts.Methods = four, six
	for _, m := range four {
		if oldOpts.cellRecordKey("ETTm1", m, 0.05) != newOpts.cellRecordKey("ETTm1", m, 0.05) {
			t.Fatalf("cell key for %s changed when the method list grew", m)
		}
	}

	// Reference: the six-codec grid computed from scratch, no store.
	grown := storeTestOptions()
	grown.Methods = six
	gWant, err := RunGrid(grown)
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, gWant)
	allUnits := gWant.Timings.Units

	store := filepath.Join(t.TempDir(), "codecs.cells")
	base := storeTestOptions()
	base.Methods = four
	base.Store = store
	ResetGridCache()
	gBase, err := RunGrid(base)
	if err != nil {
		t.Fatal(err)
	}
	if p := gBase.Provenance; p.CellsComputed != 8 {
		t.Fatalf("four-codec base provenance = %+v, want 8 computed", p)
	}

	ResetGridCache()
	opts := storeTestOptions()
	opts.Methods = six
	opts.Store = store
	g, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The 8 four-codec cells are reused untouched; only the 4 cells of the
	// two new codecs are fresh, so every model retrains but evaluates only
	// those.
	if p := g.Provenance; p.Source != SourceResumed || p.CellsLoaded != 8 || p.CellsComputed != 4 {
		t.Fatalf("provenance = %+v, want resumed with 8 loaded / 4 computed", p)
	}
	if g.Timings.CellEvals != allUnits*4 {
		t.Fatalf("CellEvals = %d, want %d (4 new cells x %d units)",
			g.Timings.CellEvals, allUnits*4, allUnits)
	}
	if got := saveBytes(t, g); !bytes.Equal(got, want) {
		t.Fatal("codec-grown grid differs from a from-scratch six-codec run")
	}
}

// TestStoreStreamResume: a store written by the streaming pipeline resumes
// under the batch pipeline (and vice versa the planes share one format),
// with persisted bytes equal to a from-scratch batch run.
func TestStoreStreamResume(t *testing.T) {
	swapGridCache(t)
	gWant, err := RunGrid(storeTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, gWant)

	store := filepath.Join(t.TempDir(), "stream.cells")
	base := storeTestOptions()
	base.ErrorBounds = []float64{0.05}
	base.Stream = true
	base.Store = store
	ResetGridCache()
	if _, err := RunGrid(base); err != nil {
		t.Fatal(err)
	}
	ResetGridCache()
	opts := storeTestOptions()
	opts.Store = store
	g, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, g); !bytes.Equal(got, want) {
		t.Fatal("grid resumed from a streaming run differs from a batch run")
	}
}

// TestStoreCorruptTailGridRecovery: a grid store with a damaged tail (torn
// final record) still resumes to completion and the damaged part is simply
// recomputed.
func TestStoreCorruptTailGridRecovery(t *testing.T) {
	swapGridCache(t)
	store := filepath.Join(t.TempDir(), "corrupt.cells")
	opts := storeTestOptions()
	opts.Store = store
	g1, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, g1)

	blob, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-2] ^= 0xff // tear the final record's CRC
	if err := os.WriteFile(store, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	ResetGridCache()
	g2, err := RunGrid(opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, g2); !bytes.Equal(got, want) {
		t.Fatal("grid recovered from a corrupt store differs")
	}
}

func TestEncodeDecodeFloats(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0},
		{1.5, -2.25, 3.875, 3.875, 1e-300, -1e300},
		{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1)},
	}
	for _, values := range cases {
		enc, err := encodeFloats(values)
		if err != nil {
			t.Fatalf("encode %v: %v", values, err)
		}
		dec, err := decodeFloats(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", values, err)
		}
		if len(values) == 0 {
			if dec != nil || enc != nil {
				t.Fatalf("empty slice should round-trip to nil, got %v / %v", enc, dec)
			}
			continue
		}
		if len(dec) != len(values) {
			t.Fatalf("length %d, want %d", len(dec), len(values))
		}
		for i := range values {
			// Bit-level comparison so NaN and -0 count as preserved.
			if math.Float64bits(dec[i]) != math.Float64bits(values[i]) {
				t.Fatalf("value %d: %v != %v", i, dec[i], values[i])
			}
		}
	}
}

func TestInspectStore(t *testing.T) {
	swapGridCache(t)
	store := filepath.Join(t.TempDir(), "inspect.cells")
	opts := storeTestOptions()
	opts.Store = store
	if _, err := RunGrid(opts); err != nil {
		t.Fatal(err)
	}
	info, err := InspectStore(store)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Complete {
		t.Fatal("completed run not detected")
	}
	if len(info.Grids) != 1 {
		t.Fatalf("grids = %d, want 1", len(info.Grids))
	}
	if got := info.Grids[0].Datasets["ETTm1"]; got != 6 {
		t.Fatalf("ETTm1 cells = %d, want 6", got)
	}
	if info.String() == "" {
		t.Fatal("empty summary")
	}

	// A store holding only checkpoints (no completed option set) reports
	// incomplete, and LoadGrid explains instead of assembling garbage.
	partial := filepath.Join(t.TempDir(), "partial.cells")
	s, err := cellstore.Open(partial)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(opts.datasetRecordKey("ETTm1"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	pinfo, err := InspectStore(partial)
	if err != nil {
		t.Fatal(err)
	}
	if pinfo.Complete {
		t.Fatal("checkpoint-only store reported complete")
	}
	if _, err := LoadGrid(partial); err == nil {
		t.Fatal("LoadGrid accepted a checkpoint-only store")
	}
}

func TestProvenanceString(t *testing.T) {
	cases := []struct {
		p    Provenance
		want string
	}{
		{Provenance{Source: SourceComputed, CellsComputed: 6}, "grid computed (6 cells)"},
		{Provenance{Source: SourceComputed, CellsComputed: 6, StorePath: "a.cells"},
			"grid computed (6 cells, checkpointed to a.cells)"},
		{Provenance{Source: SourceLoaded, CellsLoaded: 6, StorePath: "a.cells"},
			"grid loaded from a.cells (6 cells; timings are not meaningful for loaded grids)"},
		{Provenance{Source: SourceResumed, CellsLoaded: 4, CellsComputed: 2, StorePath: "a.cells"},
			"grid resumed from a.cells (4 cells loaded, 2 computed; timings cover the computed delta only)"},
		{Provenance{Source: SourceMerged, Workers: 3, CellsLoaded: 12, StorePath: "m.cells"},
			"grid merged from 3 worker journals via m.cells (12 cells loaded, 0 computed this run)"},
	}
	for _, tc := range cases {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
