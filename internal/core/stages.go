package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lossyts/internal/compress"
	"lossyts/internal/core/cellstore"
	"lossyts/internal/datasets"
	"lossyts/internal/forecast"
	"lossyts/internal/stats"
	"lossyts/internal/timeseries"
)

// RunContext bundles everything one grid run shares across its stages and
// worker goroutines: the cancellation context, the resolved options, the
// timing accumulator, and the stage pipeline. It replaces the ad-hoc
// (opts, acc) parameter pairs the harness used to thread through every
// call, and is the single place future run-scoped state (metrics sinks,
// retry budgets, streaming ingestors) attaches.
type RunContext struct {
	ctx      context.Context
	opts     Options
	acc      *timingAcc
	pipeline *Pipeline
	// store is the open result store when Options.Store is set; nil
	// otherwise. Datasets load their stored cells from it before the
	// pipeline runs and the checkpoint stage appends to it as they finish.
	store *cellstore.Store
	// exec executes the run's checkpoint WorkUnits against store; non-nil
	// exactly when store is. It is the same executor type the serving plane
	// answers cache misses through.
	exec *WorkExec
	// owned, when non-nil, restricts the run to its slice of the grid: the
	// compress stages only materialise owned cells, so every downstream
	// stage (delta planning, training, checkpointing) sees a partial grid
	// without knowing partitions exist. nil means the run owns everything.
	owned *WorkSet
	// workers is the worker-journal count stamped into a merged store (0
	// for stores that were never merged); provenance reports it.
	workers int
}

func newRunContext(ctx context.Context, opts Options, p *Pipeline) *RunContext {
	return &RunContext{ctx: ctx, opts: opts, acc: &timingAcc{}, pipeline: p}
}

// Context returns the run's cancellation context.
func (rc *RunContext) Context() context.Context { return rc.ctx }

// Err reports the context's cancellation state; workers consult it at
// grid-cell and unit boundaries so a cancelled run stops promptly.
func (rc *RunContext) Err() error { return rc.ctx.Err() }

// Options returns the run's resolved option set.
func (rc *RunContext) Options() Options { return rc.opts }

// The stages of the per-dataset evaluation pipeline, in Algorithm 1 order.
const (
	StageIngest      = "ingest"      // generate, split, scale, lossless baseline
	StageCompress    = "compress"    // method × error-bound compression grid
	StageReconstruct = "reconstruct" // decompress each cell; CR and TE
	StageWindow      = "window"      // cache evaluation windows per cell
	StageTrain       = "train"       // fit every (model, seed) unit
	StageForecast    = "forecast"    // predict raw and per-cell windows
	StageAnalyze     = "analyze"     // deterministic merge, TFE attribution
)

// StageCheckpoint persists a finished dataset's records to the run's
// result store. RunGridContext inserts it after StageAnalyze only when a
// store is configured, so store-less pipelines keep the exact stage list
// the timing tests and reports assert.
const StageCheckpoint = "checkpoint"

// Stage is one named, separately timed step of the evaluation pipeline.
// Stages communicate through the pipelineState they share; the engine runs
// them in order, checks cancellation between them, and attributes wall
// clock per stage into PhaseTimings.
type Stage struct {
	Name string
	Run  func(rc *RunContext, st *pipelineState) error
}

// Pipeline is an ordered stage graph. DefaultPipeline is Algorithm 1;
// future stages (streaming ingest, retry, metrics export) slot in with
// InsertBefore/InsertAfter without re-plumbing the harness.
type Pipeline struct {
	stages []Stage
}

// NewPipeline builds a pipeline from the given stages, in order.
func NewPipeline(stages ...Stage) *Pipeline {
	return &Pipeline{stages: append([]Stage(nil), stages...)}
}

// DefaultPipeline is the paper's Algorithm 1 as an explicit stage graph.
func DefaultPipeline() *Pipeline {
	return NewPipeline(
		Stage{Name: StageIngest, Run: runIngest},
		Stage{Name: StageCompress, Run: runCompress},
		Stage{Name: StageReconstruct, Run: runReconstruct},
		Stage{Name: StageWindow, Run: runWindow},
		Stage{Name: StageTrain, Run: runTrain},
		Stage{Name: StageForecast, Run: runForecast},
		Stage{Name: StageAnalyze, Run: runAnalyze},
	)
}

// StageNames lists the pipeline's stages in execution order.
func (p *Pipeline) StageNames() []string {
	out := make([]string, len(p.stages))
	for i, s := range p.stages {
		out[i] = s.Name
	}
	return out
}

func (p *Pipeline) index(name string) int {
	for i, s := range p.stages {
		if s.Name == name {
			return i
		}
	}
	return -1
}

func (p *Pipeline) insert(at int, s Stage) error {
	if s.Name == "" || s.Run == nil {
		return fmt.Errorf("core: stage needs a name and a Run function")
	}
	if p.index(s.Name) >= 0 {
		return fmt.Errorf("core: pipeline already has a stage %q", s.Name)
	}
	p.stages = append(p.stages, Stage{})
	copy(p.stages[at+1:], p.stages[at:])
	p.stages[at] = s
	return nil
}

// InsertBefore adds s immediately before the named stage.
func (p *Pipeline) InsertBefore(name string, s Stage) error {
	i := p.index(name)
	if i < 0 {
		return fmt.Errorf("core: pipeline has no stage %q", name)
	}
	return p.insert(i, s)
}

// InsertAfter adds s immediately after the named stage.
func (p *Pipeline) InsertAfter(name string, s Stage) error {
	i := p.index(name)
	if i < 0 {
		return fmt.Errorf("core: pipeline has no stage %q", name)
	}
	return p.insert(i+1, s)
}

// run executes the stages in order for one dataset, checking cancellation
// at every stage boundary and attributing each stage's wall clock. Stage
// errors carry the stage name; cancellation surfaces as the bare context
// error so callers can return it promptly.
func (p *Pipeline) run(rc *RunContext, st *pipelineState) error {
	for _, stage := range p.stages {
		if err := rc.Err(); err != nil {
			return err
		}
		t := time.Now()
		err := stage.Run(rc, st)
		d := time.Since(t)
		rc.acc.addStage(stage.Name, d)
		if b := rc.acc.legacyBucket(stage.Name); b != nil {
			b.Add(int64(d))
		}
		if err != nil {
			if cerr := rc.Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("stage %s: %w", stage.Name, err)
		}
	}
	return nil
}

// pipelineState is the mutable state the stages of one dataset evaluation
// share. Earlier stages fill fields later stages consume; nothing here is
// touched by more than one dataset, so only the worker pools inside the
// train/forecast stages need any synchronisation (slot-indexed writes).
type pipelineState struct {
	name string

	// Ingest outputs. period and interval come from the dataset metadata,
	// whichever ingest path (batch Load or chunked stream) produced it.
	period           int
	interval         int64
	test             *timeseries.Series
	cfg              forecast.Config
	scaler           timeseries.StandardScaler
	scTrain, scVal   []float64
	scTest           []float64
	trainLen, valLen int
	dr               *DatasetResult

	// Compress → Reconstruct handoff, parallel to dr.Cells. A nil entry
	// marks a cell loaded from the result store: its reconstruction is
	// already in the Cell, so the reconstruct stage skips it.
	comps []*compress.Compressed

	// loaded is what the result store already holds for this dataset (nil
	// without a store, or when the dataset was never checkpointed).
	loaded *storedDataset
	// evalCells indexes the dr.Cells entries this run must (re)evaluate;
	// plan.cells and unitResult.cells are parallel to it, not to dr.Cells.
	// Without a store it lists every cell.
	evalCells []int
	// wantModels is the ordered subset of the requested models that must
	// actually be trained — those missing from any evalCell or from the
	// stored baselines. Without a store it is the full requested list.
	wantModels []string

	// Window outputs.
	plan *datasetPlan

	// Train/Forecast state: the (model, seed) grid.
	models  []string
	units   []unit
	trained [][]forecast.Model
	results [][]unitResult
}

// deltaPlan decides which cells and models this run actually computes,
// given what the store already holds. Without a store nothing is loaded,
// so the plan is the full grid and the pipeline behaves exactly as it did
// before the store existed. Model order follows the requested list, so a
// delta run merges seeds in the same order as a full run — the property
// the bit-identity guarantee rests on.
func (st *pipelineState) deltaPlan(requested []string) {
	st.evalCells = nil
	st.wantModels = nil
	needModel := make(map[string]bool, len(requested))
	for _, model := range requested {
		if _, ok := st.dr.Baselines[model]; !ok {
			needModel[model] = true
		}
	}
	for ci, cell := range st.dr.Cells {
		missing := false
		for _, model := range requested {
			if _, ok := cell.ModelMetrics[model]; !ok {
				needModel[model] = true
				missing = true
			}
		}
		if missing {
			st.evalCells = append(st.evalCells, ci)
		}
	}
	for _, model := range requested {
		if needModel[model] {
			st.wantModels = append(st.wantModels, model)
		}
	}
}

// runIngest generates the dataset, splits and scales it, and computes the
// lossless Gorilla baseline (§3.3).
func runIngest(rc *RunContext, st *pipelineState) error {
	ds, err := datasets.Load(st.name, rc.opts.Scale, rc.opts.Seed)
	if err != nil {
		return err
	}
	st.period, st.interval = ds.SeasonalPeriod, ds.Interval
	return finishIngest(rc, st, ds.Target())
}

// finishIngest is the tail of the ingest stage shared by the batch and
// streaming paths: split, scale, result scaffolding, and the lossless
// Gorilla baseline. st.period and st.interval must be set by the caller.
func finishIngest(rc *RunContext, st *pipelineState, target *timeseries.Series) error {
	train, val, test, err := target.Split(0.7, 0.1, 0.2)
	if err != nil {
		return err
	}
	cfg := rc.opts.Forecast
	if cfg.InputLen == 0 {
		cfg = forecast.DefaultConfig()
	}
	cfg.SeasonalPeriod = st.period
	if cfg.InputLen >= test.Len()-cfg.Horizon {
		return fmt.Errorf("test subset too short (%d) for input %d + horizon %d; increase Scale",
			test.Len(), cfg.InputLen, cfg.Horizon)
	}
	if err := st.scaler.Fit(train.Values); err != nil {
		return err
	}
	st.test = test
	st.cfg = cfg
	st.scTrain = st.scaler.Transform(train.Values)
	st.scVal = st.scaler.Transform(val.Values)
	st.scTest = st.scaler.Transform(test.Values)
	st.trainLen, st.valLen = train.Len(), val.Len()
	st.dr = &DatasetResult{
		Name:           st.name,
		SeasonalPeriod: st.period,
		Interval:       st.interval,
		RawValues:      target.Values,
		RawTest:        test.Values,
		Baselines:      map[string]stats.Metrics{},
	}
	// Stored raw-data baselines carry over for models this run will not
	// retrain; any model it does retrain overwrites its entry with a
	// bit-identical value.
	st.loaded.fillBaselines(st.dr.Baselines)
	gor, err := gorillaBaseline(rc, test)
	if err != nil {
		return err
	}
	st.dr.GorillaCR, err = compress.Ratio(test, gor)
	return err
}

// gorillaBaseline compresses the test subset losslessly. The streaming mode
// feeds a chunk source into the streaming encoder — same payload, byte for
// byte — so the whole ingest prefix exercises the chunked data plane.
func gorillaBaseline(rc *RunContext, test *timeseries.Series) (*compress.Compressed, error) {
	if !rc.opts.Stream {
		return (compress.Gorilla{}).Compress(test, 0)
	}
	enc, err := compress.NewStreamEncoderAt(compress.MethodGorilla, test.Start, test.Interval, 0)
	if err != nil {
		return nil, err
	}
	if err := pushAll(rc, test.Chunks(rc.opts.chunkSize()), enc); err != nil {
		return nil, err
	}
	return enc.Close()
}

// pushAll drains a chunk source into one or more streaming encoders,
// checking cancellation at chunk boundaries.
func pushAll(rc *RunContext, src timeseries.Source, encs ...*compress.StreamEncoder) error {
	for {
		if err := rc.Err(); err != nil {
			return err
		}
		c, ok := src.Next()
		if !ok {
			break
		}
		for _, enc := range encs {
			if err := enc.PushChunk(c); err != nil {
				return err
			}
		}
	}
	return src.Err()
}

// runCompress builds the model-independent compression grid: one cell per
// (method, error bound), in the options' order.
func runCompress(rc *RunContext, st *pipelineState) error {
	for _, m := range rc.opts.methods() {
		comp, err := compress.New(m)
		if err != nil {
			return err
		}
		for _, eps := range rc.opts.errorBounds() {
			if err := rc.Err(); err != nil {
				return err
			}
			// A partition run materialises only its owned cells; the rest
			// of the grid belongs to peer workers and never enters dr.Cells,
			// so every later stage sees a self-consistent partial grid.
			if !rc.owns(st.name, CellAddr{m, eps}) {
				continue
			}
			// A cell already in the result store slots straight into the
			// grid: its reconstruction was persisted, so compressing again
			// would be pure waste. The nil comps entry tells the
			// reconstruct stage to leave it alone.
			if lc := st.loaded.cell(m, eps); lc != nil {
				st.dr.Cells = append(st.dr.Cells, lc)
				st.comps = append(st.comps, nil)
				continue
			}
			c, err := comp.Compress(st.test, eps)
			if err != nil {
				return err
			}
			st.dr.Cells = append(st.dr.Cells, &Cell{
				Method:       m,
				Epsilon:      eps,
				Segments:     c.Segments,
				ModelMetrics: map[string]stats.Metrics{},
				TFE:          map[string]float64{},
			})
			st.comps = append(st.comps, c)
		}
	}
	return nil
}

// runReconstruct decompresses every cell and scores the reconstruction:
// compression ratio (Eq. 3) and transformation error against the raw test
// subset.
func runReconstruct(rc *RunContext, st *pipelineState) error {
	for ci, cell := range st.dr.Cells {
		if err := rc.Err(); err != nil {
			return err
		}
		if st.comps[ci] == nil {
			continue // loaded from the store, reconstruction already present
		}
		dec, err := st.comps[ci].Decompress()
		if err != nil {
			return err
		}
		if cell.CR, err = compress.Ratio(st.test, st.comps[ci]); err != nil {
			return err
		}
		if cell.TE, err = stats.Evaluate(st.test.Values, dec.Values); err != nil {
			return err
		}
		cell.Decompressed = dec.Values
	}
	st.dr.buildIndex()
	st.comps = nil // payloads are dead weight once reconstructed
	return nil
}

// runWindow caches the evaluation windows every (model, seed) unit shares:
// the raw baseline windows and one paired window set per cell.
func runWindow(rc *RunContext, st *pipelineState) error {
	cfg := st.cfg
	evalStride := cfg.Horizon
	if m := rc.opts.MaxEvalWindows; m > 0 {
		if full := (st.test.Len() - cfg.InputLen - cfg.Horizon) / cfg.Horizon; full > m {
			evalStride = (st.test.Len() - cfg.InputLen - cfg.Horizon) / m
		}
	}
	rawWindows, err := timeseries.MakeWindows(st.scTest, cfg.InputLen, cfg.Horizon, evalStride)
	if err != nil {
		return err
	}
	// With a store, only the delta — cells or models the store lacks —
	// is planned, trained, and evaluated; stored results ride along
	// untouched. Without one the delta is the whole grid.
	st.deltaPlan(rc.opts.models())
	// The scaled decompression and its paired windows depend only on the
	// cell, so they are computed exactly once and shared (read-only) by
	// every (model, seed) unit — and only for cells that actually need
	// evaluation.
	st.plan = &datasetPlan{
		cfg:        cfg,
		scTrain:    st.scTrain,
		scVal:      st.scVal,
		rawWindows: rawWindows,
		cells:      make([]cellPlan, len(st.evalCells)),
		evalStride: evalStride,
		phaseStart: (st.trainLen + st.valLen) % st.period,
	}
	for pi, ci := range st.evalCells {
		if err := rc.Err(); err != nil {
			return err
		}
		cell := st.dr.Cells[ci]
		scDec := st.scaler.Transform(cell.Decompressed)
		ws, err := timeseries.MakePairedWindows(scDec, st.scTest, cfg.InputLen, cfg.Horizon, evalStride)
		if err != nil {
			return err
		}
		st.plan.cells[pi] = cellPlan{method: cell.Method, epsilon: cell.Epsilon, windows: ws}
	}
	return nil
}

// poolRun executes work(i) for every i in [0, n) on a worker pool bounded
// by the run's parallelism. After the first failure — or once the run is
// cancelled — remaining items are handed to skip instead, so a broken or
// abandoned grid drains in microseconds rather than training to the end.
func poolRun(rc *RunContext, n int, work func(i int) error, skip func(i int)) {
	workers := rc.opts.parallelism()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() || rc.Err() != nil {
					skip(i)
					continue
				}
				if err := work(i); err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
}

// unitErr scans the unit results in (model, seed) order and returns the
// first real failure; cancellation wins over any unit error so a cancelled
// run reports ctx.Err() rather than a pile of skipped units.
func (st *pipelineState) unitErr(rc *RunContext) error {
	if err := rc.Err(); err != nil {
		return err
	}
	for _, u := range st.units {
		if err := st.results[u.mi][u.si].err; err != nil && !errors.Is(err, errUnitSkipped) {
			return err
		}
	}
	return nil
}

// runTrain fits one model instance per (model, seed) unit over the worker
// pool. Each unit owns its model and RNG and writes only its own slot, so
// the pool is a pure scheduling change; training honours cancellation at
// epoch boundaries via forecast.FitContext.
func runTrain(rc *RunContext, st *pipelineState) error {
	st.models = st.wantModels
	st.trained = make([][]forecast.Model, len(st.models))
	st.results = make([][]unitResult, len(st.models))
	st.units = nil
	for mi, modelName := range st.models {
		nSeeds := rc.opts.seeds(modelName)
		st.trained[mi] = make([]forecast.Model, nSeeds)
		st.results[mi] = make([]unitResult, nSeeds)
		for si := 0; si < nSeeds; si++ {
			st.units = append(st.units, unit{model: modelName, mi: mi, si: si})
		}
	}
	poolRun(rc, len(st.units),
		func(i int) error {
			u := st.units[i]
			tFit := time.Now()
			defer func() {
				rc.acc.forecast.Add(int64(time.Since(tFit)))
				rc.acc.units.Add(1)
			}()
			mcfg := st.plan.cfg
			mcfg.Seed = rc.opts.Seed + int64(u.si)*7919
			model, err := forecast.New(u.model, mcfg)
			if err != nil {
				st.results[u.mi][u.si] = unitResult{err: err}
				return err
			}
			if err := forecast.FitContext(rc.ctx, model, st.plan.scTrain, st.plan.scVal); err != nil {
				err = fmt.Errorf("fit %s: %w", u.model, err)
				st.results[u.mi][u.si] = unitResult{err: err}
				return err
			}
			st.trained[u.mi][u.si] = model
			return nil
		},
		func(i int) {
			u := st.units[i]
			st.results[u.mi][u.si] = unitResult{err: errUnitSkipped}
		})
	return st.unitErr(rc)
}

// runForecast evaluates every trained unit on the raw baseline windows and
// on each cell's cached window set, checking cancellation at cell
// boundaries.
func runForecast(rc *RunContext, st *pipelineState) error {
	poolRun(rc, len(st.units),
		func(i int) error {
			u := st.units[i]
			tEval := time.Now()
			defer func() { rc.acc.forecast.Add(int64(time.Since(tEval))) }()
			model := st.trained[u.mi][u.si]
			// The harness knows each window's absolute position, so
			// phase-aware models (Arima) receive real time indices for
			// their Fourier terms, exactly as the paper's timestamps do.
			if pa, ok := model.(forecast.PhaseAware); ok {
				pa.SetWindowPhase(st.plan.phaseStart, st.plan.evalStride)
			}
			base, err := evaluateWindows(model, st.plan.rawWindows)
			if err != nil {
				err = fmt.Errorf("baseline %s: %w", u.model, err)
				st.results[u.mi][u.si] = unitResult{err: err}
				return err
			}
			cells := make([]stats.Metrics, len(st.plan.cells))
			for ci, cp := range st.plan.cells {
				if err := rc.Err(); err != nil {
					st.results[u.mi][u.si] = unitResult{err: err}
					return err
				}
				m, err := evaluateWindows(model, cp.windows)
				if err != nil {
					err = fmt.Errorf("%s on %s eps=%v: %w", u.model, cp.method, cp.epsilon, err)
					st.results[u.mi][u.si] = unitResult{err: err}
					return err
				}
				cells[ci] = m
			}
			rc.acc.cellEvals.Add(int64(len(st.plan.cells)))
			st.results[u.mi][u.si] = unitResult{base: base, cells: cells}
			return nil
		},
		func(i int) {
			u := st.units[i]
			st.results[u.mi][u.si] = unitResult{err: errUnitSkipped}
		})
	return st.unitErr(rc)
}

// runAnalyze merges per-seed metrics in (model, seed) order — the exact
// accumulation order of the sequential implementation, so means are
// bit-identical regardless of pool scheduling — and attributes TFE (Eq. 2).
func runAnalyze(rc *RunContext, st *pipelineState) error {
	for mi, modelName := range st.models {
		base := make([]stats.Metrics, len(st.results[mi]))
		cellAcc := make([][]stats.Metrics, len(st.evalCells))
		for si, res := range st.results[mi] {
			base[si] = res.base
			for pi := range st.evalCells {
				cellAcc[pi] = append(cellAcc[pi], res.cells[pi])
			}
		}
		baseMean := meanMetrics(base)
		st.dr.Baselines[modelName] = baseMean
		for pi, ci := range st.evalCells {
			cell := st.dr.Cells[ci]
			mm := meanMetrics(cellAcc[pi])
			cell.ModelMetrics[modelName] = mm
			if tfe, err := stats.TFE(mm.NRMSE, baseMean.NRMSE); err == nil {
				cell.TFE[modelName] = tfe
			}
		}
	}
	st.trained = nil // trained models are no longer needed once merged
	rc.acc.cellsComputed.Add(int64(len(st.evalCells)))
	rc.acc.cellsLoaded.Add(int64(len(st.dr.Cells) - len(st.evalCells)))
	return nil
}

// runCheckpoint appends the finished dataset to the result store via the
// run's WorkExec: the dataset unit first — so a present cell record always
// implies an at-least-as-new dataset record on resume — then one unit per
// cell this run computed. Refresh (not Do) because the delta planner
// already decided these must be written: a present-but-stale record (a
// grown model list) must be overwritten, not skipped. Each record is a
// single durable append; a kill between two of them loses only the record
// in flight.
func runCheckpoint(rc *RunContext, st *pipelineState) error {
	if _, err := rc.exec.Refresh(rc.ctx, datasetWorkUnit(rc.opts, st.dr)); err != nil {
		return err
	}
	for _, ci := range st.evalCells {
		if err := rc.Err(); err != nil {
			return err
		}
		if _, err := rc.exec.Refresh(rc.ctx, cellWorkUnit(rc.opts, st.name, st.dr.Cells[ci])); err != nil {
			return err
		}
	}
	return nil
}
