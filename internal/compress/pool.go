package compress

import (
	"math/bits"
	"sync"
)

// This file is the codec compute layer's buffer pool: size-classed free
// lists of []byte, []float64, and []uint16 shared by all four stream
// kernels, the chunked StreamDecoder, the frame writer, and the gzip stage.
// It generalises the internal/nn arena pattern (power-of-two size classes,
// pointers stored in sync.Pool so Put never allocates an interface box) to
// the codec path: steady-state encode and decode do zero heap allocation
// because every scratch buffer — kernel bodies, bit-writer backing arrays,
// Huffman scratch, gunzipped frames, chunk buffers — is drawn from and
// returned to these pools.
//
// Aliasing contract: a slice obtained from the pool (directly via
// GetBytes/GetFloats or indirectly through the no-copy Append APIs) may be
// handed to a later caller the moment it is Put back. Never retain a view
// of pooled memory past the Put; copy first with Detach (or Compressed.Clone)
// when a longer lifetime is needed.

// Buffers are pooled in power-of-two size classes from 64 to 16M elements.
// Larger requests are allocated plainly and, on put, dropped for the GC.
const (
	poolMinShift = 6
	poolMaxShift = 24
	poolClasses  = poolMaxShift - poolMinShift + 1
)

// poolClass maps a requested element count to its size class, or -1 when
// the request is too large to pool.
func poolClass(n int) int {
	if n <= 0 {
		return 0
	}
	s := bits.Len(uint(n - 1)) // ceil(log2 n)
	if s < poolMinShift {
		s = poolMinShift
	}
	if s > poolMaxShift {
		return -1
	}
	return s - poolMinShift
}

// sbuf wraps a pooled slice. The wrapper object is what sync.Pool stores, so
// neither Get nor Put allocates once the pools are warm; wrappers are
// fungible across slices (see wrapPool).
type sbuf[T any] struct{ s []T }

// bufPool is one element type's set of size-classed pools.
type bufPool[T any] struct {
	classes [poolClasses]sync.Pool
	// wraps caches empty sbuf wrappers so the exported naked-slice API
	// (GetBytes/PutBytes) is also allocation-free in steady state.
	wraps sync.Pool
}

// get returns a wrapper whose slice has length 0 and capacity at least n
// (rounded up to the size class). The slice contents are arbitrary.
func (p *bufPool[T]) get(n int) *sbuf[T] {
	c := poolClass(n)
	if c >= 0 {
		if v := p.classes[c].Get(); v != nil {
			return v.(*sbuf[T])
		}
		n = 1 << (c + poolMinShift)
	}
	return &sbuf[T]{s: make([]T, 0, n)}
}

// put returns a wrapper (and its slice) to the pool serving the slice's
// capacity class. Undersized, oversized, or nil slices are dropped for the
// GC. The class is the largest power of two the capacity covers — rounding
// DOWN, unlike get — so a slice grown by append to an off-class capacity
// (e.g. 5376) still honours the capacity contract of the class it is filed
// under (4096), rather than shortchanging a later get from the class above.
func (p *bufPool[T]) put(b *sbuf[T]) {
	if b == nil || cap(b.s) == 0 {
		return
	}
	s := bits.Len(uint(cap(b.s))) - 1 // floor(log2 cap)
	if s < poolMinShift || s > poolMaxShift {
		return
	}
	b.s = b.s[:0]
	p.classes[s-poolMinShift].Put(b)
}

// getSlice and putSlice are the naked-slice forms: the wrapper is parked in
// the wraps cache between uses, so the round trip allocates nothing.
func (p *bufPool[T]) getSlice(n int) []T {
	w := p.get(n)
	s := w.s
	w.s = nil
	p.wraps.Put(w)
	return s
}

func (p *bufPool[T]) putSlice(s []T) {
	if cap(s) == 0 {
		return
	}
	var w *sbuf[T]
	if v := p.wraps.Get(); v != nil {
		w = v.(*sbuf[T])
	} else {
		w = new(sbuf[T])
	}
	w.s = s[:0]
	p.put(w)
}

var (
	bytePool  bufPool[byte]
	floatPool bufPool[float64]
	u16Pool   bufPool[uint16]
)

// GetBytes returns a pooled byte slice with length 0 and capacity at least
// n, for use with append. Return it with PutBytes when done; see the
// aliasing contract at the top of this file.
func GetBytes(n int) []byte { return bytePool.getSlice(n) }

// PutBytes returns a slice obtained from GetBytes (or grown from one by
// append) to the pool. The caller must not use b, nor anything aliasing its
// backing array, after the call.
func PutBytes(b []byte) { bytePool.putSlice(b) }

// GetFloats returns a pooled float64 slice with length 0 and capacity at
// least n, for use with append. Return it with PutFloats when done.
func GetFloats(n int) []float64 { return floatPool.getSlice(n) }

// PutFloats returns a slice obtained from GetFloats to the pool. The caller
// must not use f after the call.
func PutFloats(f []float64) { floatPool.putSlice(f) }

// Detach copies b into a fresh heap allocation, severing any aliasing with
// pooled or caller-owned memory. Use it when a payload produced by a
// no-copy Append API must outlive the buffer it was appended to — e.g. a
// handler that caches the payload after returning its request buffer.
func Detach(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// Clone returns a deep copy of c whose Payload is freshly allocated. The
// no-copy encoder entry points (StreamEncoder.CloseAppend) return payloads
// that alias the caller's buffer; Clone is how such a result is safely
// retained past the buffer's reuse or return to the pool.
func (c *Compressed) Clone() *Compressed {
	if c == nil {
		return nil
	}
	out := *c
	out.Payload = Detach(c.Payload)
	return &out
}
