package compress

import (
	"testing"

	"lossyts/internal/timeseries"
)

func testFrame(t *testing.T) *timeseries.Frame {
	t.Helper()
	a := synthSeries(600, 91)
	b := synthSeries(600, 92)
	a.Name, b.Name = "A", "B"
	f, err := timeseries.NewFrame("F", 1000, 60, 1, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCompressFrameRoundTrip(t *testing.T) {
	f := testFrame(t)
	for _, m := range lossyMethods() {
		res, err := CompressFrame(m, f, 0.1)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(res.Columns) != 2 || res.RawSize <= 0 || res.CompressedSize <= 0 {
			t.Fatalf("%s: result %+v", m, res)
		}
		if res.Ratio() <= 1 {
			t.Errorf("%s: frame CR %v", m, res.Ratio())
		}
		back, err := DecompressFrame(res, f)
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != f.Len() || back.Columns[0].Name != "A" || back.Target != 1 {
			t.Fatalf("%s: frame metadata lost", m)
		}
		for ci := range f.Columns {
			rel, err := f.Columns[ci].MaxRelError(back.Columns[ci])
			if err != nil {
				t.Fatal(err)
			}
			if rel > 0.1+1e-9 {
				t.Errorf("%s column %d: relative error %v", m, ci, rel)
			}
		}
	}
}

func TestCompressFrameErrors(t *testing.T) {
	if _, err := CompressFrame(MethodPMC, nil, 0.1); err == nil {
		t.Error("nil frame should error")
	}
	f := testFrame(t)
	if _, err := CompressFrame(Method("NOPE"), f, 0.1); err == nil {
		t.Error("unknown method should error")
	}
	res, err := CompressFrame(MethodPMC, f, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res.Columns = res.Columns[:1]
	if _, err := DecompressFrame(res, f); err == nil {
		t.Error("column mismatch should error")
	}
}
