package compress

import (
	"bytes"
	"errors"
	"fmt"
	"math"

	"lossyts/internal/timeseries"
)

// StreamEncoder compresses a regular time series incrementally — the edge
// deployment mode of the paper's wind-turbine scenario (§1): points are
// pushed one at a time as the sensor produces them, finished segments
// become available immediately for transmission, and Close flushes the open
// window. PMC-Mean and Swing are both online algorithms, so the streaming
// output is byte-identical to batch compression of the same values.
type StreamEncoder struct {
	method   Method
	epsilon  float64
	absolute bool

	start    int64
	interval int64
	n        int

	segments int
	body     bytes.Buffer // encoded segments, without header or gzip
	closed   bool

	// PMC state.
	count  int
	sum    float64
	meanLo float64
	meanHi float64
	// Swing state.
	intercept float64
	sLow      float64
	sHigh     float64
}

// NewStreamEncoder returns an encoder for PMC or Swing (SZ and Gorilla are
// block/batch oriented and not supported for streaming).
func NewStreamEncoder(m Method, s *timeseries.Series, epsilon float64) (*StreamEncoder, error) {
	if m != MethodPMC && m != MethodSwing {
		return nil, fmt.Errorf("compress: streaming not supported for %s", m)
	}
	return newStreamEncoder(m, s, epsilon, false)
}

// NewAbsoluteStreamEncoder is NewStreamEncoder with the classic absolute
// error bound |v − v̂| ≤ ε instead of the paper's relative bound.
func NewAbsoluteStreamEncoder(m Method, s *timeseries.Series, epsilon float64) (*StreamEncoder, error) {
	if m != MethodPMC && m != MethodSwing {
		return nil, fmt.Errorf("compress: streaming not supported for %s", m)
	}
	return newStreamEncoder(m, s, epsilon, true)
}

func newStreamEncoder(m Method, s *timeseries.Series, epsilon float64, absolute bool) (*StreamEncoder, error) {
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	return &StreamEncoder{
		method:   m,
		epsilon:  epsilon,
		absolute: absolute,
		start:    s.Start,
		interval: s.Interval,
		meanLo:   math.Inf(-1),
		meanHi:   math.Inf(1),
		sLow:     math.Inf(-1),
		sHigh:    math.Inf(1),
	}, nil
}

// Push adds the next observation. Finished segments accumulate internally;
// call Segments to see how many have been emitted so far.
func (e *StreamEncoder) Push(v float64) error {
	if e.closed {
		return errors.New("compress: push after close")
	}
	e.n++
	tol := e.epsilon * math.Abs(v)
	if e.absolute {
		tol = e.epsilon
	}
	switch e.method {
	case MethodPMC:
		newLo := math.Max(e.meanLo, v-tol)
		newHi := math.Min(e.meanHi, v+tol)
		newSum := e.sum + v
		newMean := newSum / float64(e.count+1)
		if e.count < maxSegmentLen && newLo <= newMean && newMean <= newHi {
			e.count, e.sum, e.meanLo, e.meanHi = e.count+1, newSum, newLo, newHi
			return nil
		}
		e.emitPMC()
		e.count, e.sum = 1, v
		e.meanLo, e.meanHi = v-tol, v+tol
	case MethodSwing:
		if e.count == 0 {
			e.count, e.intercept = 1, v
			e.sLow, e.sHigh = math.Inf(-1), math.Inf(1)
			return nil
		}
		k := float64(e.count)
		newLow := math.Max(e.sLow, (v-tol-e.intercept)/k)
		newHigh := math.Min(e.sHigh, (v+tol-e.intercept)/k)
		if e.count < maxSegmentLen && newLow <= newHigh {
			e.count, e.sLow, e.sHigh = e.count+1, newLow, newHigh
			return nil
		}
		e.emitSwing()
		e.count, e.intercept = 1, v
		e.sLow, e.sHigh = math.Inf(-1), math.Inf(1)
	}
	return nil
}

func (e *StreamEncoder) emitPMC() {
	mean := quantizeToInterval(e.sum/float64(e.count), e.meanLo, e.meanHi)
	var scratch [10]byte
	putUint16(scratch[:2], uint16(e.count))
	putUint64(scratch[2:], math.Float64bits(mean))
	e.body.Write(scratch[:])
	e.segments++
}

func (e *StreamEncoder) emitSwing() {
	slope := 0.0
	if e.count >= 2 {
		slope = (e.sLow + e.sHigh) / 2
	}
	var scratch [18]byte
	putUint16(scratch[:2], uint16(e.count))
	putUint64(scratch[2:10], math.Float64bits(slope))
	putUint64(scratch[10:], math.Float64bits(e.intercept))
	e.body.Write(scratch[:])
	e.segments++
}

// Segments returns the number of segments emitted so far (not counting the
// open window).
func (e *StreamEncoder) Segments() int { return e.segments }

// PendingPoints returns how many points sit in the open window.
func (e *StreamEncoder) PendingPoints() int { return e.count }

// Close flushes the open window and returns the finished Compressed value
// (gzip-compressed, identical to the batch output for the same input).
func (e *StreamEncoder) Close() (*Compressed, error) {
	if e.closed {
		return nil, errors.New("compress: already closed")
	}
	if e.n == 0 {
		return nil, errors.New("compress: empty stream")
	}
	e.closed = true
	switch e.method {
	case MethodPMC:
		e.emitPMC()
	case MethodSwing:
		e.emitSwing()
	}
	var full bytes.Buffer
	header := timeseries.New("", e.start, e.interval, make([]float64, e.n))
	if err := EncodeHeader(&full, e.method, header); err != nil {
		return nil, err
	}
	full.Write(e.body.Bytes())
	gz, err := GzipBytes(full.Bytes())
	if err != nil {
		return nil, err
	}
	return &Compressed{
		Method:   e.method,
		Epsilon:  e.epsilon,
		N:        e.n,
		Segments: e.segments,
		Payload:  gz,
	}, nil
}

func putUint16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
