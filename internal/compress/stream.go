package compress

import (
	"errors"
	"fmt"

	"lossyts/internal/timeseries"
)

// StreamKernel is the per-method incremental encoder state behind
// StreamEncoder. A kernel sees one observation at a time, accumulates
// finished segments in its own body encoding, and flushes the open window at
// Finish. The batch Compress implementations drive the same kernels over the
// whole series, so streamed and batch payloads are byte-identical by
// construction — there is exactly one encoding of each method's per-point
// logic in the package.
//
// Kernels are registered through Registration.NewStream; methods that need a
// whole-series pass (SeasonalPMC's phase profile) leave it nil and are
// reachable through NewBufferedStreamEncoder instead.
type StreamKernel interface {
	// Push feeds the next observation into the open window.
	Push(v float64)
	// Finish flushes the open window and returns the encoded payload body
	// (the bytes after the shared header) and the final segment count. It is
	// called exactly once, and only after at least one Push.
	Finish() (body []byte, segments int)
	// Segments reports the segments emitted so far, not counting the open
	// window.
	Segments() int
	// Pending reports how many points sit in the open window — pushed but
	// not yet represented by an emitted segment.
	Pending() int
}

// losslessKernel marks kernels whose method ignores the error bound. The
// assembled Compressed then records Epsilon 0, matching the batch encoder's
// metadata for lossless methods.
type losslessKernel interface{ lossless() }

// FinishAppender is the no-copy form of StreamKernel.Finish: the kernel
// appends its encoded body onto dst instead of exposing an internal buffer.
// Kernels that implement it let CloseAppend assemble the whole frame in one
// pooled buffer; like Finish, it is called exactly once. External kernels
// may implement it for the same benefit — the registry interface itself is
// unchanged.
type FinishAppender interface {
	AppendFinish(dst []byte) (out []byte, segments int)
}

// kernelReseter is implemented by kernels that can be rewound to their
// initial state while keeping their scratch buffers, enabling
// StreamEncoder.Reset to make one encoder serve many series with zero
// steady-state allocation.
type kernelReseter interface{ reset() }

// kernelReleaser is implemented by kernels holding pooled scratch buffers;
// release returns them to the package pools (see StreamEncoder.Release).
type kernelReleaser interface{ release() }

// StreamEncoder compresses a regular time series incrementally — the edge
// deployment mode of the paper's wind-turbine scenario (§1): points are
// pushed one at a time (or chunk by chunk) as the sensor produces them,
// finished segments become available immediately for transmission, and Close
// flushes the open window. Every built-in method streams: PMC, Swing, and
// Gorilla are online algorithms, and SZ carries one block plus two
// reconstructed values of state. Streaming output is byte-identical to batch
// compression of the same values.
type StreamEncoder struct {
	method   Method
	epsilon  float64
	start    int64
	interval int64
	n        int
	kernel   StreamKernel
	closed   bool
}

// NewStreamEncoder returns a streaming encoder for the method, taking the
// series geometry (start, interval) from s. Methods without an incremental
// kernel are rejected; wrap them with NewBufferedStreamEncoder if O(n)
// buffering is acceptable.
func NewStreamEncoder(m Method, s *timeseries.Series, epsilon float64) (*StreamEncoder, error) {
	return NewStreamEncoderAt(m, s.Start, s.Interval, epsilon)
}

// NewStreamEncoderAt is NewStreamEncoder for callers that have no Series in
// hand — a sensor driver or a chunk Source knows only the first timestamp
// and the sampling interval.
func NewStreamEncoderAt(m Method, start, interval int64, epsilon float64) (*StreamEncoder, error) {
	return newStreamEncoder(m, start, interval, epsilon, false)
}

// NewAbsoluteStreamEncoder is NewStreamEncoder with the classic absolute
// error bound |v − v̂| ≤ ε instead of the paper's relative bound.
func NewAbsoluteStreamEncoder(m Method, s *timeseries.Series, epsilon float64) (*StreamEncoder, error) {
	return newStreamEncoder(m, s.Start, s.Interval, epsilon, true)
}

func newStreamEncoder(m Method, start, interval int64, epsilon float64, absolute bool) (*StreamEncoder, error) {
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	reg, err := lookup(m)
	if err != nil {
		return nil, err
	}
	if reg.NewStream == nil {
		return nil, fmt.Errorf("compress: streaming not supported for %s", m)
	}
	kernel, err := reg.NewStream(epsilon, absolute)
	if err != nil {
		return nil, err
	}
	return &StreamEncoder{
		method:   m,
		epsilon:  epsilon,
		start:    start,
		interval: interval,
		kernel:   kernel,
	}, nil
}

// NewBufferedStreamEncoder adapts any Compressor — including ones that need
// whole-series passes, like SeasonalPMC's phase profile — to the
// StreamEncoder API by buffering pushed values and running the batch
// Compress at Close. Memory is O(n), not O(chunk); use it only for methods
// that have no incremental kernel.
func NewBufferedStreamEncoder(c Compressor, start, interval int64, epsilon float64) (*StreamEncoder, error) {
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	if c == nil {
		return nil, errors.New("compress: nil compressor")
	}
	return &StreamEncoder{
		method:   c.Method(),
		epsilon:  epsilon,
		start:    start,
		interval: interval,
		kernel:   &bufferedKernel{comp: c},
	}, nil
}

// bufferedKernel holds the whole series and defers to the batch compressor
// at Close (see NewBufferedStreamEncoder).
type bufferedKernel struct {
	comp   Compressor
	values []float64
}

func (k *bufferedKernel) Push(v float64)        { k.values = append(k.values, v) }
func (k *bufferedKernel) Finish() ([]byte, int) { return nil, 0 } // Close compresses directly
func (k *bufferedKernel) Segments() int         { return 0 }
func (k *bufferedKernel) Pending() int          { return len(k.values) }
func (k *bufferedKernel) reset()                { k.values = k.values[:0] }

// Push adds the next observation. Finished segments accumulate internally;
// call Segments to see how many have been emitted so far.
func (e *StreamEncoder) Push(v float64) error {
	if e.closed {
		return errors.New("compress: push after close")
	}
	e.kernel.Push(v)
	e.n++
	return nil
}

// PushChunk feeds a whole chunk. The chunk must abut the points pushed so
// far and share the encoder's interval — the same seam check as
// Series.Append, so a dropped or duplicated chunk surfaces at the encoder
// rather than as a silently shifted reconstruction.
func (e *StreamEncoder) PushChunk(c timeseries.Chunk) error {
	if e.closed {
		return errors.New("compress: push after close")
	}
	if c.Len() == 0 {
		return nil
	}
	if c.Interval != e.interval {
		return fmt.Errorf("compress: chunk interval %d does not match stream interval %d", c.Interval, e.interval)
	}
	if want := e.start + int64(e.n)*e.interval; c.Start != want {
		return fmt.Errorf("compress: chunk starts at %d, stream expects %d", c.Start, want)
	}
	for _, v := range c.Values {
		e.kernel.Push(v)
	}
	e.n += c.Len()
	return nil
}

// Segments returns the number of segments emitted so far (not counting the
// open window).
func (e *StreamEncoder) Segments() int { return e.kernel.Segments() }

// PendingPoints returns how many points sit in the open window.
func (e *StreamEncoder) PendingPoints() int { return e.kernel.Pending() }

// Close flushes the open window and returns the finished Compressed value
// (gzip-compressed, identical to the batch output for the same input).
func (e *StreamEncoder) Close() (*Compressed, error) { return e.CloseAppend(nil) }

// CloseAppend is Close in append form: the finished gzip payload is appended
// onto dst, so a caller with a request-scoped buffer (GetBytes or a retained
// slice) closes streams with zero per-op allocation beyond the Compressed
// struct itself. The returned Payload aliases dst's backing array — never
// return dst to a pool or reuse it while the Compressed is live; use
// Compressed.Clone (or Detach) to retain the payload past the buffer's
// lifetime. Buffered encoders (NewBufferedStreamEncoder) compress in batch
// and return a heap payload that does not alias dst. On error the caller
// still owns the dst slice it passed in.
func (e *StreamEncoder) CloseAppend(dst []byte) (*Compressed, error) {
	if e.closed {
		return nil, errors.New("compress: already closed")
	}
	if e.n == 0 {
		return nil, errors.New("compress: empty stream")
	}
	e.closed = true
	if bk, ok := e.kernel.(*bufferedKernel); ok {
		return bk.comp.Compress(timeseries.New("", e.start, e.interval, bk.values), e.epsilon)
	}
	frame := bytePool.get(e.n + 64)
	var err error
	frame.s, err = appendHeader(frame.s, e.method, e.start, e.interval, e.n)
	if err != nil {
		bytePool.put(frame)
		return nil, err
	}
	var segments int
	if fa, ok := e.kernel.(FinishAppender); ok {
		frame.s, segments = fa.AppendFinish(frame.s)
	} else {
		var body []byte
		body, segments = e.kernel.Finish()
		frame.s = append(frame.s, body...)
	}
	dst, err = AppendGzip(dst, frame.s)
	bytePool.put(frame)
	if err != nil {
		return nil, err
	}
	eps := e.epsilon
	if _, ok := e.kernel.(losslessKernel); ok {
		eps = 0
	}
	return &Compressed{
		Method:   e.method,
		Epsilon:  eps,
		N:        e.n,
		Segments: segments,
		Payload:  dst,
	}, nil
}

// Reset rewinds the encoder to compress a fresh series with the given
// geometry, keeping the kernel's scratch buffers — the amortisation that
// lets one encoder serve a whole request stream with zero steady-state
// allocation. Methods whose kernels cannot rewind return an error and the
// encoder is unchanged.
func (e *StreamEncoder) Reset(start, interval int64) error {
	r, ok := e.kernel.(kernelReseter)
	if !ok {
		return fmt.Errorf("compress: %s kernel does not support Reset", e.method)
	}
	r.reset()
	e.start, e.interval = start, interval
	e.n = 0
	e.closed = false
	return nil
}

// Release returns the kernel's pooled scratch buffers to the package pools.
// Call it when the encoder will not be reused (after Close, or to abandon an
// open stream); the encoder must not be used afterwards. Close does not
// release automatically so that Reset-based reuse keeps its buffers warm.
func (e *StreamEncoder) Release() {
	if r, ok := e.kernel.(kernelReleaser); ok {
		r.release()
	}
	e.closed = true
}
