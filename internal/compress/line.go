package compress

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
)

// The line-segment wire layer shared by the piecewise-linear codecs (Swing
// and CAMEO): each segment is `u16 count | f64 slope | f64 intercept`,
// reconstructed as v_i = intercept + slope·i for local index i. Swing has
// always written this form; CAMEO emits the identical grammar through the
// same emitter, so both share one decode path.

// lineEmitter accumulates line segments into a pooled body buffer. Kernels
// embed it and inherit the emit/reset/release lifecycle.
type lineEmitter struct {
	body     *sbuf[byte]
	segments int
}

// emit appends one segment record.
func (e *lineEmitter) emit(count int, slope, intercept float64) {
	if e.body == nil {
		e.body = bytePool.get(256)
	}
	var scratch [18]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(count))
	binary.LittleEndian.PutUint64(scratch[2:10], math.Float64bits(slope))
	binary.LittleEndian.PutUint64(scratch[10:], math.Float64bits(intercept))
	e.body.s = append(e.body.s, scratch[:]...)
	e.segments++
}

// bytes returns the accumulated body (aliases the pooled buffer).
func (e *lineEmitter) bytes() []byte {
	if e.body == nil {
		return nil
	}
	return e.body.s
}

// appendBody copies the accumulated body onto dst in one append.
func (e *lineEmitter) appendBody(dst []byte) []byte { return append(dst, e.bytes()...) }

// resetBody rewinds the emitter for a fresh series, keeping its buffer.
func (e *lineEmitter) resetBody() {
	e.segments = 0
	if e.body != nil {
		e.body.s = e.body.s[:0]
	}
}

// releaseBody returns the body buffer to the pool.
func (e *lineEmitter) releaseBody() {
	bytePool.put(e.body)
	e.body = nil
}

// lineDecode is the batch decoder for the line-segment wire.
func lineDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, allocHint(count))
	pos := 0
	for len(values) < count {
		if pos+18 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		n := int(binary.LittleEndian.Uint16(body[pos : pos+2]))
		slope := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+2 : pos+10]))
		intercept := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+10 : pos+18]))
		pos += 18
		if n == 0 || len(values)+n > count {
			return nil, errors.New("compress: corrupt segment length")
		}
		for i := 0; i < n; i++ {
			values = append(values, intercept+slope*float64(i))
		}
	}
	return values, nil
}

// lineValues replays line segments incrementally: the carried state is one
// segment (its remaining length, line coefficients, and local index).
type lineValues struct {
	body      []byte
	total     int
	pos       int
	remaining int
	segLeft   int
	idx       int // local index within the open segment
	slope     float64
	intercept float64
}

func newLineValues(body []byte, count int) *lineValues {
	return &lineValues{body: body, total: count, remaining: count}
}

// rewind restarts the replay from the first value (see valueRewinder).
func (p *lineValues) rewind() {
	p.pos, p.remaining, p.segLeft, p.idx = 0, p.total, 0, 0
	p.slope, p.intercept = 0, 0
}

func (p *lineValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.segLeft == 0 {
			if p.pos+18 > len(p.body) {
				return n, io.ErrUnexpectedEOF
			}
			seg := int(binary.LittleEndian.Uint16(p.body[p.pos : p.pos+2]))
			p.slope = math.Float64frombits(binary.LittleEndian.Uint64(p.body[p.pos+2 : p.pos+10]))
			p.intercept = math.Float64frombits(binary.LittleEndian.Uint64(p.body[p.pos+10 : p.pos+18]))
			p.pos += 18
			if seg == 0 || seg > p.remaining {
				return n, errors.New("compress: corrupt segment length")
			}
			p.segLeft = seg
			p.idx = 0
		}
		dst[n] = p.intercept + p.slope*float64(p.idx)
		n++
		p.idx++
		p.segLeft--
		p.remaining--
	}
	return n, nil
}
