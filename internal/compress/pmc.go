package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"

	"lossyts/internal/timeseries"
)

// PMC implements Poor Man's Compression - Mean (Lazaridis & Mehrotra, ICDE
// 2003) with a pointwise relative error bound. Data points are added to an
// adaptive window whose running mean represents them; when the mean can no
// longer satisfy every point's tolerance interval, the window (without the
// latest point) is emitted as a constant segment (§3.2).
//
// Absolute switches to the classic absolute bound |v − v̂| ≤ ε (used by the
// ablation benches); the paper's evaluation uses the relative bound.
type PMC struct {
	Absolute bool
}

// Method returns MethodPMC.
func (PMC) Method() Method { return MethodPMC }

func init() {
	Register(Registration{
		Method: MethodPMC,
		Code:   1,
		New:    func() (Compressor, error) { return PMC{}, nil },
		Decode: pmcDecode,
	})
}

const maxSegmentLen = math.MaxUint16

// Compress encodes s as mean-valued segments under the relative bound.
func (p PMC) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	var body bytes.Buffer
	if err := EncodeHeader(&body, MethodPMC, s); err != nil {
		return nil, err
	}
	segments := 0
	emit := func(n int, mean float64) {
		var scratch [10]byte
		binary.LittleEndian.PutUint16(scratch[:2], uint16(n))
		binary.LittleEndian.PutUint64(scratch[2:], math.Float64bits(mean))
		body.Write(scratch[:])
		segments++
	}

	var (
		count int
		sum   float64
		lower = math.Inf(-1)
		upper = math.Inf(1)
	)
	for _, v := range s.Values {
		tol := epsilon * math.Abs(v)
		if p.Absolute {
			tol = epsilon
		}
		newLower := math.Max(lower, v-tol)
		newUpper := math.Min(upper, v+tol)
		newSum := sum + v
		newMean := newSum / float64(count+1)
		if count < maxSegmentLen && newLower <= newMean && newMean <= newUpper {
			count, sum, lower, upper = count+1, newSum, newLower, newUpper
			continue
		}
		// The window without the latest point becomes a segment. Its mean is
		// clamped into the feasible interval (guarding against floating-point
		// drift in the running sum) and then snapped to the coarsest
		// representable grid inside that interval so the stored coefficients
		// compress well under the shared gzip stage.
		emit(count, quantizeToInterval(sum/float64(count), lower, upper))
		count, sum = 1, v
		lower, upper = v-tol, v+tol
	}
	emit(count, quantizeToInterval(sum/float64(count), lower, upper))
	return Finish(MethodPMC, epsilon, s, body.Bytes(), segments)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// quantizeToInterval returns a value inside [lo, hi] that is as close to v
// as the interval allows while lying on the coarsest power-of-two grid that
// intersects the interval. Such values have long runs of trailing zero
// mantissa bits, which the gzip stage compresses far better than arbitrary
// means — the mechanism behind PMC's CR advantage over Swing (§4.2).
func quantizeToInterval(v, lo, hi float64) float64 {
	v = clamp(v, lo, hi)
	w := hi - lo
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return v
	}
	// The largest step 2^k with 2^k <= w always has a multiple in [lo, hi].
	k := math.Floor(math.Log2(w))
	step := math.Ldexp(1, int(k))
	q := math.Round(v/step) * step
	if q >= lo && q <= hi {
		return q
	}
	// Rounding of v can fall just outside; the interval midpoint cannot.
	q = math.Round((lo+hi)/2/step) * step
	if q >= lo && q <= hi {
		return q
	}
	return v
}

func pmcDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, count)
	pos := 0
	for len(values) < count {
		if pos+10 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		n := int(binary.LittleEndian.Uint16(body[pos : pos+2]))
		mean := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+2 : pos+10]))
		pos += 10
		if n == 0 || len(values)+n > count {
			return nil, errors.New("compress: corrupt PMC segment length")
		}
		for i := 0; i < n; i++ {
			values = append(values, mean)
		}
	}
	return values, nil
}
