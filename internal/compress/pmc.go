package compress

import (
	"encoding/binary"
	"errors"
	"io"
	"math"

	"lossyts/internal/timeseries"
)

// PMC implements Poor Man's Compression - Mean (Lazaridis & Mehrotra, ICDE
// 2003) with a pointwise relative error bound. Data points are added to an
// adaptive window whose running mean represents them; when the mean can no
// longer satisfy every point's tolerance interval, the window (without the
// latest point) is emitted as a constant segment (§3.2).
//
// Absolute switches to the classic absolute bound |v − v̂| ≤ ε (used by the
// ablation benches); the paper's evaluation uses the relative bound.
type PMC struct {
	Absolute bool
}

// Method returns MethodPMC.
func (PMC) Method() Method { return MethodPMC }

func init() {
	Register(Registration{
		Method:       MethodPMC,
		Code:         1,
		Lossy:        true,
		New:          func() (Compressor, error) { return PMC{}, nil },
		Decode:       pmcDecode,
		NewStream:    newPMCStream,
		DecodeStream: pmcDecodeStream,
	})
}

const maxSegmentLen = math.MaxUint16

// Compress encodes s as mean-valued segments under the relative bound. The
// batch path drives the same streaming kernel as StreamEncoder, so both
// produce identical bytes by construction.
func (p PMC) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	k := &pmcStream{epsilon: epsilon, absolute: p.Absolute, lower: math.Inf(-1), upper: math.Inf(1)}
	return kernelCompress(MethodPMC, epsilon, s, k)
}

// pmcStream is PMC's incremental kernel: the open window's running sum and
// feasible mean interval — O(1) state regardless of series length. The body
// accumulates in a pooled buffer (see reset/release).
type pmcStream struct {
	epsilon  float64
	absolute bool

	count        int
	sum          float64
	lower, upper float64

	segments int
	body     *sbuf[byte]
}

func newPMCStream(epsilon float64, absolute bool) (StreamKernel, error) {
	return &pmcStream{epsilon: epsilon, absolute: absolute, lower: math.Inf(-1), upper: math.Inf(1)}, nil
}

func (k *pmcStream) Push(v float64) {
	tol := k.epsilon * math.Abs(v)
	if k.absolute {
		tol = k.epsilon
	}
	newLower := math.Max(k.lower, v-tol)
	newUpper := math.Min(k.upper, v+tol)
	newSum := k.sum + v
	newMean := newSum / float64(k.count+1)
	if k.count < maxSegmentLen && newLower <= newMean && newMean <= newUpper {
		k.count, k.sum, k.lower, k.upper = k.count+1, newSum, newLower, newUpper
		return
	}
	k.emit()
	k.count, k.sum = 1, v
	k.lower, k.upper = v-tol, v+tol
}

// emit closes the open window as one segment. Its mean is clamped into the
// feasible interval (guarding against floating-point drift in the running
// sum) and then snapped to the coarsest representable grid inside that
// interval so the stored coefficients compress well under the shared gzip
// stage.
func (k *pmcStream) emit() {
	mean := quantizeToInterval(k.sum/float64(k.count), k.lower, k.upper)
	if k.body == nil {
		k.body = bytePool.get(256)
	}
	var scratch [10]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(k.count))
	binary.LittleEndian.PutUint64(scratch[2:], math.Float64bits(mean))
	k.body.s = append(k.body.s, scratch[:]...)
	k.segments++
}

func (k *pmcStream) Finish() ([]byte, int) {
	k.emit()
	return k.body.s, k.segments
}

// AppendFinish implements FinishAppender: the accumulated body is copied
// onto dst in one append, so closing a stream touches no fresh memory.
func (k *pmcStream) AppendFinish(dst []byte) ([]byte, int) {
	k.emit()
	return append(dst, k.body.s...), k.segments
}

// reset rewinds the kernel for a fresh series, keeping its body buffer.
func (k *pmcStream) reset() {
	k.count, k.sum = 0, 0
	k.lower, k.upper = math.Inf(-1), math.Inf(1)
	k.segments = 0
	if k.body != nil {
		k.body.s = k.body.s[:0]
	}
}

// release returns the body buffer to the pool; the kernel must not be used
// afterwards.
func (k *pmcStream) release() {
	bytePool.put(k.body)
	k.body = nil
}

func (k *pmcStream) Segments() int { return k.segments }
func (k *pmcStream) Pending() int  { return k.count }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// quantizeToInterval returns a value inside [lo, hi] that is as close to v
// as the interval allows while lying on the coarsest power-of-two grid that
// intersects the interval. Such values have long runs of trailing zero
// mantissa bits, which the gzip stage compresses far better than arbitrary
// means — the mechanism behind PMC's CR advantage over Swing (§4.2).
func quantizeToInterval(v, lo, hi float64) float64 {
	v = clamp(v, lo, hi)
	w := hi - lo
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return v
	}
	// The largest step 2^k with 2^k <= w always has a multiple in [lo, hi].
	k := math.Floor(math.Log2(w))
	step := math.Ldexp(1, int(k))
	q := math.Round(v/step) * step
	if q >= lo && q <= hi {
		return q
	}
	// Rounding of v can fall just outside; the interval midpoint cannot.
	q = math.Round((lo+hi)/2/step) * step
	if q >= lo && q <= hi {
		return q
	}
	return v
}

func pmcDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, allocHint(count))
	pos := 0
	for len(values) < count {
		if pos+10 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		n := int(binary.LittleEndian.Uint16(body[pos : pos+2]))
		mean := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+2 : pos+10]))
		pos += 10
		if n == 0 || len(values)+n > count {
			return nil, errors.New("compress: corrupt PMC segment length")
		}
		for i := 0; i < n; i++ {
			values = append(values, mean)
		}
	}
	return values, nil
}

// pmcValues replays PMC segments incrementally: the carried state is one
// segment header (its remaining length and mean).
type pmcValues struct {
	body      []byte
	total     int
	pos       int
	remaining int
	segLeft   int
	mean      float64
}

func pmcDecodeStream(body []byte, count int) (ValueStream, error) {
	return &pmcValues{body: body, total: count, remaining: count}, nil
}

// rewind restarts the replay from the first value (see valueRewinder).
func (p *pmcValues) rewind() {
	p.pos, p.remaining, p.segLeft, p.mean = 0, p.total, 0, 0
}

func (p *pmcValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.segLeft == 0 {
			if p.pos+10 > len(p.body) {
				return n, io.ErrUnexpectedEOF
			}
			seg := int(binary.LittleEndian.Uint16(p.body[p.pos : p.pos+2]))
			p.mean = math.Float64frombits(binary.LittleEndian.Uint64(p.body[p.pos+2 : p.pos+10]))
			p.pos += 10
			if seg == 0 || seg > p.remaining {
				return n, errors.New("compress: corrupt PMC segment length")
			}
			p.segLeft = seg
		}
		dst[n] = p.mean
		n++
		p.segLeft--
		p.remaining--
	}
	return n, nil
}
