package compress

import (
	"math"
	"testing"

	"lossyts/internal/timeseries"
)

func seasonalTestSeries(n, period int, seed int64) *timeseries.Series {
	s := synthSeries(n, seed)
	// synthSeries already has period-48 seasonality; keep as-is.
	_ = period
	return s
}

func TestSeasonalPMCBoundHolds(t *testing.T) {
	s := seasonalTestSeries(2000, 48, 101)
	for _, eps := range []float64{0.01, 0.1, 0.5} {
		c, err := (SeasonalPMC{Period: 48}).Compress(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := s.MaxRelError(dec)
		if rel > eps*(1+1e-9) {
			t.Errorf("eps=%v: relative error %v", eps, rel)
		}
		if dec.Len() != s.Len() {
			t.Fatal("length mismatch")
		}
	}
}

func TestSeasonalPMCPreservesSeasonality(t *testing.T) {
	// At a very loose bound, plain PMC collapses the series toward long
	// constants, destroying the seasonal autocorrelation; SeasonalPMC keeps
	// the profile by construction.
	n, period := 2400, 48
	v := make([]float64, n)
	for i := range v {
		v[i] = 20 + 10*math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	s := timeseries.New("seasonal", 0, 600, v)
	const eps = 0.8
	acfAt := func(values []float64, lag int) float64 {
		var mean float64
		for _, x := range values {
			mean += x
		}
		mean /= float64(len(values))
		var c0, cl float64
		for i := range values {
			c0 += (values[i] - mean) * (values[i] - mean)
			if i >= lag {
				cl += (values[i] - mean) * (values[i-lag] - mean)
			}
		}
		if c0 == 0 {
			return 0
		}
		return cl / c0
	}
	pmcC, err := (PMC{}).Compress(s, eps)
	if err != nil {
		t.Fatal(err)
	}
	pmcDec, _ := pmcC.Decompress()
	spC, err := (SeasonalPMC{Period: period}).Compress(s, eps)
	if err != nil {
		t.Fatal(err)
	}
	spDec, _ := spC.Decompress()
	pmcACF := acfAt(pmcDec.Values, period)
	spACF := acfAt(spDec.Values, period)
	if spACF < 0.95 {
		t.Errorf("SeasonalPMC seasonal acf = %.3f, want ~1", spACF)
	}
	if spACF <= pmcACF {
		t.Errorf("SeasonalPMC acf %.3f should beat PMC %.3f at eps %.1f", spACF, pmcACF, eps)
	}
}

func TestSeasonalPMCBeatsePMCOnSeasonalData(t *testing.T) {
	// With residuals much smaller than the seasonal swing, removing the
	// profile lets segments span whole periods: fewer segments than PMC.
	n, period := 4800, 48
	v := make([]float64, n)
	for i := range v {
		v[i] = 20 + 10*math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.2*math.Sin(float64(i)/97)
	}
	s := timeseries.New("seasonal", 0, 600, v)
	pmcC, _ := (PMC{}).Compress(s, 0.05)
	spC, _ := (SeasonalPMC{Period: period}).Compress(s, 0.05)
	if spC.Segments >= pmcC.Segments {
		t.Errorf("SeasonalPMC segments %d should be below PMC %d", spC.Segments, pmcC.Segments)
	}
	pmcCR, _ := Ratio(s, pmcC)
	spCR, _ := Ratio(s, spC)
	if spCR <= pmcCR {
		t.Errorf("SeasonalPMC CR %.2f should beat PMC %.2f on seasonal data", spCR, pmcCR)
	}
}

func TestSeasonalPMCErrors(t *testing.T) {
	s := seasonalTestSeries(500, 48, 103)
	if _, err := (SeasonalPMC{Period: 1}).Compress(s, 0.1); err == nil {
		t.Error("period 1 should error")
	}
	if _, err := (SeasonalPMC{Period: 48}).Compress(timeseries.New("x", 0, 1, []float64{1, 2}), 0.1); err == nil {
		t.Error("too-short series should error")
	}
	if _, err := (SeasonalPMC{Period: 48}).Compress(s, -0.1); err == nil {
		t.Error("negative bound should error")
	}
	if _, err := (SeasonalPMC{Period: 48}).Compress(timeseries.New("e", 0, 1, nil), 0.1); err == nil {
		t.Error("empty series should error")
	}
	if _, err := New(MethodSeasonalPMC); err == nil {
		t.Error("New should explain SeasonalPMC needs a period")
	}
}
