package compress

import (
	"errors"
	"fmt"
	"io"

	"lossyts/internal/timeseries"
)

// ValueStream yields a payload's reconstructed values incrementally — the
// decode-side counterpart of StreamKernel. Implementations are registered
// through Registration.DecodeStream; methods without one decode in batch and
// are served through a slice adapter.
type ValueStream interface {
	// Next fills dst with up to len(dst) reconstructed values and returns
	// how many were produced. It returns 0, io.EOF once every value has been
	// yielded; any other error means the payload is corrupt. A call may
	// return n > 0 alongside an error when corruption is detected after
	// valid values were produced.
	Next(dst []float64) (int, error)
}

// valueRewinder is implemented by value streams that can restart the replay
// from the first value without re-parsing the payload body — the decode-side
// counterpart of kernelReseter, used by the zero-allocation decode tests and
// benchmarks.
type valueRewinder interface{ rewind() }

// sliceValues serves a batch-decoded slice through the ValueStream
// interface, the fallback for registrations without DecodeStream.
type sliceValues struct {
	values []float64
	pos    int
}

func (s *sliceValues) Next(dst []float64) (int, error) {
	if s.pos >= len(s.values) {
		return 0, io.EOF
	}
	n := copy(dst, s.values[s.pos:])
	s.pos += n
	return n, nil
}

func (s *sliceValues) rewind() { s.pos = 0 }

// StreamDecoder reconstructs a compressed series chunk by chunk, holding
// O(chunk) state instead of materialising the full series: each built-in
// method replays its payload with bounded carried state (PMC/Swing: the open
// segment; Gorilla: the previous value and bit window; SZ: the block cursor
// and two reconstructed values; SeasonalPMC: the profile and open segment).
//
// StreamDecoder implements timeseries.Source, so a decoded payload plugs
// directly into anything that consumes chunks — including Series.Append and
// timeseries.Collect for callers that do want the whole series.
//
// The gzip-compressed payload is decoded up front (the encoded body is tiny
// relative to the series — that is the point of compression); what is never
// materialised is the O(n) value slice.
type StreamDecoder struct {
	vs       ValueStream
	start    int64
	interval int64
	count    int
	pos      int
	buf      []float64
	err      error
	// Pooled backing for the gunzipped frame (which the per-method value
	// streams read from in place) and the chunk buffer; see Release.
	raw   *sbuf[byte]
	chunk *sbuf[float64]
}

// NewStreamDecoder returns a chunked decoder over c's payload. Non-positive
// chunk sizes fall back to timeseries.DefaultChunkSize.
func NewStreamDecoder(c *Compressed, chunkSize int) (*StreamDecoder, error) {
	if chunkSize <= 0 {
		chunkSize = timeseries.DefaultChunkSize
	}
	raw := bytePool.get(2 * len(c.Payload))
	var err error
	raw.s, err = AppendGunzip(raw.s, c.Payload)
	if err != nil {
		bytePool.put(raw)
		return nil, err
	}
	hdr, body, err := decodeHeader(raw.s)
	if err != nil {
		bytePool.put(raw)
		return nil, err
	}
	if hdr.method != c.Method {
		bytePool.put(raw)
		return nil, fmt.Errorf("compress: payload method %s does not match %s", hdr.method, c.Method)
	}
	reg, err := lookup(c.Method)
	if err != nil {
		bytePool.put(raw)
		return nil, err
	}
	var vs ValueStream
	if reg.DecodeStream != nil {
		vs, err = reg.DecodeStream(body, int(hdr.count))
	} else {
		var values []float64
		values, err = reg.Decode(body, int(hdr.count))
		vs = &sliceValues{values: values}
	}
	if err != nil {
		bytePool.put(raw)
		return nil, err
	}
	chunk := floatPool.get(chunkSize)
	return &StreamDecoder{
		vs:       vs,
		start:    int64(hdr.start),
		interval: int64(hdr.interval),
		count:    int(hdr.count),
		buf:      chunk.s[:chunkSize],
		raw:      raw,
		chunk:    chunk,
	}, nil
}

// Release returns the decoder's pooled buffers (the gunzipped frame and the
// chunk buffer) to the package pools. Call it once the stream is drained or
// abandoned; the decoder — and any chunk it previously yielded — must not be
// used afterwards. Decoders that are simply dropped without Release remain
// correct; the buffers are then reclaimed by the GC instead of reused.
func (d *StreamDecoder) Release() {
	bytePool.put(d.raw)
	floatPool.put(d.chunk)
	d.raw, d.chunk = nil, nil
	d.vs = nil
	d.buf = nil
	d.pos = d.count // Next now reports end-of-stream
}

// Len returns the total number of values the payload reconstructs to.
func (d *StreamDecoder) Len() int { return d.count }

// Start returns the first timestamp of the reconstructed series.
func (d *StreamDecoder) Start() int64 { return d.start }

// Interval returns the sampling interval of the reconstructed series.
func (d *StreamDecoder) Interval() int64 { return d.interval }

// Next returns the next reconstructed chunk. The chunk's Values alias an
// internal buffer that is reused on the following call — the Source
// contract; copy (e.g. via Series.Append) to retain. ok is false at end of
// stream or on error; check Err to distinguish.
func (d *StreamDecoder) Next() (timeseries.Chunk, bool) {
	if d.err != nil || d.pos >= d.count {
		return timeseries.Chunk{}, false
	}
	want := d.buf
	if left := d.count - d.pos; left < len(want) {
		want = want[:left]
	}
	n, err := d.vs.Next(want)
	switch {
	case err == nil:
	case errors.Is(err, io.EOF):
		if d.pos+n < d.count {
			d.err = io.ErrUnexpectedEOF
		}
	default:
		d.err = err
	}
	if n == 0 {
		if d.err == nil && d.pos < d.count {
			// A well-formed stream yields progress until count is reached.
			d.err = io.ErrUnexpectedEOF
		}
		return timeseries.Chunk{}, false
	}
	c := timeseries.Chunk{
		Start:    d.start + int64(d.pos)*d.interval,
		Interval: d.interval,
		Values:   d.buf[:n],
	}
	d.pos += n
	return c, true
}

// Err returns the first corruption error encountered, or nil after a clean
// end of stream.
func (d *StreamDecoder) Err() error { return d.err }
