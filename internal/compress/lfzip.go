package compress

import (
	"errors"

	"lossyts/internal/forecast"
	"lossyts/internal/timeseries"
)

// LFZip implements LFZip-style prediction+quantisation lossy compression
// (Chandak et al., DCC 2020): an NLMS adaptive linear predictor
// (forecast.NLMS — it lives with the forecasting models because it is one)
// forecasts each value from the reconstructed history, the residual is
// uniformly quantised under the error bound, and the code stream is packed
// by the shared pooled Huffman stage. The kernel is a pure composition of
// the predictive-codec contract (predictive.go): predictiveKernel with an
// NLMS Predictor, the shared UniformQuantiser, and the shared HuffmanCoder
// — no codec-private wire plumbing at all, which is the point: this file is
// the "how to add a codec" walkthrough in executable form.
//
// LFZip proper bounds absolute error; this port follows the paper's
// pointwise relative bound by default (per-block precision from the
// smallest non-zero magnitude, as SZ's relative mode does), with Absolute
// switching to LFZip's native |v − v̂| ≤ ε.
type LFZip struct {
	// BlockSize is the number of points per precision-calibration block
	// (default 128).
	BlockSize int
	// Absolute switches to the classic absolute bound |v − v̂| ≤ ε.
	Absolute bool
}

// MethodLFZip identifies the LFZip compressor.
const MethodLFZip Method = "LFZIP"

// Method returns MethodLFZip.
func (LFZip) Method() Method { return MethodLFZip }

// NewLFZip returns an LFZip compressor with the default block size.
func NewLFZip() LFZip { return LFZip{BlockSize: 128} }

func init() {
	Register(Registration{
		Method:       MethodLFZip,
		Code:         7,
		Lossy:        true,
		New:          func() (Compressor, error) { return NewLFZip(), nil },
		Decode:       lfzipDecode,
		NewStream:    newLFZipStream,
		DecodeStream: lfzipDecodeStream,
	})
}

// Compress encodes s under the pointwise relative bound epsilon. The batch
// path drives the same streaming kernel as StreamEncoder, so both produce
// identical bytes by construction.
func (z LFZip) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	bs := z.BlockSize
	if bs <= 0 {
		bs = 128
	}
	k := newPredictiveKernel(bs, forecast.NewNLMS(), NewUniformQuantiser(epsilon, z.Absolute), HuffmanCoder{})
	return kernelCompress(MethodLFZip, epsilon, s, k)
}

func newLFZipStream(epsilon float64, absolute bool) (StreamKernel, error) {
	return newPredictiveKernel(NewLFZip().BlockSize, forecast.NewNLMS(), NewUniformQuantiser(epsilon, absolute), HuffmanCoder{}), nil
}

func lfzipDecode(body []byte, count int) ([]float64, error) {
	vs, err := lfzipDecodeStream(body, count)
	if err != nil {
		return nil, err
	}
	values := make([]float64, 0, allocHint(count))
	var buf [256]float64
	for len(values) < count {
		n, err := vs.Next(buf[:])
		values = append(values, buf[:n]...)
		if err != nil {
			return nil, err
		}
	}
	return values, nil
}

func lfzipDecodeStream(body []byte, count int) (ValueStream, error) {
	// Epsilon is not needed to dequantise — the stored per-block precision
	// carries the whole reconstruction contract.
	return DecodePredictiveStream(HuffmanCoder{}, forecast.NewNLMS(), body, count)
}
