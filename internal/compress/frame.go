package compress

import (
	"errors"

	"lossyts/internal/timeseries"
)

// FrameResult is the outcome of compressing every column of a multivariate
// frame with one method and bound.
type FrameResult struct {
	Method  Method
	Epsilon float64
	// Columns holds the per-column compressed representations, in frame
	// column order.
	Columns []*Compressed
	// RawSize and CompressedSize aggregate the .gz byte counts across all
	// columns; their ratio is the frame-level CR.
	RawSize        int
	CompressedSize int
}

// Ratio returns the frame-level compression ratio.
func (r *FrameResult) Ratio() float64 {
	if r.CompressedSize == 0 {
		return 0
	}
	return float64(r.RawSize) / float64(r.CompressedSize)
}

// CompressFrame compresses every column of the frame under the same method
// and error bound, as when a whole multivariate dataset (e.g. Weather's 21
// indicators) is archived.
func CompressFrame(m Method, f *timeseries.Frame, epsilon float64) (*FrameResult, error) {
	if f == nil || len(f.Columns) == 0 {
		return nil, errors.New("compress: empty frame")
	}
	comp, err := New(m)
	if err != nil {
		return nil, err
	}
	out := &FrameResult{Method: m, Epsilon: epsilon}
	for _, col := range f.Columns {
		c, err := comp.Compress(col, epsilon)
		if err != nil {
			return nil, err
		}
		raw, err := RawGzipSize(col)
		if err != nil {
			return nil, err
		}
		out.Columns = append(out.Columns, c)
		out.RawSize += raw
		out.CompressedSize += c.Size()
	}
	return out, nil
}

// DecompressFrame reconstructs the frame from a FrameResult, restoring the
// original column names and target index from the template frame.
func DecompressFrame(r *FrameResult, template *timeseries.Frame) (*timeseries.Frame, error) {
	if len(r.Columns) != len(template.Columns) {
		return nil, errors.New("compress: column count mismatch with template")
	}
	cols := make([]*timeseries.Series, len(r.Columns))
	for i, c := range r.Columns {
		s, err := c.Decompress()
		if err != nil {
			return nil, err
		}
		s.Name = template.Columns[i].Name
		cols[i] = s
	}
	return timeseries.NewFrame(template.Name, template.Start, template.Interval, template.Target, cols...)
}
