package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lossyts/internal/timeseries"
)

// synthSeries builds a seasonal series with noise, occasional zeros and
// negative values — the value patterns the paper's datasets exhibit.
func synthSeries(n int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		base := 10 + 8*math.Sin(2*math.Pi*float64(i)/48) + rng.NormFloat64()
		switch {
		case rng.Float64() < 0.05:
			base = 0 // zero-inflation (Solar nights)
		case rng.Float64() < 0.05:
			base = -base / 2 // negative excursions (ETTm1, Wind)
		}
		v[i] = base
	}
	return timeseries.New("synth", 1_600_000_000, 900, v)
}

func lossyMethods() []Method { return []Method{MethodPMC, MethodSwing, MethodSZ} }

func TestRelativeBoundHolds(t *testing.T) {
	s := synthSeries(2000, 42)
	for _, m := range lossyMethods() {
		c, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.01, 0.05, 0.1, 0.3, 0.8} {
			comp, err := c.Compress(s, eps)
			if err != nil {
				t.Fatalf("%s eps=%v: %v", m, eps, err)
			}
			dec, err := comp.Decompress()
			if err != nil {
				t.Fatalf("%s eps=%v decompress: %v", m, eps, err)
			}
			if dec.Len() != s.Len() {
				t.Fatalf("%s eps=%v: length %d, want %d", m, eps, dec.Len(), s.Len())
			}
			if dec.Start != s.Start || dec.Interval != s.Interval {
				t.Fatalf("%s: timestamp metadata lost", m)
			}
			rel, err := s.MaxRelError(dec)
			if err != nil {
				t.Fatal(err)
			}
			if rel > eps*(1+1e-9) {
				t.Errorf("%s eps=%v: max relative error %v exceeds bound", m, eps, rel)
			}
		}
	}
}

func TestRelativeBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(500)
		v := make([]float64, n)
		for i := range v {
			// Mixture of smooth and jumpy values, including exact zeros.
			switch rng.Intn(4) {
			case 0:
				v[i] = 0
			case 1:
				v[i] = rng.NormFloat64() * 100
			default:
				if i > 0 {
					v[i] = v[i-1] + rng.NormFloat64()
				} else {
					v[i] = rng.NormFloat64()
				}
			}
		}
		s := timeseries.New("p", 1000, 60, v)
		eps := rng.Float64() * 0.5
		for _, m := range lossyMethods() {
			c, _ := New(m)
			comp, err := c.Compress(s, eps)
			if err != nil {
				return false
			}
			dec, err := comp.Decompress()
			if err != nil {
				return false
			}
			rel, err := s.MaxRelError(dec)
			if err != nil || rel > eps*(1+1e-9)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGorillaLossless(t *testing.T) {
	s := synthSeries(3000, 7)
	g := Gorilla{}
	comp, err := g.Compress(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := comp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(dec) {
		t.Fatal("Gorilla must be lossless")
	}
	if comp.Segments != 1 {
		t.Fatalf("Gorilla segments = %d, want 1 (whole series)", comp.Segments)
	}
}

func TestGorillaLosslessProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for i, v := range raw {
			if math.IsNaN(v) {
				raw[i] = 0 // NaN breaks Equal semantics only; Gorilla itself is bit-exact
			}
		}
		s := timeseries.New("p", 0, 1, raw)
		comp, err := (Gorilla{}).Compress(s, 0)
		if err != nil {
			return false
		}
		dec, err := comp.Decompress()
		if err != nil {
			return false
		}
		return s.Equal(dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGorillaRepeatedValues(t *testing.T) {
	v := make([]float64, 1000)
	for i := range v {
		v[i] = 42.5
	}
	s := timeseries.New("const", 0, 1, v)
	comp, err := (Gorilla{}).Compress(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	// ~1 bit per repeated value plus header and gzip overhead.
	if comp.Size() > 300 {
		t.Errorf("constant series should compress to a few hundred bytes, got %d", comp.Size())
	}
	dec, _ := comp.Decompress()
	if !s.Equal(dec) {
		t.Fatal("round trip failed")
	}
}

func TestPMCConstantSeries(t *testing.T) {
	v := make([]float64, 500)
	for i := range v {
		v[i] = 3.25
	}
	s := timeseries.New("const", 0, 60, v)
	comp, err := (PMC{}).Compress(s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Segments != 1 {
		t.Fatalf("constant series should be one PMC segment, got %d", comp.Segments)
	}
	dec, _ := comp.Decompress()
	if !s.Equal(dec) {
		t.Fatal("round trip failed")
	}
}

func TestSwingLinearSeries(t *testing.T) {
	v := make([]float64, 500)
	for i := range v {
		v[i] = 5 + 0.25*float64(i)
	}
	s := timeseries.New("line", 0, 60, v)
	comp, err := (Swing{}).Compress(s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Segments != 1 {
		t.Fatalf("linear series should be one Swing segment, got %d", comp.Segments)
	}
	dec, _ := comp.Decompress()
	rel, _ := s.MaxRelError(dec)
	if rel > 0.01 {
		t.Fatalf("relative error %v on linear data", rel)
	}
}

func TestSwingBeatsPMCOnLinearData(t *testing.T) {
	// A steep line defeats constant models but is a single Swing segment.
	v := make([]float64, 2000)
	for i := range v {
		v[i] = 100 + 2*float64(i)
	}
	s := timeseries.New("line", 0, 60, v)
	pmc, _ := (PMC{}).Compress(s, 0.01)
	swing, _ := (Swing{}).Compress(s, 0.01)
	if swing.Segments >= pmc.Segments {
		t.Errorf("Swing should need fewer segments on linear data: swing=%d pmc=%d",
			swing.Segments, pmc.Segments)
	}
}

func TestSegmentCountDecreasesWithBound(t *testing.T) {
	s := synthSeries(4000, 99)
	for _, m := range lossyMethods() {
		c, _ := New(m)
		tight, err := c.Compress(s, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		loose, err := c.Compress(s, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if loose.Segments > tight.Segments {
			t.Errorf("%s: segments grew with looser bound: %d -> %d", m, tight.Segments, loose.Segments)
		}
	}
}

func TestCompressionRatioImprovesWithBound(t *testing.T) {
	s := synthSeries(4000, 5)
	for _, m := range lossyMethods() {
		c, _ := New(m)
		tight, _ := c.Compress(s, 0.01)
		loose, _ := c.Compress(s, 0.5)
		rTight, err := Ratio(s, tight)
		if err != nil {
			t.Fatal(err)
		}
		rLoose, _ := Ratio(s, loose)
		if rLoose < rTight {
			t.Errorf("%s: CR %f at 0.5 below CR %f at 0.01", m, rLoose, rTight)
		}
		if rTight <= 0 {
			t.Errorf("%s: nonpositive CR", m)
		}
	}
}

func TestLossyBeatsGorillaOnSmoothData(t *testing.T) {
	// The paper's headline: lossy CRs far exceed the lossless baseline.
	v := make([]float64, 5000)
	for i := range v {
		v[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/200)
	}
	s := timeseries.New("smooth", 0, 60, v)
	g, _ := (Gorilla{}).Compress(s, 0)
	gr, _ := Ratio(s, g)
	for _, m := range lossyMethods() {
		c, _ := New(m)
		comp, _ := c.Compress(s, 0.1)
		cr, _ := Ratio(s, comp)
		if cr < gr {
			t.Errorf("%s CR %.1f below Gorilla CR %.1f on smooth data", m, cr, gr)
		}
	}
}

func TestCompressErrors(t *testing.T) {
	empty := timeseries.New("e", 0, 1, nil)
	for _, m := range append(lossyMethods(), MethodGorilla) {
		c, _ := New(m)
		if _, err := c.Compress(empty, 0.1); err == nil {
			t.Errorf("%s: empty series should error", m)
		}
	}
	s := synthSeries(10, 1)
	for _, m := range lossyMethods() {
		c, _ := New(m)
		if _, err := c.Compress(s, -0.1); err == nil {
			t.Errorf("%s: negative bound should error", m)
		}
	}
	bad := timeseries.New("b", -5, 60, []float64{1, 2})
	if _, err := (PMC{}).Compress(bad, 0.1); err == nil {
		t.Error("negative start timestamp should not fit the header")
	}
	bigIv := timeseries.New("b", 0, 1<<20, []float64{1, 2})
	if _, err := (PMC{}).Compress(bigIv, 0.1); err == nil {
		t.Error("oversized interval should not fit the header")
	}
}

func TestNewUnknownMethod(t *testing.T) {
	if _, err := New(Method("NOPE")); err == nil {
		t.Error("unknown method should error")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	s := synthSeries(100, 3)
	comp, _ := (PMC{}).Compress(s, 0.1)
	comp.Payload = comp.Payload[:len(comp.Payload)/2]
	if _, err := comp.Decompress(); err == nil {
		t.Error("truncated payload should error")
	}
	comp2, _ := (Swing{}).Compress(s, 0.1)
	comp2.Method = MethodPMC // mismatched method marker
	if _, err := comp2.Decompress(); err == nil {
		t.Error("method mismatch should error")
	}
}

func TestZerosStoredExactly(t *testing.T) {
	// A relative bound forces zero values to be reconstructed exactly.
	v := []float64{0, 5, 0, 0, 7.5, 0, -3, 0}
	s := timeseries.New("z", 0, 600, v)
	for _, m := range lossyMethods() {
		c, _ := New(m)
		comp, err := c.Compress(s, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := comp.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		for i, orig := range v {
			if orig == 0 && dec.Values[i] != 0 {
				t.Errorf("%s: zero at %d decompressed to %v", m, i, dec.Values[i])
			}
		}
	}
}

func TestSZLongSeries(t *testing.T) {
	// Multiple blocks, partial final block, constant blocks, exceptions.
	v := make([]float64, 1000)
	rng := rand.New(rand.NewSource(11))
	for i := range v {
		switch {
		case i >= 300 && i < 450:
			v[i] = 0 // constant zero block region
		case i >= 450 && i < 600:
			v[i] = 12.5 // constant non-zero region
		default:
			v[i] = 20 + math.Sin(float64(i)/10)*5 + rng.NormFloat64()*0.1
		}
	}
	s := timeseries.New("sz", 0, 1, v)
	comp, err := NewSZ().Compress(s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := comp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := s.MaxRelError(dec)
	if rel > 0.05+1e-12 {
		t.Fatalf("relative error %v", rel)
	}
}

func TestSZBlockSizeVariants(t *testing.T) {
	s := synthSeries(777, 13)
	for _, bs := range []int{16, 64, 128, 512} {
		z := SZ{BlockSize: bs}
		comp, err := z.Compress(s, 0.1)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		dec, err := comp.Decompress()
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		rel, _ := s.MaxRelError(dec)
		if rel > 0.1+1e-12 {
			t.Fatalf("bs=%d: relative error %v", bs, rel)
		}
	}
}

func TestRawGzipSizeStable(t *testing.T) {
	s := synthSeries(500, 21)
	a, err := RawGzipSize(s)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RawGzipSize(s)
	if a != b || a <= 0 {
		t.Fatalf("raw sizes %d, %d", a, b)
	}
}

func TestLongSegmentsSplit(t *testing.T) {
	// Constant runs longer than 65535 must split without corruption.
	v := make([]float64, 70000)
	for i := range v {
		v[i] = 9
	}
	s := timeseries.New("long", 0, 2, v)
	for _, m := range []Method{MethodPMC, MethodSwing} {
		c, _ := New(m)
		comp, err := c.Compress(s, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := comp.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equal(dec) {
			t.Fatalf("%s: long-run round trip failed", m)
		}
		if comp.Segments != 2 {
			t.Errorf("%s: expected 2 segments after splitting, got %d", m, comp.Segments)
		}
	}
}

func TestAbsoluteBoundMode(t *testing.T) {
	s := synthSeries(1500, 77)
	const eps = 0.5
	for _, c := range []Compressor{PMC{Absolute: true}, Swing{Absolute: true}, SZ{BlockSize: 128, Absolute: true}} {
		comp, err := c.Compress(s, eps)
		if err != nil {
			t.Fatalf("%s: %v", c.Method(), err)
		}
		dec, err := comp.Decompress()
		if err != nil {
			t.Fatalf("%s: %v", c.Method(), err)
		}
		maxAbs, _ := s.MaxAbsError(dec)
		if maxAbs > eps*(1+1e-9) {
			t.Errorf("%s absolute mode: max abs error %v exceeds %v", c.Method(), maxAbs, eps)
		}
	}
}

func TestAbsoluteModeCompressesZeroRegions(t *testing.T) {
	// Under an absolute bound, near-zero values can share segments; under a
	// relative bound they must be exact. Absolute mode should therefore use
	// fewer segments on zero-heavy data.
	v := make([]float64, 2000)
	rng := rand.New(rand.NewSource(5))
	for i := range v {
		if i%3 == 0 {
			v[i] = 0
		} else {
			v[i] = rng.Float64() * 0.05
		}
	}
	s := timeseries.New("z", 0, 1, v)
	rel, _ := (PMC{}).Compress(s, 0.1)
	abs, _ := (PMC{Absolute: true}).Compress(s, 0.1)
	if abs.Segments >= rel.Segments {
		t.Errorf("absolute mode segments %d should be below relative mode %d on zero-heavy data",
			abs.Segments, rel.Segments)
	}
}
