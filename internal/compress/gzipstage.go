package compress

import (
	"bytes"
	"compress/gzip"
	"io"
)

// GzipBytes compresses data with gzip at the default compression level.
// The paper applies gzip as the final stage of every method (and to the raw
// data) so all reported sizes are .gz byte counts (§3.2, §3.5).
func GzipBytes(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GunzipBytes decompresses gzip data.
func GunzipBytes(data []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}
