package compress

import (
	"bytes"
	"compress/gzip"
	"io"
	"sync"
)

// The gzip stage is shared by every method (§3.2, §3.5), which also makes
// it the last allocation in the hot encode/decode path. Writers and readers
// are pooled and Reset between uses — deflate output depends only on the
// input bytes and level, so pooling changes no payload byte — and the
// Append variants write into caller-supplied buffers so steady-state
// compression of a stream does zero heap allocation past warm-up.

// appendWriter is an io.Writer that appends to a byte slice.
type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// pooledGzipWriter bundles a gzip.Writer with its append sink so one pool
// object carries both across uses.
type pooledGzipWriter struct {
	aw appendWriter
	zw *gzip.Writer
}

var gzipWriterPool = sync.Pool{New: func() any {
	g := &pooledGzipWriter{}
	g.zw = gzip.NewWriter(&g.aw)
	return g
}}

// AppendGzip appends the gzip encoding of data to dst and returns the
// extended slice, reusing a pooled writer. The bytes produced are identical
// to GzipBytes(data). On error the (possibly grown) dst is returned
// alongside, so a pooled buffer is never lost.
func AppendGzip(dst, data []byte) ([]byte, error) {
	g := gzipWriterPool.Get().(*pooledGzipWriter)
	g.aw.b = dst
	g.zw.Reset(&g.aw)
	_, err := g.zw.Write(data)
	if cerr := g.zw.Close(); err == nil {
		err = cerr
	}
	out := g.aw.b
	g.aw.b = nil // do not pin the caller's buffer inside the pool
	gzipWriterPool.Put(g)
	return out, err
}

// GzipBytes compresses data with gzip at the default compression level.
// The paper applies gzip as the final stage of every method (and to the raw
// data) so all reported sizes are .gz byte counts (§3.2, §3.5).
func GzipBytes(data []byte) ([]byte, error) {
	return AppendGzip(nil, data)
}

// pooledGzipReader bundles a gzip.Reader with the bytes.Reader it drains.
type pooledGzipReader struct {
	br bytes.Reader
	zr gzip.Reader
}

var gzipReaderPool = sync.Pool{New: func() any { return &pooledGzipReader{} }}

// AppendGunzip appends the decompression of gzip data to dst and returns
// the extended slice, reusing a pooled reader. On error the (possibly
// grown) dst is returned alongside, so a pooled buffer is never lost.
func AppendGunzip(dst, data []byte) ([]byte, error) {
	g := gzipReaderPool.Get().(*pooledGzipReader)
	defer func() {
		g.br.Reset(nil)
		gzipReaderPool.Put(g)
	}()
	g.br.Reset(data)
	if err := g.zr.Reset(&g.br); err != nil {
		return dst, err
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := g.zr.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// GunzipBytes decompresses gzip data.
func GunzipBytes(data []byte) ([]byte, error) {
	return AppendGunzip(nil, data)
}
