// Package compress implements the paper's compression stack: the three
// pointwise error-bounded lossy compressors PMC-Mean, Swing, and SZ; the
// Gorilla lossless baseline; the shared timestamp codec (§3.2); and the
// shared gzip final stage used to make all sizes comparable.
//
// All lossy methods guarantee the pointwise relative error bound of paper
// Definition 4: every decompressed value v̂ satisfies |v − v̂| ≤ ε·|v|.
package compress

import (
	"errors"
	"io"
)

// BitWriter accumulates individual bits into a byte slice, most significant
// bit first. The zero value is ready to use; initPooled backs it with the
// package buffer pool so kernels reuse bit buffers across streams.
type BitWriter struct {
	buf    []byte
	nbit   uint8 // free bits in the final byte (0 means the last byte is full)
	pooled *sbuf[byte]
}

// initPooled backs the writer with a pooled buffer of at least n bytes.
// Call release to return it; Bytes() views are invalidated by release.
func (w *BitWriter) initPooled(n int) {
	if w.pooled != nil || len(w.buf) > 0 {
		return
	}
	w.pooled = bytePool.get(n)
	w.buf = w.pooled.s
}

// release returns a pooled backing buffer and leaves the writer empty.
func (w *BitWriter) release() {
	if w.pooled != nil {
		// The buffer may have been regrown by append since initPooled; the
		// wrapper is updated so the current backing array is what returns to
		// the pool.
		w.pooled.s = w.buf
		bytePool.put(w.pooled)
		w.pooled = nil
	}
	w.buf = nil
	w.nbit = 0
}

// Reset empties the writer, retaining its backing buffer for reuse.
func (w *BitWriter) Reset() {
	w.buf = w.buf[:0]
	w.nbit = 0
}

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *BitWriter) WriteBit(b uint64) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	w.nbit--
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << w.nbit
	}
}

// WriteBits appends the n least significant bits of v, most significant
// first. n must be at most 64. The inner loop moves up to a whole byte per
// iteration — and whole bytes at a time once the writer is byte-aligned —
// instead of a call per bit, which is what keeps the Gorilla and Huffman
// encode paths in registers.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n > 64 {
		// Mirror the historical per-bit behaviour: bits above the word width
		// are zeros.
		for ; n > 64; n-- {
			w.WriteBit(0)
		}
	}
	// Fill the open byte first.
	if w.nbit != 0 && n > 0 {
		k := uint(w.nbit)
		if k > n {
			k = n
		}
		chunk := byte(v >> (n - k) & (1<<k - 1))
		w.buf[len(w.buf)-1] |= chunk << (uint(w.nbit) - k)
		w.nbit -= uint8(k)
		n -= k
	}
	// Byte-aligned: emit whole bytes directly.
	for n >= 8 {
		n -= 8
		w.buf = append(w.buf, byte(v>>n))
	}
	if n > 0 {
		w.buf = append(w.buf, byte(v&(1<<n-1))<<(8-n))
		w.nbit = 8 - uint8(n)
	}
}

// Bytes returns the accumulated bytes; trailing unused bits are zero. The
// view aliases the writer's internal buffer and is invalidated by further
// writes, Reset, or release.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Len returns the number of whole bytes accumulated so far.
func (w *BitWriter) Len() int { return len(w.buf) }

// BitReader consumes bits from a byte slice, most significant bit first.
type BitReader struct {
	buf []byte
	pos int   // byte index
	bit uint8 // next bit within buf[pos], 0 = MSB
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// reset rewinds the reader to the first bit of its buffer.
func (r *BitReader) reset() { r.pos, r.bit = 0, 0 }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint64, error) {
	if r.pos >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := uint64(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits returns the next n bits as the low bits of a uint64. n must be at
// most 64. Like WriteBits, it consumes up to a whole byte per iteration
// rather than a call per bit.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, errors.New("compress: ReadBits n > 64")
	}
	var v uint64
	for n > 0 {
		if r.pos >= len(r.buf) {
			return 0, io.ErrUnexpectedEOF
		}
		avail := uint(8 - r.bit)
		k := avail
		if k > n {
			k = n
		}
		chunk := uint64(r.buf[r.pos]>>(avail-k)) & (1<<k - 1)
		v = v<<k | chunk
		r.bit += uint8(k)
		if r.bit == 8 {
			r.bit = 0
			r.pos++
		}
		n -= k
	}
	return v, nil
}
