// Package compress implements the paper's compression stack: the three
// pointwise error-bounded lossy compressors PMC-Mean, Swing, and SZ; the
// Gorilla lossless baseline; the shared timestamp codec (§3.2); and the
// shared gzip final stage used to make all sizes comparable.
//
// All lossy methods guarantee the pointwise relative error bound of paper
// Definition 4: every decompressed value v̂ satisfies |v − v̂| ≤ ε·|v|.
package compress

import (
	"errors"
	"io"
)

// BitWriter accumulates individual bits into a byte slice, most significant
// bit first.
type BitWriter struct {
	buf  []byte
	nbit uint8 // bits used in the final byte (0 means the last byte is full)
}

// WriteBit appends a single bit (any non-zero b writes 1).
func (w *BitWriter) WriteBit(b uint64) {
	if w.nbit == 0 {
		w.buf = append(w.buf, 0)
		w.nbit = 8
	}
	w.nbit--
	if b != 0 {
		w.buf[len(w.buf)-1] |= 1 << w.nbit
	}
}

// WriteBits appends the n least significant bits of v, most significant
// first. n must be at most 64.
func (w *BitWriter) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit((v >> uint(i)) & 1)
	}
}

// Bytes returns the accumulated bytes; trailing unused bits are zero.
func (w *BitWriter) Bytes() []byte { return w.buf }

// Len returns the number of whole bytes accumulated so far.
func (w *BitWriter) Len() int { return len(w.buf) }

// BitReader consumes bits from a byte slice, most significant bit first.
type BitReader struct {
	buf []byte
	pos int   // byte index
	bit uint8 // next bit within buf[pos], 0 = MSB
}

// NewBitReader returns a reader over buf.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBit returns the next bit.
func (r *BitReader) ReadBit() (uint64, error) {
	if r.pos >= len(r.buf) {
		return 0, io.ErrUnexpectedEOF
	}
	b := uint64(r.buf[r.pos]>>(7-r.bit)) & 1
	r.bit++
	if r.bit == 8 {
		r.bit = 0
		r.pos++
	}
	return b, nil
}

// ReadBits returns the next n bits as the low bits of a uint64. n must be at
// most 64.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, errors.New("compress: ReadBits n > 64")
	}
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | b
	}
	return v, nil
}
