//go:build !race

package compress

// raceEnabled reports whether this test binary was built with -race.
const raceEnabled = false
