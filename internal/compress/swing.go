package compress

import (
	"encoding/binary"
	"errors"
	"io"
	"math"

	"lossyts/internal/timeseries"
)

// Swing implements the Swing filter (Elmeleegy et al., PVLDB 2009) with a
// pointwise relative error bound. Each segment is a line anchored at the
// segment's first value; upper and lower slope bounds are narrowed as
// points arrive, and when they cross, the segment is emitted. Following
// ModelarDB (the implementation the paper uses), the emitted slope is the
// mean of the upper and lower bounding lines (§3.2).
//
// Absolute switches to the classic absolute bound |v − v̂| ≤ ε (used by the
// ablation benches); the paper's evaluation uses the relative bound.
type Swing struct {
	Absolute bool
}

// Method returns MethodSwing.
func (Swing) Method() Method { return MethodSwing }

func init() {
	Register(Registration{
		Method:       MethodSwing,
		Code:         2,
		New:          func() (Compressor, error) { return Swing{}, nil },
		Decode:       swingDecode,
		NewStream:    newSwingStream,
		DecodeStream: swingDecodeStream,
	})
}

// Compress encodes s as linear segments under the relative bound. The batch
// path drives the same streaming kernel as StreamEncoder, so both produce
// identical bytes by construction.
func (sw Swing) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	k := &swingStream{epsilon: epsilon, absolute: sw.Absolute, sLow: math.Inf(-1), sHigh: math.Inf(1)}
	return kernelCompress(MethodSwing, epsilon, s, k)
}

// swingStream is Swing's incremental kernel: the open segment's anchor
// intercept and the narrowing slope corridor — O(1) state regardless of
// series length. The body accumulates in a pooled buffer (see
// reset/release).
type swingStream struct {
	epsilon  float64
	absolute bool

	count     int // points in the open segment
	intercept float64
	sLow      float64
	sHigh     float64

	segments int
	body     *sbuf[byte]
}

func newSwingStream(epsilon float64, absolute bool) (StreamKernel, error) {
	return &swingStream{epsilon: epsilon, absolute: absolute, sLow: math.Inf(-1), sHigh: math.Inf(1)}, nil
}

func (k *swingStream) Push(v float64) {
	if k.count == 0 {
		k.count, k.intercept = 1, v
		k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
		return
	}
	tol := k.epsilon * math.Abs(v)
	if k.absolute {
		tol = k.epsilon
	}
	i := float64(k.count) // local index of the incoming point
	newLow := math.Max(k.sLow, (v-tol-k.intercept)/i)
	newHigh := math.Min(k.sHigh, (v+tol-k.intercept)/i)
	if k.count < maxSegmentLen && newLow <= newHigh {
		k.count, k.sLow, k.sHigh = k.count+1, newLow, newHigh
		return
	}
	k.emit()
	k.count, k.intercept = 1, v
	k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
}

func (k *swingStream) emit() {
	slope := 0.0
	if k.count >= 2 {
		slope = (k.sLow + k.sHigh) / 2
	}
	if k.body == nil {
		k.body = bytePool.get(256)
	}
	var scratch [18]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(k.count))
	binary.LittleEndian.PutUint64(scratch[2:10], math.Float64bits(slope))
	binary.LittleEndian.PutUint64(scratch[10:], math.Float64bits(k.intercept))
	k.body.s = append(k.body.s, scratch[:]...)
	k.segments++
}

func (k *swingStream) Finish() ([]byte, int) {
	k.emit()
	return k.body.s, k.segments
}

// AppendFinish implements FinishAppender: the accumulated body is copied
// onto dst in one append, so closing a stream touches no fresh memory.
func (k *swingStream) AppendFinish(dst []byte) ([]byte, int) {
	k.emit()
	return append(dst, k.body.s...), k.segments
}

// reset rewinds the kernel for a fresh series, keeping its body buffer.
func (k *swingStream) reset() {
	k.count, k.intercept = 0, 0
	k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
	k.segments = 0
	if k.body != nil {
		k.body.s = k.body.s[:0]
	}
}

// release returns the body buffer to the pool; the kernel must not be used
// afterwards.
func (k *swingStream) release() {
	bytePool.put(k.body)
	k.body = nil
}

func (k *swingStream) Segments() int { return k.segments }
func (k *swingStream) Pending() int  { return k.count }

func swingDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, allocHint(count))
	pos := 0
	for len(values) < count {
		if pos+18 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		n := int(binary.LittleEndian.Uint16(body[pos : pos+2]))
		slope := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+2 : pos+10]))
		intercept := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+10 : pos+18]))
		pos += 18
		if n == 0 || len(values)+n > count {
			return nil, errors.New("compress: corrupt Swing segment length")
		}
		for i := 0; i < n; i++ {
			values = append(values, intercept+slope*float64(i))
		}
	}
	return values, nil
}

// swingValues replays Swing segments incrementally: the carried state is one
// segment (its remaining length, line coefficients, and local index).
type swingValues struct {
	body      []byte
	total     int
	pos       int
	remaining int
	segLeft   int
	idx       int // local index within the open segment
	slope     float64
	intercept float64
}

func swingDecodeStream(body []byte, count int) (ValueStream, error) {
	return &swingValues{body: body, total: count, remaining: count}, nil
}

// rewind restarts the replay from the first value (see valueRewinder).
func (p *swingValues) rewind() {
	p.pos, p.remaining, p.segLeft, p.idx = 0, p.total, 0, 0
	p.slope, p.intercept = 0, 0
}

func (p *swingValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.segLeft == 0 {
			if p.pos+18 > len(p.body) {
				return n, io.ErrUnexpectedEOF
			}
			seg := int(binary.LittleEndian.Uint16(p.body[p.pos : p.pos+2]))
			p.slope = math.Float64frombits(binary.LittleEndian.Uint64(p.body[p.pos+2 : p.pos+10]))
			p.intercept = math.Float64frombits(binary.LittleEndian.Uint64(p.body[p.pos+10 : p.pos+18]))
			p.pos += 18
			if seg == 0 || seg > p.remaining {
				return n, errors.New("compress: corrupt Swing segment length")
			}
			p.segLeft = seg
			p.idx = 0
		}
		dst[n] = p.intercept + p.slope*float64(p.idx)
		n++
		p.idx++
		p.segLeft--
		p.remaining--
	}
	return n, nil
}
