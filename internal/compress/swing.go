package compress

import (
	"errors"
	"math"

	"lossyts/internal/timeseries"
)

// Swing implements the Swing filter (Elmeleegy et al., PVLDB 2009) with a
// pointwise relative error bound. Each segment is a line anchored at the
// segment's first value; upper and lower slope bounds are narrowed as
// points arrive, and when they cross, the segment is emitted. Following
// ModelarDB (the implementation the paper uses), the emitted slope is the
// mean of the upper and lower bounding lines (§3.2). The segment wire form
// is the shared line layer (line.go), which CAMEO emits too.
//
// Absolute switches to the classic absolute bound |v − v̂| ≤ ε (used by the
// ablation benches); the paper's evaluation uses the relative bound.
type Swing struct {
	Absolute bool
}

// Method returns MethodSwing.
func (Swing) Method() Method { return MethodSwing }

func init() {
	Register(Registration{
		Method:       MethodSwing,
		Code:         2,
		Lossy:        true,
		New:          func() (Compressor, error) { return Swing{}, nil },
		Decode:       lineDecode,
		NewStream:    newSwingStream,
		DecodeStream: swingDecodeStream,
	})
}

// Compress encodes s as linear segments under the relative bound. The batch
// path drives the same streaming kernel as StreamEncoder, so both produce
// identical bytes by construction.
func (sw Swing) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	k := &swingStream{epsilon: epsilon, absolute: sw.Absolute, sLow: math.Inf(-1), sHigh: math.Inf(1)}
	return kernelCompress(MethodSwing, epsilon, s, k)
}

// swingStream is Swing's incremental kernel: the open segment's anchor
// intercept and the narrowing slope corridor — O(1) state regardless of
// series length. The body accumulates in the shared line emitter's pooled
// buffer (see reset/release).
type swingStream struct {
	lineEmitter
	epsilon  float64
	absolute bool

	count     int // points in the open segment
	intercept float64
	sLow      float64
	sHigh     float64
}

func newSwingStream(epsilon float64, absolute bool) (StreamKernel, error) {
	return &swingStream{epsilon: epsilon, absolute: absolute, sLow: math.Inf(-1), sHigh: math.Inf(1)}, nil
}

func (k *swingStream) Push(v float64) {
	if k.count == 0 {
		k.count, k.intercept = 1, v
		k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
		return
	}
	tol := k.epsilon * math.Abs(v)
	if k.absolute {
		tol = k.epsilon
	}
	i := float64(k.count) // local index of the incoming point
	newLow := math.Max(k.sLow, (v-tol-k.intercept)/i)
	newHigh := math.Min(k.sHigh, (v+tol-k.intercept)/i)
	if k.count < maxSegmentLen && newLow <= newHigh {
		k.count, k.sLow, k.sHigh = k.count+1, newLow, newHigh
		return
	}
	k.emitOpen()
	k.count, k.intercept = 1, v
	k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
}

// emitOpen writes the open segment through the shared line emitter.
func (k *swingStream) emitOpen() {
	slope := 0.0
	if k.count >= 2 {
		slope = (k.sLow + k.sHigh) / 2
	}
	k.emit(k.count, slope, k.intercept)
}

func (k *swingStream) Finish() ([]byte, int) {
	k.emitOpen()
	return k.bytes(), k.segments
}

// AppendFinish implements FinishAppender: the accumulated body is copied
// onto dst in one append, so closing a stream touches no fresh memory.
func (k *swingStream) AppendFinish(dst []byte) ([]byte, int) {
	k.emitOpen()
	return k.appendBody(dst), k.segments
}

// reset rewinds the kernel for a fresh series, keeping its body buffer.
func (k *swingStream) reset() {
	k.count, k.intercept = 0, 0
	k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
	k.resetBody()
}

// release returns the body buffer to the pool; the kernel must not be used
// afterwards.
func (k *swingStream) release() { k.releaseBody() }

func (k *swingStream) Segments() int { return k.segments }
func (k *swingStream) Pending() int  { return k.count }

func swingDecodeStream(body []byte, count int) (ValueStream, error) {
	return newLineValues(body, count), nil
}
