package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"

	"lossyts/internal/timeseries"
)

// Swing implements the Swing filter (Elmeleegy et al., PVLDB 2009) with a
// pointwise relative error bound. Each segment is a line anchored at the
// segment's first value; upper and lower slope bounds are narrowed as
// points arrive, and when they cross, the segment is emitted. Following
// ModelarDB (the implementation the paper uses), the emitted slope is the
// mean of the upper and lower bounding lines (§3.2).
//
// Absolute switches to the classic absolute bound |v − v̂| ≤ ε (used by the
// ablation benches); the paper's evaluation uses the relative bound.
type Swing struct {
	Absolute bool
}

// Method returns MethodSwing.
func (Swing) Method() Method { return MethodSwing }

func init() {
	Register(Registration{
		Method: MethodSwing,
		Code:   2,
		New:    func() (Compressor, error) { return Swing{}, nil },
		Decode: swingDecode,
	})
}

// Compress encodes s as linear segments under the relative bound.
func (sw Swing) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	var body bytes.Buffer
	if err := EncodeHeader(&body, MethodSwing, s); err != nil {
		return nil, err
	}
	segments := 0
	emit := func(n int, slope, intercept float64) {
		var scratch [18]byte
		binary.LittleEndian.PutUint16(scratch[:2], uint16(n))
		binary.LittleEndian.PutUint64(scratch[2:10], math.Float64bits(slope))
		binary.LittleEndian.PutUint64(scratch[10:], math.Float64bits(intercept))
		body.Write(scratch[:])
		segments++
	}

	var (
		count     int // points in the open segment
		intercept float64
		sLow      = math.Inf(-1)
		sHigh     = math.Inf(1)
	)
	finalSlope := func() float64 {
		if count < 2 {
			return 0
		}
		return (sLow + sHigh) / 2
	}
	for _, v := range s.Values {
		if count == 0 {
			count, intercept = 1, v
			sLow, sHigh = math.Inf(-1), math.Inf(1)
			continue
		}
		tol := epsilon * math.Abs(v)
		if sw.Absolute {
			tol = epsilon
		}
		k := float64(count) // local index of the incoming point
		newLow := math.Max(sLow, (v-tol-intercept)/k)
		newHigh := math.Min(sHigh, (v+tol-intercept)/k)
		if count < maxSegmentLen && newLow <= newHigh {
			count, sLow, sHigh = count+1, newLow, newHigh
			continue
		}
		emit(count, finalSlope(), intercept)
		count, intercept = 1, v
		sLow, sHigh = math.Inf(-1), math.Inf(1)
	}
	emit(count, finalSlope(), intercept)
	return Finish(MethodSwing, epsilon, s, body.Bytes(), segments)
}

func swingDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, count)
	pos := 0
	for len(values) < count {
		if pos+18 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		n := int(binary.LittleEndian.Uint16(body[pos : pos+2]))
		slope := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+2 : pos+10]))
		intercept := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+10 : pos+18]))
		pos += 18
		if n == 0 || len(values)+n > count {
			return nil, errors.New("compress: corrupt Swing segment length")
		}
		for i := 0; i < n; i++ {
			values = append(values, intercept+slope*float64(i))
		}
	}
	return values, nil
}
