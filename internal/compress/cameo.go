package compress

import (
	"errors"
	"math"

	"lossyts/internal/features"
	"lossyts/internal/timeseries"
)

// CAMEO implements CAMEO-style autocorrelation-aware line simplification
// (Muñiz-Cuza, Jensen, Thomsen — "CAMEO: Autocorrelation-Preserving Line
// Simplification for Lossy Time Series Compression", same group as the
// source paper). Like Swing it fits maximal line segments inside a
// pointwise corridor, but the corridor width is adapted online so the
// reconstruction preserves the autocorrelation function: two exact
// streaming ACF trackers (features.StreamACF) follow the original and the
// reconstructed stream, and whenever the worst-lag ACF deviation
// approaches the bound the working tolerance α·ε·|v| is tightened (α
// halves, floor 1/8); when the deviation is comfortably small the
// tolerance relaxes back toward the full ε (α doubles, cap 1). Since
// α ≤ 1 the pointwise relative bound of Definition 4 always holds; the
// ACF adaptation only ever spends *less* than the permitted error.
//
// The segment wire form is the shared line layer (line.go) — identical
// grammar to Swing, decoded by the same path.
type CAMEO struct {
	// Absolute switches to the classic absolute bound |v − v̂| ≤ ε.
	Absolute bool
}

// MethodCAMEO identifies the CAMEO compressor.
const MethodCAMEO Method = "CAMEO"

// Method returns MethodCAMEO.
func (CAMEO) Method() Method { return MethodCAMEO }

func init() {
	Register(Registration{
		Method:       MethodCAMEO,
		Code:         6,
		Lossy:        true,
		New:          func() (Compressor, error) { return CAMEO{}, nil },
		Decode:       lineDecode,
		NewStream:    newCameoStream,
		DecodeStream: cameoDecodeStream,
	})
}

// CAMEO adaptation parameters.
const (
	cameoMaxLag   = 8       // largest ACF lag the trackers preserve
	cameoAlphaMin = 1.0 / 8 // floor of the tolerance scale
)

// Compress encodes s as ACF-aware linear segments under the relative bound.
// The batch path drives the same streaming kernel as StreamEncoder, so both
// produce identical bytes by construction.
func (c CAMEO) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	k := newCameoKernel(epsilon, c.Absolute)
	return kernelCompress(MethodCAMEO, epsilon, s, k)
}

// cameoStream is CAMEO's incremental kernel: the open segment's corridor
// (as Swing), the segment's original values in a pooled buffer, and the two
// O(maxLag) ACF trackers — bounded state regardless of series length.
type cameoStream struct {
	lineEmitter
	epsilon  float64
	absolute bool
	alpha    float64

	count     int // points in the open segment
	intercept float64
	sLow      float64
	sHigh     float64

	orig     *sbuf[float64] // open segment's original values
	acfOrig  *features.StreamACF
	acfRecon *features.StreamACF
	bufOrig  []float64 // ACF scratch, constructor-allocated
	bufRecon []float64
}

func newCameoStream(epsilon float64, absolute bool) (StreamKernel, error) {
	return newCameoKernel(epsilon, absolute), nil
}

func newCameoKernel(epsilon float64, absolute bool) *cameoStream {
	return &cameoStream{
		epsilon:  epsilon,
		absolute: absolute,
		alpha:    1,
		sLow:     math.Inf(-1),
		sHigh:    math.Inf(1),
		orig:     floatPool.get(256),
		acfOrig:  features.NewStreamACF(cameoMaxLag),
		acfRecon: features.NewStreamACF(cameoMaxLag),
		bufOrig:  make([]float64, cameoMaxLag),
		bufRecon: make([]float64, cameoMaxLag),
	}
}

func (k *cameoStream) Push(v float64) {
	if k.count == 0 {
		k.count, k.intercept = 1, v
		k.orig.s = append(k.orig.s[:0], v)
		k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
		return
	}
	tol := k.alpha * k.epsilon * math.Abs(v)
	if k.absolute {
		tol = k.alpha * k.epsilon
	}
	i := float64(k.count) // local index of the incoming point
	newLow := math.Max(k.sLow, (v-tol-k.intercept)/i)
	newHigh := math.Min(k.sHigh, (v+tol-k.intercept)/i)
	if k.count < maxSegmentLen && newLow <= newHigh {
		k.count, k.sLow, k.sHigh = k.count+1, newLow, newHigh
		k.orig.s = append(k.orig.s, v)
		return
	}
	k.emitOpen()
	k.count, k.intercept = 1, v
	k.orig.s = append(k.orig.s[:0], v)
	k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
}

// emitOpen closes the open segment: the line is emitted through the shared
// line layer, both ACF trackers advance over the segment (original values
// vs the line's reconstruction), and the tolerance scale α adapts to the
// worst-lag ACF deviation.
func (k *cameoStream) emitOpen() {
	slope := 0.0
	if k.count >= 2 {
		slope = (k.sLow + k.sHigh) / 2
	}
	k.emit(k.count, slope, k.intercept)
	for i, v := range k.orig.s {
		k.acfOrig.Push(v)
		k.acfRecon.Push(k.intercept + slope*float64(i))
	}
	k.orig.s = k.orig.s[:0]
	k.adapt()
}

// adapt rescales α against the current ACF deviation: halve (floor 1/8)
// when the deviation exceeds ε, double (cap 1) when it is below ε/4.
func (k *cameoStream) adapt() {
	ao := k.acfOrig.Into(k.bufOrig)
	ar := k.acfRecon.Into(k.bufRecon)
	dev := 0.0
	for i := range ao {
		if d := math.Abs(ao[i] - ar[i]); d > dev {
			dev = d
		}
	}
	switch {
	case dev > k.epsilon:
		if k.alpha /= 2; k.alpha < cameoAlphaMin {
			k.alpha = cameoAlphaMin
		}
	case dev < k.epsilon/4:
		if k.alpha *= 2; k.alpha > 1 {
			k.alpha = 1
		}
	}
}

func (k *cameoStream) Finish() ([]byte, int) {
	k.emitOpen()
	return k.bytes(), k.segments
}

// AppendFinish implements FinishAppender: the accumulated body is copied
// onto dst in one append, so closing a stream touches no fresh memory.
func (k *cameoStream) AppendFinish(dst []byte) ([]byte, int) {
	k.emitOpen()
	return k.appendBody(dst), k.segments
}

// reset rewinds the kernel for a fresh series, keeping all scratch.
func (k *cameoStream) reset() {
	k.alpha = 1
	k.count, k.intercept = 0, 0
	k.sLow, k.sHigh = math.Inf(-1), math.Inf(1)
	k.orig.s = k.orig.s[:0]
	k.acfOrig.Reset()
	k.acfRecon.Reset()
	k.resetBody()
}

// release returns the pooled buffers; the kernel must not be used afterwards.
func (k *cameoStream) release() {
	floatPool.put(k.orig)
	k.orig = nil
	k.releaseBody()
}

func (k *cameoStream) Segments() int { return k.segments }
func (k *cameoStream) Pending() int  { return k.count }

func cameoDecodeStream(body []byte, count int) (ValueStream, error) {
	return newLineValues(body, count), nil
}
