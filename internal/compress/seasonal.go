package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"lossyts/internal/timeseries"
)

// SeasonalPMC is the compressor the paper's §5 calls for: a lossy method
// designed to preserve the characteristics that matter for forecasting
// accuracy. Its analysis (Table 4, Figure 5) shows seasonal strength and
// seasonal autocorrelation survive compression best when the periodic
// structure is kept intact, so SeasonalPMC stores the seasonal profile of
// the series exactly (one float32 per phase) and applies PMC-Mean to the
// residuals only. The seasonal component therefore survives *any* error
// bound, while the residual — which carries most of the entropy but little
// of the forecastable structure — absorbs the loss.
//
// The pointwise relative bound on the original values still holds:
// |v − (profile + residualMean)| ≤ ε·|v| is enforced per point during the
// residual window intersection.
type SeasonalPMC struct {
	// Period is the seasonal period in steps (required, ≥ 2).
	Period int
}

// MethodSeasonalPMC identifies the seasonal-profile compressor.
const MethodSeasonalPMC Method = "S-PMC"

// Method returns MethodSeasonalPMC.
func (SeasonalPMC) Method() Method { return MethodSeasonalPMC }

func init() {
	Register(Registration{
		Method: MethodSeasonalPMC,
		Code:   5,
		New: func() (Compressor, error) {
			return nil, fmt.Errorf("compress: SeasonalPMC needs a period; construct compress.SeasonalPMC{Period: p} directly")
		},
		Decode: seasonalPMCDecode,
		// NewStream stays nil: the phase-mean profile needs a whole-series
		// pass, so there is no bounded-memory encoder. Streaming callers wrap
		// the batch compressor with NewBufferedStreamEncoder instead.
		DecodeStream: seasonalPMCDecodeStream,
	})
}

// Compress encodes s as a stored seasonal profile plus PMC segments over
// the residuals, under the pointwise relative bound epsilon.
func (sp SeasonalPMC) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	m := sp.Period
	if m < 2 {
		return nil, errors.New("compress: SeasonalPMC needs a period of at least 2")
	}
	if m > math.MaxUint16 {
		return nil, fmt.Errorf("compress: period %d too large", m)
	}
	if s.Len() < 2*m {
		return nil, fmt.Errorf("compress: series of %d points shorter than two periods", s.Len())
	}
	// Phase-mean profile, stored as float32 (the decoder's exact values).
	sums := make([]float64, m)
	counts := make([]float64, m)
	for i, v := range s.Values {
		sums[i%m] += v
		counts[i%m]++
	}
	profile := make([]float32, m)
	for p := range profile {
		profile[p] = float32(sums[p] / counts[p])
	}

	var body bytes.Buffer
	if err := EncodeHeader(&body, MethodSeasonalPMC, s); err != nil {
		return nil, err
	}
	var scratch [10]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(m))
	body.Write(scratch[:2])
	for _, p := range profile {
		binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(p))
		body.Write(scratch[:4])
	}

	segments := 0
	emit := func(n int, mean float64) {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(n))
		binary.LittleEndian.PutUint64(scratch[2:], math.Float64bits(mean))
		body.Write(scratch[:])
		segments++
	}
	var (
		count int
		sum   float64
		lower = math.Inf(-1)
		upper = math.Inf(1)
	)
	for i, v := range s.Values {
		tol := epsilon * math.Abs(v)
		resid := v - float64(profile[i%m])
		newLower := math.Max(lower, resid-tol)
		newUpper := math.Min(upper, resid+tol)
		newSum := sum + resid
		newMean := newSum / float64(count+1)
		if count < maxSegmentLen && newLower <= newMean && newMean <= newUpper {
			count, sum, lower, upper = count+1, newSum, newLower, newUpper
			continue
		}
		emit(count, quantizeToInterval(sum/float64(count), lower, upper))
		count, sum = 1, resid
		lower, upper = resid-tol, resid+tol
	}
	emit(count, quantizeToInterval(sum/float64(count), lower, upper))
	return Finish(MethodSeasonalPMC, epsilon, s, body.Bytes(), segments)
}

// seasonalProfile parses the stored phase profile, returning it together
// with the offset of the residual segments that follow.
func seasonalProfile(body []byte) (profile []float64, pos int, err error) {
	if len(body) < 2 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	m := int(binary.LittleEndian.Uint16(body[:2]))
	pos = 2
	if m < 2 || pos+4*m > len(body) {
		return nil, 0, errors.New("compress: corrupt SeasonalPMC profile")
	}
	profile = make([]float64, m)
	for p := range profile {
		profile[p] = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[pos : pos+4])))
		pos += 4
	}
	return profile, pos, nil
}

func seasonalPMCDecode(body []byte, count int) ([]float64, error) {
	profile, pos, err := seasonalProfile(body)
	if err != nil {
		return nil, err
	}
	m := len(profile)
	values := make([]float64, 0, allocHint(count))
	for len(values) < count {
		if pos+10 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		n := int(binary.LittleEndian.Uint16(body[pos : pos+2]))
		mean := math.Float64frombits(binary.LittleEndian.Uint64(body[pos+2 : pos+10]))
		pos += 10
		if n == 0 || len(values)+n > count {
			return nil, errors.New("compress: corrupt SeasonalPMC segment length")
		}
		for i := 0; i < n; i++ {
			values = append(values, profile[len(values)%m]+mean)
		}
	}
	return values, nil
}

// seasonalValues replays SeasonalPMC incrementally: the carried state is the
// phase profile (O(period)), the open residual segment, and the absolute
// position that selects the phase.
type seasonalValues struct {
	body      []byte
	pos       int
	remaining int
	profile   []float64
	absIdx    int // values produced so far, mod period = phase
	segLeft   int
	mean      float64
}

func seasonalPMCDecodeStream(body []byte, count int) (ValueStream, error) {
	profile, pos, err := seasonalProfile(body)
	if err != nil {
		return nil, err
	}
	return &seasonalValues{body: body, pos: pos, remaining: count, profile: profile}, nil
}

func (p *seasonalValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.segLeft == 0 {
			if p.pos+10 > len(p.body) {
				return n, io.ErrUnexpectedEOF
			}
			seg := int(binary.LittleEndian.Uint16(p.body[p.pos : p.pos+2]))
			p.mean = math.Float64frombits(binary.LittleEndian.Uint64(p.body[p.pos+2 : p.pos+10]))
			p.pos += 10
			if seg == 0 || seg > p.remaining {
				return n, errors.New("compress: corrupt SeasonalPMC segment length")
			}
			p.segLeft = seg
		}
		dst[n] = p.profile[p.absIdx%len(p.profile)] + p.mean
		n++
		p.absIdx++
		p.segLeft--
		p.remaining--
	}
	return n, nil
}
