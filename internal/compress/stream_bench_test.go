package compress

import (
	"testing"

	"lossyts/internal/timeseries"
)

// The benchmarks below pair the batch and chunked-streaming paths over the
// same series so -benchmem shows what each plane allocates. The streamed
// payload is byte-identical to the batch one (TestStreamMatchesBatch); only
// the memory profile differs.

func benchSeries(n int) *timeseries.Series { return synthSeries(n, 63) }

func BenchmarkBatchCompress(b *testing.B) {
	s := benchSeries(20000)
	comp, _ := New(MethodPMC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Compress(s, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamEncode(b *testing.B) {
	s := benchSeries(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := NewStreamEncoder(MethodPMC, s, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		src := s.Chunks(512)
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			if err := enc.PushChunk(c); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := enc.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchDecompress(b *testing.B) {
	s := benchSeries(20000)
	comp, _ := New(MethodPMC)
	c, err := comp.Compress(s, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamDecode(b *testing.B) {
	s := benchSeries(20000)
	comp, _ := New(MethodPMC)
	c, err := comp.Compress(s, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewStreamDecoder(c, 512)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := dec.Next(); !ok {
				break
			}
		}
		if err := dec.Err(); err != nil {
			b.Fatal(err)
		}
	}
}

// The per-kernel benchmarks below measure one full codec op — fresh encoder
// (or decoder), all points pushed (or drained), payload finished — for each
// of the four stream kernels separately, the unit cost the serving plane
// pays per cache-missed request. ns/op divided by the point count is the
// ns/point figure streambench reports.

const kernelBenchPoints = 20000

func BenchmarkKernelCompress(b *testing.B) {
	s := benchSeries(kernelBenchPoints)
	for _, m := range streamMethods() {
		b.Run(string(m), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(s.Len() * 8))
			for i := 0; i < b.N; i++ {
				enc, err := NewStreamEncoder(m, s, 0.05)
				if err != nil {
					b.Fatal(err)
				}
				src := s.Chunks(512)
				for {
					c, ok := src.Next()
					if !ok {
						break
					}
					if err := enc.PushChunk(c); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := enc.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The Raw variants isolate the kernel layer — the per-point encode/decode
// loops — from the shared gzip stage, whose cost is fixed by the wire format
// (the paper's sizes are .gz byte counts, at the default level). They
// measure the steady state the rework targets: one encoder serving many
// series through Reset/AppendFinish, one value stream replayed through
// rewind — zero heap allocation per op (see alloc_test.go).

func BenchmarkKernelEncodeRaw(b *testing.B) {
	s := benchSeries(kernelBenchPoints)
	for _, m := range streamMethods() {
		b.Run(string(m), func(b *testing.B) {
			enc, err := NewStreamEncoder(m, s, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			fa, ok := enc.kernel.(FinishAppender)
			if !ok {
				b.Fatalf("%s kernel lacks AppendFinish", m)
			}
			body := GetBytes(4096)
			b.Cleanup(func() { PutBytes(body); enc.Release() })
			b.ReportAllocs()
			b.SetBytes(int64(s.Len() * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := enc.Reset(s.Start, s.Interval); err != nil {
					b.Fatal(err)
				}
				for _, v := range s.Values {
					enc.kernel.Push(v)
				}
				body, _ = fa.AppendFinish(body[:0])
				if len(body) == 0 {
					b.Fatal("empty body")
				}
			}
		})
	}
}

func BenchmarkKernelDecodeRaw(b *testing.B) {
	s := benchSeries(kernelBenchPoints)
	for _, m := range streamMethods() {
		b.Run(string(m), func(b *testing.B) {
			comp, err := New(m)
			if err != nil {
				b.Fatal(err)
			}
			c, err := comp.Compress(s, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			raw, err := GunzipBytes(c.Payload)
			if err != nil {
				b.Fatal(err)
			}
			hdr, body, err := decodeHeader(raw)
			if err != nil {
				b.Fatal(err)
			}
			reg, err := lookup(m)
			if err != nil || reg.DecodeStream == nil {
				b.Fatal("no stream decoder")
			}
			vs, err := reg.DecodeStream(body, int(hdr.count))
			if err != nil {
				b.Fatal(err)
			}
			rw, ok := vs.(valueRewinder)
			if !ok {
				b.Fatalf("%s value stream lacks rewind", m)
			}
			var buf [512]float64
			b.ReportAllocs()
			b.SetBytes(int64(s.Len() * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rw.rewind()
				total := 0
				for total < int(hdr.count) {
					n, err := vs.Next(buf[:])
					total += n
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func BenchmarkKernelDecompress(b *testing.B) {
	s := benchSeries(kernelBenchPoints)
	for _, m := range streamMethods() {
		b.Run(string(m), func(b *testing.B) {
			comp, err := New(m)
			if err != nil {
				b.Fatal(err)
			}
			c, err := comp.Compress(s, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(s.Len() * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := NewStreamDecoder(c, 512)
				if err != nil {
					b.Fatal(err)
				}
				for {
					if _, ok := dec.Next(); !ok {
						break
					}
				}
				if err := dec.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
