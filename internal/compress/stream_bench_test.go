package compress

import (
	"testing"

	"lossyts/internal/timeseries"
)

// The benchmarks below pair the batch and chunked-streaming paths over the
// same series so -benchmem shows what each plane allocates. The streamed
// payload is byte-identical to the batch one (TestStreamMatchesBatch); only
// the memory profile differs.

func benchSeries(n int) *timeseries.Series { return synthSeries(n, 63) }

func BenchmarkBatchCompress(b *testing.B) {
	s := benchSeries(20000)
	comp, _ := New(MethodPMC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comp.Compress(s, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamEncode(b *testing.B) {
	s := benchSeries(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := NewStreamEncoder(MethodPMC, s, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		src := s.Chunks(512)
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			if err := enc.PushChunk(c); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := enc.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchDecompress(b *testing.B) {
	s := benchSeries(20000)
	comp, _ := New(MethodPMC)
	c, err := comp.Compress(s, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamDecode(b *testing.B) {
	s := benchSeries(20000)
	comp, _ := New(MethodPMC)
	c, err := comp.Compress(s, 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewStreamDecoder(c, 512)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := dec.Next(); !ok {
				break
			}
		}
		if err := dec.Err(); err != nil {
			b.Fatal(err)
		}
	}
}
