package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"lossyts/internal/timeseries"
)

// SZ implements an SZ-style error-bounded lossy compressor (Liang et al.,
// Big Data 2018; the paper uses SZ 2.1 via libpressio). The series is split
// into non-overlapping equal-sized blocks; for each block the best-fit
// predictor is chosen among the classic Lorenzo predictor (previous value),
// the second-order Lorenzo predictor, and a block-local linear regression.
// Prediction residuals are quantised on a linear scale, the quantisation
// codes are Huffman-encoded, and gzip is applied as the final lossless
// stage — the same pipeline as SZ 2.1 (§3.2).
//
// The pointwise relative bound is realised as in SZ's point-wise-relative
// mode: each block uses an absolute precision derived from the smallest
// non-zero magnitude in the block, so the bound holds for every point.
// Zero values and residuals outside the quantisation range are stored
// verbatim ("unpredictable" values in SZ terminology).
type SZ struct {
	// BlockSize is the number of points per block (default 128).
	BlockSize int
	// Absolute switches to the classic absolute bound |v − v̂| ≤ ε (used by
	// the ablation benches); the paper's evaluation uses the relative bound.
	Absolute bool
}

// NewSZ returns an SZ compressor with the default block size.
func NewSZ() SZ { return SZ{BlockSize: 128} }

// Method returns MethodSZ.
func (SZ) Method() Method { return MethodSZ }

func init() {
	Register(Registration{
		Method: MethodSZ,
		Code:   3,
		New:    func() (Compressor, error) { return NewSZ(), nil },
		Decode: szDecode,
	})
}

// SZ block predictor modes.
const (
	szModeLorenzo    = 0 // predict with the previous decompressed value
	szModeLorenzo2   = 1 // predict with 2·d[i-1] − d[i-2]
	szModeRegression = 2 // predict with a block-local line (float32 coefficients)
	szModeConstant   = 3 // the whole block is one repeated exact value
)

const szQuantRadius = 32767 // codes in [-radius, radius]; stored code 0 marks an exception

// Compress encodes s under the pointwise relative bound epsilon.
func (z SZ) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	bs := z.BlockSize
	if bs <= 0 {
		bs = 128
	}
	if bs > math.MaxUint16 {
		return nil, fmt.Errorf("compress: SZ block size %d too large", bs)
	}
	var body bytes.Buffer
	if err := EncodeHeader(&body, MethodSZ, s); err != nil {
		return nil, err
	}
	n := s.Len()
	nblocks := (n + bs - 1) / bs
	var scratch [8]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(bs))
	body.Write(scratch[:2])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(nblocks))
	body.Write(scratch[:4])

	var (
		codes      []uint16  // quantisation codes for all non-constant blocks
		exceptions []float64 // verbatim values, in order of occurrence
		decomp     = make([]float64, 0, n)
	)
	for b := 0; b < nblocks; b++ {
		lo := b * bs
		hi := lo + bs
		if hi > n {
			hi = n
		}
		block := s.Values[lo:hi]
		if constantBlock(block) {
			body.WriteByte(szModeConstant)
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(block[0]))
			body.Write(scratch[:])
			for range block {
				decomp = append(decomp, block[0])
			}
			continue
		}
		mode, slope, intercept := szSelectPredictor(block, decomp)
		precision := szBlockPrecision(block, epsilon)
		if z.Absolute {
			precision = roundDown32(epsilon)
		}
		body.WriteByte(byte(mode))
		binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(precision))
		body.Write(scratch[:4])
		if mode == szModeRegression {
			binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(slope))
			body.Write(scratch[:4])
			binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(intercept))
			body.Write(scratch[:4])
		}
		p := float64(precision)
		for k, v := range block {
			pred := szPredict(mode, float64(slope), float64(intercept), k, decomp)
			code, recon, ok := szQuantize(v, pred, p, epsilon, z.Absolute)
			if !ok {
				codes = append(codes, 0)
				exceptions = append(exceptions, v)
				decomp = append(decomp, v)
				continue
			}
			codes = append(codes, uint16(code+szQuantRadius+1))
			decomp = append(decomp, recon)
		}
	}

	// Quantisation codes: Huffman when possible, raw fallback otherwise.
	if len(codes) > 0 {
		if enc, err := HuffmanEncode(codes); err == nil {
			body.WriteByte(0)
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(enc)))
			body.Write(scratch[:4])
			body.Write(enc)
		} else {
			body.WriteByte(1)
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(codes)))
			body.Write(scratch[:4])
			for _, c := range codes {
				binary.LittleEndian.PutUint16(scratch[:2], c)
				body.Write(scratch[:2])
			}
		}
	} else {
		body.WriteByte(2) // no codes at all (every block constant)
	}
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(exceptions)))
	body.Write(scratch[:4])
	for _, v := range exceptions {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		body.Write(scratch[:])
	}
	// For Figure 3's segment counting, SZ's quantisation produces a
	// staircase; each run of identical reconstructed values is one segment.
	// Tight bounds quantise finely (many runs), loose bounds coarsely
	// (fewer runs), mirroring the paper's SZ trend.
	segments := 1
	for i := 1; i < len(decomp); i++ {
		if decomp[i] != decomp[i-1] {
			segments++
		}
	}
	return Finish(MethodSZ, epsilon, s, body.Bytes(), segments)
}

func constantBlock(block []float64) bool {
	for _, v := range block[1:] {
		if v != block[0] {
			return false
		}
	}
	return true
}

// szBlockPrecision returns the block's absolute precision: epsilon times the
// smallest non-zero magnitude, rounded down to float32 so the encoder and
// decoder share the exact same value and the relative bound still holds.
func szBlockPrecision(block []float64, epsilon float64) float32 {
	minAbs := math.Inf(1)
	for _, v := range block {
		if a := math.Abs(v); a > 0 && a < minAbs {
			minAbs = a
		}
	}
	if math.IsInf(minAbs, 1) {
		return 0
	}
	return roundDown32(epsilon * minAbs)
}

// roundDown32 converts to float32 rounding toward zero, so a stored
// precision never exceeds the intended bound.
func roundDown32(p float64) float32 {
	f := float32(p)
	for float64(f) > p {
		f = math.Nextafter32(f, 0)
	}
	return f
}

// szSelectPredictor picks the block predictor with the smallest total
// absolute residual, estimated on the raw values (as SZ does when sampling).
func szSelectPredictor(block []float64, prior []float64) (mode int, slope, intercept float32) {
	var lorenzo, lorenzo2, reg float64
	// Linear fit of the block: index -> value.
	sl, ic := fitLine(block)
	prev := func(k int) float64 {
		if k > 0 {
			return block[k-1]
		}
		if len(prior) > 0 {
			return prior[len(prior)-1]
		}
		return 0
	}
	prev2 := func(k int) float64 {
		if k > 1 {
			return block[k-2]
		}
		if k == 1 && len(prior) > 0 {
			return prior[len(prior)-1]
		}
		if len(prior) > 1 {
			return prior[len(prior)-2]
		}
		return 0
	}
	for k, v := range block {
		lorenzo += math.Abs(v - prev(k))
		lorenzo2 += math.Abs(v - (2*prev(k) - prev2(k)))
		reg += math.Abs(v - (sl*float64(k) + ic))
	}
	switch {
	case reg <= lorenzo && reg <= lorenzo2:
		return szModeRegression, float32(sl), float32(ic)
	case lorenzo2 < lorenzo:
		return szModeLorenzo2, 0, 0
	default:
		return szModeLorenzo, 0, 0
	}
}

// fitLine returns the least-squares slope and intercept of values against
// their indices.
func fitLine(v []float64) (slope, intercept float64) {
	n := float64(len(v))
	if len(v) < 2 {
		if len(v) == 1 {
			return 0, v[0]
		}
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i, y := range v {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// szPredict returns the prediction for local index k given the decompressed
// history so far (decomp holds every decompressed value before this point).
func szPredict(mode int, slope, intercept float64, k int, decomp []float64) float64 {
	switch mode {
	case szModeRegression:
		return slope*float64(k) + intercept
	case szModeLorenzo2:
		if len(decomp) >= 2 {
			return 2*decomp[len(decomp)-1] - decomp[len(decomp)-2]
		}
		fallthrough
	default: // szModeLorenzo
		if len(decomp) >= 1 {
			return decomp[len(decomp)-1]
		}
		return 0
	}
}

// szQuantize maps the residual v−pred to a linear-scale code. It reports
// ok=false when the point must be stored verbatim: zero values (a relative
// bound requires them exact), zero precision, out-of-range codes, or a
// reconstruction that would violate the relative bound.
func szQuantize(v, pred, p, epsilon float64, absolute bool) (code int, recon float64, ok bool) {
	if p <= 0 || (v == 0 && !absolute) {
		return 0, 0, false
	}
	c := math.Round((v - pred) / (2 * p))
	if math.Abs(c) > szQuantRadius || math.IsNaN(c) {
		return 0, 0, false
	}
	code = int(c)
	recon = pred + float64(code)*2*p
	bound := epsilon * math.Abs(v)
	if absolute {
		bound = epsilon
	}
	if math.Abs(recon-v) > bound {
		return 0, 0, false
	}
	return code, recon, true
}

func szDecode(body []byte, count int) ([]float64, error) {
	if len(body) < 6 {
		return nil, io.ErrUnexpectedEOF
	}
	bs := int(binary.LittleEndian.Uint16(body[:2]))
	nblocks := int(binary.LittleEndian.Uint32(body[2:6]))
	pos := 6
	if bs <= 0 || nblocks < 0 {
		return nil, errors.New("compress: corrupt SZ header")
	}
	type blockMeta struct {
		mode             int
		precision        float64
		slope, intercept float64
		constant         float64
		size             int
	}
	blocks := make([]blockMeta, 0, nblocks)
	remaining := count
	ncodes := 0
	for b := 0; b < nblocks; b++ {
		size := bs
		if size > remaining {
			size = remaining
		}
		remaining -= size
		if pos >= len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		m := blockMeta{mode: int(body[pos]), size: size}
		pos++
		switch m.mode {
		case szModeConstant:
			if pos+8 > len(body) {
				return nil, io.ErrUnexpectedEOF
			}
			m.constant = math.Float64frombits(binary.LittleEndian.Uint64(body[pos : pos+8]))
			pos += 8
		case szModeLorenzo, szModeLorenzo2, szModeRegression:
			if pos+4 > len(body) {
				return nil, io.ErrUnexpectedEOF
			}
			m.precision = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[pos : pos+4])))
			pos += 4
			if m.mode == szModeRegression {
				if pos+8 > len(body) {
					return nil, io.ErrUnexpectedEOF
				}
				m.slope = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[pos : pos+4])))
				m.intercept = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[pos+4 : pos+8])))
				pos += 8
			}
			ncodes += size
		default:
			return nil, fmt.Errorf("compress: unknown SZ block mode %d", m.mode)
		}
		blocks = append(blocks, m)
	}
	if remaining != 0 {
		return nil, errors.New("compress: SZ block sizes do not cover the series")
	}
	// Codes.
	if pos >= len(body) {
		return nil, io.ErrUnexpectedEOF
	}
	codeEncoding := body[pos]
	pos++
	var codes []uint16
	switch codeEncoding {
	case 0:
		if pos+4 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		length := int(binary.LittleEndian.Uint32(body[pos : pos+4]))
		pos += 4
		if pos+length > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		var err error
		codes, err = HuffmanDecode(body[pos : pos+length])
		if err != nil {
			return nil, err
		}
		pos += length
	case 1:
		if pos+4 > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		m := int(binary.LittleEndian.Uint32(body[pos : pos+4]))
		pos += 4
		if pos+2*m > len(body) {
			return nil, io.ErrUnexpectedEOF
		}
		codes = make([]uint16, m)
		for i := range codes {
			codes[i] = binary.LittleEndian.Uint16(body[pos : pos+2])
			pos += 2
		}
	case 2:
		// no codes
	default:
		return nil, fmt.Errorf("compress: unknown SZ code encoding %d", codeEncoding)
	}
	if len(codes) != ncodes {
		return nil, fmt.Errorf("compress: SZ expected %d codes, got %d", ncodes, len(codes))
	}
	// Exceptions.
	if pos+4 > len(body) {
		return nil, io.ErrUnexpectedEOF
	}
	nex := int(binary.LittleEndian.Uint32(body[pos : pos+4]))
	pos += 4
	if pos+8*nex > len(body) {
		return nil, io.ErrUnexpectedEOF
	}
	exceptions := make([]float64, nex)
	for i := range exceptions {
		exceptions[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[pos : pos+8]))
		pos += 8
	}
	// Replay.
	decomp := make([]float64, 0, count)
	ci, ei := 0, 0
	for _, m := range blocks {
		if m.mode == szModeConstant {
			for i := 0; i < m.size; i++ {
				decomp = append(decomp, m.constant)
			}
			continue
		}
		for k := 0; k < m.size; k++ {
			stored := codes[ci]
			ci++
			if stored == 0 {
				if ei >= len(exceptions) {
					return nil, errors.New("compress: SZ exception stream exhausted")
				}
				decomp = append(decomp, exceptions[ei])
				ei++
				continue
			}
			code := int(stored) - szQuantRadius - 1
			pred := szPredict(m.mode, m.slope, m.intercept, k, decomp)
			decomp = append(decomp, pred+float64(code)*2*m.precision)
		}
	}
	if ei != len(exceptions) {
		return nil, errors.New("compress: SZ trailing exceptions")
	}
	return decomp, nil
}
