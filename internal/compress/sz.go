package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"lossyts/internal/timeseries"
)

// SZ implements an SZ-style error-bounded lossy compressor (Liang et al.,
// Big Data 2018; the paper uses SZ 2.1 via libpressio). The series is split
// into non-overlapping equal-sized blocks; for each block the best-fit
// predictor is chosen among the classic Lorenzo predictor (previous value),
// the second-order Lorenzo predictor, and a block-local linear regression.
// Prediction residuals are quantised on a linear scale, the quantisation
// codes are Huffman-encoded, and gzip is applied as the final lossless
// stage — the same pipeline as SZ 2.1 (§3.2).
//
// The pointwise relative bound is realised as in SZ's point-wise-relative
// mode: each block uses an absolute precision derived from the smallest
// non-zero magnitude in the block, so the bound holds for every point.
// Zero values and residuals outside the quantisation range are stored
// verbatim ("unpredictable" values in SZ terminology).
type SZ struct {
	// BlockSize is the number of points per block (default 128).
	BlockSize int
	// Absolute switches to the classic absolute bound |v − v̂| ≤ ε (used by
	// the ablation benches); the paper's evaluation uses the relative bound.
	Absolute bool
}

// NewSZ returns an SZ compressor with the default block size.
func NewSZ() SZ { return SZ{BlockSize: 128} }

// Method returns MethodSZ.
func (SZ) Method() Method { return MethodSZ }

func init() {
	Register(Registration{
		Method:       MethodSZ,
		Code:         3,
		Lossy:        true,
		New:          func() (Compressor, error) { return NewSZ(), nil },
		Decode:       szDecode,
		NewStream:    newSZStream,
		DecodeStream: szDecodeStream,
	})
}

// SZ block predictor modes.
const (
	szModeLorenzo    = 0 // predict with the previous decompressed value
	szModeLorenzo2   = 1 // predict with 2·d[i-1] − d[i-2]
	szModeRegression = 2 // predict with a block-local line (float32 coefficients)
	szModeConstant   = 3 // the whole block is one repeated exact value
)

const szQuantRadius = 32767 // codes in [-radius, radius]; stored code 0 marks an exception

// Compress encodes s under the pointwise relative bound epsilon. The batch
// path drives the same streaming kernel as StreamEncoder, so both produce
// identical bytes by construction.
func (z SZ) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	if epsilon < 0 {
		return nil, errors.New("compress: negative error bound")
	}
	bs := z.BlockSize
	if bs <= 0 {
		bs = 128
	}
	if bs > math.MaxUint16 {
		return nil, fmt.Errorf("compress: SZ block size %d too large", bs)
	}
	k := newSZStreamBS(bs, epsilon, z.Absolute)
	return kernelCompress(MethodSZ, epsilon, s, k)
}

// szStream is SZ's incremental kernel. Prediction needs only the last two
// reconstructed values (Lorenzo/Lorenzo2) plus the current block, so the
// carried state is one block buffer, the two-value reconstruction history,
// and the accumulated block metadata. The quantisation codes must be kept
// until Finish — the Huffman table is built over the whole series, exactly
// as SZ 2.1 does — so the kernel holds 2 bytes per point rather than being
// strictly O(block); that is still 4× smaller than the values themselves
// and is the price of byte-identity with the batch format.
type szStream struct {
	quant *UniformQuantiser
	bs    int

	block      []float64 // open (not yet encoded) block
	meta       *sbuf[byte]
	nblocks    int
	codes      *sbuf[uint16]
	exceptions *sbuf[float64]

	hist      [2]float64 // last two reconstructed values
	nhist     int
	lastRecon float64
	segments  int // runs of identical reconstructed values (Figure 3)
}

func newSZStream(epsilon float64, absolute bool) (StreamKernel, error) {
	return newSZStreamBS(NewSZ().BlockSize, epsilon, absolute), nil
}

func newSZStreamBS(bs int, epsilon float64, absolute bool) *szStream {
	return &szStream{
		quant:      NewUniformQuantiser(epsilon, absolute),
		bs:         bs,
		block:      make([]float64, 0, bs),
		meta:       bytePool.get(512),
		codes:      u16Pool.get(1024),
		exceptions: floatPool.get(64),
	}
}

func (k *szStream) Push(v float64) {
	k.block = append(k.block, v)
	if len(k.block) == k.bs {
		k.encodeBlock()
	}
}

// pushRecon records a reconstructed value: it feeds the two-value prediction
// history and the run-based segment count.
func (k *szStream) pushRecon(r float64) {
	if k.nhist == 0 {
		k.segments = 1
	} else if r != k.lastRecon {
		k.segments++
	}
	k.lastRecon = r
	if k.nhist < 2 {
		k.hist[k.nhist] = r
		k.nhist++
	} else {
		k.hist[0], k.hist[1] = k.hist[1], r
	}
}

// prior returns the reconstruction history as a slice for the shared
// predictor helpers, which index it from the end.
func (k *szStream) prior() []float64 { return k.hist[:k.nhist] }

func (k *szStream) encodeBlock() {
	block := k.block
	defer func() { k.block = k.block[:0] }()
	k.nblocks++
	var scratch [8]byte
	if constantBlock(block) {
		k.meta.s = append(k.meta.s, szModeConstant)
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(block[0]))
		k.meta.s = append(k.meta.s, scratch[:]...)
		for range block {
			k.pushRecon(block[0])
		}
		return
	}
	mode, slope, intercept := szSelectPredictor(block, k.prior())
	precision := k.quant.BlockPrecision(block)
	k.meta.s = append(k.meta.s, byte(mode))
	binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(precision))
	k.meta.s = append(k.meta.s, scratch[:4]...)
	if mode == szModeRegression {
		binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(slope))
		k.meta.s = append(k.meta.s, scratch[:4]...)
		binary.LittleEndian.PutUint32(scratch[:4], math.Float32bits(intercept))
		k.meta.s = append(k.meta.s, scratch[:4]...)
	}
	for i, v := range block {
		pred := szPredict(mode, float64(slope), float64(intercept), i, k.prior())
		code, recon, ok := k.quant.Quantise(v, pred)
		if !ok {
			k.codes.s = append(k.codes.s, 0)
			k.exceptions.s = append(k.exceptions.s, v)
			k.pushRecon(v)
			continue
		}
		k.codes.s = append(k.codes.s, uint16(code+szQuantRadius+1))
		k.pushRecon(recon)
	}
}

// Finish encodes the final partial block and assembles the payload body:
// block count, per-block metadata, the (Huffman-coded) quantisation codes,
// and the exception values — the same layout the batch encoder always wrote.
func (k *szStream) Finish() ([]byte, int) {
	body, segments := k.AppendFinish(nil)
	return body, segments
}

// AppendFinish implements FinishAppender: the payload body is assembled
// directly onto dst through the shared HuffmanCoder stage (predictive.go) —
// Huffman when possible, raw fallback otherwise, the same bytes as the
// historical buffer-based Finish — followed by the shared exception section.
func (k *szStream) AppendFinish(dst []byte) ([]byte, int) {
	if len(k.block) > 0 {
		k.encodeBlock()
	}
	var scratch [6]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(k.bs))
	binary.LittleEndian.PutUint32(scratch[2:6], uint32(k.nblocks))
	dst = append(dst, scratch[:6]...)
	dst = append(dst, k.meta.s...)
	dst = HuffmanCoder{}.AppendCodes(dst, k.codes.s)
	dst = appendExceptions(dst, k.exceptions.s)
	return dst, k.segments
}

// reset rewinds the kernel for a fresh series, keeping all scratch buffers.
func (k *szStream) reset() {
	k.block = k.block[:0]
	k.meta.s = k.meta.s[:0]
	k.nblocks = 0
	k.codes.s = k.codes.s[:0]
	k.exceptions.s = k.exceptions.s[:0]
	k.nhist, k.lastRecon = 0, 0
	k.segments = 0
}

// release returns the scratch buffers to their pools; the kernel must not be
// used afterwards.
func (k *szStream) release() {
	bytePool.put(k.meta)
	u16Pool.put(k.codes)
	floatPool.put(k.exceptions)
	k.meta, k.codes, k.exceptions = nil, nil, nil
}

// Segments reports the runs of identical reconstructed values seen so far;
// for Figure 3's segment counting, SZ's quantisation produces a staircase
// and each run is one segment. Tight bounds quantise finely (many runs),
// loose bounds coarsely (fewer runs), mirroring the paper's SZ trend.
func (k *szStream) Segments() int { return k.segments }

// Pending reports the points buffered in the open block.
func (k *szStream) Pending() int { return len(k.block) }

func constantBlock(block []float64) bool {
	for _, v := range block[1:] {
		if v != block[0] {
			return false
		}
	}
	return true
}

// szBlockPrecision returns the block's absolute precision: epsilon times the
// smallest non-zero magnitude, rounded down to float32 so the encoder and
// decoder share the exact same value and the relative bound still holds.
func szBlockPrecision(block []float64, epsilon float64) float32 {
	minAbs := math.Inf(1)
	for _, v := range block {
		if a := math.Abs(v); a > 0 && a < minAbs {
			minAbs = a
		}
	}
	if math.IsInf(minAbs, 1) {
		return 0
	}
	return roundDown32(epsilon * minAbs)
}

// roundDown32 converts to float32 rounding toward zero, so a stored
// precision never exceeds the intended bound.
func roundDown32(p float64) float32 {
	f := float32(p)
	for float64(f) > p {
		f = math.Nextafter32(f, 0)
	}
	return f
}

// szSelectPredictor picks the block predictor with the smallest total
// absolute residual, estimated on the raw values (as SZ does when sampling).
// prior is the reconstruction history before the block; only its last two
// values are read.
func szSelectPredictor(block []float64, prior []float64) (mode int, slope, intercept float32) {
	var lorenzo, lorenzo2, reg float64
	// Linear fit of the block: index -> value.
	sl, ic := fitLine(block)
	// The previous-one/previous-two values roll through the loop instead of
	// being recomputed by per-index closures; the seeds cover local index 0
	// exactly as the indexed lookups did.
	var prev, prev2 float64
	if len(prior) > 0 {
		prev = prior[len(prior)-1]
	}
	if len(prior) > 1 {
		prev2 = prior[len(prior)-2]
	}
	for k, v := range block {
		lorenzo += math.Abs(v - prev)
		lorenzo2 += math.Abs(v - (2*prev - prev2))
		reg += math.Abs(v - (sl*float64(k) + ic))
		prev2, prev = prev, v
	}
	switch {
	case reg <= lorenzo && reg <= lorenzo2:
		return szModeRegression, float32(sl), float32(ic)
	case lorenzo2 < lorenzo:
		return szModeLorenzo2, 0, 0
	default:
		return szModeLorenzo, 0, 0
	}
}

// fitLine returns the least-squares slope and intercept of values against
// their indices.
func fitLine(v []float64) (slope, intercept float64) {
	n := float64(len(v))
	if len(v) < 2 {
		if len(v) == 1 {
			return 0, v[0]
		}
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for i, y := range v {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// szPredict returns the prediction for local index k given the reconstructed
// history before this point (only the last two values are read, so callers
// may pass a two-value window).
func szPredict(mode int, slope, intercept float64, k int, decomp []float64) float64 {
	switch mode {
	case szModeRegression:
		return slope*float64(k) + intercept
	case szModeLorenzo2:
		if len(decomp) >= 2 {
			return 2*decomp[len(decomp)-1] - decomp[len(decomp)-2]
		}
		fallthrough
	default: // szModeLorenzo
		if len(decomp) >= 1 {
			return decomp[len(decomp)-1]
		}
		return 0
	}
}

// szQuantize maps the residual v−pred to a linear-scale code. It reports
// ok=false when the point must be stored verbatim: zero values (a relative
// bound requires them exact), zero precision, out-of-range codes, or a
// reconstruction that would violate the relative bound.
func szQuantize(v, pred, p, epsilon float64, absolute bool) (code int, recon float64, ok bool) {
	if p <= 0 || (v == 0 && !absolute) {
		return 0, 0, false
	}
	c := math.Round((v - pred) / (2 * p))
	if math.Abs(c) > szQuantRadius || math.IsNaN(c) {
		return 0, 0, false
	}
	code = int(c)
	recon = pred + float64(code)*2*p
	bound := epsilon * math.Abs(v)
	if absolute {
		bound = epsilon
	}
	if math.Abs(recon-v) > bound {
		return 0, 0, false
	}
	return code, recon, true
}

// szBlockMeta is one parsed block header of an SZ payload body.
type szBlockMeta struct {
	mode             int
	precision        float64
	slope, intercept float64
	constant         float64
	size             int
}

// szParseBody splits an SZ payload body into its parsed block metadata,
// quantisation codes, and exception values — everything except the value
// replay, which the batch and streaming decoders do differently.
func szParseBody(body []byte, count int) (blocks []szBlockMeta, codes []uint16, exceptions []float64, err error) {
	if len(body) < 6 {
		return nil, nil, nil, io.ErrUnexpectedEOF
	}
	bs := int(binary.LittleEndian.Uint16(body[:2]))
	nblocks := int(binary.LittleEndian.Uint32(body[2:6]))
	pos := 6
	if bs <= 0 || nblocks < 0 {
		return nil, nil, nil, errors.New("compress: corrupt SZ header")
	}
	blocks = make([]szBlockMeta, 0, allocHint(nblocks))
	remaining := count
	ncodes := 0
	for b := 0; b < nblocks; b++ {
		size := bs
		if size > remaining {
			size = remaining
		}
		remaining -= size
		if pos >= len(body) {
			return nil, nil, nil, io.ErrUnexpectedEOF
		}
		m := szBlockMeta{mode: int(body[pos]), size: size}
		pos++
		switch m.mode {
		case szModeConstant:
			if pos+8 > len(body) {
				return nil, nil, nil, io.ErrUnexpectedEOF
			}
			m.constant = math.Float64frombits(binary.LittleEndian.Uint64(body[pos : pos+8]))
			pos += 8
		case szModeLorenzo, szModeLorenzo2, szModeRegression:
			if pos+4 > len(body) {
				return nil, nil, nil, io.ErrUnexpectedEOF
			}
			m.precision = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[pos : pos+4])))
			pos += 4
			if m.mode == szModeRegression {
				if pos+8 > len(body) {
					return nil, nil, nil, io.ErrUnexpectedEOF
				}
				m.slope = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[pos : pos+4])))
				m.intercept = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[pos+4 : pos+8])))
				pos += 8
			}
			ncodes += size
		default:
			return nil, nil, nil, fmt.Errorf("compress: unknown SZ block mode %d", m.mode)
		}
		blocks = append(blocks, m)
	}
	if remaining != 0 {
		return nil, nil, nil, errors.New("compress: SZ block sizes do not cover the series")
	}
	if codes, pos, err = (HuffmanCoder{}).DecodeCodes(body, pos); err != nil {
		return nil, nil, nil, err
	}
	if len(codes) != ncodes {
		return nil, nil, nil, fmt.Errorf("compress: SZ expected %d codes, got %d", ncodes, len(codes))
	}
	if exceptions, _, err = parseExceptions(body, pos); err != nil {
		return nil, nil, nil, err
	}
	return blocks, codes, exceptions, nil
}

func szDecode(body []byte, count int) ([]float64, error) {
	blocks, codes, exceptions, err := szParseBody(body, count)
	if err != nil {
		return nil, err
	}
	// Replay.
	decomp := make([]float64, 0, allocHint(count))
	ci, ei := 0, 0
	for _, m := range blocks {
		if m.mode == szModeConstant {
			for i := 0; i < m.size; i++ {
				decomp = append(decomp, m.constant)
			}
			continue
		}
		for k := 0; k < m.size; k++ {
			stored := codes[ci]
			ci++
			if stored == 0 {
				if ei >= len(exceptions) {
					return nil, errors.New("compress: SZ exception stream exhausted")
				}
				decomp = append(decomp, exceptions[ei])
				ei++
				continue
			}
			code := int(stored) - szQuantRadius - 1
			pred := szPredict(m.mode, m.slope, m.intercept, k, decomp)
			decomp = append(decomp, pred+float64(code)*2*m.precision)
		}
	}
	if ei != len(exceptions) {
		return nil, errors.New("compress: SZ trailing exceptions")
	}
	return decomp, nil
}

// szValues replays SZ blocks incrementally: the carried state is the block
// cursor plus the two-value reconstruction history the predictors read.
type szValues struct {
	blocks     []szBlockMeta
	codes      []uint16
	exceptions []float64
	total      int
	remaining  int

	bi, k  int // current block / index within it
	ci, ei int // cursors into codes and exceptions
	hist   [2]float64
	nhist  int
}

func szDecodeStream(body []byte, count int) (ValueStream, error) {
	blocks, codes, exceptions, err := szParseBody(body, count)
	if err != nil {
		return nil, err
	}
	return &szValues{blocks: blocks, codes: codes, exceptions: exceptions, total: count, remaining: count}, nil
}

// rewind restarts the replay from the first value (see valueRewinder).
func (p *szValues) rewind() {
	p.remaining = p.total
	p.bi, p.k, p.ci, p.ei = 0, 0, 0, 0
	p.nhist = 0
}

func (p *szValues) push(r float64) float64 {
	if p.nhist < 2 {
		p.hist[p.nhist] = r
		p.nhist++
	} else {
		p.hist[0], p.hist[1] = p.hist[1], r
	}
	return r
}

func (p *szValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.bi >= len(p.blocks) {
			// szParseBody guarantees block sizes cover count, so this is
			// unreachable on well-formed metadata.
			return n, errors.New("compress: SZ blocks exhausted")
		}
		m := p.blocks[p.bi]
		if p.k >= m.size {
			p.bi++
			p.k = 0
			continue
		}
		var v float64
		if m.mode == szModeConstant {
			v = m.constant
		} else {
			stored := p.codes[p.ci]
			p.ci++
			if stored == 0 {
				if p.ei >= len(p.exceptions) {
					return n, errors.New("compress: SZ exception stream exhausted")
				}
				v = p.exceptions[p.ei]
				p.ei++
			} else {
				code := int(stored) - szQuantRadius - 1
				pred := szPredict(m.mode, m.slope, m.intercept, p.k, p.hist[:p.nhist])
				v = pred + float64(code)*2*m.precision
			}
		}
		dst[n] = p.push(v)
		n++
		p.k++
		p.remaining--
	}
	if p.remaining == 0 && p.ei != len(p.exceptions) {
		return n, errors.New("compress: SZ trailing exceptions")
	}
	return n, nil
}
