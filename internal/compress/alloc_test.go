package compress

import (
	"encoding/json"
	"os"
	"runtime/debug"
	"testing"

	"lossyts/internal/timeseries"
)

// These tests pin the tentpole invariant of the codec kernel layer: once the
// pools are warm, the per-series encode and decode loops of all four stream
// kernels allocate nothing. testing.AllocsPerRun is deterministic here
// because the GC is disabled for the duration (sync.Pool eviction is the one
// nondeterminism) and the assertions are skipped under -race, whose runtime
// instruments allocations.

// withGCOff disables the GC for the test so pooled buffers cannot be evicted
// mid-measurement.
func withGCOff(t *testing.T) {
	t.Helper()
	old := debug.SetGCPercent(-1)
	t.Cleanup(func() { debug.SetGCPercent(old) })
}

func allocSeries() *timeseries.Series { return synthSeries(4096, 17) }

// rewindDecoder restarts a drained StreamDecoder over the same payload
// without re-parsing it — the in-package hook behind the decode-side
// zero-allocation measurements.
func rewindDecoder(t *testing.T, d *StreamDecoder) {
	t.Helper()
	rw, ok := d.vs.(valueRewinder)
	if !ok {
		t.Fatalf("value stream %T lacks rewind", d.vs)
	}
	rw.rewind()
	d.pos = 0
	d.err = nil
}

func TestKernelEncodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
	withGCOff(t)
	s := allocSeries()
	for _, m := range streamMethods() {
		t.Run(string(m), func(t *testing.T) {
			enc, err := NewStreamEncoder(m, s, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			fa, ok := enc.kernel.(FinishAppender)
			if !ok {
				t.Fatalf("%s kernel does not implement FinishAppender", m)
			}
			body := GetBytes(4096)
			defer func() { PutBytes(body); enc.Release() }()
			run := func() {
				if err := enc.Reset(s.Start, s.Interval); err != nil {
					t.Fatal(err)
				}
				for _, v := range s.Values {
					enc.kernel.Push(v)
				}
				body, _ = fa.AppendFinish(body[:0])
				if len(body) == 0 {
					t.Fatal("empty body")
				}
			}
			run() // warm the pools and grow every scratch buffer to full size
			if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
				t.Fatalf("%s steady-state encode: %v allocs/op, want 0", m, allocs)
			}
		})
	}
}

func TestKernelDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
	withGCOff(t)
	s := allocSeries()
	for _, m := range streamMethods() {
		t.Run(string(m), func(t *testing.T) {
			comp, err := New(m)
			if err != nil {
				t.Fatal(err)
			}
			c, err := comp.Compress(s, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := NewStreamDecoder(c, 512)
			if err != nil {
				t.Fatal(err)
			}
			defer dec.Release()
			run := func() {
				rewindDecoder(t, dec)
				total := 0
				for {
					chunk, ok := dec.Next()
					if !ok {
						break
					}
					total += chunk.Len()
				}
				if dec.Err() != nil {
					t.Fatal(dec.Err())
				}
				if total != s.Len() {
					t.Fatalf("drained %d of %d values", total, s.Len())
				}
			}
			run()
			if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
				t.Fatalf("%s steady-state decode: %v allocs/op, want 0", m, allocs)
			}
		})
	}
}

// allocBudget mirrors testdata/alloc_budget.json: the committed per-method
// ceiling for full-operation allocation counts (fresh encoder, gzip framing,
// fresh decoder — everything a cache-missed request pays). The steady-state
// loops are pinned to zero above; this guards the constructor-and-frame path
// against silent regressions. Budgets carry slack over measured values, so
// only a real regression — a lost pool, a reintroduced per-point allocation —
// trips it.
type allocBudget struct {
	SeriesLen int                           `json:"series_len"`
	Runs      int                           `json:"runs"`
	MaxAllocs map[string]map[string]float64 `json:"max_allocs_per_op"`
}

func TestKernelAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is not meaningful under -race")
	}
	withGCOff(t)
	raw, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatal(err)
	}
	var budget allocBudget
	if err := json.Unmarshal(raw, &budget); err != nil {
		t.Fatal(err)
	}
	s := synthSeries(budget.SeriesLen, 17)
	for _, m := range streamMethods() {
		limits, ok := budget.MaxAllocs[string(m)]
		if !ok {
			t.Fatalf("no alloc budget committed for %s", m)
		}
		t.Run(string(m), func(t *testing.T) {
			compressOp := func() {
				enc, err := NewStreamEncoder(m, s, 0.05)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range s.Values {
					if err := enc.Push(v); err != nil {
						t.Fatal(err)
					}
				}
				buf := GetBytes(1024)
				c, err := enc.CloseAppend(buf)
				if err != nil {
					t.Fatal(err)
				}
				PutBytes(c.Payload)
				enc.Release()
			}
			compressOp() // warm pools
			got := testing.AllocsPerRun(budget.Runs, compressOp)
			if max := limits["compress"]; got > max {
				t.Errorf("%s compress: %v allocs/op exceeds budget %v", m, got, max)
			}

			comp, err := New(m)
			if err != nil {
				t.Fatal(err)
			}
			c, err := comp.Compress(s, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			decompressOp := func() {
				dec, err := NewStreamDecoder(c, 512)
				if err != nil {
					t.Fatal(err)
				}
				for {
					if _, ok := dec.Next(); !ok {
						break
					}
				}
				if dec.Err() != nil {
					t.Fatal(dec.Err())
				}
				dec.Release()
			}
			decompressOp()
			got = testing.AllocsPerRun(budget.Runs, decompressOp)
			if max := limits["decompress"]; got > max {
				t.Errorf("%s decompress: %v allocs/op exceeds budget %v", m, got, max)
			}
		})
	}
}
