package compress

import (
	"math"
	"math/bits"
)

// XOREncoder is the Gorilla XOR chain (Pelkonen et al., PVLDB 2015) as a
// reusable entropy stage: each value is XORed with the previous one and the
// result is stored with a variable-length encoding of its meaningful bits.
// The Gorilla kernel is a thin wrapper over this encoder; any codec that
// wants lossless float packing (e.g. for exceptional values or model
// coefficients) composes it the same way. Zero value is NOT ready — use
// newXOREncoder or Reset, which install the "no previous window" sentinel.
type XOREncoder struct {
	bw       BitWriter
	n        int
	prev     uint64
	prevLead int // 65 marks "no previous window"
	prevMean int
}

// newXOREncoder returns an encoder ready for its first Write.
func newXOREncoder() XOREncoder { return XOREncoder{prevLead: 65} }

// Write appends one value to the XOR chain. The first value is stored with
// all 64 bits; later values store only the meaningful bits of the XOR with
// their predecessor, reusing the previous window when it still fits.
func (e *XOREncoder) Write(v float64) {
	cur := math.Float64bits(v)
	if e.n == 0 {
		e.n = 1
		e.prev = cur
		e.bw.initPooled(1024)
		e.bw.WriteBits(cur, 64)
		return
	}
	e.n++
	xor := e.prev ^ cur
	e.prev = cur
	if xor == 0 {
		e.bw.WriteBit(0)
		return
	}
	lead := bits.LeadingZeros64(xor)
	trail := bits.TrailingZeros64(xor)
	if lead > 31 {
		lead = 31 // the leading-zero count field is 5 bits wide
	}
	mean := 64 - lead - trail
	if e.prevLead <= lead && e.prevMean >= mean+(lead-e.prevLead) {
		// The meaningful bits fit inside the previous window: reuse it. The
		// "10" control pair is fused into one write, and — when the window is
		// short enough — fused with the meaningful bits too, so the common
		// case is a single WriteBits call per value.
		if e.prevMean <= 62 {
			e.bw.WriteBits(2<<uint(e.prevMean)|xor>>uint(64-e.prevLead-e.prevMean), uint(e.prevMean)+2)
			return
		}
		e.bw.WriteBits(2, 2)
		e.bw.WriteBits(xor>>uint(64-e.prevLead-e.prevMean), uint(e.prevMean))
		return
	}
	// New window: "11" + 5-bit lead + 6-bit (mean-1), fused into 13 bits.
	e.bw.WriteBits(3<<11|uint64(lead)<<6|uint64(mean-1), 13)
	e.bw.WriteBits(xor>>uint(trail), uint(mean))
	e.prevLead, e.prevMean = lead, mean
}

// Count reports the values written since the last Reset.
func (e *XOREncoder) Count() int { return e.n }

// Bytes returns the bit-packed body; the view aliases the internal buffer.
func (e *XOREncoder) Bytes() []byte { return e.bw.Bytes() }

// Reset rewinds the encoder for a fresh chain, keeping its bit buffer.
func (e *XOREncoder) Reset() {
	e.bw.Reset()
	e.n, e.prev = 0, 0
	e.prevLead, e.prevMean = 65, 0
}

// release returns the bit buffer to the pool; the encoder must not be used
// afterwards without Reset re-pooling via Write.
func (e *XOREncoder) release() { e.bw.release() }

// XORDecoder replays an XOR chain incrementally: the carried state is the
// previous value's bits and the previous meaningful-bit window — O(1)
// regardless of chain length.
type XORDecoder struct {
	br        *BitReader
	needFirst bool
	prev      uint64
	prevLead  int
	prevMean  int
}

// newXORDecoder returns a decoder over the bit-packed body.
func newXORDecoder(body []byte) XORDecoder {
	return XORDecoder{br: NewBitReader(body), needFirst: true}
}

// Reset rewinds the decoder to the first value of its chain.
func (d *XORDecoder) Reset() {
	d.br.reset()
	d.needFirst = true
	d.prev, d.prevLead, d.prevMean = 0, 0, 0
}

// Next returns the next value of the chain.
func (d *XORDecoder) Next() (float64, error) {
	if d.needFirst {
		first, err := d.br.ReadBits(64)
		if err != nil {
			return 0, err
		}
		d.needFirst = false
		d.prev = first
		return math.Float64frombits(first), nil
	}
	b, err := d.br.ReadBit()
	if err != nil {
		return 0, err
	}
	if b == 0 {
		return math.Float64frombits(d.prev), nil
	}
	if b, err = d.br.ReadBit(); err != nil {
		return 0, err
	}
	if b == 1 {
		// Lead (5 bits) and meaningful length (6 bits) read in one go.
		win, err := d.br.ReadBits(11)
		if err != nil {
			return 0, err
		}
		d.prevLead, d.prevMean = int(win>>6), int(win&63)+1
	}
	meaningful, err := d.br.ReadBits(uint(d.prevMean))
	if err != nil {
		return 0, err
	}
	d.prev ^= meaningful << uint(64-d.prevLead-d.prevMean)
	return math.Float64frombits(d.prev), nil
}
