package compress

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// maxHuffmanCodeLen bounds canonical code lengths so codes fit comfortably
// in a uint64 during encoding. Residual-quantisation alphabets are small and
// never approach this in practice; hitting the bound is reported as an error
// and callers fall back to raw symbol storage.
const maxHuffmanCodeLen = 56

// huffmanNode is an internal tree node used during construction.
type huffmanNode struct {
	freq        uint64
	symbol      uint16
	leaf        bool
	left, right *huffmanNode
}

type huffmanHeap []*huffmanNode

func (h huffmanHeap) Len() int { return len(h) }
func (h huffmanHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	// Tie-break on symbol for determinism.
	return h[i].symbol < h[j].symbol
}
func (h huffmanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffmanHeap) Push(x any)   { *h = append(*h, x.(*huffmanNode)) }
func (h *huffmanHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// huffmanCodeLengths returns the canonical Huffman code length per symbol
// present in syms (map from symbol to frequency).
func huffmanCodeLengths(freq map[uint16]uint64) (map[uint16]uint8, error) {
	if len(freq) == 0 {
		return nil, errors.New("compress: huffman with empty alphabet")
	}
	if len(freq) == 1 {
		for s := range freq {
			return map[uint16]uint8{s: 1}, nil
		}
	}
	h := make(huffmanHeap, 0, len(freq))
	for s, f := range freq {
		h = append(h, &huffmanNode{freq: f, symbol: s, leaf: true})
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffmanNode)
		b := heap.Pop(&h).(*huffmanNode)
		heap.Push(&h, &huffmanNode{freq: a.freq + b.freq, symbol: min16(a.symbol, b.symbol), left: a, right: b})
	}
	root := h[0]
	lengths := make(map[uint16]uint8, len(freq))
	var walk func(n *huffmanNode, depth uint8) error
	walk = func(n *huffmanNode, depth uint8) error {
		if n.leaf {
			if depth > maxHuffmanCodeLen {
				return fmt.Errorf("compress: huffman code length %d exceeds limit", depth)
			}
			if depth == 0 {
				depth = 1
			}
			lengths[n.symbol] = depth
			return nil
		}
		if err := walk(n.left, depth+1); err != nil {
			return err
		}
		return walk(n.right, depth+1)
	}
	if err := walk(root, 0); err != nil {
		return nil, err
	}
	return lengths, nil
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

// canonicalCodes assigns canonical codes (shorter codes first, ties by
// symbol order) given code lengths.
func canonicalCodes(lengths map[uint16]uint8) map[uint16]uint64 {
	type sl struct {
		sym uint16
		len uint8
	}
	list := make([]sl, 0, len(lengths))
	for s, l := range lengths {
		list = append(list, sl{s, l})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].len != list[j].len {
			return list[i].len < list[j].len
		}
		return list[i].sym < list[j].sym
	})
	codes := make(map[uint16]uint64, len(list))
	var code uint64
	var prevLen uint8
	for _, e := range list {
		code <<= uint(e.len - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.len
	}
	return codes
}

// HuffmanEncode compresses the symbol stream with a canonical Huffman code
// built from the stream's own frequencies. The output embeds the code table
// so it is self-describing.
func HuffmanEncode(symbols []uint16) ([]byte, error) {
	freq := make(map[uint16]uint64)
	for _, s := range symbols {
		freq[s]++
	}
	lengths, err := huffmanCodeLengths(freq)
	if err != nil {
		return nil, err
	}
	codes := canonicalCodes(lengths)

	var out []byte
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(symbols)))
	out = append(out, scratch[:4]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(lengths)))
	out = append(out, scratch[:4]...)
	// Table: sorted by symbol for determinism.
	syms := make([]uint16, 0, len(lengths))
	for s := range lengths {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	for _, s := range syms {
		binary.LittleEndian.PutUint16(scratch[:2], s)
		out = append(out, scratch[0], scratch[1], lengths[s])
	}
	var bw BitWriter
	for _, s := range symbols {
		bw.WriteBits(codes[s], uint(lengths[s]))
	}
	return append(out, bw.Bytes()...), nil
}

// HuffmanDecode reverses HuffmanEncode.
func HuffmanDecode(data []byte) ([]uint16, error) {
	if len(data) < 8 {
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(data[:4])
	nsym := binary.LittleEndian.Uint32(data[4:8])
	pos := 8
	lengths := make(map[uint16]uint8, nsym)
	for i := uint32(0); i < nsym; i++ {
		if pos+3 > len(data) {
			return nil, io.ErrUnexpectedEOF
		}
		s := binary.LittleEndian.Uint16(data[pos : pos+2])
		lengths[s] = data[pos+2]
		pos += 3
	}
	codes := canonicalCodes(lengths)
	// Decoding table: (length, code) -> symbol.
	type key struct {
		len  uint8
		code uint64
	}
	table := make(map[key]uint16, len(codes))
	maxLen := uint8(0)
	for s, c := range codes {
		l := lengths[s]
		table[key{l, c}] = s
		if l > maxLen {
			maxLen = l
		}
	}
	br := NewBitReader(data[pos:])
	out := make([]uint16, 0, n)
	for uint32(len(out)) < n {
		var code uint64
		var l uint8
		found := false
		for l < maxLen {
			b, err := br.ReadBit()
			if err != nil {
				return nil, err
			}
			code = code<<1 | b
			l++
			if s, ok := table[key{l, code}]; ok {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, errors.New("compress: invalid huffman stream")
		}
	}
	return out, nil
}
