package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"
)

// The Huffman coder runs once per SZ payload over the whole quantisation
// code stream, so it sits on the hot compress path. It works entirely on
// flat, pooled arrays — dense per-symbol frequency/length/code tables, an
// index-based node arena and binary heap, and counting-sorted canonical
// order — with no maps, no container/heap interface boxing, and no
// recursion, so a warm encode or decode allocates nothing.
//
// The emitted bytes are identical to the historical map-based
// implementation: node keys (freq, symbol) form a strict total order (leaf
// symbols are unique and an internal node's symbol is the minimum of its
// disjoint subtree), so the merge sequence — and therefore every code
// length, canonical code, and table byte — is fully determined by the
// symbol frequencies alone.

// maxHuffmanCodeLen bounds canonical code lengths so codes fit comfortably
// in a uint64 during encoding. Residual-quantisation alphabets are small and
// never approach this in practice; hitting the bound is reported as an error
// and callers fall back to raw symbol storage.
const maxHuffmanCodeLen = 56

const huffSymbols = 1 << 16

// huffNode is one node of the code tree, held in a flat arena and linked by
// index; left < 0 marks a leaf.
type huffNode struct {
	freq        uint64
	sym         uint16
	left, right int32
}

// huffScratch is the pooled working state shared by encode and decode. The
// dense per-symbol tables are allocated once per scratch (4 MB total) and
// cleaned sparsely — only the entries named by present are touched — so a
// small alphabet pays for its own symbols, not for 65536.
type huffScratch struct {
	freq    []uint64 // per-symbol frequency (encode)
	lens    []uint8  // per-symbol code length
	codes   []uint64 // per-symbol canonical code (encode)
	marks   []uint32 // per-symbol epoch stamp (decode table parsing)
	epoch   uint32
	present []uint16 // symbols in play, ascending
	order   []uint16 // present counting-sorted by (length, symbol)
	nodes   []huffNode
	heap    []int32
	stack   []int32
	depth   []uint16 // parallel to stack
	// Canonical decode tables indexed by code length (lengths come from
	// untrusted bytes, so the full 0..255 range is representable).
	count  [256]uint32
	first  [256]uint64
	offset [256]uint32
	bw     BitWriter
}

var huffPool = sync.Pool{New: func() any {
	return &huffScratch{
		freq:  make([]uint64, huffSymbols),
		lens:  make([]uint8, huffSymbols),
		codes: make([]uint64, huffSymbols),
		marks: make([]uint32, huffSymbols),
	}
}}

// clean re-zeroes the sparse entries this use touched and returns the
// scratch to the pool.
func (h *huffScratch) clean() {
	for _, s := range h.present {
		l := h.lens[s]
		h.count[l], h.first[l], h.offset[l] = 0, 0, 0
		h.freq[s] = 0
		h.lens[s] = 0
	}
	h.present = h.present[:0]
	h.order = h.order[:0]
	h.nodes = h.nodes[:0]
	h.heap = h.heap[:0]
	h.stack = h.stack[:0]
	h.depth = h.depth[:0]
	h.bw.Reset()
	huffPool.Put(h)
}

// heap helpers: a plain binary min-heap of node-arena indexes ordered by
// (freq, symbol) — a strict total order, see the package comment.

func (h *huffScratch) nodeLess(a, b int32) bool {
	na, nb := &h.nodes[a], &h.nodes[b]
	if na.freq != nb.freq {
		return na.freq < nb.freq
	}
	return na.sym < nb.sym
}

func (h *huffScratch) siftDown(i int) {
	n := len(h.heap)
	for {
		j := 2*i + 1
		if j >= n {
			return
		}
		if j2 := j + 1; j2 < n && h.nodeLess(h.heap[j2], h.heap[j]) {
			j = j2
		}
		if !h.nodeLess(h.heap[j], h.heap[i]) {
			return
		}
		h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
		i = j
	}
}

func (h *huffScratch) heapPop() int32 {
	top := h.heap[0]
	n := len(h.heap) - 1
	h.heap[0] = h.heap[n]
	h.heap = h.heap[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *huffScratch) heapPush(v int32) {
	h.heap = append(h.heap, v)
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.nodeLess(h.heap[i], h.heap[parent]) {
			return
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		i = parent
	}
}

// buildLengths fills lens for every symbol in present (which must be sorted
// and non-empty) from the frequencies in freq.
func (h *huffScratch) buildLengths() error {
	if len(h.present) == 1 {
		h.lens[h.present[0]] = 1
		return nil
	}
	for _, s := range h.present {
		h.nodes = append(h.nodes, huffNode{freq: h.freq[s], sym: s, left: -1})
		h.heap = append(h.heap, int32(len(h.nodes)-1))
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for len(h.heap) > 1 {
		a := h.heapPop()
		b := h.heapPop()
		sym := h.nodes[a].sym
		if s := h.nodes[b].sym; s < sym {
			sym = s
		}
		h.nodes = append(h.nodes, huffNode{freq: h.nodes[a].freq + h.nodes[b].freq, sym: sym, left: a, right: b})
		h.heapPush(int32(len(h.nodes) - 1))
	}
	// Depth-first walk of the arena assigns leaf depths as code lengths.
	h.stack = append(h.stack[:0], h.heap[0])
	h.depth = append(h.depth[:0], 0)
	for len(h.stack) > 0 {
		n := len(h.stack) - 1
		ni, d := h.stack[n], h.depth[n]
		h.stack, h.depth = h.stack[:n], h.depth[:n]
		node := &h.nodes[ni]
		if node.left < 0 {
			if d > maxHuffmanCodeLen {
				return fmt.Errorf("compress: huffman code length %d exceeds limit", d)
			}
			if d == 0 {
				d = 1
			}
			h.lens[node.sym] = uint8(d)
			continue
		}
		h.stack = append(h.stack, node.left, node.right)
		h.depth = append(h.depth, d+1, d+1)
	}
	return nil
}

// assignCanonical counting-sorts present by (length, symbol) into order and
// assigns canonical codes exactly as the historical implementation did:
// shorter codes first, ties by symbol order, code <<= length delta between
// entries. It also fills the per-length count/first/offset decode tables.
func (h *huffScratch) assignCanonical() {
	for _, s := range h.present {
		h.count[h.lens[s]]++
	}
	var starts [256]uint32
	var acc uint32
	for l := 0; l < 256; l++ {
		starts[l] = acc
		h.offset[l] = acc
		acc += h.count[l]
	}
	h.order = slices.Grow(h.order[:0], len(h.present))[:len(h.present)]
	for _, s := range h.present {
		l := h.lens[s]
		h.order[starts[l]] = s
		starts[l]++
	}
	var code uint64
	var prevLen uint8
	for i, s := range h.order {
		l := h.lens[s]
		code <<= uint(l - prevLen)
		if l > prevLen || i == 0 {
			h.first[l] = code
		}
		h.codes[s] = code
		code++
		prevLen = l
	}
}

// AppendHuffman appends the Huffman encoding of the symbol stream to dst
// and returns the extended slice. The code is canonical, built from the
// stream's own frequencies, and the output embeds the code table so it is
// self-describing. On error dst is returned unextended, so pooled buffers
// are never lost.
func AppendHuffman(dst []byte, symbols []uint16) ([]byte, error) {
	if len(symbols) == 0 {
		return dst, errors.New("compress: huffman with empty alphabet")
	}
	h := huffPool.Get().(*huffScratch)
	defer h.clean()
	for _, s := range symbols {
		if h.freq[s] == 0 {
			h.present = append(h.present, s)
		}
		h.freq[s]++
	}
	slices.Sort(h.present)
	if err := h.buildLengths(); err != nil {
		return dst, err
	}
	h.assignCanonical()

	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(symbols)))
	dst = append(dst, scratch[:4]...)
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(h.present)))
	dst = append(dst, scratch[:4]...)
	for _, s := range h.present {
		binary.LittleEndian.PutUint16(scratch[:2], s)
		dst = append(dst, scratch[0], scratch[1], h.lens[s])
	}
	h.bw.initPooled(len(symbols))
	for _, s := range symbols {
		h.bw.WriteBits(h.codes[s], uint(h.lens[s]))
	}
	dst = append(dst, h.bw.Bytes()...)
	h.bw.release()
	return dst, nil
}

// HuffmanEncode compresses the symbol stream with a canonical Huffman code
// built from the stream's own frequencies. The output embeds the code table
// so it is self-describing.
func HuffmanEncode(symbols []uint16) ([]byte, error) {
	return AppendHuffman(nil, symbols)
}

// HuffmanDecode reverses HuffmanEncode. Decoding walks the canonical
// first-code tables bit by bit — a code of length l matches iff it falls in
// [first[l], first[l]+count[l]) — which accepts exactly the codes the
// historical (length, code)→symbol map contained.
func HuffmanDecode(data []byte) ([]uint16, error) {
	if len(data) < 8 {
		return nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(data[:4])
	nsym := binary.LittleEndian.Uint32(data[4:8])
	pos := 8
	h := huffPool.Get().(*huffScratch)
	defer h.clean()
	h.epoch++
	for i := uint32(0); i < nsym; i++ {
		if pos+3 > len(data) {
			return nil, io.ErrUnexpectedEOF
		}
		s := binary.LittleEndian.Uint16(data[pos : pos+2])
		if h.marks[s] != h.epoch {
			h.marks[s] = h.epoch
			h.present = append(h.present, s)
		}
		h.lens[s] = data[pos+2] // duplicate table entries: last one wins
		pos += 3
	}
	if len(h.present) == 0 {
		return nil, errors.New("compress: invalid huffman stream")
	}
	slices.Sort(h.present)
	h.assignCanonical()
	maxLen := h.lens[h.order[len(h.order)-1]]

	br := BitReader{buf: data[pos:]}
	out := make([]uint16, 0, allocHint(int(n)))
	for uint32(len(out)) < n {
		var code uint64
		found := false
		for l := uint8(0); l < maxLen; {
			b, err := br.ReadBit()
			if err != nil {
				return nil, err
			}
			code = code<<1 | b
			l++
			if c := h.count[l]; c > 0 && code >= h.first[l] && code-h.first[l] < uint64(c) {
				out = append(out, h.order[h.offset[l]+uint32(code-h.first[l])])
				found = true
				break
			}
		}
		if !found {
			return nil, errors.New("compress: invalid huffman stream")
		}
	}
	return out, nil
}
