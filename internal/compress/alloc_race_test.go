//go:build race

package compress

// raceEnabled reports whether this test binary was built with -race; the
// zero-allocation assertions are skipped there because the race runtime
// instruments allocations.
const raceEnabled = true
