package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecompressNeverPanics injects random corruption — bit flips,
// truncation, and garbage prefixes — into valid payloads of every method.
// Decompression must fail cleanly (or succeed on benign flips); it must
// never panic or loop.
func TestDecompressNeverPanics(t *testing.T) {
	s := synthSeries(500, 63)
	var payloads []*Compressed
	for _, m := range append(lossyMethods(), MethodGorilla) {
		c, _ := New(m)
		comp, err := c.Compress(s, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, comp)
	}
	spmc, err := (SeasonalPMC{Period: 48}).Compress(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	payloads = append(payloads, spmc)
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
				t.Logf("panic: %v", r)
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		base := payloads[rng.Intn(len(payloads))]
		mutated := &Compressed{
			Method:  base.Method,
			Epsilon: base.Epsilon,
			N:       base.N,
			Payload: append([]byte(nil), base.Payload...),
		}
		switch rng.Intn(3) {
		case 0: // flip a few bytes
			for k := 0; k < 1+rng.Intn(8); k++ {
				i := rng.Intn(len(mutated.Payload))
				mutated.Payload[i] ^= byte(1 + rng.Intn(255))
			}
		case 1: // truncate
			mutated.Payload = mutated.Payload[:rng.Intn(len(mutated.Payload))]
		case 2: // replace with noise
			for i := range mutated.Payload {
				mutated.Payload[i] = byte(rng.Intn(256))
			}
		}
		series, err := mutated.Decompress()
		// Either a clean error, or a decoded series; both are acceptable —
		// gzip checksums catch most corruption, the rest must fail safely.
		if err == nil && series == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecompressLengthMismatch feeds a payload claiming more points than
// its segments provide.
func TestDecompressLengthMismatch(t *testing.T) {
	s := synthSeries(100, 64)
	comp, err := (PMC{}).Compress(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	body, err := GunzipBytes(comp.Payload)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate the count field (bytes 7..11 of the header).
	body[7] = 0xFF
	body[8] = 0xFF
	gz, err := GzipBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	comp.Payload = gz
	if _, err := comp.Decompress(); err == nil {
		t.Error("inflated count should fail decompression")
	}
}
