package compress

import (
	"fmt"
	"sort"
	"sync"
)

// Registration declares a compression method to the package registry: how
// to construct its compressor and how to decode its payload body. The
// built-in methods self-register from their own files; external packages
// (e.g. an LFZip or CAMEO port) register the same way and immediately work
// everywhere a Method is accepted — New, Decompress, and the evaluation
// grid — without touching any dispatch site.
type Registration struct {
	// Method is the registry key, e.g. "PMC".
	Method Method
	// Code is the method's wire code in the payload header. It must be
	// unique; codes 1–63 are reserved for the built-ins, so external
	// methods should use 64 and above.
	Code byte
	// Lossy marks methods that honour an error bound (ε sweeps are
	// meaningful) AND construct parameter-free through New, so the grid,
	// sweep, and serve surfaces can enumerate them without a hardcoded
	// list. Lossless baselines (Gorilla) and parameterised variants
	// (SeasonalPMC, which needs a period) leave it false.
	Lossy bool
	// New constructs a fresh compressor. It may return an error for
	// methods that need explicit construction parameters (SeasonalPMC's
	// period).
	New func() (Compressor, error)
	// Decode reconstructs count values from a decompressed payload body
	// (the bytes after the shared stream header).
	Decode func(body []byte, count int) ([]float64, error)
	// NewStream constructs the method's incremental encoder state (nil for
	// batch-only methods, which NewStreamEncoder then rejects). absolute
	// selects the classic |v − v̂| ≤ ε bound instead of the paper's relative
	// bound. Streamed output must be byte-identical to the batch Compress
	// of the same values.
	NewStream func(epsilon float64, absolute bool) (StreamKernel, error)
	// DecodeStream returns an incremental decoder over a payload body so
	// reconstruction yields chunks instead of materialising the series
	// (nil means StreamDecoder falls back to the batch Decode).
	DecodeStream func(body []byte, count int) (ValueStream, error)
}

// UnknownMethodError is returned when a Method has no registration.
type UnknownMethodError struct {
	Method Method
}

func (e *UnknownMethodError) Error() string {
	return fmt.Sprintf("compress: unknown method %q (registered: %v)", e.Method, Registered())
}

var (
	registryMu sync.RWMutex
	registry   = map[Method]Registration{}
	byCode     = map[byte]Method{}
)

// Register adds a compression method to the registry. It panics if the
// method name or wire code is already taken, or if the registration is
// incomplete — registration happens in init functions, where a loud
// failure at process start beats a silent misroute at decode time.
func Register(r Registration) {
	if r.Method == "" {
		panic("compress: Register with empty method name")
	}
	if r.New == nil || r.Decode == nil {
		panic(fmt.Sprintf("compress: Register(%s) needs both New and Decode", r.Method))
	}
	if r.Code == 0 {
		panic(fmt.Sprintf("compress: Register(%s) needs a non-zero wire code", r.Method))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[r.Method]; dup {
		panic(fmt.Sprintf("compress: method %q registered twice", r.Method))
	}
	if prev, dup := byCode[r.Code]; dup {
		panic(fmt.Sprintf("compress: wire code %d of %q already taken by %q", r.Code, r.Method, prev))
	}
	registry[r.Method] = r
	byCode[r.Code] = r.Method
}

// lookup returns the registration for m, or a typed unknown-method error.
func lookup(m Method) (Registration, error) {
	registryMu.RLock()
	r, ok := registry[m]
	registryMu.RUnlock()
	if !ok {
		return Registration{}, &UnknownMethodError{Method: m}
	}
	return r, nil
}

// Registered lists every registered method name in sorted order. The
// paper's lossy grid is the fixed Methods slice; Registered also includes
// the lossless baseline and any externally registered methods.
func Registered() []Method {
	registryMu.RLock()
	out := make([]Method, 0, len(registry))
	for m := range registry {
		out = append(out, m)
	}
	registryMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StreamingMethods lists, in sorted order, every registered method with an
// incremental encoder (NewStream non-nil) — the set the stream-kernel test
// and fuzz matrices, the alloc guard, and the monitor plane cover. Growing
// the registry grows every one of those surfaces automatically.
func StreamingMethods() []Method {
	registryMu.RLock()
	out := make([]Method, 0, len(registry))
	for m, r := range registry {
		if r.NewStream != nil {
			out = append(out, m)
		}
	}
	registryMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LossyMethods lists, in sorted order, every registered error-bounded
// method that constructs parameter-free (Registration.Lossy) — the widest
// grid the study planes can enumerate. The paper's fixed grid stays the
// Methods slice; LossyMethods additionally picks up CAMEO, LFZip, and any
// external registrations.
func LossyMethods() []Method {
	registryMu.RLock()
	out := make([]Method, 0, len(registry))
	for m, r := range registry {
		if r.Lossy {
			out = append(out, m)
		}
	}
	registryMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// methodCode returns the wire code for m.
func methodCode(m Method) (byte, error) {
	r, err := lookup(m)
	if err != nil {
		return 0, err
	}
	return r.Code, nil
}

// methodFromCode resolves a payload wire code back to its method.
func methodFromCode(b byte) (Method, error) {
	registryMu.RLock()
	m, ok := byCode[b]
	registryMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("compress: unknown method code %d", b)
	}
	return m, nil
}
