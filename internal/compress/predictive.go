package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// This file is the predictive-codec contract: the decomposition of an
// error-bounded lossy compressor into three composable stages —
//
//	Predictor     guesses the next value from the reconstructed history,
//	Quantiser     maps the residual to an integer code under the bound,
//	EntropyCoder  packs the finished code stream into payload bytes,
//
// plus the shared kernel base (kernelBase, predictiveKernel) that owns the
// pooled-buffer lifecycle every StreamKernel needs: scratch drawn from the
// package pools at construction, rewound by reset, returned by release, and
// appended through the no-copy FinishAppender path. The built-in paths are
// instances of these stages rather than private hardcodes — SZ's residual
// quantisation is a UniformQuantiser and its Huffman-with-raw-fallback code
// section is the HuffmanCoder; Gorilla's XOR chain is the XORCoder (xor.go);
// Swing's and CAMEO's segment wire form is the line layer (line.go); LFZip
// (lfzip.go) is assembled purely from stage instances on predictiveKernel —
// so a new codec composes existing stages and inherits zero-allocation
// steady state instead of reimplementing it.

// Predictor is the reconstruction-side value predictor of a predictive
// codec. Predict returns the guess for the next value; Update feeds back the
// value the decoder will reconstruct (never the original — encoder and
// decoder must run the predictor over identical inputs, or their predictions
// drift apart and the error bound silently breaks). Implementations must be
// deterministic and allocation-free per call.
type Predictor interface {
	Predict() float64
	Update(recon float64)
	// Reset rewinds the predictor to its initial state, keeping any scratch.
	Reset()
}

// Quantiser maps residuals to integer codes and back under an error bound.
// ok=false marks an exception: the value cannot be represented within the
// bound and is stored verbatim. Dequantise must invert Quantise exactly —
// the decoder reconstructs with it, so any asymmetry breaks round trips.
type Quantiser interface {
	Quantise(v, pred float64) (code int, recon float64, ok bool)
	Dequantise(code int, pred float64) float64
}

// EntropyCoder packs a finished quantisation-code stream into payload bytes
// and parses it back. AppendCodes writes the stream's self-framing section
// onto dst and returns the extended slice (never an error: coders that can
// fail must embed a fallback encoding, as HuffmanCoder does). DecodeCodes
// parses the section starting at body[pos] and returns the codes plus the
// offset of the first byte after the section.
type EntropyCoder interface {
	AppendCodes(dst []byte, codes []uint16) []byte
	DecodeCodes(body []byte, pos int) (codes []uint16, next int, err error)
}

// UniformQuantiser is the linear-scale residual quantiser shared by SZ and
// LFZip: codes live in [-Radius, Radius] on a grid of step 2·precision, the
// stored code is biased by Radius+1 so 0 marks an exception, and a
// reconstruction that would violate the configured bound is rejected as an
// exception too. Precision is calibrated per block (SetPrecision) — for the
// paper's pointwise relative bound it derives from the block's smallest
// non-zero magnitude (BlockPrecision), so the relative bound holds at every
// point; Absolute switches to the classic |v − v̂| ≤ ε bound.
type UniformQuantiser struct {
	Epsilon  float64
	Absolute bool
	Radius   int

	precision float64
}

// NewUniformQuantiser returns a quantiser with the SZ code radius.
func NewUniformQuantiser(epsilon float64, absolute bool) *UniformQuantiser {
	return &UniformQuantiser{Epsilon: epsilon, Absolute: absolute, Radius: szQuantRadius}
}

// BlockPrecision calibrates the quantisation step for a block of values and
// returns the float32 the encoder must store so the decoder dequantises with
// the exact same step. In absolute mode the step is the bound itself.
func (q *UniformQuantiser) BlockPrecision(block []float64) float32 {
	p := szBlockPrecision(block, q.Epsilon)
	if q.Absolute {
		p = roundDown32(q.Epsilon)
	}
	q.SetPrecision(p)
	return p
}

// SetPrecision installs a previously stored precision (decode side).
func (q *UniformQuantiser) SetPrecision(p float32) { q.precision = float64(p) }

// Quantise implements Quantiser over the calibrated precision.
func (q *UniformQuantiser) Quantise(v, pred float64) (int, float64, bool) {
	code, recon, ok := szQuantize(v, pred, q.precision, q.Epsilon, q.Absolute)
	if !ok || code < -q.Radius || code > q.Radius {
		return 0, 0, false
	}
	return code, recon, true
}

// Dequantise implements Quantiser: the exact reconstruction the encoder
// committed to when it emitted the code.
func (q *UniformQuantiser) Dequantise(code int, pred float64) float64 {
	return pred + float64(code)*2*q.precision
}

// Code-section encodings shared by every Huffman-framed codec (SZ, LFZip).
const (
	codeSectionHuffman = 0 // u32 length + Huffman bytes
	codeSectionRaw     = 1 // u32 count + raw little-endian uint16 codes
	codeSectionEmpty   = 2 // no codes at all
)

// HuffmanCoder is the shared entropy stage behind SZ and LFZip: the pooled
// whole-stream Huffman coder with the historical raw fallback, framed as a
// self-describing code section (encoding byte, then the encoding-specific
// body). The bytes are identical to what SZ's Finish always wrote — the
// framing moved here, it did not change.
type HuffmanCoder struct{}

// AppendCodes implements EntropyCoder. The Huffman stage appends in place
// behind a length-backfill slot; if it fails (pathological code lengths) the
// appended bytes are truncated away and the raw encoding takes their place.
func (HuffmanCoder) AppendCodes(dst []byte, codes []uint16) []byte {
	if len(codes) == 0 {
		return append(dst, codeSectionEmpty)
	}
	var scratch [4]byte
	mark := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0) // encoding byte + length backfill slot
	out, err := AppendHuffman(dst, codes)
	if err == nil {
		dst = out
		dst[mark] = codeSectionHuffman
		binary.LittleEndian.PutUint32(dst[mark+1:mark+5], uint32(len(dst)-mark-5))
		return dst
	}
	dst = dst[:mark]
	dst = append(dst, codeSectionRaw)
	binary.LittleEndian.PutUint32(scratch[:], uint32(len(codes)))
	dst = append(dst, scratch[:]...)
	for _, c := range codes {
		binary.LittleEndian.PutUint16(scratch[:2], c)
		dst = append(dst, scratch[:2]...)
	}
	return dst
}

// DecodeCodes implements EntropyCoder, parsing either encoding.
func (HuffmanCoder) DecodeCodes(body []byte, pos int) ([]uint16, int, error) {
	if pos >= len(body) {
		return nil, pos, io.ErrUnexpectedEOF
	}
	encoding := body[pos]
	pos++
	switch encoding {
	case codeSectionHuffman:
		if pos+4 > len(body) {
			return nil, pos, io.ErrUnexpectedEOF
		}
		length := int(binary.LittleEndian.Uint32(body[pos : pos+4]))
		pos += 4
		if length < 0 || pos+length > len(body) {
			return nil, pos, io.ErrUnexpectedEOF
		}
		codes, err := HuffmanDecode(body[pos : pos+length])
		if err != nil {
			return nil, pos, err
		}
		return codes, pos + length, nil
	case codeSectionRaw:
		if pos+4 > len(body) {
			return nil, pos, io.ErrUnexpectedEOF
		}
		m := int(binary.LittleEndian.Uint32(body[pos : pos+4]))
		pos += 4
		if m < 0 || pos+2*m > len(body) {
			return nil, pos, io.ErrUnexpectedEOF
		}
		codes := make([]uint16, m)
		for i := range codes {
			codes[i] = binary.LittleEndian.Uint16(body[pos : pos+2])
			pos += 2
		}
		return codes, pos, nil
	case codeSectionEmpty:
		return nil, pos, nil
	default:
		return nil, pos, fmt.Errorf("compress: unknown code-section encoding %d", encoding)
	}
}

// appendExceptions writes the verbatim-value section (u32 count + raw
// float64 bits) shared by the block codecs.
func appendExceptions(dst []byte, exceptions []float64) []byte {
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(exceptions)))
	dst = append(dst, scratch[:4]...)
	for _, v := range exceptions {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		dst = append(dst, scratch[:]...)
	}
	return dst
}

// parseExceptions parses the verbatim-value section starting at body[pos].
func parseExceptions(body []byte, pos int) ([]float64, int, error) {
	if pos+4 > len(body) {
		return nil, pos, io.ErrUnexpectedEOF
	}
	nex := int(binary.LittleEndian.Uint32(body[pos : pos+4]))
	pos += 4
	if nex < 0 || pos+8*nex > len(body) {
		return nil, pos, io.ErrUnexpectedEOF
	}
	exceptions := make([]float64, nex)
	for i := range exceptions {
		exceptions[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[pos : pos+8]))
		pos += 8
	}
	return exceptions, pos, nil
}

// kernelBase owns the pooled scratch every block-structured kernel carries:
// the open block, per-block metadata, the quantisation-code stream, and the
// exception values, plus the run-based segment counter of Figure 3. Kernels
// embed it and inherit the pool lifecycle — initBuffers at construction,
// resetBuffers from their reset hook, releaseBuffers from release — so a new
// codec gets zero-allocation steady state without touching a pool directly.
type kernelBase struct {
	bs         int
	block      []float64
	meta       *sbuf[byte]
	codes      *sbuf[uint16]
	exceptions *sbuf[float64]
	nblocks    int

	segments  int // runs of identical reconstructed values (Figure 3)
	lastRecon float64
	reconSeen bool
}

// initBuffers draws the scratch buffers from the package pools.
func (b *kernelBase) initBuffers(bs int) {
	b.bs = bs
	b.block = make([]float64, 0, bs)
	b.meta = bytePool.get(512)
	b.codes = u16Pool.get(1024)
	b.exceptions = floatPool.get(64)
}

// resetBuffers rewinds the base for a fresh series, keeping all scratch.
func (b *kernelBase) resetBuffers() {
	b.block = b.block[:0]
	b.meta.s = b.meta.s[:0]
	b.codes.s = b.codes.s[:0]
	b.exceptions.s = b.exceptions.s[:0]
	b.nblocks = 0
	b.segments, b.lastRecon, b.reconSeen = 0, 0, false
}

// releaseBuffers returns the scratch to the pools; the kernel must not be
// used afterwards.
func (b *kernelBase) releaseBuffers() {
	bytePool.put(b.meta)
	u16Pool.put(b.codes)
	floatPool.put(b.exceptions)
	b.meta, b.codes, b.exceptions = nil, nil, nil
}

// countRecon feeds the run-based segment counter with one reconstructed
// value.
func (b *kernelBase) countRecon(r float64) {
	if !b.reconSeen {
		b.segments = 1
		b.reconSeen = true
	} else if r != b.lastRecon {
		b.segments++
	}
	b.lastRecon = r
}

// appendBlockHeader writes the shared block-codec preamble: the block size
// and the block count.
func (b *kernelBase) appendBlockHeader(dst []byte) []byte {
	var scratch [6]byte
	binary.LittleEndian.PutUint16(scratch[:2], uint16(b.bs))
	binary.LittleEndian.PutUint32(scratch[2:6], uint32(b.nblocks))
	return append(dst, scratch[:6]...)
}

// Segments reports the runs of identical reconstructed values seen so far.
func (b *kernelBase) Segments() int { return b.segments }

// Pending reports the points buffered in the open block.
func (b *kernelBase) Pending() int { return len(b.block) }

// parseBlockHeader reads the preamble appendBlockHeader wrote.
func parseBlockHeader(body []byte) (bs, nblocks, pos int, err error) {
	if len(body) < 6 {
		return 0, 0, 0, io.ErrUnexpectedEOF
	}
	bs = int(binary.LittleEndian.Uint16(body[:2]))
	nblocks = int(binary.LittleEndian.Uint32(body[2:6]))
	if bs <= 0 || nblocks < 0 {
		return 0, 0, 0, errors.New("compress: corrupt block header")
	}
	return bs, nblocks, 6, nil
}

// predictiveKernel is the fully assembled predictive codec: one Predictor
// driven across the whole stream, a UniformQuantiser recalibrated per block,
// and an EntropyCoder over the finished code stream. Its wire form is
//
//	u16 block size | u32 block count | f32 precision per block |
//	code section (EntropyCoder) | exception section
//
// with the stored code biased by Radius+1 and 0 marking an exception, the
// same residual grammar as SZ. LFZip is an instance (NLMS predictor +
// uniform quantiser + Huffman coder); any external predictor slots in the
// same way. It implements StreamKernel, FinishAppender, and the
// reset/release lifecycle.
type predictiveKernel struct {
	kernelBase
	pred    Predictor
	quant   *UniformQuantiser
	entropy EntropyCoder
}

// newPredictiveKernel assembles a kernel from its three stages.
func newPredictiveKernel(bs int, pred Predictor, quant *UniformQuantiser, entropy EntropyCoder) *predictiveKernel {
	k := &predictiveKernel{pred: pred, quant: quant, entropy: entropy}
	k.initBuffers(bs)
	return k
}

// Push implements StreamKernel: values buffer into the open block and each
// full block is encoded immediately, so carried state stays O(block) plus
// the code stream the entropy coder needs whole.
func (k *predictiveKernel) Push(v float64) {
	k.block = append(k.block, v)
	if len(k.block) == k.bs {
		k.encodeBlock()
	}
}

func (k *predictiveKernel) encodeBlock() {
	k.nblocks++
	precision := k.quant.BlockPrecision(k.block)
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(precision))
	k.meta.s = append(k.meta.s, scratch[:]...)
	for _, v := range k.block {
		pred := k.pred.Predict()
		code, recon, ok := k.quant.Quantise(v, pred)
		if !ok {
			k.codes.s = append(k.codes.s, 0)
			k.exceptions.s = append(k.exceptions.s, v)
			recon = v
		} else {
			k.codes.s = append(k.codes.s, uint16(code+k.quant.Radius+1))
		}
		k.pred.Update(recon)
		k.countRecon(recon)
	}
	k.block = k.block[:0]
}

// Finish implements StreamKernel.
func (k *predictiveKernel) Finish() ([]byte, int) { return k.AppendFinish(nil) }

// AppendFinish implements FinishAppender: the payload body is assembled
// directly onto dst through the composed entropy coder.
func (k *predictiveKernel) AppendFinish(dst []byte) ([]byte, int) {
	if len(k.block) > 0 {
		k.encodeBlock()
	}
	dst = k.appendBlockHeader(dst)
	dst = append(dst, k.meta.s...)
	dst = k.entropy.AppendCodes(dst, k.codes.s)
	dst = appendExceptions(dst, k.exceptions.s)
	return dst, k.segments
}

// reset rewinds the kernel for a fresh series, keeping all scratch buffers.
func (k *predictiveKernel) reset() {
	k.resetBuffers()
	k.pred.Reset()
}

// release returns the scratch buffers to their pools.
func (k *predictiveKernel) release() { k.releaseBuffers() }

// NewPredictiveKernel assembles a StreamKernel from the three contract
// stages — the exported face of predictiveKernel, so an externally
// registered codec can pair its own Predictor with the shared quantiser
// and entropy stages and inherit the pooled zero-allocation lifecycle.
// Register it via Registration.NewStream and decode its payloads with
// DecodePredictiveStream using the same predictor and entropy coder.
func NewPredictiveKernel(blockSize int, pred Predictor, quant *UniformQuantiser, entropy EntropyCoder) StreamKernel {
	return newPredictiveKernel(blockSize, pred, quant, entropy)
}

// DecodePredictiveStream parses a NewPredictiveKernel payload body and
// returns its incremental value replay. pred must be a fresh predictor of
// the same kind the encoder used.
func DecodePredictiveStream(entropy EntropyCoder, pred Predictor, body []byte, count int) (ValueStream, error) {
	blocks, err := parsePredictiveBody(entropy, body, count)
	if err != nil {
		return nil, err
	}
	return newPredictiveValues(blocks, pred, NewUniformQuantiser(0, false), count), nil
}

// predictiveBlocks is the parsed form of a predictiveKernel payload.
type predictiveBlocks struct {
	bs         int
	precisions []float32
	codes      []uint16
	exceptions []float64
}

// parsePredictiveBody splits a predictiveKernel payload body into block
// precisions, codes, and exceptions.
func parsePredictiveBody(entropy EntropyCoder, body []byte, count int) (*predictiveBlocks, error) {
	bs, nblocks, pos, err := parseBlockHeader(body)
	if err != nil {
		return nil, err
	}
	if want := (count + bs - 1) / bs; nblocks != want {
		return nil, fmt.Errorf("compress: %d blocks of %d cannot cover %d values", nblocks, bs, count)
	}
	if pos+4*nblocks > len(body) {
		return nil, io.ErrUnexpectedEOF
	}
	precisions := make([]float32, nblocks)
	for i := range precisions {
		precisions[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[pos : pos+4]))
		pos += 4
	}
	codes, pos, err := entropy.DecodeCodes(body, pos)
	if err != nil {
		return nil, err
	}
	if len(codes) != count {
		return nil, fmt.Errorf("compress: code stream has %d entries, want %d", len(codes), count)
	}
	exceptions, _, err := parseExceptions(body, pos)
	if err != nil {
		return nil, err
	}
	return &predictiveBlocks{bs: bs, precisions: precisions, codes: codes, exceptions: exceptions}, nil
}

// predictiveValues replays a predictiveKernel payload incrementally: the
// carried state is the predictor (reset and re-driven on rewind) and the
// block/code/exception cursors.
type predictiveValues struct {
	blocks *predictiveBlocks
	pred   Predictor
	quant  *UniformQuantiser

	total     int
	remaining int
	i, ei     int // value and exception cursors
}

func newPredictiveValues(blocks *predictiveBlocks, pred Predictor, quant *UniformQuantiser, count int) *predictiveValues {
	return &predictiveValues{blocks: blocks, pred: pred, quant: quant, total: count, remaining: count}
}

// rewind restarts the replay from the first value (see valueRewinder).
func (p *predictiveValues) rewind() {
	p.remaining = p.total
	p.i, p.ei = 0, 0
	p.pred.Reset()
}

func (p *predictiveValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.i%p.blocks.bs == 0 {
			p.quant.SetPrecision(p.blocks.precisions[p.i/p.blocks.bs])
		}
		stored := p.blocks.codes[p.i]
		var v float64
		if stored == 0 {
			if p.ei >= len(p.blocks.exceptions) {
				return n, errors.New("compress: exception stream exhausted")
			}
			v = p.blocks.exceptions[p.ei]
			p.ei++
		} else {
			v = p.quant.Dequantise(int(stored)-p.quant.Radius-1, p.pred.Predict())
		}
		p.pred.Update(v)
		dst[n] = v
		n++
		p.i++
		p.remaining--
	}
	if p.remaining == 0 && p.ei != len(p.blocks.exceptions) {
		return n, errors.New("compress: trailing exceptions")
	}
	return n, nil
}
