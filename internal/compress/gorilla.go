package compress

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/bits"

	"lossyts/internal/timeseries"
)

// Gorilla implements Facebook's Gorilla lossless floating-point compression
// (Pelkonen et al., PVLDB 2015), the paper's lossless baseline (§3.3).
// Each value is XORed with the previous one and the result is stored with a
// variable-length encoding of its meaningful bits. Unlike the original
// two-hour blocks, the whole series is compressed as a single segment, as
// the paper does for its lower-frequency datasets.
type Gorilla struct{}

// Method returns MethodGorilla.
func (Gorilla) Method() Method { return MethodGorilla }

func init() {
	Register(Registration{
		Method:       MethodGorilla,
		Code:         4,
		New:          func() (Compressor, error) { return Gorilla{}, nil },
		Decode:       gorillaDecode,
		NewStream:    newGorillaStream,
		DecodeStream: gorillaDecodeStream,
	})
}

// Compress losslessly encodes s; epsilon is ignored. The batch path drives
// the same streaming kernel as StreamEncoder, so both produce identical
// bytes by construction.
func (g Gorilla) Compress(s *timeseries.Series, _ float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	k := &gorillaStream{prevLead: 65}
	for _, v := range s.Values {
		k.Push(v)
	}
	encoded, segments := k.Finish()
	var body bytes.Buffer
	if err := EncodeHeader(&body, MethodGorilla, s); err != nil {
		return nil, err
	}
	body.Write(encoded)
	return Finish(MethodGorilla, 0, s, body.Bytes(), segments)
}

// gorillaStream is Gorilla's incremental kernel: the previous value's bits
// and the previous meaningful-bit window — O(1) state (XOR chaining is
// naturally online; the original Gorilla is a streaming store).
type gorillaStream struct {
	bw       BitWriter
	n        int
	prev     uint64
	prevLead int // 65 marks "no previous window"
	prevMean int
}

func newGorillaStream(_ float64, _ bool) (StreamKernel, error) {
	return &gorillaStream{prevLead: 65}, nil
}

// lossless marks the method as ignoring the error bound (see losslessKernel).
func (*gorillaStream) lossless() {}

func (k *gorillaStream) Push(v float64) {
	cur := math.Float64bits(v)
	if k.n == 0 {
		k.n = 1
		k.prev = cur
		k.bw.WriteBits(cur, 64)
		return
	}
	k.n++
	xor := k.prev ^ cur
	k.prev = cur
	if xor == 0 {
		k.bw.WriteBit(0)
		return
	}
	k.bw.WriteBit(1)
	lead := bits.LeadingZeros64(xor)
	trail := bits.TrailingZeros64(xor)
	if lead > 31 {
		lead = 31 // the leading-zero count field is 5 bits wide
	}
	mean := 64 - lead - trail
	if k.prevLead <= lead && k.prevMean >= mean+(lead-k.prevLead) {
		// The meaningful bits fit inside the previous window: reuse it.
		k.bw.WriteBit(0)
		k.bw.WriteBits(xor>>uint(64-k.prevLead-k.prevMean), uint(k.prevMean))
		return
	}
	k.bw.WriteBit(1)
	k.bw.WriteBits(uint64(lead), 5)
	k.bw.WriteBits(uint64(mean-1), 6) // meaningful length 1..64 stored as 0..63
	k.bw.WriteBits(xor>>uint(trail), uint(mean))
	k.prevLead, k.prevMean = lead, mean
}

// Finish returns the bit-packed body; Gorilla compresses the whole series as
// one segment.
func (k *gorillaStream) Finish() ([]byte, int) {
	return k.bw.Bytes(), 1
}

func (k *gorillaStream) Segments() int {
	if k.n > 0 {
		return 1
	}
	return 0
}

// Pending is always 0: every pushed value is already bit-encoded.
func (k *gorillaStream) Pending() int { return 0 }

func gorillaDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, allocHint(count))
	vs := &gorillaValues{br: NewBitReader(body), remaining: count, needFirst: true}
	var buf [256]float64
	for len(values) < count {
		n, err := vs.Next(buf[:])
		values = append(values, buf[:n]...)
		if err != nil {
			return nil, err
		}
	}
	return values, nil
}

// gorillaValues replays the XOR chain incrementally: the carried state is
// the previous value's bits and the previous meaningful-bit window.
type gorillaValues struct {
	br        *BitReader
	remaining int
	needFirst bool
	prev      uint64
	prevLead  int
	prevMean  int
}

func gorillaDecodeStream(body []byte, count int) (ValueStream, error) {
	return &gorillaValues{br: NewBitReader(body), remaining: count, needFirst: true}, nil
}

func (p *gorillaValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.needFirst {
			first, err := p.br.ReadBits(64)
			if err != nil {
				return n, err
			}
			p.needFirst = false
			p.prev = first
			dst[n] = math.Float64frombits(first)
			n++
			p.remaining--
			continue
		}
		b, err := p.br.ReadBit()
		if err != nil {
			return n, err
		}
		if b == 0 {
			dst[n] = math.Float64frombits(p.prev)
			n++
			p.remaining--
			continue
		}
		if b, err = p.br.ReadBit(); err != nil {
			return n, err
		}
		if b == 1 {
			lead, err := p.br.ReadBits(5)
			if err != nil {
				return n, err
			}
			meanLen, err := p.br.ReadBits(6)
			if err != nil {
				return n, err
			}
			p.prevLead, p.prevMean = int(lead), int(meanLen)+1
		}
		meaningful, err := p.br.ReadBits(uint(p.prevMean))
		if err != nil {
			return n, err
		}
		p.prev ^= meaningful << uint(64-p.prevLead-p.prevMean)
		dst[n] = math.Float64frombits(p.prev)
		n++
		p.remaining--
	}
	return n, nil
}
