package compress

import (
	"errors"
	"io"
	"math"
	"math/bits"

	"lossyts/internal/timeseries"
)

// Gorilla implements Facebook's Gorilla lossless floating-point compression
// (Pelkonen et al., PVLDB 2015), the paper's lossless baseline (§3.3).
// Each value is XORed with the previous one and the result is stored with a
// variable-length encoding of its meaningful bits. Unlike the original
// two-hour blocks, the whole series is compressed as a single segment, as
// the paper does for its lower-frequency datasets.
type Gorilla struct{}

// Method returns MethodGorilla.
func (Gorilla) Method() Method { return MethodGorilla }

func init() {
	Register(Registration{
		Method:       MethodGorilla,
		Code:         4,
		New:          func() (Compressor, error) { return Gorilla{}, nil },
		Decode:       gorillaDecode,
		NewStream:    newGorillaStream,
		DecodeStream: gorillaDecodeStream,
	})
}

// Compress losslessly encodes s; epsilon is ignored. The batch path drives
// the same streaming kernel as StreamEncoder, so both produce identical
// bytes by construction.
func (g Gorilla) Compress(s *timeseries.Series, _ float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	k := &gorillaStream{prevLead: 65}
	return kernelCompress(MethodGorilla, 0, s, k)
}

// gorillaStream is Gorilla's incremental kernel: the previous value's bits
// and the previous meaningful-bit window — O(1) state (XOR chaining is
// naturally online; the original Gorilla is a streaming store).
type gorillaStream struct {
	bw       BitWriter
	n        int
	prev     uint64
	prevLead int // 65 marks "no previous window"
	prevMean int
}

func newGorillaStream(_ float64, _ bool) (StreamKernel, error) {
	return &gorillaStream{prevLead: 65}, nil
}

// lossless marks the method as ignoring the error bound (see losslessKernel).
func (*gorillaStream) lossless() {}

func (k *gorillaStream) Push(v float64) {
	cur := math.Float64bits(v)
	if k.n == 0 {
		k.n = 1
		k.prev = cur
		k.bw.initPooled(1024)
		k.bw.WriteBits(cur, 64)
		return
	}
	k.n++
	xor := k.prev ^ cur
	k.prev = cur
	if xor == 0 {
		k.bw.WriteBit(0)
		return
	}
	lead := bits.LeadingZeros64(xor)
	trail := bits.TrailingZeros64(xor)
	if lead > 31 {
		lead = 31 // the leading-zero count field is 5 bits wide
	}
	mean := 64 - lead - trail
	if k.prevLead <= lead && k.prevMean >= mean+(lead-k.prevLead) {
		// The meaningful bits fit inside the previous window: reuse it. The
		// "10" control pair is fused into one write, and — when the window is
		// short enough — fused with the meaningful bits too, so the common
		// case is a single WriteBits call per value.
		if k.prevMean <= 62 {
			k.bw.WriteBits(2<<uint(k.prevMean)|xor>>uint(64-k.prevLead-k.prevMean), uint(k.prevMean)+2)
			return
		}
		k.bw.WriteBits(2, 2)
		k.bw.WriteBits(xor>>uint(64-k.prevLead-k.prevMean), uint(k.prevMean))
		return
	}
	// New window: "11" + 5-bit lead + 6-bit (mean-1), fused into 13 bits.
	k.bw.WriteBits(3<<11|uint64(lead)<<6|uint64(mean-1), 13)
	k.bw.WriteBits(xor>>uint(trail), uint(mean))
	k.prevLead, k.prevMean = lead, mean
}

// Finish returns the bit-packed body; Gorilla compresses the whole series as
// one segment.
func (k *gorillaStream) Finish() ([]byte, int) {
	return k.bw.Bytes(), 1
}

// AppendFinish implements FinishAppender: the bit-packed body is copied onto
// dst in one append, so closing a stream touches no fresh memory.
func (k *gorillaStream) AppendFinish(dst []byte) ([]byte, int) {
	return append(dst, k.bw.Bytes()...), 1
}

// reset rewinds the kernel for a fresh series, keeping its bit buffer.
func (k *gorillaStream) reset() {
	k.bw.Reset()
	k.n, k.prev = 0, 0
	k.prevLead, k.prevMean = 65, 0
}

// release returns the bit buffer to the pool; the kernel must not be used
// afterwards.
func (k *gorillaStream) release() { k.bw.release() }

func (k *gorillaStream) Segments() int {
	if k.n > 0 {
		return 1
	}
	return 0
}

// Pending is always 0: every pushed value is already bit-encoded.
func (k *gorillaStream) Pending() int { return 0 }

func gorillaDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, allocHint(count))
	vs := &gorillaValues{br: NewBitReader(body), remaining: count, needFirst: true}
	var buf [256]float64
	for len(values) < count {
		n, err := vs.Next(buf[:])
		values = append(values, buf[:n]...)
		if err != nil {
			return nil, err
		}
	}
	return values, nil
}

// gorillaValues replays the XOR chain incrementally: the carried state is
// the previous value's bits and the previous meaningful-bit window.
type gorillaValues struct {
	br        *BitReader
	total     int
	remaining int
	needFirst bool
	prev      uint64
	prevLead  int
	prevMean  int
}

func gorillaDecodeStream(body []byte, count int) (ValueStream, error) {
	return &gorillaValues{br: NewBitReader(body), total: count, remaining: count, needFirst: true}, nil
}

// rewind restarts the replay from the first value (see valueRewinder).
func (p *gorillaValues) rewind() {
	p.br.reset()
	p.remaining, p.needFirst = p.total, true
	p.prev, p.prevLead, p.prevMean = 0, 0, 0
}

func (p *gorillaValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		if p.needFirst {
			first, err := p.br.ReadBits(64)
			if err != nil {
				return n, err
			}
			p.needFirst = false
			p.prev = first
			dst[n] = math.Float64frombits(first)
			n++
			p.remaining--
			continue
		}
		b, err := p.br.ReadBit()
		if err != nil {
			return n, err
		}
		if b == 0 {
			dst[n] = math.Float64frombits(p.prev)
			n++
			p.remaining--
			continue
		}
		if b, err = p.br.ReadBit(); err != nil {
			return n, err
		}
		if b == 1 {
			// Lead (5 bits) and meaningful length (6 bits) read in one go.
			win, err := p.br.ReadBits(11)
			if err != nil {
				return n, err
			}
			p.prevLead, p.prevMean = int(win>>6), int(win&63)+1
		}
		meaningful, err := p.br.ReadBits(uint(p.prevMean))
		if err != nil {
			return n, err
		}
		p.prev ^= meaningful << uint(64-p.prevLead-p.prevMean)
		dst[n] = math.Float64frombits(p.prev)
		n++
		p.remaining--
	}
	return n, nil
}
