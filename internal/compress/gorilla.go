package compress

import (
	"bytes"
	"errors"
	"math"
	"math/bits"

	"lossyts/internal/timeseries"
)

// Gorilla implements Facebook's Gorilla lossless floating-point compression
// (Pelkonen et al., PVLDB 2015), the paper's lossless baseline (§3.3).
// Each value is XORed with the previous one and the result is stored with a
// variable-length encoding of its meaningful bits. Unlike the original
// two-hour blocks, the whole series is compressed as a single segment, as
// the paper does for its lower-frequency datasets.
type Gorilla struct{}

// Method returns MethodGorilla.
func (Gorilla) Method() Method { return MethodGorilla }

func init() {
	Register(Registration{
		Method: MethodGorilla,
		Code:   4,
		New:    func() (Compressor, error) { return Gorilla{}, nil },
		Decode: gorillaDecode,
	})
}

// Compress losslessly encodes s; epsilon is ignored.
func (g Gorilla) Compress(s *timeseries.Series, _ float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	var body bytes.Buffer
	if err := EncodeHeader(&body, MethodGorilla, s); err != nil {
		return nil, err
	}
	var bw BitWriter
	prev := math.Float64bits(s.Values[0])
	bw.WriteBits(prev, 64)
	prevLead, prevMean := 65, 0 // 65 marks "no previous window"
	for _, v := range s.Values[1:] {
		cur := math.Float64bits(v)
		xor := prev ^ cur
		prev = cur
		if xor == 0 {
			bw.WriteBit(0)
			continue
		}
		bw.WriteBit(1)
		lead := bits.LeadingZeros64(xor)
		trail := bits.TrailingZeros64(xor)
		if lead > 31 {
			lead = 31 // the leading-zero count field is 5 bits wide
		}
		mean := 64 - lead - trail
		if prevLead <= lead && prevMean >= mean+(lead-prevLead) {
			// The meaningful bits fit inside the previous window: reuse it.
			bw.WriteBit(0)
			bw.WriteBits(xor>>uint(64-prevLead-prevMean), uint(prevMean))
			continue
		}
		bw.WriteBit(1)
		bw.WriteBits(uint64(lead), 5)
		bw.WriteBits(uint64(mean-1), 6) // meaningful length 1..64 stored as 0..63
		bw.WriteBits(xor>>uint(trail), uint(mean))
		prevLead, prevMean = lead, mean
	}
	body.Write(bw.Bytes())
	// Gorilla compresses the whole series as one segment.
	return Finish(MethodGorilla, 0, s, body.Bytes(), 1)
}

func gorillaDecode(body []byte, count int) ([]float64, error) {
	br := NewBitReader(body)
	first, err := br.ReadBits(64)
	if err != nil {
		return nil, err
	}
	values := make([]float64, 0, count)
	values = append(values, math.Float64frombits(first))
	prev := first
	prevLead, prevMean := 0, 0
	for len(values) < count {
		b, err := br.ReadBit()
		if err != nil {
			return nil, err
		}
		if b == 0 {
			values = append(values, math.Float64frombits(prev))
			continue
		}
		if b, err = br.ReadBit(); err != nil {
			return nil, err
		}
		if b == 1 {
			lead, err := br.ReadBits(5)
			if err != nil {
				return nil, err
			}
			meanLen, err := br.ReadBits(6)
			if err != nil {
				return nil, err
			}
			prevLead, prevMean = int(lead), int(meanLen)+1
		}
		meaningful, err := br.ReadBits(uint(prevMean))
		if err != nil {
			return nil, err
		}
		xor := meaningful << uint(64-prevLead-prevMean)
		prev ^= xor
		values = append(values, math.Float64frombits(prev))
	}
	return values, nil
}
