package compress

import (
	"errors"
	"io"

	"lossyts/internal/timeseries"
)

// Gorilla implements Facebook's Gorilla lossless floating-point compression
// (Pelkonen et al., PVLDB 2015), the paper's lossless baseline (§3.3).
// The kernel is a thin wrapper over the shared XOREncoder stage (xor.go) —
// the XOR chain itself is a reusable instance, not a Gorilla private.
// Unlike the original two-hour blocks, the whole series is compressed as a
// single segment, as the paper does for its lower-frequency datasets.
type Gorilla struct{}

// Method returns MethodGorilla.
func (Gorilla) Method() Method { return MethodGorilla }

func init() {
	Register(Registration{
		Method:       MethodGorilla,
		Code:         4,
		New:          func() (Compressor, error) { return Gorilla{}, nil },
		Decode:       gorillaDecode,
		NewStream:    newGorillaStream,
		DecodeStream: gorillaDecodeStream,
	})
}

// Compress losslessly encodes s; epsilon is ignored. The batch path drives
// the same streaming kernel as StreamEncoder, so both produce identical
// bytes by construction.
func (g Gorilla) Compress(s *timeseries.Series, _ float64) (*Compressed, error) {
	if s.Len() == 0 {
		return nil, errors.New("compress: empty series")
	}
	k := &gorillaStream{enc: newXOREncoder()}
	return kernelCompress(MethodGorilla, 0, s, k)
}

// gorillaStream is Gorilla's incremental kernel: the XOREncoder's O(1)
// state (XOR chaining is naturally online; the original Gorilla is a
// streaming store).
type gorillaStream struct {
	enc XOREncoder
}

func newGorillaStream(_ float64, _ bool) (StreamKernel, error) {
	return &gorillaStream{enc: newXOREncoder()}, nil
}

// lossless marks the method as ignoring the error bound (see losslessKernel).
func (*gorillaStream) lossless() {}

func (k *gorillaStream) Push(v float64) { k.enc.Write(v) }

// Finish returns the bit-packed body; Gorilla compresses the whole series as
// one segment.
func (k *gorillaStream) Finish() ([]byte, int) {
	return k.enc.Bytes(), 1
}

// AppendFinish implements FinishAppender: the bit-packed body is copied onto
// dst in one append, so closing a stream touches no fresh memory.
func (k *gorillaStream) AppendFinish(dst []byte) ([]byte, int) {
	return append(dst, k.enc.Bytes()...), 1
}

// reset rewinds the kernel for a fresh series, keeping its bit buffer.
func (k *gorillaStream) reset() { k.enc.Reset() }

// release returns the bit buffer to the pool; the kernel must not be used
// afterwards.
func (k *gorillaStream) release() { k.enc.release() }

func (k *gorillaStream) Segments() int {
	if k.enc.Count() > 0 {
		return 1
	}
	return 0
}

// Pending is always 0: every pushed value is already bit-encoded.
func (k *gorillaStream) Pending() int { return 0 }

func gorillaDecode(body []byte, count int) ([]float64, error) {
	values := make([]float64, 0, allocHint(count))
	vs := &gorillaValues{dec: newXORDecoder(body), total: count, remaining: count}
	var buf [256]float64
	for len(values) < count {
		n, err := vs.Next(buf[:])
		values = append(values, buf[:n]...)
		if err != nil {
			return nil, err
		}
	}
	return values, nil
}

// gorillaValues replays the XOR chain incrementally via the shared
// XORDecoder stage.
type gorillaValues struct {
	dec       XORDecoder
	total     int
	remaining int
}

func gorillaDecodeStream(body []byte, count int) (ValueStream, error) {
	return &gorillaValues{dec: newXORDecoder(body), total: count, remaining: count}, nil
}

// rewind restarts the replay from the first value (see valueRewinder).
func (p *gorillaValues) rewind() {
	p.dec.Reset()
	p.remaining = p.total
}

func (p *gorillaValues) Next(dst []float64) (int, error) {
	if p.remaining <= 0 {
		return 0, io.EOF
	}
	n := 0
	for n < len(dst) && p.remaining > 0 {
		v, err := p.dec.Next()
		if err != nil {
			return n, err
		}
		dst[n] = v
		n++
		p.remaining--
	}
	return n, nil
}
