package compress

import (
	"sync"
	"testing"
)

func TestPoolClass(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{0, 0},
		{1, 0},
		{64, 0},
		{65, 1},
		{128, 1},
		{129, 2},
		{1 << 24, poolClasses - 1},
		{1<<24 + 1, -1},
	}
	for _, c := range cases {
		if got := poolClass(c.n); got != c.want {
			t.Errorf("poolClass(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestPoolGetCapacityContract(t *testing.T) {
	var p bufPool[byte]
	for _, n := range []int{0, 1, 64, 100, 4096, 1 << 20, 1<<24 + 5} {
		b := p.get(n)
		if len(b.s) != 0 {
			t.Errorf("get(%d): len %d, want 0", n, len(b.s))
		}
		if cap(b.s) < n {
			t.Errorf("get(%d): cap %d < %d", n, cap(b.s), n)
		}
		p.put(b)
	}
}

// A slice grown by append lands at an off-class capacity; put must file it
// under the class below, so a later get from that class still receives at
// least the capacity it asked for.
func TestPoolPutOffClassCapacity(t *testing.T) {
	var p bufPool[byte]
	grown := &sbuf[byte]{s: make([]byte, 0, 5376)} // between 4096 and 8192
	p.put(grown)
	got := p.get(8192)
	if got == grown {
		t.Fatalf("off-class cap 5376 served for get(8192): cap %d < 8192", cap(got.s))
	}
	if cap(got.s) < 8192 {
		t.Fatalf("get(8192): cap %d < 8192", cap(got.s))
	}
	got2 := p.get(4096)
	if got2 != grown {
		t.Skip("pool did not retain the grown buffer (valid sync.Pool behaviour)")
	}
	if cap(got2.s) < 4096 {
		t.Fatalf("get(4096) returned cap %d < 4096", cap(got2.s))
	}
}

func TestPoolPutDropsUnpoolable(t *testing.T) {
	var p bufPool[byte]
	p.put(nil)                                    // must not panic
	p.put(&sbuf[byte]{})                          // nil slice dropped
	p.put(&sbuf[byte]{s: make([]byte, 0, 16)})    // below min class dropped
	p.put(&sbuf[byte]{s: make([]byte, 0, 1<<25)}) // above max class dropped
	for i := range p.classes {
		if v := p.classes[i].Get(); v != nil {
			t.Fatalf("class %d retained an unpoolable buffer (cap %d)", i, cap(v.(*sbuf[byte]).s))
		}
	}
}

func TestGetPutSliceRoundTrip(t *testing.T) {
	b := GetBytes(1000)
	if len(b) != 0 || cap(b) < 1000 {
		t.Fatalf("GetBytes(1000): len %d cap %d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	PutBytes(b)
	f := GetFloats(256)
	if len(f) != 0 || cap(f) < 256 {
		t.Fatalf("GetFloats(256): len %d cap %d", len(f), cap(f))
	}
	PutFloats(f)
	PutBytes(nil) // must not panic
	PutFloats(nil)
}

func TestDetachSeversAliasing(t *testing.T) {
	if Detach(nil) != nil {
		t.Fatal("Detach(nil) != nil")
	}
	src := []byte{1, 2, 3}
	d := Detach(src)
	src[0] = 99
	if d[0] != 1 {
		t.Fatal("Detach result aliases source")
	}
}

// CloseAppend's payload aliases the caller's buffer — the documented sharp
// edge. Clone must produce a payload that survives the buffer's reuse.
func TestCloneSeversPooledPayload(t *testing.T) {
	s := synthSeries(512, 3)
	enc, err := NewStreamEncoder(MethodPMC, s, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Values {
		if err := enc.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	buf := GetBytes(64)
	c, err := enc.CloseAppend(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Payload) > 0 && len(c.Payload) <= cap(buf) && &c.Payload[0] != &buf[:1][0] {
		t.Fatal("CloseAppend payload does not alias the caller's buffer")
	}
	kept := c.Clone()
	enc.Release()
	// Simulate the buffer being reused after PutBytes: scribble over it.
	for i := range c.Payload {
		c.Payload[i] = 0xAA
	}
	PutBytes(c.Payload)
	got, err := kept.Decompress()
	if err != nil {
		t.Fatalf("cloned payload corrupted by buffer reuse: %v", err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("clone decoded %d values, want %d", got.Len(), s.Len())
	}
}

// Concurrent encoders hammering the shared pools: meaningful mainly under
// -race, which sees any unsynchronised reuse of a pooled buffer.
func TestPoolConcurrentStress(t *testing.T) {
	s := synthSeries(2048, 11)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			methods := streamMethods()
			for i := 0; i < 20; i++ {
				m := methods[(seed+i)%len(methods)]
				enc, err := NewStreamEncoder(m, s, 0.05)
				if err != nil {
					t.Error(err)
					return
				}
				for _, v := range s.Values {
					if err := enc.Push(v); err != nil {
						t.Error(err)
						return
					}
				}
				buf := GetBytes(512)
				c, err := enc.CloseAppend(buf)
				if err != nil {
					t.Error(err)
					return
				}
				kept := c.Clone()
				PutBytes(c.Payload)
				enc.Release()
				dec, err := NewStreamDecoder(kept, 256)
				if err != nil {
					t.Error(err)
					return
				}
				total := 0
				for {
					chunk, ok := dec.Next()
					if !ok {
						break
					}
					total += chunk.Len()
				}
				if err := dec.Err(); err != nil {
					t.Error(err)
					return
				}
				dec.Release()
				if total != s.Len() {
					t.Errorf("%s: decoded %d of %d values", m, total, s.Len())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
