package compress

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"testing"

	"lossyts/internal/datasets"
	"lossyts/internal/timeseries"
)

// TestStreamedGoldenHashes builds a golden SHA-256 table from the batch
// payloads of every streaming compressor × every registered dataset × three
// error bounds, then requires the chunked streaming path (encode from a
// chunk Source, decode through StreamDecoder) to reproduce each entry
// exactly. The table is computed from the batch path at test time rather
// than hard-coded: the contract under test is stream ≡ batch, and baking in
// bytes would instead pin the payloads to one architecture's floating-point
// rounding.
func TestStreamedGoldenHashes(t *testing.T) {
	epsilons := []float64{0.01, 0.1, 0.5}
	names := datasets.Names
	if len(names) != 6 {
		t.Fatalf("expected the paper's 6 datasets, registry has %v", names)
	}
	type key struct {
		ds   string
		m    Method
		eps  float64
		hash string
	}
	var golden []key
	series := map[string]*timeseries.Series{}
	for _, name := range names {
		ds, err := datasets.Load(name, 0.02, 1)
		if err != nil {
			t.Fatal(err)
		}
		s := ds.Target()
		series[name] = s
		for _, m := range streamMethods() {
			comp, err := New(m)
			if err != nil {
				t.Fatal(err)
			}
			for _, eps := range epsilons {
				batch, err := comp.Compress(s, eps)
				if err != nil {
					t.Fatalf("%s/%s/%v: %v", name, m, eps, err)
				}
				sum := sha256.Sum256(batch.Payload)
				golden = append(golden, key{ds: name, m: m, eps: eps, hash: hex.EncodeToString(sum[:])})
			}
		}
	}
	if want := 6 * len(streamMethods()) * 3; len(golden) != want {
		t.Fatalf("golden table has %d entries, want %d", len(golden), want)
	}
	for _, g := range golden {
		s := series[g.ds]
		enc, err := NewStreamEncoderAt(g.m, s.Start, s.Interval, g.eps)
		if err != nil {
			t.Fatal(err)
		}
		src := s.Chunks(timeseries.DefaultChunkSize)
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			if err := enc.PushChunk(c); err != nil {
				t.Fatal(err)
			}
		}
		streamed, err := enc.Close()
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(streamed.Payload)
		if got := hex.EncodeToString(sum[:]); got != g.hash {
			t.Errorf("%s/%s/eps=%v: streamed payload hash %s != golden %s", g.ds, g.m, g.eps, got[:12], g.hash[:12])
		}
		// The streamed payload must also reconstruct chunk-by-chunk to the
		// batch decompression, bit for bit.
		want, err := streamed.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewStreamDecoder(streamed, 300)
		if err != nil {
			t.Fatal(err)
		}
		got, err := timeseries.Collect("", dec)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("%s/%s/eps=%v: streamed reconstruction differs", g.ds, g.m, g.eps)
		}
	}
}

// TestConcurrentStreamEncoders runs many encoders over the same shared
// series from separate goroutines — the evaluation grid's stream mode does
// exactly this, one encoder per (method, epsilon) cell — and checks every
// result against the batch payload. Run with -race this doubles as the
// stress test that kernels share no hidden state.
func TestConcurrentStreamEncoders(t *testing.T) {
	s := synthSeries(2000, 77)
	want := map[Method][]byte{}
	for _, m := range streamMethods() {
		comp, _ := New(m)
		batch, err := comp.Compress(s, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want[m] = batch.Payload
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		for _, m := range streamMethods() {
			wg.Add(1)
			go func(m Method) {
				defer wg.Done()
				enc, err := NewStreamEncoder(m, s, 0.1)
				if err != nil {
					errs <- err
					return
				}
				src := s.Chunks(128)
				for {
					c, ok := src.Next()
					if !ok {
						break
					}
					if err := enc.PushChunk(c); err != nil {
						errs <- err
						return
					}
				}
				streamed, err := enc.Close()
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(streamed.Payload, want[m]) {
					errs <- errConcurrentMismatch(m)
				}
			}(m)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errConcurrentMismatch Method

func (e errConcurrentMismatch) Error() string {
	return "concurrent " + string(e) + " encoder diverged from batch"
}
