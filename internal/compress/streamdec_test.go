package compress

import (
	"testing"

	"lossyts/internal/timeseries"
)

// decodeMethods compresses the series with every registered method
// (SeasonalPMC with the test period) and returns the payloads.
func decodeMethods(t *testing.T, s *timeseries.Series, eps float64) map[Method]*Compressed {
	t.Helper()
	out := map[Method]*Compressed{}
	for _, m := range streamMethods() {
		comp, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		c, err := comp.Compress(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		out[m] = c
	}
	c, err := SeasonalPMC{Period: 48}.Compress(s, eps)
	if err != nil {
		t.Fatal(err)
	}
	out[MethodSeasonalPMC] = c
	return out
}

func TestStreamDecoderMatchesBatchDecode(t *testing.T) {
	s := synthSeries(2500, 11)
	for m, c := range decodeMethods(t, s, 0.1) {
		batch, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 37, 512, 10000, 0} {
			dec, err := NewStreamDecoder(c, chunk)
			if err != nil {
				t.Fatalf("%s: %v", m, err)
			}
			if dec.Len() != s.Len() || dec.Start() != s.Start || dec.Interval() != s.Interval {
				t.Fatalf("%s: decoder metadata %d/%d/%d", m, dec.Len(), dec.Start(), dec.Interval())
			}
			got, err := timeseries.Collect("", dec)
			if err != nil {
				t.Fatalf("%s chunk=%d: %v", m, chunk, err)
			}
			if !got.Equal(batch) {
				t.Errorf("%s chunk=%d: streamed reconstruction differs from batch", m, chunk)
			}
		}
	}
}

func TestStreamDecoderChunkGeometry(t *testing.T) {
	s := synthSeries(1000, 3)
	comp, _ := New(MethodPMC)
	c, err := comp.Compress(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewStreamDecoder(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	prevEnd := s.Start
	total := 0
	for {
		chunk, ok := dec.Next()
		if !ok {
			break
		}
		if chunk.Len() == 0 || chunk.Len() > 64 {
			t.Fatalf("chunk of %d values", chunk.Len())
		}
		if chunk.Start != prevEnd || chunk.Interval != s.Interval {
			t.Fatalf("chunk at %d, want %d", chunk.Start, prevEnd)
		}
		prevEnd = chunk.End()
		total += chunk.Len()
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if total != s.Len() {
		t.Fatalf("decoded %d of %d values", total, s.Len())
	}
}

func TestStreamDecoderIsASource(t *testing.T) {
	// StreamDecoder satisfies timeseries.Source, so reconstruction feeds
	// anything chunk-aware without an adapter.
	var _ timeseries.Source = (*StreamDecoder)(nil)
}

func TestStreamDecoderCorruptPayload(t *testing.T) {
	s := synthSeries(500, 9)
	comp, _ := New(MethodPMC)
	c, err := comp.Compress(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the encoded body: the decoder must surface an error through
	// Err, not hang or fabricate values.
	raw, err := GunzipBytes(c.Payload)
	if err != nil {
		t.Fatal(err)
	}
	gz, err := GzipBytes(raw[:len(raw)-5])
	if err != nil {
		t.Fatal(err)
	}
	bad := &Compressed{Method: c.Method, Epsilon: c.Epsilon, N: c.N, Segments: c.Segments, Payload: gz}
	dec, err := NewStreamDecoder(bad, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := timeseries.Collect("", dec); err == nil {
		t.Error("truncated payload should fail to collect")
	}
	if dec.Err() == nil {
		t.Error("decoder should report the corruption")
	}
	// A method mismatch is caught at construction.
	bad2 := &Compressed{Method: MethodSwing, N: c.N, Payload: c.Payload}
	if _, err := NewStreamDecoder(bad2, 128); err == nil {
		t.Error("method mismatch should be rejected")
	}
}
