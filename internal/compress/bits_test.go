package compress

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitRoundTrip(t *testing.T) {
	var w BitWriter
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xDEADBEEF, 32)
	r := NewBitReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("second bit")
	}
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Fatalf("4 bits = %b", v)
	}
	if v, _ := r.ReadBits(32); v != 0xDEADBEEF {
		t.Fatalf("32 bits = %x", v)
	}
}

func TestBitReaderEOF(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("expected EOF")
	}
	if _, err := r.ReadBits(65); err == nil {
		t.Fatal("n>64 should error")
	}
}

func TestBitRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		type item struct {
			v    uint64
			bits uint
		}
		items := make([]item, n)
		var w BitWriter
		for i := range items {
			bits := uint(1 + rng.Intn(64))
			v := rng.Uint64()
			if bits < 64 {
				v &= (1 << bits) - 1
			}
			items[i] = item{v, bits}
			w.WriteBits(v, bits)
		}
		r := NewBitReader(w.Bytes())
		for _, it := range items {
			got, err := r.ReadBits(it.bits)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	syms := []uint16{1, 1, 1, 1, 2, 2, 3, 70, 70, 70, 70, 70, 70, 65535}
	enc, err := HuffmanEncode(syms)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := HuffmanDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(syms) {
		t.Fatalf("decoded %d symbols, want %d", len(dec), len(syms))
	}
	for i := range syms {
		if dec[i] != syms[i] {
			t.Fatalf("symbol %d = %d, want %d", i, dec[i], syms[i])
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	syms := []uint16{7, 7, 7, 7}
	enc, err := HuffmanEncode(syms)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := HuffmanDecode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range dec {
		if s != 7 {
			t.Fatalf("decoded %v", dec)
		}
	}
}

func TestHuffmanEmpty(t *testing.T) {
	if _, err := HuffmanEncode(nil); err == nil {
		t.Error("empty input should error")
	}
	if _, err := HuffmanDecode([]byte{1, 2}); err == nil {
		t.Error("truncated stream should error")
	}
}

func TestHuffmanCompresses(t *testing.T) {
	// A heavily skewed stream should come out well below 2 bytes/symbol.
	syms := make([]uint16, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range syms {
		if rng.Float64() < 0.95 {
			syms[i] = 42
		} else {
			syms[i] = uint16(rng.Intn(16))
		}
	}
	enc, err := HuffmanEncode(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > len(syms) {
		t.Fatalf("huffman output %d bytes for %d skewed symbols", len(enc), len(syms))
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		syms := make([]uint16, n)
		alphabet := 1 + rng.Intn(64)
		for i := range syms {
			syms[i] = uint16(rng.Intn(alphabet))
		}
		enc, err := HuffmanEncode(syms)
		if err != nil {
			return false
		}
		dec, err := HuffmanDecode(enc)
		if err != nil || len(dec) != n {
			return false
		}
		for i := range syms {
			if dec[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly: " +
		"the quick brown fox jumps over the lazy dog")
	gz, err := GzipBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := GunzipBytes(gz)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Fatal("gzip round trip mismatch")
	}
	if _, err := GunzipBytes([]byte("not gzip")); err == nil {
		t.Error("invalid gzip should error")
	}
}
