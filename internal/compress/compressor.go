package compress

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
	"time"

	"lossyts/internal/timeseries"
)

// Method identifies a compression algorithm.
type Method string

// The compression methods evaluated in the paper.
const (
	MethodPMC     Method = "PMC"
	MethodSwing   Method = "SWING"
	MethodSZ      Method = "SZ"
	MethodGorilla Method = "GORILLA"
)

// Methods lists the lossy methods in the paper's order.
var Methods = []Method{MethodPMC, MethodSwing, MethodSZ}

// ErrorBounds is the paper's 13 piecewise relative error bounds (§3.2):
// dense below 0.1, sparser above.
var ErrorBounds = []float64{0.01, 0.03, 0.05, 0.07, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.65, 0.8}

// Compressor compresses a regular time series under a pointwise relative
// error bound (PEBLC, paper Definition 4).
type Compressor interface {
	Method() Method
	// Compress encodes s so that every decompressed value v̂ satisfies
	// |v − v̂| ≤ epsilon·|v|. Lossless methods ignore epsilon.
	Compress(s *timeseries.Series, epsilon float64) (*Compressed, error)
}

// Compressed is the stored representation of a compressed series. Payload
// is the final .gz byte stream whose length is the size used in all
// compression-ratio computations.
type Compressed struct {
	Method   Method
	Epsilon  float64
	N        int    // number of data points
	Segments int    // number of segments/models produced (Figure 3)
	Payload  []byte // gzip-compressed encoding, including the timestamp header
}

// Size returns the compressed size in bytes (the .gz file size).
func (c *Compressed) Size() int { return len(c.Payload) }

// Decompress reconstructs the time series from the payload.
func (c *Compressed) Decompress() (*timeseries.Series, error) {
	values, hdr, err := c.appendValues(nil)
	if err != nil {
		return nil, err
	}
	return timeseries.New("", int64(hdr.start), int64(hdr.interval), values), nil
}

// AppendValues decompresses the payload and appends every reconstructed
// value to dst, returning the extended slice — the decode-side mirror of
// StreamEncoder.CloseAppend. Callers with a request-scoped buffer (GetFloats
// or a retained slice) decode repeatedly without per-op slice allocation;
// the gunzipped frame lives in a pooled buffer for the duration of the call.
// On error the (possibly extended) dst is returned alongside, so a pooled
// buffer is never lost.
func (c *Compressed) AppendValues(dst []float64) ([]float64, error) {
	out, _, err := c.appendValues(dst)
	return out, err
}

func (c *Compressed) appendValues(dst []float64) ([]float64, header, error) {
	raw := bytePool.get(2 * len(c.Payload))
	defer bytePool.put(raw)
	var err error
	raw.s, err = AppendGunzip(raw.s, c.Payload)
	if err != nil {
		return dst, header{}, err
	}
	hdr, body, err := decodeHeader(raw.s)
	if err != nil {
		return dst, header{}, err
	}
	if hdr.method != c.Method {
		return dst, hdr, fmt.Errorf("compress: payload method %s does not match %s", hdr.method, c.Method)
	}
	reg, err := lookup(c.Method)
	if err != nil {
		return dst, hdr, err
	}
	if reg.DecodeStream == nil {
		values, err := reg.Decode(body, int(hdr.count))
		if err != nil {
			return dst, hdr, err
		}
		return append(dst, values...), hdr, nil
	}
	vs, err := reg.DecodeStream(body, int(hdr.count))
	if err != nil {
		return dst, hdr, err
	}
	base := len(dst)
	hint := allocHint(int(hdr.count)) + 1 // never grow by zero
	for {
		if len(dst) == cap(dst) {
			dst = slices.Grow(dst, hint)
		}
		n, err := vs.Next(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return dst, hdr, err
		}
		if n == 0 {
			// A ValueStream yields progress or an error; a stall here would
			// loop forever on a misbehaving external registration.
			return dst, hdr, io.ErrUnexpectedEOF
		}
	}
	if got := len(dst) - base; got != int(hdr.count) {
		return dst, hdr, fmt.Errorf("compress: payload decoded to %d values, header claims %d", got, hdr.count)
	}
	return dst, hdr, nil
}

// New returns the compressor implementing the given method, consulting the
// registry so externally registered methods resolve exactly like the
// built-ins. Unknown names yield an *UnknownMethodError.
func New(m Method) (Compressor, error) {
	reg, err := lookup(m)
	if err != nil {
		return nil, err
	}
	return reg.New()
}

// header is the shared stream header described in §3.2: the first timestamp
// as a 32-bit integer, the sampling interval as a 16-bit integer, and the
// number of data points (so decompression knows when to stop).
type header struct {
	method   Method
	start    uint32
	interval uint16
	count    uint32
}

// EncodeHeader writes the shared stream header for m into buf. Compressor
// implementations — built-in and external — call it first, append their
// encoded body, and hand the buffer to Finish.
func EncodeHeader(buf *bytes.Buffer, m Method, s *timeseries.Series) error {
	return EncodeHeaderN(buf, m, s.Start, s.Interval, s.Len())
}

// EncodeHeaderN is EncodeHeader for producers that know the series geometry
// without holding its values — the streaming encoder writes its header this
// way at Close, so finishing a stream never materialises an O(n) slice.
func EncodeHeaderN(buf *bytes.Buffer, m Method, start, interval int64, n int) error {
	code, err := methodCode(m)
	if err != nil {
		return err
	}
	if start < 0 || start > math.MaxUint32 {
		return fmt.Errorf("compress: start timestamp %d does not fit the 32-bit header field", start)
	}
	if interval < 0 || interval > math.MaxUint16 {
		return fmt.Errorf("compress: interval %d does not fit the 16-bit header field", interval)
	}
	buf.WriteByte(code)
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(start))
	buf.Write(scratch[:])
	binary.LittleEndian.PutUint16(scratch[:2], uint16(interval))
	buf.Write(scratch[:2])
	binary.LittleEndian.PutUint32(scratch[:], uint32(n))
	buf.Write(scratch[:])
	return nil
}

// appendHeader is EncodeHeaderN in append form: it writes the shared stream
// header onto dst and returns the extended slice, byte-identical to the
// buffer-based encoder. The no-copy close path (StreamEncoder.CloseAppend,
// kernelCompress) frames payloads this way so assembling a frame touches
// only pooled memory.
func appendHeader(dst []byte, m Method, start, interval int64, n int) ([]byte, error) {
	code, err := methodCode(m)
	if err != nil {
		return dst, err
	}
	if start < 0 || start > math.MaxUint32 {
		return dst, fmt.Errorf("compress: start timestamp %d does not fit the 32-bit header field", start)
	}
	if interval < 0 || interval > math.MaxUint16 {
		return dst, fmt.Errorf("compress: interval %d does not fit the 16-bit header field", interval)
	}
	var scratch [4]byte
	dst = append(dst, code)
	binary.LittleEndian.PutUint32(scratch[:], uint32(start))
	dst = append(dst, scratch[:4]...)
	binary.LittleEndian.PutUint16(scratch[:2], uint16(interval))
	dst = append(dst, scratch[:2]...)
	binary.LittleEndian.PutUint32(scratch[:], uint32(n))
	dst = append(dst, scratch[:4]...)
	return dst, nil
}

// kernelCompress is the shared batch path behind the built-in Compress
// implementations: it drives the method's stream kernel over the whole
// series — which is what makes batch and streamed payloads byte-identical by
// construction — then frames and gzips the body through pooled buffers and
// releases the kernel's scratch. Only the returned Payload is a fresh heap
// allocation, because batch callers retain it indefinitely.
func kernelCompress(m Method, epsilon float64, s *timeseries.Series, k StreamKernel) (*Compressed, error) {
	for _, v := range s.Values {
		k.Push(v)
	}
	frame := bytePool.get(s.Len() + 64)
	var err error
	frame.s, err = appendHeader(frame.s, m, s.Start, s.Interval, s.Len())
	if err != nil {
		bytePool.put(frame)
		return nil, err
	}
	var segments int
	if fa, ok := k.(FinishAppender); ok {
		frame.s, segments = fa.AppendFinish(frame.s)
	} else {
		var body []byte
		body, segments = k.Finish()
		frame.s = append(frame.s, body...)
	}
	gz, err := GzipBytes(frame.s)
	bytePool.put(frame)
	if r, ok := k.(kernelReleaser); ok {
		r.release()
	}
	if err != nil {
		return nil, err
	}
	return &Compressed{Method: m, Epsilon: epsilon, N: s.Len(), Segments: segments, Payload: gz}, nil
}

// allocHint caps the initial capacity of decode output slices. The claimed
// count comes from an untrusted header field, so pre-allocating it in full
// would let a corrupt (or fuzzed) 20-byte frame demand gigabytes before any
// body byte is validated; growth past the hint is amortised by append.
func allocHint(count int) int {
	const maxPrealloc = 1 << 16
	if count < maxPrealloc {
		return count
	}
	return maxPrealloc
}

func decodeHeader(raw []byte) (header, []byte, error) {
	if len(raw) < 11 {
		return header{}, nil, io.ErrUnexpectedEOF
	}
	m, err := methodFromCode(raw[0])
	if err != nil {
		return header{}, nil, err
	}
	return header{
		method:   m,
		start:    binary.LittleEndian.Uint32(raw[1:5]),
		interval: binary.LittleEndian.Uint16(raw[5:7]),
		count:    binary.LittleEndian.Uint32(raw[7:11]),
	}, raw[11:], nil
}

// Finish gzips the encoded stream (header plus body, as produced by
// EncodeHeader followed by the method's body encoding) and assembles the
// Compressed value whose payload length is the size used in all
// compression-ratio computations.
func Finish(m Method, epsilon float64, s *timeseries.Series, body []byte, segments int) (*Compressed, error) {
	gz, err := GzipBytes(body)
	if err != nil {
		return nil, err
	}
	return &Compressed{Method: m, Epsilon: epsilon, N: s.Len(), Segments: segments, Payload: gz}, nil
}

// RawGzipSize returns the size in bytes of the raw dataset's .gz encoding,
// the numerator of the paper's compression ratio (Eq. 3). As in the paper,
// the raw dataset is the exported CSV — one "timestamp,value" row per data
// point — with gzip applied directly to it (§3.2, §3.5). Rows stream
// through the gzip writer into a counting sink, so only the size is
// computed and the CSV is never materialised; deflate output depends only
// on the input bytes, not on write boundaries, so the count matches what
// gzipping the whole buffer would produce.
func RawGzipSize(s *timeseries.Series) (int, error) {
	var cw countingWriter
	zw := gzip.NewWriter(&cw)
	for i, v := range s.Values {
		if _, err := fmt.Fprintf(zw, "%s,%g\n", time.Unix(s.TimeAt(i), 0).UTC().Format("2006-01-02 15:04:05"), v); err != nil {
			return 0, err
		}
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// countingWriter discards its input and records how many bytes passed.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// Ratio returns the compression ratio raw/compressed for a compressed
// series (paper Eq. 3, both sizes as .gz byte counts).
func Ratio(s *timeseries.Series, c *Compressed) (float64, error) {
	raw, err := RawGzipSize(s)
	if err != nil {
		return 0, err
	}
	if c.Size() == 0 {
		return 0, fmt.Errorf("compress: empty payload")
	}
	return float64(raw) / float64(c.Size()), nil
}
