package compress

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"lossyts/internal/timeseries"
)

// Method identifies a compression algorithm.
type Method string

// The compression methods evaluated in the paper.
const (
	MethodPMC     Method = "PMC"
	MethodSwing   Method = "SWING"
	MethodSZ      Method = "SZ"
	MethodGorilla Method = "GORILLA"
)

// Methods lists the lossy methods in the paper's order.
var Methods = []Method{MethodPMC, MethodSwing, MethodSZ}

// ErrorBounds is the paper's 13 piecewise relative error bounds (§3.2):
// dense below 0.1, sparser above.
var ErrorBounds = []float64{0.01, 0.03, 0.05, 0.07, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.65, 0.8}

// Compressor compresses a regular time series under a pointwise relative
// error bound (PEBLC, paper Definition 4).
type Compressor interface {
	Method() Method
	// Compress encodes s so that every decompressed value v̂ satisfies
	// |v − v̂| ≤ epsilon·|v|. Lossless methods ignore epsilon.
	Compress(s *timeseries.Series, epsilon float64) (*Compressed, error)
}

// Compressed is the stored representation of a compressed series. Payload
// is the final .gz byte stream whose length is the size used in all
// compression-ratio computations.
type Compressed struct {
	Method   Method
	Epsilon  float64
	N        int    // number of data points
	Segments int    // number of segments/models produced (Figure 3)
	Payload  []byte // gzip-compressed encoding, including the timestamp header
}

// Size returns the compressed size in bytes (the .gz file size).
func (c *Compressed) Size() int { return len(c.Payload) }

// Decompress reconstructs the time series from the payload.
func (c *Compressed) Decompress() (*timeseries.Series, error) {
	raw, err := GunzipBytes(c.Payload)
	if err != nil {
		return nil, err
	}
	hdr, body, err := decodeHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.method != c.Method {
		return nil, fmt.Errorf("compress: payload method %s does not match %s", hdr.method, c.Method)
	}
	reg, err := lookup(c.Method)
	if err != nil {
		return nil, err
	}
	values, err := reg.Decode(body, int(hdr.count))
	if err != nil {
		return nil, err
	}
	return timeseries.New("", int64(hdr.start), int64(hdr.interval), values), nil
}

// New returns the compressor implementing the given method, consulting the
// registry so externally registered methods resolve exactly like the
// built-ins. Unknown names yield an *UnknownMethodError.
func New(m Method) (Compressor, error) {
	reg, err := lookup(m)
	if err != nil {
		return nil, err
	}
	return reg.New()
}

// header is the shared stream header described in §3.2: the first timestamp
// as a 32-bit integer, the sampling interval as a 16-bit integer, and the
// number of data points (so decompression knows when to stop).
type header struct {
	method   Method
	start    uint32
	interval uint16
	count    uint32
}

// EncodeHeader writes the shared stream header for m into buf. Compressor
// implementations — built-in and external — call it first, append their
// encoded body, and hand the buffer to Finish.
func EncodeHeader(buf *bytes.Buffer, m Method, s *timeseries.Series) error {
	return EncodeHeaderN(buf, m, s.Start, s.Interval, s.Len())
}

// EncodeHeaderN is EncodeHeader for producers that know the series geometry
// without holding its values — the streaming encoder writes its header this
// way at Close, so finishing a stream never materialises an O(n) slice.
func EncodeHeaderN(buf *bytes.Buffer, m Method, start, interval int64, n int) error {
	code, err := methodCode(m)
	if err != nil {
		return err
	}
	if start < 0 || start > math.MaxUint32 {
		return fmt.Errorf("compress: start timestamp %d does not fit the 32-bit header field", start)
	}
	if interval < 0 || interval > math.MaxUint16 {
		return fmt.Errorf("compress: interval %d does not fit the 16-bit header field", interval)
	}
	buf.WriteByte(code)
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(start))
	buf.Write(scratch[:])
	binary.LittleEndian.PutUint16(scratch[:2], uint16(interval))
	buf.Write(scratch[:2])
	binary.LittleEndian.PutUint32(scratch[:], uint32(n))
	buf.Write(scratch[:])
	return nil
}

// allocHint caps the initial capacity of decode output slices. The claimed
// count comes from an untrusted header field, so pre-allocating it in full
// would let a corrupt (or fuzzed) 20-byte frame demand gigabytes before any
// body byte is validated; growth past the hint is amortised by append.
func allocHint(count int) int {
	const maxPrealloc = 1 << 16
	if count < maxPrealloc {
		return count
	}
	return maxPrealloc
}

func decodeHeader(raw []byte) (header, []byte, error) {
	if len(raw) < 11 {
		return header{}, nil, io.ErrUnexpectedEOF
	}
	m, err := methodFromCode(raw[0])
	if err != nil {
		return header{}, nil, err
	}
	return header{
		method:   m,
		start:    binary.LittleEndian.Uint32(raw[1:5]),
		interval: binary.LittleEndian.Uint16(raw[5:7]),
		count:    binary.LittleEndian.Uint32(raw[7:11]),
	}, raw[11:], nil
}

// Finish gzips the encoded stream (header plus body, as produced by
// EncodeHeader followed by the method's body encoding) and assembles the
// Compressed value whose payload length is the size used in all
// compression-ratio computations.
func Finish(m Method, epsilon float64, s *timeseries.Series, body []byte, segments int) (*Compressed, error) {
	gz, err := GzipBytes(body)
	if err != nil {
		return nil, err
	}
	return &Compressed{Method: m, Epsilon: epsilon, N: s.Len(), Segments: segments, Payload: gz}, nil
}

// RawGzipSize returns the size in bytes of the raw dataset's .gz encoding,
// the numerator of the paper's compression ratio (Eq. 3). As in the paper,
// the raw dataset is the exported CSV — one "timestamp,value" row per data
// point — with gzip applied directly to it (§3.2, §3.5). Rows stream
// through the gzip writer into a counting sink, so only the size is
// computed and the CSV is never materialised; deflate output depends only
// on the input bytes, not on write boundaries, so the count matches what
// gzipping the whole buffer would produce.
func RawGzipSize(s *timeseries.Series) (int, error) {
	var cw countingWriter
	zw := gzip.NewWriter(&cw)
	for i, v := range s.Values {
		if _, err := fmt.Fprintf(zw, "%s,%g\n", time.Unix(s.TimeAt(i), 0).UTC().Format("2006-01-02 15:04:05"), v); err != nil {
			return 0, err
		}
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// countingWriter discards its input and records how many bytes passed.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// Ratio returns the compression ratio raw/compressed for a compressed
// series (paper Eq. 3, both sizes as .gz byte counts).
func Ratio(s *timeseries.Series, c *Compressed) (float64, error) {
	raw, err := RawGzipSize(s)
	if err != nil {
		return 0, err
	}
	if c.Size() == 0 {
		return 0, fmt.Errorf("compress: empty payload")
	}
	return float64(raw) / float64(c.Size()), nil
}
