package compress

import (
	"math"
	"math/rand"
	"testing"

	"lossyts/internal/features"
	"lossyts/internal/timeseries"
)

// cameoTestSeries is a noisy seasonal signal with strong autocorrelation —
// the workload CAMEO's adaptation is built for.
func cameoTestSeries(n int, seed int64) *timeseries.Series {
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, n)
	for i := range values {
		values[i] = 50 + 10*math.Sin(2*math.Pi*float64(i)/24) + 2*rng.NormFloat64()
	}
	return timeseries.New("cameo-test", 0, 60, values)
}

func maxACFDeviation(orig, recon []float64, maxLag int) float64 {
	ao := features.ACF(orig, maxLag)
	ar := features.ACF(recon, maxLag)
	dev := 0.0
	for i := range ao {
		if d := math.Abs(ao[i] - ar[i]); d > dev {
			dev = d
		}
	}
	return dev
}

// CAMEO's whole reason to exist: at the same nominal bound its
// reconstruction must track the original's autocorrelation at least as
// well as plain Swing, because the corridor tightens whenever the ACF
// deviation approaches the bound.
func TestCAMEOPreservesACFBetterThanSwing(t *testing.T) {
	s := cameoTestSeries(4096, 11)
	for _, eps := range []float64{0.05, 0.1, 0.2} {
		cc, err := CAMEO{}.Compress(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := Swing{}.Compress(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		cv, err := cc.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		sv, err := sc.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		devC := maxACFDeviation(s.Values, cv.Values, cameoMaxLag)
		devS := maxACFDeviation(s.Values, sv.Values, cameoMaxLag)
		if devC > devS*1.01+1e-12 {
			t.Errorf("eps=%g: CAMEO ACF deviation %.6f worse than Swing %.6f", eps, devC, devS)
		}
		// The per-point relative bound must hold even while adapting.
		if mre, _ := s.MaxRelError(cv); mre > eps*(1+1e-9) {
			t.Errorf("eps=%g: CAMEO max relative error %.6g exceeds the bound", eps, mre)
		}
	}
}

// The exported contract assembly must be enough to build a working codec:
// a trivial last-value predictor composed with the shared quantiser and
// Huffman stages has to round-trip within the bound without any private
// plumbing. This is the "how to add a codec" walkthrough as a test.
type lastValuePredictor struct{ last float64 }

func (p *lastValuePredictor) Predict() float64     { return p.last }
func (p *lastValuePredictor) Update(recon float64) { p.last = recon }
func (p *lastValuePredictor) Reset()               { p.last = 0 }

func TestPredictiveContractComposesExternalCodec(t *testing.T) {
	s := cameoTestSeries(2000, 5)
	const eps = 0.05
	k := NewPredictiveKernel(128, &lastValuePredictor{}, NewUniformQuantiser(eps, false), HuffmanCoder{})
	for _, v := range s.Values {
		k.Push(v)
	}
	body, segments := k.Finish()
	if segments <= 0 {
		t.Fatal("expected a positive segment count")
	}
	vs, err := DecodePredictiveStream(HuffmanCoder{}, &lastValuePredictor{}, body, s.Len())
	if err != nil {
		t.Fatal(err)
	}
	recon := make([]float64, 0, s.Len())
	var buf [256]float64
	for len(recon) < s.Len() {
		n, err := vs.Next(buf[:])
		recon = append(recon, buf[:n]...)
		if err != nil {
			t.Fatal(err)
		}
	}
	mre, err := s.MaxRelError(timeseries.New(s.Name, s.Start, s.Interval, recon))
	if err != nil {
		t.Fatal(err)
	}
	if mre > eps*(1+1e-9) {
		t.Fatalf("composed codec max relative error %.6g exceeds the bound", mre)
	}
}
