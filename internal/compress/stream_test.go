package compress

import (
	"bytes"
	"testing"
	"testing/quick"

	"lossyts/internal/timeseries"
)

// streamMethods are the methods with an incremental kernel (all built-ins
// except SeasonalPMC, whose profile needs a whole-series pass). The list is
// registry-derived, so a newly registered streaming codec — built-in or
// external — is pulled into every stream/golden/alloc/fuzz matrix
// automatically. Test-only registrations without NewStream (REGTEST) stay
// out by construction.
func streamMethods() []Method {
	return StreamingMethods()
}

func TestStreamMatchesBatch(t *testing.T) {
	s := synthSeries(3000, 31)
	for _, m := range streamMethods() {
		for _, eps := range []float64{0.01, 0.1, 0.5} {
			enc, err := NewStreamEncoder(m, s, eps)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range s.Values {
				if err := enc.Push(v); err != nil {
					t.Fatal(err)
				}
			}
			streamed, err := enc.Close()
			if err != nil {
				t.Fatal(err)
			}
			comp, _ := New(m)
			batch, err := comp.Compress(s, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(streamed.Payload, batch.Payload) {
				t.Errorf("%s eps=%v: streaming output differs from batch", m, eps)
			}
			if streamed.Segments != batch.Segments || streamed.N != batch.N || streamed.Epsilon != batch.Epsilon {
				t.Errorf("%s eps=%v: metadata differs (%d/%d segments, %d/%d points, %v/%v epsilon)",
					m, eps, streamed.Segments, batch.Segments, streamed.N, batch.N, streamed.Epsilon, batch.Epsilon)
			}
			dec, err := streamed.Decompress()
			if err != nil {
				t.Fatal(err)
			}
			if m == MethodGorilla {
				if !s.Equal(dec) {
					t.Errorf("gorilla streamed round trip not lossless")
				}
				continue
			}
			rel, _ := s.MaxRelError(dec)
			if rel > eps*(1+1e-9) {
				t.Errorf("%s eps=%v: streamed relative error %v", m, eps, rel)
			}
		}
	}
}

func TestStreamMatchesBatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := synthSeries(200, seed)
		for _, m := range streamMethods() {
			enc, err := NewStreamEncoder(m, s, 0.07)
			if err != nil {
				return false
			}
			for _, v := range s.Values {
				if err := enc.Push(v); err != nil {
					return false
				}
			}
			streamed, err := enc.Close()
			if err != nil {
				return false
			}
			comp, _ := New(m)
			batch, err := comp.Compress(s, 0.07)
			if err != nil {
				return false
			}
			if !bytes.Equal(streamed.Payload, batch.Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStreamPushChunkMatchesBatch(t *testing.T) {
	s := synthSeries(1777, 7)
	for _, m := range streamMethods() {
		for _, chunk := range []int{1, 100, 512, 5000} {
			enc, err := NewStreamEncoderAt(m, s.Start, s.Interval, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			src := s.Chunks(chunk)
			for {
				c, ok := src.Next()
				if !ok {
					break
				}
				if err := enc.PushChunk(c); err != nil {
					t.Fatal(err)
				}
			}
			streamed, err := enc.Close()
			if err != nil {
				t.Fatal(err)
			}
			comp, _ := New(m)
			batch, err := comp.Compress(s, 0.1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(streamed.Payload, batch.Payload) {
				t.Errorf("%s chunk=%d: chunked streaming differs from batch", m, chunk)
			}
		}
	}
}

func TestStreamPushChunkSeamValidation(t *testing.T) {
	enc, err := NewStreamEncoderAt(MethodPMC, 1000, 60, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.PushChunk(timeseries.Chunk{Start: 1000, Interval: 60, Values: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.PushChunk(timeseries.Chunk{Start: 1180, Interval: 60, Values: []float64{3}}); err == nil {
		t.Error("gapped chunk should be rejected")
	}
	if err := enc.PushChunk(timeseries.Chunk{Start: 1120, Interval: 30, Values: []float64{3}}); err == nil {
		t.Error("interval mismatch should be rejected")
	}
	if err := enc.PushChunk(timeseries.Chunk{Start: 1120, Interval: 60, Values: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedStreamEncoderSeasonal(t *testing.T) {
	s := synthSeries(1200, 17)
	comp := SeasonalPMC{Period: 48}
	enc, err := NewBufferedStreamEncoder(comp, s.Start, s.Interval, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Values {
		if err := enc.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	if enc.PendingPoints() != s.Len() {
		t.Fatalf("buffered encoder should hold all %d points, has %d pending", s.Len(), enc.PendingPoints())
	}
	streamed, err := enc.Close()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := comp.Compress(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Payload, batch.Payload) {
		t.Error("buffered S-PMC streaming differs from batch")
	}
	if streamed.Segments != batch.Segments {
		t.Errorf("segments %d != %d", streamed.Segments, batch.Segments)
	}
}

func TestStreamLifecycle(t *testing.T) {
	s := timeseries.New("x", 0, 60, []float64{1, 2, 3})
	if _, err := NewStreamEncoder(MethodSeasonalPMC, s, 0.1); err == nil {
		t.Error("S-PMC streaming should be rejected (profile needs a whole-series pass)")
	}
	if _, err := NewStreamEncoder(MethodPMC, s, -1); err == nil {
		t.Error("negative bound should be rejected")
	}
	if _, err := NewStreamEncoder(Method("NOPE"), s, 0.1); err == nil {
		t.Error("unknown method should be rejected")
	}
	enc, err := NewStreamEncoder(MethodPMC, s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Close(); err == nil {
		t.Error("closing an empty stream should error")
	}
	enc, _ = NewStreamEncoder(MethodPMC, s, 0.1)
	if err := enc.Push(5); err != nil {
		t.Fatal(err)
	}
	if enc.PendingPoints() != 1 {
		t.Fatalf("pending = %d", enc.PendingPoints())
	}
	if _, err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Push(6); err == nil {
		t.Error("push after close should error")
	}
	if err := enc.PushChunk(timeseries.Chunk{Start: 60, Interval: 60, Values: []float64{6}}); err == nil {
		t.Error("push chunk after close should error")
	}
	if _, err := enc.Close(); err == nil {
		t.Error("double close should error")
	}
}

func TestStreamSegmentsAvailableIncrementally(t *testing.T) {
	// A level change must close a segment mid-stream.
	s := timeseries.New("x", 0, 1, nil)
	enc, err := NewStreamEncoder(MethodPMC, s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := enc.Push(10); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Segments() != 0 {
		t.Fatalf("constant prefix should stay in the open window, got %d segments", enc.Segments())
	}
	if err := enc.Push(50); err != nil {
		t.Fatal(err)
	}
	if enc.Segments() != 1 {
		t.Fatalf("level change should emit a segment, got %d", enc.Segments())
	}
}

func TestAbsoluteStreamEncoder(t *testing.T) {
	s := synthSeries(800, 55)
	for _, m := range []Method{MethodPMC, MethodSwing, MethodSZ} {
		enc, err := NewAbsoluteStreamEncoder(m, s, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range s.Values {
			if err := enc.Push(v); err != nil {
				t.Fatal(err)
			}
		}
		c, err := enc.Close()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := c.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		maxAbs, _ := s.MaxAbsError(dec)
		if maxAbs > 1.5*(1+1e-9) {
			t.Fatalf("%s: absolute stream bound broken: %v", m, maxAbs)
		}
	}
	enc, err := NewAbsoluteStreamEncoder(MethodPMC, s, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Values {
		if err := enc.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	c, err := enc.Close()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := (PMC{Absolute: true}).Compress(s, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Payload, batch.Payload) {
		t.Fatal("absolute streaming differs from absolute batch")
	}
	if _, err := NewAbsoluteStreamEncoder(MethodSeasonalPMC, s, 1); err == nil {
		t.Error("S-PMC absolute streaming should be rejected")
	}
}
