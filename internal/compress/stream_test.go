package compress

import (
	"bytes"
	"testing"
	"testing/quick"

	"lossyts/internal/timeseries"
)

func TestStreamMatchesBatch(t *testing.T) {
	s := synthSeries(3000, 31)
	for _, m := range []Method{MethodPMC, MethodSwing} {
		for _, eps := range []float64{0.01, 0.1, 0.5} {
			enc, err := NewStreamEncoder(m, s, eps)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range s.Values {
				if err := enc.Push(v); err != nil {
					t.Fatal(err)
				}
			}
			streamed, err := enc.Close()
			if err != nil {
				t.Fatal(err)
			}
			comp, _ := New(m)
			batch, err := comp.Compress(s, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(streamed.Payload, batch.Payload) {
				t.Errorf("%s eps=%v: streaming output differs from batch", m, eps)
			}
			if streamed.Segments != batch.Segments || streamed.N != batch.N {
				t.Errorf("%s eps=%v: metadata differs (%d/%d segments, %d/%d points)",
					m, eps, streamed.Segments, batch.Segments, streamed.N, batch.N)
			}
			dec, err := streamed.Decompress()
			if err != nil {
				t.Fatal(err)
			}
			rel, _ := s.MaxRelError(dec)
			if rel > eps*(1+1e-9) {
				t.Errorf("%s eps=%v: streamed relative error %v", m, eps, rel)
			}
		}
	}
}

func TestStreamMatchesBatchProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := synthSeries(200, seed)
		for _, m := range []Method{MethodPMC, MethodSwing} {
			enc, err := NewStreamEncoder(m, s, 0.07)
			if err != nil {
				return false
			}
			for _, v := range s.Values {
				if err := enc.Push(v); err != nil {
					return false
				}
			}
			streamed, err := enc.Close()
			if err != nil {
				return false
			}
			comp, _ := New(m)
			batch, err := comp.Compress(s, 0.07)
			if err != nil {
				return false
			}
			if !bytes.Equal(streamed.Payload, batch.Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStreamLifecycle(t *testing.T) {
	s := timeseries.New("x", 0, 60, []float64{1, 2, 3})
	if _, err := NewStreamEncoder(MethodSZ, s, 0.1); err == nil {
		t.Error("SZ streaming should be rejected")
	}
	if _, err := NewStreamEncoder(MethodPMC, s, -1); err == nil {
		t.Error("negative bound should be rejected")
	}
	enc, err := NewStreamEncoder(MethodPMC, s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Close(); err == nil {
		t.Error("closing an empty stream should error")
	}
	enc, _ = NewStreamEncoder(MethodPMC, s, 0.1)
	if err := enc.Push(5); err != nil {
		t.Fatal(err)
	}
	if enc.PendingPoints() != 1 {
		t.Fatalf("pending = %d", enc.PendingPoints())
	}
	if _, err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Push(6); err == nil {
		t.Error("push after close should error")
	}
	if _, err := enc.Close(); err == nil {
		t.Error("double close should error")
	}
}

func TestStreamSegmentsAvailableIncrementally(t *testing.T) {
	// A level change must close a segment mid-stream.
	s := timeseries.New("x", 0, 1, nil)
	enc, err := NewStreamEncoder(MethodPMC, s, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := enc.Push(10); err != nil {
			t.Fatal(err)
		}
	}
	if enc.Segments() != 0 {
		t.Fatalf("constant prefix should stay in the open window, got %d segments", enc.Segments())
	}
	if err := enc.Push(50); err != nil {
		t.Fatal(err)
	}
	if enc.Segments() != 1 {
		t.Fatalf("level change should emit a segment, got %d", enc.Segments())
	}
}

func TestAbsoluteStreamEncoder(t *testing.T) {
	s := synthSeries(800, 55)
	enc, err := NewAbsoluteStreamEncoder(MethodPMC, s, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Values {
		if err := enc.Push(v); err != nil {
			t.Fatal(err)
		}
	}
	c, err := enc.Close()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	maxAbs, _ := s.MaxAbsError(dec)
	if maxAbs > 1.5*(1+1e-9) {
		t.Fatalf("absolute stream bound broken: %v", maxAbs)
	}
	batch, err := (PMC{Absolute: true}).Compress(s, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Payload, batch.Payload) {
		t.Fatal("absolute streaming differs from absolute batch")
	}
	if _, err := NewAbsoluteStreamEncoder(MethodSZ, s, 1); err == nil {
		t.Error("SZ absolute streaming should be rejected")
	}
}
