package compress

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"lossyts/internal/timeseries"
)

// fuzzSeedPayloads returns decompressed (header+body) frames of every
// registered method over the corruption-test corpus series — the same
// starting points TestDecompressNeverPanics mutates, handed to the fuzzer as
// seeds so coverage-guided mutation starts from well-formed frames.
func fuzzSeedPayloads(tb testing.TB) [][]byte {
	tb.Helper()
	s := synthSeries(300, 63)
	var comps []*Compressed
	for _, m := range streamMethods() {
		c, err := New(m)
		if err != nil {
			tb.Fatal(err)
		}
		comp, err := c.Compress(s, 0.1)
		if err != nil {
			tb.Fatal(err)
		}
		comps = append(comps, comp)
	}
	spmc, err := (SeasonalPMC{Period: 48}).Compress(s, 0.1)
	if err != nil {
		tb.Fatal(err)
	}
	comps = append(comps, spmc)
	var raws [][]byte
	for _, comp := range comps {
		raw, err := GunzipBytes(comp.Payload)
		if err != nil {
			tb.Fatal(err)
		}
		raws = append(raws, raw)
	}
	return raws
}

// collectStream drains a ValueStream, with an iteration guard so a buggy
// stream that stops making progress fails instead of hanging the fuzzer.
func collectStream(tb testing.TB, vs ValueStream, count int) ([]float64, error) {
	tb.Helper()
	var out []float64
	buf := make([]float64, 256)
	for iter := 0; ; iter++ {
		if iter > count/len(buf)+2 {
			tb.Fatal("value stream not making progress")
		}
		n, err := vs.Next(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return out, err
		}
	}
}

// FuzzDecodeHeader differentially fuzzes frame parsing: any input that the
// batch decoder accepts must stream-decode to bit-identical values, any
// input the batch decoder rejects must not stream-decode cleanly to a full
// reconstruction, and neither path may panic or hang.
func FuzzDecodeHeader(f *testing.F) {
	for _, raw := range fuzzSeedPayloads(f) {
		f.Add(raw)
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 4096 {
			t.Skip("oversized frame")
		}
		hdr, body, err := decodeHeader(raw)
		if err != nil {
			return
		}
		count := int(hdr.count)
		if count > 1<<20 {
			// The claimed count is attacker-controlled; decoders bound their
			// pre-allocation (allocHint) but the reconstruction itself is
			// legitimately O(count), so keep fuzz iterations small.
			t.Skip("oversized claimed count")
		}
		reg, err := lookup(hdr.method)
		if err != nil {
			return
		}
		batch, batchErr := reg.Decode(body, count)
		if reg.DecodeStream == nil {
			return
		}
		vs, err := reg.DecodeStream(body, count)
		if err != nil {
			if batchErr == nil {
				t.Fatalf("stream constructor rejected a frame batch accepts: %v", err)
			}
			return
		}
		streamed, streamErr := collectStream(t, vs, count)
		if batchErr == nil {
			if streamErr != nil {
				t.Fatalf("stream decode failed on a frame batch accepts: %v", streamErr)
			}
			if len(streamed) != len(batch) {
				t.Fatalf("stream decoded %d values, batch %d", len(streamed), len(batch))
			}
			for i := range batch {
				if math.Float64bits(batch[i]) != math.Float64bits(streamed[i]) {
					t.Fatalf("value %d: stream %x != batch %x", i, math.Float64bits(streamed[i]), math.Float64bits(batch[i]))
				}
			}
		} else if streamErr == nil && len(streamed) == count {
			t.Fatalf("stream decoded a full series from a frame batch rejects (%v)", batchErr)
		}
	})
}

// FuzzStreamRoundTrip fuzzes the encode side: for arbitrary series shapes,
// bounds, chunkings, and methods, chunked streaming must produce the exact
// batch payload and the chunked decoder must reproduce the batch
// reconstruction.
func FuzzStreamRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(100), 0.1, uint8(0), uint16(7))
	f.Add(int64(2), uint16(333), 0.01, uint8(1), uint16(0))
	f.Add(int64(3), uint16(1024), 0.5, uint8(2), uint16(128))
	f.Add(int64(4), uint16(17), 0.0, uint8(3), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, eps float64, mi uint8, chunk uint16) {
		if n == 0 || n > 2048 {
			t.Skip()
		}
		if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 || eps > 2 {
			t.Skip()
		}
		methods := streamMethods()
		m := methods[int(mi)%len(methods)]
		s := synthSeries(int(n), seed)

		enc, err := NewStreamEncoderAt(m, s.Start, s.Interval, eps)
		if err != nil {
			t.Fatal(err)
		}
		src := s.Chunks(int(chunk))
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			if err := enc.PushChunk(c); err != nil {
				t.Fatal(err)
			}
		}
		streamed, err := enc.Close()
		if err != nil {
			t.Fatal(err)
		}
		comp, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := comp.Compress(s, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(streamed.Payload, batch.Payload) {
			t.Fatalf("%s n=%d eps=%v chunk=%d: streamed payload differs from batch", m, n, eps, chunk)
		}
		want, err := batch.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewStreamDecoder(streamed, 96)
		if err != nil {
			t.Fatal(err)
		}
		got, err := timeseries.Collect("", dec)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("%s n=%d eps=%v: streamed reconstruction differs from batch", m, n, eps)
		}
	})
}
