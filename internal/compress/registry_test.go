package compress

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"lossyts/internal/timeseries"
)

// testMethod is a minimal registered codec: raw float64 bits, one segment.
const testMethod Method = "REGTEST"

func testDecode(body []byte, count int) ([]float64, error) {
	if len(body) != 8*count {
		return nil, errors.New("regtest: truncated body")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return out, nil
}

type testCompressor struct{}

func (testCompressor) Method() Method { return testMethod }

func (testCompressor) Compress(s *timeseries.Series, epsilon float64) (*Compressed, error) {
	var buf bytes.Buffer
	if err := EncodeHeader(&buf, testMethod, s); err != nil {
		return nil, err
	}
	var scratch [8]byte
	for _, v := range s.Values {
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(v))
		buf.Write(scratch[:])
	}
	return Finish(testMethod, epsilon, s, buf.Bytes(), 1)
}

func init() {
	Register(Registration{
		Method: testMethod,
		Code:   101,
		New:    func() (Compressor, error) { return testCompressor{}, nil },
		Decode: testDecode,
	})
}

func TestRegisteredIncludesBuiltins(t *testing.T) {
	got := map[Method]bool{}
	for _, m := range Registered() {
		got[m] = true
	}
	for _, m := range []Method{MethodPMC, MethodSwing, MethodSZ, MethodGorilla, MethodSeasonalPMC} {
		if !got[m] {
			t.Errorf("built-in %s missing from Registered(): %v", m, Registered())
		}
	}
}

func TestNewUnknownMethodTypedError(t *testing.T) {
	_, err := New("NoSuchMethod")
	if err == nil {
		t.Fatal("expected an error")
	}
	var unknown *UnknownMethodError
	if !errors.As(err, &unknown) {
		t.Fatalf("want *UnknownMethodError, got %T: %v", err, err)
	}
	if unknown.Method != "NoSuchMethod" {
		t.Fatalf("error names %q", unknown.Method)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	cases := map[string]Registration{
		"duplicate name": {Method: MethodPMC, Code: 102, New: func() (Compressor, error) { return PMC{}, nil }, Decode: pmcDecode},
		"duplicate code": {Method: "FreshName", Code: 1, New: func() (Compressor, error) { return PMC{}, nil }, Decode: pmcDecode},
		"missing decode": {Method: "FreshName", Code: 103, New: func() (Compressor, error) { return PMC{}, nil }},
		"zero code":      {Method: "FreshName", New: func() (Compressor, error) { return PMC{}, nil }, Decode: pmcDecode},
		"empty name":     {Code: 104, New: func() (Compressor, error) { return PMC{}, nil }, Decode: pmcDecode},
	}
	for name, reg := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%+v) did not panic", reg)
				}
			}()
			Register(reg)
		})
	}
}

// TestRegisteredCompressorRoundTrips proves a compressor registered outside
// compressor.go — the extensibility point the registry exists for — passes
// through the generic New → Compress → Decompress path untouched.
func TestRegisteredCompressorRoundTrips(t *testing.T) {
	s := timeseries.New("x", 0, 60, []float64{1.5, -2.25, 3.125, 0, 42})
	comp, err := New(testMethod)
	if err != nil {
		t.Fatal(err)
	}
	c, err := comp.Compress(s, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != s.Len() {
		t.Fatalf("round trip length %d, want %d", dec.Len(), s.Len())
	}
	for i, v := range s.Values {
		if dec.Values[i] != v {
			t.Fatalf("value %d: %v != %v", i, dec.Values[i], v)
		}
	}
}
