package nn

import (
	"math"
	"math/rand"
	"testing"
)

// checkGrad compares autodiff gradients of a scalar loss against central
// finite differences for every element of x.
func checkGrad(t *testing.T, name string, x *Tensor, loss func() *Tensor, tol float64) {
	t.Helper()
	l := loss()
	l.Backward()
	analytic := append([]float64(nil), x.Grad...)
	const h = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := loss().Item()
		x.Data[i] = orig - h
		lm := loss().Item()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-analytic[i]) > tol*(1+math.Abs(numeric)) {
			t.Fatalf("%s: grad[%d] analytic %v, numeric %v", name, i, analytic[i], numeric)
		}
	}
}

func TestGradElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, 3, 4).Param()
	c := Randn(rng, 1, 3, 4)

	cases := []struct {
		name string
		f    func() *Tensor
	}{
		{"Add", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Add(x, c), c)) }},
		{"Sub", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Sub(x, c), c)) }},
		{"Mul", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Mul(x, c), c)) }},
		{"Scale", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Scale(x, 2.5), c)) }},
		{"Tanh", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Tanh(x), c)) }},
		{"Sigmoid", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Sigmoid(x), c)) }},
		{"GELU", func() *Tensor { x.ZeroGrad(); return Mean(Mul(GELU(x), c)) }},
		{"Softmax", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Softmax(x), c)) }},
		{"MSE", func() *Tensor { x.ZeroGrad(); return MSE(x, c) }},
		{"Reshape", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Reshape(x, 4, 3), Reshape(c, 4, 3))) }},
		{"Transpose", func() *Tensor { x.ZeroGrad(); return Mean(Mul(Transpose(x), Transpose(c))) }},
	}
	for _, tc := range cases {
		checkGrad(t, tc.name, x, tc.f, 1e-5)
	}
}

func TestGradReLU(t *testing.T) {
	// Keep values away from the kink at 0.
	x := New([]int{4}, []float64{-2, -1, 1, 2}).Param()
	c := New([]int{4}, []float64{0.3, -0.7, 1.1, 0.5})
	checkGrad(t, "ReLU", x, func() *Tensor { x.ZeroGrad(); return Mean(Mul(ReLU(x), c)) }, 1e-5)
}

func TestGradMatMulShared(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Randn(rng, 1, 2, 3, 4).Param()
	w := Randn(rng, 1, 4, 5).Param()
	c := Randn(rng, 1, 2, 3, 5)
	loss := func() *Tensor { a.ZeroGrad(); w.ZeroGrad(); return Mean(Mul(MatMul(a, w), c)) }
	checkGrad(t, "MatMul/A", a, loss, 1e-5)
	checkGrad(t, "MatMul/W", w, loss, 1e-5)
}

func TestGradMatMulBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Randn(rng, 1, 2, 3, 4).Param()
	b := Randn(rng, 1, 2, 4, 5).Param()
	c := Randn(rng, 1, 2, 3, 5)
	loss := func() *Tensor { a.ZeroGrad(); b.ZeroGrad(); return Mean(Mul(MatMul(a, b), c)) }
	checkGrad(t, "BatchMatMul/A", a, loss, 1e-5)
	checkGrad(t, "BatchMatMul/B", b, loss, 1e-5)
}

func TestMatMulValues(t *testing.T) {
	a := New([]int{2, 2}, []float64{1, 2, 3, 4})
	b := New([]int{2, 2}, []float64{5, 6, 7, 8})
	got := MatMul(a, b)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if math.Abs(got.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("matmul = %v, want %v", got.Data, want)
		}
	}
}

func TestGradAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := Randn(rng, 1, 3, 4).Param()
	bias := Randn(rng, 1, 4).Param()
	c := Randn(rng, 1, 3, 4)
	loss := func() *Tensor { x.ZeroGrad(); bias.ZeroGrad(); return Mean(Mul(AddBias(x, bias), c)) }
	checkGrad(t, "AddBias/x", x, loss, 1e-5)
	checkGrad(t, "AddBias/b", bias, loss, 1e-5)
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := Randn(rng, 1, 3, 6).Param()
	gain := Randn(rng, 0.5, 6).Param()
	bias := Randn(rng, 0.5, 6).Param()
	c := Randn(rng, 1, 3, 6)
	loss := func() *Tensor {
		x.ZeroGrad()
		gain.ZeroGrad()
		bias.ZeroGrad()
		return Mean(Mul(LayerNorm(x, gain, bias, 1e-5), c))
	}
	checkGrad(t, "LayerNorm/x", x, loss, 1e-4)
	checkGrad(t, "LayerNorm/gain", gain, loss, 1e-4)
	checkGrad(t, "LayerNorm/bias", bias, loss, 1e-4)
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := Randn(rng, 3, 4, 8)
	out := LayerNorm(x, Full(1, 8), Zeros(8), 1e-8)
	for r := 0; r < 4; r++ {
		row := out.Data[r*8 : (r+1)*8]
		var m, v float64
		for _, val := range row {
			m += val
		}
		m /= 8
		for _, val := range row {
			v += (val - m) * (val - m)
		}
		v /= 8
		if math.Abs(m) > 1e-9 || math.Abs(v-1) > 1e-6 {
			t.Fatalf("row %d: mean %v var %v", r, m, v)
		}
	}
}

func TestGradConcatNarrow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 1, 2, 3).Param()
	b := Randn(rng, 1, 2, 2).Param()
	c := Randn(rng, 1, 2, 5)
	loss := func() *Tensor { a.ZeroGrad(); b.ZeroGrad(); return Mean(Mul(Concat(1, a, b), c)) }
	checkGrad(t, "Concat/a", a, loss, 1e-5)
	checkGrad(t, "Concat/b", b, loss, 1e-5)

	x := Randn(rng, 1, 2, 6).Param()
	cn := Randn(rng, 1, 2, 3)
	loss2 := func() *Tensor { x.ZeroGrad(); return Mean(Mul(Narrow(x, 1, 2, 3), cn)) }
	checkGrad(t, "Narrow", x, loss2, 1e-5)
}

func TestGradSplitMergeHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := Randn(rng, 1, 2, 3, 8).Param()
	c := Randn(rng, 1, 8, 3, 2)
	loss := func() *Tensor { x.ZeroGrad(); return Mean(Mul(SplitHeads(x, 4), c)) }
	checkGrad(t, "SplitHeads", x, loss, 1e-5)
	// Merge is the inverse of Split.
	y := Randn(rng, 1, 2, 5, 8)
	rt := MergeHeads(SplitHeads(y, 2), 2)
	for i := range y.Data {
		if math.Abs(rt.Data[i]-y.Data[i]) > 1e-12 {
			t.Fatal("Merge(Split(x)) != x")
		}
	}
}

func TestGradMaskedFill(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := Randn(rng, 1, 3, 3).Param()
	mask := CausalMask(3)
	c := Randn(rng, 1, 3, 3)
	loss := func() *Tensor { x.ZeroGrad(); return Mean(Mul(MaskedFill(x, mask, -5), c)) }
	checkGrad(t, "MaskedFill", x, loss, 1e-5)
}

func TestCausalMask(t *testing.T) {
	m := CausalMask(3)
	want := []float64{0, 1, 1, 0, 0, 1, 0, 0, 0}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("mask = %v", m.Data)
		}
	}
}

func TestGradDropoutDeterministic(t *testing.T) {
	x := Randn(rand.New(rand.NewSource(10)), 1, 4, 4).Param()
	c := Randn(rand.New(rand.NewSource(11)), 1, 4, 4)
	loss := func() *Tensor {
		x.ZeroGrad()
		rng := rand.New(rand.NewSource(42)) // same mask on every call
		return Mean(Mul(Dropout(x, 0.5, rng, true), c))
	}
	checkGrad(t, "Dropout", x, loss, 1e-5)
	// Eval mode is the identity.
	if got := Dropout(x, 0.5, nil, false); got != x {
		t.Error("eval-mode dropout should be identity")
	}
}

func TestGradMovingAvg(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := Randn(rng, 1, 2, 9).Param()
	c := Randn(rng, 1, 2, 9)
	for _, k := range []int{1, 3, 4, 25} {
		kernel := k
		loss := func() *Tensor { x.ZeroGrad(); return Mean(Mul(MovingAvg1D(x, kernel), c)) }
		checkGrad(t, "MovingAvg", x, loss, 1e-5)
	}
}

func TestMovingAvgValues(t *testing.T) {
	x := New([]int{1, 5}, []float64{1, 2, 3, 4, 5})
	out := MovingAvg1D(x, 3)
	// Edge replication: (1+1+2)/3, (1+2+3)/3, ...
	want := []float64{4.0 / 3, 2, 3, 4, 14.0 / 3}
	for i := range want {
		if math.Abs(out.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("moving avg = %v, want %v", out.Data, want)
		}
	}
}

func TestGradMultiHeadAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mha := NewMultiHeadAttention(rng, 8, 2)
	x := Randn(rng, 1, 1, 3, 8).Param()
	c := Randn(rng, 1, 1, 3, 8)
	loss := func() *Tensor {
		x.ZeroGrad()
		ZeroGrad(mha.Params())
		return Mean(Mul(mha.Forward(x, x, x, nil), c))
	}
	checkGrad(t, "MHA/x", x, loss, 1e-4)
	checkGrad(t, "MHA/Wq", mha.Wq.W, loss, 1e-4)
	checkGrad(t, "MHA/Wo", mha.Wo.W, loss, 1e-4)
}

func TestAttentionCausalMaskBlocksFuture(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	mha := NewMultiHeadAttention(rng, 4, 1)
	t1 := Randn(rng, 1, 1, 3, 4)
	// Changing a future position must not change earlier outputs under a
	// causal mask.
	out1 := mha.Forward(t1, t1, t1, CausalMask(3))
	t2 := t1.Clone()
	for c := 0; c < 4; c++ {
		t2.Data[2*4+c] += 10 // perturb position 2 only
	}
	out2 := mha.Forward(t2, t2, t2, CausalMask(3))
	for c := 0; c < 4; c++ {
		if math.Abs(out1.Data[c]-out2.Data[c]) > 1e-9 {
			t.Fatal("causal mask leaked future information to position 0")
		}
	}
}

func TestGradGRUCell(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cell := NewGRUCell(rng, 3, 4)
	x := Randn(rng, 1, 2, 3).Param()
	h := Zeros(2, 4)
	c := Randn(rng, 1, 2, 4)
	loss := func() *Tensor {
		x.ZeroGrad()
		ZeroGrad(cell.Params())
		return Mean(Mul(cell.Step(x, h), c))
	}
	checkGrad(t, "GRU/x", x, loss, 1e-4)
	checkGrad(t, "GRU/Wz", cell.Wz.W, loss, 1e-4)
	checkGrad(t, "GRU/Uh", cell.Uh.W, loss, 1e-4)
}

func TestGRUThroughTime(t *testing.T) {
	// Backprop through several steps must flow gradients to early inputs.
	rng := rand.New(rand.NewSource(16))
	cell := NewGRUCell(rng, 2, 3)
	xs := make([]*Tensor, 4)
	for i := range xs {
		xs[i] = Randn(rng, 1, 1, 2).Param()
	}
	h := Zeros(1, 3)
	for _, x := range xs {
		h = cell.Step(x, h)
	}
	Mean(h).Backward()
	var norm float64
	for _, g := range xs[0].Grad {
		norm += g * g
	}
	if norm == 0 {
		t.Fatal("no gradient reached the first time step")
	}
}

func TestPositionalEncoding(t *testing.T) {
	pe := NewPositionalEncoding(16, 8)
	x := Zeros(2, 4, 8)
	out := pe.Add(x)
	// Position 0, even channel: sin(0) = 0; odd channel: cos(0) = 1.
	if out.At(0, 0, 0) != 0 || out.At(0, 0, 1) != 1 {
		t.Fatalf("pe[0] = %v, %v", out.At(0, 0, 0), out.At(0, 0, 1))
	}
	// The two batch entries receive identical encodings.
	for i := 0; i < 4*8; i++ {
		if out.Data[i] != out.Data[4*8+i] {
			t.Fatal("batch entries differ")
		}
	}
	rng := rand.New(rand.NewSource(17))
	xp := Randn(rng, 1, 1, 4, 8).Param()
	c := Randn(rng, 1, 1, 4, 8)
	checkGrad(t, "PosEnc", xp, func() *Tensor { xp.ZeroGrad(); return Mean(Mul(pe.Add(xp), c)) }, 1e-5)
}

func TestLinearForward(t *testing.T) {
	l := &Linear{
		W: New([]int{2, 2}, []float64{1, 2, 3, 4}).Param(),
		B: New([]int{2}, []float64{10, 20}).Param(),
	}
	out := l.Forward(New([]int{1, 2}, []float64{1, 1}))
	if out.Data[0] != 14 || out.Data[1] != 26 {
		t.Fatalf("linear forward = %v", out.Data)
	}
}

func TestAdamConvergesLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	// y = 3x - 2
	n := 64
	xs := Zeros(n, 1)
	ys := Zeros(n, 1)
	for i := 0; i < n; i++ {
		x := rng.Float64()*4 - 2
		xs.Data[i] = x
		ys.Data[i] = 3*x - 2
	}
	lin := NewLinear(rng, 1, 1)
	opt := NewAdam(0.05, 0)
	for epoch := 0; epoch < 400; epoch++ {
		ZeroGrad(lin.Params())
		loss := MSE(lin.Forward(xs), ys)
		loss.Backward()
		opt.Step(lin.Params())
	}
	if math.Abs(lin.W.Data[0]-3) > 0.05 || math.Abs(lin.B.Data[0]+2) > 0.05 {
		t.Fatalf("fit w=%v b=%v, want 3, -2", lin.W.Data[0], lin.B.Data[0])
	}
}

func TestAdamWithWeightDecayShrinksUnusedParams(t *testing.T) {
	p := New([]int{1}, []float64{5}).Param()
	opt := NewAdam(0.1, 0.5)
	for i := 0; i < 200; i++ {
		p.ZeroGrad() // gradient always zero; only decay acts
		opt.Step([]*Tensor{p})
	}
	if math.Abs(p.Data[0]) > 0.5 {
		t.Fatalf("weight decay did not shrink param: %v", p.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := New([]int{2}, []float64{0, 0}).Param()
	p.Grad[0], p.Grad[1] = 3, 4
	norm := ClipGradNorm([]*Tensor{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v", norm)
	}
	got := math.Hypot(p.Grad[0], p.Grad[1])
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v", got)
	}
	// Below the cap: untouched.
	p.Grad[0], p.Grad[1] = 0.1, 0
	ClipGradNorm([]*Tensor{p}, 1)
	if p.Grad[0] != 0.1 {
		t.Fatal("clip modified a small gradient")
	}
}

func TestTensorAccessors(t *testing.T) {
	x := New([]int{2, 3}, []float64{0, 1, 2, 3, 4, 5})
	if x.At(1, 2) != 5 || x.At(0, 1) != 1 {
		t.Fatal("At wrong")
	}
	x.Set(9, 1, 0)
	if x.At(1, 0) != 9 {
		t.Fatal("Set wrong")
	}
	if x.Dim(-1) != 3 || x.Dim(0) != 2 {
		t.Fatal("Dim wrong")
	}
	c := x.Clone()
	c.Data[0] = 77
	if x.Data[0] == 77 {
		t.Fatal("Clone shares data")
	}
}

func TestPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("New size", func() { New([]int{2, 2}, []float64{1}) })
	expectPanic("Add shape", func() { Add(Zeros(2), Zeros(3)) })
	expectPanic("Item non-scalar", func() { Zeros(2).Item() })
	expectPanic("Backward non-scalar", func() { Zeros(2).Param().Backward() })
	expectPanic("MatMul dims", func() { MatMul(Zeros(2, 3), Zeros(4, 5)) })
	expectPanic("Narrow range", func() { Narrow(Zeros(2, 2), 1, 1, 5) })
	expectPanic("index range", func() { Zeros(2, 2).At(5, 0) })
	expectPanic("SplitHeads div", func() { SplitHeads(Zeros(1, 2, 7), 2) })
}

func TestMeanValue(t *testing.T) {
	x := New([]int{4}, []float64{1, 2, 3, 4})
	if got := Mean(x).Item(); got != 2.5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestLayerNormModule(t *testing.T) {
	ln := NewLayerNorm(4)
	if len(ln.Params()) != 2 {
		t.Fatal("layer norm should expose gain and bias")
	}
	x := New([]int{1, 4}, []float64{1, 2, 3, 4}).Param()
	if !x.RequiresGrad() {
		t.Fatal("Param should require grad")
	}
	out := ln.Forward(x)
	var m float64
	for _, v := range out.Data {
		m += v
	}
	if math.Abs(m/4) > 1e-9 {
		t.Fatalf("default layer norm output mean = %v", m/4)
	}
}

func TestBackwardAccumulatesAcrossCalls(t *testing.T) {
	// Two backward passes without ZeroGrad accumulate gradients.
	x := New([]int{2}, []float64{1, 2}).Param()
	loss := func() *Tensor { return Mean(Mul(x, x)) }
	loss().Backward()
	first := append([]float64(nil), x.Grad...)
	loss().Backward()
	for i := range first {
		if math.Abs(x.Grad[i]-2*first[i]) > 1e-12 {
			t.Fatalf("gradients should accumulate: %v vs %v", x.Grad[i], 2*first[i])
		}
	}
}

func TestSharedSubgraphGradient(t *testing.T) {
	// y = x used twice: d/dx mean(x*x + x*x)? Build z = Add(Mul(x,c), Mul(x,c));
	// gradient through both branches must sum.
	x := New([]int{1}, []float64{3}).Param()
	c := New([]int{1}, []float64{2})
	z := Add(Mul(x, c), Mul(x, c))
	Mean(z).Backward()
	if math.Abs(x.Grad[0]-4) > 1e-12 {
		t.Fatalf("shared subgraph grad = %v, want 4", x.Grad[0])
	}
}

func TestNoGradWhenNotRequired(t *testing.T) {
	// Ops over constants build no graph and Backward on results is a no-op.
	a := Zeros(2, 2)
	b := Full(1, 2, 2)
	out := Add(a, b)
	if out.RequiresGrad() {
		t.Fatal("constant op should not require grad")
	}
	if out.Grad != nil {
		t.Fatal("constant op should not allocate grad")
	}
}

func TestTrainTwoLayerMLPOnXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	// XOR: not linearly separable; a 2-layer net must fit it.
	xs := New([]int{4, 2}, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	ys := New([]int{4, 1}, []float64{0, 1, 1, 0})
	l1 := NewLinear(rng, 2, 8)
	l2 := NewLinear(rng, 8, 1)
	params := append(l1.Params(), l2.Params()...)
	opt := NewAdam(0.05, 0)
	for i := 0; i < 800; i++ {
		ZeroGrad(params)
		pred := l2.Forward(Tanh(l1.Forward(xs)))
		MSE(pred, ys).Backward()
		opt.Step(params)
	}
	pred := l2.Forward(Tanh(l1.Forward(xs)))
	for i, want := range ys.Data {
		if math.Abs(pred.Data[i]-want) > 0.15 {
			t.Fatalf("XOR output %d = %v, want %v", i, pred.Data[i], want)
		}
	}
}
