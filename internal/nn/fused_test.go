package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestGradLinearFused finite-difference-checks every activation of the
// fused linear op against the autodiff gradients, for x, w, and b.
func TestGradLinearFused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
		act  Activation
	}{
		{"Identity", ActIdentity},
		{"Sigmoid", ActSigmoid},
		{"Tanh", ActTanh},
		{"GELU", ActGELU},
	} {
		x := Randn(rng, 1, 3, 4).Param()
		w := Randn(rng, 1, 4, 5).Param()
		b := Randn(rng, 1, 5).Param()
		c := Randn(rng, 1, 3, 5)
		loss := func() *Tensor {
			x.ZeroGrad()
			w.ZeroGrad()
			b.ZeroGrad()
			return Mean(Mul(LinearFused(x, w, b, tc.act), c))
		}
		checkGrad(t, "LinearFused/"+tc.name+"/X", x, loss, 1e-5)
		checkGrad(t, "LinearFused/"+tc.name+"/W", w, loss, 1e-5)
		checkGrad(t, "LinearFused/"+tc.name+"/B", b, loss, 1e-5)
	}
}

// TestGradLinearFusedReLU keeps pre-activations away from the ReLU kink,
// where a finite difference straddling zero is meaningless.
func TestGradLinearFusedReLU(t *testing.T) {
	x := New([]int{2, 2}, []float64{1, -0.5, 0.25, 2}).Param()
	w := New([]int{2, 2}, []float64{1, 0.5, -0.5, 1}).Param()
	b := New([]int{2}, []float64{0.1, -0.2}).Param()
	c := New([]int{2, 2}, []float64{0.3, -0.7, 1.1, 0.5})
	loss := func() *Tensor {
		x.ZeroGrad()
		w.ZeroGrad()
		b.ZeroGrad()
		return Mean(Mul(LinearFused(x, w, b, ActReLU), c))
	}
	checkGrad(t, "LinearFused/ReLU/X", x, loss, 1e-5)
	checkGrad(t, "LinearFused/ReLU/W", w, loss, 1e-5)
	checkGrad(t, "LinearFused/ReLU/B", b, loss, 1e-5)
}

func TestGradLinearFusedNoBias(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := Randn(rng, 1, 3, 4).Param()
	w := Randn(rng, 1, 4, 2).Param()
	c := Randn(rng, 1, 3, 2)
	loss := func() *Tensor {
		x.ZeroGrad()
		w.ZeroGrad()
		return Mean(Mul(LinearFused(x, w, nil, ActTanh), c))
	}
	checkGrad(t, "LinearFused/NoBias/X", x, loss, 1e-5)
	checkGrad(t, "LinearFused/NoBias/W", w, loss, 1e-5)
}

func TestGradAddSigmoidAddTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := Randn(rng, 1, 3, 4).Param()
	b := Randn(rng, 1, 3, 4).Param()
	c := Randn(rng, 1, 3, 4)
	sig := func() *Tensor { a.ZeroGrad(); b.ZeroGrad(); return Mean(Mul(AddSigmoid(a, b), c)) }
	checkGrad(t, "AddSigmoid/A", a, sig, 1e-5)
	checkGrad(t, "AddSigmoid/B", b, sig, 1e-5)
	tanh := func() *Tensor { a.ZeroGrad(); b.ZeroGrad(); return Mean(Mul(AddTanh(a, b), c)) }
	checkGrad(t, "AddTanh/A", a, tanh, 1e-5)
	checkGrad(t, "AddTanh/B", b, tanh, 1e-5)
}

func TestGradLerp(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := Randn(rng, 1, 3, 4).Param()
	b := Randn(rng, 1, 3, 4).Param()
	w := Randn(rng, 1, 3, 4).Param()
	c := Randn(rng, 1, 3, 4)
	loss := func() *Tensor {
		a.ZeroGrad()
		b.ZeroGrad()
		w.ZeroGrad()
		return Mean(Mul(Lerp(a, b, w), c))
	}
	checkGrad(t, "Lerp/A", a, loss, 1e-5)
	checkGrad(t, "Lerp/B", b, loss, 1e-5)
	checkGrad(t, "Lerp/W", w, loss, 1e-5)
}

func TestGradLinearPairSum(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := Randn(rng, 1, 3, 4).Param()
	wa := Randn(rng, 1, 4, 5).Param()
	ba := Randn(rng, 1, 5).Param()
	b := Randn(rng, 1, 3, 6).Param()
	wb := Randn(rng, 1, 6, 5).Param()
	bb := Randn(rng, 1, 5).Param()
	c := Randn(rng, 1, 3, 5)
	loss := func() *Tensor {
		for _, p := range []*Tensor{a, wa, ba, b, wb, bb} {
			p.ZeroGrad()
		}
		return Mean(Mul(LinearPairSum(a, wa, ba, b, wb, bb), c))
	}
	for name, p := range map[string]*Tensor{
		"A": a, "WA": wa, "BA": ba, "B": b, "WB": wb, "BB": bb,
	} {
		checkGrad(t, "LinearPairSum/"+name, p, loss, 1e-5)
	}
}

// TestGradScaledDotAttention finite-difference-checks the fused attention
// gradients for q, k, and v, with and without a causal mask (the masked
// case exercises the prefix-skip kernels).
func TestGradScaledDotAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, tc := range []struct {
		name string
		mask *Tensor
	}{
		{"NoMask", nil},
		{"Causal", CausalMask(5)},
	} {
		q := Randn(rng, 1, 3, 5, 4).Param()
		k := Randn(rng, 1, 3, 5, 4).Param()
		v := Randn(rng, 1, 3, 5, 4).Param()
		c := Randn(rng, 1, 3, 5, 4)
		loss := func() *Tensor {
			q.ZeroGrad()
			k.ZeroGrad()
			v.ZeroGrad()
			return Mean(Mul(ScaledDotAttention(q, k, v, tc.mask, 0.5), c))
		}
		checkGrad(t, "ScaledDotAttention/"+tc.name+"/Q", q, loss, 1e-5)
		checkGrad(t, "ScaledDotAttention/"+tc.name+"/K", k, loss, 1e-5)
		checkGrad(t, "ScaledDotAttention/"+tc.name+"/V", v, loss, 1e-5)
	}
}

// withReferenceKernels runs f under the reference kernel mode and restores
// the fast path afterwards.
func withReferenceKernels(t *testing.T, f func()) {
	t.Helper()
	UseReferenceKernels(true)
	defer UseReferenceKernels(false)
	f()
}

// TestFusedMatchesReference compares each fused op's forward values and
// input gradients between the fast path and the reference decomposition.
// Forward kernels preserve per-element summation order, so outputs agree
// exactly; backward kernels regroup additions, so gradients are held to the
// documented 1e-9.
func TestFusedMatchesReference(t *testing.T) {
	type run struct{ out, gx, gw []float64 }
	eval := func(seed int64, build func(x, w, b *Tensor) *Tensor) run {
		rng := rand.New(rand.NewSource(seed))
		x := Randn(rng, 1, 7, 6).Param()
		w := Randn(rng, 1, 6, 5).Param()
		b := Randn(rng, 1, 5).Param()
		c := Randn(rng, 1, 7, 5)
		y := build(x, w, b)
		Mean(Mul(y, c)).Backward()
		return run{
			out: append([]float64(nil), y.Data...),
			gx:  append([]float64(nil), x.Grad...),
			gw:  append([]float64(nil), w.Grad...),
		}
	}
	for _, tc := range []struct {
		name  string
		build func(x, w, b *Tensor) *Tensor
	}{
		{"LinearFused/Identity", func(x, w, b *Tensor) *Tensor { return LinearFused(x, w, b, ActIdentity) }},
		{"LinearFused/ReLU", func(x, w, b *Tensor) *Tensor { return LinearFused(x, w, b, ActReLU) }},
		{"LinearFused/GELU", func(x, w, b *Tensor) *Tensor { return LinearFused(x, w, b, ActGELU) }},
		{"AddSigmoid", func(x, w, b *Tensor) *Tensor { return AddSigmoid(MatMul(x, w), AddBias(MatMul(x, w), b)) }},
		{"AddTanh", func(x, w, b *Tensor) *Tensor { return AddTanh(MatMul(x, w), AddBias(MatMul(x, w), b)) }},
		{"Lerp", func(x, w, b *Tensor) *Tensor {
			y := MatMul(x, w)
			return Lerp(y, AddBias(y, b), Sigmoid(y))
		}},
		{"LinearPairSum", func(x, w, b *Tensor) *Tensor { return LinearPairSum(x, w, b, Tanh(x), w, b) }},
	} {
		fast := eval(21, tc.build)
		var ref run
		withReferenceKernels(t, func() { ref = eval(21, tc.build) })
		diff := func(kind string, got, want []float64) {
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("%s: %s[%d] fast %v, reference %v", tc.name, kind, i, got[i], want[i])
				}
			}
		}
		diff("out", fast.out, ref.out)
		diff("gx", fast.gx, ref.gx)
		diff("gw", fast.gw, ref.gw)
	}
}

// TestScaledDotAttentionMatchesReference compares the fused attention node
// against the unfused Transpose/MatMul/Scale/MaskedFill/Softmax/MatMul
// chain: forward bit-equal, gradients within 1e-9. The causal mask takes
// the prefix-skip kernels, the scattered mask forces the dense fallback,
// and dh=3 with tq=6 exercises the blocking remainder paths.
func TestScaledDotAttentionMatchesReference(t *testing.T) {
	scattered := Zeros(6, 6)
	for _, ij := range [][2]int{{0, 2}, {1, 0}, {3, 5}, {5, 4}} {
		scattered.Data[ij[0]*6+ij[1]] = 1
	}
	for _, tc := range []struct {
		name string
		mask *Tensor
	}{
		{"NoMask", nil},
		{"Causal", CausalMask(6)},
		{"Scattered", scattered},
	} {
		type run struct{ out, gq, gk, gv []float64 }
		eval := func() run {
			rng := rand.New(rand.NewSource(23))
			q := Randn(rng, 1, 4, 6, 3).Param()
			k := Randn(rng, 1, 4, 6, 3).Param()
			v := Randn(rng, 1, 4, 6, 3).Param()
			c := Randn(rng, 1, 4, 6, 3)
			y := ScaledDotAttention(q, k, v, tc.mask, 0.5)
			Mean(Mul(y, c)).Backward()
			return run{
				out: append([]float64(nil), y.Data...),
				gq:  append([]float64(nil), q.Grad...),
				gk:  append([]float64(nil), k.Grad...),
				gv:  append([]float64(nil), v.Grad...),
			}
		}
		fast := eval()
		var ref run
		withReferenceKernels(t, func() { ref = eval() })
		for i := range ref.out {
			if fast.out[i] != ref.out[i] {
				t.Fatalf("%s: out[%d] fast %v, reference %v (want bit-equal)", tc.name, i, fast.out[i], ref.out[i])
			}
		}
		for kind, pair := range map[string][2][]float64{
			"gq": {fast.gq, ref.gq}, "gk": {fast.gk, ref.gk}, "gv": {fast.gv, ref.gv},
		} {
			for i := range pair[1] {
				if math.Abs(pair[0][i]-pair[1][i]) > 1e-9 {
					t.Fatalf("%s: %s[%d] fast %v, reference %v", tc.name, kind, i, pair[0][i], pair[1][i])
				}
			}
		}
	}
}

// TestMatMulKernelsOddShapes exercises the 4-row blocking remainder paths:
// every m around the block size, including shapes smaller than one block.
func TestMatMulKernelsOddShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		for _, k := range []int{1, 3, 8} {
			for _, n := range []int{1, 5, 16} {
				a := Randn(rng, 1, m, k).Param()
				b := Randn(rng, 1, k, n).Param()
				c := Randn(rng, 1, m, n)
				loss := func() *Tensor { a.ZeroGrad(); b.ZeroGrad(); return Mean(Mul(MatMul(a, b), c)) }
				loss().Backward()
				fOut := append([]float64(nil), MatMul(a, b).Data...)
				fGA := append([]float64(nil), a.Grad...)
				fGB := append([]float64(nil), b.Grad...)
				var rOut, rGA, rGB []float64
				withReferenceKernels(t, func() {
					loss().Backward()
					rOut = append([]float64(nil), MatMul(a, b).Data...)
					rGA = append([]float64(nil), a.Grad...)
					rGB = append([]float64(nil), b.Grad...)
				})
				for i := range rOut {
					if fOut[i] != rOut[i] {
						t.Fatalf("m=%d k=%d n=%d: forward[%d] fast %v, reference %v (want bit-equal)",
							m, k, n, i, fOut[i], rOut[i])
					}
				}
				for i := range rGA {
					if math.Abs(fGA[i]-rGA[i]) > 1e-9 {
						t.Fatalf("m=%d k=%d n=%d: dA[%d] fast %v, reference %v", m, k, n, i, fGA[i], rGA[i])
					}
				}
				for i := range rGB {
					if math.Abs(fGB[i]-rGB[i]) > 1e-9 {
						t.Fatalf("m=%d k=%d n=%d: dB[%d] fast %v, reference %v", m, k, n, i, fGB[i], rGB[i])
					}
				}
			}
		}
	}
}

// TestArenaRecycling verifies the arena contract: Reset recycles buffers
// for same-class reuse, buffers come back zeroed, and Release returns
// everything so a fresh arena still works.
func TestArenaRecycling(t *testing.T) {
	a := NewArena()
	defer a.Release()
	b1 := a.alloc(100)
	for i := range b1 {
		b1[i] = 1
	}
	p1 := &b1[0]
	a.Reset()
	b2 := a.alloc(100)
	if &b2[0] != p1 {
		t.Fatalf("alloc after Reset did not reuse the recycled buffer")
	}
	for i, v := range b2 {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	// A second same-class alloc without Reset must get distinct memory.
	b3 := a.alloc(100)
	if &b3[0] == &b2[0] {
		t.Fatalf("live buffer handed out twice")
	}
	a.Release()
	b4 := a.alloc(100)
	for i, v := range b4 {
		if v != 0 {
			t.Fatalf("post-Release buffer not zeroed at %d: %v", i, v)
		}
	}
}

func TestAllocFromFallbacks(t *testing.T) {
	if got := allocFrom(nil, 10); len(got) != 10 {
		t.Fatalf("allocFrom(nil) length %d", len(got))
	}
	// Oversized requests bypass the size classes but still work.
	a := NewArena()
	defer a.Release()
	huge := a.alloc((1 << maxClassShift) + 1)
	if len(huge) != (1<<maxClassShift)+1 {
		t.Fatalf("oversized alloc length %d", len(huge))
	}
	withReferenceKernels(t, func() {
		// Reference mode must not pool: pointers differ across Reset.
		b1 := allocFrom(a, 64)
		p := &b1[0]
		a.Reset()
		b2 := allocFrom(a, 64)
		if &b2[0] == p {
			t.Fatalf("reference mode reused an arena buffer")
		}
	})
}

// TestArenaPropagation verifies the arena tag flows from an input through
// ops to intermediates, but never onto untagged constants.
func TestArenaPropagation(t *testing.T) {
	a := NewArena()
	defer a.Release()
	rng := rand.New(rand.NewSource(41))
	x := Randn(rng, 1, 3, 4).InArena(a)
	w := Randn(rng, 1, 4, 5).Param()
	y := MatMul(x, w)
	if y.arena != a {
		t.Fatalf("MatMul output did not inherit the input arena")
	}
	z := ReLU(y)
	if z.arena != a {
		t.Fatalf("ReLU output did not inherit the arena")
	}
	if w.arena != nil {
		t.Fatalf("parameter unexpectedly tagged with an arena")
	}
}
