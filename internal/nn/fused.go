package nn

import (
	"fmt"
	"math"
)

// Fused ops collapse the hottest op chains of the paper's five deep models
// into single autodiff nodes: one output buffer, one backward closure, and
// blocked kernels inside. Under the reference-kernel switch each fused op
// decomposes into the original op chain, so the fused and reference paths
// build equivalent graphs for differential testing.

// Activation selects the nonlinearity fused into LinearFused.
type Activation int

const (
	ActIdentity Activation = iota
	ActReLU
	ActSigmoid
	ActTanh
	ActGELU
)

const geluC = 0.7978845608028654 // sqrt(2/pi)

// applyActRef applies the activation as a standalone reference op.
func applyActRef(t *Tensor, act Activation) *Tensor {
	switch act {
	case ActIdentity:
		return t
	case ActReLU:
		return ReLU(t)
	case ActSigmoid:
		return Sigmoid(t)
	case ActTanh:
		return Tanh(t)
	case ActGELU:
		return GELU(t)
	}
	panic(fmt.Sprintf("nn: unknown activation %d", act))
}

// applyActInPlace overwrites buf with act(buf).
func applyActInPlace(buf []float64, act Activation) {
	switch act {
	case ActIdentity:
	case ActReLU:
		for i, v := range buf {
			if v < 0 {
				buf[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range buf {
			buf[i] = 1 / (1 + math.Exp(-v))
		}
	case ActTanh:
		for i, v := range buf {
			buf[i] = math.Tanh(v)
		}
	case ActGELU:
		for i, x := range buf {
			buf[i] = 0.5 * x * (1 + math.Tanh(geluC*(x+0.044715*x*x*x)))
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", act))
	}
}

// actGradInto writes dpre[i] = g[i]·act'(pre)[i] using the activation
// output y (and, for GELU, the saved pre-activation values).
func actGradInto(dpre, g, y, preact []float64, act Activation) {
	switch act {
	case ActReLU:
		for i, gv := range g {
			if y[i] > 0 {
				dpre[i] = gv
			} else {
				dpre[i] = 0
			}
		}
	case ActSigmoid:
		for i, gv := range g {
			s := y[i]
			dpre[i] = gv * s * (1 - s)
		}
	case ActTanh:
		for i, gv := range g {
			t := y[i]
			dpre[i] = gv * (1 - t*t)
		}
	case ActGELU:
		for i, gv := range g {
			x := preact[i]
			t := math.Tanh(geluC * (x + 0.044715*x*x*x))
			dt := (1 - t*t) * geluC * (1 + 3*0.044715*x*x)
			dpre[i] = gv * (0.5*(1+t) + 0.5*x*dt)
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", act))
	}
}

// LinearFused computes act(x·w + b) as a single node: the bias is written
// into the output rows, the blocked matmul accumulates on top, and the
// activation is applied in place — one buffer instead of three, one
// backward closure instead of three. b may be nil (no bias); w has shape
// [in, out]; x has shape [..., in].
func LinearFused(x, w, b *Tensor, act Activation) *Tensor {
	if len(w.Shape) != 2 {
		panic(fmt.Sprintf("nn: LinearFused weight shape %v", w.Shape))
	}
	in, out := w.Shape[0], w.Shape[1]
	if len(x.Shape) < 1 || x.Dim(-1) != in {
		panic(fmt.Sprintf("nn: LinearFused input %v for weight %v", x.Shape, w.Shape))
	}
	if b != nil && (len(b.Shape) != 1 || b.Shape[0] != out) {
		panic(fmt.Sprintf("nn: LinearFused bias shape %v, want [%d]", b.Shape, out))
	}
	if refKernels.Load() {
		y := MatMul(x, w)
		if b != nil {
			y = AddBias(y, b)
		}
		return applyActRef(y, act)
	}
	rows := len(x.Data) / in
	ar := arenaOf(x)
	var data []float64
	if b != nil {
		// The bias rows initialise every element, so the buffer can skip
		// its zero fill; the matmul accumulates on top.
		data = allocFromUninit(ar, rows*out)
		for r := 0; r < rows; r++ {
			copy(data[r*out:(r+1)*out], b.Data)
		}
	} else {
		data = allocFrom(ar, rows*out)
	}
	matmulFwd(data, x.Data, w.Data, rows, in, out)
	var preact []float64
	if act == ActGELU {
		preact = allocFromUninit(ar, rows*out)
		copy(preact, data)
	}
	applyActInPlace(data, act)
	outShape := append(append([]int(nil), x.Shape[:len(x.Shape)-1]...), out)
	back := func(o *Tensor) {
		dpre := o.Grad
		if act != ActIdentity {
			dpre = allocFromUninit(o.arena, len(o.Grad))
			actGradInto(dpre, o.Grad, o.Data, preact, act)
		}
		if b != nil && b.requiresGrad {
			for r := 0; r < rows; r++ {
				addAcc(b.Grad, dpre[r*out:(r+1)*out])
			}
		}
		if w.requiresGrad {
			matmulBwdB(w.Grad, x.Data, dpre, rows, in, out)
		}
		if x.requiresGrad {
			// dX = g·wᵀ reads w's rows directly with unit stride — no
			// packed transpose needed for the weight layout.
			matmulNT(x.Grad, dpre, w.Data, rows, in, out)
		}
	}
	if b != nil {
		return result(outShape, data, back, x, w, b)
	}
	return result(outShape, data, back, x, w)
}

// AddSigmoid computes sigmoid(a + b) in one node — the GRU gate chain.
func AddSigmoid(a, b *Tensor) *Tensor {
	if refKernels.Load() {
		return Sigmoid(Add(a, b))
	}
	sameShape(a, b)
	data := allocFromUninit(arenaOf2(a, b), len(a.Data))
	for i := range data {
		data[i] = 1 / (1 + math.Exp(-(a.Data[i] + b.Data[i])))
	}
	return result(a.Shape, data, func(out *Tensor) {
		ag, bg := a.requiresGrad, b.requiresGrad
		for i, g := range out.Grad {
			s := out.Data[i]
			d := g * s * (1 - s)
			if ag {
				a.Grad[i] += d
			}
			if bg {
				b.Grad[i] += d
			}
		}
	}, a, b)
}

// AddTanh computes tanh(a + b) in one node — the GRU candidate chain.
func AddTanh(a, b *Tensor) *Tensor {
	if refKernels.Load() {
		return Tanh(Add(a, b))
	}
	sameShape(a, b)
	data := allocFromUninit(arenaOf2(a, b), len(a.Data))
	for i := range data {
		data[i] = math.Tanh(a.Data[i] + b.Data[i])
	}
	return result(a.Shape, data, func(out *Tensor) {
		ag, bg := a.requiresGrad, b.requiresGrad
		for i, g := range out.Grad {
			t := out.Data[i]
			d := g * (1 - t*t)
			if ag {
				a.Grad[i] += d
			}
			if bg {
				b.Grad[i] += d
			}
		}
	}, a, b)
}

// Lerp computes (1−w)⊙a + w⊙b in one node — the GRU state update, which
// previously cost five ops (a ones tensor, Sub, two Muls, and an Add).
func Lerp(a, b, w *Tensor) *Tensor {
	if refKernels.Load() {
		ones := Full(1, w.Shape...)
		return Add(Mul(Sub(ones, w), a), Mul(w, b))
	}
	sameShape(a, b)
	sameShape(a, w)
	data := allocFromUninit(arenaOf2(a, b), len(a.Data))
	for i := range data {
		wv := w.Data[i]
		data[i] = (1-wv)*a.Data[i] + wv*b.Data[i]
	}
	return result(a.Shape, data, func(out *Tensor) {
		ag, bg, wg := a.requiresGrad, b.requiresGrad, w.requiresGrad
		for i, g := range out.Grad {
			wv := w.Data[i]
			if ag {
				a.Grad[i] += g * (1 - wv)
			}
			if bg {
				b.Grad[i] += g * wv
			}
			if wg {
				w.Grad[i] += g * (b.Data[i] - a.Data[i])
			}
		}
	}, a, b, w)
}

// LinearPairSum computes (a·wa + ba) + (b·wb + bb) in one node — the
// DLinear forward (trend head plus seasonal head) without the two
// intermediate projections and the final Add.
func LinearPairSum(a, wa, ba, b, wb, bb *Tensor) *Tensor {
	if refKernels.Load() {
		return Add(AddBias(MatMul(a, wa), ba), AddBias(MatMul(b, wb), bb))
	}
	ina, out := wa.Shape[0], wa.Shape[1]
	inb := wb.Shape[0]
	if a.Dim(-1) != ina || b.Dim(-1) != inb || wb.Shape[1] != out {
		panic(fmt.Sprintf("nn: LinearPairSum shapes %v·%v + %v·%v", a.Shape, wa.Shape, b.Shape, wb.Shape))
	}
	if ba.Shape[0] != out || bb.Shape[0] != out {
		panic("nn: LinearPairSum bias shapes")
	}
	rows := len(a.Data) / ina
	if len(b.Data)/inb != rows {
		panic("nn: LinearPairSum row mismatch")
	}
	ar := arenaOf2(a, b)
	data := allocFromUninit(ar, rows*out)
	for r := 0; r < rows; r++ {
		row := data[r*out : (r+1)*out]
		for j := range row {
			row[j] = ba.Data[j] + bb.Data[j]
		}
	}
	matmulFwd(data, a.Data, wa.Data, rows, ina, out)
	matmulFwd(data, b.Data, wb.Data, rows, inb, out)
	outShape := append(append([]int(nil), a.Shape[:len(a.Shape)-1]...), out)
	return result(outShape, data, func(o *Tensor) {
		g := o.Grad
		for _, side := range [2]struct {
			x, w, bias *Tensor
			in         int
		}{{a, wa, ba, ina}, {b, wb, bb, inb}} {
			if side.bias.requiresGrad {
				for r := 0; r < rows; r++ {
					addAcc(side.bias.Grad, g[r*out:(r+1)*out])
				}
			}
			if side.w.requiresGrad {
				matmulBwdB(side.w.Grad, side.x.Data, g, rows, side.in, out)
			}
			if side.x.requiresGrad {
				matmulNT(side.x.Grad, g, side.w.Data, rows, side.in, out)
			}
		}
	}, a, wa, ba, b, wb, bb)
}

// ScaledDotAttention computes softmax(scale·q·kᵀ + mask)·v as a single
// node, replacing the six-op chain (Transpose, MatMul, Scale, mask
// expansion, MaskedFill, Softmax, MatMul) of multi-head attention. q has
// shape [BH, Tq, Dh]; k and v have shape [BH, Tk, Dh]; a non-nil mask of
// shape [Tq, Tk] blocks attention where mask != 0 (as MaskedFill with
// -1e9, shared across the batch-head dimension). Only the softmax output
// is retained for the backward pass — the [BH, Tq, Tk] score gradient
// buffers of the unfused chain are never materialised.
func ScaledDotAttention(q, k, v, mask *Tensor, scale float64) *Tensor {
	if refKernels.Load() {
		scores := Scale(MatMul(q, Transpose(k)), scale)
		if mask != nil {
			bh, tq, tk := scores.Shape[0], scores.Shape[1], scores.Shape[2]
			big := ZerosLike(scores, bh, tq, tk)
			for i := 0; i < bh; i++ {
				copy(big.Data[i*tq*tk:(i+1)*tq*tk], mask.Data)
			}
			scores = MaskedFill(scores, big, -1e9)
		}
		return MatMul(Softmax(scores), v)
	}
	bh, tq, dh := q.Shape[0], q.Shape[1], q.Shape[2]
	tk := k.Shape[1]
	if k.Shape[0] != bh || v.Shape[0] != bh || v.Shape[1] != tk || k.Shape[2] != dh || v.Shape[2] != dh {
		panic(fmt.Sprintf("nn: ScaledDotAttention shapes q %v, k %v, v %v", q.Shape, k.Shape, v.Shape))
	}
	if mask != nil && (len(mask.Shape) != 2 || mask.Shape[0] != tq || mask.Shape[1] != tk) {
		panic(fmt.Sprintf("nn: ScaledDotAttention mask %v, want [%d %d]", mask.Shape, tq, tk))
	}
	ar := arenaOf(q)
	// Prefix masks (each row blocks a contiguous suffix of columns, as
	// causal masks do) let the kernels skip the blocked region outright
	// instead of computing scores that the -1e9 fill would zero anyway:
	// masked probabilities are exactly 0 either way (exp underflows), so the
	// shortcut is value-identical. rowEnd[i] is the exclusive end of row i's
	// computed region; a nil rowEnd means a dense (or absent) mask.
	var rowEnd []int
	if mask != nil {
		rowEnd = make([]int, tq)
		for i := 0; i < tq && rowEnd != nil; i++ {
			mrow := mask.Data[i*tk : (i+1)*tk]
			e := 0
			for e < tk && mrow[e] == 0 {
				e++
			}
			// A fully masked row softmaxes to uniform in the reference
			// chain, which the skip cannot reproduce — fall back.
			if e == 0 {
				rowEnd = nil
				break
			}
			for j := e; j < tk; j++ {
				if mrow[j] == 0 {
					rowEnd = nil
					break
				}
			}
			if rowEnd != nil {
				rowEnd[i] = e
			}
		}
	}
	// probs holds the scores in place until the row softmax overwrites them.
	// The prefix path needs the masked suffixes zeroed (they stay exactly 0
	// through the whole op); the dense path overwrites every element.
	var probs []float64
	if rowEnd != nil {
		probs = allocFrom(ar, bh*tq*tk)
	} else {
		probs = allocFromUninit(ar, bh*tq*tk)
	}
	data := allocFrom(ar, bh*tq*dh)
	for b := 0; b < bh; b++ {
		qb := q.Data[b*tq*dh : (b+1)*tq*dh]
		kb := k.Data[b*tk*dh : (b+1)*tk*dh]
		pb := probs[b*tq*tk : (b+1)*tq*tk]
		if rowEnd != nil {
			matmulNTPrefix(pb, qb, kb, tq, tk, dh, rowEnd)
		} else {
			matmulNTStore(pb, qb, kb, tq, tk, dh)
		}
		for i := 0; i < tq; i++ {
			row := pb[i*tk : (i+1)*tk]
			if rowEnd != nil {
				row = row[:rowEnd[i]] // masked suffix stays exactly 0
			}
			sc := scale
			if sc <= 0 || (rowEnd == nil && mask != nil) {
				// Pre-scale when the fold below needs a positive scale, or
				// when a dense mask must overwrite scaled scores with -1e9.
				for j := range row {
					row[j] *= scale
				}
				if rowEnd == nil && mask != nil {
					mrow := mask.Data[i*tk : (i+1)*tk]
					for j, mv := range mrow {
						if mv != 0 {
							row[j] = -1e9
						}
					}
				}
				sc = 1
			}
			// Numerically stable softmax with the scale multiply folded into
			// the exp pass, saving a write+read sweep over the score matrix.
			// Rounding is monotone, so for sc > 0 max(row)·sc equals the max
			// over the individually scaled elements bit for bit, and each exp
			// argument s·sc − maxS uses the exact products of the unfused
			// Scale-then-Softmax chain — results are unchanged. (sc == 1
			// reduces to the plain softmax: x·1 is exact.)
			maxV := row[0]
			for _, s := range row {
				if s > maxV {
					maxV = s
				}
			}
			maxS := maxV * sc
			var sum float64
			for j, s := range row {
				row[j] = math.Exp(s*sc - maxS)
				sum += row[j]
			}
			for j := range row {
				row[j] /= sum
			}
		}
		matmulFwd(data[b*tq*dh:(b+1)*tq*dh], pb, v.Data[b*tk*dh:(b+1)*tk*dh], tq, tk, dh)
	}
	back := func(o *Tensor) {
		// Per-batch-head dP/dS scratch. The store-form kernels overwrite the
		// live region each head; on the prefix path one upfront clear keeps
		// the never-written masked suffixes at zero for the dQ/dK matmuls.
		dp := allocFromUninit(o.arena, tq*tk)
		if rowEnd != nil {
			clear(dp)
		}
		for b := 0; b < bh; b++ {
			gb := o.Grad[b*tq*dh : (b+1)*tq*dh]
			pb := probs[b*tq*tk : (b+1)*tq*tk]
			vb := v.Data[b*tk*dh : (b+1)*tk*dh]
			if rowEnd != nil {
				matmulNTPrefix(dp, gb, vb, tq, tk, dh, rowEnd) // dP = g·vᵀ, live region only
			} else {
				matmulNTStore(dp, gb, vb, tq, tk, dh) // dP = g·vᵀ
			}
			if v.requiresGrad {
				matmulBwdB(v.Grad[b*tk*dh:(b+1)*tk*dh], pb, gb, tq, tk, dh) // dV += Pᵀ·g
			}
			// Softmax backward folded with the scale: dS = scale·P⊙(dP−dot).
			// Masked entries have P exactly 0, so dS vanishes there just as
			// the MaskedFill backward zeroes them in the reference chain —
			// on the prefix path they are skipped and dp stays cleared.
			for i := 0; i < tq; i++ {
				e := tk
				if rowEnd != nil {
					e = rowEnd[i]
				}
				prow := pb[i*tk : i*tk+e]
				drow := dp[i*tk : i*tk+e]
				var dot float64
				for j := range prow {
					dot += prow[j] * drow[j]
				}
				for j := range prow {
					drow[j] = scale * (prow[j] * (drow[j] - dot))
				}
			}
			if q.requiresGrad {
				matmulFwd(q.Grad[b*tq*dh:(b+1)*tq*dh], dp, k.Data[b*tk*dh:(b+1)*tk*dh], tq, tk, dh) // dQ += dS·k
			}
			if k.requiresGrad {
				matmulBwdB(k.Grad[b*tk*dh:(b+1)*tk*dh], dp, q.Data[b*tq*dh:(b+1)*tq*dh], tq, tk, dh) // dK += dSᵀ·q
			}
		}
	}
	return result([]int{bh, tq, dh}, data, back, q, k, v)
}

// ZerosLike returns a zero constant tensor allocated from src's arena (a
// plain allocation when src carries none), for per-forward scratch
// constants such as attention masks and initial recurrent states.
func ZerosLike(src *Tensor, shape ...int) *Tensor {
	return &Tensor{
		Data:  allocFrom(src.arena, Numel(shape)),
		Shape: append([]int(nil), shape...),
		arena: src.arena,
	}
}
