package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Conv1D is a 1-D convolution over the time axis of [B, T, C] tensors with
// same-padding, used by Informer's distilling layers between encoder blocks.
type Conv1D struct {
	Kernel int
	In     int
	Out    int
	W      *Tensor // [kernel, in, out]
	B      *Tensor // [out]
}

// NewConv1D returns a convolution with Xavier initialisation.
func NewConv1D(rng *rand.Rand, kernel, in, out int) *Conv1D {
	scale := math.Sqrt(2.0 / float64(kernel*in+out))
	return &Conv1D{
		Kernel: kernel,
		In:     in,
		Out:    out,
		W:      Randn(rng, scale, kernel, in, out).Param(),
		B:      Zeros(out).Param(),
	}
}

// Params returns the trainable parameters.
func (c *Conv1D) Params() []*Tensor { return []*Tensor{c.W, c.B} }

// Forward applies the convolution to x of shape [B, T, in], producing
// [B, T, out] (zero same-padding).
func (c *Conv1D) Forward(x *Tensor) *Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != c.In {
		panic(fmt.Sprintf("nn: Conv1D input %v, want [B, T, %d]", x.Shape, c.In))
	}
	b, t := x.Shape[0], x.Shape[1]
	front := (c.Kernel - 1) / 2
	w, bias := c.W, c.B
	data := allocFromUninit(arenaOf(x), b*t*c.Out)
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			out := data[(bi*t+ti)*c.Out : (bi*t+ti+1)*c.Out]
			copy(out, bias.Data)
			for k := 0; k < c.Kernel; k++ {
				src := ti + k - front
				if src < 0 || src >= t {
					continue
				}
				in := x.Data[(bi*t+src)*c.In : (bi*t+src+1)*c.In]
				for ci, xv := range in {
					if xv == 0 {
						continue
					}
					wRow := w.Data[(k*c.In+ci)*c.Out : (k*c.In+ci+1)*c.Out]
					for co := range out {
						out[co] += xv * wRow[co]
					}
				}
			}
		}
	}
	return result([]int{b, t, c.Out}, data, func(o *Tensor) {
		for bi := 0; bi < b; bi++ {
			for ti := 0; ti < t; ti++ {
				g := o.Grad[(bi*t+ti)*c.Out : (bi*t+ti+1)*c.Out]
				if bias.requiresGrad {
					for co := range g {
						bias.Grad[co] += g[co]
					}
				}
				for k := 0; k < c.Kernel; k++ {
					src := ti + k - front
					if src < 0 || src >= t {
						continue
					}
					in := x.Data[(bi*t+src)*c.In : (bi*t+src+1)*c.In]
					for ci := 0; ci < c.In; ci++ {
						wRow := w.Data[(k*c.In+ci)*c.Out : (k*c.In+ci+1)*c.Out]
						if w.requiresGrad {
							wgRow := w.Grad[(k*c.In+ci)*c.Out : (k*c.In+ci+1)*c.Out]
							for co := range g {
								wgRow[co] += in[ci] * g[co]
							}
						}
						if x.requiresGrad {
							var s float64
							for co := range g {
								s += wRow[co] * g[co]
							}
							x.Grad[(bi*t+src)*c.In+ci] += s
						}
					}
				}
			}
		}
	}, x, w, bias)
}

// MaxPool1D downsamples the time axis of [B, T, C] with the given kernel
// and stride (same-style padding on the right). Informer uses kernel 3,
// stride 2 for distilling.
func MaxPool1D(x *Tensor, kernel, stride int) *Tensor {
	if len(x.Shape) != 3 {
		panic("nn: MaxPool1D needs [B, T, C]")
	}
	if kernel < 1 || stride < 1 {
		panic("nn: MaxPool1D kernel and stride must be >= 1")
	}
	b, t, c := x.Shape[0], x.Shape[1], x.Shape[2]
	ot := (t + stride - 1) / stride
	data := allocFromUninit(arenaOf(x), b*ot*c)
	argmax := make([]int, b*ot*c)
	for bi := 0; bi < b; bi++ {
		for oi := 0; oi < ot; oi++ {
			start := oi * stride
			for ci := 0; ci < c; ci++ {
				best := math.Inf(-1)
				bestIdx := -1
				for k := 0; k < kernel; k++ {
					ti := start + k
					if ti >= t {
						break
					}
					v := x.Data[(bi*t+ti)*c+ci]
					if v > best {
						best, bestIdx = v, (bi*t+ti)*c+ci
					}
				}
				data[(bi*ot+oi)*c+ci] = best
				argmax[(bi*ot+oi)*c+ci] = bestIdx
			}
		}
	}
	return result([]int{b, ot, c}, data, func(o *Tensor) {
		if !x.requiresGrad {
			return
		}
		for i, g := range o.Grad {
			if argmax[i] >= 0 {
				x.Grad[argmax[i]] += g
			}
		}
	}, x)
}

// ELU applies the exponential linear unit used by Informer's distilling
// convolutions.
func ELU(a *Tensor) *Tensor {
	data := allocFromUninit(arenaOf(a), len(a.Data))
	for i, v := range a.Data {
		if v > 0 {
			data[i] = v
		} else {
			data[i] = math.Exp(v) - 1
		}
	}
	return result(a.Shape, data, func(out *Tensor) {
		if !a.requiresGrad {
			return
		}
		for i, g := range out.Grad {
			if a.Data[i] > 0 {
				a.Grad[i] += g
			} else {
				a.Grad[i] += g * (out.Data[i] + 1)
			}
		}
	}, a)
}
